// Figure 11 (Exp. 2b): overhead of the four schemes for TPC-H Q5 over
// SF = 100 (baseline ~15 minutes) under per-node MTBFs of 1 week, 1 day
// and 1 hour.
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/experiment.h"
#include "tpch/queries.h"

using namespace xdbft;

int main() {
  bench::PrintHeader(
      "Figure 11 — Overhead vs MTBF (Q5, SF = 100, 10 nodes)",
      "Salama et al., SIGMOD'15, Fig. 11 (Section 5.3, Exp. 2b)");

  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  struct Setup {
    const char* name;
    double mtbf;
  };
  const Setup setups[] = {
      {"Cluster A (10 nodes, MTBF=1 week)", cost::kSecondsPerWeek},
      {"Cluster B (10 nodes, MTBF=1 day)", cost::kSecondsPerDay},
      {"Cluster C (10 nodes, MTBF=1 hour)", cost::kSecondsPerHour},
  };

  bench::BenchJsonWriter json("fig11_varying_mtbf");
  bench::Table table({"cluster", "all-mat", "no-mat(lin)", "no-mat(rst)",
                      "cost-based", "cb-mat-ops"},
                     {36, 10, 12, 12, 12, 10});
  table.PrintHeaderRow();
  for (const auto& s : setups) {
    const auto stats = cost::MakeCluster(cfg.num_nodes, s.mtbf, 1.0);
    auto result =
        cluster::RunSchemeComparison(*plan, stats, {}, /*num_traces=*/30);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", s.name,
                   result.status().ToString().c_str());
      continue;
    }
    const auto& am = result->outcome(ft::SchemeKind::kAllMat);
    const auto& nl = result->outcome(ft::SchemeKind::kNoMatLineage);
    const auto& nr = result->outcome(ft::SchemeKind::kNoMatRestart);
    const auto& cb = result->outcome(ft::SchemeKind::kCostBased);
    table.PrintRow({s.name,
                    bench::OverheadCell(am.completed, am.overhead_percent),
                    bench::OverheadCell(nl.completed, nl.overhead_percent),
                    bench::OverheadCell(nr.completed, nr.overhead_percent),
                    bench::OverheadCell(cb.completed, cb.overhead_percent),
                    StrFormat("%zu", cb.num_materialized)});
    json.Write(bench::JsonLine()
                   .Set("cluster", s.name)
                   .Set("mtbf_seconds", s.mtbf)
                   .Set("all_mat_overhead_pct", am.overhead_percent)
                   .Set("no_mat_lineage_overhead_pct", nl.overhead_percent)
                   .Set("no_mat_restart_overhead_pct", nr.overhead_percent)
                   .Set("no_mat_restart_completed", nr.completed)
                   .Set("cost_based_overhead_pct", cb.overhead_percent)
                   .Set("cost_based_materialized",
                        static_cast<double>(cb.num_materialized)));
  }

  std::printf(
      "\nExpected shape (paper): cost-based lowest at every MTBF; at 1 week\n"
      "all schemes except all-mat are near 0%% (all-mat pays its ~34%%\n"
      "materialization for nothing); at 1 hour the no-mat schemes blow up\n"
      "(restart worst) while all-mat is second best.\n");
  return 0;
}
