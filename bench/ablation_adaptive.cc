// Extension bench (paper §7 future work): mid-query re-optimization under
// inaccurate statistics. The static scheme commits to a materialization
// configuration computed from (bad) estimates; the adaptive scheme
// revisits each decision once upstream operators have executed and their
// true costs are known. Simulated under the true statistics against the
// oracle (static planning with perfect statistics).
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/simulator.h"
#include "common/math_util.h"
#include "ft/adaptive.h"
#include "tpch/queries.h"

using namespace xdbft;

namespace {

double SimulatedMean(const plan::Plan& truth,
                     const ft::MaterializationConfig& config,
                     const cost::ClusterStats& stats) {
  cluster::ClusterSimulator sim(stats);
  double total = 0.0;
  const int kRuns = 20;
  for (uint64_t seed = 100; seed < 100 + kRuns; ++seed) {
    cluster::ClusterTrace trace = cluster::ClusterTrace::Generate(stats,
                                                                  seed);
    auto r = sim.Run(truth, config, ft::RecoveryMode::kFineGrained, trace);
    total += r->runtime;
  }
  return total / kRuns;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension — mid-query re-optimization under bad statistics "
      "(Q5, SF=100, MTBF=1h)",
      "future work of Salama et al., SIGMOD'15, Section 7");

  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto truth = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  if (!truth.ok()) return 1;
  const auto stats = cost::MakeCluster(10, cost::kSecondsPerHour, 1.0);
  ft::FtCostContext ctx;
  ctx.cluster = stats;

  // Oracle: static planning with perfect statistics.
  ft::FtPlanEnumerator oracle_enum(ctx);
  auto oracle = oracle_enum.FindBest(*truth);
  if (!oracle.ok()) return 1;
  const double oracle_runtime = SimulatedMean(*truth, oracle->config,
                                              stats);

  // Per-seed comparison uses the deterministic cost model evaluated on
  // the true statistics; simulated means (20 traces each) follow below.
  ft::FtCostModel model(ctx);
  const double oracle_est =
      model.Estimate(*truth, oracle->config)->dominant_cost;
  bench::Table table(
      {"perturb", "seed", "static est(s)", "adaptive est(s)",
       "oracle est(s)", "changed"},
      {8, 6, 14, 16, 14, 8});
  table.PrintHeaderRow();
  std::vector<double> static_runtimes, adaptive_runtimes;
  for (double max_factor : {3.0, 10.0}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      const plan::Plan estimated =
          ft::PerturbStatistics(*truth, max_factor, seed);
      ft::FtPlanEnumerator static_enum(ctx);
      auto static_choice = static_enum.FindBest(estimated);
      auto adaptive = ft::AdaptiveMaterialization(estimated, *truth, ctx);
      if (!static_choice.ok() || !adaptive.ok()) continue;
      const double s_est =
          model.Estimate(*truth, static_choice->config)->dominant_cost;
      const double a_est =
          model.Estimate(*truth, adaptive->config)->dominant_cost;
      static_runtimes.push_back(
          SimulatedMean(*truth, static_choice->config, stats));
      adaptive_runtimes.push_back(
          SimulatedMean(*truth, adaptive->config, stats));
      table.PrintRow({StrFormat("x%.0f", max_factor),
                      StrFormat("%llu",
                                static_cast<unsigned long long>(seed)),
                      StrFormat("%.1f", s_est), StrFormat("%.1f", a_est),
                      StrFormat("%.1f", oracle_est),
                      StrFormat("%d", adaptive->decisions_changed)});
    }
  }
  std::printf(
      "\nSimulated means (20 traces each): static %.1fs, adaptive %.1fs, "
      "oracle %.1fs\n",
      Mean(static_runtimes), Mean(adaptive_runtimes), oracle_runtime);
  std::printf(
      "Takeaway: revisiting materialization decisions once upstream\n"
      "operators have executed recovers much of the gap between planning\n"
      "with bad estimates and the perfect-statistics oracle — the paper's\n"
      "proposed answer to skew and hard-to-estimate UDF statistics.\n");
  return 0;
}
