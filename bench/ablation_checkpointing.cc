// Extension bench (paper §7 future work): intra-operator checkpointing for
// long-running operators. Sweeps the checkpoint interval for a long
// operator under frequent failures and compares the percentile cost model
// against simulation, including the exact optimum and the Young/Daly rule.
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/simulator.h"
#include "ft/checkpointing.h"

using namespace xdbft;

namespace {

plan::Plan LongOperatorPlan(double t) {
  plan::PlanBuilder b("long-op");
  auto scan = b.Scan("base", 1e9, 64, t / 2.0);
  b.Unary(plan::OpType::kMapUdf, "long-udf", scan, t / 2.0, 1.0);
  return std::move(b).Build();
}

double SimulatedMean(const plan::Plan& plan,
                     const cost::ClusterStats& stats,
                     double interval, double ckpt_cost) {
  cluster::SimulationOptions opts;
  opts.checkpoint_interval = interval;
  opts.checkpoint_cost = ckpt_cost;
  cluster::ClusterSimulator sim(stats, opts);
  const auto config = ft::MaterializationConfig::NoMat(plan);
  double total = 0.0;
  const int kRuns = 60;
  for (uint64_t seed = 0; seed < kRuns; ++seed) {
    cluster::ClusterTrace trace = cluster::ClusterTrace::Generate(stats,
                                                                  seed);
    auto r = sim.Run(plan, config, ft::RecoveryMode::kFineGrained, trace);
    total += r->runtime;
  }
  return total / kRuns;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension — intra-operator checkpointing for long operators",
      "future work of Salama et al., SIGMOD'15, Section 7");

  const double t = 1801.0;        // a ~30-minute operator
  const double ckpt_cost = 3.0;   // seconds per state checkpoint
  const auto stats = cost::MakeCluster(10, 3600.0, 2.0);
  const plan::Plan plan = LongOperatorPlan(t);

  ft::FtCostContext ctx;
  ctx.cluster = stats;
  const ft::FailureParams params = ctx.MakeFailureParams();

  std::printf("Operator: t = %.0fs, per-node MTBF = 1h, checkpoint cost = "
              "%.0fs\n\n", t, ckpt_cost);
  bench::Table table({"interval(s)", "segments", "model(s)",
                      "simulated(s)"},
                     {12, 10, 10, 13});
  table.PrintHeaderRow();
  for (double interval : {0.0, 900.0, 450.0, 225.0, 112.5, 56.0, 28.0,
                          14.0}) {
    ft::CheckpointParams ckpt;
    ckpt.checkpoint_cost = ckpt_cost;
    ckpt.interval = interval;
    const double model =
        ft::OperatorTotalRuntimeWithCheckpoints(t, ckpt, params);
    const double sim = SimulatedMean(plan, stats, interval, ckpt_cost);
    table.PrintRow({interval == 0.0 ? "off" : StrFormat("%.1f", interval),
                    StrFormat("%d", ft::NumCheckpointSegments(t, interval)),
                    StrFormat("%.1f", model), StrFormat("%.1f", sim)});
  }

  const double opt = ft::OptimalCheckpointInterval(t, ckpt_cost, params);
  const double yd = ft::YoungDalyInterval(ckpt_cost, params.mtbf_cost);
  std::printf(
      "\nExact optimal interval (percentile model): %.1fs; Young/Daly "
      "sqrt(2*C*MTBF): %.1fs\n",
      opt, yd);
  std::printf(
      "Takeaway: for operators with t ~ MTBF, checkpointing cuts the\n"
      "runtime under failures several-fold, with a broad optimum around\n"
      "the Young/Daly interval — supporting the paper's §7 suggestion\n"
      "that long operators 'which otherwise are likely to fail often'\n"
      "deserve operator-state checkpoints.\n");
  return 0;
}
