// Figure 8: overhead of the four fault-tolerance schemes for TPC-H Q1, Q3,
// Q5 and the complex variants Q1C/Q2C over SF = 100, under (a) a low MTBF
// (1.1x the query's baseline runtime per node) and (b) a high MTBF (10x
// the baseline runtime), averaging 10 failure traces per setting.
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/experiment.h"
#include "tpch/queries.h"

using namespace xdbft;

namespace {

void RunRegime(const char* title, double mtbf_factor) {
  std::printf("%s\n", title);
  bench::Table table({"query", "baseline(s)", "all-mat", "no-mat(lin)",
                      "no-mat(rst)", "cost-based", "cb-mat-ops"},
                     {6, 12, 10, 12, 12, 12, 10});
  table.PrintHeaderRow();
  for (tpch::TpchQuery q : tpch::AllQueries()) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = 100.0;
    auto plan = tpch::BuildQuery(q, cfg);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan error: %s\n",
                   plan.status().ToString().c_str());
      continue;
    }
    // Baseline runtime of this query determines the injected MTBF.
    cluster::ClusterSimulator probe(cost::MakeCluster(cfg.num_nodes, 1.0));
    const double baseline = *probe.BaselineRuntime(*plan);
    const auto stats =
        cost::MakeCluster(cfg.num_nodes, mtbf_factor * baseline,
                          /*mttr=*/1.0);
    auto result = cluster::RunSchemeComparison(*plan, stats, {},
                                               /*num_traces=*/10);
    if (!result.ok()) {
      std::fprintf(stderr, "experiment error: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    const auto& am = result->outcome(ft::SchemeKind::kAllMat);
    const auto& nl = result->outcome(ft::SchemeKind::kNoMatLineage);
    const auto& nr = result->outcome(ft::SchemeKind::kNoMatRestart);
    const auto& cb = result->outcome(ft::SchemeKind::kCostBased);
    table.PrintRow({tpch::TpchQueryName(q),
                    StrFormat("%.1f", result->baseline_runtime),
                    bench::OverheadCell(am.completed, am.overhead_percent),
                    bench::OverheadCell(nl.completed, nl.overhead_percent),
                    bench::OverheadCell(nr.completed, nr.overhead_percent),
                    bench::OverheadCell(cb.completed, cb.overhead_percent),
                    StrFormat("%zu", cb.num_materialized)});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 8 — Overhead for Varying Queries (overhead in % over the "
      "no-failure baseline)",
      "Salama et al., SIGMOD'15, Fig. 8a/8b (Section 5.2)");

  RunRegime("(a) Low MTBF (MTBF per node = 1.1 x baseline runtime)", 1.1);
  RunRegime("(b) High MTBF (MTBF per node = 10 x baseline runtime)", 10.0);

  std::printf(
      "Expected shape (paper): cost-based always has the least or\n"
      "comparable overhead; no-mat (restart) aborts for every query under\n"
      "the low MTBF; Q1 behaves identically for all fine-grained schemes\n"
      "(no free operator); for Q1C/Q2C the cost-based scheme clearly beats\n"
      "all-mat by checkpointing only the cheap mid-plan aggregation.\n");
  return 0;
}
