// Table 3 (Exp. 3b): robustness of the cost model against inaccurate
// statistics. The 32 materialization configurations of Q5 (SF = 100,
// MTBF = 1 hour) are ranked with exact statistics; then the model's input
// statistics are perturbed (MTBF, I/O costs tm, or all costs) and the new
// top-5 is reported in terms of the *baseline* ranking positions — higher
// numbers mean a worse plan was promoted.
#include <cstdio>

#include <algorithm>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "ft/enumerator.h"
#include "tpch/queries.h"

using namespace xdbft;

namespace {

// Ranks all 32 configs of `plan` under `ctx`; returns masks sorted by
// ascending estimated cost. (EnumerateAll returns configs in mask order.)
std::vector<size_t> Ranking(const plan::Plan& plan,
                            const ft::FtCostContext& ctx) {
  ft::FtPlanEnumerator enumerator(ctx);
  auto all = enumerator.EnumerateAll(plan);
  std::vector<size_t> order(all->size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*all)[a].second < (*all)[b].second;
  });
  return order;
}

plan::Plan Perturb(const plan::Plan& base, double io_factor,
                   double compute_factor) {
  plan::Plan p = base;
  for (const auto& n : p.nodes()) {
    auto& node = p.mutable_node(n.id);
    node.materialize_cost *= io_factor;
    node.runtime_cost *= compute_factor;
  }
  return p;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 3 — Robustness of the Cost Model (Q5, SF=100, MTBF=1 hour)",
      "Salama et al., SIGMOD'15, Table 3 (Section 5.4, Exp. 3b)");

  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  ft::FtCostContext exact;
  exact.cluster = cost::MakeCluster(cfg.num_nodes, cost::kSecondsPerHour,
                                    1.0);
  const std::vector<size_t> baseline = Ranking(*plan, exact);
  // baseline_rank[mask] = 1-based rank with exact statistics.
  std::vector<size_t> baseline_rank(baseline.size());
  for (size_t pos = 0; pos < baseline.size(); ++pos) {
    baseline_rank[baseline[pos]] = pos + 1;
  }

  bench::Table table({"perturbation", "top1", "top2", "top3", "top4",
                      "top5"},
                     {26, 6, 6, 6, 6, 6});
  table.PrintHeaderRow();
  table.PrintRow({"exact statistics", "1", "2", "3", "4", "5"});

  auto report = [&](const std::string& name, const plan::Plan& p,
                    const ft::FtCostContext& ctx) {
    const auto order = Ranking(p, ctx);
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < 5 && i < order.size(); ++i) {
      row.push_back(StrFormat("%zu", baseline_rank[order[i]]));
    }
    table.PrintRow(row);
  };

  for (double f : {0.1, 0.5, 2.0, 10.0}) {
    ft::FtCostContext ctx = exact;
    ctx.cluster.mtbf_seconds *= f;
    report(StrFormat("MTBF x%g", f), *plan, ctx);
  }
  for (double f : {0.1, 0.5, 2.0, 10.0}) {
    report(StrFormat("I/O costs x%g", f), Perturb(*plan, f, 1.0), exact);
  }
  for (double f : {0.1, 0.5, 2.0, 10.0}) {
    report(StrFormat("Compute & I/O costs x%g", f), Perturb(*plan, f, f),
           exact);
  }

  std::printf(
      "\nExpected shape (paper): small perturbations (x0.5 / x2) only\n"
      "shuffle positions within (or near) the exact top-5; extreme\n"
      "perturbations (x0.1 / x10) can promote low-ranked configurations,\n"
      "with I/O-cost perturbations hurting the most.\n");
  return 0;
}
