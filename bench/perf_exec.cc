// google-benchmark microbenchmarks for the execution engine: operator
// throughputs (scan, filter, hash join, merge join, aggregation, sort),
// TPC-H data generation rate and partition-parallel Q5 end-to-end.
//
// Before the microbenchmarks, main() runs a thread-scaling sweep of the
// parallel FaultTolerantExecutor over TPC-H Q5 with failure injection and
// emits one row per (workload, threads) into BENCH_exec.json when
// $XDBFT_BENCH_JSON_DIR is set — the artifact the CI speedup check reads.
// The sweep asserts the query table and every deterministic counter are
// identical at each thread count. Flags (handled before google-benchmark):
//   --quick       tiny scale factor, thread counts {1, 2, 4}, skip the
//                 microbenchmarks (the bench-smoke ctest entry)
//   --sweep-only  full sweep, skip the microbenchmarks (the CI artifact)
//   --vectorized  run only the row-vs-batch vectorization sweep in quick
//                 mode (the bench-smoke vectorized ctest entry)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "datagen/tpch_gen.h"
#include "engine/ft_executor.h"
#include "engine/query_runner.h"
#include "engine/stage_plan.h"
#include "exec/batch.h"
#include "exec/operators.h"
#include "exec/pipeline.h"
#include "ft/mat_config.h"

using namespace xdbft;
using exec::AggFunc;
using exec::Expr;
using exec::Table;
using exec::Value;
using exec::ValueType;

namespace {

Table MakeInts(int64_t n, int64_t key_domain, uint64_t seed) {
  Table t;
  t.schema = {{"k", ValueType::kInt64}, {"v", ValueType::kDouble}};
  Rng rng(seed);
  t.rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    t.rows.push_back({Value(rng.NextInt(0, key_domain - 1)),
                      Value(rng.NextDouble() * 100.0)});
  }
  return t;
}

void BM_Scan(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 1);
  for (auto _ : state) {
    auto op = exec::MakeScan(&t);
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Scan)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 2);
  for (auto _ : state) {
    auto op = exec::MakeFilter(
        exec::MakeScan(&t),
        exec::Lt(Expr::Col(0), Expr::Lit(Value(int64_t{500}))));
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  const Table build = MakeInts(state.range(0) / 10, 10000, 3);
  const Table probe = MakeInts(state.range(0), 10000, 4);
  for (auto _ : state) {
    auto op = exec::MakeHashJoin(exec::MakeScan(&build),
                                 exec::MakeScan(&probe), {0}, {0});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(100000);

void BM_MergeJoin(benchmark::State& state) {
  const Table build = MakeInts(state.range(0) / 10, 10000, 3);
  const Table probe = MakeInts(state.range(0), 10000, 4);
  for (auto _ : state) {
    auto op = exec::MakeMergeJoin(exec::MakeScan(&build),
                                  exec::MakeScan(&probe), 0, 0);
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeJoin)->Arg(100000);

void BM_HashAggregate(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 5);
  for (auto _ : state) {
    auto op = exec::MakeHashAggregate(
        exec::MakeScan(&t), {0},
        {{AggFunc::kSum, Expr::Col(1), "s"},
         {AggFunc::kCount, nullptr, "c"}});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(100000);

void BM_Sort(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1 << 30, 6);
  for (auto _ : state) {
    auto op = exec::MakeSort(exec::MakeScan(&t), {0}, {true});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Arg(100000);

void BM_TpchGenerate(benchmark::State& state) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.01;
  for (auto _ : state) {
    auto db = datagen::GenerateTpch(opts);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_TpchGenerate)->Unit(benchmark::kMillisecond);

void BM_Q5EndToEnd(benchmark::State& state) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.01;
  const auto db = *datagen::GenerateTpch(opts);
  const auto pd = *engine::DistributeTpch(db, 4);
  engine::QueryRunner runner(&pd);
  for (auto _ : state) {
    auto r = runner.RunQ5();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Q5EndToEnd)->Unit(benchmark::kMillisecond);

bool SameTable(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (!(a.rows[i][j] == b.rows[i][j])) return false;
    }
  }
  return true;
}

// One timed FaultTolerantExecutor run. The injector is re-created per run
// so every thread count sees the same failure schedule.
engine::FtExecutionResult RunOnce(const engine::StagePlan& plan,
                                  const engine::PartitionedDatabase& pd,
                                  const ft::MaterializationConfig& config,
                                  bool inject, int threads) {
  engine::FaultTolerantExecutor executor(&plan, &pd);
  executor.set_num_threads(threads);
  engine::ScriptedInjector injector(
      {{3, 1}, {4, 2}, {4, 5}, {5, 3}, {5, 6}}, /*times=*/2);
  auto r = executor.Execute(config, inject ? &injector : nullptr);
  if (!r.ok()) {
    std::fprintf(stderr, "exec sweep failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*r);
}

// Thread-scaling sweep of the parallel executor over TPC-H Q5, with and
// without injected failures, asserting the result table and every
// deterministic counter match the single-threaded run. Returns non-zero
// on a determinism violation.
int RunExecSweep(bench::BenchJsonWriter* json, bool quick) {
  bench::PrintHeader(
      "Parallel fault-tolerant execution: thread scaling (TPC-H Q5)",
      "SIGMOD'15 \"Cost-based Fault-tolerance\" §5.1 execution layer");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  datagen::TpchGenOptions opts;
  opts.scale_factor = quick ? 0.005 : 0.05;
  opts.seed = 7;
  const auto db = *datagen::GenerateTpch(opts);
  const auto pd = *engine::DistributeTpch(db, 8);
  const engine::StagePlan plan = engine::MakeQ5StagePlan(pd);
  // No-mat maximizes recovery recomputation: each injected failure forces
  // the victim partition's whole chain to re-run, which is exactly the
  // work the pool should parallelize.
  const auto config = ft::MaterializationConfig::NoMat(plan.ToPlanSkeleton());
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const int repeats = quick ? 1 : 3;

  bench::Table table({"workload", "threads", "seconds", "speedup",
                      "failures", "recoveries"},
                     {12, 7, 9, 8, 8, 10});
  table.PrintHeaderRow();
  int violations = 0;
  for (const bool inject : {false, true}) {
    const std::string workload = inject ? "q5_inject" : "q5_clean";
    engine::FtExecutionResult baseline;
    double baseline_seconds = 0.0;
    for (const int threads : thread_counts) {
      engine::FtExecutionResult best;
      double best_seconds = 0.0;
      for (int rep = 0; rep < repeats; ++rep) {
        auto r = RunOnce(plan, pd, config, inject, threads);
        if (rep == 0 || r.wall_seconds < best_seconds) {
          best_seconds = r.wall_seconds;
          best = std::move(r);
        }
      }
      if (threads == thread_counts.front()) {
        baseline_seconds = best_seconds;
        baseline = best;
      } else if (!SameTable(best.result, baseline.result) ||
                 best.failures_injected != baseline.failures_injected ||
                 best.recovery_executions != baseline.recovery_executions ||
                 best.task_executions != baseline.task_executions ||
                 best.rows_lost != baseline.rows_lost) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at %d threads diverges "
                     "from the single-threaded run\n",
                     workload.c_str(), threads);
        ++violations;
      }
      const double speedup =
          best_seconds > 0.0 ? baseline_seconds / best_seconds : 0.0;
      table.PrintRow({workload, StrFormat("%d", threads),
                      StrFormat("%.4f", best_seconds),
                      StrFormat("%.2fx", speedup),
                      StrFormat("%d", best.failures_injected),
                      StrFormat("%d", best.recovery_executions)});
      bench::JsonLine row;
      row.Set("workload", workload)
          .Set("threads", static_cast<double>(threads))
          .Set("seconds", best_seconds)
          .Set("speedup_vs_1", speedup)
          .Set("failures_injected",
               static_cast<double>(best.failures_injected))
          .Set("recovery_executions",
               static_cast<double>(best.recovery_executions))
          .Set("task_executions", static_cast<double>(best.task_executions))
          .Set("result_rows", static_cast<double>(best.result.num_rows()))
          .Set("scale_factor", opts.scale_factor)
          .Set("hardware_concurrency", static_cast<double>(hw))
          .Set("quick", quick);
      json->Write(row);
    }
  }
  if (violations == 0) {
    std::printf("\nAll thread counts bit-identical to threads=1.\n");
  }
  return violations == 0 ? 0 : 1;
}

// Row-engine vs morsel-driven vectorized engine on the canonical
// scan -> filter -> hash-aggregate microbenchmark, across thread counts.
// Asserts the vectorized result is bit-identical to the row engine at
// every thread count and reports single-thread batch-vs-row speedup.
int RunVectorizationSweep(bench::BenchJsonWriter* json, bool quick) {
  bench::PrintHeader(
      "Vectorized execution: row vs batch engine (scan+filter+agg)",
      "morsel-driven pipelines over the Volcano baseline");
  const int64_t rows = quick ? 1000000 : 4000000;
  // Q1-shaped input: (key, price, discount); the aggregate argument is the
  // revenue expression price * (1 - discount), where vectorized evaluation
  // pays off most against the row engine's per-row expression tree walk.
  Table t;
  t.schema = {{"k", exec::ValueType::kInt64},
              {"price", exec::ValueType::kDouble},
              {"disc", exec::ValueType::kDouble}};
  {
    Rng rng(11);
    t.rows.reserve(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
      t.rows.push_back({Value(rng.NextInt(0, 99999)),
                        Value(rng.NextDouble() * 100.0),
                        Value(rng.NextDouble() * 0.1)});
    }
  }
  const auto revenue =
      Expr::Col(1) * (Expr::Lit(Value(1.0)) - Expr::Col(2));
  const auto plan = exec::VHashAggregate(
      exec::VFilter(exec::VScan(&t),
                    exec::Lt(Expr::Col(0), Expr::Lit(Value(int64_t{50000})))),
      {0},
      {{AggFunc::kSum, revenue, "revenue"},
       {AggFunc::kCount, nullptr, "c"}});
  const int repeats = quick ? 4 : 6;
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};

  const auto time_best = [&](const std::function<Result<Table>()>& run,
                             Table* result) -> double {
    double best = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      auto r = run();
      const auto end = std::chrono::steady_clock::now();
      if (!r.ok()) {
        std::fprintf(stderr, "vectorization sweep failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
      const double secs = std::chrono::duration<double>(end - start).count();
      if (rep == 0 || secs < best) {
        best = secs;
        *result = std::move(*r);
      }
    }
    return best;
  };

  bench::Table table({"engine", "threads", "seconds", "mrows/s", "vs_row"},
                     {8, 7, 9, 9, 8});
  table.PrintHeaderRow();
  Table row_result;
  const double row_seconds = time_best(
      [&]() {
        auto op = exec::ToOperator(plan);
        return exec::Drain(op.get());
      },
      &row_result);
  const auto emit = [&](const std::string& engine, int threads, double secs,
                        double speedup) {
    table.PrintRow({engine, StrFormat("%d", threads),
                    StrFormat("%.4f", secs),
                    StrFormat("%.1f",
                              static_cast<double>(rows) / secs / 1e6),
                    StrFormat("%.2fx", speedup)});
    bench::JsonLine line;
    line.Set("workload", "vec_scan_filter_agg")
        .Set("engine", engine)
        .Set("threads", static_cast<double>(threads))
        .Set("seconds", secs)
        .Set("rows", static_cast<double>(rows))
        .Set("rows_per_sec", static_cast<double>(rows) / secs)
        .Set("speedup_vs_row", speedup)
        .Set("quick", quick);
    json->Write(line);
  };
  emit("row", 1, row_seconds, 1.0);

  int violations = 0;
  double single_thread_speedup = 0.0;
  for (const int threads : thread_counts) {
    Table vec_result;
    const double secs = time_best(
        [&]() {
          exec::VecExecOptions vopts;
          vopts.num_threads = threads;
          return exec::ExecuteVectorized(plan, vopts);
        },
        &vec_result);
    if (!exec::BitIdenticalTables(row_result, vec_result)) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: vectorized at %d threads "
                   "diverges from the row engine\n",
                   threads);
      ++violations;
    }
    const double speedup = secs > 0.0 ? row_seconds / secs : 0.0;
    if (threads == 1) single_thread_speedup = speedup;
    emit("batch", threads, secs, speedup);
  }
  if (violations == 0) {
    std::printf(
        "\nBatch engine bit-identical to the row engine at every thread "
        "count; single-thread speedup %.2fx.\n",
        single_thread_speedup);
  }
  if (single_thread_speedup < 1.5) {
    std::fprintf(stderr,
                 "warning: single-thread batch speedup %.2fx below the "
                 "1.5x target\n",
                 single_thread_speedup);
  }

  // Profiler overhead: the same plan at the max sweep thread count with
  // EXPLAIN ANALYZE collection on vs off. Target is <5% wall clock. The
  // profiled run also contributes one "vec_profile_op" row per operator
  // so the BENCH artifact carries the per-operator profile.
  const int max_threads = thread_counts.back();
  const auto run_vec = [&](obs::OperatorProfile* profile) {
    return [&, profile]() {
      exec::VecExecOptions vopts;
      vopts.num_threads = max_threads;
      vopts.profile = profile;
      return exec::ExecuteVectorized(plan, vopts);
    };
  };
  // Interleave the two variants (instead of two back-to-back time_best
  // calls) so frequency/thermal drift hits both equally, and use extra
  // repeats: the deltas being resolved are small relative to run noise.
  const int overhead_reps = repeats * 3;
  Table plain_result;
  Table profiled_result;
  obs::OperatorProfile profile;
  double plain_seconds = 0.0;
  double profiled_seconds = 0.0;
  const auto time_once = [](const std::function<Result<Table>()>& run,
                            Table* result) -> double {
    const auto start = std::chrono::steady_clock::now();
    auto r = run();
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "profiler overhead run failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    *result = std::move(*r);
    return std::chrono::duration<double>(end - start).count();
  };
  for (int rep = 0; rep < overhead_reps; ++rep) {
    const double plain = time_once(run_vec(nullptr), &plain_result);
    if (rep == 0 || plain < plain_seconds) plain_seconds = plain;
    const double profiled = time_once(run_vec(&profile), &profiled_result);
    if (rep == 0 || profiled < profiled_seconds) profiled_seconds = profiled;
  }
  if (!exec::BitIdenticalTables(plain_result, profiled_result)) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: profiled vectorized run diverges "
                 "from the unprofiled run\n");
    ++violations;
  }
  const double overhead_pct =
      plain_seconds > 0.0
          ? (profiled_seconds / plain_seconds - 1.0) * 100.0
          : 0.0;
  std::printf(
      "\nProfiler overhead at %d threads: plain %.4fs, profiled %.4fs "
      "(%+.2f%%).\n",
      max_threads, plain_seconds, profiled_seconds, overhead_pct);
  if (overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "warning: profiler overhead %.2f%% above the 5%% target\n",
                 overhead_pct);
  }
  bench::JsonLine overhead;
  overhead.Set("workload", "vec_profile_overhead")
      .Set("threads", static_cast<double>(max_threads))
      .Set("seconds_plain", plain_seconds)
      .Set("seconds_profiled", profiled_seconds)
      .Set("overhead_pct", overhead_pct)
      .Set("rows", static_cast<double>(rows))
      .Set("quick", quick);
  json->Write(overhead);
  const std::function<void(const obs::OperatorProfile&, int)> emit_op =
      [&](const obs::OperatorProfile& op, int depth) {
        bench::JsonLine line;
        line.Set("workload", "vec_profile_op")
            .Set("op", op.name)
            .Set("depth", static_cast<double>(depth))
            .Set("rows_out", static_cast<double>(op.rows_out))
            .Set("batches", static_cast<double>(op.batches))
            .Set("op_seconds", op.seconds)
            .Set("est_memory_bytes",
                 static_cast<double>(op.est_memory_bytes))
            .Set("threads", static_cast<double>(max_threads))
            .Set("quick", quick);
        json->Write(line);
        for (const auto& child : op.children) emit_op(child, depth + 1);
      };
  emit_op(profile, 0);
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool sweep_only = false;
  bool vectorized_only = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      sweep_only = true;
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      sweep_only = true;
    } else if (std::strcmp(argv[i], "--vectorized") == 0) {
      quick = true;
      sweep_only = true;
      vectorized_only = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::BenchJsonWriter json("exec");
  if (vectorized_only) return RunVectorizationSweep(&json, quick);
  int rc = RunExecSweep(&json, quick);
  if (rc == 0) rc = RunVectorizationSweep(&json, quick);
  if (rc != 0 || sweep_only) return rc;
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
