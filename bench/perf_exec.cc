// google-benchmark microbenchmarks for the execution engine: operator
// throughputs (scan, filter, hash join, merge join, aggregation, sort),
// TPC-H data generation rate and partition-parallel Q5 end-to-end.
//
// Before the microbenchmarks, main() runs a thread-scaling sweep of the
// parallel FaultTolerantExecutor over TPC-H Q5 with failure injection and
// emits one row per (workload, threads) into BENCH_exec.json when
// $XDBFT_BENCH_JSON_DIR is set — the artifact the CI speedup check reads.
// The sweep asserts the query table and every deterministic counter are
// identical at each thread count. Flags (handled before google-benchmark):
//   --quick       tiny scale factor, thread counts {1, 2, 4}, skip the
//                 microbenchmarks (the bench-smoke ctest entry)
//   --sweep-only  full sweep, skip the microbenchmarks (the CI artifact)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "datagen/tpch_gen.h"
#include "engine/ft_executor.h"
#include "engine/query_runner.h"
#include "engine/stage_plan.h"
#include "exec/operators.h"
#include "ft/mat_config.h"

using namespace xdbft;
using exec::AggFunc;
using exec::Expr;
using exec::Table;
using exec::Value;
using exec::ValueType;

namespace {

Table MakeInts(int64_t n, int64_t key_domain, uint64_t seed) {
  Table t;
  t.schema = {{"k", ValueType::kInt64}, {"v", ValueType::kDouble}};
  Rng rng(seed);
  t.rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    t.rows.push_back({Value(rng.NextInt(0, key_domain - 1)),
                      Value(rng.NextDouble() * 100.0)});
  }
  return t;
}

void BM_Scan(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 1);
  for (auto _ : state) {
    auto op = exec::MakeScan(&t);
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Scan)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 2);
  for (auto _ : state) {
    auto op = exec::MakeFilter(
        exec::MakeScan(&t),
        exec::Lt(Expr::Col(0), Expr::Lit(Value(int64_t{500}))));
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  const Table build = MakeInts(state.range(0) / 10, 10000, 3);
  const Table probe = MakeInts(state.range(0), 10000, 4);
  for (auto _ : state) {
    auto op = exec::MakeHashJoin(exec::MakeScan(&build),
                                 exec::MakeScan(&probe), {0}, {0});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(100000);

void BM_MergeJoin(benchmark::State& state) {
  const Table build = MakeInts(state.range(0) / 10, 10000, 3);
  const Table probe = MakeInts(state.range(0), 10000, 4);
  for (auto _ : state) {
    auto op = exec::MakeMergeJoin(exec::MakeScan(&build),
                                  exec::MakeScan(&probe), 0, 0);
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeJoin)->Arg(100000);

void BM_HashAggregate(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 5);
  for (auto _ : state) {
    auto op = exec::MakeHashAggregate(
        exec::MakeScan(&t), {0},
        {{AggFunc::kSum, Expr::Col(1), "s"},
         {AggFunc::kCount, nullptr, "c"}});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(100000);

void BM_Sort(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1 << 30, 6);
  for (auto _ : state) {
    auto op = exec::MakeSort(exec::MakeScan(&t), {0}, {true});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Arg(100000);

void BM_TpchGenerate(benchmark::State& state) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.01;
  for (auto _ : state) {
    auto db = datagen::GenerateTpch(opts);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_TpchGenerate)->Unit(benchmark::kMillisecond);

void BM_Q5EndToEnd(benchmark::State& state) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.01;
  const auto db = *datagen::GenerateTpch(opts);
  const auto pd = *engine::DistributeTpch(db, 4);
  engine::QueryRunner runner(&pd);
  for (auto _ : state) {
    auto r = runner.RunQ5();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Q5EndToEnd)->Unit(benchmark::kMillisecond);

bool SameTable(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (!(a.rows[i][j] == b.rows[i][j])) return false;
    }
  }
  return true;
}

// One timed FaultTolerantExecutor run. The injector is re-created per run
// so every thread count sees the same failure schedule.
engine::FtExecutionResult RunOnce(const engine::StagePlan& plan,
                                  const engine::PartitionedDatabase& pd,
                                  const ft::MaterializationConfig& config,
                                  bool inject, int threads) {
  engine::FaultTolerantExecutor executor(&plan, &pd);
  executor.set_num_threads(threads);
  engine::ScriptedInjector injector(
      {{3, 1}, {4, 2}, {4, 5}, {5, 3}, {5, 6}}, /*times=*/2);
  auto r = executor.Execute(config, inject ? &injector : nullptr);
  if (!r.ok()) {
    std::fprintf(stderr, "exec sweep failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*r);
}

// Thread-scaling sweep of the parallel executor over TPC-H Q5, with and
// without injected failures, asserting the result table and every
// deterministic counter match the single-threaded run. Returns non-zero
// on a determinism violation.
int RunExecSweep(bool quick) {
  bench::PrintHeader(
      "Parallel fault-tolerant execution: thread scaling (TPC-H Q5)",
      "SIGMOD'15 \"Cost-based Fault-tolerance\" §5.1 execution layer");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  datagen::TpchGenOptions opts;
  opts.scale_factor = quick ? 0.005 : 0.05;
  opts.seed = 7;
  const auto db = *datagen::GenerateTpch(opts);
  const auto pd = *engine::DistributeTpch(db, 8);
  const engine::StagePlan plan = engine::MakeQ5StagePlan(pd);
  // No-mat maximizes recovery recomputation: each injected failure forces
  // the victim partition's whole chain to re-run, which is exactly the
  // work the pool should parallelize.
  const auto config = ft::MaterializationConfig::NoMat(plan.ToPlanSkeleton());
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const int repeats = quick ? 1 : 3;

  bench::BenchJsonWriter json("exec");
  bench::Table table({"workload", "threads", "seconds", "speedup",
                      "failures", "recoveries"},
                     {12, 7, 9, 8, 8, 10});
  table.PrintHeaderRow();
  int violations = 0;
  for (const bool inject : {false, true}) {
    const std::string workload = inject ? "q5_inject" : "q5_clean";
    engine::FtExecutionResult baseline;
    double baseline_seconds = 0.0;
    for (const int threads : thread_counts) {
      engine::FtExecutionResult best;
      double best_seconds = 0.0;
      for (int rep = 0; rep < repeats; ++rep) {
        auto r = RunOnce(plan, pd, config, inject, threads);
        if (rep == 0 || r.wall_seconds < best_seconds) {
          best_seconds = r.wall_seconds;
          best = std::move(r);
        }
      }
      if (threads == thread_counts.front()) {
        baseline_seconds = best_seconds;
        baseline = best;
      } else if (!SameTable(best.result, baseline.result) ||
                 best.failures_injected != baseline.failures_injected ||
                 best.recovery_executions != baseline.recovery_executions ||
                 best.task_executions != baseline.task_executions ||
                 best.rows_lost != baseline.rows_lost) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at %d threads diverges "
                     "from the single-threaded run\n",
                     workload.c_str(), threads);
        ++violations;
      }
      const double speedup =
          best_seconds > 0.0 ? baseline_seconds / best_seconds : 0.0;
      table.PrintRow({workload, StrFormat("%d", threads),
                      StrFormat("%.4f", best_seconds),
                      StrFormat("%.2fx", speedup),
                      StrFormat("%d", best.failures_injected),
                      StrFormat("%d", best.recovery_executions)});
      bench::JsonLine row;
      row.Set("workload", workload)
          .Set("threads", static_cast<double>(threads))
          .Set("seconds", best_seconds)
          .Set("speedup_vs_1", speedup)
          .Set("failures_injected",
               static_cast<double>(best.failures_injected))
          .Set("recovery_executions",
               static_cast<double>(best.recovery_executions))
          .Set("task_executions", static_cast<double>(best.task_executions))
          .Set("result_rows", static_cast<double>(best.result.num_rows()))
          .Set("scale_factor", opts.scale_factor)
          .Set("hardware_concurrency", static_cast<double>(hw))
          .Set("quick", quick);
      json.Write(row);
    }
  }
  if (violations == 0) {
    std::printf("\nAll thread counts bit-identical to threads=1.\n");
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool sweep_only = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      sweep_only = true;
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      sweep_only = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const int rc = RunExecSweep(quick);
  if (rc != 0 || sweep_only) return rc;
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
