// google-benchmark microbenchmarks for the execution engine: operator
// throughputs (scan, filter, hash join, merge join, aggregation, sort),
// TPC-H data generation rate and partition-parallel Q5 end-to-end.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/tpch_gen.h"
#include "engine/query_runner.h"
#include "exec/operators.h"

using namespace xdbft;
using exec::AggFunc;
using exec::Expr;
using exec::Table;
using exec::Value;
using exec::ValueType;

namespace {

Table MakeInts(int64_t n, int64_t key_domain, uint64_t seed) {
  Table t;
  t.schema = {{"k", ValueType::kInt64}, {"v", ValueType::kDouble}};
  Rng rng(seed);
  t.rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    t.rows.push_back({Value(rng.NextInt(0, key_domain - 1)),
                      Value(rng.NextDouble() * 100.0)});
  }
  return t;
}

void BM_Scan(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 1);
  for (auto _ : state) {
    auto op = exec::MakeScan(&t);
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Scan)->Arg(100000);

void BM_Filter(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 2);
  for (auto _ : state) {
    auto op = exec::MakeFilter(
        exec::MakeScan(&t),
        exec::Lt(Expr::Col(0), Expr::Lit(Value(int64_t{500}))));
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Filter)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  const Table build = MakeInts(state.range(0) / 10, 10000, 3);
  const Table probe = MakeInts(state.range(0), 10000, 4);
  for (auto _ : state) {
    auto op = exec::MakeHashJoin(exec::MakeScan(&build),
                                 exec::MakeScan(&probe), {0}, {0});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(100000);

void BM_MergeJoin(benchmark::State& state) {
  const Table build = MakeInts(state.range(0) / 10, 10000, 3);
  const Table probe = MakeInts(state.range(0), 10000, 4);
  for (auto _ : state) {
    auto op = exec::MakeMergeJoin(exec::MakeScan(&build),
                                  exec::MakeScan(&probe), 0, 0);
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeJoin)->Arg(100000);

void BM_HashAggregate(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1000, 5);
  for (auto _ : state) {
    auto op = exec::MakeHashAggregate(
        exec::MakeScan(&t), {0},
        {{AggFunc::kSum, Expr::Col(1), "s"},
         {AggFunc::kCount, nullptr, "c"}});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(100000);

void BM_Sort(benchmark::State& state) {
  const Table t = MakeInts(state.range(0), 1 << 30, 6);
  for (auto _ : state) {
    auto op = exec::MakeSort(exec::MakeScan(&t), {0}, {true});
    auto r = exec::Drain(op.get());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sort)->Arg(100000);

void BM_TpchGenerate(benchmark::State& state) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.01;
  for (auto _ : state) {
    auto db = datagen::GenerateTpch(opts);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_TpchGenerate)->Unit(benchmark::kMillisecond);

void BM_Q5EndToEnd(benchmark::State& state) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.01;
  const auto db = *datagen::GenerateTpch(opts);
  const auto pd = *engine::DistributeTpch(db, 4);
  engine::QueryRunner runner(&pd);
  for (auto _ : state) {
    auto r = runner.RunQ5();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Q5EndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
