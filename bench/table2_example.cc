// Table 2 / Section 3.5 running example: cost estimation for the two
// execution paths of the Figure 3 plan with MTBF_cost = 60, MTTR_cost = 0
// and S = 0.95. The paper reports TPt1 = 8.13 and TPt2 = 9.13 (after
// rounding gamma to two digits); exact evaluation gives 8.19 / 9.19.
#include <cstdio>

#include "bench/bench_util.h"
#include "ft/ft_cost.h"

using namespace xdbft;

int main() {
  bench::PrintHeader("Table 2 — Example Cost Estimation",
                     "Salama et al., SIGMOD'15, Table 2 (Section 3.5)");

  // The Fig. 3 plan with collapsed-operator costs t(c) = 4, 3, 1, 2.
  plan::PlanBuilder b("fig3");
  const plan::OpId s1 = b.Scan("R", 1e6, 100, 1.0);
  const plan::OpId s2 = b.Scan("S", 1e6, 100, 2.0);
  const plan::OpId j = b.Binary(plan::OpType::kHashJoin, "join", s1, s2,
                                1.5, 0.5);
  const plan::OpId m = b.Unary(plan::OpType::kMapUdf, "map", j, 1.0, 1.0);
  const plan::OpId r = b.Unary(plan::OpType::kRepartition, "rep", m, 1.5,
                               0.5);
  b.Unary(plan::OpType::kReduceUdf, "red1", r, 0.8, 0.2);
  b.Unary(plan::OpType::kReduceUdf, "red2", r, 1.6, 0.4);
  plan::Plan plan = std::move(b).Build();

  auto config = ft::MaterializationConfig::NoMat(plan);
  config.set_materialized(2, true);
  config.set_materialized(4, true);

  ft::FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(/*num_nodes=*/1, /*mtbf=*/60.0,
                                  /*mttr=*/0.0);
  ctx.model.success_target = 0.95;
  const ft::FailureParams params = ctx.MakeFailureParams();

  auto cp = ft::CollapsedPlan::Create(plan, config, 1.0);
  if (!cp.ok()) {
    std::fprintf(stderr, "error: %s\n", cp.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", cp->Explain().c_str());

  bench::Table table({"c", "t(c)", "w(c)", "gamma(c)", "a(c)", "T(c)"},
                     {12, 8, 8, 10, 10, 8});
  table.PrintHeaderRow();
  for (const auto& c : cp->ops()) {
    const double t = c.total_cost();
    std::vector<std::string> mems;
    for (auto mem : c.members) mems.push_back(std::to_string(mem + 1));
    table.PrintRow({"{" + Join(mems, ",") + "}", StrFormat("%.0f", t),
                    StrFormat("%.2f", ft::WastedTime(t, params)),
                    StrFormat("%.4f", ft::SuccessProbability(t, params.mtbf_cost)),
                    StrFormat("%.4f", ft::ExpectedAttempts(
                                          t, params.mtbf_cost,
                                          params.success_target)),
                    StrFormat("%.3f", ft::OperatorTotalRuntime(t, params))});
  }

  ft::FtCostModel model(ctx);
  const auto paths = cp->AllPaths();
  std::printf("\n");
  for (size_t i = 0; i < paths.size(); ++i) {
    std::printf("TPt%zu = %.3f\n", i + 1, model.PathCost(*cp, paths[i]));
  }
  auto est = model.Estimate(*cp);
  std::printf("Dominant path: TPt = %.3f (paper: 9.13 with rounded gamma)\n",
              est->dominant_cost);
  return 0;
}
