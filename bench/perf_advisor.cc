// Load generator for the AdvisorService serving layer: drives mixed
// hot/cold best-FT-plan request streams at it from concurrent client
// threads and reports p50/p95/p99 latency, throughput and cache-hit rate
// per (mode, clients, hot-fraction) sweep point — plus the speedup of the
// cached service over a cold (cache-disabled) baseline on the same mix.
//
// Every sweep also verifies the serving invariant: for each distinct
// request in the population, the service's answer (cached or fresh) is
// bit-identical to a one-shot ft::ApplyCostBasedScheme — same plan index,
// same materialization bits, same cost down to the last ulp. A violation
// prints IDENTITY VIOLATION and makes the process exit nonzero; latency
// numbers alone never fail the run (CI treats regressions as warnings).
//
// Rows land in $XDBFT_BENCH_JSON_DIR/BENCH_advisor.json (JSON lines) when
// the env var is set. `--quick` shrinks the population and request counts
// for the CI bench-smoke leg.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/advisor_service.h"
#include "bench_util.h"
#include "common/rng.h"
#include "ft/scheme.h"
#include "tpch/queries.h"

using namespace xdbft;

namespace {

struct LoadConfig {
  int clients = 1;
  int requests_per_client = 200;
  double hot_fraction = 0.9;
  size_t hot_set_size = 4;
};

struct LoadOutcome {
  std::vector<double> latencies_us;  // one per request, unordered
  double wall_seconds = 0.0;
  uint64_t failures = 0;
};

// The request population: a few TPC-H plan shapes crossed with per-key
// MTBF values, so every index is a distinct fingerprint over the same
// small set of plans. Indices [0, hot_set_size) form the hot set.
std::vector<api::AdvisorRequest> BuildPopulation(size_t size) {
  const tpch::TpchQuery kQueries[] = {tpch::TpchQuery::kQ1,
                                      tpch::TpchQuery::kQ3,
                                      tpch::TpchQuery::kQ5};
  std::vector<plan::Plan> plans;
  for (const tpch::TpchQuery q : kQueries) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = 10.0;
    plans.push_back(*tpch::BuildQuery(q, cfg));
  }
  std::vector<api::AdvisorRequest> population;
  population.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    api::AdvisorRequest request;
    request.candidates.push_back(plans[i % plans.size()]);
    // Distinct MTBF per key: same plan shape, different failure regime —
    // the cheapest way to mint an unbounded stream of cold keys.
    request.cluster = cost::MakeCluster(
        10, 1800.0 + 60.0 * static_cast<double>(i), 1.0);
    request.model = cost::CostModelParams{};
    population.push_back(std::move(request));
  }
  return population;
}

LoadOutcome RunLoad(api::AdvisorService& service,
                    const std::vector<api::AdvisorRequest>& population,
                    const LoadConfig& cfg) {
  LoadOutcome out;
  std::vector<std::vector<double>> per_thread(
      static_cast<size_t>(cfg.clients));
  std::vector<uint64_t> per_thread_failures(
      static_cast<size_t>(cfg.clients), 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(cfg.clients));
  for (int t = 0; t < cfg.clients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(0xC0FFEEULL + static_cast<uint64_t>(t) * 977);
      auto& lat = per_thread[static_cast<size_t>(t)];
      lat.reserve(static_cast<size_t>(cfg.requests_per_client));
      const size_t cold_n = population.size() - cfg.hot_set_size;
      for (int i = 0; i < cfg.requests_per_client; ++i) {
        size_t idx;
        if (cold_n == 0 || rng.NextDouble() < cfg.hot_fraction) {
          idx = rng.NextBounded(cfg.hot_set_size);
        } else {
          idx = cfg.hot_set_size + rng.NextBounded(cold_n);
        }
        const auto r0 = std::chrono::steady_clock::now();
        auto result = service.Advise(population[idx]);
        const auto r1 = std::chrono::steady_clock::now();
        if (!result.ok()) ++per_thread_failures[static_cast<size_t>(t)];
        lat.push_back(
            std::chrono::duration<double, std::micro>(r1 - r0).count());
      }
    });
  }
  for (std::thread& c : clients) c.join();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (int t = 0; t < cfg.clients; ++t) {
    auto& lat = per_thread[static_cast<size_t>(t)];
    out.latencies_us.insert(out.latencies_us.end(), lat.begin(), lat.end());
    out.failures += per_thread_failures[static_cast<size_t>(t)];
  }
  std::sort(out.latencies_us.begin(), out.latencies_us.end());
  return out;
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

bool BitIdentical(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

// The serving invariant: answers through the service — first touch
// (miss), second touch (hit) — match a one-shot ApplyCostBasedScheme
// bit for bit.
bool VerifyBitIdentity(api::AdvisorService& service,
                       const std::vector<api::AdvisorRequest>& population,
                       size_t sample) {
  bool ok = true;
  sample = std::min(sample, population.size());
  for (size_t i = 0; i < sample; ++i) {
    const api::AdvisorRequest& request = population[i];
    ft::FtCostContext context;
    context.cluster = request.cluster;
    context.model = request.model;
    const auto fresh = ft::ApplyCostBasedScheme(
        request.candidates, context, service.options().enumeration);
    const auto first = service.Advise(request);   // miss or hit
    const auto second = service.Advise(request);  // hit
    if (!fresh.ok() || !first.ok() || !second.ok()) {
      std::fprintf(stderr, "IDENTITY VIOLATION: request %zu errored\n", i);
      ok = false;
      continue;
    }
    for (const ft::SchemePlan* served :
         {&first.ValueOrDie(), &second.ValueOrDie()}) {
      if (served->plan_index != fresh.ValueOrDie().plan_index ||
          !(served->config == fresh.ValueOrDie().config) ||
          !BitIdentical(served->estimated_cost,
                        fresh.ValueOrDie().estimated_cost)) {
        std::fprintf(stderr,
                     "IDENTITY VIOLATION: request %zu cached != fresh "
                     "(plan %zu vs %zu, cost %.17g vs %.17g)\n",
                     i, served->plan_index, fresh.ValueOrDie().plan_index,
                     served->estimated_cost,
                     fresh.ValueOrDie().estimated_cost);
        ok = false;
      }
    }
  }
  return ok;
}

int RunSweep(bool quick) {
  bench::PrintHeader(
      "AdvisorService: cached FT-plan serving under load",
      "serving extension of §4 — cached answers bit-identical to "
      "findBestFTPlan");
  const size_t population_size = quick ? 48 : 192;
  const int requests_per_client = quick ? 120 : 400;
  const std::vector<api::AdvisorRequest> population =
      BuildPopulation(population_size);
  std::printf("population = %zu distinct requests, hardware_concurrency = "
              "%u\n\n",
              population.size(), std::thread::hardware_concurrency());

  bench::BenchJsonWriter json("advisor");
  bench::Table table({"mode", "clients", "hot%", "p50_us", "p95_us",
                      "p99_us", "qps", "hit_rate", "speedup"},
                     {8, 7, 5, 9, 9, 9, 9, 8, 8});
  table.PrintHeaderRow();

  bool identity_ok = true;
  int failures = 0;
  const std::vector<int> client_sweep =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  for (const double hot_fraction : {0.8, 0.95}) {
    // Cold baseline: same mix, caching off — every request enumerates.
    std::vector<double> cold_p50(static_cast<size_t>(
                                     *std::max_element(client_sweep.begin(),
                                                       client_sweep.end())) +
                                 1,
                                 0.0);
    for (const bool cached : {false, true}) {
      for (const int clients : client_sweep) {
        cost::ClusterStats default_cluster = cost::MakeCluster(10, 3600.0);
        api::AdvisorServiceOptions options;
        options.cache_enabled = cached;
        options.cache_capacity = quick ? 64 : 256;
        options.memo_cache_capacity = quick ? 32 : 128;
        api::AdvisorService service(default_cluster, {}, options);

        LoadConfig cfg;
        cfg.clients = clients;
        cfg.requests_per_client = requests_per_client;
        cfg.hot_fraction = hot_fraction;
        const LoadOutcome outcome = RunLoad(service, population, cfg);
        failures += static_cast<int>(outcome.failures);

        const double p50 = PercentileSorted(outcome.latencies_us, 50.0);
        const double p95 = PercentileSorted(outcome.latencies_us, 95.0);
        const double p99 = PercentileSorted(outcome.latencies_us, 99.0);
        const double qps =
            outcome.wall_seconds > 0.0
                ? static_cast<double>(outcome.latencies_us.size()) /
                      outcome.wall_seconds
                : 0.0;
        const api::AdvisorServiceStats stats = service.stats();
        double speedup = 0.0;
        if (!cached) {
          cold_p50[static_cast<size_t>(clients)] = p50;
        } else if (cold_p50[static_cast<size_t>(clients)] > 0.0 &&
                   p50 > 0.0) {
          speedup = cold_p50[static_cast<size_t>(clients)] / p50;
        }

        const char* mode = cached ? "cached" : "cold";
        table.PrintRow(
            {mode, StrFormat("%d", clients),
             StrFormat("%.0f", hot_fraction * 100.0),
             StrFormat("%.1f", p50), StrFormat("%.1f", p95),
             StrFormat("%.1f", p99), StrFormat("%.0f", qps),
             StrFormat("%.3f", stats.hit_rate()),
             cached ? StrFormat("%.1fx", speedup) : std::string("-")});

        bench::JsonLine row;
        row.Set("mode", mode)
            .Set("clients", static_cast<double>(clients))
            .Set("hot_fraction", hot_fraction)
            .Set("requests",
                 static_cast<double>(outcome.latencies_us.size()))
            .Set("p50_us", p50)
            .Set("p95_us", p95)
            .Set("p99_us", p99)
            .Set("qps", qps)
            .Set("hit_rate", stats.hit_rate())
            .Set("hits", static_cast<double>(stats.hits))
            .Set("misses", static_cast<double>(stats.misses))
            .Set("coalesced", static_cast<double>(stats.coalesced))
            .Set("evictions", static_cast<double>(stats.evictions))
            .Set("bypassed", static_cast<double>(stats.bypassed))
            .Set("memo_warm_starts",
                 static_cast<double>(stats.memo_warm_starts))
            .Set("p50_speedup_vs_cold", speedup)
            .Set("quick", quick);
        json.Write(row);

        // Identity sweep on the warm service (its cache is now populated
        // with this mix): cached answers must equal one-shot enumeration.
        if (cached) {
          identity_ok &= VerifyBitIdentity(service, population,
                                           quick ? 8 : 24);
        }
      }
    }
  }

  if (json.enabled()) std::printf("\nWrote %s\n", json.path().c_str());
  std::printf("\nbit-identity: %s\n", identity_ok ? "OK" : "VIOLATED");
  if (!identity_ok || failures > 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
      return 2;
    }
  }
  return RunSweep(quick);
}
