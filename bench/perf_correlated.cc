// perf_correlated: accuracy sweep of the correlated-failure cost model.
//
// Grids burst mean-interval x fan-out over a fixed pipeline plan, compares
// the independent model's and the correlated model's predicted T(c)
// against the simulated p95 runtime under burst traces (p95 is the
// quantity T(c) bounds: the runtime needed to reach the success target
// S = 0.95), and reports the absolute errors plus their ratio. The
// independent model only sees the negligible background Poisson process,
// so it predicts a near-failure-free runtime and measurably misses.
//
// Exit code 1 when the correlated model's summed error is not strictly
// smaller than the independent model's — the same invariant crosscheck's
// correlated_model_vs_sim enforces, here over the full grid.
//
// With XDBFT_BENCH_JSON_DIR set, rows are mirrored into
// BENCH_correlated.json for tools/check_bench.py regression comparison.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/failure_trace.h"
#include "cluster/simulator.h"
#include "cost/cost_params.h"
#include "ft/ft_cost.h"
#include "ft/mat_config.h"
#include "ft/scheme.h"
#include "plan/plan.h"

namespace xdbft {
namespace {

plan::Plan BurstChainPlan() {
  plan::PlanBuilder b("burst-chain");
  const plan::OpId s = b.Scan("s", 1e6, 100, 80.0);
  const plan::OpId f = b.Unary(plan::OpType::kFilter, "f", s, 70.0, 5.0);
  b.Unary(plan::OpType::kHashAggregate, "agg", f, 50.0, 5.0);
  return std::move(b).Build();
}

int Run(bool quick) {
  bench::PrintHeader(
      "Correlated-failure model accuracy (burst sweep)",
      "correlated extension beyond the paper's independent-MTBF model");

  const plan::Plan plan = BurstChainPlan();
  const ft::MaterializationConfig config =
      ft::MaterializationConfig::NoMat(plan);
  constexpr double kBackgroundMtbf = 1.0e8;  // bursts dominate
  const cost::ClusterStats stats =
      cost::MakeCluster(/*num_nodes=*/4, kBackgroundMtbf, /*mttr=*/10.0);

  ft::FtCostContext independent;
  independent.cluster = stats;
  cluster::ClusterSimulator sim(stats, cluster::SimulationOptions{});
  ft::SchemePlan scheme;
  scheme.kind = ft::SchemeKind::kCostBased;
  scheme.recovery = ft::RecoveryMode::kFineGrained;
  scheme.plan = plan;
  scheme.config = config;

  const std::vector<double> intervals =
      quick ? std::vector<double>{150.0, 400.0}
            : std::vector<double>{150.0, 250.0, 400.0, 800.0};
  const std::vector<double> fanouts =
      quick ? std::vector<double>{1.0} : std::vector<double>{0.5, 1.0};
  const int traces_per_point = quick ? 12 : 32;

  bench::BenchJsonWriter json("correlated");
  bench::Table table({"interval", "fanout", "T_indep", "T_corr", "sim_p95",
                      "err_indep", "err_corr", "err_ratio"},
                     {8, 6, 9, 9, 9, 9, 9, 9});
  table.PrintHeaderRow();

  double sum_err_independent = 0.0;
  double sum_err_correlated = 0.0;
  uint64_t grid_point = 0;
  for (double fanout : fanouts) {
    for (double mean_interval : intervals) {
      ft::FtCostContext correlated = independent;
      correlated.cluster.burst_mtbf_seconds = mean_interval;
      correlated.cluster.burst_fanout = fanout;
      auto pred_ind =
          ft::FtCostModel(independent).Estimate(plan, config);
      auto pred_cor =
          ft::FtCostModel(correlated).Estimate(plan, config);
      if (!pred_ind.ok() || !pred_cor.ok()) {
        std::fprintf(stderr, "estimate failed: %s\n",
                     (pred_ind.ok() ? pred_cor : pred_ind)
                         .status()
                         .ToString()
                         .c_str());
        return 1;
      }

      cluster::BurstOptions burst;
      burst.mean_interval = mean_interval;
      burst.horizon = 1.0e6;
      burst.width = 1.0;
      burst.min_nodes =
          static_cast<int>(std::lround(fanout * stats.num_nodes));
      burst.max_nodes = burst.min_nodes;
      burst.background_mtbf = kBackgroundMtbf;
      std::vector<cluster::ClusterTrace> traces =
          cluster::GenerateBurstTraceSet(stats, burst, traces_per_point,
                                         /*base_seed=*/1234 + ++grid_point);
      auto agg = sim.RunMany(scheme, traces);
      if (!agg.ok()) {
        std::fprintf(stderr, "simulation failed: %s\n",
                     agg.status().ToString().c_str());
        return 1;
      }
      const double err_independent =
          std::abs(pred_ind->dominant_cost - agg->runtime_p95);
      const double err_correlated =
          std::abs(pred_cor->dominant_cost - agg->runtime_p95);
      const double err_ratio =
          err_independent > 0.0 ? err_correlated / err_independent : 0.0;
      sum_err_independent += err_independent;
      sum_err_correlated += err_correlated;

      table.PrintRow({StrFormat("%.0f", mean_interval),
                      StrFormat("%.2f", fanout),
                      StrFormat("%.1f", pred_ind->dominant_cost),
                      StrFormat("%.1f", pred_cor->dominant_cost),
                      StrFormat("%.1f", agg->runtime_p95),
                      StrFormat("%.1f", err_independent),
                      StrFormat("%.1f", err_correlated),
                      StrFormat("%.3f", err_ratio)});
      bench::JsonLine row;
      row.Set("mean_interval", mean_interval)
          .Set("fanout", fanout)
          .Set("predicted_indep", pred_ind->dominant_cost)
          .Set("predicted_corr", pred_cor->dominant_cost)
          .Set("sim_p95", agg->runtime_p95)
          .Set("err_indep", err_independent)
          .Set("err_corr", err_correlated)
          .Set("err_ratio", err_ratio);
      json.Write(row);
    }
  }

  std::printf("\nsummed |error|: correlated %.1f vs independent %.1f\n",
              sum_err_correlated, sum_err_independent);
  if (json.enabled()) {
    std::printf("json: %s\n", json.path().c_str());
  }
  if (!(sum_err_correlated < sum_err_independent)) {
    std::fprintf(stderr,
                 "FAIL: correlated model no more accurate than the "
                 "independent model under burst traces\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xdbft

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return xdbft::Run(quick);
}
