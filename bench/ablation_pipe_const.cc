// Ablation: CONST_pipe, the pipeline-parallelism discount of Eq. 1. The
// paper calibrates it per PDE (1.0 for XDB); this ablation shows how the
// chosen materialization configuration and the rule-1 pruning behavior
// react when pipelining is more effective (smaller CONST_pipe).
#include <cstdio>

#include "bench/bench_util.h"
#include "ft/enumerator.h"
#include "ft/pruning.h"
#include "tpch/queries.h"

using namespace xdbft;

int main() {
  bench::PrintHeader(
      "Ablation — CONST_pipe (pipeline-parallelism discount, Eq. 1)",
      "Salama et al., SIGMOD'15, Section 3.3 (calibration constant)");

  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  if (!plan.ok()) return 1;

  bench::Table table({"CONST_pipe", "ft cost(s)", "m-ops", "rule1 marks"},
                     {10, 12, 8, 12});
  table.PrintHeaderRow();
  for (double pipe : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
    ft::FtCostContext ctx;
    ctx.cluster = cost::MakeCluster(10, cost::kSecondsPerHour, 1.0);
    ctx.model.pipe_constant = pipe;
    ft::FtPlanEnumerator enumerator(ctx);
    auto best = enumerator.FindBest(*plan);
    if (!best.ok()) {
      std::fprintf(stderr, "pipe=%g: %s\n", pipe,
                   best.status().ToString().c_str());
      continue;
    }
    plan::Plan copy = *plan;
    const int marks = ft::ApplyPruningRule1(&copy, pipe);
    table.PrintRow({StrFormat("%.1f", pipe),
                    StrFormat("%.1f", best->estimated_cost),
                    StrFormat("%zu", best->config.NumMaterialized()),
                    StrFormat("%d", marks)});
  }
  std::printf(
      "\nTakeaway: stronger pipelining (lower CONST_pipe) makes collapsed\n"
      "sub-plans cheaper to re-execute, so the scheme materializes less\n"
      "and rule 1 marks more operators as not worth materializing.\n");
  return 0;
}
