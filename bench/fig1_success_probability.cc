// Figure 1: probability that a query finishes without a mid-query failure
// as a function of its runtime, for four cluster setups varying in size
// and per-node MTBF (P = e^{-t*n/MTBF}).
#include <cstdio>

#include "bench/bench_util.h"
#include "cost/cost_params.h"
#include "ft/failure_math.h"

using namespace xdbft;

int main() {
  bench::PrintHeader("Figure 1 — Probability of Success of a Query",
                     "Salama et al., SIGMOD'15, Fig. 1 (Section 1)");

  struct Setup {
    const char* name;
    double mtbf;
    int nodes;
  };
  const Setup setups[] = {
      {"Cluster 1 (MTBF=1 hour, n=100)", cost::kSecondsPerHour, 100},
      {"Cluster 2 (MTBF=1 week, n=100)", cost::kSecondsPerWeek, 100},
      {"Cluster 3 (MTBF=1 hour, n=10)", cost::kSecondsPerHour, 10},
      {"Cluster 4 (MTBF=1 week, n=10)", cost::kSecondsPerWeek, 10},
  };

  bench::Table table({"runtime(min)", "cluster1(%)", "cluster2(%)",
                      "cluster3(%)", "cluster4(%)"},
                     {12, 12, 12, 12, 12});
  for (const auto& s : setups) {
    std::printf("  %s\n", s.name);
  }
  std::printf("\n");
  table.PrintHeaderRow();
  for (int minutes = 0; minutes <= 160; minutes += 10) {
    const double t = minutes * cost::kSecondsPerMinute;
    std::vector<std::string> row = {StrFormat("%d", minutes)};
    for (const auto& s : setups) {
      row.push_back(StrFormat(
          "%.1f", 100.0 * ft::QuerySuccessProbability(t, s.mtbf, s.nodes)));
    }
    table.PrintRow(row);
  }

  std::printf(
      "\nExpected shape (paper): cluster 1 drops to ~0%% within minutes;\n"
      "cluster 4 stays near 100%%; clusters 2 and 3 depend strongly on the\n"
      "query runtime.\n");
  return 0;
}
