// Ablation: width k of the phase-1 top-k plan enumeration (§3.2). The
// paper motivates analyzing more than the single cheapest plan: a plan
// slightly slower without failures can win once recovery costs are
// considered (cheap materialization points in the right places). This
// ablation sweeps k over the Q5 join-order space.
#include <cstdio>

#include "bench/bench_util.h"
#include "ft/enumerator.h"
#include "tpch/q5_join_graph.h"

using namespace xdbft;

int main() {
  bench::PrintHeader(
      "Ablation — top-k width of phase-1 plan enumeration (Q5 join "
      "orders)",
      "Salama et al., SIGMOD'15, Section 3.2 (enumFTPlans phase 1)");

  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto graph = tpch::MakeQ5JoinGraph(cfg);
  if (!graph.ok()) return 1;
  auto params = tpch::MakePhysicalCostParams(cfg);

  bench::Table table({"MTBF", "k", "phase1 cost(s)", "ft cost(s)",
                      "vs k=1(%)"},
                     {10, 4, 15, 12, 10});
  table.PrintHeaderRow();
  for (double mtbf : {cost::kSecondsPerDay, cost::kSecondsPerHour}) {
    double k1_cost = 0.0;
    for (int k : {1, 2, 4, 8, 16, 32}) {
      optimizer::JoinTreeArena arena;
      auto roots = optimizer::EnumerateTopKJoinTrees(*graph, k, params,
                                                     &arena);
      if (!roots.ok()) continue;
      std::vector<plan::Plan> plans;
      for (int root : *roots) {
        auto p = optimizer::EmitPlan(arena, root, *graph, params);
        if (p.ok()) plans.push_back(std::move(*p));
      }
      const double phase1 =
          optimizer::TreeCost(arena, (*roots)[0], *graph, params);
      ft::FtCostContext ctx;
      ctx.cluster = cost::MakeCluster(cfg.num_nodes, mtbf, 1.0);
      ft::EnumerationOptions opts;
      opts.num_threads = bench::EnvThreads();
      ft::FtPlanEnumerator enumerator(ctx, opts);
      auto best = enumerator.FindBest(plans);
      if (!best.ok()) continue;
      if (k == 1) k1_cost = best->estimated_cost;
      table.PrintRow(
          {HumanDuration(mtbf), StrFormat("%d", k),
           StrFormat("%.1f", phase1),
           StrFormat("%.1f", best->estimated_cost),
           StrFormat("%+.2f",
                     (best->estimated_cost / k1_cost - 1.0) * 100.0)});
    }
  }
  std::printf(
      "\nFor Q5 the runtime-optimal join order also carries the cheapest\n"
      "materialization points, so k = 1 is already FT-optimal.\n");

  // (b) A workload where the metrics diverge: the runtime-cheapest order
  // produces a *wide* intermediate (expensive to materialize), while a
  // slightly slower order offers a narrow, checkpointable one — the
  // paper's §3.2 motivation for analyzing the top-k plans.
  std::printf(
      "\n(b) Synthetic 3-relation join where runtime- and FT-optimal "
      "orders diverge\n");
  optimizer::JoinGraph g;
  g.AddRelation({"WIDE", 5e7, 12.5, 800, 2000});
  g.AddRelation({"MID", 5e7, 12.5, 8, 40});
  g.AddRelation({"NARROW", 5e7, 12.5, 8, 40});
  // WIDE-MID produces fewer rows (runtime-cheaper) but 200 B-wide ones;
  // MID-NARROW produces more rows but 16-byte ones.
  (void)g.AddEdge(0, 1, 1.0e-9, "w=m");
  (void)g.AddEdge(1, 2, 4.0e-9, "m=n");

  optimizer::PhysicalCostParams sparams;
  bench::Table tb({"MTBF", "k", "chosen order", "ft cost(s)", "vs k=1(%)"},
                  {10, 4, 22, 12, 10});
  tb.PrintHeaderRow();
  for (double mtbf : {cost::kSecondsPerDay, 300.0}) {
    double k1_cost = 0.0;
    for (int k : {1, 2, 4}) {
      optimizer::JoinTreeArena arena;
      auto roots = optimizer::EnumerateTopKJoinTrees(g, k, sparams, &arena);
      if (!roots.ok()) continue;
      std::vector<plan::Plan> plans;
      for (int root : *roots) {
        auto p = optimizer::EmitPlan(arena, root, g, sparams);
        if (p.ok()) plans.push_back(std::move(*p));
      }
      ft::FtCostContext ctx;
      ctx.cluster = cost::MakeCluster(10, mtbf, 1.0);
      ft::EnumerationOptions opts;
      opts.num_threads = bench::EnvThreads();
      ft::FtPlanEnumerator enumerator(ctx, opts);
      auto best = enumerator.FindBest(plans);
      if (!best.ok()) continue;
      if (k == 1) k1_cost = best->estimated_cost;
      tb.PrintRow({HumanDuration(mtbf), StrFormat("%d", k),
                   arena.ToString((*roots)[best->plan_index], g),
                   StrFormat("%.1f", best->estimated_cost),
                   StrFormat("%+.2f", (best->estimated_cost / k1_cost -
                                       1.0) * 100.0)});
    }
  }
  std::printf(
      "\nTakeaway: a modest k captures plans whose materialization points\n"
      "pay off under failures; gains saturate quickly, supporting the\n"
      "paper's top-k (rather than exhaustive) phase-1 design.\n");
  return 0;
}
