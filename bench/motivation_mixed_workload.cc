// The paper's §1 motivation, quantified at workload level: a mix of
// short interactive and long batch queries on one cluster, executed
// back-to-back over a shared failure trace. Fixed schemes have a sweet
// spot somewhere in the mix; the cost-based scheme re-optimizes per query
// and wins (or ties) on every query and on the workload makespan.
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/workload.h"
#include "tpch/queries.h"

using namespace xdbft;

int main() {
  bench::PrintHeader(
      "Motivation — mixed workload on one cluster (Q5 at SF 1/10/50/300 + "
      "Q1C at SF 50)",
      "Salama et al., SIGMOD'15, Section 1 (motivating scenario)");

  std::vector<cluster::WorkloadQuery> workload;
  auto add = [&](const char* label, tpch::TpchQuery q, double sf) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = sf;
    auto p = tpch::BuildQuery(q, cfg);
    if (p.ok()) workload.push_back({label, std::move(*p), 0.0});
  };
  add("Q5 interactive (SF=1)", tpch::TpchQuery::kQ5, 1.0);
  add("Q5 short (SF=10)", tpch::TpchQuery::kQ5, 10.0);
  add("Q1C report (SF=50)", tpch::TpchQuery::kQ1C, 50.0);
  add("Q5 medium (SF=50)", tpch::TpchQuery::kQ5, 50.0);
  add("Q5 batch (SF=300)", tpch::TpchQuery::kQ5, 300.0);

  const auto stats = cost::MakeCluster(10, cost::kSecondsPerHour, 1.0);
  const int kSeeds = 10;
  std::printf(
      "Cluster: %s; shared failure trace per scheme run, averaged over %d "
      "trace seeds.\n\n",
      stats.ToString().c_str(), kSeeds);

  // Aggregate per-query overheads and workload totals over the seeds.
  const size_t nq = workload.size();
  std::vector<std::vector<double>> ovh(4, std::vector<double>(nq, 0.0));
  std::vector<std::vector<int>> completed(4, std::vector<int>(nq, 0));
  std::vector<double> makespan(4, 0.0);
  std::vector<int> aborted(4, 0);
  std::vector<ft::SchemeKind> kinds;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto outcomes = cluster::CompareSchemesOnWorkload(workload, stats, {},
                                                      seed);
    if (!outcomes.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   outcomes.status().ToString().c_str());
      return 1;
    }
    if (kinds.empty()) {
      for (const auto& o : *outcomes) kinds.push_back(o.scheme);
    }
    for (size_t si = 0; si < outcomes->size(); ++si) {
      const auto& o = (*outcomes)[si];
      makespan[si] += o.makespan_seconds / kSeeds;
      aborted[si] += o.aborted;
      for (size_t qi = 0; qi < nq; ++qi) {
        if (o.queries[qi].completed) {
          ovh[si][qi] += o.queries[qi].overhead_percent;
          ++completed[si][qi];
        }
      }
    }
  }

  bench::Table table({"query", "all-mat", "no-mat(lin)", "no-mat(rst)",
                      "cost-based"},
                     {24, 10, 12, 12, 12});
  std::printf("Per-query mean overhead (%% over each query's baseline):\n");
  table.PrintHeaderRow();
  for (size_t qi = 0; qi < nq; ++qi) {
    std::vector<std::string> row = {workload[qi].label};
    for (size_t si = 0; si < kinds.size(); ++si) {
      row.push_back(completed[si][qi] == 0
                        ? "Aborted"
                        : StrFormat("%.1f",
                                    ovh[si][qi] / completed[si][qi]));
    }
    table.PrintRow(row);
  }

  std::printf("\nWorkload totals (means over %d seeds):\n", kSeeds);
  bench::Table totals({"scheme", "makespan", "aborted runs"},
                      {18, 14, 14});
  totals.PrintHeaderRow();
  for (size_t si = 0; si < kinds.size(); ++si) {
    totals.PrintRow({ft::SchemeKindName(kinds[si]),
                     HumanDuration(makespan[si]),
                     StrFormat("%d", aborted[si])});
  }
  std::printf(
      "\nExpected shape (paper §1): all-mat taxes the short queries,\n"
      "no-mat blows up on the long ones (restart may abort outright);\n"
      "the cost-based scheme picks each query's sweet spot and minimizes\n"
      "the workload makespan.\n");
  return 0;
}
