// perf_schemes: Fig. 8/9-style overhead sweep of all five fault-tolerance
// schemes over the pipelined workload shape, varying per-stage runtime.
//
// For each runtime scale a small workload of identical pipelined queries
// (deep filter chains with bulky intermediates) runs under every scheme on
// the same continuous failure trace; the table reports makespan, mean
// overhead over the failure-free baseline, and aborts. The long-runtime
// grid point is the regime write-ahead lineage exists for: the query spans
// several MTBFs, so restart-from-scratch thrashes while WAL pays a bounded
// log-write tax and replays.
//
// Exit code 1 when write-ahead lineage does not strictly beat
// no-mat-restart on the long-runtime grid point — the same invariant
// crosscheck's wal_beats_restart enforces.
//
// With XDBFT_BENCH_JSON_DIR set, rows are mirrored into
// BENCH_schemes.json for tools/check_bench.py regression comparison.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/workload.h"
#include "cost/cost_params.h"
#include "ft/scheme.h"

namespace xdbft {
namespace {

int Run(bool quick) {
  bench::PrintHeader(
      "Scheme comparison on pipelined workloads (runtime sweep)",
      "Fig. 8/9 protocol applied to the write-ahead lineage extension");

  const cost::ClusterStats stats =
      cost::MakeCluster(/*num_nodes=*/4, /*mtbf=*/1200.0, /*mttr=*/10.0);
  cost::CostModelParams model;
  model.wal_write_cost = 0.3;
  model.wal_replay_factor = 0.25;

  const std::vector<double> scales =
      quick ? std::vector<double>{0.5, 8.0}
            : std::vector<double>{0.5, 2.0, 8.0};
  const double long_runtime_scale = scales.back();
  const int queries = quick ? 3 : 6;

  bench::BenchJsonWriter json("schemes");
  bench::Table table({"scale", "scheme", "makespan", "overhead%", "aborted"},
                     {6, 20, 10, 10, 8});
  table.PrintHeaderRow();

  double wal_long = -1.0, restart_long = -1.0;
  int wal_long_aborted = 0, restart_long_aborted = 0;
  for (double scale : scales) {
    const auto workload =
        cluster::MakePipelinedWorkload(queries, /*depth=*/6, scale);
    auto out = cluster::CompareSchemesOnWorkload(workload, stats, model,
                                                /*trace_seed=*/42);
    if (!out.ok()) {
      std::fprintf(stderr, "workload comparison failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    for (const auto& o : *out) {
      table.PrintRow({StrFormat("%.1f", scale),
                      ft::SchemeKindName(o.scheme),
                      StrFormat("%.1f", o.makespan_seconds),
                      StrFormat("%.1f", o.mean_overhead_percent),
                      StrFormat("%d", o.aborted)});
      bench::JsonLine row;
      row.Set("scale", scale)
          .Set("scheme", ft::SchemeKindName(o.scheme))
          .Set("makespan_seconds", o.makespan_seconds)
          .Set("mean_overhead_percent", o.mean_overhead_percent)
          .Set("aborted", static_cast<double>(o.aborted));
      json.Write(row);
      if (scale == long_runtime_scale) {
        if (o.scheme == ft::SchemeKind::kWriteAheadLineage) {
          wal_long = o.makespan_seconds;
          wal_long_aborted = o.aborted;
        } else if (o.scheme == ft::SchemeKind::kNoMatRestart) {
          restart_long = o.makespan_seconds;
          restart_long_aborted = o.aborted;
        }
      }
    }
  }

  if (json.enabled()) {
    std::printf("json: %s\n", json.path().c_str());
  }
  // The headline invariant: past break-even, WAL strictly beats
  // restart-from-scratch (a restart abort with a completed WAL run is the
  // degenerate win).
  if (wal_long_aborted > restart_long_aborted) {
    std::fprintf(stderr,
                 "FAIL: WAL aborted more often than no-mat-restart on the "
                 "long-runtime point (%d vs %d)\n",
                 wal_long_aborted, restart_long_aborted);
    return 1;
  }
  if (restart_long_aborted == wal_long_aborted &&
      !(wal_long < restart_long)) {
    std::fprintf(stderr,
                 "FAIL: write-ahead lineage makespan %.1f not below "
                 "no-mat-restart %.1f on the long-runtime point\n",
                 wal_long, restart_long);
    return 1;
  }
  std::printf(
      "\nlong-runtime point (scale %.1f): WAL %.1f s vs no-mat-restart "
      "%.1f s\n",
      long_runtime_scale, wal_long, restart_long);
  return 0;
}

}  // namespace
}  // namespace xdbft

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return xdbft::Run(quick);
}
