// Ablation: the paper's single-machine cost model (§3.5, footnote 6) vs
// our S^(1/n) extension, validated against the simulator across cluster
// sizes. The paper's model is insensitive to n; the simulated runtime is
// the max over n per-node recovery processes and therefore grows with n.
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/simulator.h"
#include "ft/enumerator.h"
#include "plan/plan.h"

using namespace xdbft;

namespace {

plan::Plan ChainPlan(int stages, double stage_seconds, double mat_seconds) {
  plan::PlanBuilder b("chain");
  auto prev = b.Scan("base", 1e8, 64, stage_seconds);
  b.plan().mutable_node(prev).materialize_cost = mat_seconds;
  for (int i = 1; i < stages; ++i) {
    prev = b.Unary(plan::OpType::kMapUdf, "s" + std::to_string(i), prev,
                   stage_seconds, mat_seconds);
  }
  return std::move(b).Build();
}

double SimulatedMean(const plan::Plan& plan,
                     const ft::MaterializationConfig& config,
                     const cost::ClusterStats& stats) {
  cluster::ClusterSimulator sim(stats);
  double total = 0.0;
  const int kRuns = 40;
  for (uint64_t seed = 0; seed < kRuns; ++seed) {
    cluster::ClusterTrace trace = cluster::ClusterTrace::Generate(stats,
                                                                  seed);
    auto r = sim.Run(plan, config, ft::RecoveryMode::kFineGrained, trace);
    total += r->runtime;
  }
  return total / kRuns;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — cluster-size sensitivity: paper model vs S^(1/n) "
      "extension vs simulation",
      "extension of Salama et al., SIGMOD'15, Section 3.5");

  const plan::Plan plan = ChainPlan(4, 100.0, 5.0);
  const auto config = ft::MaterializationConfig::AllMat(plan);

  bench::Table table({"n", "paper est(s)", "ext est(s)", "simulated(s)",
                      "paper err(%)", "ext err(%)"},
                     {6, 13, 12, 13, 13, 11});
  table.PrintHeaderRow();
  for (int n : {1, 5, 10, 25, 50, 100}) {
    const auto stats = cost::MakeCluster(n, 3600.0, 1.0);
    ft::FtCostContext ctx;
    ctx.cluster = stats;
    ctx.model.scale_success_target_with_cluster = false;
    auto paper = ft::FtCostModel(ctx).Estimate(plan, config);
    ctx.model.scale_success_target_with_cluster = true;
    auto ext = ft::FtCostModel(ctx).Estimate(plan, config);
    if (!paper.ok() || !ext.ok()) continue;
    const double sim = SimulatedMean(plan, config, stats);
    table.PrintRow(
        {StrFormat("%d", n), StrFormat("%.1f", paper->dominant_cost),
         StrFormat("%.1f", ext->dominant_cost), StrFormat("%.1f", sim),
         StrFormat("%+.1f", (paper->dominant_cost / sim - 1.0) * 100.0),
         StrFormat("%+.1f", (ext->dominant_cost / sim - 1.0) * 100.0)});
  }
  std::printf(
      "\nTakeaway: the paper's per-node model is accurate for small n and\n"
      "increasingly optimistic as the cluster grows (the effect behind its\n"
      "Fig. 12a underestimation); the S^(1/n) extension tracks the\n"
      "simulated max-over-n-nodes runtime across the sweep.\n");
  return 0;
}
