// Figure 10 (Exp. 2a): overhead of the four schemes for TPC-H Q5 with
// varying runtime (scale factors SF = 1 .. 1000), MTBF = 1 day per node,
// 10 nodes, 10 failure traces per point.
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/experiment.h"
#include "tpch/queries.h"

using namespace xdbft;

int main() {
  bench::PrintHeader(
      "Figure 10 — Overhead vs Query Runtime (Q5, MTBF = 1 day/node)",
      "Salama et al., SIGMOD'15, Fig. 10 (Section 5.3, Exp. 2a)");

  bench::Table table({"SF", "baseline(min)", "all-mat", "no-mat(lin)",
                      "no-mat(rst)", "cost-based", "cb-mat-ops"},
                     {6, 14, 10, 12, 12, 12, 10});
  table.PrintHeaderRow();

  // SF beyond TPC-H's official range extends the runtime axis to the
  // paper's ~1000-minute upper end (runtime scales linearly with SF).
  for (double sf : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                    1000.0, 2000.0, 4000.0}) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = sf;
    auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
    if (!plan.ok()) continue;
    const auto stats =
        cost::MakeCluster(cfg.num_nodes, cost::kSecondsPerDay, 1.0);
    auto result = cluster::RunSchemeComparison(*plan, stats, {},
                                               /*num_traces=*/30);
    if (!result.ok()) {
      std::fprintf(stderr, "SF=%g: %s\n", sf,
                   result.status().ToString().c_str());
      continue;
    }
    const auto& am = result->outcome(ft::SchemeKind::kAllMat);
    const auto& nl = result->outcome(ft::SchemeKind::kNoMatLineage);
    const auto& nr = result->outcome(ft::SchemeKind::kNoMatRestart);
    const auto& cb = result->outcome(ft::SchemeKind::kCostBased);
    table.PrintRow({StrFormat("%.0f", sf),
                    StrFormat("%.1f", result->baseline_runtime / 60.0),
                    bench::OverheadCell(am.completed, am.overhead_percent),
                    bench::OverheadCell(nl.completed, nl.overhead_percent),
                    bench::OverheadCell(nr.completed, nr.overhead_percent),
                    bench::OverheadCell(cb.completed, cb.overhead_percent),
                    StrFormat("%zu", cb.num_materialized)});
  }

  std::printf(
      "\nExpected shape (paper): cost-based has the lowest overhead across\n"
      "the whole range, starting near 0%% for short queries; no-mat\n"
      "(restart) stops finishing for long queries; no-mat (lineage)\n"
      "degrades more gracefully but stays above cost-based; all-mat tracks\n"
      "cost-based closely (Q5's materialization totals only ~34%% of its\n"
      "runtime costs), with cost-based pulling ahead for long queries by\n"
      "materializing only the small intermediates.\n");
  return 0;
}
