// google-benchmark microbenchmarks for the optimizer-facing hot paths:
// collapsed-plan construction, path enumeration, cost estimation, the
// full findBestFTPlan with and without pruning (sequential and on the
// work-stealing task pool), and join-order enumeration.
//
// Before the microbenchmarks, main() runs a thread-scaling sweep of
// findBestFTPlan over the Q5 workloads (top-k candidates and all 1344
// join orders) and emits one row per (workload, threads) into
// BENCH_enum.json when $XDBFT_BENCH_JSON_DIR is set — the artifact the
// CI speedup check reads. Rows record the machine's hardware
// concurrency, since the attainable speedup is bounded by it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench_util.h"
#include "ft/enumerator.h"
#include "tpch/q5_join_graph.h"
#include "tpch/queries.h"

using namespace xdbft;

namespace {

plan::Plan Q5Plan() {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  return *tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
}

ft::FtCostContext Context(double mtbf = 3600.0) {
  ft::FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, mtbf, 1.0);
  return ctx;
}

std::vector<plan::Plan> Q5JoinOrderPlans(int top_k) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  const auto graph = *tpch::MakeQ5JoinGraph(cfg);
  const auto params = tpch::MakePhysicalCostParams(cfg);
  optimizer::JoinTreeArena arena;
  std::vector<int> roots;
  if (top_k > 0) {
    roots = *optimizer::EnumerateTopKJoinTrees(graph, top_k, params, &arena);
  } else {
    roots = *optimizer::EnumerateAllJoinTrees(graph, &arena);
  }
  std::vector<plan::Plan> plans;
  for (int root : roots) {
    plans.push_back(*optimizer::EmitPlan(arena, root, graph, params));
  }
  return plans;
}

void BM_CollapsePlan(benchmark::State& state) {
  const plan::Plan plan = Q5Plan();
  const auto config = ft::MaterializationConfig::FromFreeMask(plan, 0b10101);
  for (auto _ : state) {
    auto cp = ft::CollapsedPlan::Create(plan, config);
    benchmark::DoNotOptimize(cp);
  }
}
BENCHMARK(BM_CollapsePlan);

void BM_PathEnumeration(benchmark::State& state) {
  const plan::Plan plan = Q5Plan();
  const auto config = ft::MaterializationConfig::FromFreeMask(plan, 0b10101);
  const auto cp = *ft::CollapsedPlan::Create(plan, config);
  for (auto _ : state) {
    size_t count = 0;
    cp.ForEachPath([&](const ft::CollapsedPath&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PathEnumeration);

void BM_EstimatePlan(benchmark::State& state) {
  const plan::Plan plan = Q5Plan();
  const auto config = ft::MaterializationConfig::FromFreeMask(plan, 0b10101);
  const ft::FtCostModel model(Context());
  const auto cp = *ft::CollapsedPlan::Create(plan, config);
  for (auto _ : state) {
    auto est = model.Estimate(cp);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_EstimatePlan);

void BM_FindBestSinglePlan(benchmark::State& state) {
  const plan::Plan plan = Q5Plan();
  const bool pruning = state.range(0) != 0;
  ft::EnumerationOptions opts;
  opts.pruning.rule1 = opts.pruning.rule2 = opts.pruning.rule3 = pruning;
  opts.pruning.memoize_dominant_paths = pruning;
  for (auto _ : state) {
    ft::FtPlanEnumerator enumerator(Context(), opts);
    auto best = enumerator.FindBest(plan);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_FindBestSinglePlan)->Arg(0)->Arg(1);

void BM_EnumerateAllQ5JoinOrders(benchmark::State& state) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  const auto graph = *tpch::MakeQ5JoinGraph(cfg);
  for (auto _ : state) {
    optimizer::JoinTreeArena arena;
    auto trees = optimizer::EnumerateAllJoinTrees(graph, &arena);
    benchmark::DoNotOptimize(trees);
  }
}
BENCHMARK(BM_EnumerateAllQ5JoinOrders);

void BM_FindBestOverAllJoinOrders(benchmark::State& state) {
  // The Fig. 13 workload: 1344 plans x 32 configurations.
  const std::vector<plan::Plan> plans = Q5JoinOrderPlans(/*top_k=*/0);
  const bool pruning = state.range(0) != 0;
  ft::EnumerationOptions opts;
  opts.pruning.rule1 = opts.pruning.rule2 = opts.pruning.rule3 = pruning;
  opts.pruning.memoize_dominant_paths = pruning;
  for (auto _ : state) {
    ft::FtPlanEnumerator enumerator(Context(), opts);
    auto best = enumerator.FindBest(plans);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_FindBestOverAllJoinOrders)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_FindBestParallel(benchmark::State& state) {
  // Same workload on the task pool; Arg = worker threads. The pool is
  // reused across iterations (the production shape: one enumerator,
  // many FindBest calls).
  const std::vector<plan::Plan> plans = Q5JoinOrderPlans(/*top_k=*/0);
  ft::EnumerationOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  ft::FtPlanEnumerator enumerator(Context(), opts);
  for (auto _ : state) {
    auto best = enumerator.FindBest(plans);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_FindBestParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TopKJoinEnumeration(benchmark::State& state) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  const auto graph = *tpch::MakeQ5JoinGraph(cfg);
  const auto params = tpch::MakePhysicalCostParams(cfg);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    optimizer::JoinTreeArena arena;
    auto roots = optimizer::EnumerateTopKJoinTrees(graph, k, params,
                                                   &arena);
    benchmark::DoNotOptimize(roots);
  }
}
BENCHMARK(BM_TopKJoinEnumeration)->Arg(1)->Arg(8);

// Best-of-`repeats` wall clock of one FindBest over `plans`.
double TimeFindBest(ft::FtPlanEnumerator& enumerator,
                    const std::vector<plan::Plan>& plans, int repeats,
                    ft::FtPlanChoice* choice) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = enumerator.FindBest(plans);
    const auto t1 = std::chrono::steady_clock::now();
    if (result.ok()) *choice = std::move(*result);
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void RunThreadScalingSweep() {
  bench::PrintHeader(
      "Parallel findBestFTPlan: thread scaling",
      "extension of §4 (Listing 1) — identical [P, M_P] at every "
      "thread count");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency = %u\n\n", hw);

  bench::BenchJsonWriter json("enum");
  bench::Table table({"workload", "threads", "seconds", "speedup",
                      "tasks", "stolen"},
                     {20, 7, 10, 8, 7, 7});
  table.PrintHeaderRow();

  struct Workload {
    const char* name;
    int top_k;  // 0 = all join orders
    int repeats;
  };
  for (const Workload& w : {Workload{"q5_topk32", 32, 5},
                            Workload{"q5_all_join_orders", 0, 3}}) {
    const std::vector<plan::Plan> plans = Q5JoinOrderPlans(w.top_k);
    double base_seconds = 0.0;
    ft::FtPlanChoice base_choice;
    for (int threads : {1, 2, 4, 8}) {
      ft::EnumerationOptions opts;
      opts.num_threads = threads;
      ft::FtPlanEnumerator enumerator(Context(), opts);
      ft::FtPlanChoice choice;
      const double seconds =
          TimeFindBest(enumerator, plans, w.repeats, &choice);
      if (threads == 1) {
        base_seconds = seconds;
        base_choice = choice;
      } else if (choice.plan_index != base_choice.plan_index ||
                 choice.estimated_cost != base_choice.estimated_cost) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION at %d threads on %s\n",
                     threads, w.name);
      }
      const double speedup = base_seconds / seconds;
      const auto& stats = enumerator.stats();
      table.PrintRow({w.name, StrFormat("%d", threads),
                      StrFormat("%.4f", seconds),
                      StrFormat("%.2fx", speedup),
                      StrFormat("%llu", (unsigned long long)
                                    stats.tasks_executed),
                      StrFormat("%llu", (unsigned long long)
                                    stats.tasks_stolen)});
      bench::JsonLine row;
      row.Set("workload", w.name)
          .Set("threads", static_cast<double>(threads))
          .Set("seconds", seconds)
          .Set("speedup_vs_1", speedup)
          .Set("plan_index", static_cast<double>(choice.plan_index))
          .Set("cost", choice.estimated_cost)
          .Set("candidate_plans",
               static_cast<double>(stats.candidate_plans))
          .Set("tasks_executed",
               static_cast<double>(stats.tasks_executed))
          .Set("tasks_stolen", static_cast<double>(stats.tasks_stolen))
          .Set("hardware_concurrency", static_cast<double>(hw));
      json.Write(row);
    }
  }
  if (json.enabled()) {
    std::printf("\nWrote %s\n", json.path().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  RunThreadScalingSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
