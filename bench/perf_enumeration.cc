// google-benchmark microbenchmarks for the optimizer-facing hot paths:
// collapsed-plan construction, path enumeration, cost estimation, the
// full findBestFTPlan with and without pruning, and join-order
// enumeration.
#include <benchmark/benchmark.h>

#include "ft/enumerator.h"
#include "tpch/q5_join_graph.h"
#include "tpch/queries.h"

using namespace xdbft;

namespace {

plan::Plan Q5Plan() {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  return *tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
}

ft::FtCostContext Context(double mtbf = 3600.0) {
  ft::FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, mtbf, 1.0);
  return ctx;
}

void BM_CollapsePlan(benchmark::State& state) {
  const plan::Plan plan = Q5Plan();
  const auto config = ft::MaterializationConfig::FromFreeMask(plan, 0b10101);
  for (auto _ : state) {
    auto cp = ft::CollapsedPlan::Create(plan, config);
    benchmark::DoNotOptimize(cp);
  }
}
BENCHMARK(BM_CollapsePlan);

void BM_PathEnumeration(benchmark::State& state) {
  const plan::Plan plan = Q5Plan();
  const auto config = ft::MaterializationConfig::FromFreeMask(plan, 0b10101);
  const auto cp = *ft::CollapsedPlan::Create(plan, config);
  for (auto _ : state) {
    size_t count = 0;
    cp.ForEachPath([&](const ft::CollapsedPath&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PathEnumeration);

void BM_EstimatePlan(benchmark::State& state) {
  const plan::Plan plan = Q5Plan();
  const auto config = ft::MaterializationConfig::FromFreeMask(plan, 0b10101);
  const ft::FtCostModel model(Context());
  const auto cp = *ft::CollapsedPlan::Create(plan, config);
  for (auto _ : state) {
    auto est = model.Estimate(cp);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_EstimatePlan);

void BM_FindBestSinglePlan(benchmark::State& state) {
  const plan::Plan plan = Q5Plan();
  const bool pruning = state.range(0) != 0;
  ft::EnumerationOptions opts;
  opts.pruning.rule1 = opts.pruning.rule2 = opts.pruning.rule3 = pruning;
  opts.pruning.memoize_dominant_paths = pruning;
  for (auto _ : state) {
    ft::FtPlanEnumerator enumerator(Context(), opts);
    auto best = enumerator.FindBest(plan);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_FindBestSinglePlan)->Arg(0)->Arg(1);

void BM_EnumerateAllQ5JoinOrders(benchmark::State& state) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  const auto graph = *tpch::MakeQ5JoinGraph(cfg);
  for (auto _ : state) {
    optimizer::JoinTreeArena arena;
    auto trees = optimizer::EnumerateAllJoinTrees(graph, &arena);
    benchmark::DoNotOptimize(trees);
  }
}
BENCHMARK(BM_EnumerateAllQ5JoinOrders);

void BM_FindBestOverAllJoinOrders(benchmark::State& state) {
  // The Fig. 13 workload: 1344 plans x 32 configurations.
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  const auto graph = *tpch::MakeQ5JoinGraph(cfg);
  optimizer::JoinTreeArena arena;
  const auto trees = *optimizer::EnumerateAllJoinTrees(graph, &arena);
  const auto params = tpch::MakePhysicalCostParams(cfg);
  std::vector<plan::Plan> plans;
  for (int root : trees) {
    plans.push_back(*optimizer::EmitPlan(arena, root, graph, params));
  }
  const bool pruning = state.range(0) != 0;
  ft::EnumerationOptions opts;
  opts.pruning.rule1 = opts.pruning.rule2 = opts.pruning.rule3 = pruning;
  opts.pruning.memoize_dominant_paths = pruning;
  for (auto _ : state) {
    ft::FtPlanEnumerator enumerator(Context(), opts);
    auto best = enumerator.FindBest(plans);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_FindBestOverAllJoinOrders)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TopKJoinEnumeration(benchmark::State& state) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  const auto graph = *tpch::MakeQ5JoinGraph(cfg);
  const auto params = tpch::MakePhysicalCostParams(cfg);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    optimizer::JoinTreeArena arena;
    auto roots = optimizer::EnumerateTopKJoinTrees(graph, k, params,
                                                   &arena);
    benchmark::DoNotOptimize(roots);
  }
}
BENCHMARK(BM_TopKJoinEnumeration)->Arg(1)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
