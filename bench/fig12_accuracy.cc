// Figure 12 (Exp. 3a): accuracy of the cost model.
//  (a) Actual (simulated, mean of 10 traces) vs estimated runtime of the
//      cost-based plan for Q5/SF=100 under MTBFs from 1 month to 30 min.
//  (b) Actual vs estimated runtime of all 32 materialization
//      configurations of Q5 at MTBF = 1 hour, sorted by estimate.
#include <cstdio>

#include <algorithm>
#include <numeric>

#include "bench/bench_util.h"
#include "cluster/simulator.h"
#include "common/math_util.h"
#include "ft/enumerator.h"
#include "tpch/queries.h"

using namespace xdbft;

namespace {

double SimulateMean(const plan::Plan& plan,
                    const ft::MaterializationConfig& config,
                    const cost::ClusterStats& stats, int traces = 10) {
  cluster::ClusterSimulator sim(stats);
  double total = 0.0;
  for (int i = 0; i < traces; ++i) {
    cluster::ClusterTrace trace = cluster::ClusterTrace::Generate(
        stats, 42 + 0x517cc1b727220a95ULL * static_cast<uint64_t>(i));
    auto r = sim.Run(plan, config, ft::RecoveryMode::kFineGrained, trace);
    total += r->runtime;
  }
  return total / traces;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 12 — Accuracy of the Cost Model (Q5, SF=100)",
                     "Salama et al., SIGMOD'15, Fig. 12a/12b (Section 5.4)");

  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // (a) Varying MTBF: estimate vs actual for the cost-based plan.
  std::printf("(a) Varying MTBF (cost-based plan per MTBF)\n");
  bench::Table ta({"MTBF", "estimated(s)", "actual(s)", "error(%)"},
                  {10, 14, 12, 10});
  ta.PrintHeaderRow();
  struct M {
    const char* name;
    double seconds;
  };
  const M mtbfs[] = {{"1 month", cost::kSecondsPerMonth},
                     {"1 week", cost::kSecondsPerWeek},
                     {"1 day", cost::kSecondsPerDay},
                     {"1 hour", cost::kSecondsPerHour},
                     {"30 min", 1800.0}};
  for (const auto& m : mtbfs) {
    ft::FtCostContext ctx;
    ctx.cluster = cost::MakeCluster(cfg.num_nodes, m.seconds, 1.0);
    ft::FtPlanEnumerator enumerator(ctx);
    auto best = enumerator.FindBest(*plan);
    if (!best.ok()) continue;
    const double actual =
        SimulateMean(best->plan, best->config, ctx.cluster);
    ta.PrintRow({m.name, StrFormat("%.1f", best->estimated_cost),
                 StrFormat("%.1f", actual),
                 StrFormat("%+.1f",
                           (best->estimated_cost / actual - 1.0) * 100.0)});
  }

  // (b) All 32 materialization configurations at MTBF = 1 hour.
  std::printf(
      "\n(b) All 32 materialization configurations (MTBF = 1 hour), sorted "
      "by estimate\n");
  ft::FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(cfg.num_nodes, cost::kSecondsPerHour, 1.0);
  ft::FtPlanEnumerator enumerator(ctx);
  auto all = enumerator.EnumerateAll(*plan);
  if (!all.ok()) {
    std::fprintf(stderr, "enumeration error: %s\n",
                 all.status().ToString().c_str());
    return 1;
  }
  std::vector<size_t> order(all->size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*all)[a].second < (*all)[b].second;
  });

  const auto all_mat = ft::MaterializationConfig::AllMat(*plan);
  const auto no_mat = ft::MaterializationConfig::NoMat(*plan);

  bench::Table tb({"rank", "config", "estimated(s)", "actual(s)"},
                  {6, 18, 14, 12});
  tb.PrintHeaderRow();
  std::vector<double> est, act;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const auto& [config, estimate] = (*all)[order[rank]];
    const double actual = SimulateMean(*plan, config, ctx.cluster);
    est.push_back(estimate);
    act.push_back(actual);
    std::string tag = config.ToString();
    if (config == all_mat) tag += " (all-mat)";
    if (config == no_mat) tag += " (no-mat)";
    tb.PrintRow({StrFormat("%zu", rank + 1), tag,
                 StrFormat("%.1f", estimate), StrFormat("%.1f", actual)});
  }
  std::printf(
      "\nPearson correlation(estimated, actual) = %.3f (paper: \"high "
      "correlation ... which validates our cost model\")\n",
      PearsonCorrelation(est, act));
  std::printf(
      "Spearman rank correlation                = %.3f\n",
      SpearmanCorrelation(est, act));
  return 0;
}
