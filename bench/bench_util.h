// Shared output helpers for the paper-reproduction harnesses: fixed-width
// table printing and the standard experiment header.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace xdbft::bench {

/// \brief Prints "=== <title> ===" with the paper reference underneath.
inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

/// \brief Simple fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {}

  void PrintHeaderRow() const {
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s ", PadLeft(headers_[i],
                                 static_cast<size_t>(widths_[i])).c_str());
    }
    std::printf("\n");
    int total = 0;
    for (int w : widths_) total += w + 1;
    std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::printf("%s ", PadLeft(cells[i],
                                 static_cast<size_t>(widths_[i])).c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// \brief "123.4" style or "Aborted" for incomplete runs.
inline std::string OverheadCell(bool completed, double overhead_percent) {
  if (!completed) return "Aborted";
  if (overhead_percent > -0.05 && overhead_percent < 0.0) {
    overhead_percent = 0.0;  // avoid "-0.0"
  }
  return StrFormat("%.1f", overhead_percent);
}

}  // namespace xdbft::bench
