// Shared output helpers for the paper-reproduction harnesses: fixed-width
// table printing, the standard experiment header, and an env-gated
// machine-readable JSON-lines writer (BENCH_<name>.json).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace xdbft::bench {

/// \brief Prints "=== <title> ===" with the paper reference underneath.
inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

/// \brief Simple fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers,
                 std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {}

  void PrintHeaderRow() const {
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s ", PadLeft(headers_[i],
                                 static_cast<size_t>(widths_[i])).c_str());
    }
    std::printf("\n");
    int total = 0;
    for (int w : widths_) total += w + 1;
    std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::printf("%s ", PadLeft(cells[i],
                                 static_cast<size_t>(widths_[i])).c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// \brief One JSON object rendered in insertion order — the payload of a
/// BenchJsonWriter row.
class JsonLine {
 public:
  JsonLine& Set(const std::string& key, double v) {
    fields_.emplace_back(key, obs::JsonNumber(v));
    return *this;
  }
  JsonLine& Set(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, obs::JsonQuote(v));
    return *this;
  }
  JsonLine& Set(const std::string& key, const char* v) {
    return Set(key, std::string(v));
  }
  JsonLine& Set(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
    return *this;
  }
  /// \brief `raw` must already be valid JSON (e.g. a nested object).
  JsonLine& SetRaw(const std::string& key, const std::string& raw) {
    fields_.emplace_back(key, raw);
    return *this;
  }
  /// \brief Append all fields of `other` after this line's fields.
  JsonLine& Merge(const JsonLine& other) {
    fields_.insert(fields_.end(), other.fields_.begin(),
                   other.fields_.end());
    return *this;
  }

  std::string ToJson() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += obs::JsonQuote(fields_[i].first);
      out += ": ";
      out += fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// \brief Writes one JSON object per line to
/// `$XDBFT_BENCH_JSON_DIR/BENCH_<name>.json`; disabled (every call a
/// no-op) when the environment variable is unset, so the human-readable
/// stdout tables stay the default. On destruction a final
/// `{"type": "metrics", ...}` line captures the process-wide metrics
/// snapshot, making the harness runs comparable with `--metrics-json`
/// advisor reports.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(const std::string& bench_name)
      : bench_name_(bench_name) {
    const char* dir = std::getenv("XDBFT_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') return;
    path_ = std::string(dir) + "/BENCH_" + bench_name + ".json";
    out_.open(path_);
    if (!out_) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      path_.clear();
    }
  }

  ~BenchJsonWriter() {
    if (!enabled()) return;
    JsonLine tail;
    tail.Set("bench", bench_name_).Set("type", "metrics");
    tail.SetRaw("metrics", obs::MetricsRegistry::Default().Snapshot()
                               .ToJson(/*compact=*/true));
    out_ << tail.ToJson() << "\n";
  }

  bool enabled() const { return out_.is_open() && !path_.empty(); }

  /// \brief Emit one data row (the "bench" and "type" keys are added).
  void Write(const JsonLine& row) {
    if (!enabled()) return;
    JsonLine line;
    line.Set("bench", bench_name_).Set("type", "row");
    line.Merge(row);
    out_ << line.ToJson() << "\n";
  }

  const std::string& path() const { return path_; }

 private:
  std::string bench_name_;
  std::string path_;
  std::ofstream out_;
};

/// \brief Worker threads for the enumeration harnesses: $XDBFT_THREADS
/// (0 = hardware concurrency), default 1 so the published sequential
/// numbers stay the baseline. The chosen plans are identical either way;
/// only wall-clock changes.
inline int EnvThreads() {
  const char* s = std::getenv("XDBFT_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  return std::atoi(s);
}

/// \brief "123.4" style or "Aborted" for incomplete runs.
inline std::string OverheadCell(bool completed, double overhead_percent) {
  if (!completed) return "Aborted";
  if (overhead_percent > -0.05 && overhead_percent < 0.0) {
    overhead_percent = 0.0;  // avoid "-0.0"
  }
  return StrFormat("%.1f", overhead_percent);
}

}  // namespace xdbft::bench
