// Ablation: the paper's t/2 approximation of the expected wasted runtime
// w(c) (Eq. 4) versus the exact closed form (Eq. 3). The paper argues the
// approximation is good already for MTBF > t(c); this ablation quantifies
// the error across t/MTBF ratios and its impact on plan selection.
#include <cstdio>

#include "bench/bench_util.h"
#include "ft/enumerator.h"
#include "tpch/queries.h"

using namespace xdbft;

int main() {
  bench::PrintHeader(
      "Ablation — exact w(c) (Eq. 3) vs the t/2 approximation (Eq. 4)",
      "Salama et al., SIGMOD'15, Section 3.5 (design choice)");

  std::printf("(a) Point-wise error of the approximation\n");
  bench::Table ta({"t/MTBF", "exact w/t", "approx w/t", "error(%)"},
                  {10, 12, 12, 10});
  ta.PrintHeaderRow();
  for (double ratio : {0.01, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const double t = ratio;  // with MTBF = 1
    const double exact = ft::WastedTimeExact(t, 1.0);
    const double approx = ft::WastedTimeApprox(t);
    ta.PrintRow({StrFormat("%.2f", ratio), StrFormat("%.4f", exact / t),
                 StrFormat("%.4f", approx / t),
                 StrFormat("%.1f", (approx / exact - 1.0) * 100.0)});
  }

  std::printf(
      "\n(b) Impact on plan selection (Q5, SF=100, 10 nodes): chosen\n"
      "configuration and estimated cost with each formula\n");
  bench::Table tb({"MTBF", "approx cost(s)", "exact cost(s)",
                   "same config"},
                  {10, 14, 14, 12});
  tb.PrintHeaderRow();
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  for (double mtbf : {600.0, 3600.0, 4.0 * 3600.0, 86400.0}) {
    ft::FtCostContext ctx;
    ctx.cluster = cost::MakeCluster(10, mtbf, 1.0);
    ctx.model.exact_wasted_time = false;
    ft::FtPlanEnumerator approx_enum(ctx);
    auto a = approx_enum.FindBest(*plan);
    ctx.model.exact_wasted_time = true;
    ft::FtPlanEnumerator exact_enum(ctx);
    auto e = exact_enum.FindBest(*plan);
    if (!a.ok() || !e.ok()) continue;
    tb.PrintRow({HumanDuration(mtbf),
                 StrFormat("%.1f", a->estimated_cost),
                 StrFormat("%.1f", e->estimated_cost),
                 a->config == e->config ? "yes" : "NO"});
  }
  std::printf(
      "\nTakeaway (paper): the approximation overshoots w(c) by <15%% for\n"
      "t <= MTBF and rarely changes the chosen configuration, while\n"
      "avoiding an exp() per operator evaluation.\n");
  return 0;
}
