// Ablation: the desired success probability S of the attempts percentile
// (Eq. 6). The paper fixes S = 0.95 "often used in literature to
// represent the worst case"; this ablation sweeps S and reports how the
// chosen configuration and its *simulated* runtime react — quantifying
// how (in)sensitive the scheme is to that constant.
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/simulator.h"
#include "ft/enumerator.h"
#include "tpch/queries.h"

using namespace xdbft;

namespace {

double SimulatedMean(const plan::Plan& plan,
                     const ft::MaterializationConfig& config,
                     const cost::ClusterStats& stats) {
  cluster::ClusterSimulator sim(stats);
  double total = 0.0;
  const int kRuns = 30;
  for (uint64_t seed = 0; seed < kRuns; ++seed) {
    cluster::ClusterTrace trace = cluster::ClusterTrace::Generate(stats,
                                                                  seed);
    auto r = sim.Run(plan, config, ft::RecoveryMode::kFineGrained, trace);
    total += r->runtime;
  }
  return total / kRuns;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — success-probability target S of the attempts percentile "
      "(Q5, SF=100, MTBF=1h)",
      "Salama et al., SIGMOD'15, Section 3.5 (S = 0.95 design choice)");

  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  if (!plan.ok()) return 1;
  const auto stats = cost::MakeCluster(10, cost::kSecondsPerHour, 1.0);

  bench::Table table({"S", "m-ops", "estimated(s)", "simulated(s)",
                      "config"},
                     {6, 6, 13, 13, 20});
  table.PrintHeaderRow();
  for (double s_target : {0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    ft::FtCostContext ctx;
    ctx.cluster = stats;
    ctx.model.success_target = s_target;
    ft::FtPlanEnumerator enumerator(ctx);
    auto best = enumerator.FindBest(*plan);
    if (!best.ok()) continue;
    const double sim = SimulatedMean(best->plan, best->config, stats);
    table.PrintRow({StrFormat("%.3f", s_target),
                    StrFormat("%zu", best->config.NumMaterialized()),
                    StrFormat("%.1f", best->estimated_cost),
                    StrFormat("%.1f", sim),
                    best->config.ToString()});
  }
  std::printf(
      "\nTakeaway: higher S values make the model more pessimistic (more\n"
      "attempts budgeted), which can tip borderline operators into being\n"
      "materialized; the *simulated* runtime of the chosen configuration\n"
      "is flat across a wide S band, supporting the paper's fixed 0.95.\n");
  return 0;
}
