// Figure 13 (Exp. 4): effectiveness of the pruning rules. All 1344
// equivalent join orders of TPC-H Q5 (no cartesian products) are
// enumerated; with 5 free operators each, the unpruned space is
// 1344 * 32 = 43008 fault-tolerant plans. The percentage of that space
// pruned by rule 1, rule 2, rule 3 and all rules together is reported for
// per-node MTBFs of 1 week, 1 day and 1 hour. Rule 3 prunes lazily during
// path enumeration; following the paper, an FT plan whose enumeration it
// stops early is counted as half pruned.
#include <cstdio>

#include "bench/bench_util.h"
#include "ft/enumerator.h"
#include "tpch/q5_join_graph.h"

using namespace xdbft;

namespace {

struct RuleConfig {
  const char* name;
  bool rule1, rule2, rule3;
};

double PrunedPercent(const std::vector<plan::Plan>& plans,
                     const ft::FtCostContext& ctx, const RuleConfig& rules) {
  ft::EnumerationOptions opts;
  opts.pruning.rule1 = rules.rule1;
  opts.pruning.rule2 = rules.rule2;
  opts.pruning.rule3 = rules.rule3;
  opts.pruning.memoize_dominant_paths = rules.rule3;
  opts.num_threads = bench::EnvThreads();
  ft::FtPlanEnumerator enumerator(ctx, opts);
  auto best = enumerator.FindBest(plans);
  if (!best.ok()) {
    std::fprintf(stderr, "enumeration error: %s\n",
                 best.status().ToString().c_str());
    return 0.0;
  }
  const auto& s = enumerator.stats();
  const double total = static_cast<double>(s.total_ft_plans_unpruned);
  // Rules 1/2 eliminate configurations eagerly; rule 3 stops the path
  // analysis of an FT plan early and is credited half per §5.5.
  const double eager =
      total - static_cast<double>(s.ft_plans_enumerated);
  const double lazy = 0.5 * static_cast<double>(s.rule3_early_stops);
  return 100.0 * (eager + lazy) / total;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 13 — Effectiveness of Pruning (all 1344 Q5 join orders, "
      "SF=10)",
      "Salama et al., SIGMOD'15, Fig. 13 (Section 5.5)");

  // Operating point: the paper ran SF=10 on MySQL-backed executors whose
  // operators are ~100x slower than our simulated rates; SF=2000 with a
  // 128 MiB/s store and MySQL-like aggregation reproduces the paper's
  // t(c)-to-MTBF and tm-to-tr ratios, which is what the rules key on.
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 2000.0;
  cfg.storage_bandwidth_bps = 128.0 * 1024 * 1024;
  auto graph = tpch::MakeQ5JoinGraph(cfg);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph error: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  optimizer::JoinTreeArena arena;
  auto trees = optimizer::EnumerateAllJoinTrees(*graph, &arena);
  if (!trees.ok()) {
    std::fprintf(stderr, "tree enumeration error: %s\n",
                 trees.status().ToString().c_str());
    return 1;
  }
  std::printf("Equivalent join orders enumerated: %zu (paper: 1344)\n",
              trees->size());

  auto params = tpch::MakePhysicalCostParams(cfg);
  params.agg_rows_per_sec = 20e3;  // MySQL GROUP BY with sort
  std::vector<plan::Plan> plans;
  plans.reserve(trees->size());
  for (int root : *trees) {
    auto p = optimizer::EmitPlan(arena, root, *graph, params);
    if (p.ok()) plans.push_back(std::move(*p));
  }
  std::printf("Fault-tolerant plan space without pruning: %zu x 32 = %zu\n\n",
              plans.size(), plans.size() * 32);

  struct Cluster {
    const char* name;
    double mtbf;
  };
  const Cluster clusters[] = {
      {"Cluster A (MTBF=1 week)", cost::kSecondsPerWeek},
      {"Cluster B (MTBF=1 day)", cost::kSecondsPerDay},
      {"Cluster C (MTBF=1 hour)", cost::kSecondsPerHour},
  };
  const RuleConfig rule_sets[] = {
      {"Rule 1", true, false, false},
      {"Rule 2", false, true, false},
      {"Rule 3", false, false, true},
      {"All Rules", true, true, true},
  };

  bench::BenchJsonWriter json("fig13_pruning");
  bench::Table table({"rules", "1 week(%)", "1 day(%)", "1 hour(%)"},
                     {12, 10, 10, 10});
  table.PrintHeaderRow();
  for (const auto& rules : rule_sets) {
    std::vector<std::string> row = {rules.name};
    for (const auto& c : clusters) {
      ft::FtCostContext ctx;
      ctx.cluster = cost::MakeCluster(cfg.num_nodes, c.mtbf, 1.0);
      const double pruned = PrunedPercent(plans, ctx, rules);
      row.push_back(StrFormat("%.1f", pruned));
      json.Write(bench::JsonLine()
                     .Set("rules", rules.name)
                     .Set("cluster", c.name)
                     .Set("mtbf_seconds", c.mtbf)
                     .Set("pruned_percent", pruned));
    }
    table.PrintRow(row);
  }

  std::printf(
      "\nExpected shape (paper): rule 1 prunes a constant ~25%%\n"
      "independent of MTBF; rules 2 and 3 prune more as the MTBF grows;\n"
      "the combined pruning is best at MTBF = 1 week. Note: the paper's\n"
      "absolute rule-2 level (0.7-7%%) is lower because XDB accounts at\n"
      "operator granularity, while we count the eliminated materialization\n"
      "configurations (each rule-2 mark halves a plan's 2^5 space).\n");
  return 0;
}
