# Empty dependencies file for xdbft_ft.
# This may be replaced when dependencies are built.
