file(REMOVE_RECURSE
  "libxdbft_ft.a"
)
