
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ft/adaptive.cc" "src/ft/CMakeFiles/xdbft_ft.dir/adaptive.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/adaptive.cc.o.d"
  "/root/repo/src/ft/checkpointing.cc" "src/ft/CMakeFiles/xdbft_ft.dir/checkpointing.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/checkpointing.cc.o.d"
  "/root/repo/src/ft/collapsed_plan.cc" "src/ft/CMakeFiles/xdbft_ft.dir/collapsed_plan.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/collapsed_plan.cc.o.d"
  "/root/repo/src/ft/enumerator.cc" "src/ft/CMakeFiles/xdbft_ft.dir/enumerator.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/enumerator.cc.o.d"
  "/root/repo/src/ft/explain.cc" "src/ft/CMakeFiles/xdbft_ft.dir/explain.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/explain.cc.o.d"
  "/root/repo/src/ft/failure_math.cc" "src/ft/CMakeFiles/xdbft_ft.dir/failure_math.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/failure_math.cc.o.d"
  "/root/repo/src/ft/ft_cost.cc" "src/ft/CMakeFiles/xdbft_ft.dir/ft_cost.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/ft_cost.cc.o.d"
  "/root/repo/src/ft/greedy.cc" "src/ft/CMakeFiles/xdbft_ft.dir/greedy.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/greedy.cc.o.d"
  "/root/repo/src/ft/mat_config.cc" "src/ft/CMakeFiles/xdbft_ft.dir/mat_config.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/mat_config.cc.o.d"
  "/root/repo/src/ft/pruning.cc" "src/ft/CMakeFiles/xdbft_ft.dir/pruning.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/pruning.cc.o.d"
  "/root/repo/src/ft/scheme.cc" "src/ft/CMakeFiles/xdbft_ft.dir/scheme.cc.o" "gcc" "src/ft/CMakeFiles/xdbft_ft.dir/scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xdbft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/xdbft_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/xdbft_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
