file(REMOVE_RECURSE
  "CMakeFiles/xdbft_ft.dir/adaptive.cc.o"
  "CMakeFiles/xdbft_ft.dir/adaptive.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/checkpointing.cc.o"
  "CMakeFiles/xdbft_ft.dir/checkpointing.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/collapsed_plan.cc.o"
  "CMakeFiles/xdbft_ft.dir/collapsed_plan.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/enumerator.cc.o"
  "CMakeFiles/xdbft_ft.dir/enumerator.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/explain.cc.o"
  "CMakeFiles/xdbft_ft.dir/explain.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/failure_math.cc.o"
  "CMakeFiles/xdbft_ft.dir/failure_math.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/ft_cost.cc.o"
  "CMakeFiles/xdbft_ft.dir/ft_cost.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/greedy.cc.o"
  "CMakeFiles/xdbft_ft.dir/greedy.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/mat_config.cc.o"
  "CMakeFiles/xdbft_ft.dir/mat_config.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/pruning.cc.o"
  "CMakeFiles/xdbft_ft.dir/pruning.cc.o.d"
  "CMakeFiles/xdbft_ft.dir/scheme.cc.o"
  "CMakeFiles/xdbft_ft.dir/scheme.cc.o.d"
  "libxdbft_ft.a"
  "libxdbft_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
