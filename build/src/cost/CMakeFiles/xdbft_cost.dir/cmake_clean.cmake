file(REMOVE_RECURSE
  "CMakeFiles/xdbft_cost.dir/cost_params.cc.o"
  "CMakeFiles/xdbft_cost.dir/cost_params.cc.o.d"
  "CMakeFiles/xdbft_cost.dir/operator_cost.cc.o"
  "CMakeFiles/xdbft_cost.dir/operator_cost.cc.o.d"
  "CMakeFiles/xdbft_cost.dir/storage_model.cc.o"
  "CMakeFiles/xdbft_cost.dir/storage_model.cc.o.d"
  "libxdbft_cost.a"
  "libxdbft_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
