# Empty compiler generated dependencies file for xdbft_cost.
# This may be replaced when dependencies are built.
