
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/cost_params.cc" "src/cost/CMakeFiles/xdbft_cost.dir/cost_params.cc.o" "gcc" "src/cost/CMakeFiles/xdbft_cost.dir/cost_params.cc.o.d"
  "/root/repo/src/cost/operator_cost.cc" "src/cost/CMakeFiles/xdbft_cost.dir/operator_cost.cc.o" "gcc" "src/cost/CMakeFiles/xdbft_cost.dir/operator_cost.cc.o.d"
  "/root/repo/src/cost/storage_model.cc" "src/cost/CMakeFiles/xdbft_cost.dir/storage_model.cc.o" "gcc" "src/cost/CMakeFiles/xdbft_cost.dir/storage_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xdbft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/xdbft_plan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
