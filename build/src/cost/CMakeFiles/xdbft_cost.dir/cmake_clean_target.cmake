file(REMOVE_RECURSE
  "libxdbft_cost.a"
)
