# Empty dependencies file for xdbft_datagen.
# This may be replaced when dependencies are built.
