file(REMOVE_RECURSE
  "libxdbft_datagen.a"
)
