file(REMOVE_RECURSE
  "CMakeFiles/xdbft_datagen.dir/tpch_gen.cc.o"
  "CMakeFiles/xdbft_datagen.dir/tpch_gen.cc.o.d"
  "libxdbft_datagen.a"
  "libxdbft_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
