file(REMOVE_RECURSE
  "libxdbft_common.a"
)
