file(REMOVE_RECURSE
  "CMakeFiles/xdbft_common.dir/logging.cc.o"
  "CMakeFiles/xdbft_common.dir/logging.cc.o.d"
  "CMakeFiles/xdbft_common.dir/math_util.cc.o"
  "CMakeFiles/xdbft_common.dir/math_util.cc.o.d"
  "CMakeFiles/xdbft_common.dir/rng.cc.o"
  "CMakeFiles/xdbft_common.dir/rng.cc.o.d"
  "CMakeFiles/xdbft_common.dir/status.cc.o"
  "CMakeFiles/xdbft_common.dir/status.cc.o.d"
  "CMakeFiles/xdbft_common.dir/string_util.cc.o"
  "CMakeFiles/xdbft_common.dir/string_util.cc.o.d"
  "libxdbft_common.a"
  "libxdbft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
