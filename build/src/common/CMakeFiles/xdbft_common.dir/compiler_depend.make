# Empty compiler generated dependencies file for xdbft_common.
# This may be replaced when dependencies are built.
