# Empty compiler generated dependencies file for xdbft_catalog.
# This may be replaced when dependencies are built.
