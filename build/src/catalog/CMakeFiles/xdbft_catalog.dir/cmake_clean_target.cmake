file(REMOVE_RECURSE
  "libxdbft_catalog.a"
)
