file(REMOVE_RECURSE
  "CMakeFiles/xdbft_catalog.dir/tpch_catalog.cc.o"
  "CMakeFiles/xdbft_catalog.dir/tpch_catalog.cc.o.d"
  "libxdbft_catalog.a"
  "libxdbft_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
