
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/xdbft_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/xdbft_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/join_operators.cc" "src/exec/CMakeFiles/xdbft_exec.dir/join_operators.cc.o" "gcc" "src/exec/CMakeFiles/xdbft_exec.dir/join_operators.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/xdbft_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/xdbft_exec.dir/operators.cc.o.d"
  "/root/repo/src/exec/schema.cc" "src/exec/CMakeFiles/xdbft_exec.dir/schema.cc.o" "gcc" "src/exec/CMakeFiles/xdbft_exec.dir/schema.cc.o.d"
  "/root/repo/src/exec/value.cc" "src/exec/CMakeFiles/xdbft_exec.dir/value.cc.o" "gcc" "src/exec/CMakeFiles/xdbft_exec.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xdbft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
