file(REMOVE_RECURSE
  "libxdbft_exec.a"
)
