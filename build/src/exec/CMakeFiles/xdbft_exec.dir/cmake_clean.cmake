file(REMOVE_RECURSE
  "CMakeFiles/xdbft_exec.dir/expr.cc.o"
  "CMakeFiles/xdbft_exec.dir/expr.cc.o.d"
  "CMakeFiles/xdbft_exec.dir/join_operators.cc.o"
  "CMakeFiles/xdbft_exec.dir/join_operators.cc.o.d"
  "CMakeFiles/xdbft_exec.dir/operators.cc.o"
  "CMakeFiles/xdbft_exec.dir/operators.cc.o.d"
  "CMakeFiles/xdbft_exec.dir/schema.cc.o"
  "CMakeFiles/xdbft_exec.dir/schema.cc.o.d"
  "CMakeFiles/xdbft_exec.dir/value.cc.o"
  "CMakeFiles/xdbft_exec.dir/value.cc.o.d"
  "libxdbft_exec.a"
  "libxdbft_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
