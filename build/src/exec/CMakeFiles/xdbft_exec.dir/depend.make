# Empty dependencies file for xdbft_exec.
# This may be replaced when dependencies are built.
