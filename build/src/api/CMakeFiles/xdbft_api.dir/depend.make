# Empty dependencies file for xdbft_api.
# This may be replaced when dependencies are built.
