file(REMOVE_RECURSE
  "CMakeFiles/xdbft_api.dir/advisor.cc.o"
  "CMakeFiles/xdbft_api.dir/advisor.cc.o.d"
  "libxdbft_api.a"
  "libxdbft_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
