file(REMOVE_RECURSE
  "libxdbft_api.a"
)
