
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cost_calibrator.cc" "src/engine/CMakeFiles/xdbft_engine.dir/cost_calibrator.cc.o" "gcc" "src/engine/CMakeFiles/xdbft_engine.dir/cost_calibrator.cc.o.d"
  "/root/repo/src/engine/ft_executor.cc" "src/engine/CMakeFiles/xdbft_engine.dir/ft_executor.cc.o" "gcc" "src/engine/CMakeFiles/xdbft_engine.dir/ft_executor.cc.o.d"
  "/root/repo/src/engine/partitioned_table.cc" "src/engine/CMakeFiles/xdbft_engine.dir/partitioned_table.cc.o" "gcc" "src/engine/CMakeFiles/xdbft_engine.dir/partitioned_table.cc.o.d"
  "/root/repo/src/engine/query_runner.cc" "src/engine/CMakeFiles/xdbft_engine.dir/query_runner.cc.o" "gcc" "src/engine/CMakeFiles/xdbft_engine.dir/query_runner.cc.o.d"
  "/root/repo/src/engine/query_runner_complex.cc" "src/engine/CMakeFiles/xdbft_engine.dir/query_runner_complex.cc.o" "gcc" "src/engine/CMakeFiles/xdbft_engine.dir/query_runner_complex.cc.o.d"
  "/root/repo/src/engine/stage_plan.cc" "src/engine/CMakeFiles/xdbft_engine.dir/stage_plan.cc.o" "gcc" "src/engine/CMakeFiles/xdbft_engine.dir/stage_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xdbft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/xdbft_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/xdbft_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/xdbft_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/xdbft_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/xdbft_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
