file(REMOVE_RECURSE
  "CMakeFiles/xdbft_engine.dir/cost_calibrator.cc.o"
  "CMakeFiles/xdbft_engine.dir/cost_calibrator.cc.o.d"
  "CMakeFiles/xdbft_engine.dir/ft_executor.cc.o"
  "CMakeFiles/xdbft_engine.dir/ft_executor.cc.o.d"
  "CMakeFiles/xdbft_engine.dir/partitioned_table.cc.o"
  "CMakeFiles/xdbft_engine.dir/partitioned_table.cc.o.d"
  "CMakeFiles/xdbft_engine.dir/query_runner.cc.o"
  "CMakeFiles/xdbft_engine.dir/query_runner.cc.o.d"
  "CMakeFiles/xdbft_engine.dir/query_runner_complex.cc.o"
  "CMakeFiles/xdbft_engine.dir/query_runner_complex.cc.o.d"
  "CMakeFiles/xdbft_engine.dir/stage_plan.cc.o"
  "CMakeFiles/xdbft_engine.dir/stage_plan.cc.o.d"
  "libxdbft_engine.a"
  "libxdbft_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
