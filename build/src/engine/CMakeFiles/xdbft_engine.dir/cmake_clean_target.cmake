file(REMOVE_RECURSE
  "libxdbft_engine.a"
)
