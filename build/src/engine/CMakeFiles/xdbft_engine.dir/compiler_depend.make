# Empty compiler generated dependencies file for xdbft_engine.
# This may be replaced when dependencies are built.
