# Empty compiler generated dependencies file for xdbft_optimizer.
# This may be replaced when dependencies are built.
