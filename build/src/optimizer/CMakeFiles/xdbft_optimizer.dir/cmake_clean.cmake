file(REMOVE_RECURSE
  "CMakeFiles/xdbft_optimizer.dir/join_enumerator.cc.o"
  "CMakeFiles/xdbft_optimizer.dir/join_enumerator.cc.o.d"
  "CMakeFiles/xdbft_optimizer.dir/join_graph.cc.o"
  "CMakeFiles/xdbft_optimizer.dir/join_graph.cc.o.d"
  "CMakeFiles/xdbft_optimizer.dir/statistics.cc.o"
  "CMakeFiles/xdbft_optimizer.dir/statistics.cc.o.d"
  "libxdbft_optimizer.a"
  "libxdbft_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
