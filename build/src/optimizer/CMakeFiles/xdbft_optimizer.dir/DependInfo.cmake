
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/join_enumerator.cc" "src/optimizer/CMakeFiles/xdbft_optimizer.dir/join_enumerator.cc.o" "gcc" "src/optimizer/CMakeFiles/xdbft_optimizer.dir/join_enumerator.cc.o.d"
  "/root/repo/src/optimizer/join_graph.cc" "src/optimizer/CMakeFiles/xdbft_optimizer.dir/join_graph.cc.o" "gcc" "src/optimizer/CMakeFiles/xdbft_optimizer.dir/join_graph.cc.o.d"
  "/root/repo/src/optimizer/statistics.cc" "src/optimizer/CMakeFiles/xdbft_optimizer.dir/statistics.cc.o" "gcc" "src/optimizer/CMakeFiles/xdbft_optimizer.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xdbft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/xdbft_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/xdbft_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
