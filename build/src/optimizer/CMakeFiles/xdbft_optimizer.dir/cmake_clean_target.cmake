file(REMOVE_RECURSE
  "libxdbft_optimizer.a"
)
