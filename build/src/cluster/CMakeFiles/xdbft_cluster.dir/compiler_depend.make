# Empty compiler generated dependencies file for xdbft_cluster.
# This may be replaced when dependencies are built.
