file(REMOVE_RECURSE
  "libxdbft_cluster.a"
)
