file(REMOVE_RECURSE
  "CMakeFiles/xdbft_cluster.dir/experiment.cc.o"
  "CMakeFiles/xdbft_cluster.dir/experiment.cc.o.d"
  "CMakeFiles/xdbft_cluster.dir/failure_trace.cc.o"
  "CMakeFiles/xdbft_cluster.dir/failure_trace.cc.o.d"
  "CMakeFiles/xdbft_cluster.dir/simulator.cc.o"
  "CMakeFiles/xdbft_cluster.dir/simulator.cc.o.d"
  "CMakeFiles/xdbft_cluster.dir/workload.cc.o"
  "CMakeFiles/xdbft_cluster.dir/workload.cc.o.d"
  "libxdbft_cluster.a"
  "libxdbft_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
