file(REMOVE_RECURSE
  "CMakeFiles/xdbft_plan.dir/plan.cc.o"
  "CMakeFiles/xdbft_plan.dir/plan.cc.o.d"
  "CMakeFiles/xdbft_plan.dir/plan_text.cc.o"
  "CMakeFiles/xdbft_plan.dir/plan_text.cc.o.d"
  "libxdbft_plan.a"
  "libxdbft_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
