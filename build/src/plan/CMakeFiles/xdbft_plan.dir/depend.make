# Empty dependencies file for xdbft_plan.
# This may be replaced when dependencies are built.
