file(REMOVE_RECURSE
  "libxdbft_plan.a"
)
