file(REMOVE_RECURSE
  "CMakeFiles/xdbft_tpch.dir/q5_join_graph.cc.o"
  "CMakeFiles/xdbft_tpch.dir/q5_join_graph.cc.o.d"
  "CMakeFiles/xdbft_tpch.dir/queries.cc.o"
  "CMakeFiles/xdbft_tpch.dir/queries.cc.o.d"
  "libxdbft_tpch.a"
  "libxdbft_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
