file(REMOVE_RECURSE
  "libxdbft_tpch.a"
)
