# Empty compiler generated dependencies file for xdbft_tpch.
# This may be replaced when dependencies are built.
