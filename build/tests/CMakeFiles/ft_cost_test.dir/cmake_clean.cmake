file(REMOVE_RECURSE
  "CMakeFiles/ft_cost_test.dir/ft/ft_cost_test.cc.o"
  "CMakeFiles/ft_cost_test.dir/ft/ft_cost_test.cc.o.d"
  "ft_cost_test"
  "ft_cost_test.pdb"
  "ft_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
