file(REMOVE_RECURSE
  "CMakeFiles/ft_executor_test.dir/engine/ft_executor_test.cc.o"
  "CMakeFiles/ft_executor_test.dir/engine/ft_executor_test.cc.o.d"
  "ft_executor_test"
  "ft_executor_test.pdb"
  "ft_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
