# Empty dependencies file for ft_executor_test.
# This may be replaced when dependencies are built.
