file(REMOVE_RECURSE
  "CMakeFiles/join_graph_test.dir/optimizer/join_graph_test.cc.o"
  "CMakeFiles/join_graph_test.dir/optimizer/join_graph_test.cc.o.d"
  "join_graph_test"
  "join_graph_test.pdb"
  "join_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
