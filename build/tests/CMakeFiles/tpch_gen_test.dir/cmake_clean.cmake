file(REMOVE_RECURSE
  "CMakeFiles/tpch_gen_test.dir/datagen/tpch_gen_test.cc.o"
  "CMakeFiles/tpch_gen_test.dir/datagen/tpch_gen_test.cc.o.d"
  "tpch_gen_test"
  "tpch_gen_test.pdb"
  "tpch_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
