file(REMOVE_RECURSE
  "CMakeFiles/enumerate_order_test.dir/ft/enumerate_order_test.cc.o"
  "CMakeFiles/enumerate_order_test.dir/ft/enumerate_order_test.cc.o.d"
  "enumerate_order_test"
  "enumerate_order_test.pdb"
  "enumerate_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enumerate_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
