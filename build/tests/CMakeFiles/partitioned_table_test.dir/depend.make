# Empty dependencies file for partitioned_table_test.
# This may be replaced when dependencies are built.
