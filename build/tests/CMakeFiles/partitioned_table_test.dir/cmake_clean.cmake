file(REMOVE_RECURSE
  "CMakeFiles/partitioned_table_test.dir/engine/partitioned_table_test.cc.o"
  "CMakeFiles/partitioned_table_test.dir/engine/partitioned_table_test.cc.o.d"
  "partitioned_table_test"
  "partitioned_table_test.pdb"
  "partitioned_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
