# Empty compiler generated dependencies file for failure_math_test.
# This may be replaced when dependencies are built.
