file(REMOVE_RECURSE
  "CMakeFiles/failure_math_test.dir/ft/failure_math_test.cc.o"
  "CMakeFiles/failure_math_test.dir/ft/failure_math_test.cc.o.d"
  "failure_math_test"
  "failure_math_test.pdb"
  "failure_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
