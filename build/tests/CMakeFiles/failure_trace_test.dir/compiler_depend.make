# Empty compiler generated dependencies file for failure_trace_test.
# This may be replaced when dependencies are built.
