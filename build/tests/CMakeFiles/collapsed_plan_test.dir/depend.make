# Empty dependencies file for collapsed_plan_test.
# This may be replaced when dependencies are built.
