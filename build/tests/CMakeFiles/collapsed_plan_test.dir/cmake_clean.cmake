file(REMOVE_RECURSE
  "CMakeFiles/collapsed_plan_test.dir/ft/collapsed_plan_test.cc.o"
  "CMakeFiles/collapsed_plan_test.dir/ft/collapsed_plan_test.cc.o.d"
  "collapsed_plan_test"
  "collapsed_plan_test.pdb"
  "collapsed_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collapsed_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
