# Empty dependencies file for mat_config_test.
# This may be replaced when dependencies are built.
