file(REMOVE_RECURSE
  "CMakeFiles/mat_config_test.dir/ft/mat_config_test.cc.o"
  "CMakeFiles/mat_config_test.dir/ft/mat_config_test.cc.o.d"
  "mat_config_test"
  "mat_config_test.pdb"
  "mat_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mat_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
