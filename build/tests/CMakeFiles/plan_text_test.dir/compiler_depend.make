# Empty compiler generated dependencies file for plan_text_test.
# This may be replaced when dependencies are built.
