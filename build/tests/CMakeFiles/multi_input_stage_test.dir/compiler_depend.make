# Empty compiler generated dependencies file for multi_input_stage_test.
# This may be replaced when dependencies are built.
