file(REMOVE_RECURSE
  "CMakeFiles/multi_input_stage_test.dir/engine/multi_input_stage_test.cc.o"
  "CMakeFiles/multi_input_stage_test.dir/engine/multi_input_stage_test.cc.o.d"
  "multi_input_stage_test"
  "multi_input_stage_test.pdb"
  "multi_input_stage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_input_stage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
