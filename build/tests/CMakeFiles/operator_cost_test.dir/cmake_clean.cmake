file(REMOVE_RECURSE
  "CMakeFiles/operator_cost_test.dir/cost/operator_cost_test.cc.o"
  "CMakeFiles/operator_cost_test.dir/cost/operator_cost_test.cc.o.d"
  "operator_cost_test"
  "operator_cost_test.pdb"
  "operator_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
