# Empty dependencies file for operator_cost_test.
# This may be replaced when dependencies are built.
