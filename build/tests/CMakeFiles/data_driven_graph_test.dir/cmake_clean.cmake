file(REMOVE_RECURSE
  "CMakeFiles/data_driven_graph_test.dir/tpch/data_driven_graph_test.cc.o"
  "CMakeFiles/data_driven_graph_test.dir/tpch/data_driven_graph_test.cc.o.d"
  "data_driven_graph_test"
  "data_driven_graph_test.pdb"
  "data_driven_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_driven_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
