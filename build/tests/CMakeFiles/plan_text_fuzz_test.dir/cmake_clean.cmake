file(REMOVE_RECURSE
  "CMakeFiles/plan_text_fuzz_test.dir/plan/plan_text_fuzz_test.cc.o"
  "CMakeFiles/plan_text_fuzz_test.dir/plan/plan_text_fuzz_test.cc.o.d"
  "plan_text_fuzz_test"
  "plan_text_fuzz_test.pdb"
  "plan_text_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_text_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
