# Empty dependencies file for plan_text_fuzz_test.
# This may be replaced when dependencies are built.
