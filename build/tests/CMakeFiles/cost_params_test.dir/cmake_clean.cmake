file(REMOVE_RECURSE
  "CMakeFiles/cost_params_test.dir/cost/cost_params_test.cc.o"
  "CMakeFiles/cost_params_test.dir/cost/cost_params_test.cc.o.d"
  "cost_params_test"
  "cost_params_test.pdb"
  "cost_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
