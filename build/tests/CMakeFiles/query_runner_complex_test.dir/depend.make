# Empty dependencies file for query_runner_complex_test.
# This may be replaced when dependencies are built.
