file(REMOVE_RECURSE
  "CMakeFiles/tpch_catalog_test.dir/catalog/tpch_catalog_test.cc.o"
  "CMakeFiles/tpch_catalog_test.dir/catalog/tpch_catalog_test.cc.o.d"
  "tpch_catalog_test"
  "tpch_catalog_test.pdb"
  "tpch_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
