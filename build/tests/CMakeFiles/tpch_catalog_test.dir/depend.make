# Empty dependencies file for tpch_catalog_test.
# This may be replaced when dependencies are built.
