file(REMOVE_RECURSE
  "CMakeFiles/query_runner_test.dir/engine/query_runner_test.cc.o"
  "CMakeFiles/query_runner_test.dir/engine/query_runner_test.cc.o.d"
  "query_runner_test"
  "query_runner_test.pdb"
  "query_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
