file(REMOVE_RECURSE
  "CMakeFiles/tpch_queries_test.dir/tpch/queries_test.cc.o"
  "CMakeFiles/tpch_queries_test.dir/tpch/queries_test.cc.o.d"
  "tpch_queries_test"
  "tpch_queries_test.pdb"
  "tpch_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
