# Empty dependencies file for simulator_options_test.
# This may be replaced when dependencies are built.
