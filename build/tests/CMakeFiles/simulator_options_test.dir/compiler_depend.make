# Empty compiler generated dependencies file for simulator_options_test.
# This may be replaced when dependencies are built.
