file(REMOVE_RECURSE
  "CMakeFiles/simulator_options_test.dir/cluster/simulator_options_test.cc.o"
  "CMakeFiles/simulator_options_test.dir/cluster/simulator_options_test.cc.o.d"
  "simulator_options_test"
  "simulator_options_test.pdb"
  "simulator_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
