file(REMOVE_RECURSE
  "CMakeFiles/checkpointing_test.dir/ft/checkpointing_test.cc.o"
  "CMakeFiles/checkpointing_test.dir/ft/checkpointing_test.cc.o.d"
  "checkpointing_test"
  "checkpointing_test.pdb"
  "checkpointing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpointing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
