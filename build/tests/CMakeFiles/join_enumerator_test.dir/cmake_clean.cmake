file(REMOVE_RECURSE
  "CMakeFiles/join_enumerator_test.dir/optimizer/join_enumerator_test.cc.o"
  "CMakeFiles/join_enumerator_test.dir/optimizer/join_enumerator_test.cc.o.d"
  "join_enumerator_test"
  "join_enumerator_test.pdb"
  "join_enumerator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_enumerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
