# Empty dependencies file for join_enumerator_test.
# This may be replaced when dependencies are built.
