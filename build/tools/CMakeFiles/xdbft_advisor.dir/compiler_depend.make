# Empty compiler generated dependencies file for xdbft_advisor.
# This may be replaced when dependencies are built.
