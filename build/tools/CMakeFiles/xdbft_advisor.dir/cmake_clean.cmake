file(REMOVE_RECURSE
  "CMakeFiles/xdbft_advisor.dir/xdbft_advisor.cc.o"
  "CMakeFiles/xdbft_advisor.dir/xdbft_advisor.cc.o.d"
  "xdbft_advisor"
  "xdbft_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdbft_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
