file(REMOVE_RECURSE
  "CMakeFiles/fig10_varying_runtime.dir/fig10_varying_runtime.cc.o"
  "CMakeFiles/fig10_varying_runtime.dir/fig10_varying_runtime.cc.o.d"
  "fig10_varying_runtime"
  "fig10_varying_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_varying_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
