# Empty dependencies file for fig10_varying_runtime.
# This may be replaced when dependencies are built.
