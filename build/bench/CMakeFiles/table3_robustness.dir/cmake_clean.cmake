file(REMOVE_RECURSE
  "CMakeFiles/table3_robustness.dir/table3_robustness.cc.o"
  "CMakeFiles/table3_robustness.dir/table3_robustness.cc.o.d"
  "table3_robustness"
  "table3_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
