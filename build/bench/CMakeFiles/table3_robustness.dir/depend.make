# Empty dependencies file for table3_robustness.
# This may be replaced when dependencies are built.
