# Empty compiler generated dependencies file for ablation_wasted_time.
# This may be replaced when dependencies are built.
