file(REMOVE_RECURSE
  "CMakeFiles/ablation_wasted_time.dir/ablation_wasted_time.cc.o"
  "CMakeFiles/ablation_wasted_time.dir/ablation_wasted_time.cc.o.d"
  "ablation_wasted_time"
  "ablation_wasted_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wasted_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
