# Empty dependencies file for ablation_topk.
# This may be replaced when dependencies are built.
