
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_topk.cc" "bench/CMakeFiles/ablation_topk.dir/ablation_topk.cc.o" "gcc" "bench/CMakeFiles/ablation_topk.dir/ablation_topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ft/CMakeFiles/xdbft_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/xdbft_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/xdbft_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/xdbft_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/xdbft_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/xdbft_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/xdbft_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/xdbft_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xdbft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
