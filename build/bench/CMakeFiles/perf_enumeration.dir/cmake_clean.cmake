file(REMOVE_RECURSE
  "CMakeFiles/perf_enumeration.dir/perf_enumeration.cc.o"
  "CMakeFiles/perf_enumeration.dir/perf_enumeration.cc.o.d"
  "perf_enumeration"
  "perf_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
