# Empty compiler generated dependencies file for perf_enumeration.
# This may be replaced when dependencies are built.
