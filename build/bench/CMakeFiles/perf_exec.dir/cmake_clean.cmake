file(REMOVE_RECURSE
  "CMakeFiles/perf_exec.dir/perf_exec.cc.o"
  "CMakeFiles/perf_exec.dir/perf_exec.cc.o.d"
  "perf_exec"
  "perf_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
