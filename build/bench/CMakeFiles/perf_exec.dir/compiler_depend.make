# Empty compiler generated dependencies file for perf_exec.
# This may be replaced when dependencies are built.
