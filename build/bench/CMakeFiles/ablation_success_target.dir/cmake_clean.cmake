file(REMOVE_RECURSE
  "CMakeFiles/ablation_success_target.dir/ablation_success_target.cc.o"
  "CMakeFiles/ablation_success_target.dir/ablation_success_target.cc.o.d"
  "ablation_success_target"
  "ablation_success_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_success_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
