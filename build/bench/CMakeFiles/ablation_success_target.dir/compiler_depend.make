# Empty compiler generated dependencies file for ablation_success_target.
# This may be replaced when dependencies are built.
