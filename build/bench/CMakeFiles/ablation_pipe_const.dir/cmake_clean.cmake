file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipe_const.dir/ablation_pipe_const.cc.o"
  "CMakeFiles/ablation_pipe_const.dir/ablation_pipe_const.cc.o.d"
  "ablation_pipe_const"
  "ablation_pipe_const.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipe_const.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
