# Empty dependencies file for ablation_pipe_const.
# This may be replaced when dependencies are built.
