# Empty compiler generated dependencies file for fig1_success_probability.
# This may be replaced when dependencies are built.
