file(REMOVE_RECURSE
  "CMakeFiles/fig1_success_probability.dir/fig1_success_probability.cc.o"
  "CMakeFiles/fig1_success_probability.dir/fig1_success_probability.cc.o.d"
  "fig1_success_probability"
  "fig1_success_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_success_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
