# Empty compiler generated dependencies file for fig8_varying_queries.
# This may be replaced when dependencies are built.
