file(REMOVE_RECURSE
  "CMakeFiles/fig8_varying_queries.dir/fig8_varying_queries.cc.o"
  "CMakeFiles/fig8_varying_queries.dir/fig8_varying_queries.cc.o.d"
  "fig8_varying_queries"
  "fig8_varying_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_varying_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
