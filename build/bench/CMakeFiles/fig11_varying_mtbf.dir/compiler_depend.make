# Empty compiler generated dependencies file for fig11_varying_mtbf.
# This may be replaced when dependencies are built.
