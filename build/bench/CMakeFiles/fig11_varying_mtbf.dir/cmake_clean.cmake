file(REMOVE_RECURSE
  "CMakeFiles/fig11_varying_mtbf.dir/fig11_varying_mtbf.cc.o"
  "CMakeFiles/fig11_varying_mtbf.dir/fig11_varying_mtbf.cc.o.d"
  "fig11_varying_mtbf"
  "fig11_varying_mtbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_varying_mtbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
