file(REMOVE_RECURSE
  "CMakeFiles/motivation_mixed_workload.dir/motivation_mixed_workload.cc.o"
  "CMakeFiles/motivation_mixed_workload.dir/motivation_mixed_workload.cc.o.d"
  "motivation_mixed_workload"
  "motivation_mixed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
