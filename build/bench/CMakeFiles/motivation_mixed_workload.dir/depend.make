# Empty dependencies file for motivation_mixed_workload.
# This may be replaced when dependencies are built.
