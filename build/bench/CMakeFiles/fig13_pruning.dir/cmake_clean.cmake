file(REMOVE_RECURSE
  "CMakeFiles/fig13_pruning.dir/fig13_pruning.cc.o"
  "CMakeFiles/fig13_pruning.dir/fig13_pruning.cc.o.d"
  "fig13_pruning"
  "fig13_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
