# Empty compiler generated dependencies file for ablation_cluster_scaling.
# This may be replaced when dependencies are built.
