# Empty dependencies file for real_recovery.
# This may be replaced when dependencies are built.
