file(REMOVE_RECURSE
  "CMakeFiles/real_recovery.dir/real_recovery.cpp.o"
  "CMakeFiles/real_recovery.dir/real_recovery.cpp.o.d"
  "real_recovery"
  "real_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
