file(REMOVE_RECURSE
  "CMakeFiles/failure_timeline.dir/failure_timeline.cpp.o"
  "CMakeFiles/failure_timeline.dir/failure_timeline.cpp.o.d"
  "failure_timeline"
  "failure_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
