# Empty compiler generated dependencies file for failure_timeline.
# This may be replaced when dependencies are built.
