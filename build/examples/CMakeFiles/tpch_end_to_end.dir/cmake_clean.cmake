file(REMOVE_RECURSE
  "CMakeFiles/tpch_end_to_end.dir/tpch_end_to_end.cpp.o"
  "CMakeFiles/tpch_end_to_end.dir/tpch_end_to_end.cpp.o.d"
  "tpch_end_to_end"
  "tpch_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
