# Empty dependencies file for tpch_end_to_end.
# This may be replaced when dependencies are built.
