file(REMOVE_RECURSE
  "CMakeFiles/wide_etl.dir/wide_etl.cpp.o"
  "CMakeFiles/wide_etl.dir/wide_etl.cpp.o.d"
  "wide_etl"
  "wide_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
