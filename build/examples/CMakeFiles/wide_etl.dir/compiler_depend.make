# Empty compiler generated dependencies file for wide_etl.
# This may be replaced when dependencies are built.
