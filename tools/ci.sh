#!/usr/bin/env bash
# Local CI: configure + build + test the configurations that matter —
#   release    Release (what the benchmarks and reproduction harnesses use)
#   asan       Debug + AddressSanitizer  (XDBFT_SANITIZE=address)
#   tsan       Debug + ThreadSanitizer   (XDBFT_SANITIZE=thread; exercises
#              the parallel enumerator / task-pool / advisor-service
#              coalescing tests for data races)
#   nometrics  Release + XDBFT_ENABLE_METRICS=OFF (proves the profiler /
#              flight-recorder hot-path instrumentation compiles out and
#              the suite still passes without it)
#
# Usage: tools/ci.sh [JOBS] [--config release|asan|tsan|nometrics] [--quick]
#        [--jobs N]
#        tools/ci.sh --print-ctest-args CONFIG
#   no --config     run release + asan + tsan + nometrics (full matrix)
#   --quick         run only the tier1-labelled tests (skips bench-smoke)
#   JOBS / --jobs   parallelism (default: nproc)
#   --print-ctest-args CONFIG
#                   print the ctest label selection for CONFIG and exit —
#                   the single source of truth the GitHub workflow's test
#                   steps read, so the label lists cannot drift between
#                   local runs and CI.
set -euo pipefail

cd "$(dirname "$0")/.."

# Per-config ctest label selection (shared with .github/workflows/ci.yml
# via --print-ctest-args):
#   release          everything except the long fuzz leg (tier1 +
#                    bench-smoke; the fuzz sweep runs as its own CI step)
#   asan/tsan/nometrics
#                    fast tier only — the sanitizer payload is the
#                    concurrency test suite, not the bench harnesses
ctest_args_for() {
  case "$1" in
    release)               echo "-LE fuzz" ;;
    asan|tsan|nometrics)   echo "-L tier1" ;;
    *) echo "unknown config '$1' (release|asan|tsan|nometrics)" >&2
       return 2 ;;
  esac
}

JOBS="$(nproc)"
CONFIG="all"
QUICK=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --config) CONFIG="$2"; shift 2 ;;
    --quick)  QUICK=1; shift ;;
    --jobs)   JOBS="$2"; shift 2 ;;
    --print-ctest-args) ctest_args_for "$2"; exit $? ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    [0-9]*)   JOBS="$1"; shift ;;   # positional JOBS, kept for compat
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run_config() {
  local name="$1"; shift
  local dir="build-ci-${name}"
  local ctest_args
  if [[ "${QUICK}" == 1 ]]; then
    ctest_args="-L tier1"
  else
    ctest_args="$(ctest_args_for "${name}")"
  fi
  echo "=== configuring ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== building ${dir} (-j${JOBS}) ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== testing ${dir} (${ctest_args}) ==="
  # shellcheck disable=SC2086  # ctest_args is a flag list by construction
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" ${ctest_args}
}

case "${CONFIG}" in
  release|all)
    run_config release -DCMAKE_BUILD_TYPE=Release ;;&
  asan|all)
    run_config asan -DCMAKE_BUILD_TYPE=Debug \
      -DXDBFT_SANITIZE=address ;;&
  tsan|all)
    run_config tsan -DCMAKE_BUILD_TYPE=Debug \
      -DXDBFT_SANITIZE=thread ;;&
  nometrics|all)
    run_config nometrics -DCMAKE_BUILD_TYPE=Release \
      -DXDBFT_ENABLE_METRICS=OFF ;;&
  release|asan|tsan|nometrics|all) ;;
  *) echo "unknown --config '${CONFIG}' (release|asan|tsan|nometrics)" >&2
     exit 2 ;;
esac

echo "=== CI passed (${CONFIG}) ==="
