#!/usr/bin/env bash
# Local CI: configure + build + test the configurations that matter —
#   release    Release (what the benchmarks and reproduction harnesses use)
#   asan       Debug + AddressSanitizer  (XDBFT_SANITIZE=address)
#   tsan       Debug + ThreadSanitizer   (XDBFT_SANITIZE=thread; exercises
#              the parallel enumerator / task-pool tests for data races)
#   nometrics  Release + XDBFT_ENABLE_METRICS=OFF (proves the profiler /
#              flight-recorder hot-path instrumentation compiles out and
#              the suite still passes without it)
#
# Usage: tools/ci.sh [JOBS] [--config release|asan|tsan|nometrics] [--quick]
#        [--jobs N]
#   no --config     run release + asan + tsan + nometrics (full matrix)
#   --quick         run only the tier1-labelled tests (skips bench-smoke)
#   JOBS / --jobs   parallelism (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc)"
CONFIG="all"
CTEST_ARGS=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --config) CONFIG="$2"; shift 2 ;;
    --quick)  CTEST_ARGS+=(-L tier1); shift ;;
    --jobs)   JOBS="$2"; shift 2 ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    [0-9]*)   JOBS="$1"; shift ;;   # positional JOBS, kept for compat
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run_config() {
  local dir="$1"; shift
  echo "=== configuring ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== building ${dir} (-j${JOBS}) ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== testing ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    "${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}"
}

case "${CONFIG}" in
  release|all)
    run_config build-ci-release -DCMAKE_BUILD_TYPE=Release ;;&
  asan|all)
    run_config build-ci-asan -DCMAKE_BUILD_TYPE=Debug \
      -DXDBFT_SANITIZE=address ;;&
  tsan|all)
    run_config build-ci-tsan -DCMAKE_BUILD_TYPE=Debug \
      -DXDBFT_SANITIZE=thread ;;&
  nometrics|all)
    run_config build-ci-nometrics -DCMAKE_BUILD_TYPE=Release \
      -DXDBFT_ENABLE_METRICS=OFF ;;&
  release|asan|tsan|nometrics|all) ;;
  *) echo "unknown --config '${CONFIG}' (release|asan|tsan|nometrics)" >&2
     exit 2 ;;
esac

echo "=== CI passed (${CONFIG}) ==="
