#!/usr/bin/env bash
# Local CI: configure + build + test the two configurations that matter —
#   1. Release (what the benchmarks and paper-reproduction harnesses use)
#   2. Debug + AddressSanitizer (XDBFT_SANITIZE=address)
# Usage: tools/ci.sh [JOBS]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "=== configuring ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== building ${dir} (-j${JOBS}) ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== testing ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_config build-ci-release -DCMAKE_BUILD_TYPE=Release
run_config build-ci-asan -DCMAKE_BUILD_TYPE=Debug -DXDBFT_SANITIZE=address

echo "=== CI passed (Release + ASan) ==="
