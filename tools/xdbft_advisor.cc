// xdbft_advisor — command-line front end of the fault-tolerance advisor.
//
// Reads an execution plan in the plan-text format (see plan/plan_text.h),
// runs the cost-based fault-tolerance scheme for the given cluster, prints
// the chosen materialization configuration and a scheme comparison, and
// optionally validates the choice by simulating execution under injected
// failures.
//
// Usage:
//   xdbft_advisor --plan plan.txt [--nodes N] [--mtbf SECONDS]
//                 [--mttr SECONDS] [--success-target S]
//                 [--pipe-constant C] [--scale-success-with-cluster]
//                 [--scheme NAME] [--wal-write-cost C]
//                 [--threads N] [--exec-threads N] [--simulate TRACES]
//                 [--emit-q5 SF] [--metrics-json PATH] [--trace-out PATH]
//
// --scheme NAME forces one fixed fault-tolerance scheme instead of the
// cost-based search: all-mat, no-mat-lineage, no-mat-restart, cost-based
// or wal (write-ahead lineage). Forcing wal enables the WAL cost terms;
// --wal-write-cost C sets the per-unit lineage log-write cost (and
// likewise enables WAL in the model, so the cost-based search may pick a
// WAL-shaped plan when the log tax beats materialization).
//
// --burst-mtbf S / --burst-fanout F enable the correlated-failure model:
// S is the mean seconds between correlated bursts, F the fraction of the
// cluster each burst takes down (0 disables it — the independent model).
// --placement-groups G / --remote-read-penalty P turn on placement-aware
// enumeration (see DESIGN.md §13). --drift-threshold D sets the relative
// observed-vs-assumed cluster drift past which --serve invalidates cached
// plans (default 0.5). Non-finite or non-positive cluster/model inputs
// are rejected up front with an InvalidArgument.
//
// --threads N runs the FT-plan enumeration on N worker threads (default 0
// = one per hardware thread; the chosen plan is identical at any value).
//
// --exec-threads N runs the validation execution's partition tasks on N
// TaskPool workers (default 0 = one per hardware thread; the query result
// and failure/recovery counts are identical at any value).
//
// --emit-q5 SF prints the built-in TPC-H Q5 plan at the given scale factor
// in plan-text format (a quick way to get a realistic input file);
// --storage-mibps overrides the emitted plan's materialization-store
// bandwidth (slower stores raise tm relative to tr, which is what pruning
// rules 1/2 key on — see bench/fig13_pruning.cc for the calibration).
//
// Observability (see DESIGN.md "Observability"):
//   --metrics-json PATH  write a RunReport (params + metrics snapshot) as
//                        JSON. Also runs a small in-process validation
//                        execution (tiny TPC-H + Q5 stage plan + scripted
//                        failures) so executor.* metrics and the
//                        predicted-vs-observed accuracy report are
//                        populated.
//   --trace-out PATH     write a Chrome trace-event JSON timeline (load in
//                        chrome://tracing or https://ui.perfetto.dev):
//                        wall-clock spans from the validation execution and
//                        virtual-time spans from one simulated run.
//   --profile            run TPC-H Q1/Q3/Q5 over a tiny generated database
//                        on both engines with per-operator profiling and
//                        print one EXPLAIN ANALYZE tree per stage (also
//                        embedded in --metrics-json under "profiles").
//                        Works standalone, without --plan.
//   --postmortem-dir DIR if the validation execution aborts, write a
//                        post-mortem bundle (flight-recorder tail, metrics
//                        snapshot, attempt timeline) into DIR.
//
// Serving (see README "Serving" and DESIGN.md §12):
//   --serve --requests N drive N requests through a long-lived
//                        AdvisorService from --clients concurrent client
//                        threads (default 2) and print throughput, latency
//                        percentiles, cache-hit rate and the per-entry hot
//                        list. --hot-fraction F (default 0.9) sets the
//                        share of requests drawn from the 4-key hot set;
//                        --cache-capacity C bounds the result cache.
//                        Without --plan the request population is the
//                        built-in TPC-H Q1/Q3/Q5 mix; with --plan it is
//                        that plan under varying MTBF. Composable with
//                        --metrics-json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/rng.h"

#include "api/xdbft.h"
#include "engine/ft_executor.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "plan/plan_text.h"

using namespace xdbft;

namespace {

struct Args {
  std::string plan_path;
  int nodes = 10;
  double mtbf = cost::kSecondsPerDay;
  double mttr = 1.0;
  // Correlated failures / placement (0 bursts = independent model).
  double burst_mtbf = 0.0;
  double burst_fanout = 1.0;
  int placement_groups = 1;
  double remote_read_penalty = 0.25;
  double success_target = 0.95;
  double pipe_constant = 1.0;
  bool scale_success = false;
  bool greedy = false;
  // --scheme: force one fixed scheme ("" = cost-based search).
  std::string scheme;
  // --wal-write-cost: per-unit lineage log-write cost (0 = model default;
  // any positive value also enables the WAL cost terms).
  double wal_write_cost = 0.0;
  int threads = 0;       // 0 = hardware concurrency
  int exec_threads = 0;  // 0 = hardware concurrency
  int simulate_traces = 0;
  double emit_q5_sf = 0.0;
  double storage_mibps = 0.0;  // 0 = TpchPlanConfig default
  std::string metrics_json;
  std::string trace_out;
  bool profile = false;
  std::string postmortem_dir;
  // --serve mode
  bool serve = false;
  int requests = 1000;
  int clients = 2;
  double hot_fraction = 0.9;
  int cache_capacity = 4096;
  double drift_threshold = 0.5;
};

// All clusters the advisor reasons about carry the burst/placement
// parameters, so the one MakeCluster call site that forgets them cannot
// silently fall back to the independent model.
// Maps the --scheme spelling onto SchemeKind. Accepts the hyphenated
// names printed by SchemeKindName plus the short "wal" alias.
bool ParseSchemeKind(const std::string& name, ft::SchemeKind* out) {
  if (name == "all-mat") {
    *out = ft::SchemeKind::kAllMat;
  } else if (name == "no-mat-lineage") {
    *out = ft::SchemeKind::kNoMatLineage;
  } else if (name == "no-mat-restart") {
    *out = ft::SchemeKind::kNoMatRestart;
  } else if (name == "cost-based") {
    *out = ft::SchemeKind::kCostBased;
  } else if (name == "wal" || name == "write-ahead-lineage") {
    *out = ft::SchemeKind::kWriteAheadLineage;
  } else {
    return false;
  }
  return true;
}

// Folds the WAL CLI knobs into the cost model: a positive
// --wal-write-cost or a forced wal scheme switches the WAL terms on.
void ApplyWalArgs(const Args& args, cost::CostModelParams* model) {
  if (args.wal_write_cost > 0.0) {
    model->wal_enabled = true;
    model->wal_write_cost = args.wal_write_cost;
  }
  if (args.scheme == "wal" || args.scheme == "write-ahead-lineage") {
    model->wal_enabled = true;
  }
}

cost::ClusterStats MakeStats(const Args& args, double mtbf) {
  cost::ClusterStats stats = cost::MakeCluster(args.nodes, mtbf, args.mttr);
  stats.burst_mtbf_seconds = args.burst_mtbf;
  stats.burst_fanout = args.burst_fanout;
  stats.num_placement_groups = args.placement_groups;
  stats.remote_read_penalty = args.remote_read_penalty;
  return stats;
}

// Rejects non-finite / non-positive cluster or model parameters up front
// with an InvalidArgument instead of letting NaNs reach the enumerator.
bool ValidateParams(const cost::ClusterStats& stats,
                    const cost::CostModelParams& model) {
  ft::FtCostContext context;
  context.cluster = stats;
  context.model = model;
  const Status s = context.Validate();
  if (!s.ok()) {
    std::fprintf(stderr, "invalid parameters: %s\n", s.ToString().c_str());
    return false;
  }
  return true;
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --plan FILE [--nodes N] [--mtbf S] [--mttr S]\n"
      "          [--burst-mtbf S] [--burst-fanout F]\n"
      "          [--placement-groups G] [--remote-read-penalty P]\n"
      "          [--success-target S] [--pipe-constant C]\n"
      "          [--scheme all-mat|no-mat-lineage|no-mat-restart|"
      "cost-based|wal]\n"
      "          [--wal-write-cost C]\n"
      "          [--scale-success-with-cluster] [--greedy]\n"
      "          [--threads N] [--exec-threads N] [--simulate TRACES]\n"
      "          [--metrics-json PATH] [--trace-out PATH]\n"
      "          [--profile] [--postmortem-dir DIR]\n"
      "       %s --profile [--metrics-json PATH]\n"
      "       %s --emit-q5 SF [--storage-mibps MIB]\n"
      "       %s --serve --requests N [--clients K] [--hot-fraction F]\n"
      "          [--cache-capacity C] [--drift-threshold D]\n"
      "          [--plan FILE] [--metrics-json PATH]\n",
      argv0, argv0, argv0, argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtod(argv[++i], nullptr);
      return true;
    };
    double v = 0;
    if (a == "--plan" && i + 1 < argc) {
      args->plan_path = argv[++i];
    } else if (a == "--nodes" && next(&v)) {
      args->nodes = static_cast<int>(v);
    } else if (a == "--mtbf" && next(&v)) {
      args->mtbf = v;
    } else if (a == "--mttr" && next(&v)) {
      args->mttr = v;
    } else if (a == "--burst-mtbf" && next(&v)) {
      args->burst_mtbf = v;
    } else if (a == "--burst-fanout" && next(&v)) {
      args->burst_fanout = v;
    } else if (a == "--placement-groups" && next(&v)) {
      args->placement_groups = static_cast<int>(v);
    } else if (a == "--remote-read-penalty" && next(&v)) {
      args->remote_read_penalty = v;
    } else if (a == "--drift-threshold" && next(&v)) {
      args->drift_threshold = v;
    } else if (a == "--success-target" && next(&v)) {
      args->success_target = v;
    } else if (a == "--pipe-constant" && next(&v)) {
      args->pipe_constant = v;
    } else if (a == "--scheme" && i + 1 < argc) {
      args->scheme = argv[++i];
    } else if (a == "--wal-write-cost" && next(&v)) {
      args->wal_write_cost = v;
    } else if (a == "--scale-success-with-cluster") {
      args->scale_success = true;
    } else if (a == "--greedy") {
      args->greedy = true;
    } else if (a == "--threads" && next(&v)) {
      args->threads = static_cast<int>(v);
    } else if (a == "--exec-threads" && next(&v)) {
      args->exec_threads = static_cast<int>(v);
    } else if (a == "--simulate" && next(&v)) {
      args->simulate_traces = static_cast<int>(v);
    } else if (a == "--emit-q5" && next(&v)) {
      args->emit_q5_sf = v;
    } else if (a == "--storage-mibps" && next(&v)) {
      args->storage_mibps = v;
    } else if (a == "--metrics-json" && i + 1 < argc) {
      args->metrics_json = argv[++i];
    } else if (a == "--trace-out" && i + 1 < argc) {
      args->trace_out = argv[++i];
    } else if (a == "--profile") {
      args->profile = true;
    } else if (a == "--postmortem-dir" && i + 1 < argc) {
      args->postmortem_dir = argv[++i];
    } else if (a == "--serve") {
      args->serve = true;
    } else if (a == "--requests" && next(&v)) {
      args->requests = static_cast<int>(v);
    } else if (a == "--clients" && next(&v)) {
      args->clients = static_cast<int>(v);
    } else if (a == "--hot-fraction" && next(&v)) {
      args->hot_fraction = v;
    } else if (a == "--cache-capacity" && next(&v)) {
      args->cache_capacity = static_cast<int>(v);
    } else {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n",
                   a.c_str());
      return false;
    }
  }
  return true;
}

// Runs the built-in Q5 stage plan over a tiny generated TPC-H database
// with scripted failures on the first two partition-parallel stages. This
// populates the executor.* metrics behind `--metrics-json` with real
// recovery work and yields an observed row for the accuracy report.
// Wall-clock spans go into `trace` when non-null.
Result<ft::ObservedExecution> RunValidationExecution(
    obs::TraceRecorder* trace, int exec_threads,
    const std::string& postmortem_dir) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.002;
  opts.seed = 7;
  XDBFT_ASSIGN_OR_RETURN(datagen::TpchDatabase db,
                         datagen::GenerateTpch(opts));
  XDBFT_ASSIGN_OR_RETURN(engine::PartitionedDatabase pd,
                         engine::DistributeTpch(db, 3));
  const engine::StagePlan q5 = engine::MakeQ5StagePlan(pd);
  const ft::MaterializationConfig config =
      ft::MaterializationConfig::AllMat(q5.ToPlanSkeleton());
  std::vector<std::pair<int, int>> victims;
  for (int s = 0; s < q5.num_stages() && victims.size() < 2; ++s) {
    if (!q5.stage(s).global) {
      victims.emplace_back(s, static_cast<int>(victims.size()));
    }
  }
  engine::ScriptedInjector injector(std::move(victims));
  engine::FaultTolerantExecutor executor(&q5, &pd);
  executor.set_trace(trace);
  executor.set_num_threads(exec_threads);
  if (!postmortem_dir.empty()) executor.set_postmortem_dir(postmortem_dir);
  XDBFT_ASSIGN_OR_RETURN(engine::FtExecutionResult r,
                         executor.Execute(config, &injector));
  ft::ObservedExecution observed;
  observed.source = "ft_executor (validation: tiny TPC-H Q5)";
  observed.failures = r.failures_injected;
  observed.recovery_executions = r.recovery_executions;
  observed.task_executions = r.task_executions;
  observed.runtime_seconds = r.wall_seconds;
  return observed;
}

// --profile: run Q1/Q3/Q5 over a tiny generated TPC-H database on both
// engines with per-operator profiling on and print one EXPLAIN ANALYZE
// tree per stage. The collected profiles (labels prefixed with the query
// name) are appended to *profiles for --metrics-json.
Status RunProfileDemo(std::vector<obs::QueryProfile>* profiles) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.01;
  opts.seed = 7;
  XDBFT_ASSIGN_OR_RETURN(datagen::TpchDatabase db,
                         datagen::GenerateTpch(opts));
  XDBFT_ASSIGN_OR_RETURN(engine::PartitionedDatabase pd,
                         engine::DistributeTpch(db, 3));
  struct Query {
    const char* name;
    Result<engine::QueryExecution> (engine::QueryRunner::*run)() const;
  };
  const Query kQueries[] = {{"Q1", &engine::QueryRunner::RunQ1},
                            {"Q3", &engine::QueryRunner::RunQ3},
                            {"Q5", &engine::QueryRunner::RunQ5}};
  for (const engine::ExecMode mode :
       {engine::ExecMode::kRow, engine::ExecMode::kVectorized}) {
    const bool vectorized = mode == engine::ExecMode::kVectorized;
    engine::ExecOptions eopts;
    eopts.mode = mode;
    eopts.num_threads = vectorized ? 2 : 1;
    eopts.profile = true;
    engine::QueryRunner runner(&pd, eopts);
    for (const Query& q : kQueries) {
      XDBFT_ASSIGN_OR_RETURN(engine::QueryExecution exec,
                             (runner.*q.run)());
      std::printf("\nEXPLAIN ANALYZE %s (tiny TPC-H sf=0.01, %s engine):\n",
                  q.name, vectorized ? "vectorized" : "row");
      for (obs::QueryProfile& p : exec.stage_profiles) {
        std::printf("%s", p.ToText().c_str());
        p.label = std::string(q.name) + "/" + p.label;
        profiles->push_back(std::move(p));
      }
    }
  }
  return Status::OK();
}

// --serve: sustained-load driver over a long-lived AdvisorService. The
// population is either the built-in TPC-H Q1/Q3/Q5 mix or (with --plan)
// the given plan under varying MTBF; the first 4 keys form the hot set.
int RunServe(const Args& args) {
  constexpr size_t kPopulation = 64;
  constexpr size_t kHotSet = 4;
  std::vector<plan::Plan> base_plans;
  if (!args.plan_path.empty()) {
    std::ifstream in(args.plan_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   args.plan_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto plan = plan::PlanFromText(buf.str());
    if (!plan.ok()) {
      std::fprintf(stderr, "error parsing plan: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    base_plans.push_back(std::move(*plan));
  } else {
    for (const tpch::TpchQuery q : {tpch::TpchQuery::kQ1,
                                    tpch::TpchQuery::kQ3,
                                    tpch::TpchQuery::kQ5}) {
      tpch::TpchPlanConfig cfg;
      cfg.scale_factor = 10.0;
      auto plan = tpch::BuildQuery(q, cfg);
      if (!plan.ok()) {
        std::fprintf(stderr, "error building %s: %s\n", tpch::TpchQueryName(q),
                     plan.status().ToString().c_str());
        return 1;
      }
      base_plans.push_back(std::move(*plan));
    }
  }
  cost::CostModelParams model;
  model.success_target = args.success_target;
  model.pipe_constant = args.pipe_constant;
  model.scale_success_target_with_cluster = args.scale_success;
  ApplyWalArgs(args, &model);
  if (!ValidateParams(MakeStats(args, args.mtbf), model)) return 1;
  std::vector<api::AdvisorRequest> population;
  population.reserve(kPopulation);
  for (size_t i = 0; i < kPopulation; ++i) {
    api::AdvisorRequest request;
    request.candidates.push_back(base_plans[i % base_plans.size()]);
    request.cluster =
        MakeStats(args, args.mtbf + 60.0 * static_cast<double>(i));
    request.model = model;
    population.push_back(std::move(request));
  }

  api::AdvisorServiceOptions options;
  options.cache_capacity =
      static_cast<size_t>(std::max(args.cache_capacity, 1));
  options.enumeration.num_threads =
      args.threads == 0 ? 1 : args.threads;  // clients provide parallelism
  options.drift_threshold = args.drift_threshold;
  api::AdvisorService service(MakeStats(args, args.mtbf), model, options);

  const int clients = std::max(args.clients, 1);
  const int total_requests = std::max(args.requests, 1);
  const double hot_fraction =
      std::min(1.0, std::max(0.0, args.hot_fraction));
  std::printf("Serving %d requests from %d client thread(s), %.0f%% hot "
              "(population %zu, cache capacity %zu)\n",
              total_requests, clients, hot_fraction * 100.0,
              population.size(), options.cache_capacity);

  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::vector<uint64_t> failures(static_cast<size_t>(clients), 0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5e47eULL + static_cast<uint64_t>(t) * 1031);
      const int n = total_requests / clients +
                    (t < total_requests % clients ? 1 : 0);
      auto& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        const size_t idx =
            rng.NextDouble() < hot_fraction
                ? rng.NextBounded(kHotSet)
                : kHotSet + rng.NextBounded(population.size() - kHotSet);
        const auto r0 = std::chrono::steady_clock::now();
        auto result = service.Advise(population[idx]);
        const auto r1 = std::chrono::steady_clock::now();
        if (!result.ok()) ++failures[static_cast<size_t>(t)];
        lat.push_back(
            std::chrono::duration<double, std::micro>(r1 - r0).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> all;
  uint64_t failed = 0;
  for (int t = 0; t < clients; ++t) {
    all.insert(all.end(), latencies[static_cast<size_t>(t)].begin(),
               latencies[static_cast<size_t>(t)].end());
    failed += failures[static_cast<size_t>(t)];
  }
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) {
    if (all.empty()) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(all.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, all.size() - 1);
    return all[lo] + (all[hi] - all[lo]) * (rank - static_cast<double>(lo));
  };

  const api::AdvisorServiceStats stats = service.stats();
  std::printf("\n  qps        %10.0f\n", wall > 0.0
                                             ? static_cast<double>(all.size()) / wall
                                             : 0.0);
  std::printf("  p50 / p95 / p99   %.1f / %.1f / %.1f us\n", pct(50.0),
              pct(95.0), pct(99.0));
  std::printf("  hit rate   %10.3f\n", stats.hit_rate());
  std::printf("  hits %llu  misses %llu  coalesced %llu  evictions %llu  "
              "bypassed %llu  warm starts %llu  errors %llu\n",
              (unsigned long long)stats.hits,
              (unsigned long long)stats.misses,
              (unsigned long long)stats.coalesced,
              (unsigned long long)stats.evictions,
              (unsigned long long)stats.bypassed,
              (unsigned long long)stats.memo_warm_starts,
              (unsigned long long)stats.errors);
  const auto entries = service.EntrySnapshot();
  std::printf("\nHottest cache entries (%llu resident):\n",
              (unsigned long long)stats.entries);
  for (size_t i = 0; i < entries.size() && i < 5; ++i) {
    std::printf("  %s  hits %llu  coalesced %llu\n",
                entries[i].fingerprint.c_str(),
                (unsigned long long)entries[i].hits,
                (unsigned long long)entries[i].coalesced);
  }
  if (failed > 0) {
    std::fprintf(stderr, "error: %llu request(s) failed\n",
                 (unsigned long long)failed);
  }

  if (!args.metrics_json.empty()) {
    obs::RunReport report;
    report.tool = "xdbft_advisor --serve";
    report.params["requests"] = std::to_string(total_requests);
    report.params["clients"] = std::to_string(clients);
    report.params["hot_fraction"] = std::to_string(hot_fraction);
    report.params["cache_capacity"] = std::to_string(options.cache_capacity);
    report.params["hit_rate"] = std::to_string(stats.hit_rate());
    report.metrics = obs::MetricsRegistry::Default().Snapshot();
    const Status s = report.WriteFile(args.metrics_json);
    if (!s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n",
                   args.metrics_json.c_str(), s.ToString().c_str());
      return 1;
    }
    std::printf("\nWrote metrics report to %s\n", args.metrics_json.c_str());
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  if (args.emit_q5_sf > 0.0) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = args.emit_q5_sf;
    if (args.storage_mibps > 0.0) {
      cfg.storage_bandwidth_bps = args.storage_mibps * 1024 * 1024;
    }
    auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", plan::PlanToText(*plan).c_str());
    return 0;
  }

  if (args.serve) return RunServe(args);

  std::vector<obs::QueryProfile> profiles;
  if (args.profile) {
    const Status s = RunProfileDemo(&profiles);
    if (!s.ok()) {
      std::fprintf(stderr, "profile run failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }

  if (args.plan_path.empty()) {
    if (args.profile) {
      // Standalone --profile: no plan to advise on; optionally persist the
      // profile trees (plus whatever metrics the runs produced).
      if (!args.metrics_json.empty()) {
        obs::RunReport report;
        report.tool = "xdbft_advisor";
        report.profiles = std::move(profiles);
        report.metrics = obs::MetricsRegistry::Default().Snapshot();
        const Status s = report.WriteFile(args.metrics_json);
        if (!s.ok()) {
          std::fprintf(stderr, "error writing %s: %s\n",
                       args.metrics_json.c_str(), s.ToString().c_str());
          return 1;
        }
        std::printf("\nWrote metrics report to %s\n",
                    args.metrics_json.c_str());
      }
      return 0;
    }
    Usage(argv[0]);
    return 2;
  }
  std::ifstream in(args.plan_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 args.plan_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto plan = plan::PlanFromText(buf.str());
  if (!plan.ok()) {
    std::fprintf(stderr, "error parsing plan: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  const cost::ClusterStats stats = MakeStats(args, args.mtbf);
  cost::CostModelParams model;
  model.success_target = args.success_target;
  model.pipe_constant = args.pipe_constant;
  model.scale_success_target_with_cluster = args.scale_success;
  ApplyWalArgs(args, &model);
  if (!ValidateParams(stats, model)) return 1;

  ft::SchemeKind forced_kind = ft::SchemeKind::kCostBased;
  const bool forced_scheme = !args.scheme.empty();
  if (forced_scheme && !ParseSchemeKind(args.scheme, &forced_kind)) {
    std::fprintf(stderr,
                 "unknown --scheme '%s' (expected all-mat, no-mat-lineage, "
                 "no-mat-restart, cost-based or wal)\n",
                 args.scheme.c_str());
    return 2;
  }

  obs::TraceRecorder trace;
  obs::TraceRecorder* trace_ptr =
      args.trace_out.empty() ? nullptr : &trace;

  ft::EnumerationOptions eopts;
  eopts.num_threads = args.threads;
  eopts.trace = trace_ptr;  // pid 2: per-worker lanes of the enumeration
  eopts.trace_pid = 2;
  if (trace_ptr != nullptr) {
    trace.SetProcessName(2, "ft-plan enumeration (wall clock)");
  }
  api::FaultToleranceAdvisor advisor(stats, model, eopts);
  Result<ft::SchemePlan> chosen = [&]() -> Result<ft::SchemePlan> {
    if (forced_scheme) {
      return ft::ApplyScheme(forced_kind, *plan, advisor.context(), eopts);
    }
    if (!args.greedy) return advisor.ChooseBestPlan(*plan);
    // Greedy hill climbing for plans too wide to enumerate.
    XDBFT_ASSIGN_OR_RETURN(ft::GreedyResult g,
                           ft::GreedyMaterialization(*plan,
                                                     advisor.context()));
    ft::SchemePlan sp;
    sp.kind = ft::SchemeKind::kCostBased;
    sp.recovery = ft::RecoveryMode::kFineGrained;
    sp.plan = *plan;
    sp.config = std::move(g.config);
    sp.estimated_cost = g.estimated_cost;
    return sp;
  }();
  if (!chosen.ok()) {
    std::fprintf(stderr, "advisor error: %s\n",
                 chosen.status().ToString().c_str());
    return 1;
  }
  std::cout << advisor.Explain(*chosen);

  const bool observability = !args.metrics_json.empty() || trace_ptr;

  if (observability) {
    auto report = ft::BuildAccuracyReport(*plan, chosen->config,
                                          advisor.context());
    auto observed = RunValidationExecution(trace_ptr, args.exec_threads,
                                           args.postmortem_dir);
    if (report.ok()) {
      if (observed.ok()) report->observed.push_back(*observed);
      std::printf("\n%s", report->ToString().c_str());
    }
    if (!observed.ok()) {
      std::fprintf(stderr, "validation execution failed: %s\n",
                   observed.status().ToString().c_str());
    }
  }

  auto comparison = advisor.CompareSchemes(*plan);
  if (comparison.ok()) {
    std::printf("\nScheme comparison (estimated runtime under failures):\n");
    for (const auto& est : comparison->estimates) {
      std::printf("  %-18s %12.1fs  (%zu materialized)\n",
                  ft::SchemeKindName(est.kind), est.estimated_runtime,
                  est.num_materialized);
    }
  }

  if (args.simulate_traces > 0) {
    cluster::ClusterSimulator simulator(stats);
    auto baseline = simulator.BaselineRuntime(*plan);
    auto traces = cluster::GenerateTraceSet(
        stats, args.simulate_traces, /*base_seed=*/42);
    auto result = simulator.RunMany(*chosen, traces);
    if (result.ok() && baseline.ok()) {
      std::printf(
          "\nSimulated over %d failure traces: mean runtime %.1fs "
          "(baseline %.1fs, overhead %.1f%%, %d sub-plan restarts)\n",
          args.simulate_traces, result->runtime, *baseline,
          cluster::OverheadPercent(result->runtime, *baseline),
          result->restarts);
    }
    if (trace_ptr != nullptr) {
      // One extra single run exports the discrete-event timeline (virtual
      // time: 1 simulated second = 1 ms) into the trace on its own pid.
      cluster::SimulationOptions sim_options;
      sim_options.trace = trace_ptr;
      sim_options.trace_pid = 1;
      trace.SetProcessName(1, "simulator (virtual time: 1 sim s = 1 ms)");
      for (int k = 0; k < stats.num_nodes; ++k) {
        trace.SetThreadName(1, k, "node " + std::to_string(k));
      }
      cluster::ClusterSimulator traced(stats, sim_options);
      auto single = cluster::GenerateTraceSet(stats, 1, /*base_seed=*/43);
      auto r = traced.Run(*chosen, single[0]);
      if (!r.ok()) {
        std::fprintf(stderr, "traced simulation failed: %s\n",
                     r.status().ToString().c_str());
      }
    }
  }

  if (trace_ptr != nullptr) {
    const Status s = trace.WriteFile(args.trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", args.trace_out.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("\nWrote Chrome trace (%zu events) to %s\n",
                trace.num_events(), args.trace_out.c_str());
  }
  if (!args.metrics_json.empty()) {
    obs::RunReport report;
    report.tool = "xdbft_advisor";
    report.plan_name = plan->name();
    report.config_summary = chosen->config.ToString();
    report.params["nodes"] = std::to_string(args.nodes);
    report.params["mtbf_seconds"] = std::to_string(args.mtbf);
    report.params["mttr_seconds"] = std::to_string(args.mttr);
    report.params["success_target"] = std::to_string(args.success_target);
    report.params["pipe_constant"] = std::to_string(args.pipe_constant);
    report.params["simulate_traces"] = std::to_string(args.simulate_traces);
    report.params["greedy"] = args.greedy ? "true" : "false";
    if (forced_scheme) report.params["scheme"] = args.scheme;
    if (model.wal_enabled) {
      report.params["wal_write_cost"] = std::to_string(model.wal_write_cost);
    }
    report.params["threads"] =
        std::to_string(ft::FtPlanEnumerator::ResolveThreads(args.threads));
    report.params["exec_threads"] = std::to_string(
        engine::FaultTolerantExecutor::ResolveThreads(args.exec_threads));
    report.profiles = std::move(profiles);
    report.metrics = obs::MetricsRegistry::Default().Snapshot();
    const Status s = report.WriteFile(args.metrics_json);
    if (!s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n",
                   args.metrics_json.c_str(), s.ToString().c_str());
      return 1;
    }
    std::printf("Wrote metrics report to %s\n", args.metrics_json.c_str());
  }
  return 0;
}
