// xdbft_advisor — command-line front end of the fault-tolerance advisor.
//
// Reads an execution plan in the plan-text format (see plan/plan_text.h),
// runs the cost-based fault-tolerance scheme for the given cluster, prints
// the chosen materialization configuration and a scheme comparison, and
// optionally validates the choice by simulating execution under injected
// failures.
//
// Usage:
//   xdbft_advisor --plan plan.txt [--nodes N] [--mtbf SECONDS]
//                 [--mttr SECONDS] [--success-target S]
//                 [--pipe-constant C] [--scale-success-with-cluster]
//                 [--simulate TRACES] [--emit-q5 SF]
//
// --emit-q5 SF prints the built-in TPC-H Q5 plan at the given scale factor
// in plan-text format (a quick way to get a realistic input file).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "api/xdbft.h"
#include "plan/plan_text.h"

using namespace xdbft;

namespace {

struct Args {
  std::string plan_path;
  int nodes = 10;
  double mtbf = cost::kSecondsPerDay;
  double mttr = 1.0;
  double success_target = 0.95;
  double pipe_constant = 1.0;
  bool scale_success = false;
  bool greedy = false;
  int simulate_traces = 0;
  double emit_q5_sf = 0.0;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --plan FILE [--nodes N] [--mtbf S] [--mttr S]\n"
      "          [--success-target S] [--pipe-constant C]\n"
      "          [--scale-success-with-cluster] [--greedy]\n"
      "          [--simulate TRACES]\n"
      "       %s --emit-q5 SF\n",
      argv0, argv0);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtod(argv[++i], nullptr);
      return true;
    };
    double v = 0;
    if (a == "--plan" && i + 1 < argc) {
      args->plan_path = argv[++i];
    } else if (a == "--nodes" && next(&v)) {
      args->nodes = static_cast<int>(v);
    } else if (a == "--mtbf" && next(&v)) {
      args->mtbf = v;
    } else if (a == "--mttr" && next(&v)) {
      args->mttr = v;
    } else if (a == "--success-target" && next(&v)) {
      args->success_target = v;
    } else if (a == "--pipe-constant" && next(&v)) {
      args->pipe_constant = v;
    } else if (a == "--scale-success-with-cluster") {
      args->scale_success = true;
    } else if (a == "--greedy") {
      args->greedy = true;
    } else if (a == "--simulate" && next(&v)) {
      args->simulate_traces = static_cast<int>(v);
    } else if (a == "--emit-q5" && next(&v)) {
      args->emit_q5_sf = v;
    } else {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n",
                   a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  if (args.emit_q5_sf > 0.0) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = args.emit_q5_sf;
    auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", plan::PlanToText(*plan).c_str());
    return 0;
  }

  if (args.plan_path.empty()) {
    Usage(argv[0]);
    return 2;
  }
  std::ifstream in(args.plan_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 args.plan_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto plan = plan::PlanFromText(buf.str());
  if (!plan.ok()) {
    std::fprintf(stderr, "error parsing plan: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  const auto stats = cost::MakeCluster(args.nodes, args.mtbf, args.mttr);
  cost::CostModelParams model;
  model.success_target = args.success_target;
  model.pipe_constant = args.pipe_constant;
  model.scale_success_target_with_cluster = args.scale_success;

  api::FaultToleranceAdvisor advisor(stats, model);
  Result<ft::SchemePlan> chosen = [&]() -> Result<ft::SchemePlan> {
    if (!args.greedy) return advisor.ChooseBestPlan(*plan);
    // Greedy hill climbing for plans too wide to enumerate.
    XDBFT_ASSIGN_OR_RETURN(ft::GreedyResult g,
                           ft::GreedyMaterialization(*plan,
                                                     advisor.context()));
    ft::SchemePlan sp;
    sp.kind = ft::SchemeKind::kCostBased;
    sp.recovery = ft::RecoveryMode::kFineGrained;
    sp.plan = *plan;
    sp.config = std::move(g.config);
    sp.estimated_cost = g.estimated_cost;
    return sp;
  }();
  if (!chosen.ok()) {
    std::fprintf(stderr, "advisor error: %s\n",
                 chosen.status().ToString().c_str());
    return 1;
  }
  std::cout << advisor.Explain(*chosen);

  auto comparison = advisor.CompareSchemes(*plan);
  if (comparison.ok()) {
    std::printf("\nScheme comparison (estimated runtime under failures):\n");
    for (const auto& est : comparison->estimates) {
      std::printf("  %-18s %12.1fs  (%zu materialized)\n",
                  ft::SchemeKindName(est.kind), est.estimated_runtime,
                  est.num_materialized);
    }
  }

  if (args.simulate_traces > 0) {
    cluster::ClusterSimulator simulator(stats);
    auto baseline = simulator.BaselineRuntime(*plan);
    auto traces = cluster::GenerateTraceSet(
        stats, args.simulate_traces, /*base_seed=*/42);
    auto result = simulator.RunMany(*chosen, traces);
    if (result.ok() && baseline.ok()) {
      std::printf(
          "\nSimulated over %d failure traces: mean runtime %.1fs "
          "(baseline %.1fs, overhead %.1f%%, %d sub-plan restarts)\n",
          args.simulate_traces, result->runtime, *baseline,
          cluster::OverheadPercent(result->runtime, *baseline),
          result->restarts);
    }
  }
  return 0;
}
