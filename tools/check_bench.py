#!/usr/bin/env python3
"""Warn-only perf-regression gate over the BENCH_*.json artifacts.

Compares the JSON-lines bench artifacts of the current run (BENCH_enum,
BENCH_exec, BENCH_advisor) against the committed snapshots in
bench/baselines/. Rows are joined per bench on stable keys (workload +
threads, mode + clients + hot fraction, ...) and each watched metric is
checked against the baseline with a relative tolerance: latency-style
metrics may not grow past it, rate-style metrics may not shrink past it.

Regressions are reported as GitHub `::warning::` annotations (rendered on
the workflow run) and a human-readable summary — the exit code is ALWAYS 0
for comparisons, because shared CI runners make wall-clock numbers too
noisy to fail a build on; the annotations exist so a real regression is
visible on the PR, not to block it. Correctness (bit-identity, determinism)
is enforced by the harness binaries themselves, which do exit non-zero.

Usage:
  python3 tools/check_bench.py --baseline-dir bench/baselines \
      --current-dir bench-json [--tolerance 0.25]
  python3 tools/check_bench.py --self-test

Missing files or benches are skipped with a note (a new bench has no
baseline yet; commit one under bench/baselines/ to start tracking it).
"""

import argparse
import json
import os
import sys

# Per-bench comparison spec: which row fields form the join key, and which
# metrics to watch. Direction 'higher_bad' = current may not exceed
# baseline * (1 + tol); 'lower_bad' = current may not fall below
# baseline * (1 - tol).
SPECS = {
    "advisor": {
        "keys": ("mode", "clients", "hot_fraction"),
        "metrics": {
            "p50_us": "higher_bad",
            "p99_us": "higher_bad",
            "hit_rate": "lower_bad",
            "p50_speedup_vs_cold": "lower_bad",
        },
    },
    "correlated": {
        "keys": ("mean_interval", "fanout"),
        "metrics": {
            # Accuracy, not wall-clock: the correlated model's error as a
            # fraction of the independent model's at the same grid point.
            "err_ratio": "higher_bad",
        },
    },
    "schemes": {
        "keys": ("scale", "scheme"),
        "metrics": {
            # Simulated-seconds makespan (deterministic for a fixed trace
            # seed, so the tolerance only absorbs intentional model
            # changes, not runner noise).
            "makespan_seconds": "higher_bad",
        },
    },
    "enum": {
        "keys": ("workload", "threads"),
        "metrics": {
            "seconds": "higher_bad",
            "speedup_vs_1": "lower_bad",
        },
    },
    "exec": {
        "keys": ("workload", "threads"),
        "metrics": {
            "seconds": "higher_bad",
            "speedup_vs_1": "lower_bad",
        },
    },
}


def load_rows(path):
    """Parse a JSON-lines bench file into data rows (type == 'row')."""
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"note: {path}:{line_no}: unparseable line ({e})")
                continue
            if record.get("type") == "row":
                rows.append(record)
    return rows


def row_key(row, keys):
    return tuple(row.get(k) for k in keys)


def compare_bench(name, baseline_rows, current_rows, tolerance):
    """Return a list of regression message strings."""
    spec = SPECS[name]
    regressions = []
    baseline_by_key = {row_key(r, spec["keys"]): r for r in baseline_rows}
    for cur in current_rows:
        key = row_key(cur, spec["keys"])
        base = baseline_by_key.get(key)
        if base is None:
            continue  # new sweep point: nothing to compare against
        label = ", ".join(
            f"{k}={v}" for k, v in zip(spec["keys"], key) if v is not None)
        for metric, direction in spec["metrics"].items():
            if metric not in base or metric not in cur:
                continue
            b, c = float(base[metric]), float(cur[metric])
            if b <= 0.0:
                continue  # degenerate baseline (e.g. speedup on cold rows)
            if direction == "higher_bad" and c > b * (1.0 + tolerance):
                regressions.append(
                    f"{name} [{label}]: {metric} {c:.3g} vs baseline "
                    f"{b:.3g} (+{(c / b - 1.0) * 100.0:.0f}%, "
                    f"tolerance {tolerance * 100.0:.0f}%)")
            elif direction == "lower_bad" and c < b * (1.0 - tolerance):
                regressions.append(
                    f"{name} [{label}]: {metric} {c:.3g} vs baseline "
                    f"{b:.3g} ({(c / b - 1.0) * 100.0:.0f}%, "
                    f"tolerance {tolerance * 100.0:.0f}%)")
    return regressions


def run_compare(baseline_dir, current_dir, tolerance):
    any_compared = False
    all_regressions = []
    for name in sorted(SPECS):
        baseline_path = os.path.join(baseline_dir, f"BENCH_{name}.json")
        current_path = os.path.join(current_dir, f"BENCH_{name}.json")
        if not os.path.exists(current_path):
            print(f"note: {current_path} not present, skipping {name}")
            continue
        if not os.path.exists(baseline_path):
            print(f"note: no baseline for {name} "
                  f"(commit one under {baseline_dir}/ to track it)")
            continue
        regressions = compare_bench(name, load_rows(baseline_path),
                                    load_rows(current_path), tolerance)
        any_compared = True
        if regressions:
            all_regressions.extend(regressions)
        else:
            print(f"ok: {name} within {tolerance * 100.0:.0f}% of baseline")
    for msg in all_regressions:
        # GitHub annotation (warn-only) + plain line for local runs.
        print(f"::warning title=bench regression::{msg}")
        print(f"REGRESSION (warn-only): {msg}")
    if not any_compared:
        print("note: nothing compared")
    print(f"checked against {baseline_dir}: "
          f"{len(all_regressions)} regression(s) flagged (exit 0 either way)")
    return 0


def self_test():
    """Exercise the comparison logic on synthetic rows."""
    base = [{
        "type": "row", "mode": "cached", "clients": 4, "hot_fraction": 0.8,
        "p50_us": 10.0, "p99_us": 100.0, "hit_rate": 0.9,
        "p50_speedup_vs_cold": 8.0,
    }]
    # Identical rows: no regressions.
    assert compare_bench("advisor", base, [dict(base[0])], 0.25) == []
    # p99 +60%: flagged.
    worse = dict(base[0], p99_us=160.0)
    found = compare_bench("advisor", base, [worse], 0.25)
    assert len(found) == 1 and "p99_us" in found[0], found
    # hit_rate collapse: flagged.
    cold = dict(base[0], hit_rate=0.4)
    found = compare_bench("advisor", base, [cold], 0.25)
    assert len(found) == 1 and "hit_rate" in found[0], found
    # Within tolerance: clean.
    noisy = dict(base[0], p50_us=11.5, hit_rate=0.85)
    assert compare_bench("advisor", base, [noisy], 0.25) == []
    # Different join key: ignored, not compared against the wrong row.
    other = dict(base[0], clients=8, p99_us=1e9)
    assert compare_bench("advisor", base, [other], 0.25) == []
    # enum spec joins on workload/threads.
    ebase = [{"type": "row", "workload": "q5", "threads": 4,
              "seconds": 1.0, "speedup_vs_1": 3.0}]
    eworse = [dict(ebase[0], speedup_vs_1=2.0)]
    found = compare_bench("enum", ebase, eworse, 0.25)
    assert len(found) == 1 and "speedup_vs_1" in found[0], found
    # correlated spec joins on the burst grid and watches model accuracy.
    cbase = [{"type": "row", "mean_interval": 250.0, "fanout": 1.0,
              "err_ratio": 0.2}]
    cworse = [dict(cbase[0], err_ratio=0.6)]
    found = compare_bench("correlated", cbase, cworse, 0.25)
    assert len(found) == 1 and "err_ratio" in found[0], found
    assert compare_bench("correlated", cbase, [dict(cbase[0])], 0.25) == []
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="warn-only bench regression check")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default="bench-json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance before flagging (0.25 = "
                             "25%%)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_compare(args.baseline_dir, args.current_dir, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
