// xdbft_crosscheck — differential validation harness for the cost model,
// the cluster simulator, and the real fault-tolerant executor.
//
// For each seed the harness generates a random case (plan DAG, cluster
// statistics, materialization config, failure traces — independent
// Poisson or correlated bursts) and cross-checks the three layers against
// each other plus a set of metamorphic properties (see
// src/validate/crosscheck.h for the full check list). A violated check is
// shrunk by a greedy minimizer and written as a JSON reproducer.
//
// Usage:
//   xdbft_crosscheck [--seeds N] [--seed-base B] [--traces N] [--quick]
//                    [--out-dir DIR] [--no-repro] [--postmortem-dir DIR]
//                    [--list]
//   xdbft_crosscheck --replay FILE
//
// Exit codes: 0 all checks passed, 1 violations found (reproducers
// written to --out-dir), 2 usage or environmental error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "validate/crosscheck.h"

using namespace xdbft;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: xdbft_crosscheck [--seeds N] [--seed-base B] [--traces N]\n"
      "                        [--quick] [--out-dir DIR] [--no-repro]\n"
      "                        [--postmortem-dir DIR] [--list]\n"
      "                        [--replay FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  validate::CrosscheckOptions options;
  std::string replay_path;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      options.seeds = std::atoi(next());
    } else if (arg == "--seed-base") {
      options.seed_base = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--traces") {
      options.traces = std::atoi(next());
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--out-dir") {
      options.out_dir = next();
    } else if (arg == "--no-repro") {
      options.write_reproducers = false;
    } else if (arg == "--postmortem-dir") {
      options.postmortem_dir = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (list) {
    for (const std::string& name : validate::CheckNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  if (!replay_path.empty()) {
    auto reproduced = validate::ReplayReproducer(replay_path);
    if (!reproduced.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   reproduced.status().ToString().c_str());
      return 2;
    }
    if (*reproduced) {
      std::printf("violation still reproduces: %s\n", replay_path.c_str());
      return 1;
    }
    std::printf("violation no longer reproduces: %s\n", replay_path.c_str());
    return 0;
  }

  if (options.seeds <= 0 || options.traces <= 0) {
    std::fprintf(stderr, "--seeds and --traces must be positive\n");
    return 2;
  }

  auto report = validate::RunCrosscheck(options);
  if (!report.ok()) {
    std::fprintf(stderr, "crosscheck failed to run: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf(
      "crosscheck: %d seeds, %lld checks, %lld abort-path executions, "
      "%d violation(s)\n",
      report->seeds_run, static_cast<long long>(report->checks_run),
      static_cast<long long>(report->aborts_observed), report->violations);
  for (const std::string& message : report->messages) {
    std::printf("VIOLATION %s\n", message.c_str());
  }
  for (const std::string& path : report->repro_paths) {
    std::printf("reproducer written: %s\n", path.c_str());
  }
  if (report->aborts_observed == 0) {
    // The abort-cap checks are vacuous if the abort path never fired; with
    // the harsh derived cases this indicates a generator regression.
    std::fprintf(stderr,
                 "warning: abort path never exercised across %d seeds\n",
                 report->seeds_run);
  }
  return report->violations == 0 ? 0 : 1;
}
