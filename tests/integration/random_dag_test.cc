// Property tests over randomly generated DAG plans: structural invariants
// of collapsed-plan construction, enumeration consistency, and
// model-vs-simulator sanity. These are the "does it hold for plans we did
// not hand-craft" guards.
#include <gtest/gtest.h>

#include <set>

#include "cluster/simulator.h"
#include "common/rng.h"
#include "ft/enumerator.h"

namespace xdbft {
namespace {

using ft::CollapsedPlan;
using ft::MaterializationConfig;
using plan::OpId;
using plan::OpType;
using plan::Plan;

// A random connected DAG plan: `n` operators, each non-source picks 1-2
// random earlier inputs; every non-sink's output is consumed.
Plan RandomDag(Rng& rng, int n) {
  Plan p("random-dag");
  std::vector<bool> consumed(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    plan::PlanNode node;
    node.label = "op" + std::to_string(i);
    node.runtime_cost = 0.5 + rng.NextDouble() * 20.0;
    node.materialize_cost = rng.NextDouble() * 8.0;
    node.output_rows = 1000.0 * (1 + rng.NextBounded(100));
    node.row_width_bytes = 64;
    if (i > 0) {
      const int fan = 1 + static_cast<int>(rng.NextBounded(2));
      std::set<OpId> inputs;
      // Always consume the previous op occasionally to keep things
      // connected; otherwise random earlier ops.
      for (int f = 0; f < fan; ++f) {
        inputs.insert(static_cast<OpId>(rng.NextBounded(
            static_cast<uint64_t>(i))));
      }
      node.inputs.assign(inputs.begin(), inputs.end());
      node.type = node.inputs.size() == 2 ? OpType::kHashJoin
                                          : OpType::kMapUdf;
      for (OpId in : node.inputs) consumed[static_cast<size_t>(in)] = true;
    } else {
      node.type = OpType::kTableScan;
    }
    p.AddNode(std::move(node));
  }
  return p;
}

MaterializationConfig RandomConfig(Rng& rng, const Plan& p) {
  const uint64_t free_count = ft::EnumerableOperators(p).size();
  const uint64_t mask =
      free_count == 0 ? 0 : rng.Next() & ((uint64_t{1} << free_count) - 1);
  return MaterializationConfig::FromFreeMask(p, mask);
}

class RandomDagProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagProperties, CollapseCoversEveryOperator) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    const Plan p = RandomDag(rng, 4 + static_cast<int>(rng.NextBounded(9)));
    ASSERT_TRUE(p.Validate().ok());
    const auto config = RandomConfig(rng, p);
    auto cp = CollapsedPlan::Create(p, config);
    ASSERT_TRUE(cp.ok()) << cp.status();
    // Every original operator appears in at least one collapsed operator.
    std::set<OpId> covered;
    for (const auto& c : cp->ops()) {
      covered.insert(c.members.begin(), c.members.end());
      // The anchor is always materialized and a member.
      EXPECT_TRUE(config.materialized(c.anchor));
      EXPECT_TRUE(std::count(c.members.begin(), c.members.end(), c.anchor));
      // The dominant path ends at the anchor and is within the members.
      ASSERT_FALSE(c.dominant_members.empty());
      EXPECT_EQ(c.dominant_members.back(), c.anchor);
      for (OpId d : c.dominant_members) {
        EXPECT_TRUE(std::count(c.members.begin(), c.members.end(), d));
      }
      // t(c) >= the anchor's own costs.
      EXPECT_GE(c.runtime_cost, p.node(c.anchor).runtime_cost - 1e-9);
    }
    EXPECT_EQ(covered.size(), p.num_nodes());
  }
}

TEST_P(RandomDagProperties, CollapsedOpCountEqualsMaterializedCount) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  for (int trial = 0; trial < 25; ++trial) {
    const Plan p = RandomDag(rng, 4 + static_cast<int>(rng.NextBounded(9)));
    const auto config = RandomConfig(rng, p);
    auto cp = CollapsedPlan::Create(p, config);
    ASSERT_TRUE(cp.ok());
    EXPECT_EQ(cp->num_ops(), config.NumMaterialized());
  }
}

TEST_P(RandomDagProperties, PathCountMatchesEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  for (int trial = 0; trial < 25; ++trial) {
    const Plan p = RandomDag(rng, 4 + static_cast<int>(rng.NextBounded(8)));
    const auto config = RandomConfig(rng, p);
    auto cp = CollapsedPlan::Create(p, config);
    ASSERT_TRUE(cp.ok());
    EXPECT_EQ(cp->CountPaths(), cp->AllPaths().size());
  }
}

TEST_P(RandomDagProperties, DominantCostBoundsEveryPath) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 3000);
  ft::FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(5, 120.0, 1.0);
  ft::FtCostModel model(ctx);
  for (int trial = 0; trial < 15; ++trial) {
    const Plan p = RandomDag(rng, 4 + static_cast<int>(rng.NextBounded(7)));
    const auto config = RandomConfig(rng, p);
    auto cp = CollapsedPlan::Create(p, config);
    ASSERT_TRUE(cp.ok());
    auto est = model.Estimate(*cp);
    ASSERT_TRUE(est.ok());
    for (const auto& path : cp->AllPaths()) {
      EXPECT_LE(model.PathCost(*cp, path), est->dominant_cost + 1e-9);
    }
    // The dominant path cost is also >= the failure-free makespan of the
    // collapsed path itself.
    EXPECT_GE(est->dominant_cost,
              cp->PathRuntimeNoFailure(est->dominant_path) - 1e-9);
  }
}

TEST_P(RandomDagProperties, SimulatorRuntimeAtLeastConfigMakespan) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 4000);
  const auto stats = cost::MakeCluster(3, 200.0, 1.0);
  cluster::ClusterSimulator sim(stats);
  for (int trial = 0; trial < 10; ++trial) {
    const Plan p = RandomDag(rng, 4 + static_cast<int>(rng.NextBounded(6)));
    const auto config = RandomConfig(rng, p);
    auto cp = CollapsedPlan::Create(p, config);
    ASSERT_TRUE(cp.ok());
    cluster::ClusterTrace trace =
        cluster::ClusterTrace::Generate(stats, rng.Next());
    auto r = sim.Run(p, config, ft::RecoveryMode::kFineGrained, trace);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->completed);
    EXPECT_GE(r->runtime, cp->MakespanNoFailure() - 1e-9);
  }
}

TEST_P(RandomDagProperties, FindBestIsMinOverExhaustiveEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 5000);
  ft::FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(4, 100.0, 1.0);
  ft::EnumerationOptions no_pruning;
  no_pruning.pruning.rule1 = no_pruning.pruning.rule2 = false;
  no_pruning.pruning.rule3 = false;
  no_pruning.pruning.memoize_dominant_paths = false;
  for (int trial = 0; trial < 10; ++trial) {
    const Plan p = RandomDag(rng, 4 + static_cast<int>(rng.NextBounded(5)));
    ft::FtPlanEnumerator enumerator(ctx, no_pruning);
    auto best = enumerator.FindBest(p);
    ASSERT_TRUE(best.ok());
    auto all = enumerator.EnumerateAll(p);
    ASSERT_TRUE(all.ok());
    double min_cost = 1e300;
    for (const auto& [config, cost] : *all) {
      min_cost = std::min(min_cost, cost);
    }
    EXPECT_NEAR(best->estimated_cost, min_cost, min_cost * 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperties,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace xdbft
