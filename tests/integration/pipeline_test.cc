// Integration tests spanning the full pipeline: TPC-H data generation →
// partition-parallel execution → cost calibration → plan serialization →
// cost-based fault-tolerant plan selection → failure-injected simulation.
#include <gtest/gtest.h>

#include "api/xdbft.h"
#include "engine/cost_calibrator.h"
#include "engine/query_runner.h"
#include "plan/plan_text.h"

namespace xdbft {
namespace {

TEST(PipelineTest, GenerateExecuteCalibrateChooseSimulate) {
  // 1. Generate and distribute.
  datagen::TpchGenOptions gen;
  gen.scale_factor = 0.01;
  gen.seed = 31337;
  auto db = datagen::GenerateTpch(gen);
  ASSERT_TRUE(db.ok()) << db.status();
  auto pd = engine::DistributeTpch(*db, 4);
  ASSERT_TRUE(pd.ok()) << pd.status();

  // 2. Execute Q5 for real.
  engine::QueryRunner runner(&*pd);
  auto execution = runner.RunQ5();
  ASSERT_TRUE(execution.ok()) << execution.status();
  ASSERT_EQ(execution->stages.size(), 6u);
  EXPECT_GT(execution->total_seconds, 0.0);
  EXPECT_GT(execution->result.num_rows(), 0u);

  // 3. Calibrate a plan from the measured statistics.
  auto calibrated = engine::BuildCalibratedPlan(
      *execution, cost::ExternalIscsiStorage(), "q5-measured");
  ASSERT_TRUE(calibrated.ok()) << calibrated.status();
  EXPECT_TRUE(calibrated->Validate().ok());

  // 4. Serialize and re-parse the calibrated plan (tooling path).
  auto reparsed = plan::PlanFromText(plan::PlanToText(*calibrated));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();

  // 5. Extrapolate to deployment scale and choose the FT plan.
  plan::Plan production =
      engine::ScaleCalibratedPlan(*reparsed, 100.0 / gen.scale_factor, 1.0);
  engine::RecostMaterialization(&production, cost::ExternalIscsiStorage());
  const auto stats = cost::MakeCluster(4, cost::kSecondsPerHour, 2.0);
  api::FaultToleranceAdvisor advisor(stats);
  auto chosen = advisor.ChooseBestPlan(production);
  ASSERT_TRUE(chosen.ok()) << chosen.status();
  EXPECT_TRUE(chosen->config.Validate(chosen->plan).ok());

  // 6. Validate in the simulator: the chosen plan completes and its mean
  // runtime is at least the baseline.
  cluster::ClusterSimulator simulator(stats);
  auto baseline = simulator.BaselineRuntime(production);
  ASSERT_TRUE(baseline.ok());
  auto traces = cluster::GenerateTraceSet(stats, 10, 1);
  auto simulated = simulator.RunMany(*chosen, traces);
  ASSERT_TRUE(simulated.ok());
  EXPECT_TRUE(simulated->completed);
  EXPECT_GE(simulated->runtime, *baseline * 0.999);
}

TEST(PipelineTest, CalibratedChoiceBeatsFixedSchemesUnderSimulation) {
  // The cost-based choice on the calibrated plan must simulate no worse
  // than ~15% above the best fixed scheme across failure regimes.
  datagen::TpchGenOptions gen;
  gen.scale_factor = 0.01;
  auto db = datagen::GenerateTpch(gen);
  auto pd = engine::DistributeTpch(*db, 4);
  engine::QueryRunner runner(&*pd);
  auto execution = runner.RunQ3();
  ASSERT_TRUE(execution.ok());
  auto calibrated = engine::BuildCalibratedPlan(
      *execution, cost::ExternalIscsiStorage(), "q3-measured");
  ASSERT_TRUE(calibrated.ok());
  plan::Plan production =
      engine::ScaleCalibratedPlan(*calibrated, 10000.0, 1.0);
  engine::RecostMaterialization(&production, cost::ExternalIscsiStorage());

  for (double mtbf : {cost::kSecondsPerHour, cost::kSecondsPerDay}) {
    const auto stats = cost::MakeCluster(4, mtbf, 2.0);
    auto result = cluster::RunSchemeComparison(production, stats, {},
                                               /*num_traces=*/10);
    ASSERT_TRUE(result.ok()) << result.status();
    double best_fixed = 1e300;
    for (const auto& s : result->schemes) {
      // The write-ahead-lineage row is excluded from the bound: under the
      // default model (wal_enabled == false) the cost-based search never
      // considers WAL, so it can't be held to a discipline it wasn't
      // allowed to pick.
      if (s.kind != ft::SchemeKind::kCostBased &&
          s.kind != ft::SchemeKind::kWriteAheadLineage && s.completed) {
        best_fixed = std::min(best_fixed, s.mean_runtime);
      }
    }
    const auto& cb = result->outcome(ft::SchemeKind::kCostBased);
    ASSERT_TRUE(cb.completed);
    EXPECT_LE(cb.mean_runtime, best_fixed * 1.15) << "mtbf=" << mtbf;
  }
}

TEST(PipelineTest, AllTpchPlansSerializeAndAdvise) {
  // Every built-in TPC-H plan survives serialization and produces a valid
  // advisor choice.
  for (tpch::TpchQuery q : tpch::AllQueries()) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = 100.0;
    auto plan = tpch::BuildQuery(q, cfg);
    ASSERT_TRUE(plan.ok()) << tpch::TpchQueryName(q);
    auto reparsed = plan::PlanFromText(plan::PlanToText(*plan));
    ASSERT_TRUE(reparsed.ok()) << tpch::TpchQueryName(q);
    api::FaultToleranceAdvisor advisor(
        cost::MakeCluster(10, cost::kSecondsPerHour, 1.0));
    auto chosen = advisor.ChooseBestPlan(*reparsed);
    ASSERT_TRUE(chosen.ok()) << tpch::TpchQueryName(q);
    EXPECT_GT(chosen->estimated_cost, 0.0) << tpch::TpchQueryName(q);
  }
}

TEST(PipelineTest, JoinOrderPipelineFeedsAdvisor) {
  // Optimizer top-k -> emitted plans -> advisor over candidates.
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  auto graph = tpch::MakeQ5JoinGraph(cfg);
  ASSERT_TRUE(graph.ok());
  optimizer::JoinTreeArena arena;
  auto roots = optimizer::EnumerateTopKJoinTrees(
      *graph, 4, tpch::MakePhysicalCostParams(cfg), &arena);
  ASSERT_TRUE(roots.ok());
  std::vector<plan::Plan> candidates;
  for (int root : *roots) {
    auto p = optimizer::EmitPlan(arena, root, *graph,
                                 tpch::MakePhysicalCostParams(cfg));
    ASSERT_TRUE(p.ok());
    candidates.push_back(std::move(*p));
  }
  api::FaultToleranceAdvisor advisor(
      cost::MakeCluster(10, cost::kSecondsPerHour, 1.0));
  auto chosen = advisor.ChooseBestPlan(candidates);
  ASSERT_TRUE(chosen.ok()) << chosen.status();
  EXPECT_TRUE(chosen->config.Validate(chosen->plan).ok());
}

}  // namespace
}  // namespace xdbft
