// Robustness fuzzing of the plan-text parser: random mutations of a valid
// serialization and random garbage must never crash, and every accepted
// input must produce a plan that validates.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "plan/plan_text.h"

namespace xdbft::plan {
namespace {

std::string ValidText() {
  PlanBuilder b("fuzz-base");
  const OpId s1 = b.Scan("R", 100, 8, 1.0);
  const OpId s2 = b.Scan("S", 200, 8, 2.0);
  const OpId j = b.Binary(OpType::kHashJoin, "join", s1, s2, 3.0, 1.0);
  b.Unary(OpType::kHashAggregate, "agg", j, 1.0, 0.1);
  return PlanToText(std::move(b).Build());
}

class PlanTextFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PlanTextFuzz, MutatedInputNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const std::string base = ValidText();
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(5));
    for (int m = 0; m < mutations; ++m) {
      if (text.empty()) break;
      const size_t pos = rng.NextBounded(text.size());
      switch (rng.NextBounded(4)) {
        case 0:  // flip a character
          text[pos] = static_cast<char>(32 + rng.NextBounded(95));
          break;
        case 1:  // delete a character
          text.erase(pos, 1);
          break;
        case 2:  // duplicate a chunk
          text.insert(pos, text.substr(pos, rng.NextBounded(10) + 1));
          break;
        case 3:  // insert a newline
          text.insert(pos, "\n");
          break;
      }
    }
    auto result = PlanFromText(text);  // must not crash
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

TEST_P(PlanTextFuzz, RandomGarbageNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const size_t len = rng.NextBounded(400);
    for (size_t i = 0; i < len; ++i) {
      // Bias toward format-relevant characters.
      static const char kAlphabet[] =
          "node plan\"=,.0123456789 \n\t-+eE";
      text.push_back(
          kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
    }
    auto result = PlanFromText(text);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanTextFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace xdbft::plan
