#include "plan/plan.h"

#include <gtest/gtest.h>

namespace xdbft::plan {
namespace {

// The running example of the paper's Figure 2/3: ops 1,2 -> 3 -> 4 -> 5,
// then 5 -> 6 and 5 -> 7 (we use 0-based ids 0..6).
Plan Fig3Plan() {
  PlanBuilder b("fig3");
  const OpId s1 = b.Scan("R", 1e6, 100, 1.0);
  const OpId s2 = b.Scan("S", 1e6, 100, 2.0);
  const OpId j3 = b.Binary(OpType::kHashJoin, "join", s1, s2, 1.5, 0.5);
  const OpId m4 = b.Unary(OpType::kMapUdf, "map", j3, 1.0, 1.0);
  const OpId r5 = b.Unary(OpType::kRepartition, "repart", m4, 1.5, 0.5);
  b.Unary(OpType::kReduceUdf, "reduce1", r5, 0.8, 0.2);
  b.Unary(OpType::kReduceUdf, "reduce2", r5, 1.6, 0.4);
  return std::move(b).Build();
}

TEST(PlanTest, BuilderAssignsSequentialIds) {
  Plan p = Fig3Plan();
  EXPECT_EQ(p.num_nodes(), 7u);
  for (size_t i = 0; i < p.num_nodes(); ++i) {
    EXPECT_EQ(p.node(static_cast<OpId>(i)).id, static_cast<OpId>(i));
  }
}

TEST(PlanTest, SourcesAndSinks) {
  Plan p = Fig3Plan();
  EXPECT_EQ(p.Sources(), (std::vector<OpId>{0, 1}));
  EXPECT_EQ(p.Sinks(), (std::vector<OpId>{5, 6}));
}

TEST(PlanTest, Consumers) {
  Plan p = Fig3Plan();
  EXPECT_EQ(p.Consumers(0), (std::vector<OpId>{2}));
  EXPECT_EQ(p.Consumers(4), (std::vector<OpId>{5, 6}));
  EXPECT_TRUE(p.Consumers(5).empty());
}

TEST(PlanTest, TopologicalOrderRespectsEdges) {
  Plan p = Fig3Plan();
  const auto order = p.TopologicalOrder();
  std::vector<size_t> pos(p.num_nodes());
  for (size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<size_t>(order[i])] = i;
  }
  for (const auto& n : p.nodes()) {
    for (OpId in : n.inputs) {
      EXPECT_LT(pos[static_cast<size_t>(in)],
                pos[static_cast<size_t>(n.id)]);
    }
  }
}

TEST(PlanTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(Fig3Plan().Validate().ok());
}

TEST(PlanTest, ValidateRejectsEmpty) {
  Plan p;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(PlanTest, ValidateRejectsForwardReference) {
  Plan p("bad");
  PlanNode n;
  n.label = "x";
  n.inputs = {5};  // references a node that does not exist yet
  p.AddNode(n);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(PlanTest, ValidateRejectsDuplicateInput) {
  PlanBuilder b("dup");
  const OpId s = b.Scan("R", 10, 8, 1.0);
  b.Nary(OpType::kUnion, "u", {s, s}, 1.0, 0.0);
  Plan p = std::move(b).Build();
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(PlanTest, ValidateRejectsNegativeCost) {
  PlanBuilder b("neg");
  const OpId s = b.Scan("R", 10, 8, 1.0);
  b.Unary(OpType::kFilter, "f", s, -1.0, 0.0);
  Plan p = std::move(b).Build();
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(PlanTest, ValidateRejectsMissingLabel) {
  Plan p("nolabel");
  PlanNode n;
  p.AddNode(n);
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(PlanTest, FreeOperatorsHonorsConstraints) {
  Plan p = Fig3Plan();
  EXPECT_EQ(p.FreeOperators().size(), 7u);
  p.mutable_node(2).constraint = MatConstraint::kAlwaysMaterialize;
  p.mutable_node(3).constraint = MatConstraint::kNeverMaterialize;
  EXPECT_EQ(p.FreeOperators().size(), 5u);
}

TEST(PlanTest, TotalCosts) {
  Plan p = Fig3Plan();
  EXPECT_DOUBLE_EQ(p.TotalRuntimeCost(), 1.0 + 2.0 + 1.5 + 1.0 + 1.5 + 0.8 + 1.6);
  EXPECT_DOUBLE_EQ(p.TotalMaterializeCost(), 0.5 + 1.0 + 0.5 + 0.2 + 0.4);
}

TEST(PlanTest, ExplainMentionsEveryOperator) {
  Plan p = Fig3Plan();
  const std::string s = p.Explain();
  EXPECT_NE(s.find("Scan(R)"), std::string::npos);
  EXPECT_NE(s.find("HashJoin"), std::string::npos);
  EXPECT_NE(s.find("reduce2"), std::string::npos);
}

TEST(PlanTest, OpTypeNamesAreDistinct) {
  EXPECT_STREQ(OpTypeName(OpType::kTableScan), "TableScan");
  EXPECT_STREQ(OpTypeName(OpType::kRepartition), "Repartition");
  EXPECT_STREQ(OpTypeName(OpType::kSink), "Sink");
}

}  // namespace
}  // namespace xdbft::plan
