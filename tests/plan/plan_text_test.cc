#include "plan/plan_text.h"

#include <gtest/gtest.h>

namespace xdbft::plan {
namespace {

Plan SamplePlan() {
  PlanBuilder b("sample query");
  const OpId s1 = b.Scan("R", 1234567.0, 100.5, 1.25);
  const OpId s2 = b.Scan("S", 1e9, 64, 2.0);
  b.Constrain(s1, MatConstraint::kNeverMaterialize);
  const OpId j = b.Binary(OpType::kHashJoin, "join(a=b)", s1, s2, 3.75,
                          0.5, 5e8, 120);
  const OpId a = b.Unary(OpType::kHashAggregate, "agg", j, 1.0, 0.1, 42, 8);
  b.Constrain(a, MatConstraint::kAlwaysMaterialize);
  b.Unary(OpType::kSort, "sort desc", a, 0.5, 0.05, 42, 8);
  return std::move(b).Build();
}

TEST(PlanTextTest, RoundTripPreservesEverything) {
  const Plan original = SamplePlan();
  const std::string text = PlanToText(original);
  auto parsed = PlanFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name(), original.name());
  ASSERT_EQ(parsed->num_nodes(), original.num_nodes());
  for (const auto& n : original.nodes()) {
    const auto& m = parsed->node(n.id);
    EXPECT_EQ(m.type, n.type) << n.id;
    EXPECT_EQ(m.label, n.label) << n.id;
    EXPECT_EQ(m.inputs, n.inputs) << n.id;
    EXPECT_DOUBLE_EQ(m.runtime_cost, n.runtime_cost) << n.id;
    EXPECT_DOUBLE_EQ(m.materialize_cost, n.materialize_cost) << n.id;
    EXPECT_DOUBLE_EQ(m.output_rows, n.output_rows) << n.id;
    EXPECT_DOUBLE_EQ(m.row_width_bytes, n.row_width_bytes) << n.id;
    EXPECT_EQ(m.constraint, n.constraint) << n.id;
  }
}

TEST(PlanTextTest, RoundTripIsStable) {
  const std::string t1 = PlanToText(SamplePlan());
  const std::string t2 = PlanToText(*PlanFromText(t1));
  EXPECT_EQ(t1, t2);
}

TEST(PlanTextTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a calibrated plan\n"
      "plan commented\n"
      "\n"
      "node 0 TableScan \"scan\" inputs= tr=1 tm=0 rows=10 width=8 "
      "constraint=never  # trailing comment\n";
  auto p = PlanFromText(text);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->num_nodes(), 1u);
  EXPECT_EQ(p->node(0).constraint, MatConstraint::kNeverMaterialize);
}

TEST(PlanTextTest, PreservesLossyDoubles) {
  PlanBuilder b("doubles");
  b.Scan("R", 1.0 / 3.0, 0.1, 1e-17);
  const Plan p = std::move(b).Build();
  auto parsed = PlanFromText(PlanToText(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->node(0).output_rows, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(parsed->node(0).runtime_cost, 1e-17);
}

TEST(PlanTextTest, RejectsMissingHeader) {
  EXPECT_FALSE(PlanFromText("node 0 TableScan \"x\" inputs= tr=1 tm=0 "
                            "rows=1 width=1 constraint=free\n")
                   .ok());
  EXPECT_FALSE(PlanFromText("").ok());
}

TEST(PlanTextTest, RejectsNonDenseIds) {
  const std::string text =
      "plan bad\n"
      "node 1 TableScan \"x\" inputs= tr=1 tm=0 rows=1 width=1 "
      "constraint=free\n";
  EXPECT_FALSE(PlanFromText(text).ok());
}

TEST(PlanTextTest, RejectsUnknownType) {
  const std::string text =
      "plan bad\n"
      "node 0 FooBar \"x\" inputs= tr=1 tm=0 rows=1 width=1 "
      "constraint=free\n";
  EXPECT_FALSE(PlanFromText(text).ok());
}

TEST(PlanTextTest, RejectsMalformedTokens) {
  EXPECT_FALSE(PlanFromText("plan p\nnode 0 TableScan \"x\" inputs= "
                            "tr=abc tm=0 rows=1 width=1 constraint=free\n")
                   .ok());
  EXPECT_FALSE(PlanFromText("plan p\nnode 0 TableScan \"x\" inputs= "
                            "tm=0 tr=1 rows=1 width=1 constraint=free\n")
                   .ok());
  EXPECT_FALSE(PlanFromText("plan p\nnode 0 TableScan x inputs= tr=1 "
                            "tm=0 rows=1 width=1 constraint=free\n")
                   .ok());
  EXPECT_FALSE(PlanFromText("plan p\nnode 0 TableScan \"x\" inputs= tr=1 "
                            "tm=0 rows=1 width=1 constraint=maybe\n")
                   .ok());
}

TEST(PlanTextTest, RejectsForwardInputReference) {
  const std::string text =
      "plan bad\n"
      "node 0 TableScan \"x\" inputs=1 tr=1 tm=0 rows=1 width=1 "
      "constraint=free\n"
      "node 1 Filter \"f\" inputs=0 tr=1 tm=0 rows=1 width=1 "
      "constraint=free\n";
  EXPECT_FALSE(PlanFromText(text).ok());
}

TEST(OpTypeFromStringTest, AllNamesRoundTrip) {
  for (OpType t : {OpType::kTableScan, OpType::kFilter, OpType::kProject,
                   OpType::kHashJoin, OpType::kHashAggregate, OpType::kSort,
                   OpType::kLimit, OpType::kRepartition, OpType::kMapUdf,
                   OpType::kReduceUdf, OpType::kUnion, OpType::kSink}) {
    auto parsed = OpTypeFromString(OpTypeName(t));
    ASSERT_TRUE(parsed.ok()) << OpTypeName(t);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(PlanTextTest, TpchQ5RoundTrips) {
  // A realistic plan with many operators survives the round trip and
  // validates.
  PlanBuilder b("q5-like");
  std::vector<OpId> scans;
  for (int i = 0; i < 6; ++i) {
    scans.push_back(b.Scan("T" + std::to_string(i), 1e6 * (i + 1), 100,
                           1.0 * (i + 1)));
    b.Constrain(scans.back(), MatConstraint::kNeverMaterialize);
  }
  OpId prev = scans[0];
  for (int i = 1; i < 6; ++i) {
    prev = b.Binary(OpType::kHashJoin, "j" + std::to_string(i), prev,
                    scans[static_cast<size_t>(i)], 2.0, 1.0, 1e5, 200);
  }
  b.Unary(OpType::kHashAggregate, "agg", prev, 1.0, 0.1, 5, 112);
  const Plan p = std::move(b).Build();
  auto parsed = PlanFromText(PlanToText(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Validate().ok());
  EXPECT_EQ(parsed->num_nodes(), 12u);
}

}  // namespace
}  // namespace xdbft::plan
