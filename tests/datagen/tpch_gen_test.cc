#include "datagen/tpch_gen.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

namespace xdbft::datagen {
namespace {

using catalog::TpchTable;

TpchDatabase SmallDb() {
  TpchGenOptions opts;
  opts.scale_factor = 0.01;
  opts.seed = 7;
  return *GenerateTpch(opts);
}

TEST(TpchGenTest, CardinalitiesFollowScalingRules) {
  TpchDatabase db = SmallDb();
  EXPECT_EQ(db.region.num_rows(), 5u);
  EXPECT_EQ(db.nation.num_rows(), 25u);
  EXPECT_EQ(db.supplier.num_rows(), 100u);
  EXPECT_EQ(db.customer.num_rows(), 1500u);
  EXPECT_EQ(db.part.num_rows(), 2000u);
  EXPECT_EQ(db.partsupp.num_rows(), 8000u);
  EXPECT_EQ(db.orders.num_rows(), 15000u);
  // 1-7 lineitems per order, expected ~4x.
  EXPECT_GT(db.lineitem.num_rows(), 3u * db.orders.num_rows());
  EXPECT_LT(db.lineitem.num_rows(), 5u * db.orders.num_rows());
}

TEST(TpchGenTest, DeterministicForSeed) {
  TpchGenOptions opts;
  opts.scale_factor = 0.005;
  opts.seed = 99;
  auto a = GenerateTpch(opts);
  auto b = GenerateTpch(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->lineitem.num_rows(), b->lineitem.num_rows());
  for (size_t i = 0; i < a->lineitem.num_rows(); i += 97) {
    EXPECT_TRUE(exec::RowEq{}(a->lineitem.rows[i], b->lineitem.rows[i]));
  }
}

TEST(TpchGenTest, DifferentSeedsDiffer) {
  TpchGenOptions a, b;
  a.scale_factor = b.scale_factor = 0.002;
  a.seed = 1;
  b.seed = 2;
  auto da = GenerateTpch(a);
  auto db = GenerateTpch(b);
  // Same schema-level cardinality for ORDERS, different content.
  EXPECT_EQ(da->orders.num_rows(), db->orders.num_rows());
  EXPECT_FALSE(exec::RowEq{}(da->orders.rows[0], db->orders.rows[0]));
}

TEST(TpchGenTest, ReferentialIntegrityNationRegion) {
  TpchDatabase db = SmallDb();
  for (const auto& row : db.nation.rows) {
    const int64_t rk = row[2].AsInt64();
    EXPECT_GE(rk, 0);
    EXPECT_LT(rk, 5);
  }
}

TEST(TpchGenTest, ReferentialIntegrityOrdersCustomer) {
  TpchDatabase db = SmallDb();
  const int64_t max_cust = static_cast<int64_t>(db.customer.num_rows());
  for (const auto& row : db.orders.rows) {
    const int64_t ck = row[1].AsInt64();
    EXPECT_GE(ck, 1);
    EXPECT_LE(ck, max_cust);
  }
}

TEST(TpchGenTest, ReferentialIntegrityLineitem) {
  TpchDatabase db = SmallDb();
  const int64_t max_order = static_cast<int64_t>(db.orders.num_rows());
  const int64_t max_part = static_cast<int64_t>(db.part.num_rows());
  const int64_t max_supp = static_cast<int64_t>(db.supplier.num_rows());
  std::set<std::pair<int64_t, int64_t>> partsupp_pairs;
  for (const auto& row : db.partsupp.rows) {
    partsupp_pairs.insert({row[0].AsInt64(), row[1].AsInt64()});
  }
  for (const auto& row : db.lineitem.rows) {
    EXPECT_GE(row[0].AsInt64(), 1);
    EXPECT_LE(row[0].AsInt64(), max_order);
    EXPECT_GE(row[2].AsInt64(), 1);
    EXPECT_LE(row[2].AsInt64(), max_part);
    EXPECT_GE(row[3].AsInt64(), 1);
    EXPECT_LE(row[3].AsInt64(), max_supp);
    // The (part, supplier) pair must exist in PARTSUPP.
    EXPECT_TRUE(partsupp_pairs.count(
        {row[2].AsInt64(), row[3].AsInt64()}))
        << "lineitem references missing partsupp pair";
  }
}

TEST(TpchGenTest, PartSuppHasFourSuppliersPerPart) {
  TpchDatabase db = SmallDb();
  std::map<int64_t, std::set<int64_t>> suppliers_of;
  for (const auto& row : db.partsupp.rows) {
    suppliers_of[row[0].AsInt64()].insert(row[1].AsInt64());
  }
  EXPECT_EQ(suppliers_of.size(), db.part.num_rows());
  for (const auto& [part, supps] : suppliers_of) {
    EXPECT_GE(supps.size(), 3u) << part;  // collisions may merge one pair
    EXPECT_LE(supps.size(), 4u) << part;
  }
}

TEST(TpchGenTest, DatesWithinWindow) {
  TpchDatabase db = SmallDb();
  for (const auto& row : db.orders.rows) {
    EXPECT_GE(row[2].AsInt64(), 0);
    EXPECT_LT(row[2].AsInt64(), kDateRangeDays);
  }
  for (const auto& row : db.lineitem.rows) {
    EXPECT_GE(row[10].AsInt64(), 0);
    EXPECT_LT(row[10].AsInt64(), kDateRangeDays);
  }
}

TEST(TpchGenTest, ShipdateAfterOrderDate) {
  TpchDatabase db = SmallDb();
  std::map<int64_t, int64_t> order_date;
  for (const auto& row : db.orders.rows) {
    order_date[row[0].AsInt64()] = row[2].AsInt64();
  }
  for (const auto& row : db.lineitem.rows) {
    EXPECT_GE(row[10].AsInt64(), order_date[row[0].AsInt64()]);
  }
}

TEST(TpchGenTest, KeysAreUnique) {
  TpchDatabase db = SmallDb();
  std::set<int64_t> keys;
  for (const auto& row : db.orders.rows) {
    EXPECT_TRUE(keys.insert(row[0].AsInt64()).second);
  }
}

TEST(TpchGenTest, SchemasMatchRows) {
  TpchDatabase db = SmallDb();
  EXPECT_EQ(db.lineitem.schema.num_columns(),
            db.lineitem.rows[0].size());
  EXPECT_EQ(db.customer.schema.num_columns(),
            db.customer.rows[0].size());
  EXPECT_EQ(db.lineitem.schema.column(10).name, "l_shipdate");
}

TEST(TpchGenTest, TableAccessorByEnum) {
  TpchDatabase db = SmallDb();
  EXPECT_EQ(&db.table(TpchTable::kLineitem), &db.lineitem);
  EXPECT_EQ(&db.table(TpchTable::kRegion), &db.region);
}

TEST(TpchGenTest, RejectsBadScaleFactor) {
  TpchGenOptions opts;
  opts.scale_factor = 0.0;
  EXPECT_FALSE(GenerateTpch(opts).ok());
}

}  // namespace
}  // namespace xdbft::datagen
