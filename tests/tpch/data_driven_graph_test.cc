// Tests of the statistics-driven Q5 join graph: cardinalities estimated
// from real analyzed data must track the analytic catalog formulas and
// keep the chain's 1344 join orders.
#include <gtest/gtest.h>

#include "tpch/q5_join_graph.h"

namespace xdbft::tpch {
namespace {

TEST(DataDrivenGraphTest, MatchesAnalyticGraphCardinalities) {
  const double sf = 0.01;
  datagen::TpchGenOptions gen;
  gen.scale_factor = sf;
  auto db = datagen::GenerateTpch(gen);
  ASSERT_TRUE(db.ok());
  TpchPlanConfig cfg;
  cfg.scale_factor = sf;
  auto data_graph = MakeQ5JoinGraphFromData(*db, cfg);
  ASSERT_TRUE(data_graph.ok()) << data_graph.status();
  auto analytic_graph = MakeQ5JoinGraph(cfg);
  ASSERT_TRUE(analytic_graph.ok());

  // Relation cardinalities within 2x of the analytic model (the data
  // generator matches TPC-H scaling; selectivity estimates add noise).
  for (int i = 0; i < data_graph->num_relations(); ++i) {
    const double d = data_graph->relation(i).rows;
    const double a = analytic_graph->relation(i).rows;
    EXPECT_GT(d, a / 2.0) << data_graph->relation(i).name;
    EXPECT_LT(d, a * 2.0) << data_graph->relation(i).name;
  }
  // Full-set (final join) cardinality within 2.5x.
  const double d_final = data_graph->Cardinality(data_graph->AllRels());
  const double a_final =
      analytic_graph->Cardinality(analytic_graph->AllRels());
  EXPECT_GT(d_final, a_final / 2.5);
  EXPECT_LT(d_final, a_final * 2.5);
}

TEST(DataDrivenGraphTest, Keeps1344JoinOrders) {
  datagen::TpchGenOptions gen;
  gen.scale_factor = 0.005;
  auto db = datagen::GenerateTpch(gen);
  TpchPlanConfig cfg;
  auto g = MakeQ5JoinGraphFromData(*db, cfg);
  ASSERT_TRUE(g.ok());
  optimizer::JoinTreeArena arena;
  auto trees = optimizer::EnumerateAllJoinTrees(*g, &arena);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), 1344u);
}

TEST(DataDrivenGraphTest, FeedsTopKAndAdvisor) {
  datagen::TpchGenOptions gen;
  gen.scale_factor = 0.005;
  auto db = datagen::GenerateTpch(gen);
  TpchPlanConfig cfg;
  auto g = MakeQ5JoinGraphFromData(*db, cfg);
  ASSERT_TRUE(g.ok());
  optimizer::JoinTreeArena arena;
  auto roots = optimizer::EnumerateTopKJoinTrees(
      *g, 3, MakePhysicalCostParams(cfg), &arena);
  ASSERT_TRUE(roots.ok());
  EXPECT_GE(roots->size(), 1u);
  auto plan = optimizer::EmitPlan(arena, (*roots)[0], *g,
                                  MakePhysicalCostParams(cfg));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate().ok());
}

}  // namespace
}  // namespace xdbft::tpch
