#include "tpch/queries.h"

#include <gtest/gtest.h>

#include "ft/collapsed_plan.h"
#include "ft/mat_config.h"

namespace xdbft::tpch {
namespace {

TpchPlanConfig Sf100Config() {
  TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  return cfg;
}

double Baseline(const plan::Plan& p) {
  auto cp = ft::CollapsedPlan::Create(p, ft::MaterializationConfig::NoMat(p));
  return cp->MakespanNoFailure();
}

double TotalRuntime(const plan::Plan& p) { return p.TotalRuntimeCost(); }

double FreeMatCost(const plan::Plan& p) {
  double mat = 0.0;
  for (const auto& n : p.nodes()) {
    if (n.is_free()) mat += n.materialize_cost;
  }
  return mat;
}

TEST(TpchQueriesTest, AllQueriesBuildAndValidate) {
  for (TpchQuery q : AllQueries()) {
    auto p = BuildQuery(q, Sf100Config());
    ASSERT_TRUE(p.ok()) << TpchQueryName(q) << ": " << p.status();
    EXPECT_TRUE(p->Validate().ok()) << TpchQueryName(q);
    EXPECT_GT(Baseline(*p), 0.0) << TpchQueryName(q);
  }
}

TEST(TpchQueriesTest, Q1HasNoFreeOperator) {
  // Paper §5.2: "Q1 is an exception since it has no free operator that can
  // be selected for materialization."
  auto p = BuildQuery(TpchQuery::kQ1, Sf100Config());
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(ft::EnumerableOperators(*p).empty());
}

TEST(TpchQueriesTest, Q5HasFiveFreeJoins) {
  // Paper Fig. 9: the 5 join operators are free -> 2^5 = 32 configs.
  auto p = BuildQuery(TpchQuery::kQ5, Sf100Config());
  ASSERT_TRUE(p.ok());
  const auto free_ops = ft::EnumerableOperators(*p);
  ASSERT_EQ(free_ops.size(), 5u);
  for (plan::OpId id : free_ops) {
    EXPECT_EQ(p->node(id).type, plan::OpType::kHashJoin);
  }
}

TEST(TpchQueriesTest, Q3IsThreeWayJoin) {
  auto p = BuildQuery(TpchQuery::kQ3, Sf100Config());
  ASSERT_TRUE(p.ok());
  int joins = 0;
  for (const auto& n : p->nodes()) {
    if (n.type == plan::OpType::kHashJoin) ++joins;
  }
  EXPECT_EQ(joins, 2);  // 3 relations -> 2 join operators
}

TEST(TpchQueriesTest, Q2CIsDagStructured) {
  // Q2C's CTE feeds two outer queries: some operator has two consumers and
  // the plan has two sinks.
  auto p = BuildQuery(TpchQuery::kQ2C, Sf100Config());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Sinks().size(), 2u);
  bool has_shared_op = false;
  for (const auto& n : p->nodes()) {
    if (p->Consumers(n.id).size() >= 2) has_shared_op = true;
  }
  EXPECT_TRUE(has_shared_op);
}

TEST(TpchQueriesTest, Q1CAggregationInMiddleIsCheapToMaterialize) {
  // The inner aggregation must be the cheapest free materialization point
  // by a wide margin (the paper's natural checkpoint).
  auto p = BuildQuery(TpchQuery::kQ1C, Sf100Config());
  ASSERT_TRUE(p.ok());
  double min_mat = 1e100, max_mat = 0.0;
  for (plan::OpId id : ft::EnumerableOperators(*p)) {
    min_mat = std::min(min_mat, p->node(id).materialize_cost);
    max_mat = std::max(max_mat, p->node(id).materialize_cost);
  }
  EXPECT_LT(min_mat * 100.0, max_mat);
}

TEST(TpchQueriesTest, Q5Sf100BaselineNearPaper) {
  // Paper §5.3: Q5 over SF=100 ran 905.33s without failures; our
  // calibration lands within 5%.
  auto p = BuildQuery(TpchQuery::kQ5, Sf100Config());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(Baseline(*p), 905.33, 905.33 * 0.05);
}

TEST(TpchQueriesTest, Q5MaterializationShareNearPaper) {
  // Paper §5.3: total materialization costs of Q5's operators are ~34% of
  // the total runtime costs.
  auto p = BuildQuery(TpchQuery::kQ5, Sf100Config());
  ASSERT_TRUE(p.ok());
  const double ratio = FreeMatCost(*p) / TotalRuntime(*p);
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 0.45);
}

TEST(TpchQueriesTest, Q3MaterializationShareModerate) {
  // Paper §5.2 (high MTBF): Q3/Q5 have moderate materialization costs
  // (~20-30% of runtime).
  auto p = BuildQuery(TpchQuery::kQ3, Sf100Config());
  ASSERT_TRUE(p.ok());
  const double ratio = FreeMatCost(*p) / TotalRuntime(*p);
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.35);
}

TEST(TpchQueriesTest, ComplexQueriesHaveHighMaterializationShare) {
  // Paper §5.2: Q1C and Q2C have materialization costs of ~60-100% of the
  // runtime costs under all-mat.
  for (TpchQuery q : {TpchQuery::kQ1C, TpchQuery::kQ2C}) {
    auto p = BuildQuery(q, Sf100Config());
    ASSERT_TRUE(p.ok());
    const double ratio = FreeMatCost(*p) / TotalRuntime(*p);
    EXPECT_GT(ratio, 0.5) << TpchQueryName(q);
    EXPECT_LT(ratio, 1.2) << TpchQueryName(q);
  }
}

TEST(TpchQueriesTest, RuntimeScalesWithScaleFactor) {
  TpchPlanConfig small = Sf100Config();
  small.scale_factor = 1.0;
  for (TpchQuery q : AllQueries()) {
    auto p1 = BuildQuery(q, small);
    auto p100 = BuildQuery(q, Sf100Config());
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p100.ok());
    EXPECT_GT(Baseline(*p100), 20.0 * Baseline(*p1)) << TpchQueryName(q);
  }
}

TEST(TpchQueriesTest, RuntimeShrinksWithMoreNodes) {
  TpchPlanConfig wide = Sf100Config();
  wide.num_nodes = 100;
  auto p10 = BuildQuery(TpchQuery::kQ5, Sf100Config());
  auto p100 = BuildQuery(TpchQuery::kQ5, wide);
  ASSERT_TRUE(p10.ok());
  ASSERT_TRUE(p100.ok());
  EXPECT_LT(Baseline(*p100), Baseline(*p10) / 5.0);
}

TEST(TpchQueriesTest, ScaleFactorForQ5RuntimeInverts) {
  TpchPlanConfig cfg;
  auto sf = ScaleFactorForQ5Runtime(925.0, cfg);
  ASSERT_TRUE(sf.ok()) << sf.status();
  EXPECT_NEAR(*sf, 100.0, 10.0);

  cfg.scale_factor = *sf;
  auto p = BuildQuery(TpchQuery::kQ5, cfg);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(Baseline(*p), 925.0, 2.0);
}

TEST(TpchQueriesTest, ScaleFactorForQ5RuntimeRejectsBadTarget) {
  EXPECT_FALSE(ScaleFactorForQ5Runtime(-1.0, TpchPlanConfig{}).ok());
}

TEST(TpchQueriesTest, ConfigValidation) {
  TpchPlanConfig cfg;
  cfg.scale_factor = 0.0;
  EXPECT_FALSE(BuildQuery(TpchQuery::kQ1, cfg).ok());
  cfg = TpchPlanConfig{};
  cfg.num_nodes = 0;
  EXPECT_FALSE(BuildQuery(TpchQuery::kQ1, cfg).ok());
  cfg = TpchPlanConfig{};
  cfg.q5_order_selectivity = 2.0;
  EXPECT_FALSE(BuildQuery(TpchQuery::kQ5, cfg).ok());
}

TEST(TpchQueriesTest, QueryNames) {
  EXPECT_STREQ(TpchQueryName(TpchQuery::kQ1), "Q1");
  EXPECT_STREQ(TpchQueryName(TpchQuery::kQ2C), "Q2C");
  EXPECT_EQ(AllQueries().size(), 5u);
}

}  // namespace
}  // namespace xdbft::tpch
