#include "cluster/experiment.h"

#include <gtest/gtest.h>

#include "tpch/queries.h"

namespace xdbft::cluster {
namespace {

using ft::SchemeKind;

plan::Plan SmallQ5() {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  auto p = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  return *p;
}

TEST(ExperimentTest, RunsAllFiveSchemes) {
  auto result = RunSchemeComparison(SmallQ5(), cost::MakeCluster(10, 3600.0),
                                    {}, /*num_traces=*/3);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->schemes.size(), 5u);
  EXPECT_GT(result->baseline_runtime, 0.0);
  for (const auto& s : result->schemes) {
    if (s.completed) {
      EXPECT_GE(s.mean_runtime, result->baseline_runtime * 0.99)
          << SchemeKindName(s.kind);
    }
  }
}

TEST(ExperimentTest, OutcomeLookupByKind) {
  auto result = RunSchemeComparison(SmallQ5(), cost::MakeCluster(10, 3600.0),
                                    {}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome(SchemeKind::kAllMat).kind, SchemeKind::kAllMat);
  EXPECT_EQ(result->outcome(SchemeKind::kCostBased).kind,
            SchemeKind::kCostBased);
}

TEST(ExperimentTest, SchemesUseExpectedConfigs) {
  auto result = RunSchemeComparison(SmallQ5(), cost::MakeCluster(10, 3600.0),
                                    {}, 2);
  ASSERT_TRUE(result.ok());
  // Q5: 5 free joins + 1 sink.
  EXPECT_EQ(result->outcome(SchemeKind::kAllMat).num_materialized, 6u);
  EXPECT_EQ(result->outcome(SchemeKind::kNoMatLineage).num_materialized, 1u);
  EXPECT_EQ(result->outcome(SchemeKind::kNoMatRestart).num_materialized, 1u);
  const auto cb = result->outcome(SchemeKind::kCostBased).num_materialized;
  EXPECT_GE(cb, 1u);
  EXPECT_LE(cb, 6u);
}

TEST(ExperimentTest, NoFailuresMakesNoMatOptimal) {
  // With an (effectively) infinite MTBF, materializing costs overhead and
  // recovers nothing: no-mat has ~0% overhead, all-mat > 0%.
  auto result = RunSchemeComparison(SmallQ5(), cost::MakeCluster(10, 1e15),
                                    {}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->outcome(SchemeKind::kNoMatLineage).overhead_percent,
              0.0, 0.5);
  EXPECT_GT(result->outcome(SchemeKind::kAllMat).overhead_percent, 5.0);
  // The cost-based scheme detects the failure-free regime and stays at ~0%.
  EXPECT_NEAR(result->outcome(SchemeKind::kCostBased).overhead_percent, 0.0,
              0.5);
}

TEST(ExperimentTest, CostBasedCompetitiveUnderFailures) {
  // Across a range of MTBFs, cost-based must be at most ~10% above the
  // best completed scheme (it is the best or close to it; §5.2).
  for (double mtbf : {1800.0, 3600.0 * 24}) {
    auto result = RunSchemeComparison(SmallQ5(),
                                      cost::MakeCluster(10, mtbf), {},
                                      /*num_traces=*/5);
    ASSERT_TRUE(result.ok());
    double best = 1e300;
    for (const auto& s : result->schemes) {
      if (s.completed && s.kind != SchemeKind::kCostBased) {
        best = std::min(best, s.mean_runtime);
      }
    }
    const auto& cb = result->outcome(SchemeKind::kCostBased);
    ASSERT_TRUE(cb.completed);
    EXPECT_LE(cb.mean_runtime, best * 1.10) << "mtbf=" << mtbf;
  }
}

TEST(ExperimentTest, DeterministicForSeed) {
  auto r1 = RunSchemeComparison(SmallQ5(), cost::MakeCluster(10, 1800.0),
                                {}, 3, /*seed=*/7);
  auto r2 = RunSchemeComparison(SmallQ5(), cost::MakeCluster(10, 1800.0),
                                {}, 3, /*seed=*/7);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t i = 0; i < r1->schemes.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1->schemes[i].mean_runtime,
                     r2->schemes[i].mean_runtime);
  }
}

TEST(ExperimentTest, RejectsInvalidInputs) {
  EXPECT_FALSE(
      RunSchemeComparison(plan::Plan{}, cost::MakeCluster(10, 3600.0)).ok());
  cost::ClusterStats bad = cost::MakeCluster(0, 3600.0);
  EXPECT_FALSE(RunSchemeComparison(SmallQ5(), bad).ok());
}

}  // namespace
}  // namespace xdbft::cluster
