// Regression tests for simulator accounting bugs:
//  1. RunMany over a trace set where *every* run aborted reported
//     runtime 0.0 — an impossible workload looked like an instant
//     success. It now reports the time the aborted runs burned.
//  2. RunFullRestart ignored options_.monitoring_interval: fine-grained
//     recovery paid the failure-detection delay (RunPartition ceils the
//     failure time to the next monitoring tick before MTTR) while the
//     full-restart baseline restarted instantly, biasing every
//     fine-vs-full comparison against fine-grained recovery.
//  3. RunFineGrained ignored options_.max_restarts: a retry unit could
//     spin forever while RunFullRestart aborted after max_restarts, so
//     the two recovery schemes were compared under different abort
//     semantics. Fine-grained now aborts when any single retry unit
//     (collapsed op x node, or checkpoint segment) hits the cap.
//  4. RunMany with a mixed trace set (some completed, some aborted)
//     dropped the aborted runs' burned time entirely; aborted_seconds is
//     now the mean over aborted traces and runtime stays completed-basis.
#include "cluster/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ft/scheme.h"

namespace xdbft::cluster {
namespace {

using ft::MaterializationConfig;
using ft::RecoveryMode;
using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan ChainPlan(double op_seconds = 10.0, double mat_seconds = 1.0,
               int length = 4) {
  PlanBuilder b("chain");
  OpId prev = b.Scan("R", 1e6, 64, op_seconds);
  b.plan().mutable_node(prev).materialize_cost = mat_seconds;
  for (int i = 1; i < length; ++i) {
    prev = b.Unary(OpType::kFilter, "op" + std::to_string(i), prev,
                   op_seconds, mat_seconds);
  }
  return std::move(b).Build();
}

TEST(SimulatorRegressionTest, AbortedRunReportsTimeSpent) {
  // A 4001s query on a cluster failing every ~60s never finishes; the
  // aborted result must carry the burned time, not pretend to be free.
  Plan p = ChainPlan(1000.0, 1.0, 4);
  cost::ClusterStats stats = cost::MakeCluster(10, 600.0, 1.0);
  SimulationOptions opts;
  opts.max_restarts = 5;
  ClusterSimulator sim(stats, opts);
  ClusterTrace trace = ClusterTrace::Generate(stats, 3);
  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFullRestart, trace);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->completed);
  EXPECT_EQ(r->restarts, 5);
  EXPECT_EQ(r->aborted, 1);
  EXPECT_GT(r->runtime, 0.0);
  EXPECT_DOUBLE_EQ(r->aborted_seconds, r->runtime);
  EXPECT_NE(r->ToString().find("aborted=1"), std::string::npos);
}

TEST(SimulatorRegressionTest, AllAbortedRunManyReportsNonZeroRuntime) {
  Plan p = ChainPlan(1000.0, 1.0, 4);
  cost::ClusterStats stats = cost::MakeCluster(10, 600.0, 1.0);
  SimulationOptions opts;
  opts.max_restarts = 5;
  ClusterSimulator sim(stats, opts);
  ft::SchemePlan sp;
  sp.plan = p;
  sp.config = MaterializationConfig::NoMat(p);
  sp.recovery = RecoveryMode::kFullRestart;
  auto traces = GenerateTraceSet(stats, 8, 17);
  auto r = sim.RunMany(sp, traces);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_FALSE(r->completed);  // the scenario: every trace aborts
  EXPECT_EQ(r->aborted, 8);
  // The old behavior averaged zero completed runtimes to 0.0.
  EXPECT_GT(r->runtime, 0.0);
  EXPECT_GT(r->runtime_p50, 0.0);
  EXPECT_GT(r->runtime_p95, 0.0);
  EXPECT_LE(r->runtime_p50, r->runtime_p95);
  // aborted_seconds is the mean time burned per aborted run; with every
  // trace aborted it coincides with the fallback runtime basis.
  EXPECT_NEAR(r->runtime, r->aborted_seconds, 1e-9 * r->aborted_seconds);
}

TEST(SimulatorRegressionTest, MixedAbortsStillAverageCompletedRuns) {
  // With some traces completing, runtime keeps its meaning (mean over the
  // completed runs) and the aborted ones are surfaced separately.
  Plan p = ChainPlan(100.0, 1.0, 4);  // 401s query
  cost::ClusterStats stats = cost::MakeCluster(4, 900.0, 1.0);
  SimulationOptions opts;
  opts.max_restarts = 3;
  ClusterSimulator sim(stats, opts);
  ft::SchemePlan sp;
  sp.plan = p;
  sp.config = MaterializationConfig::NoMat(p);
  sp.recovery = RecoveryMode::kFullRestart;
  auto traces = GenerateTraceSet(stats, 30, 11);
  auto r = sim.RunMany(sp, traces);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->aborted, 0);           // some abort...
  ASSERT_LT(r->aborted, 30);          // ...but not all
  EXPECT_FALSE(r->completed);
  EXPECT_GE(r->runtime, 401.0);       // mean of completed runs only
  EXPECT_GT(r->aborted_seconds, 0.0);

  // Differential check of the aggregation contract: fold the per-trace
  // results by hand and require exact agreement — the bug this guards
  // against made aborted runs' burned time vanish from the aggregate.
  auto traces2 = GenerateTraceSet(stats, 30, 11);
  std::vector<double> completed_runtimes;
  double aborted_sum = 0.0;
  int aborted_count = 0;
  for (auto& t : traces2) {
    auto one = sim.Run(sp, t);
    ASSERT_TRUE(one.ok());
    if (one->completed) {
      completed_runtimes.push_back(one->runtime);
    } else {
      aborted_sum += one->runtime;
      ++aborted_count;
    }
  }
  ASSERT_EQ(aborted_count, r->aborted);
  double mean = 0.0;
  for (double x : completed_runtimes) mean += x;
  mean /= static_cast<double>(completed_runtimes.size());
  EXPECT_NEAR(r->runtime, mean, 1e-9 * mean);
  EXPECT_NEAR(r->aborted_seconds,
              aborted_sum / static_cast<double>(aborted_count),
              1e-9 * aborted_sum);
}

TEST(SimulatorRegressionTest, FineGrainedRespectsMaxRestarts) {
  // A 1000s retry unit on nodes failing every ~100s essentially never
  // completes (P ~ e^-10 per attempt). Before the fix fine-grained
  // recovery retried unboundedly; now it aborts once a single unit has
  // burned max_restarts attempts, like full restart and the executor.
  Plan p = ChainPlan(1000.0, 1.0, 2);
  cost::ClusterStats stats = cost::MakeCluster(3, 100.0, 1.0);
  SimulationOptions opts;
  opts.max_restarts = 10;
  ClusterSimulator sim(stats, opts);
  ClusterTrace trace = ClusterTrace::Generate(stats, 7);
  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFineGrained, trace);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->completed);
  EXPECT_EQ(r->aborted, 1);
  EXPECT_EQ(r->restarts, 10);  // the first unit hit the cap
  EXPECT_GT(r->runtime, 0.0);
  EXPECT_DOUBLE_EQ(r->aborted_seconds, r->runtime);
}

TEST(SimulatorRegressionTest, FineGrainedCapIsPerRetryUnit) {
  // The cap binds per retry unit, not across the whole query: with ops
  // short relative to MTBF, total restarts may exceed max_restarts while
  // every individual unit stays under it and the query completes.
  Plan p = ChainPlan(40.0, 1.0, 6);
  cost::ClusterStats stats = cost::MakeCluster(4, 120.0, 1.0);
  SimulationOptions opts;
  opts.max_restarts = 12;
  ClusterSimulator sim(stats, opts);
  int total_restarts = 0;
  int completed = 0;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    ClusterTrace trace = ClusterTrace::Generate(stats, seed);
    auto r = sim.Run(p, MaterializationConfig::AllMat(p),
                     RecoveryMode::kFineGrained, trace);
    ASSERT_TRUE(r.ok());
    if (r->completed) {
      ++completed;
      total_restarts += r->restarts;
    }
  }
  EXPECT_GT(completed, 0);
  EXPECT_GT(total_restarts, opts.max_restarts);  // cap is per unit
}

// Reference replay of full-restart semantics: a failure at time f is
// detected at the next monitoring tick (ceil to the interval), then MTTR
// passes before the query restarts from scratch.
double ReplayFullRestart(ClusterTrace& trace, double makespan,
                         double interval, double mttr) {
  double start = 0.0;
  while (true) {
    const double fail = trace.NextFailureAfter(start);
    if (fail >= start + makespan) return start + makespan;
    double detected = fail;
    if (interval > 0.0) {
      detected = std::ceil(fail / interval) * interval;
    }
    start = detected + mttr;
  }
}

TEST(SimulatorRegressionTest, FullRestartPaysDetectionDelay) {
  // The simulated runtime must match the tick-quantized replay exactly;
  // before the fix it matched the interval=0 replay instead (full restart
  // redeployed instantly while fine-grained recovery waited for the
  // coordinator's next poll). Note runtimes are not monotone in the
  // interval: a delayed restart lands on a different stretch of the
  // failure trace and may dodge a failure entirely.
  Plan p = ChainPlan(10.0, 1.0, 2);  // 21s no-mat query
  cost::ClusterStats stats = cost::MakeCluster(1, 15.0, 1.0);
  SimulationOptions monitored;
  monitored.monitoring_interval = 7.0;
  ClusterSimulator sim(stats, monitored);
  int delayed_runs = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    ClusterTrace t_sim = ClusterTrace::Generate(stats, seed);
    ClusterTrace t_monitored = ClusterTrace::Generate(stats, seed);
    ClusterTrace t_immediate = ClusterTrace::Generate(stats, seed);
    auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                     RecoveryMode::kFullRestart, t_sim);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->completed);
    const double expected = ReplayFullRestart(
        t_monitored, 21.0, monitored.monitoring_interval,
        stats.mttr_seconds);
    const double immediate =
        ReplayFullRestart(t_immediate, 21.0, 0.0, stats.mttr_seconds);
    EXPECT_DOUBLE_EQ(r->runtime, expected) << "seed=" << seed;
    if (expected != immediate) ++delayed_runs;
  }
  EXPECT_GT(delayed_runs, 0);  // the delay actually changed outcomes
}

TEST(SimulatorRegressionTest, BackToBackFailuresChargeOneDetectionWindow) {
  // Crafted trace: two failures land inside a single detection + repair
  // window (t=1 and t=3 with interval 2 and MTTR 10). They are ONE
  // outage: detection at the t=2 tick, repair until t=12, restart, done
  // at t=33. The stale t=3 failure — already in the past when the retry
  // starts — must not charge a second detection tick or MTTR.
  Plan p = ChainPlan(10.0, 1.0, 2);  // 21s no-mat query
  cost::ClusterStats stats = cost::MakeCluster(1, 15.0, 10.0);
  SimulationOptions opts;
  opts.monitoring_interval = 2.0;
  ClusterSimulator sim(stats, opts);

  ClusterTrace full_trace = ClusterTrace::FromScheduled({{1.0, 3.0}});
  auto full = sim.Run(p, MaterializationConfig::NoMat(p),
                      RecoveryMode::kFullRestart, full_trace);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_TRUE(full->completed);
  EXPECT_EQ(full->restarts, 1);
  EXPECT_DOUBLE_EQ(full->runtime, 33.0);  // 2 detect + 10 repair + 21 run

  // Fine-grained on one node with one collapsed op recovers the identical
  // unit, so it must agree to the bit.
  ClusterTrace fine_trace = ClusterTrace::FromScheduled({{1.0, 3.0}});
  auto fine = sim.Run(p, MaterializationConfig::NoMat(p),
                      RecoveryMode::kFineGrained, fine_trace);
  ASSERT_TRUE(fine.ok()) << fine.status();
  EXPECT_TRUE(fine->completed);
  EXPECT_EQ(fine->restarts, 1);
  EXPECT_DOUBLE_EQ(fine->runtime, 33.0);

  // WAL replay with free log writes and a unity replay factor is the
  // fine-grained discipline by construction — same single outage, same
  // clock, on the same crafted trace.
  SimulationOptions wal_opts = opts;
  wal_opts.wal_write_cost = 0.0;
  wal_opts.wal_replay_factor = 1.0;
  ClusterSimulator wal_sim(stats, wal_opts);
  ClusterTrace wal_trace = ClusterTrace::FromScheduled({{1.0, 3.0}});
  auto wal = wal_sim.Run(p, MaterializationConfig::NoMat(p),
                         RecoveryMode::kWalReplay, wal_trace);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_TRUE(wal->completed);
  EXPECT_DOUBLE_EQ(wal->runtime, 33.0);
}

TEST(SimulatorRegressionTest, DetectionDelayParityWithFineGrained) {
  // On a single-node, single-collapsed-op chain, fine-grained and full
  // restart recover the identical unit, so their runtimes must agree —
  // including the detection delay. Before the fix, full restart skipped
  // the delay and came out cheaper whenever a failure hit.
  Plan p = ChainPlan(10.0, 1.0, 2);
  cost::ClusterStats stats = cost::MakeCluster(1, 15.0, 1.0);
  SimulationOptions opts;
  opts.monitoring_interval = 2.0;
  ClusterSimulator sim(stats, opts);
  int failed_runs = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    ClusterTrace t1 = ClusterTrace::Generate(stats, seed);
    ClusterTrace t2 = ClusterTrace::Generate(stats, seed);
    auto fine = sim.Run(p, MaterializationConfig::NoMat(p),
                        RecoveryMode::kFineGrained, t1);
    auto full = sim.Run(p, MaterializationConfig::NoMat(p),
                        RecoveryMode::kFullRestart, t2);
    ASSERT_TRUE(fine.ok());
    ASSERT_TRUE(full.ok());
    EXPECT_DOUBLE_EQ(fine->runtime, full->runtime) << "seed=" << seed;
    if (fine->restarts > 0) ++failed_runs;
  }
  EXPECT_GT(failed_runs, 0);  // the parity claim was actually exercised
}

}  // namespace
}  // namespace xdbft::cluster
