#include "cluster/workload.h"

#include <gtest/gtest.h>

#include "tpch/queries.h"

namespace xdbft::cluster {
namespace {

using ft::SchemeKind;

std::vector<WorkloadQuery> MixedWorkload() {
  std::vector<WorkloadQuery> w;
  // Short, medium and long variants of Q5 (runtime scales with SF).
  const double sfs[] = {1.0, 20.0, 200.0};
  const char* labels[] = {"short", "medium", "long"};
  double arrival = 0.0;
  for (int i = 0; i < 3; ++i) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = sfs[i];
    auto p = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
    w.push_back({labels[i], std::move(*p), arrival});
    arrival += 5.0;
  }
  return w;
}

TEST(WorkloadTest, SimulatesAllQueriesInOrder) {
  auto out = SimulateWorkload(MixedWorkload(), SchemeKind::kCostBased,
                              cost::MakeCluster(10, 3600.0, 1.0));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->queries.size(), 3u);
  double prev_finish = 0.0;
  for (const auto& q : out->queries) {
    EXPECT_GE(q.start_seconds, prev_finish);
    EXPECT_GE(q.finish_seconds, q.start_seconds);
    prev_finish = q.finish_seconds;
  }
  EXPECT_DOUBLE_EQ(out->makespan_seconds, prev_finish);
}

TEST(WorkloadTest, ArrivalTimesDelayStart) {
  std::vector<WorkloadQuery> w = MixedWorkload();
  w[0].arrival_seconds = 100.0;
  auto out = SimulateWorkload(w, SchemeKind::kNoMatLineage,
                              cost::MakeCluster(10, 1e15, 1.0));
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->queries[0].start_seconds, 100.0);
}

TEST(WorkloadTest, NoFailuresMeansBaselineRuntimes) {
  auto out = SimulateWorkload(MixedWorkload(), SchemeKind::kNoMatLineage,
                              cost::MakeCluster(10, 1e15, 1.0));
  ASSERT_TRUE(out.ok());
  for (const auto& q : out->queries) {
    EXPECT_TRUE(q.completed);
    EXPECT_NEAR(q.runtime_seconds, q.baseline_seconds,
                q.baseline_seconds * 1e-9);
    EXPECT_NEAR(q.overhead_percent, 0.0, 1e-6);
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  const auto w = MixedWorkload();
  auto a = SimulateWorkload(w, SchemeKind::kAllMat,
                            cost::MakeCluster(10, 1800.0, 1.0), {}, 7);
  auto b = SimulateWorkload(w, SchemeKind::kAllMat,
                            cost::MakeCluster(10, 1800.0, 1.0), {}, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->makespan_seconds, b->makespan_seconds);
}

TEST(WorkloadTest, SharedTraceMakesLaterQueriesSeeLaterFailures) {
  // Two identical workloads except the second query arrives much later:
  // under a shared trace the later query must not see the exact same
  // failure offsets (trace continuity).
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 50.0;
  auto p = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  std::vector<WorkloadQuery> w1 = {{"a", *p, 0.0}, {"b", *p, 0.0}};
  auto out = SimulateWorkload(w1, SchemeKind::kNoMatLineage,
                              cost::MakeCluster(10, 900.0, 1.0), {}, 3);
  ASSERT_TRUE(out.ok());
  // Both completed; runtimes generally differ because they hit different
  // stretches of the same failure trace.
  EXPECT_TRUE(out->queries[0].completed);
  EXPECT_TRUE(out->queries[1].completed);
}

TEST(WorkloadTest, CompareSchemesRunsAllFive) {
  auto out = CompareSchemesOnWorkload(MixedWorkload(),
                                      cost::MakeCluster(10, 3600.0, 1.0));
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), 5u);
  EXPECT_EQ((*out)[0].scheme, SchemeKind::kAllMat);
  EXPECT_EQ((*out)[3].scheme, SchemeKind::kCostBased);
  EXPECT_EQ((*out)[4].scheme, SchemeKind::kWriteAheadLineage);
}

TEST(WorkloadTest, CostBasedCompetitiveOnMixedWorkload) {
  // The paper's headline claim at workload level: across a mixed
  // workload, the cost-based scheme's makespan is at most ~10% above the
  // best fixed scheme of §5.2 (and typically the best). Write-ahead
  // lineage is excluded from the baseline: it is a different recovery
  // discipline the paper's search space does not contain (cost-based
  // only mixes WAL points in when the model enables it).
  for (double mtbf : {1800.0, 3600.0 * 24}) {
    auto out = CompareSchemesOnWorkload(
        MixedWorkload(), cost::MakeCluster(10, mtbf, 1.0), {}, 11);
    ASSERT_TRUE(out.ok());
    double best_fixed = 1e300, cost_based = 0.0;
    for (const auto& o : *out) {
      if (o.aborted > 0) continue;
      if (o.scheme == SchemeKind::kWriteAheadLineage) continue;
      if (o.scheme == SchemeKind::kCostBased) {
        cost_based = o.makespan_seconds;
      } else {
        best_fixed = std::min(best_fixed, o.makespan_seconds);
      }
    }
    ASSERT_GT(cost_based, 0.0);
    EXPECT_LE(cost_based, best_fixed * 1.10) << "mtbf=" << mtbf;
  }
}

TEST(WorkloadTest, RejectsEmptyWorkload) {
  EXPECT_FALSE(SimulateWorkload({}, SchemeKind::kAllMat,
                                cost::MakeCluster(10, 3600.0, 1.0))
                   .ok());
}

}  // namespace
}  // namespace xdbft::cluster
