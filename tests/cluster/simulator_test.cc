#include "cluster/simulator.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "ft/ft_cost.h"

namespace xdbft::cluster {
namespace {

using ft::MaterializationConfig;
using ft::RecoveryMode;
using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan ChainPlan(double op_seconds = 10.0, double mat_seconds = 1.0,
               int length = 4) {
  PlanBuilder b("chain");
  OpId prev = b.Scan("R", 1e6, 64, op_seconds);
  b.plan().mutable_node(prev).materialize_cost = mat_seconds;
  for (int i = 1; i < length; ++i) {
    prev = b.Unary(OpType::kFilter, "op" + std::to_string(i), prev,
                   op_seconds, mat_seconds);
  }
  return std::move(b).Build();
}

ClusterTrace FailFreeTrace(int nodes) {
  return ClusterTrace::Generate(
      cost::MakeCluster(nodes, 1e18, 1.0), 1);
}

TEST(SimulatorTest, NoFailuresGivesBaselinePlusMaterialization) {
  Plan p = ChainPlan(10.0, 1.0, 4);
  cost::ClusterStats stats = cost::MakeCluster(4, 1e18, 1.0);
  ClusterSimulator sim(stats);
  ClusterTrace trace = ClusterTrace::Generate(stats, 1);

  // no-mat: single collapsed op of 4 x 10s + sink materialization 1s.
  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFineGrained, trace);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->completed);
  EXPECT_DOUBLE_EQ(r->runtime, 41.0);
  EXPECT_EQ(r->restarts, 0);

  // all-mat adds one materialization per operator.
  auto r2 = sim.Run(p, MaterializationConfig::AllMat(p),
                    RecoveryMode::kFineGrained, trace);
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->runtime, 44.0);
}

TEST(SimulatorTest, BaselineRuntimeIsNoMatNoFailureMakespan) {
  Plan p = ChainPlan(10.0, 1.0, 4);
  ClusterSimulator sim(cost::MakeCluster(4, 3600.0, 1.0));
  auto base = sim.BaselineRuntime(p);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(*base, 41.0);
}

TEST(SimulatorTest, FailureDelaysFineGrainedRun) {
  Plan p = ChainPlan(10.0, 1.0, 2);  // one collapsed op, t = 21 under no-mat
  cost::ClusterStats stats = cost::MakeCluster(1, 30.0, 2.0);
  ClusterSimulator sim(stats);
  ClusterTrace trace = ClusterTrace::Generate(stats, 7);
  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFineGrained, trace);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->completed);
  if (r->restarts > 0) {
    EXPECT_GT(r->runtime, 21.0);
  } else {
    EXPECT_DOUBLE_EQ(r->runtime, 21.0);
  }
}

TEST(SimulatorTest, MaterializationLimitsLossUnderFailures) {
  // Average over many traces: with frequent failures, the all-mat run
  // (restart only a 11s unit) beats the no-mat run (restart the full 41s
  // chain).
  Plan p = ChainPlan(10.0, 0.25, 4);
  cost::ClusterStats stats = cost::MakeCluster(2, 60.0, 1.0);
  ClusterSimulator sim(stats);
  double no_mat_total = 0.0, all_mat_total = 0.0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    ClusterTrace t1 = ClusterTrace::Generate(stats, seed);
    ClusterTrace t2 = ClusterTrace::Generate(stats, seed);
    auto r1 = sim.Run(p, MaterializationConfig::NoMat(p),
                      RecoveryMode::kFineGrained, t1);
    auto r2 = sim.Run(p, MaterializationConfig::AllMat(p),
                      RecoveryMode::kFineGrained, t2);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    no_mat_total += r1->runtime;
    all_mat_total += r2->runtime;
  }
  EXPECT_LT(all_mat_total, no_mat_total);
}

TEST(SimulatorTest, FullRestartRestartsWholeQuery) {
  Plan p = ChainPlan(10.0, 1.0, 2);
  cost::ClusterStats stats = cost::MakeCluster(1, 15.0, 1.0);
  ClusterSimulator sim(stats);
  ClusterTrace trace = ClusterTrace::Generate(stats, 5);
  auto fine = sim.Run(p, MaterializationConfig::NoMat(p),
                      RecoveryMode::kFineGrained, trace);
  ClusterTrace trace2 = ClusterTrace::Generate(stats, 5);
  auto full = sim.Run(p, MaterializationConfig::NoMat(p),
                      RecoveryMode::kFullRestart, trace2);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(full.ok());
  // Under a no-mat config with a single-sink chain both semantics restart
  // the same unit, so their runtimes agree.
  EXPECT_DOUBLE_EQ(fine->runtime, full->runtime);
}

TEST(SimulatorTest, FullRestartAbortsAfterMaxRestarts) {
  Plan p = ChainPlan(1000.0, 1.0, 4);  // 4001s query
  cost::ClusterStats stats = cost::MakeCluster(10, 600.0, 1.0);
  SimulationOptions opts;
  opts.max_restarts = 20;
  ClusterSimulator sim(stats, opts);
  ClusterTrace trace = ClusterTrace::Generate(stats, 3);
  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFullRestart, trace);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->completed);
  EXPECT_EQ(r->restarts, 20);
}

TEST(SimulatorTest, FineGrainedAlwaysCompletes) {
  Plan p = ChainPlan(50.0, 1.0, 4);
  cost::ClusterStats stats = cost::MakeCluster(10, 120.0, 1.0);
  ClusterSimulator sim(stats);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    ClusterTrace trace = ClusterTrace::Generate(stats, seed);
    auto r = sim.Run(p, MaterializationConfig::AllMat(p),
                     RecoveryMode::kFineGrained, trace);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->completed);
  }
}

TEST(SimulatorTest, RejectsTraceNodeMismatch) {
  Plan p = ChainPlan();
  ClusterSimulator sim(cost::MakeCluster(4, 3600.0, 1.0));
  ClusterTrace trace = FailFreeTrace(2);
  EXPECT_FALSE(sim.Run(p, MaterializationConfig::NoMat(p),
                       RecoveryMode::kFineGrained, trace)
                   .ok());
}

TEST(SimulatorTest, RunManyAveragesRuntimes) {
  Plan p = ChainPlan(10.0, 1.0, 2);
  cost::ClusterStats stats = cost::MakeCluster(2, 1e18, 1.0);
  ClusterSimulator sim(stats);
  ft::SchemePlan sp;
  sp.plan = p;
  sp.config = MaterializationConfig::NoMat(p);
  sp.recovery = RecoveryMode::kFineGrained;
  auto traces = GenerateTraceSet(stats, 5, 9);
  auto r = sim.RunMany(sp, traces);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->completed);
  EXPECT_DOUBLE_EQ(r->runtime, 21.0);
}

TEST(SimulatorTest, RunManyReportsPercentiles) {
  Plan p = ChainPlan(50.0, 1.0, 4);
  cost::ClusterStats stats = cost::MakeCluster(4, 300.0, 1.0);
  ClusterSimulator sim(stats);
  ft::SchemePlan sp;
  sp.plan = p;
  sp.config = MaterializationConfig::AllMat(p);
  sp.recovery = RecoveryMode::kFineGrained;
  auto traces = GenerateTraceSet(stats, 30, 21);
  auto r = sim.RunMany(sp, traces);
  ASSERT_TRUE(r.ok());
  // p50 <= mean-ish <= p95 ordering and both at least the no-failure
  // makespan.
  EXPECT_LE(r->runtime_p50, r->runtime_p95);
  EXPECT_GE(r->runtime_p95, r->runtime * 0.999);
  EXPECT_GT(r->runtime_p50, 0.0);
}

TEST(SimulatorTest, SingleRunPercentilesEqualRuntime) {
  Plan p = ChainPlan(10.0, 1.0, 2);
  cost::ClusterStats stats = cost::MakeCluster(2, 1e18, 1.0);
  ClusterSimulator sim(stats);
  ClusterTrace trace = ClusterTrace::Generate(stats, 1);
  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFineGrained, trace);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->runtime_p50, r->runtime);
  EXPECT_DOUBLE_EQ(r->runtime_p95, r->runtime);
}

TEST(SimulatorTest, StartTimeShiftsQueryOntoTraceTimeline) {
  // A query started later sees a different stretch of the same trace;
  // with no failures the runtime is unchanged.
  Plan p = ChainPlan(10.0, 1.0, 2);
  cost::ClusterStats stats = cost::MakeCluster(2, 1e18, 1.0);
  ClusterSimulator sim(stats);
  ClusterTrace trace = ClusterTrace::Generate(stats, 1);
  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFineGrained, trace, /*start_time=*/500.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->runtime, 21.0);
}

TEST(SimulatorTest, RunManyRejectsEmptyTraceSet) {
  Plan p = ChainPlan();
  ClusterSimulator sim(cost::MakeCluster(2, 3600.0, 1.0));
  ft::SchemePlan sp;
  sp.plan = p;
  sp.config = MaterializationConfig::NoMat(p);
  std::vector<ClusterTrace> none;
  EXPECT_FALSE(sim.RunMany(sp, none).ok());
}

TEST(SimulatorTest, PartitionSkewStretchesRuntime) {
  Plan p = ChainPlan(10.0, 1.0, 2);
  cost::ClusterStats stats = cost::MakeCluster(8, 1e18, 1.0);
  SimulationOptions skewed;
  skewed.partition_skew = 0.3;
  ClusterSimulator sim_plain(stats);
  ClusterSimulator sim_skew(stats, skewed);
  ClusterTrace t1 = ClusterTrace::Generate(stats, 1);
  ClusterTrace t2 = ClusterTrace::Generate(stats, 1);
  auto r_plain = sim_plain.Run(p, MaterializationConfig::NoMat(p),
                               RecoveryMode::kFineGrained, t1);
  auto r_skew = sim_skew.Run(p, MaterializationConfig::NoMat(p),
                             RecoveryMode::kFineGrained, t2);
  ASSERT_TRUE(r_plain.ok());
  ASSERT_TRUE(r_skew.ok());
  EXPECT_GT(r_skew->runtime, r_plain->runtime);
  EXPECT_LT(r_skew->runtime, r_plain->runtime * 1.31);
}

// Fig. 12a property: the analytic estimate tracks the simulated runtime.
// The paper reports errors up to ~30% at very low MTBF with the model
// generally underestimating; we assert agreement within 40% across a wide
// MTBF range and correlation of the trend.
TEST(SimulatorTest, CostModelTracksSimulation) {
  Plan p = ChainPlan(100.0, 5.0, 4);
  std::vector<double> estimates, simulated;
  for (double mtbf : {600.0, 3600.0, 86400.0}) {
    cost::ClusterStats stats = cost::MakeCluster(10, mtbf, 1.0);
    ft::FtCostContext ctx;
    ctx.cluster = stats;
    ft::FtCostModel model(ctx);
    const auto config = MaterializationConfig::AllMat(p);
    auto est = model.Estimate(p, config);
    ASSERT_TRUE(est.ok());

    ClusterSimulator sim(stats);
    double total = 0.0;
    const int kRuns = 30;
    for (uint64_t seed = 0; seed < kRuns; ++seed) {
      ClusterTrace trace = ClusterTrace::Generate(stats, seed);
      auto r = sim.Run(p, config, RecoveryMode::kFineGrained, trace);
      ASSERT_TRUE(r.ok());
      total += r->runtime;
    }
    const double mean = total / kRuns;
    estimates.push_back(est->dominant_cost);
    simulated.push_back(mean);
    EXPECT_NEAR(est->dominant_cost, mean, mean * 0.4) << "mtbf=" << mtbf;
  }
  EXPECT_GT(PearsonCorrelation(estimates, simulated), 0.95);
}

TEST(SimulationResultTest, ToStringMentionsState) {
  SimulationResult r;
  r.completed = true;
  r.runtime = 12.0;
  EXPECT_NE(r.ToString().find("completed"), std::string::npos);
  r.completed = false;
  EXPECT_NE(r.ToString().find("ABORTED"), std::string::npos);
}

}  // namespace
}  // namespace xdbft::cluster
