// Tests for the simulator's extended options: monitoring-interval failure
// detection and intra-operator checkpointing.
#include <gtest/gtest.h>

#include "cluster/simulator.h"
#include "ft/checkpointing.h"

namespace xdbft::cluster {
namespace {

using ft::MaterializationConfig;
using ft::RecoveryMode;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan OneOpPlan(double seconds) {
  PlanBuilder b("one-op");
  auto s = b.Scan("R", 1e6, 64, seconds / 2.0);
  b.Unary(OpType::kMapUdf, "op", s, seconds / 2.0, 1.0);
  return std::move(b).Build();
}

TEST(MonitoringIntervalTest, DelaysDetection) {
  // With failures present, a coarser monitoring interval can only delay
  // recovery (never speed it up).
  Plan p = OneOpPlan(100.0);
  const auto stats = cost::MakeCluster(2, 80.0, 1.0);
  SimulationOptions immediate;
  SimulationOptions coarse;
  coarse.monitoring_interval = 10.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    ClusterTrace t1 = ClusterTrace::Generate(stats, seed);
    ClusterTrace t2 = ClusterTrace::Generate(stats, seed);
    auto r1 = ClusterSimulator(stats, immediate)
                  .Run(p, MaterializationConfig::NoMat(p),
                       RecoveryMode::kFineGrained, t1);
    auto r2 = ClusterSimulator(stats, coarse)
                  .Run(p, MaterializationConfig::NoMat(p),
                       RecoveryMode::kFineGrained, t2);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_GE(r2->runtime, r1->runtime - 1e-9) << seed;
  }
}

TEST(MonitoringIntervalTest, NoEffectWithoutFailures) {
  Plan p = OneOpPlan(100.0);
  const auto stats = cost::MakeCluster(2, 1e18, 1.0);
  SimulationOptions coarse;
  coarse.monitoring_interval = 5.0;
  ClusterTrace trace = ClusterTrace::Generate(stats, 1);
  auto r = ClusterSimulator(stats, coarse)
               .Run(p, MaterializationConfig::NoMat(p),
                    RecoveryMode::kFineGrained, trace);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->runtime, 101.0);
}

TEST(CheckpointSimTest, OverheadOnlyWithoutFailures) {
  // 100s of work + 1s sink mat; interval 25s -> 5 segments (t(c)=101),
  // i.e. 4 checkpoint writes of 2s.
  Plan p = OneOpPlan(100.0);
  const auto stats = cost::MakeCluster(1, 1e18, 1.0);
  SimulationOptions opts;
  opts.checkpoint_interval = 25.0;
  opts.checkpoint_cost = 2.0;
  ClusterTrace trace = ClusterTrace::Generate(stats, 1);
  auto r = ClusterSimulator(stats, opts)
               .Run(p, MaterializationConfig::NoMat(p),
                    RecoveryMode::kFineGrained, trace);
  ASSERT_TRUE(r.ok());
  const int segments = ft::NumCheckpointSegments(101.0, 25.0);
  EXPECT_EQ(segments, 5);
  EXPECT_DOUBLE_EQ(r->runtime, 101.0 + (segments - 1) * 2.0);
}

TEST(CheckpointSimTest, ReducesRuntimeUnderFrequentFailures) {
  // A 600s operator against a 300s-MTBF node: without checkpoints, runs
  // practically never finish a clean window; with 30s segments they do.
  Plan p = OneOpPlan(600.0);
  const auto stats = cost::MakeCluster(1, 300.0, 1.0);
  SimulationOptions plain;
  SimulationOptions ckpt;
  ckpt.checkpoint_interval = 30.0;
  ckpt.checkpoint_cost = 1.0;
  double plain_total = 0.0, ckpt_total = 0.0;
  for (uint64_t seed = 0; seed < 15; ++seed) {
    ClusterTrace t1 = ClusterTrace::Generate(stats, seed);
    ClusterTrace t2 = ClusterTrace::Generate(stats, seed);
    auto r1 = ClusterSimulator(stats, plain)
                  .Run(p, MaterializationConfig::NoMat(p),
                       RecoveryMode::kFineGrained, t1);
    auto r2 = ClusterSimulator(stats, ckpt)
                  .Run(p, MaterializationConfig::NoMat(p),
                       RecoveryMode::kFineGrained, t2);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    plain_total += r1->runtime;
    ckpt_total += r2->runtime;
  }
  EXPECT_LT(ckpt_total, plain_total / 2.0);
}

TEST(CheckpointSimTest, ModelTracksSimulation) {
  Plan p = OneOpPlan(600.0);
  const auto stats = cost::MakeCluster(1, 600.0, 1.0);
  SimulationOptions opts;
  opts.checkpoint_interval = 60.0;
  opts.checkpoint_cost = 2.0;
  ClusterSimulator sim(stats, opts);
  double total = 0.0;
  const int kRuns = 60;
  for (uint64_t seed = 0; seed < kRuns; ++seed) {
    ClusterTrace trace = ClusterTrace::Generate(stats, seed);
    auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                     RecoveryMode::kFineGrained, trace);
    total += r->runtime;
  }
  const double mean = total / kRuns;
  ft::FtCostContext ctx;
  ctx.cluster = stats;
  ft::CheckpointParams ckpt;
  ckpt.interval = 60.0;
  ckpt.checkpoint_cost = 2.0;
  const double model = ft::OperatorTotalRuntimeWithCheckpoints(
      601.0, ckpt, ctx.MakeFailureParams());
  EXPECT_NEAR(model, mean, mean * 0.35);
}

}  // namespace
}  // namespace xdbft::cluster
