// Correlated burst failure traces (ClusterTrace::GenerateWithBursts):
// bursts kill several nodes inside one short window on top of an optional
// background Poisson process. These are the adversarial traces the
// crosscheck harness uses to stress recovery paths the independent-failure
// model never exercises.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/failure_trace.h"

namespace xdbft::cluster {
namespace {

BurstOptions QuickBursts() {
  BurstOptions b;
  b.mean_interval = 100.0;
  b.horizon = 10000.0;
  b.width = 2.0;
  b.min_nodes = 2;
  b.max_nodes = 3;
  return b;
}

TEST(FailureTraceScheduledTest, ScheduledFailuresAreReturnedInOrder) {
  FailureTrace t(kNeverFails, /*seed=*/1, {30.0, 10.0, 20.0, -5.0, 0.0});
  EXPECT_DOUBLE_EQ(t.NextFailureAfter(0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.NextFailureAfter(10.0), 20.0);
  EXPECT_DOUBLE_EQ(t.NextFailureAfter(25.0), 30.0);
  EXPECT_EQ(t.NextFailureAfter(30.0), kNeverFails);
  EXPECT_EQ(t.CountFailuresUntil(25.0), 2u);
  EXPECT_EQ(t.CountFailuresUntil(1e9), 3u);
}

TEST(FailureTraceScheduledTest, ScheduledMergesWithPoisson) {
  // The merged process must contain every Poisson failure and every
  // scheduled failure; walking it forward recovers both sorted lists.
  const double mtbf = 50.0;
  FailureTrace plain(mtbf, /*seed=*/7);
  FailureTrace merged(mtbf, /*seed=*/7, {123.456, 333.0});
  std::vector<double> expected;
  double t = 0.0;
  while (t < 500.0) {
    t = plain.NextFailureAfter(t);
    expected.push_back(t);
  }
  expected.push_back(123.456);
  expected.push_back(333.0);
  std::sort(expected.begin(), expected.end());
  double m = 0.0;
  for (double want : expected) {
    m = merged.NextFailureAfter(m);
    EXPECT_DOUBLE_EQ(m, want);
  }
  EXPECT_EQ(merged.CountFailuresUntil(500.0),
            static_cast<size_t>(std::upper_bound(expected.begin(),
                                                 expected.end(), 500.0) -
                                expected.begin()));
}

TEST(BurstOptionsTest, ValidateRejectsBadRanges) {
  EXPECT_TRUE(QuickBursts().Validate().ok());
  BurstOptions b = QuickBursts();
  b.mean_interval = 0.0;
  EXPECT_FALSE(b.Validate().ok());
  b = QuickBursts();
  b.min_nodes = 3;
  b.max_nodes = 2;
  EXPECT_FALSE(b.Validate().ok());
  b = QuickBursts();
  b.min_nodes = 0;
  EXPECT_FALSE(b.Validate().ok());
  b = QuickBursts();
  b.width = -1.0;
  EXPECT_FALSE(b.Validate().ok());
  b = QuickBursts();
  b.background_mtbf = 0.0;
  EXPECT_FALSE(b.Validate().ok());
}

TEST(BurstTraceTest, DeterministicForSeed) {
  auto stats = cost::MakeCluster(6, 1000.0);
  ClusterTrace a = ClusterTrace::GenerateWithBursts(stats, 42, QuickBursts());
  ClusterTrace b = ClusterTrace::GenerateWithBursts(stats, 42, QuickBursts());
  double ta = 0.0, tb = 0.0;
  for (int i = 0; i < 200; ++i) {
    int na = -1, nb = -1;
    ta = a.NextFailureAfter(ta, &na);
    tb = b.NextFailureAfter(tb, &nb);
    ASSERT_DOUBLE_EQ(ta, tb);
    ASSERT_EQ(na, nb);
  }
}

TEST(BurstTraceTest, BurstsKillSeveralNodesInOneWindow) {
  // Bursts-only trace (no background process): every failure belongs to a
  // burst, so walking the cluster timeline must encounter clumps of
  // min_nodes..max_nodes distinct victims inside `width`-wide windows,
  // separated by gaps that are typically much larger.
  auto stats = cost::MakeCluster(8, 1000.0);
  BurstOptions b = QuickBursts();
  ClusterTrace ct = ClusterTrace::GenerateWithBursts(stats, 9, b);

  // Collect all failures in the horizon, per node.
  std::vector<std::pair<double, int>> events;  // (time, node)
  for (int n = 0; n < ct.num_nodes(); ++n) {
    double t = 0.0;
    while ((t = ct.node(n).NextFailureAfter(t)) <= b.horizon) {
      events.emplace_back(t, n);
    }
  }
  std::sort(events.begin(), events.end());
  ASSERT_FALSE(events.empty());

  // Group into windows of `width`. Two bursts can occasionally land
  // within one window (exponential gaps shorter than `width` have
  // probability ~width/mean_interval), merging their victim sets — so
  // require every window to hold at least min_nodes victims and the
  // overwhelming majority to be a single clean burst: distinct victims,
  // count within [min_nodes, max_nodes].
  size_t i = 0;
  int windows = 0, clean = 0;
  while (i < events.size()) {
    size_t j = i;
    std::vector<int> victims;
    while (j < events.size() &&
           events[j].first - events[i].first <= b.width) {
      victims.push_back(events[j].second);
      ++j;
    }
    std::sort(victims.begin(), victims.end());
    EXPECT_GE(static_cast<int>(victims.size()), b.min_nodes);
    const bool distinct =
        std::adjacent_find(victims.begin(), victims.end()) == victims.end();
    if (distinct && static_cast<int>(victims.size()) <= b.max_nodes) {
      ++clean;
    }
    ++windows;
    i = j;
  }
  // ~horizon/mean_interval bursts expected; allow wide slack.
  EXPECT_GT(windows, 50);
  EXPECT_LT(windows, 200);
  EXPECT_GE(clean, windows * 9 / 10);
}

TEST(BurstTraceTest, BackgroundPoissonIsSuperimposed) {
  // With a finite background MTBF the per-node failure count is the burst
  // contribution plus roughly horizon/background_mtbf extra failures.
  auto stats = cost::MakeCluster(4, 1000.0);
  BurstOptions bursts_only = QuickBursts();
  BurstOptions with_bg = QuickBursts();
  with_bg.background_mtbf = 500.0;
  ClusterTrace a = ClusterTrace::GenerateWithBursts(stats, 5, bursts_only);
  ClusterTrace c = ClusterTrace::GenerateWithBursts(stats, 5, with_bg);
  size_t burst_count = 0, merged_count = 0;
  for (int n = 0; n < stats.num_nodes; ++n) {
    burst_count += a.node(n).CountFailuresUntil(bursts_only.horizon);
    merged_count += c.node(n).CountFailuresUntil(bursts_only.horizon);
  }
  const double expected_bg = static_cast<double>(stats.num_nodes) *
                             bursts_only.horizon / with_bg.background_mtbf;
  EXPECT_NEAR(static_cast<double>(merged_count - burst_count), expected_bg,
              expected_bg * 0.25);
}

TEST(GenerateBurstTraceSetTest, SetsAreIndependentAndDeterministic) {
  auto stats = cost::MakeCluster(3, 1000.0);
  auto set1 = GenerateBurstTraceSet(stats, QuickBursts(), 5, 42);
  auto set2 = GenerateBurstTraceSet(stats, QuickBursts(), 5, 42);
  ASSERT_EQ(set1.size(), 5u);
  for (size_t i = 0; i < set1.size(); ++i) {
    EXPECT_DOUBLE_EQ(set1[i].NextFailureAfter(0.0),
                     set2[i].NextFailureAfter(0.0));
  }
  EXPECT_NE(set1[0].NextFailureAfter(0.0), set1[1].NextFailureAfter(0.0));
}

}  // namespace
}  // namespace xdbft::cluster
