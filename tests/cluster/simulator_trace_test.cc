// The simulator's discrete-event timeline exported as Chrome trace spans
// on virtual time (1 simulated second = 1000 trace microseconds): killed
// attempts and failure markers must agree with the SimulationResult, and
// the exported document must parse as trace-event JSON.
#include <gtest/gtest.h>

#include <string>

#include "cluster/simulator.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace xdbft::cluster {
namespace {

using ft::MaterializationConfig;
using ft::RecoveryMode;
using plan::OpId;
using plan::OpType;
using plan::PlanBuilder;

plan::Plan ChainPlan(double op_seconds, double mat_seconds, int length) {
  PlanBuilder b("chain");
  OpId prev = b.Scan("R", 1e6, 64, op_seconds);
  b.plan().mutable_node(prev).materialize_cost = mat_seconds;
  for (int i = 1; i < length; ++i) {
    prev = b.Unary(OpType::kFilter, "op" + std::to_string(i), prev,
                   op_seconds, mat_seconds);
  }
  return std::move(b).Build();
}

struct TraceCounts {
  int subplans = 0;
  int killed = 0;
  int failures = 0;
  int waits = 0;
};

TraceCounts CountByCategory(const obs::JsonValue& doc) {
  TraceCounts counts;
  const obs::JsonValue* events = doc.Find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return counts;
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* cat = e.Find("cat");
    if (cat == nullptr) continue;
    if (cat->string_value == "subplan") ++counts.subplans;
    if (cat->string_value == "killed") ++counts.killed;
    if (cat->string_value == "failure") ++counts.failures;
    if (cat->string_value == "wait") ++counts.waits;
  }
  return counts;
}

TEST(SimulatorTraceTest, FineGrainedTimelineMatchesResult) {
  const plan::Plan p = ChainPlan(30.0, 1.0, 3);
  const cost::ClusterStats stats = cost::MakeCluster(2, 20.0, 2.0);
  obs::TraceRecorder trace;
  SimulationOptions options;
  options.trace = &trace;
  const ClusterSimulator sim(stats, options);
  ClusterTrace failures = ClusterTrace::Generate(stats, 11);

  auto r = sim.Run(p, MaterializationConfig::AllMat(p),
                   RecoveryMode::kFineGrained, failures);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->completed);

  auto doc = obs::ParseJson(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const TraceCounts counts = CountByCategory(*doc);
  // Every sub-plan (3 collapsed ops x 2 nodes) eventually completes.
  EXPECT_EQ(counts.subplans, 3 * 2);
  // One killed span and one failure marker per restart; every restart
  // waits out the MTTR.
  EXPECT_EQ(counts.killed, r->restarts);
  EXPECT_EQ(counts.failures, r->restarts);
  EXPECT_EQ(counts.waits, r->restarts);
  EXPECT_GT(r->restarts, 0) << "MTBF=20s over ~93s of work per node should "
                               "inject at least one failure";
}

TEST(SimulatorTraceTest, VirtualTimestampsScaleWithRuntime) {
  const plan::Plan p = ChainPlan(10.0, 1.0, 2);
  const cost::ClusterStats stats = cost::MakeCluster(1, 1e18, 1.0);
  obs::TraceRecorder trace;
  SimulationOptions options;
  options.trace = &trace;
  const ClusterSimulator sim(stats, options);
  ClusterTrace failures = ClusterTrace::Generate(stats, 1);

  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFineGrained, failures);
  ASSERT_TRUE(r.ok()) << r.status();
  auto doc = obs::ParseJson(trace.ToJson());
  ASSERT_TRUE(doc.ok());
  // 1 simulated second = 1000 trace us: the last span must end at
  // runtime * 1000.
  double max_end = 0.0;
  for (const obs::JsonValue& e : doc->Find("traceEvents")->array) {
    if (e.Find("ph")->string_value != "X") continue;
    max_end = std::max(max_end, e.Find("ts")->number_value +
                                    e.Find("dur")->number_value);
  }
  EXPECT_DOUBLE_EQ(max_end, r->runtime * 1000.0);
}

TEST(SimulatorTraceTest, FullRestartEmitsQueryAttempts) {
  const plan::Plan p = ChainPlan(50.0, 1.0, 3);
  const cost::ClusterStats stats = cost::MakeCluster(2, 40.0, 2.0);
  obs::TraceRecorder trace;
  SimulationOptions options;
  options.trace = &trace;
  const ClusterSimulator sim(stats, options);
  ClusterTrace failures = ClusterTrace::Generate(stats, 5);

  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFullRestart, failures);
  ASSERT_TRUE(r.ok()) << r.status();
  auto doc = obs::ParseJson(trace.ToJson());
  ASSERT_TRUE(doc.ok());
  int query_spans = 0, killed = 0;
  for (const obs::JsonValue& e : doc->Find("traceEvents")->array) {
    const obs::JsonValue* cat = e.Find("cat");
    if (cat == nullptr) continue;
    if (cat->string_value == "query") ++query_spans;
    if (cat->string_value == "killed") ++killed;
  }
  EXPECT_EQ(killed, r->restarts);
  EXPECT_EQ(query_spans, r->completed ? 1 : 0);
}

#if !defined(XDBFT_DISABLE_METRICS)
TEST(SimulatorTraceTest, CountersTrackRestarts) {
  const plan::Plan p = ChainPlan(30.0, 1.0, 3);
  const cost::ClusterStats stats = cost::MakeCluster(2, 20.0, 2.0);
  const ClusterSimulator sim(stats);
  ClusterTrace failures = ClusterTrace::Generate(stats, 11);

  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Default().Snapshot();
  auto r = sim.Run(p, MaterializationConfig::AllMat(p),
                   RecoveryMode::kFineGrained, failures);
  ASSERT_TRUE(r.ok()) << r.status();
  const obs::MetricsSnapshot after =
      obs::MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(after.counter("simulator.failures") -
                before.counter("simulator.failures"),
            static_cast<uint64_t>(r->restarts));
  EXPECT_EQ(after.counter("simulator.restarts") -
                before.counter("simulator.restarts"),
            static_cast<uint64_t>(r->restarts));
  EXPECT_EQ(after.counter("simulator.runs") -
                before.counter("simulator.runs"),
            1u);
}
#endif

TEST(SimulatorAttemptLogTest, FineGrainedLedgerMatchesResult) {
  const plan::Plan p = ChainPlan(30.0, 1.0, 3);
  const cost::ClusterStats stats = cost::MakeCluster(2, 20.0, 2.0);
  obs::AttemptTimeline timeline;
  SimulationOptions options;
  options.attempt_log = &timeline;
  const ClusterSimulator sim(stats, options);
  ClusterTrace failures = ClusterTrace::Generate(stats, 11);

  auto r = sim.Run(p, MaterializationConfig::AllMat(p),
                   RecoveryMode::kFineGrained, failures);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->completed);
  ASSERT_GT(r->restarts, 0);
  int killed = 0, completed = 0;
  for (const auto& rec : timeline.records) {
    EXPECT_GE(rec.finish_seconds, rec.dispatch_seconds);
    if (rec.killed) {
      ++killed;
    } else {
      ++completed;
    }
  }
  // One killed attempt per restart; every sub-plan (3 collapsed ops x 2
  // nodes) eventually completes exactly once.
  EXPECT_EQ(killed, r->restarts);
  EXPECT_EQ(completed, 3 * 2);
}

TEST(SimulatorAttemptLogTest, FullRestartLedgerUsesVirtualTime) {
  const plan::Plan p = ChainPlan(50.0, 1.0, 3);
  const cost::ClusterStats stats = cost::MakeCluster(2, 40.0, 2.0);
  obs::AttemptTimeline timeline;
  SimulationOptions options;
  options.attempt_log = &timeline;
  const ClusterSimulator sim(stats, options);
  ClusterTrace failures = ClusterTrace::Generate(stats, 5);

  auto r = sim.Run(p, MaterializationConfig::NoMat(p),
                   RecoveryMode::kFullRestart, failures);
  ASSERT_TRUE(r.ok()) << r.status();
  int killed = 0, completed = 0;
  for (const auto& rec : timeline.records) {
    EXPECT_EQ(rec.label, "query");
    EXPECT_EQ(rec.node, -1);
    if (rec.killed) {
      ++killed;
    } else {
      ++completed;
    }
  }
  EXPECT_EQ(killed, r->restarts);
  EXPECT_EQ(completed, r->completed ? 1 : 0);
  if (r->completed) {
    // The ledger is on virtual simulated time: the last attempt finishes
    // exactly at the reported runtime.
    EXPECT_DOUBLE_EQ(timeline.records.back().finish_seconds, r->runtime);
  }
}

}  // namespace
}  // namespace xdbft::cluster
