#include "cluster/failure_trace.h"

#include <gtest/gtest.h>

namespace xdbft::cluster {
namespace {

TEST(FailureTraceTest, NeverFailsReturnsInfinity) {
  FailureTrace t;
  EXPECT_EQ(t.NextFailureAfter(0.0), kNeverFails);
  EXPECT_EQ(t.NextFailureAfter(1e12), kNeverFails);
  EXPECT_EQ(t.CountFailuresUntil(1e12), 0u);
}

TEST(FailureTraceTest, DeterministicForSeed) {
  FailureTrace a(100.0, 7), b(100.0, 7);
  for (double t = 0.0; t < 1000.0; t += 37.0) {
    EXPECT_DOUBLE_EQ(a.NextFailureAfter(t), b.NextFailureAfter(t));
  }
}

TEST(FailureTraceTest, FailuresAreStrictlyAfterQueryTime) {
  FailureTrace t(50.0, 3);
  double now = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double f = t.NextFailureAfter(now);
    EXPECT_GT(f, now);
    now = f;
  }
}

TEST(FailureTraceTest, NextFailureIsIdempotent) {
  FailureTrace t(50.0, 3);
  const double f1 = t.NextFailureAfter(10.0);
  const double f2 = t.NextFailureAfter(10.0);
  EXPECT_DOUBLE_EQ(f1, f2);
}

TEST(FailureTraceTest, QueryingFarAheadExtendsLazily) {
  FailureTrace t(10.0, 11);
  const double far = t.NextFailureAfter(1e6);
  EXPECT_GT(far, 1e6);
  // Going back in time still works on the generated prefix.
  EXPECT_LT(t.NextFailureAfter(0.0), far);
}

TEST(FailureTraceTest, MeanInterArrivalMatchesMtbf) {
  const double mtbf = 250.0;
  FailureTrace t(mtbf, 101);
  const double horizon = mtbf * 20000;
  const size_t count = t.CountFailuresUntil(horizon);
  EXPECT_NEAR(static_cast<double>(count), horizon / mtbf,
              horizon / mtbf * 0.05);
}

TEST(FailureTraceTest, CountFailuresMonotone) {
  FailureTrace t(10.0, 5);
  size_t prev = 0;
  for (double h = 0.0; h <= 1000.0; h += 100.0) {
    const size_t c = t.CountFailuresUntil(h);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(ClusterTraceTest, GeneratesOneTracePerNode) {
  auto stats = cost::MakeCluster(7, 1000.0);
  ClusterTrace ct = ClusterTrace::Generate(stats, 1);
  EXPECT_EQ(ct.num_nodes(), 7);
}

TEST(ClusterTraceTest, NodesFailIndependently) {
  auto stats = cost::MakeCluster(2, 1000.0);
  ClusterTrace ct = ClusterTrace::Generate(stats, 1);
  EXPECT_NE(ct.node(0).NextFailureAfter(0.0),
            ct.node(1).NextFailureAfter(0.0));
}

TEST(ClusterTraceTest, NextFailureAfterPicksEarliestNode) {
  auto stats = cost::MakeCluster(5, 500.0);
  ClusterTrace ct = ClusterTrace::Generate(stats, 2);
  int which = -1;
  const double f = ct.NextFailureAfter(0.0, &which);
  ASSERT_GE(which, 0);
  ASSERT_LT(which, 5);
  EXPECT_DOUBLE_EQ(ct.node(which).NextFailureAfter(0.0), f);
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(ct.node(i).NextFailureAfter(0.0), f);
  }
}

TEST(ClusterTraceTest, EffectiveClusterFailureRateScalesWithNodes) {
  // With n nodes the cluster-level failure rate is ~n/MTBF (the premise of
  // Fig. 1 and of the effective-MTBF used by the cost model).
  const double mtbf = 1000.0;
  auto stats = cost::MakeCluster(10, mtbf);
  ClusterTrace ct = ClusterTrace::Generate(stats, 3);
  int count = 0;
  double t = 0.0;
  const double horizon = mtbf * 2000;
  while (true) {
    t = ct.NextFailureAfter(t);
    if (t > horizon) break;
    ++count;
  }
  const double expected = horizon / (mtbf / 10.0);
  EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.05);
}

TEST(GenerateTraceSetTest, TracesAreIndependentAndDeterministic) {
  auto stats = cost::MakeCluster(3, 100.0);
  auto set1 = GenerateTraceSet(stats, 10, 42);
  auto set2 = GenerateTraceSet(stats, 10, 42);
  ASSERT_EQ(set1.size(), 10u);
  // Deterministic: same seeds -> same traces.
  for (size_t i = 0; i < set1.size(); ++i) {
    EXPECT_DOUBLE_EQ(set1[i].NextFailureAfter(0.0),
                     set2[i].NextFailureAfter(0.0));
  }
  // Independent: different trace indices differ.
  EXPECT_NE(set1[0].NextFailureAfter(0.0), set1[1].NextFailureAfter(0.0));
}

}  // namespace
}  // namespace xdbft::cluster
