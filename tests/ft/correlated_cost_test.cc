// Correlated-failure + placement-aware cost model: ComputePlacement
// determinism and tie-breaking, the placement fast path's bit-identity
// with the pre-placement arithmetic, context validation of the derived
// parameters, and the enumerator's thread-count determinism with the
// correlated model switched on.
#include <bit>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "ft/enumerator.h"
#include "ft/ft_cost.h"
#include "ft/mat_config.h"
#include "plan/plan.h"

namespace xdbft::ft {
namespace {

using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan ChainPlan() {
  PlanBuilder b("chain");
  auto s = b.Scan("s", 1e6, 100, 80.0);
  auto f = b.Unary(OpType::kFilter, "f", s, 70.0, 5.0);
  b.Unary(OpType::kHashAggregate, "agg", f, 50.0, 5.0);
  return std::move(b).Build();
}

Plan JoinPlan() {
  PlanBuilder b("join");
  auto l = b.Scan("l", 1e6, 100, 60.0);
  auto r = b.Scan("r", 1e5, 50, 30.0);
  auto j = b.Binary(OpType::kHashJoin, "j", l, r, 90.0, 20.0);
  b.Unary(OpType::kHashAggregate, "agg", j, 40.0, 2.0);
  return std::move(b).Build();
}

FtCostContext BaseContext() {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(4, 600.0, 5.0);
  return ctx;
}

bool BitIdentical(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

TEST(ComputePlacementTest, InactiveParamsDegenerateToGroupZero) {
  // Called directly with inactive params, placement degenerates to one
  // group with unchanged costs (Estimate itself skips the call entirely
  // and leaves FtPlanEstimate::placement_groups empty).
  const Plan p = ChainPlan();
  auto cp = CollapsedPlan::Create(p, MaterializationConfig::AllMat(p));
  ASSERT_TRUE(cp.ok());
  PlacementParams pparams;  // one group, no correlation
  EXPECT_FALSE(pparams.active());
  const PlacementResult r =
      ComputePlacement(*cp, pparams, BaseContext().MakeFailureParams());
  ASSERT_EQ(r.groups.size(), cp->num_ops());
  for (size_t i = 0; i < cp->num_ops(); ++i) {
    EXPECT_EQ(r.groups[i], 0) << i;
    EXPECT_TRUE(BitIdentical(
        r.placed_cost[i],
        cp->op(static_cast<CollapsedId>(i)).total_cost()))
        << i;
    EXPECT_TRUE(BitIdentical(r.refetch_cost[i], 0.0)) << i;
  }
}

TEST(ComputePlacementTest, DeterministicAcrossCalls) {
  const Plan p = JoinPlan();
  auto cp = CollapsedPlan::Create(p, MaterializationConfig::AllMat(p));
  ASSERT_TRUE(cp.ok());
  FtCostContext ctx = BaseContext();
  ctx.cluster.num_placement_groups = 3;
  ctx.cluster.burst_mtbf_seconds = 300.0;
  const PlacementParams pparams = ctx.MakePlacementParams();
  ASSERT_TRUE(pparams.active());
  const FailureParams fparams = ctx.MakeFailureParams();
  const PlacementResult a = ComputePlacement(*cp, pparams, fparams);
  const PlacementResult b = ComputePlacement(*cp, pparams, fparams);
  ASSERT_EQ(a.groups.size(), cp->num_ops());
  EXPECT_EQ(a.groups, b.groups);
  ASSERT_EQ(a.placed_cost.size(), b.placed_cost.size());
  for (size_t i = 0; i < a.placed_cost.size(); ++i) {
    EXPECT_TRUE(BitIdentical(a.placed_cost[i], b.placed_cost[i])) << i;
    EXPECT_TRUE(BitIdentical(a.refetch_cost[i], b.refetch_cost[i])) << i;
  }
}

TEST(ComputePlacementTest, NoPreferenceTiesBreakToLowestGroup) {
  // With no remote-read penalty and no correlated share, every group costs
  // the same — the deterministic tie-break must pick group 0 everywhere.
  const Plan p = ChainPlan();
  auto cp = CollapsedPlan::Create(p, MaterializationConfig::AllMat(p));
  ASSERT_TRUE(cp.ok());
  PlacementParams pparams;
  pparams.num_groups = 4;
  pparams.remote_read_penalty = 0.0;
  pparams.burst_failure_share = 0.0;
  ASSERT_TRUE(pparams.active());
  const PlacementResult r =
      ComputePlacement(*cp, pparams, BaseContext().MakeFailureParams());
  ASSERT_EQ(r.groups.size(), cp->num_ops());
  for (int g : r.groups) EXPECT_EQ(g, 0);
}

TEST(ComputePlacementTest, RemotePenaltyCoPlacesChain) {
  // A pure remote-read penalty (no correlated failures) makes every
  // operator want to sit with its inputs: the whole chain co-places.
  const Plan p = ChainPlan();
  auto cp = CollapsedPlan::Create(p, MaterializationConfig::AllMat(p));
  ASSERT_TRUE(cp.ok());
  PlacementParams pparams;
  pparams.num_groups = 4;
  pparams.remote_read_penalty = 0.5;
  const PlacementResult r =
      ComputePlacement(*cp, pparams, BaseContext().MakeFailureParams());
  ASSERT_EQ(r.groups.size(), cp->num_ops());
  for (size_t i = 0; i < r.groups.size(); ++i) {
    EXPECT_EQ(r.groups[i], r.groups[0]) << i;
    EXPECT_TRUE(BitIdentical(r.refetch_cost[i], 0.0)) << i;
  }
}

TEST(ComputePlacementTest, CorrelatedShareSpreadsAwayFromInputs) {
  // With free remote reads but a correlated-failure share, co-placing a
  // consumer with its materialized input charges the input's re-fetch on
  // every recovery attempt — the consumer moves to another group.
  const Plan p = ChainPlan();
  auto cp = CollapsedPlan::Create(p, MaterializationConfig::AllMat(p));
  ASSERT_TRUE(cp.ok());
  FtCostContext ctx = BaseContext();
  ctx.cluster.num_placement_groups = 4;
  ctx.cluster.remote_read_penalty = 0.0;
  ctx.cluster.burst_mtbf_seconds = 120.0;  // heavy correlation
  const PlacementResult r = ComputePlacement(
      *cp, ctx.MakePlacementParams(), ctx.MakeFailureParams());
  ASSERT_EQ(r.groups.size(), cp->num_ops());
  bool spread_somewhere = false;
  for (CollapsedId id = 0; id < static_cast<CollapsedId>(cp->num_ops());
       ++id) {
    for (CollapsedId input : cp->op(id).inputs) {
      // Inputs with tm == 0 (scans) cost nothing to re-fetch; every group
      // ties and the tie-break keeps them together. Materialized inputs
      // must be avoided.
      if (cp->op(input).materialize_cost <= 0.0) continue;
      EXPECT_NE(r.groups[static_cast<size_t>(id)],
                r.groups[static_cast<size_t>(input)])
          << "op " << id << " co-placed with input " << input;
      spread_somewhere = true;
    }
    EXPECT_TRUE(
        BitIdentical(r.refetch_cost[static_cast<size_t>(id)], 0.0));
  }
  EXPECT_TRUE(spread_somewhere);
}

TEST(FtCostModelTest, InactivePlacementEstimateHasNoGroups) {
  const Plan p = ChainPlan();
  FtCostModel model(BaseContext());
  auto est = model.Estimate(p, MaterializationConfig::AllMat(p));
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->placement_groups.empty());
}

TEST(FtCostModelTest, ActivePlacementEstimatePopulatesGroups) {
  const Plan p = ChainPlan();
  FtCostContext ctx = BaseContext();
  ctx.cluster.num_placement_groups = 2;
  ctx.cluster.burst_mtbf_seconds = 300.0;
  FtCostModel model(ctx);
  const MaterializationConfig config = MaterializationConfig::AllMat(p);
  auto est = model.Estimate(p, config);
  ASSERT_TRUE(est.ok());
  auto cp = CollapsedPlan::Create(p, config, ctx.model.pipe_constant);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(est->placement_groups.size(), cp->num_ops());
}

TEST(FtCostModelTest, PenaltyFreePlacementMatchesBaseBitwise) {
  // Placement groups alone (no penalty, no correlation) must not move the
  // estimate by even one ulp: the enumeration with correlation disabled
  // stays bit-identical to the pre-placement model.
  const Plan p = JoinPlan();
  FtCostContext base = BaseContext();
  FtCostContext placed = base;
  placed.cluster.num_placement_groups = 4;
  placed.cluster.remote_read_penalty = 0.0;
  const MaterializationConfig config = MaterializationConfig::AllMat(p);
  auto a = FtCostModel(base).Estimate(p, config);
  auto b = FtCostModel(placed).Estimate(p, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(BitIdentical(a->dominant_cost, b->dominant_cost))
      << a->dominant_cost << " vs " << b->dominant_cost;
}

TEST(FtCostModelTest, BurstsNeverLowerTheEstimate) {
  const Plan p = JoinPlan();
  const MaterializationConfig config = MaterializationConfig::AllMat(p);
  FtCostContext base = BaseContext();
  auto independent = FtCostModel(base).Estimate(p, config);
  ASSERT_TRUE(independent.ok());
  double prev = independent->dominant_cost;
  for (double interval : {4800.0, 1200.0, 300.0, 75.0}) {
    FtCostContext bursty = base;
    bursty.cluster.burst_mtbf_seconds = interval;
    auto est = FtCostModel(bursty).Estimate(p, config);
    ASSERT_TRUE(est.ok());
    EXPECT_GE(est->dominant_cost, prev * (1.0 - 1e-12)) << interval;
    prev = est->dominant_cost;
  }
}

TEST(FtCostContextTest, ValidateRejectsDerivedOverflow) {
  // mtbf_seconds and cost_constant both finite, but their product (the
  // derived cost-unit MTBF) overflows to inf — Validate must catch it.
  FtCostContext ctx = BaseContext();
  ctx.cluster.mtbf_seconds = 1e300;
  ctx.model.cost_constant = 1e300;
  EXPECT_FALSE(ctx.Validate().ok());
}

TEST(FtCostContextTest, ValidateRejectsBadBurstCluster) {
  FtCostContext ctx = BaseContext();
  ctx.cluster.burst_mtbf_seconds = -10.0;
  EXPECT_FALSE(ctx.Validate().ok());
  ctx = BaseContext();
  ctx.cluster.burst_mtbf_seconds = 300.0;
  ctx.cluster.burst_fanout = 0.0;
  EXPECT_FALSE(ctx.Validate().ok());
  ctx = BaseContext();
  ctx.cluster.num_placement_groups = 0;
  EXPECT_FALSE(ctx.Validate().ok());
  ctx = BaseContext();
  ctx.cluster.remote_read_penalty =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ctx.Validate().ok());
}

TEST(EnumerationOptionsTest, ValidateRejectsBadKnobs) {
  EnumerationOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.num_threads = -1;
  EXPECT_FALSE(opts.Validate().ok());
  opts = EnumerationOptions{};
  opts.max_free_operators = 63;
  EXPECT_FALSE(opts.Validate().ok());
  opts.max_free_operators = -1;
  EXPECT_FALSE(opts.Validate().ok());
}

TEST(CorrelatedEnumerationTest, BitIdenticalAtAnyThreadCount) {
  // The acceptance bar for the placement-aware search: with bursts and
  // placement on, FindBest returns the same configuration and the same
  // cost bits at every worker count.
  const Plan p = JoinPlan();
  FtCostContext ctx = BaseContext();
  ctx.cluster.burst_mtbf_seconds = 240.0;
  ctx.cluster.burst_fanout = 0.5;
  ctx.cluster.num_placement_groups = 2;
  EnumerationOptions seq;
  seq.num_threads = 1;
  FtPlanEnumerator sequential(ctx, seq);
  auto golden = sequential.FindBest(p);
  ASSERT_TRUE(golden.ok()) << golden.status();
  EXPECT_FALSE(golden->placement_groups.empty());
  for (int threads : {2, 4, 0}) {
    EnumerationOptions par;
    par.num_threads = threads;
    FtPlanEnumerator parallel(ctx, par);
    auto got = parallel.FindBest(p);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->config == golden->config) << threads;
    EXPECT_EQ(got->placement_groups, golden->placement_groups) << threads;
    EXPECT_TRUE(BitIdentical(got->estimated_cost, golden->estimated_cost))
        << threads << ": " << got->estimated_cost << " vs "
        << golden->estimated_cost;
  }
}

TEST(CorrelatedEnumerationTest, BurstsCanChangeTheChosenPlan) {
  // The correlated model is not just a scalar on top of the independent
  // one: under heavy correlation checkpoints pay for themselves sooner.
  // (This documents that the knob is live; the specific flip point is
  // plan-dependent.)
  const Plan p = ChainPlan();
  FtCostContext calm = BaseContext();
  calm.cluster.mtbf_seconds = 1.0e7;
  FtCostContext stormy = calm;
  stormy.cluster.burst_mtbf_seconds = 40.0;
  FtPlanEnumerator calm_enum(calm);
  FtPlanEnumerator stormy_enum(stormy);
  auto calm_best = calm_enum.FindBest(p);
  auto stormy_best = stormy_enum.FindBest(p);
  ASSERT_TRUE(calm_best.ok());
  ASSERT_TRUE(stormy_best.ok());
  EXPECT_FALSE(stormy_best->config == calm_best->config);
}

}  // namespace
}  // namespace xdbft::ft
