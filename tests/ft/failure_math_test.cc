#include "ft/failure_math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/math_util.h"

namespace xdbft::ft {
namespace {

TEST(FailureMathTest, SuccessProbabilityBasics) {
  EXPECT_DOUBLE_EQ(SuccessProbability(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(SuccessProbability(-1.0, 100.0), 1.0);
  EXPECT_NEAR(SuccessProbability(100.0, 100.0), std::exp(-1.0), 1e-12);
  EXPECT_GT(SuccessProbability(1.0, 100.0), SuccessProbability(2.0, 100.0));
}

TEST(FailureMathTest, EtaGammaComplementary) {
  for (double t : {0.5, 5.0, 50.0, 500.0}) {
    EXPECT_NEAR(SuccessProbability(t, 60.0) + FailureProbability(t, 60.0),
                1.0, 1e-12);
  }
}

// Table 2 of the paper: MTBF_cost = 60, t(c) in {4, 3, 1, 2}.
TEST(FailureMathTest, PaperTable2Gamma) {
  EXPECT_NEAR(SuccessProbability(4.0, 60.0), 0.94, 0.005);
  EXPECT_NEAR(SuccessProbability(3.0, 60.0), 0.95, 0.005);
  EXPECT_NEAR(SuccessProbability(1.0, 60.0), 0.98, 0.005);
  EXPECT_NEAR(SuccessProbability(2.0, 60.0), 0.96, 0.0075);
}

TEST(FailureMathTest, PaperTable2WastedTime) {
  // w(c) ~= t(c)/2 for MTBF > t (Eq. 4).
  EXPECT_DOUBLE_EQ(WastedTimeApprox(4.0), 2.0);
  EXPECT_DOUBLE_EQ(WastedTimeApprox(3.0), 1.5);
  EXPECT_DOUBLE_EQ(WastedTimeApprox(1.0), 0.5);
  EXPECT_DOUBLE_EQ(WastedTimeApprox(2.0), 1.0);
}

TEST(FailureMathTest, PaperTable2Attempts) {
  // Only the longest operator (t=4) needs additional attempts at S=0.95;
  // exact value with unrounded eta is ~0.0929 (the paper's 0.0648 comes
  // from rounding gamma to 0.94 first).
  const double a4 = ExpectedAttempts(4.0, 60.0, 0.95);
  EXPECT_NEAR(a4, 0.0929, 0.001);
  EXPECT_DOUBLE_EQ(ExpectedAttempts(3.0, 60.0, 0.95), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedAttempts(1.0, 60.0, 0.95), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedAttempts(2.0, 60.0, 0.95), 0.0);
}

TEST(FailureMathTest, PaperTable2TotalRuntime) {
  FailureParams p;
  p.mtbf_cost = 60.0;
  p.mttr_cost = 0.0;
  p.success_target = 0.95;
  EXPECT_NEAR(OperatorTotalRuntime(4.0, p), 4.186, 0.002);
  EXPECT_DOUBLE_EQ(OperatorTotalRuntime(3.0, p), 3.0);
  EXPECT_DOUBLE_EQ(OperatorTotalRuntime(1.0, p), 1.0);
  EXPECT_DOUBLE_EQ(OperatorTotalRuntime(2.0, p), 2.0);
}

TEST(FailureMathTest, WastedTimeExactConvergesToHalf) {
  // Limit analysis in the paper: w(c) -> t/2 as MTBF -> infinity, and
  // already for MTBF > t the exact value is close to t/2.
  const double t = 10.0;
  EXPECT_NEAR(WastedTimeExact(t, 1e9), t / 2.0, 1e-6);
  EXPECT_NEAR(WastedTimeExact(t, 20.0), t / 2.0, t * 0.05);
}

TEST(FailureMathTest, WastedTimeExactBelowHalf) {
  // The exact expected waste is always below t/2 (failures arrive earlier
  // in expectation under the exponential law).
  for (double t : {0.1, 1.0, 10.0, 100.0}) {
    for (double mtbf : {1.0, 10.0, 1000.0}) {
      EXPECT_LE(WastedTimeExact(t, mtbf), t / 2.0 + 1e-12)
          << "t=" << t << " mtbf=" << mtbf;
      EXPECT_GE(WastedTimeExact(t, mtbf), 0.0);
    }
  }
}

TEST(FailureMathTest, WastedTimeExactSmallArgumentStable) {
  // t/MTBF ~ 1e-12 must not lose precision (naive formula would).
  const double w = WastedTimeExact(1e-3, 1e9);
  EXPECT_NEAR(w, 5e-4, 1e-9);
}

TEST(FailureMathTest, WastedTimeSelectsFormula) {
  FailureParams p;
  p.mtbf_cost = 10.0;
  p.exact_wasted_time = false;
  EXPECT_DOUBLE_EQ(WastedTime(6.0, p), 3.0);
  p.exact_wasted_time = true;
  EXPECT_LT(WastedTime(6.0, p), 3.0);
}

TEST(FailureMathTest, AttemptsMonotoneInRuntime) {
  double prev = -1.0;
  for (double t = 1.0; t <= 200.0; t += 10.0) {
    const double a = ExpectedAttempts(t, 60.0, 0.95);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

TEST(FailureMathTest, AttemptsMonotoneInMtbf) {
  double prev = std::numeric_limits<double>::infinity();
  for (double mtbf : {10.0, 20.0, 40.0, 80.0, 160.0}) {
    const double a = ExpectedAttempts(30.0, mtbf, 0.95);
    EXPECT_LE(a, prev);
    prev = a;
  }
}

TEST(FailureMathTest, AttemptsZeroWhenNoFailuresPossible) {
  EXPECT_DOUBLE_EQ(ExpectedAttempts(0.0, 60.0, 0.95), 0.0);
}

TEST(FailureMathTest, SuccessWithinAttemptsMatchesTarget) {
  // By construction, running a(c) extra attempts achieves at least S.
  for (double t : {30.0, 60.0, 120.0, 600.0}) {
    const double a = ExpectedAttempts(t, 60.0, 0.95);
    EXPECT_GE(SuccessWithinAttempts(t, 60.0, a), 0.95 - 1e-9) << t;
  }
}

TEST(FailureMathTest, TotalRuntimeIncludesMttr) {
  FailureParams p;
  p.mtbf_cost = 60.0;
  p.success_target = 0.95;
  p.mttr_cost = 0.0;
  const double without = OperatorTotalRuntime(40.0, p);
  p.mttr_cost = 10.0;
  const double with = OperatorTotalRuntime(40.0, p);
  const double a = ExpectedAttempts(40.0, 60.0, 0.95);
  EXPECT_NEAR(with - without, a * 10.0, 1e-9);
}

// Figure 1: probability of success for the four cluster setups. At 60 min
// runtime: cluster 1 (MTBF=1h, n=100) is ~0; cluster 4 (MTBF=1wk, n=10)
// is high.
TEST(FailureMathTest, Fig1ClusterSetups) {
  const double hour = 3600.0, week = 7 * 86400.0;
  const double t = 3600.0;  // 60-minute query
  EXPECT_LT(QuerySuccessProbability(t, hour, 100), 1e-10);
  EXPECT_NEAR(QuerySuccessProbability(t, week, 100), std::exp(-100.0 / 168),
              1e-9);
  EXPECT_NEAR(QuerySuccessProbability(t, hour, 10), std::exp(-10.0), 1e-9);
  EXPECT_GT(QuerySuccessProbability(t, week, 10), 0.93);
}

TEST(FailureMathTest, ValidateRejectsBadParams) {
  FailureParams p;
  EXPECT_TRUE(p.Validate().ok());
  p.mtbf_cost = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = FailureParams{};
  p.mttr_cost = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = FailureParams{};
  p.success_target = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = FailureParams{};
  p.success_target = 1.0;
  EXPECT_FALSE(p.Validate().ok());
}

// --- Edge-case regression sweep (bugfix PR) ---

// num_nodes <= 0: no nodes can fail, P = 1 (used to divide by zero).
TEST(FailureMathTest, QuerySuccessProbabilityDegenerateNodes) {
  EXPECT_DOUBLE_EQ(QuerySuccessProbability(100.0, 3600.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(QuerySuccessProbability(100.0, 3600.0, -3), 1.0);
}

// Non-positive / non-finite per-node MTBF: failures are certain.
TEST(FailureMathTest, QuerySuccessProbabilityDegenerateMtbf) {
  EXPECT_DOUBLE_EQ(QuerySuccessProbability(100.0, 0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(QuerySuccessProbability(100.0, -5.0, 10), 0.0);
  const double nan = std::nan("");
  EXPECT_DOUBLE_EQ(QuerySuccessProbability(100.0, nan, 10), 0.0);
}

// success_target == 1.0: ln(1 - S) used to be -inf; the clamp one ulp
// below 1 keeps a(c) finite for any finite t / mtbf.
TEST(FailureMathTest, ExpectedAttemptsAtCertainSuccessTarget) {
  const double a = ExpectedAttempts(30.0, 60.0, 1.0);
  EXPECT_TRUE(std::isfinite(a)) << a;
  EXPECT_GE(a, ExpectedAttempts(30.0, 60.0, 0.999999));
}

// t >> mtbf: e^{t/MTBF} used to overflow to inf and w(c) became NaN
// (inf - t/inf). Eq. 3 saturates to MTBF in that regime.
TEST(FailureMathTest, WastedTimeExactSaturatesForLongOperators) {
  EXPECT_DOUBLE_EQ(WastedTimeExact(1e6, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(WastedTimeExact(1e300, 1e-3), 1e-3);
  EXPECT_TRUE(std::isfinite(WastedTimeExact(800.0, 1.0)));
}

// Negative attempts clamp to -1 (zero total attempts -> P = 0);
// fractional attempts interpolate monotonically.
TEST(FailureMathTest, SuccessWithinAttemptsNegativeAndFractional) {
  EXPECT_DOUBLE_EQ(SuccessWithinAttempts(30.0, 60.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(SuccessWithinAttempts(30.0, 60.0, -7.5), 0.0);
  const double p0 = SuccessWithinAttempts(30.0, 60.0, 0.0);
  const double ph = SuccessWithinAttempts(30.0, 60.0, 0.5);
  const double p1 = SuccessWithinAttempts(30.0, 60.0, 1.0);
  EXPECT_GT(p0, 0.0);
  EXPECT_LT(p0, ph);
  EXPECT_LT(ph, p1);
}

// --- Correlated-failure model ---

TEST(FailureMathTest, EffectiveMtbfIsExactWithoutBursts) {
  FailureParams p;
  p.mtbf_cost = 12345.678;
  // Bit-identical, not just close: no 1/(1/x) round-trip.
  EXPECT_EQ(p.effective_mtbf_cost(), p.mtbf_cost);
  EXPECT_DOUBLE_EQ(p.burst_failure_share(), 0.0);
}

TEST(FailureMathTest, EffectiveMtbfCombinesHazards) {
  FailureParams p;
  p.mtbf_cost = 100.0;
  p.burst_rate_cost = 1.0 / 100.0;  // same rate again
  p.burst_hit_fraction = 1.0;
  EXPECT_NEAR(p.effective_mtbf_cost(), 50.0, 1e-12);
  EXPECT_NEAR(p.burst_failure_share(), 0.5, 1e-12);
  p.burst_hit_fraction = 0.5;  // half the bursts hit this operator
  EXPECT_NEAR(p.effective_mtbf_cost(), 200.0 / 3.0, 1e-12);
  EXPECT_NEAR(p.burst_failure_share(), 1.0 / 3.0, 1e-12);
}

TEST(FailureMathTest, BurstsRaiseTotalRuntime) {
  FailureParams independent;
  independent.mtbf_cost = 60.0;
  FailureParams bursty = independent;
  bursty.burst_rate_cost = 1.0 / 120.0;
  for (double t : {5.0, 20.0, 60.0}) {
    EXPECT_GE(OperatorTotalRuntime(t, bursty),
              OperatorTotalRuntime(t, independent))
        << t;
  }
  // Zero rate is the independent model bit-for-bit.
  bursty.burst_rate_cost = 0.0;
  EXPECT_EQ(OperatorTotalRuntime(17.0, bursty),
            OperatorTotalRuntime(17.0, independent));
}

TEST(FailureMathTest, ExtraPerAttemptChargeZeroIsIdentity) {
  FailureParams p;
  p.mtbf_cost = 60.0;
  // extra == 0 must reproduce the 2-arg overload bit-for-bit.
  EXPECT_EQ(OperatorTotalRuntime(40.0, p, 0.0),
            OperatorTotalRuntime(40.0, p));
  EXPECT_GT(OperatorTotalRuntime(40.0, p, 3.0),
            OperatorTotalRuntime(40.0, p));
}

TEST(FailureMathTest, QuerySuccessProbabilityCorrelatedDegrades) {
  // Zero burst rate: exactly the independent value.
  EXPECT_EQ(QuerySuccessProbabilityCorrelated(100.0, 3600.0, 10, 0.0),
            QuerySuccessProbability(100.0, 3600.0, 10));
  // A positive cluster-wide rate lowers the success probability.
  EXPECT_LT(QuerySuccessProbabilityCorrelated(100.0, 3600.0, 10, 0.01),
            QuerySuccessProbability(100.0, 3600.0, 10));
}

TEST(FailureMathTest, ValidateRejectsBadBurstParams) {
  FailureParams p;
  p.burst_rate_cost = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = FailureParams{};
  p.burst_rate_cost = std::nan("");
  EXPECT_FALSE(p.Validate().ok());
  p = FailureParams{};
  p.burst_rate_cost = 0.01;
  p.burst_hit_fraction = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p.burst_hit_fraction = 1.5;
  EXPECT_FALSE(p.Validate().ok());
  p.burst_hit_fraction = 0.5;
  EXPECT_TRUE(p.Validate().ok());
}

// Non-finite mtbf/mttr must be rejected, not priced as "never fails".
TEST(FailureMathTest, ValidateRejectsNonFinite) {
  FailureParams p;
  p.mtbf_cost = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(p.Validate().ok());
  p = FailureParams{};
  p.mttr_cost = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(p.Validate().ok());
  p = FailureParams{};
  p.mtbf_cost = std::nan("");
  EXPECT_FALSE(p.Validate().ok());
}

// Property sweep: T(c) is monotone non-decreasing in t for a range of
// MTBFs (a longer operator can never have a smaller 95th-percentile
// runtime).
class TotalRuntimeMonotone : public ::testing::TestWithParam<double> {};

TEST_P(TotalRuntimeMonotone, MonotoneInT) {
  FailureParams p;
  p.mtbf_cost = GetParam();
  p.mttr_cost = 1.0;
  double prev = 0.0;
  for (double t = 0.0; t <= 400.0; t += 2.0) {
    const double total = OperatorTotalRuntime(t, p);
    EXPECT_GE(total, prev - 1e-9) << "t=" << t << " mtbf=" << GetParam();
    prev = total;
  }
}

INSTANTIATE_TEST_SUITE_P(Mtbfs, TotalRuntimeMonotone,
                         ::testing::Values(10.0, 60.0, 360.0, 3600.0,
                                           86400.0));

}  // namespace
}  // namespace xdbft::ft
