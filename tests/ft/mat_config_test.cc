#include "ft/mat_config.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace xdbft::ft {
namespace {

using plan::MatConstraint;
using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan ChainPlan() {
  PlanBuilder b("chain");
  const OpId s = b.Scan("R", 100, 8, 1.0);
  const OpId f = b.Unary(OpType::kFilter, "f", s, 1.0, 0.5);
  const OpId j = b.Unary(OpType::kMapUdf, "m", f, 1.0, 0.5);
  b.Unary(OpType::kHashAggregate, "agg", j, 1.0, 0.1);
  return std::move(b).Build();
}

TEST(MatConfigTest, NoMatKeepsOnlySink) {
  Plan p = ChainPlan();
  const auto c = MaterializationConfig::NoMat(p);
  EXPECT_FALSE(c.materialized(0));
  EXPECT_FALSE(c.materialized(1));
  EXPECT_FALSE(c.materialized(2));
  EXPECT_TRUE(c.materialized(3));  // sink always materializes
  EXPECT_EQ(c.NumMaterialized(), 1u);
  EXPECT_TRUE(c.Validate(p).ok());
}

TEST(MatConfigTest, AllMatMaterializesEverything) {
  Plan p = ChainPlan();
  const auto c = MaterializationConfig::AllMat(p);
  EXPECT_EQ(c.NumMaterialized(), 4u);
  EXPECT_TRUE(c.Validate(p).ok());
}

TEST(MatConfigTest, AllMatRespectsNeverMaterialize) {
  Plan p = ChainPlan();
  p.mutable_node(1).constraint = MatConstraint::kNeverMaterialize;
  const auto c = MaterializationConfig::AllMat(p);
  EXPECT_FALSE(c.materialized(1));
  EXPECT_TRUE(c.materialized(0));
  EXPECT_TRUE(c.Validate(p).ok());
}

TEST(MatConfigTest, NoMatRespectsAlwaysMaterialize) {
  Plan p = ChainPlan();
  p.mutable_node(2).constraint = MatConstraint::kAlwaysMaterialize;
  const auto c = MaterializationConfig::NoMat(p);
  EXPECT_TRUE(c.materialized(2));
  EXPECT_TRUE(c.Validate(p).ok());
}

TEST(MatConfigTest, EnumerableOperatorsExcludesSinkAndBound) {
  Plan p = ChainPlan();
  EXPECT_EQ(EnumerableOperators(p), (std::vector<OpId>{0, 1, 2}));
  p.mutable_node(1).constraint = MatConstraint::kNeverMaterialize;
  EXPECT_EQ(EnumerableOperators(p), (std::vector<OpId>{0, 2}));
}

TEST(MatConfigTest, FromFreeMaskEnumeratesAllCombinations) {
  Plan p = ChainPlan();  // 3 enumerable ops -> 8 configs
  std::set<std::string> seen;
  for (uint64_t mask = 0; mask < 8; ++mask) {
    const auto c = MaterializationConfig::FromFreeMask(p, mask);
    EXPECT_TRUE(c.Validate(p).ok()) << mask;
    seen.insert(c.ToString());
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(MatConfigTest, FromFreeMaskBitOrderMatchesAscendingIds) {
  Plan p = ChainPlan();
  const auto c = MaterializationConfig::FromFreeMask(p, 0b010);
  EXPECT_FALSE(c.materialized(0));
  EXPECT_TRUE(c.materialized(1));
  EXPECT_FALSE(c.materialized(2));
}

TEST(MatConfigTest, ValidateCatchesUnmaterializedSink) {
  Plan p = ChainPlan();
  MaterializationConfig c(p.num_nodes());
  EXPECT_FALSE(c.Validate(p).ok());
}

TEST(MatConfigTest, ValidateCatchesSizeMismatch) {
  Plan p = ChainPlan();
  MaterializationConfig c(2);
  EXPECT_FALSE(c.Validate(p).ok());
}

TEST(MatConfigTest, ValidateCatchesViolatedBound) {
  Plan p = ChainPlan();
  p.mutable_node(1).constraint = MatConstraint::kNeverMaterialize;
  auto c = MaterializationConfig::NoMat(p);
  c.set_materialized(1, true);
  EXPECT_FALSE(c.Validate(p).ok());

  p.mutable_node(1).constraint = MatConstraint::kAlwaysMaterialize;
  auto c2 = MaterializationConfig::AllMat(p);
  c2.set_materialized(1, false);
  EXPECT_FALSE(c2.Validate(p).ok());
}

TEST(MatConfigTest, ToStringListsMaterializedOps) {
  Plan p = ChainPlan();
  auto c = MaterializationConfig::NoMat(p);
  EXPECT_EQ(c.ToString(), "{m: 3}");
  c.set_materialized(1, true);
  EXPECT_EQ(c.ToString(), "{m: 1,3}");
}

TEST(MatConfigTest, EqualityOperator) {
  Plan p = ChainPlan();
  EXPECT_TRUE(MaterializationConfig::NoMat(p) ==
              MaterializationConfig::NoMat(p));
  EXPECT_FALSE(MaterializationConfig::NoMat(p) ==
               MaterializationConfig::AllMat(p));
}

}  // namespace
}  // namespace xdbft::ft
