// The parallel enumerator's contract (DESIGN.md "Concurrency model"):
// FindBest returns a bit-identical [P, M_P] and cost at every thread
// count, and the deterministic stats (space sizes, rule-1/2 marks)
// aggregate exactly from the per-thread snapshots. Exercised on TPC-H Q3
// and Q5 single plans, the Q5 top-k join-order workload, and random
// chains. This suite is the TSan CI leg's main concurrency workload.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "ft/enumerator.h"
#include "obs/trace.h"
#include "optimizer/join_enumerator.h"
#include "tpch/q5_join_graph.h"
#include "tpch/queries.h"

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

FtCostContext MakeContext(double mtbf, int nodes = 10) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(nodes, mtbf, 1.0);
  return ctx;
}

Plan TpchPlan(tpch::TpchQuery q, double sf = 10.0) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = sf;
  auto plan = tpch::BuildQuery(q, cfg);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

std::vector<Plan> Q5TopKPlans(int k) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  auto graph = tpch::MakeQ5JoinGraph(cfg);
  EXPECT_TRUE(graph.ok());
  const auto params = tpch::MakePhysicalCostParams(cfg);
  optimizer::JoinTreeArena arena;
  auto roots = optimizer::EnumerateTopKJoinTrees(*graph, k, params, &arena);
  EXPECT_TRUE(roots.ok());
  std::vector<Plan> plans;
  for (int root : *roots) {
    auto p = optimizer::EmitPlan(arena, root, *graph, params);
    if (p.ok()) plans.push_back(std::move(*p));
  }
  return plans;
}

EnumerationOptions WithThreads(int threads) {
  EnumerationOptions opts;
  opts.num_threads = threads;
  return opts;
}

// Satellite contract: sequential vs 2/4/8-thread enumeration returns the
// identical [P, M_P] and cost on Q3 and Q5.
TEST(ParallelEnumeratorTest, DeterministicAcrossThreadCountsOnQ3AndQ5) {
  for (tpch::TpchQuery q : {tpch::TpchQuery::kQ3, tpch::TpchQuery::kQ5}) {
    const Plan plan = TpchPlan(q);
    for (double mtbf : {3600.0, 86400.0}) {
      FtPlanEnumerator sequential(MakeContext(mtbf), WithThreads(1));
      auto base = sequential.FindBest(plan);
      ASSERT_TRUE(base.ok()) << base.status();
      for (int threads : {2, 4, 8}) {
        FtPlanEnumerator parallel(MakeContext(mtbf), WithThreads(threads));
        auto got = parallel.FindBest(plan);
        ASSERT_TRUE(got.ok()) << got.status();
        EXPECT_EQ(got->plan_index, base->plan_index)
            << "threads=" << threads << " mtbf=" << mtbf;
        EXPECT_TRUE(got->config == base->config)
            << "threads=" << threads << " mtbf=" << mtbf;
        EXPECT_EQ(got->estimated_cost, base->estimated_cost)  // bit-identical
            << "threads=" << threads << " mtbf=" << mtbf;
        EXPECT_EQ(got->dominant_path, base->dominant_path);
      }
    }
  }
}

TEST(ParallelEnumeratorTest, DeterministicOnQ5TopKWorkload) {
  const std::vector<Plan> plans = Q5TopKPlans(16);
  ASSERT_GT(plans.size(), 1u);
  FtPlanEnumerator sequential(MakeContext(3600.0), WithThreads(1));
  auto base = sequential.FindBest(plans);
  ASSERT_TRUE(base.ok()) << base.status();
  for (int threads : {2, 4, 8}) {
    FtPlanEnumerator parallel(MakeContext(3600.0), WithThreads(threads));
    auto got = parallel.FindBest(plans);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->plan_index, base->plan_index) << "threads=" << threads;
    EXPECT_TRUE(got->config == base->config) << "threads=" << threads;
    EXPECT_EQ(got->estimated_cost, base->estimated_cost)
        << "threads=" << threads;
  }
}

Plan RandomChain(Rng& rng, int trial) {
  PlanBuilder b("rand" + std::to_string(trial));
  const int length = static_cast<int>(rng.NextInt(3, 8));
  OpId prev = b.Scan("src", 1e5, 64, rng.NextDouble() * 10.0);
  b.plan().mutable_node(prev).materialize_cost = rng.NextDouble() * 5.0;
  for (int i = 0; i < length; ++i) {
    prev = b.Unary(OpType::kFilter, "op" + std::to_string(i), prev,
                   rng.NextDouble() * 10.0, rng.NextDouble() * 5.0);
  }
  return std::move(b).Build();
}

TEST(ParallelEnumeratorTest, DeterministicOnRandomChains) {
  Rng rng(20260805);
  for (int trial = 0; trial < 15; ++trial) {
    const Plan p = RandomChain(rng, trial);
    const double mtbf = 5.0 + rng.NextDouble() * 500.0;
    FtPlanEnumerator sequential(MakeContext(mtbf, 1), WithThreads(1));
    FtPlanEnumerator parallel(MakeContext(mtbf, 1), WithThreads(4));
    auto base = sequential.FindBest(p);
    auto got = parallel.FindBest(p);
    ASSERT_TRUE(base.ok()) << base.status();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->config == base->config) << "trial=" << trial;
    EXPECT_EQ(got->estimated_cost, base->estimated_cost)
        << "trial=" << trial << " mtbf=" << mtbf;
  }
}

// Satellite contract: the deterministic counters must aggregate exactly
// from the per-thread snapshots — parallel totals equal the sequential
// run's (rule-3 counters are schedule-dependent by design and are checked
// as invariants instead).
TEST(ParallelEnumeratorTest, StatsAggregateExactlyUnderConcurrency) {
  const std::vector<Plan> plans = Q5TopKPlans(16);
  FtPlanEnumerator sequential(MakeContext(3600.0), WithThreads(1));
  ASSERT_TRUE(sequential.FindBest(plans).ok());
  const EnumerationStats& base = sequential.stats();
  for (int threads : {2, 8}) {
    FtPlanEnumerator parallel(MakeContext(3600.0), WithThreads(threads));
    ASSERT_TRUE(parallel.FindBest(plans).ok());
    const EnumerationStats& got = parallel.stats();
    EXPECT_EQ(got.candidate_plans, base.candidate_plans);
    EXPECT_EQ(got.total_ft_plans_unpruned, base.total_ft_plans_unpruned);
    EXPECT_EQ(got.ft_plans_enumerated, base.ft_plans_enumerated);
    EXPECT_EQ(got.rule1_ops_marked, base.rule1_ops_marked);
    EXPECT_EQ(got.rule2_ops_marked, base.rule2_ops_marked);
    // Schedule-dependent counters still obey the accounting identities.
    EXPECT_LE(got.rule3_rejections, got.ft_plans_enumerated);
    EXPECT_GE(got.rule3_rejections, got.rule3_early_stops);
    EXPECT_EQ(got.rule3_rejections,
              got.rule3_rpt_hits + got.rule3_tpt_hits + got.rule3_memo_hits);
    EXPECT_GT(got.tasks_executed, 1u);
  }
}

// With every pruning rule off there is no shared bound or memo, so even
// the path counters must match the sequential run exactly.
TEST(ParallelEnumeratorTest, NoPruningParallelCountsMatchSequentialExactly) {
  const Plan plan = TpchPlan(tpch::TpchQuery::kQ5);
  EnumerationOptions seq_opts = WithThreads(1);
  seq_opts.pruning = PruningOptions{false, false, false, false};
  EnumerationOptions par_opts = WithThreads(8);
  par_opts.pruning = seq_opts.pruning;
  FtPlanEnumerator sequential(MakeContext(3600.0), seq_opts);
  FtPlanEnumerator parallel(MakeContext(3600.0), par_opts);
  auto base = sequential.FindBest(plan);
  auto got = parallel.FindBest(plan);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->estimated_cost, base->estimated_cost);
  EXPECT_TRUE(got->config == base->config);
  EXPECT_EQ(parallel.stats().paths_evaluated,
            sequential.stats().paths_evaluated);
  EXPECT_EQ(parallel.stats().rule3_rejections, 0u);
}

TEST(ParallelEnumeratorTest, ZeroThreadsResolvesToHardwareConcurrency) {
  EXPECT_GE(FtPlanEnumerator::ResolveThreads(0), 1);
  EXPECT_EQ(FtPlanEnumerator::ResolveThreads(1), 1);
  EXPECT_EQ(FtPlanEnumerator::ResolveThreads(6), 6);
  const Plan plan = TpchPlan(tpch::TpchQuery::kQ3);
  FtPlanEnumerator enumerator(MakeContext(3600.0), WithThreads(0));
  EXPECT_TRUE(enumerator.FindBest(plan).ok());
}

TEST(ParallelEnumeratorTest, RecordsPerThreadTraceLanes) {
  obs::TraceRecorder trace;
  EnumerationOptions opts = WithThreads(2);
  opts.trace = &trace;
  opts.trace_pid = 7;
  FtPlanEnumerator enumerator(MakeContext(3600.0), opts);
  ASSERT_TRUE(enumerator.FindBest(Q5TopKPlans(8)).ok());
  // Thread-name metadata plus at least one "enum.chunk" span per task.
  EXPECT_GT(trace.num_events(), 3u);
  EXPECT_NE(trace.ToJson().find("enum.chunk"), std::string::npos);
  EXPECT_NE(trace.ToJson().find("enum worker 1"), std::string::npos);
}

TEST(ParallelEnumeratorTest, ErrorsSurfaceAtAnyThreadCount) {
  PlanBuilder b("wide");
  std::vector<OpId> scans;
  for (int i = 0; i < 30; ++i) {
    scans.push_back(b.Scan("s" + std::to_string(i), 10, 8, 1.0));
  }
  b.Nary(OpType::kUnion, "u", scans, 1.0, 0.1);
  const Plan p = std::move(b).Build();
  for (int threads : {1, 4}) {
    EnumerationOptions opts = WithThreads(threads);
    opts.pruning = PruningOptions{false, false, false, false};
    opts.max_free_operators = 10;
    FtPlanEnumerator enumerator(MakeContext(60.0), opts);
    EXPECT_FALSE(enumerator.FindBest(p).ok()) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace xdbft::ft
