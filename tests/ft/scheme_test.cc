#include "ft/scheme.h"

#include <gtest/gtest.h>

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan StarJoinPlan() {
  PlanBuilder b("star");
  const OpId fact = b.Scan("F", 1e7, 100, 8.0);
  const OpId d1 = b.Scan("D1", 1e4, 50, 0.5);
  const OpId d2 = b.Scan("D2", 1e4, 50, 0.5);
  const OpId j1 = b.Binary(OpType::kHashJoin, "j1", fact, d1, 4.0, 3.0);
  const OpId j2 = b.Binary(OpType::kHashJoin, "j2", j1, d2, 4.0, 3.0);
  b.Unary(OpType::kHashAggregate, "agg", j2, 1.0, 0.1);
  return std::move(b).Build();
}

FtCostContext MakeContext(double mtbf) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, mtbf, 1.0);
  return ctx;
}

TEST(SchemeTest, KindNames) {
  EXPECT_STREQ(SchemeKindName(SchemeKind::kAllMat), "all-mat");
  EXPECT_STREQ(SchemeKindName(SchemeKind::kNoMatLineage),
               "no-mat (lineage)");
  EXPECT_STREQ(SchemeKindName(SchemeKind::kNoMatRestart),
               "no-mat (restart)");
  EXPECT_STREQ(SchemeKindName(SchemeKind::kCostBased), "cost-based");
}

TEST(SchemeTest, AllMatMaterializesEverything) {
  auto sp = ApplyScheme(SchemeKind::kAllMat, StarJoinPlan(),
                        MakeContext(3600.0));
  ASSERT_TRUE(sp.ok()) << sp.status();
  EXPECT_EQ(sp->recovery, RecoveryMode::kFineGrained);
  EXPECT_EQ(sp->config.NumMaterialized(), 6u);
  EXPECT_GT(sp->estimated_cost, 0.0);
}

TEST(SchemeTest, NoMatLineageMaterializesOnlySink) {
  auto sp = ApplyScheme(SchemeKind::kNoMatLineage, StarJoinPlan(),
                        MakeContext(3600.0));
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->recovery, RecoveryMode::kFineGrained);
  EXPECT_EQ(sp->config.NumMaterialized(), 1u);
}

TEST(SchemeTest, NoMatRestartUsesFullRestart) {
  auto sp = ApplyScheme(SchemeKind::kNoMatRestart, StarJoinPlan(),
                        MakeContext(3600.0));
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->recovery, RecoveryMode::kFullRestart);
  EXPECT_EQ(sp->config.NumMaterialized(), 1u);
}

TEST(SchemeTest, CostBasedNeverWorseThanFixedSchemes) {
  // The cost-based estimate is the minimum over all configurations, hence
  // <= both all-mat and no-mat estimates under the same model.
  for (double mtbf : {60.0, 600.0, 3600.0, 86400.0}) {
    const Plan p = StarJoinPlan();
    const FtCostContext ctx = MakeContext(mtbf);
    auto cost_based = ApplyScheme(SchemeKind::kCostBased, p, ctx);
    auto all_mat = ApplyScheme(SchemeKind::kAllMat, p, ctx);
    auto no_mat = ApplyScheme(SchemeKind::kNoMatLineage, p, ctx);
    ASSERT_TRUE(cost_based.ok());
    ASSERT_TRUE(all_mat.ok());
    ASSERT_TRUE(no_mat.ok());
    EXPECT_LE(cost_based->estimated_cost,
              all_mat->estimated_cost + 1e-9)
        << "mtbf=" << mtbf;
    EXPECT_LE(cost_based->estimated_cost, no_mat->estimated_cost + 1e-9)
        << "mtbf=" << mtbf;
  }
}

TEST(SchemeTest, CostBasedAdaptsToMtbf) {
  const Plan p = StarJoinPlan();
  auto low_failure = ApplyScheme(SchemeKind::kCostBased, p,
                                 MakeContext(30 * 86400.0));
  auto high_failure = ApplyScheme(SchemeKind::kCostBased, p,
                                  MakeContext(60.0));
  ASSERT_TRUE(low_failure.ok());
  ASSERT_TRUE(high_failure.ok());
  EXPECT_GE(high_failure->config.NumMaterialized(),
            low_failure->config.NumMaterialized());
}

TEST(SchemeTest, CostBasedOverMultipleCandidates) {
  PlanBuilder cheap("cheap");
  OpId s = cheap.Scan("R", 1e5, 64, 1.0);
  cheap.Unary(OpType::kHashAggregate, "agg", s, 1.0, 0.1);
  Plan pc = std::move(cheap).Build();

  PlanBuilder costly("costly");
  s = costly.Scan("R", 1e5, 64, 5.0);
  costly.Unary(OpType::kHashAggregate, "agg", s, 5.0, 0.1);
  Plan pe = std::move(costly).Build();

  auto sp = ApplyCostBasedScheme({pe, pc}, MakeContext(3600.0));
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->plan.name(), "cheap");
}

TEST(SchemeTest, RejectsInvalidPlan) {
  Plan empty;
  EXPECT_FALSE(
      ApplyScheme(SchemeKind::kAllMat, empty, MakeContext(60.0)).ok());
}

TEST(SchemeTest, RejectsInvalidContext) {
  FtCostContext bad = MakeContext(60.0);
  bad.cluster.num_nodes = -1;
  EXPECT_FALSE(ApplyScheme(SchemeKind::kAllMat, StarJoinPlan(), bad).ok());
}

TEST(SchemeTest, EstimatesOrderedSensiblyUnderHighFailureRate) {
  // At a very low MTBF, no-mat has a (much) higher estimated runtime than
  // all-mat for this plan with cheap materializations.
  PlanBuilder b("chain");
  OpId prev = b.Scan("R", 1e6, 10, 5.0);
  for (int i = 0; i < 4; ++i) {
    prev = b.Unary(OpType::kFilter, "f" + std::to_string(i), prev, 5.0, 0.2);
  }
  Plan p = std::move(b).Build();
  const FtCostContext ctx = MakeContext(120.0);
  auto all_mat = ApplyScheme(SchemeKind::kAllMat, p, ctx);
  auto no_mat = ApplyScheme(SchemeKind::kNoMatLineage, p, ctx);
  ASSERT_TRUE(all_mat.ok());
  ASSERT_TRUE(no_mat.ok());
  EXPECT_LT(all_mat->estimated_cost, no_mat->estimated_cost);
}

}  // namespace
}  // namespace xdbft::ft
