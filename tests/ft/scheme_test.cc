#include "ft/scheme.h"

#include <gtest/gtest.h>

#include <vector>

#include "ft/collapsed_plan.h"
#include "ft/failure_math.h"

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan StarJoinPlan() {
  PlanBuilder b("star");
  const OpId fact = b.Scan("F", 1e7, 100, 8.0);
  const OpId d1 = b.Scan("D1", 1e4, 50, 0.5);
  const OpId d2 = b.Scan("D2", 1e4, 50, 0.5);
  const OpId j1 = b.Binary(OpType::kHashJoin, "j1", fact, d1, 4.0, 3.0);
  const OpId j2 = b.Binary(OpType::kHashJoin, "j2", j1, d2, 4.0, 3.0);
  b.Unary(OpType::kHashAggregate, "agg", j2, 1.0, 0.1);
  return std::move(b).Build();
}

FtCostContext MakeContext(double mtbf) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, mtbf, 1.0);
  return ctx;
}

TEST(SchemeTest, KindNames) {
  EXPECT_STREQ(SchemeKindName(SchemeKind::kAllMat), "all-mat");
  EXPECT_STREQ(SchemeKindName(SchemeKind::kNoMatLineage),
               "no-mat (lineage)");
  EXPECT_STREQ(SchemeKindName(SchemeKind::kNoMatRestart),
               "no-mat (restart)");
  EXPECT_STREQ(SchemeKindName(SchemeKind::kCostBased), "cost-based");
  EXPECT_STREQ(SchemeKindName(SchemeKind::kWriteAheadLineage),
               "write-ahead lineage");
}

TEST(SchemeTest, AllMatMaterializesEverything) {
  auto sp = ApplyScheme(SchemeKind::kAllMat, StarJoinPlan(),
                        MakeContext(3600.0));
  ASSERT_TRUE(sp.ok()) << sp.status();
  EXPECT_EQ(sp->recovery, RecoveryMode::kFineGrained);
  EXPECT_EQ(sp->config.NumMaterialized(), 6u);
  EXPECT_GT(sp->estimated_cost, 0.0);
}

TEST(SchemeTest, NoMatLineageMaterializesOnlySink) {
  auto sp = ApplyScheme(SchemeKind::kNoMatLineage, StarJoinPlan(),
                        MakeContext(3600.0));
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->recovery, RecoveryMode::kFineGrained);
  EXPECT_EQ(sp->config.NumMaterialized(), 1u);
}

TEST(SchemeTest, NoMatRestartUsesFullRestart) {
  auto sp = ApplyScheme(SchemeKind::kNoMatRestart, StarJoinPlan(),
                        MakeContext(3600.0));
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->recovery, RecoveryMode::kFullRestart);
  EXPECT_EQ(sp->config.NumMaterialized(), 1u);
}

TEST(SchemeTest, CostBasedNeverWorseThanFixedSchemes) {
  // The cost-based estimate is the minimum over all configurations, hence
  // <= both all-mat and no-mat estimates under the same model.
  for (double mtbf : {60.0, 600.0, 3600.0, 86400.0}) {
    const Plan p = StarJoinPlan();
    const FtCostContext ctx = MakeContext(mtbf);
    auto cost_based = ApplyScheme(SchemeKind::kCostBased, p, ctx);
    auto all_mat = ApplyScheme(SchemeKind::kAllMat, p, ctx);
    auto no_mat = ApplyScheme(SchemeKind::kNoMatLineage, p, ctx);
    ASSERT_TRUE(cost_based.ok());
    ASSERT_TRUE(all_mat.ok());
    ASSERT_TRUE(no_mat.ok());
    EXPECT_LE(cost_based->estimated_cost,
              all_mat->estimated_cost + 1e-9)
        << "mtbf=" << mtbf;
    EXPECT_LE(cost_based->estimated_cost, no_mat->estimated_cost + 1e-9)
        << "mtbf=" << mtbf;
  }
}

TEST(SchemeTest, FullRestartEstimateIsQueryLevelRetryUnit) {
  // Regression: no-mat (restart) used to be priced with the fine-grained
  // dominant-path model — a single-machine failure process — while the
  // simulator restarts the whole query on ANY node's failure. The
  // estimate must be Eq. 8 applied to one query-level retry unit of
  // duration makespan with failure rate n/MTBF.
  const Plan p = StarJoinPlan();
  // MTBF low enough that the attempts percentile exceeds one attempt —
  // at a day-scale MTBF every scheme's estimate degenerates to the
  // failure-free makespan and the divergence is invisible.
  const FtCostContext ctx = MakeContext(300.0);
  auto sp = ApplyScheme(SchemeKind::kNoMatRestart, p, ctx);
  ASSERT_TRUE(sp.ok()) << sp.status();
  auto cp =
      CollapsedPlan::Create(p, sp->config, ctx.model.pipe_constant);
  ASSERT_TRUE(cp.ok());
  FailureParams q = ctx.MakeFailureParams();
  q.mtbf_cost = ctx.cluster.mtbf_seconds * ctx.model.cost_constant /
                static_cast<double>(ctx.cluster.num_nodes);
  q.success_target = ctx.model.success_target;
  EXPECT_DOUBLE_EQ(sp->estimated_cost,
                   OperatorTotalRuntime(cp->MakespanNoFailure(), q));
  // The query-level rate is n times the per-node rate, so on this
  // 10-node cluster the restart estimate must exceed the fine-grained
  // lineage estimate for the identical no-mat configuration — the
  // divergence the old shared estimate hid.
  auto lineage = ApplyScheme(SchemeKind::kNoMatLineage, p, ctx);
  ASSERT_TRUE(lineage.ok());
  EXPECT_GT(sp->estimated_cost, lineage->estimated_cost);
}

TEST(SchemeTest, FullRestartEstimateGrowsWithClusterSize) {
  // Under the old fine-grained pricing the estimate was flat in n (one
  // machine's MTBF); the query-level retry unit sees rate n/MTBF, so a
  // bigger cluster must strictly raise it.
  const Plan p = StarJoinPlan();
  double prev = 0.0;
  for (int nodes : {1, 10, 100}) {
    FtCostContext ctx;
    ctx.cluster = cost::MakeCluster(nodes, 600.0, 1.0);
    auto sp = ApplyScheme(SchemeKind::kNoMatRestart, p, ctx);
    ASSERT_TRUE(sp.ok()) << sp.status();
    EXPECT_GT(sp->estimated_cost, prev) << nodes;
    prev = sp->estimated_cost;
  }
}

TEST(SchemeTest, PlanIndexConsistentWithReturnedPlan) {
  // plan_index, plan, config and estimated_cost must all describe the
  // same winning candidate: re-running the search on just
  // candidates[plan_index] reproduces the config and the cost.
  PlanBuilder cheap("cheap");
  OpId s = cheap.Scan("R", 1e5, 64, 1.0);
  cheap.Unary(OpType::kHashAggregate, "agg", s, 1.0, 0.1);
  PlanBuilder mid("mid");
  s = mid.Scan("R", 1e5, 64, 3.0);
  mid.Unary(OpType::kHashAggregate, "agg", s, 3.0, 0.1);
  PlanBuilder costly("costly");
  s = costly.Scan("R", 1e5, 64, 5.0);
  costly.Unary(OpType::kHashAggregate, "agg", s, 5.0, 0.1);
  const std::vector<Plan> candidates = {std::move(costly).Build(),
                                        std::move(cheap).Build(),
                                        std::move(mid).Build()};
  const FtCostContext ctx = MakeContext(3600.0);
  auto sp = ApplyCostBasedScheme(candidates, ctx);
  ASSERT_TRUE(sp.ok()) << sp.status();
  ASSERT_LT(sp->plan_index, candidates.size());
  EXPECT_EQ(sp->plan_index, 1u);  // "cheap" wins
  EXPECT_EQ(sp->plan.name(), candidates[sp->plan_index].name());
  auto solo =
      ApplyScheme(SchemeKind::kCostBased, candidates[sp->plan_index], ctx);
  ASSERT_TRUE(solo.ok());
  EXPECT_EQ(solo->plan_index, 0u);  // single-candidate entry point
  EXPECT_TRUE(solo->config == sp->config);
  EXPECT_DOUBLE_EQ(solo->estimated_cost, sp->estimated_cost);
}

TEST(SchemeTest, CostBasedAdaptsToMtbf) {
  const Plan p = StarJoinPlan();
  auto low_failure = ApplyScheme(SchemeKind::kCostBased, p,
                                 MakeContext(30 * 86400.0));
  auto high_failure = ApplyScheme(SchemeKind::kCostBased, p,
                                  MakeContext(60.0));
  ASSERT_TRUE(low_failure.ok());
  ASSERT_TRUE(high_failure.ok());
  EXPECT_GE(high_failure->config.NumMaterialized(),
            low_failure->config.NumMaterialized());
}

TEST(SchemeTest, CostBasedOverMultipleCandidates) {
  PlanBuilder cheap("cheap");
  OpId s = cheap.Scan("R", 1e5, 64, 1.0);
  cheap.Unary(OpType::kHashAggregate, "agg", s, 1.0, 0.1);
  Plan pc = std::move(cheap).Build();

  PlanBuilder costly("costly");
  s = costly.Scan("R", 1e5, 64, 5.0);
  costly.Unary(OpType::kHashAggregate, "agg", s, 5.0, 0.1);
  Plan pe = std::move(costly).Build();

  auto sp = ApplyCostBasedScheme({pe, pc}, MakeContext(3600.0));
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->plan.name(), "cheap");
}

TEST(SchemeTest, RejectsInvalidPlan) {
  Plan empty;
  EXPECT_FALSE(
      ApplyScheme(SchemeKind::kAllMat, empty, MakeContext(60.0)).ok());
}

TEST(SchemeTest, RejectsInvalidContext) {
  FtCostContext bad = MakeContext(60.0);
  bad.cluster.num_nodes = -1;
  EXPECT_FALSE(ApplyScheme(SchemeKind::kAllMat, StarJoinPlan(), bad).ok());
}

TEST(SchemeTest, EstimatesOrderedSensiblyUnderHighFailureRate) {
  // At a very low MTBF, no-mat has a (much) higher estimated runtime than
  // all-mat for this plan with cheap materializations.
  PlanBuilder b("chain");
  OpId prev = b.Scan("R", 1e6, 10, 5.0);
  for (int i = 0; i < 4; ++i) {
    prev = b.Unary(OpType::kFilter, "f" + std::to_string(i), prev, 5.0, 0.2);
  }
  Plan p = std::move(b).Build();
  const FtCostContext ctx = MakeContext(120.0);
  auto all_mat = ApplyScheme(SchemeKind::kAllMat, p, ctx);
  auto no_mat = ApplyScheme(SchemeKind::kNoMatLineage, p, ctx);
  ASSERT_TRUE(all_mat.ok());
  ASSERT_TRUE(no_mat.ok());
  EXPECT_LT(all_mat->estimated_cost, no_mat->estimated_cost);
}

}  // namespace
}  // namespace xdbft::ft
