// Property tests of the closed-form failure math (Eq. 3-8): randomized
// sweeps over the parameter space instead of hand-picked points, pinning
// the numerical edges the crosscheck harness exercises — the small-x
// series branch of the exact wasted time, the CDF shape of the attempts
// bound, the eta -> 1 regime of the attempts percentile, and the
// single-segment degeneration of intra-operator checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "ft/checkpointing.h"
#include "ft/failure_math.h"

namespace xdbft::ft {
namespace {

double LogUniform(Rng& rng, double lo, double hi) {
  return lo * std::exp(rng.NextDouble() * std::log(hi / lo));
}

TEST(FailureMathPropertyTest, WastedTimeExactContinuousAcrossSeriesCutoff) {
  // The implementation switches to a series expansion below x = t/MTBF =
  // 1e-9; values straddling the cutoff must agree to the expansion's own
  // accuracy, and both must sit at the t/2 limit.
  Rng rng(20240801);
  for (int iter = 0; iter < 200; ++iter) {
    const double mtbf = LogUniform(rng, 1e-3, 1e9);
    const double t_cut = mtbf * 1e-9;
    const double below = WastedTimeExact(t_cut * (1.0 - 1e-6), mtbf);
    const double above = WastedTimeExact(t_cut * (1.0 + 1e-6), mtbf);
    ASSERT_NEAR(below, above, std::abs(below) * 1e-5 + 1e-300)
        << "mtbf=" << mtbf;
    ASSERT_NEAR(below, t_cut / 2.0, t_cut * 1e-5) << "mtbf=" << mtbf;
  }
}

TEST(FailureMathPropertyTest, WastedTimeExactBelowHalfAndBounded) {
  // Eq. 3 satisfies 0 <= w(c) <= min(t/2, MTBF) for all t > 0: losing on
  // average more than half the attempt (or more than one mean failure
  // interval) is impossible. The MTBF bound is attained (in doubles) for
  // t >> MTBF, where t/(e^{t/MTBF} - 1) underflows.
  Rng rng(20240802);
  for (int iter = 0; iter < 500; ++iter) {
    const double mtbf = LogUniform(rng, 1e-3, 1e6);
    const double t = LogUniform(rng, mtbf * 1e-12, mtbf * 1e4);
    const double w = WastedTimeExact(t, mtbf);
    ASSERT_GE(w, 0.0) << "t=" << t << " mtbf=" << mtbf;
    // Slack: for x just above the series cutoff, MTBF - t/expm1(x)
    // cancels catastrophically and carries an absolute error ~ MTBF*eps.
    ASSERT_LE(w, t / 2.0 * (1.0 + 1e-9) + mtbf * 1e-15)
        << "t=" << t << " mtbf=" << mtbf;
    ASSERT_LE(w, mtbf) << "t=" << t << " mtbf=" << mtbf;
  }
}

TEST(FailureMathPropertyTest, SuccessWithinAttemptsIsACdfInAttempts) {
  Rng rng(20240803);
  for (int iter = 0; iter < 200; ++iter) {
    const double mtbf = LogUniform(rng, 1e-2, 1e6);
    const double t = LogUniform(rng, mtbf * 1e-3, mtbf * 10.0);
    double prev = -1.0;
    for (double attempts : {0.0, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0}) {
      const double p = SuccessWithinAttempts(t, mtbf, attempts);
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0 + 1e-12);
      ASSERT_GE(p, prev - 1e-12)
          << "t=" << t << " mtbf=" << mtbf << " attempts=" << attempts;
      prev = p;
    }
  }
}

TEST(FailureMathPropertyTest, ExpectedAttemptsFiniteAsEtaApproachesOne) {
  // For x = t/MTBF in the tens, eta rounds to exactly 1.0 in double; the
  // log1p formulation must still produce the (huge but representable)
  // true value instead of infinity. True overflow (x beyond ~745, where
  // a ~ -ln(1-S) e^x exceeds DBL_MAX) is the only admissible infinity.
  for (double x : {10.0, 36.0, 40.0, 50.0, 100.0, 500.0, 700.0}) {
    const double a = ExpectedAttempts(x, 1.0, 0.95);
    ASSERT_TRUE(std::isfinite(a)) << "x=" << x;
    ASSERT_GE(a, 0.0) << "x=" << x;
    // Asymptote: a -> -ln(1-S) e^x - 1; at these x the first-order term
    // dominates, so a factor-two band is a safe envelope.
    const double asymptote = -std::log(0.05) * std::exp(x);
    ASSERT_GT(a, asymptote * 0.5) << "x=" << x;
    ASSERT_LT(a, asymptote * 2.0) << "x=" << x;
  }
  EXPECT_FALSE(std::isnan(ExpectedAttempts(1e308, 1.0, 0.95)));
}

TEST(FailureMathPropertyTest, ExpectedAttemptsMonotoneInDuration) {
  Rng rng(20240804);
  for (int iter = 0; iter < 200; ++iter) {
    const double mtbf = LogUniform(rng, 1e-2, 1e6);
    double prev = -1.0;
    for (double frac : {0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 60.0}) {
      const double a = ExpectedAttempts(mtbf * frac, mtbf, 0.95);
      ASSERT_GE(a, prev - 1e-12) << "mtbf=" << mtbf << " frac=" << frac;
      ASSERT_FALSE(std::isnan(a));
      prev = a;
    }
  }
}

TEST(FailureMathPropertyTest, SingleCheckpointSegmentIsExactlyEq8) {
  // An interval >= t yields one segment and no checkpoint writes: the
  // checkpointed runtime must degenerate to the plain Eq. 8 value
  // bit-for-bit, whatever the checkpoint cost.
  Rng rng(20240805);
  for (int iter = 0; iter < 200; ++iter) {
    FailureParams params;
    params.mtbf_cost = LogUniform(rng, 1.0, 1e6);
    params.mttr_cost = LogUniform(rng, 0.01, 100.0);
    const double t = LogUniform(rng, params.mtbf_cost * 1e-3,
                                params.mtbf_cost * 5.0);
    CheckpointParams ckpt;
    ckpt.interval = t * (1.0 + rng.NextDouble());
    ckpt.checkpoint_cost = LogUniform(rng, 0.01, 1e3);
    ASSERT_EQ(NumCheckpointSegments(t, ckpt.interval), 1);
    EXPECT_DOUBLE_EQ(OperatorTotalRuntimeWithCheckpoints(t, ckpt, params),
                     OperatorTotalRuntime(t, params))
        << "t=" << t << " mtbf=" << params.mtbf_cost;
  }
}

TEST(FailureMathPropertyTest, CheckpointingNeverHelpsWithFreeFailures) {
  // With zero MTTR and zero checkpoint cost, splitting an operator into
  // segments can only reduce (or keep) the expected runtime: each segment
  // retries less work. Sanity-pins the segment recursion's direction.
  Rng rng(20240806);
  for (int iter = 0; iter < 100; ++iter) {
    FailureParams params;
    params.mtbf_cost = LogUniform(rng, 1.0, 1e4);
    params.mttr_cost = 0.0;
    const double t = LogUniform(rng, params.mtbf_cost * 0.1,
                                params.mtbf_cost * 5.0);
    CheckpointParams ckpt;
    ckpt.checkpoint_cost = 0.0;
    ckpt.interval = t / (2.0 + rng.NextBounded(6));
    EXPECT_LE(OperatorTotalRuntimeWithCheckpoints(t, ckpt, params),
              OperatorTotalRuntime(t, params) * (1.0 + 1e-9))
        << "t=" << t << " mtbf=" << params.mtbf_cost
        << " interval=" << ckpt.interval;
  }
}

}  // namespace
}  // namespace xdbft::ft
