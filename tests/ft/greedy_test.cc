#include "ft/greedy.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ft/enumerator.h"
#include "tpch/queries.h"

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

FtCostContext Ctx(double mtbf) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, mtbf, 1.0);
  return ctx;
}

TEST(GreedyTest, MatchesExhaustiveOnTpchQ5) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  ASSERT_TRUE(plan.ok());
  for (double mtbf : {600.0, 3600.0, 86400.0}) {
    const FtCostContext ctx = Ctx(mtbf);
    FtPlanEnumerator exhaustive(ctx);
    auto best = exhaustive.FindBest(*plan);
    ASSERT_TRUE(best.ok());
    auto greedy = GreedyMaterialization(*plan, ctx);
    ASSERT_TRUE(greedy.ok()) << greedy.status();
    EXPECT_NEAR(greedy->estimated_cost, best->estimated_cost,
                best->estimated_cost * 1e-9)
        << "mtbf=" << mtbf;
  }
}

TEST(GreedyTest, NearOptimalOnRandomChains) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    PlanBuilder b("rand");
    OpId prev = b.Scan("src", 1e5, 64, rng.NextDouble() * 10.0);
    b.plan().mutable_node(prev).materialize_cost = rng.NextDouble() * 5.0;
    const int length = static_cast<int>(rng.NextInt(3, 8));
    for (int i = 0; i < length; ++i) {
      prev = b.Unary(OpType::kFilter, "op" + std::to_string(i), prev,
                     rng.NextDouble() * 10.0, rng.NextDouble() * 5.0);
    }
    Plan p = std::move(b).Build();
    const FtCostContext ctx = Ctx(5.0 + rng.NextDouble() * 200.0);

    EnumerationOptions no_pruning;
    no_pruning.pruning.rule1 = no_pruning.pruning.rule2 = false;
    no_pruning.pruning.rule3 = false;
    FtPlanEnumerator exhaustive(ctx, no_pruning);
    auto best = exhaustive.FindBest(p);
    auto greedy = GreedyMaterialization(p, ctx);
    ASSERT_TRUE(best.ok());
    ASSERT_TRUE(greedy.ok());
    // Greedy can get stuck in a local optimum; stay within 10%.
    EXPECT_LE(greedy->estimated_cost, best->estimated_cost * 1.10)
        << "trial=" << trial;
    EXPECT_GE(greedy->estimated_cost,
              best->estimated_cost * (1.0 - 1e-9));
  }
}

TEST(GreedyTest, HandlesPlansTooWideForEnumeration) {
  // 40 free operators: 2^40 configurations is unenumerable; greedy is
  // O(f^2) model calls.
  PlanBuilder b("wide");
  OpId prev = b.Scan("src", 1e6, 64, 5.0);
  b.Constrain(prev, plan::MatConstraint::kNeverMaterialize);
  for (int i = 0; i < 40; ++i) {
    prev = b.Unary(OpType::kMapUdf, "s" + std::to_string(i), prev, 20.0,
                   (i % 7 == 3) ? 0.5 : 30.0);
  }
  Plan p = std::move(b).Build();
  const FtCostContext ctx = Ctx(600.0);
  auto greedy = GreedyMaterialization(p, ctx);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  // The climber must have found the cheap checkpoints.
  EXPECT_GT(greedy->steps, 2);
  FtCostModel model(ctx);
  auto no_mat =
      model.Estimate(p, MaterializationConfig::NoMat(p));
  ASSERT_TRUE(no_mat.ok());
  EXPECT_LT(greedy->estimated_cost, no_mat->dominant_cost * 0.5);
}

TEST(GreedyTest, NoFailureRegimeStaysAtNoMat) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  auto greedy = GreedyMaterialization(*plan, Ctx(1e15));
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(greedy->steps, 0);
  EXPECT_TRUE(greedy->config ==
              MaterializationConfig::NoMat(*plan));
}

TEST(GreedyTest, RejectsInvalidInput) {
  EXPECT_FALSE(GreedyMaterialization(Plan{}, Ctx(600.0)).ok());
}

}  // namespace
}  // namespace xdbft::ft
