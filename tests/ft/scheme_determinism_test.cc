// Scheme-comparison determinism: every one of the five fault-tolerance
// schemes applied to TPC-H Q1/Q3/Q5 must return the same materialization
// configuration and bit-identical estimated cost at any enumeration
// worker count (mirrors correlated_cost_test's thread-count suite, which
// covers the correlated model; this one covers the scheme entry points —
// including write-ahead lineage, whose rule gating changes what the
// parallel workers may prune).
#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "ft/scheme.h"
#include "tpch/queries.h"

namespace xdbft::ft {
namespace {

using plan::Plan;

bool BitIdentical(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

Plan TpchPlan(tpch::TpchQuery q) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  auto plan = tpch::BuildQuery(q, cfg);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return *plan;
}

FtCostContext MakeContext(bool wal) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, 1200.0, 1.0);
  if (wal) {
    ctx.model.wal_enabled = true;
    ctx.model.wal_write_cost = 0.3;
  }
  return ctx;
}

constexpr SchemeKind kAllSchemes[] = {
    SchemeKind::kAllMat, SchemeKind::kNoMatLineage,
    SchemeKind::kNoMatRestart, SchemeKind::kCostBased,
    SchemeKind::kWriteAheadLineage};

constexpr tpch::TpchQuery kQueries[] = {
    tpch::TpchQuery::kQ1, tpch::TpchQuery::kQ3, tpch::TpchQuery::kQ5};

TEST(SchemeDeterminismTest, BitIdenticalAtAnyThreadCount) {
  for (const tpch::TpchQuery q : kQueries) {
    const Plan plan = TpchPlan(q);
    for (const SchemeKind kind : kAllSchemes) {
      const FtCostContext ctx =
          MakeContext(kind == SchemeKind::kWriteAheadLineage);
      EnumerationOptions seq;
      seq.num_threads = 1;
      auto golden = ApplyScheme(kind, plan, ctx, seq);
      ASSERT_TRUE(golden.ok())
          << SchemeKindName(kind) << ": " << golden.status();
      for (int threads : {2, 4, 0}) {
        EnumerationOptions par;
        par.num_threads = threads;
        auto got = ApplyScheme(kind, plan, ctx, par);
        ASSERT_TRUE(got.ok())
            << SchemeKindName(kind) << ": " << got.status();
        EXPECT_EQ(got->kind, golden->kind);
        EXPECT_EQ(got->recovery, golden->recovery);
        EXPECT_EQ(got->plan_index, golden->plan_index);
        EXPECT_TRUE(got->config == golden->config)
            << SchemeKindName(kind) << " threads=" << threads;
        EXPECT_TRUE(
            BitIdentical(got->estimated_cost, golden->estimated_cost))
            << SchemeKindName(kind) << " threads=" << threads << ": "
            << got->estimated_cost << " vs " << golden->estimated_cost;
      }
    }
  }
}

TEST(SchemeDeterminismTest, WalEnabledCostBasedDeterministic) {
  // The cost-based search with the WAL model switched on gates pruning
  // rules 1/2 off and reprices rule 3 on the durable runtime — the
  // config and cost must still be worker-count invariant.
  const Plan plan = TpchPlan(tpch::TpchQuery::kQ5);
  const FtCostContext ctx = MakeContext(/*wal=*/true);
  EnumerationOptions seq;
  seq.num_threads = 1;
  auto golden = ApplyScheme(SchemeKind::kCostBased, plan, ctx, seq);
  ASSERT_TRUE(golden.ok()) << golden.status();
  EXPECT_EQ(golden->recovery, RecoveryMode::kWalReplay);
  for (int threads : {2, 4, 0}) {
    EnumerationOptions par;
    par.num_threads = threads;
    auto got = ApplyScheme(SchemeKind::kCostBased, plan, ctx, par);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->config == golden->config) << threads;
    EXPECT_TRUE(BitIdentical(got->estimated_cost, golden->estimated_cost))
        << threads;
  }
}

}  // namespace
}  // namespace xdbft::ft
