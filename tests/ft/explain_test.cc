#include "ft/explain.h"

#include <gtest/gtest.h>

#include "ft/enumerator.h"

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan ChainPlan() {
  PlanBuilder b("chain");
  auto s = b.Scan("R", 1e6, 64, 20.0);
  b.Constrain(s, plan::MatConstraint::kNeverMaterialize);
  auto a = b.Unary(OpType::kMapUdf, "cheap-ckpt", s, 50.0, 1.0);
  auto c = b.Unary(OpType::kMapUdf, "pricey-ckpt", a, 50.0, 80.0);
  b.Unary(OpType::kHashAggregate, "agg", c, 10.0, 0.5);
  return std::move(b).Build();
}

FtCostContext Ctx(double mtbf = 200.0) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(1, mtbf, 1.0);
  return ctx;
}

TEST(ExplainTest, AnalyzesEveryFreeOperator) {
  const Plan p = ChainPlan();
  const auto config = MaterializationConfig::NoMat(p);
  auto analysis = AnalyzeMarginals(p, config, Ctx());
  ASSERT_TRUE(analysis.ok()) << analysis.status();
  EXPECT_EQ(analysis->operators.size(), 2u);  // the two free UDFs
  EXPECT_GT(analysis->configured_cost, 0.0);
}

TEST(ExplainTest, OptimalConfigHasNoNegativeBenefit) {
  // Toggling any single flag of the optimum cannot improve it.
  const Plan p = ChainPlan();
  FtPlanEnumerator enumerator(Ctx());
  auto best = enumerator.FindBest(p);
  ASSERT_TRUE(best.ok());
  auto analysis = AnalyzeMarginals(best->plan, best->config, Ctx());
  ASSERT_TRUE(analysis.ok());
  for (const auto& m : analysis->operators) {
    EXPECT_GE(m.benefit(), -1e-9) << m.label;
  }
}

TEST(ExplainTest, CheapCheckpointShowsPositiveBenefitUnderFailures) {
  // With m(cheap-ckpt)=1 in a flaky environment, un-materializing it must
  // hurt (positive benefit for keeping it).
  Plan p = ChainPlan();
  auto config = MaterializationConfig::NoMat(p);
  config.set_materialized(1, true);
  auto analysis = AnalyzeMarginals(p, config, Ctx(100.0));
  ASSERT_TRUE(analysis.ok());
  const auto& cheap = analysis->operators[0];
  ASSERT_EQ(cheap.op, 1);
  EXPECT_TRUE(cheap.materialized);
  EXPECT_GT(cheap.benefit(), 0.0);
}

TEST(ExplainTest, UselessCheckpointShowsLoss) {
  // Materializing the pricey operator in a reliable environment loses.
  Plan p = ChainPlan();
  auto config = MaterializationConfig::NoMat(p);
  config.set_materialized(2, true);
  auto analysis = AnalyzeMarginals(p, config, Ctx(1e15));
  ASSERT_TRUE(analysis.ok());
  const auto& pricey = analysis->operators[1];
  ASSERT_EQ(pricey.op, 2);
  EXPECT_LT(pricey.benefit(), 0.0);
}

TEST(ExplainTest, ToStringListsOperators) {
  const Plan p = ChainPlan();
  auto analysis =
      AnalyzeMarginals(p, MaterializationConfig::NoMat(p), Ctx());
  ASSERT_TRUE(analysis.ok());
  const std::string s = analysis->ToString();
  EXPECT_NE(s.find("cheap-ckpt"), std::string::npos);
  EXPECT_NE(s.find("pricey-ckpt"), std::string::npos);
  EXPECT_NE(s.find("configured cost"), std::string::npos);
}

TEST(ExplainTest, RejectsInvalidInputs) {
  EXPECT_FALSE(
      AnalyzeMarginals(Plan{}, MaterializationConfig{}, Ctx()).ok());
  Plan p = ChainPlan();
  MaterializationConfig bad(p.num_nodes());  // sink unmaterialized
  EXPECT_FALSE(AnalyzeMarginals(p, bad, Ctx()).ok());
}

TEST(ExplainTest, AccuracyReportPredictsPerCollapsedOperator) {
  const Plan p = ChainPlan();
  const auto config = MaterializationConfig::AllMat(p);
  auto report = BuildAccuracyReport(p, config, Ctx(200.0));
  ASSERT_TRUE(report.ok()) << report.status();
  // All-mat on the 4-op chain: every free op anchors its own collapsed op.
  EXPECT_EQ(report->operators.size(), 3u);
  for (const auto& op : report->operators) {
    EXPECT_GT(op.t, 0.0) << op.label;
    EXPECT_GT(op.gamma, 0.0);
    EXPECT_LT(op.gamma, 1.0);
    EXPECT_GE(op.attempts, 0.0);
    EXPECT_GT(op.wasted, 0.0);
    // T(c) = t + a w + a MTTR >= t.
    EXPECT_GE(op.total, op.t);
  }
  EXPECT_GT(report->predicted_runtime, 0.0);
  EXPECT_GT(report->predicted_attempts, 0.0);
}

TEST(ExplainTest, AccuracyReportRendersObservedNextToPredicted) {
  const Plan p = ChainPlan();
  auto report =
      BuildAccuracyReport(p, MaterializationConfig::AllMat(p), Ctx());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->ToString().find("(no instrumented run)"),
            std::string::npos);

  ObservedExecution observed;
  observed.source = "ft_executor";
  observed.failures = 2;
  observed.recovery_executions = 2;
  observed.task_executions = 23;
  observed.runtime_seconds = 0.5;
  report->observed.push_back(observed);
  const std::string s = report->ToString();
  EXPECT_NE(s.find("observed [ft_executor]"), std::string::npos);
  EXPECT_NE(s.find("2 failures"), std::string::npos);
  EXPECT_NE(s.find("a(c)"), std::string::npos);
  EXPECT_NE(s.find("T(c)"), std::string::npos);
}

}  // namespace
}  // namespace xdbft::ft
