#include "ft/adaptive.h"

#include <gtest/gtest.h>

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan ChainPlan(double tr1 = 50.0, double tm1 = 5.0, double tr2 = 50.0,
               double tm2 = 5.0) {
  PlanBuilder b("chain");
  auto s = b.Scan("R", 1e6, 64, 20.0);
  b.Constrain(s, plan::MatConstraint::kNeverMaterialize);
  auto a = b.Unary(OpType::kMapUdf, "a", s, tr1, tm1);
  auto c = b.Unary(OpType::kMapUdf, "b", a, tr2, tm2);
  b.Unary(OpType::kHashAggregate, "agg", c, 10.0, 0.5);
  return std::move(b).Build();
}

FtCostContext Ctx(double mtbf = 300.0) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(1, mtbf, 1.0);
  return ctx;
}

TEST(AdaptiveTest, PerfectEstimatesMatchStaticChoice) {
  const Plan truth = ChainPlan();
  auto adaptive = AdaptiveMaterialization(truth, truth, Ctx());
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  EXPECT_EQ(adaptive->decisions_changed, 0);
  FtPlanEnumerator static_enum(Ctx());
  auto static_choice = static_enum.FindBest(truth);
  ASSERT_TRUE(static_choice.ok());
  EXPECT_TRUE(adaptive->config == static_choice->config);
}

TEST(AdaptiveTest, ConfigIsValidForTruth) {
  const Plan truth = ChainPlan();
  const Plan estimated = PerturbStatistics(truth, 10.0, 3);
  auto adaptive = AdaptiveMaterialization(estimated, truth, Ctx());
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->config.Validate(truth).ok());
}

TEST(AdaptiveTest, NeverWorseThanStaticUnderTrueModel) {
  // Estimated cost of the adaptive config under the *true* statistics
  // must not exceed the static (bad-estimate) config's by more than noise:
  // the last decisions are made with fully revealed truth.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Plan truth = ChainPlan();
    const Plan estimated = PerturbStatistics(truth, 8.0, seed);
    const FtCostContext ctx = Ctx();
    FtPlanEnumerator static_enum(ctx);
    auto static_choice = static_enum.FindBest(estimated);
    auto adaptive = AdaptiveMaterialization(estimated, truth, ctx);
    ASSERT_TRUE(static_choice.ok());
    ASSERT_TRUE(adaptive.ok());
    FtCostModel model(ctx);
    auto cost_static = model.Estimate(truth, static_choice->config);
    auto cost_adaptive = model.Estimate(truth, adaptive->config);
    ASSERT_TRUE(cost_static.ok());
    ASSERT_TRUE(cost_adaptive.ok());
    // Adaptive refines toward the truth; allow equality.
    EXPECT_LE(cost_adaptive->dominant_cost,
              cost_static->dominant_cost * 1.05)
        << "seed=" << seed;
  }
}

TEST(AdaptiveTest, CorrectsWildlyWrongMaterializationCost) {
  // Truth: op "a" is dirt cheap to materialize; estimate claims it is
  // prohibitively expensive. The static plan skips the checkpoint; the
  // adaptive pass must pick it up once upstream truth is revealed...
  const Plan truth = ChainPlan(100.0, 0.5, 100.0, 50.0);
  Plan estimated = truth;
  estimated.mutable_node(1).materialize_cost = 500.0;  // op "a"
  const FtCostContext ctx = Ctx(150.0);

  FtPlanEnumerator static_enum(ctx);
  auto static_choice = static_enum.FindBest(estimated);
  ASSERT_TRUE(static_choice.ok());
  EXPECT_FALSE(static_choice->config.materialized(1));

  auto adaptive = AdaptiveMaterialization(estimated, truth, ctx);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->config.materialized(1));
  EXPECT_GE(adaptive->decisions_changed, 1);
}

TEST(AdaptiveTest, RejectsStructurallyDifferentPlans) {
  const Plan truth = ChainPlan();
  PlanBuilder b("other");
  b.Scan("R", 10, 8, 1.0);
  const Plan other = std::move(b).Build();
  EXPECT_FALSE(AdaptiveMaterialization(other, truth, Ctx()).ok());
}

TEST(AdaptiveTest, RejectsInvalidPlans) {
  EXPECT_FALSE(
      AdaptiveMaterialization(plan::Plan{}, plan::Plan{}, Ctx()).ok());
}

TEST(PerturbStatisticsTest, DeterministicAndBounded) {
  const Plan p = ChainPlan();
  const Plan a = PerturbStatistics(p, 4.0, 9);
  const Plan b = PerturbStatistics(p, 4.0, 9);
  for (const auto& n : p.nodes()) {
    EXPECT_DOUBLE_EQ(a.node(n.id).runtime_cost, b.node(n.id).runtime_cost);
    EXPECT_GE(a.node(n.id).runtime_cost, n.runtime_cost / 4.0 - 1e-9);
    EXPECT_LE(a.node(n.id).runtime_cost, n.runtime_cost * 4.0 + 1e-9);
  }
}

TEST(PerturbStatisticsTest, FactorOneIsIdentity) {
  const Plan p = ChainPlan();
  const Plan a = PerturbStatistics(p, 1.0, 5);
  for (const auto& n : p.nodes()) {
    EXPECT_DOUBLE_EQ(a.node(n.id).runtime_cost, n.runtime_cost);
    EXPECT_DOUBLE_EQ(a.node(n.id).materialize_cost, n.materialize_cost);
  }
}

TEST(PerturbStatisticsTest, DifferentSeedsDiffer) {
  const Plan p = ChainPlan();
  const Plan a = PerturbStatistics(p, 4.0, 1);
  const Plan b = PerturbStatistics(p, 4.0, 2);
  EXPECT_NE(a.node(1).runtime_cost, b.node(1).runtime_cost);
}

}  // namespace
}  // namespace xdbft::ft
