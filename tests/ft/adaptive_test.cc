#include "ft/adaptive.h"

#include <gtest/gtest.h>

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan ChainPlan(double tr1 = 50.0, double tm1 = 5.0, double tr2 = 50.0,
               double tm2 = 5.0) {
  PlanBuilder b("chain");
  auto s = b.Scan("R", 1e6, 64, 20.0);
  b.Constrain(s, plan::MatConstraint::kNeverMaterialize);
  auto a = b.Unary(OpType::kMapUdf, "a", s, tr1, tm1);
  auto c = b.Unary(OpType::kMapUdf, "b", a, tr2, tm2);
  b.Unary(OpType::kHashAggregate, "agg", c, 10.0, 0.5);
  return std::move(b).Build();
}

FtCostContext Ctx(double mtbf = 300.0) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(1, mtbf, 1.0);
  return ctx;
}

TEST(AdaptiveTest, PerfectEstimatesMatchStaticChoice) {
  const Plan truth = ChainPlan();
  auto adaptive = AdaptiveMaterialization(truth, truth, Ctx());
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  EXPECT_EQ(adaptive->decisions_changed, 0);
  FtPlanEnumerator static_enum(Ctx());
  auto static_choice = static_enum.FindBest(truth);
  ASSERT_TRUE(static_choice.ok());
  EXPECT_TRUE(adaptive->config == static_choice->config);
}

TEST(AdaptiveTest, ConfigIsValidForTruth) {
  const Plan truth = ChainPlan();
  const Plan estimated = PerturbStatistics(truth, 10.0, 3);
  auto adaptive = AdaptiveMaterialization(estimated, truth, Ctx());
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->config.Validate(truth).ok());
}

TEST(AdaptiveTest, NeverWorseThanStaticUnderTrueModel) {
  // Estimated cost of the adaptive config under the *true* statistics
  // must not exceed the static (bad-estimate) config's by more than noise:
  // the last decisions are made with fully revealed truth.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Plan truth = ChainPlan();
    const Plan estimated = PerturbStatistics(truth, 8.0, seed);
    const FtCostContext ctx = Ctx();
    FtPlanEnumerator static_enum(ctx);
    auto static_choice = static_enum.FindBest(estimated);
    auto adaptive = AdaptiveMaterialization(estimated, truth, ctx);
    ASSERT_TRUE(static_choice.ok());
    ASSERT_TRUE(adaptive.ok());
    FtCostModel model(ctx);
    auto cost_static = model.Estimate(truth, static_choice->config);
    auto cost_adaptive = model.Estimate(truth, adaptive->config);
    ASSERT_TRUE(cost_static.ok());
    ASSERT_TRUE(cost_adaptive.ok());
    // Adaptive refines toward the truth; allow equality.
    EXPECT_LE(cost_adaptive->dominant_cost,
              cost_static->dominant_cost * 1.05)
        << "seed=" << seed;
  }
}

TEST(AdaptiveTest, CorrectsWildlyWrongMaterializationCost) {
  // Truth: op "a" is dirt cheap to materialize; estimate claims it is
  // prohibitively expensive. The static plan skips the checkpoint; the
  // adaptive pass must pick it up once upstream truth is revealed...
  const Plan truth = ChainPlan(100.0, 0.5, 100.0, 50.0);
  Plan estimated = truth;
  estimated.mutable_node(1).materialize_cost = 500.0;  // op "a"
  const FtCostContext ctx = Ctx(150.0);

  FtPlanEnumerator static_enum(ctx);
  auto static_choice = static_enum.FindBest(estimated);
  ASSERT_TRUE(static_choice.ok());
  EXPECT_FALSE(static_choice->config.materialized(1));

  auto adaptive = AdaptiveMaterialization(estimated, truth, ctx);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->config.materialized(1));
  EXPECT_GE(adaptive->decisions_changed, 1);
}

TEST(AdaptiveTest, RejectsStructurallyDifferentPlans) {
  const Plan truth = ChainPlan();
  PlanBuilder b("other");
  b.Scan("R", 10, 8, 1.0);
  const Plan other = std::move(b).Build();
  EXPECT_FALSE(AdaptiveMaterialization(other, truth, Ctx()).ok());
}

TEST(AdaptiveTest, RejectsInvalidPlans) {
  EXPECT_FALSE(
      AdaptiveMaterialization(plan::Plan{}, plan::Plan{}, Ctx()).ok());
}

TEST(PerturbStatisticsTest, DeterministicAndBounded) {
  const Plan p = ChainPlan();
  const Plan a = PerturbStatistics(p, 4.0, 9);
  const Plan b = PerturbStatistics(p, 4.0, 9);
  for (const auto& n : p.nodes()) {
    EXPECT_DOUBLE_EQ(a.node(n.id).runtime_cost, b.node(n.id).runtime_cost);
    EXPECT_GE(a.node(n.id).runtime_cost, n.runtime_cost / 4.0 - 1e-9);
    EXPECT_LE(a.node(n.id).runtime_cost, n.runtime_cost * 4.0 + 1e-9);
  }
}

TEST(PerturbStatisticsTest, FactorOneIsIdentity) {
  const Plan p = ChainPlan();
  const Plan a = PerturbStatistics(p, 1.0, 5);
  for (const auto& n : p.nodes()) {
    EXPECT_DOUBLE_EQ(a.node(n.id).runtime_cost, n.runtime_cost);
    EXPECT_DOUBLE_EQ(a.node(n.id).materialize_cost, n.materialize_cost);
  }
}

TEST(PerturbStatisticsTest, DifferentSeedsDiffer) {
  const Plan p = ChainPlan();
  const Plan a = PerturbStatistics(p, 4.0, 1);
  const Plan b = PerturbStatistics(p, 4.0, 2);
  EXPECT_NE(a.node(1).runtime_cost, b.node(1).runtime_cost);
}

// Factors are drawn from the *structural* identity of each operator, so
// an isomorphic plan with every label renamed perturbs identically
// (labels and ids are not part of the draw).
TEST(PerturbStatisticsTest, RelabeledIsomorphicPlansPerturbIdentically) {
  auto build = [](const char* scan, const char* map1, const char* map2,
                  const char* agg) {
    PlanBuilder b("iso");
    auto s = b.Scan(scan, 1e6, 64, 20.0);
    b.Constrain(s, plan::MatConstraint::kNeverMaterialize);
    auto a = b.Unary(OpType::kMapUdf, map1, s, 50.0, 5.0);
    auto c = b.Unary(OpType::kMapUdf, map2, a, 50.0, 5.0);
    b.Unary(OpType::kHashAggregate, agg, c, 10.0, 0.5);
    return std::move(b).Build();
  };
  const Plan p1 = build("R", "a", "b", "agg");
  const Plan p2 = build("lineitem", "project", "cleanse", "rollup");
  const Plan q1 = PerturbStatistics(p1, 6.0, 11);
  const Plan q2 = PerturbStatistics(p2, 6.0, 11);
  for (const auto& n : p1.nodes()) {
    EXPECT_DOUBLE_EQ(q1.node(n.id).runtime_cost,
                     q2.node(n.id).runtime_cost);
    EXPECT_DOUBLE_EQ(q1.node(n.id).materialize_cost,
                     q2.node(n.id).materialize_cost);
  }
}

// Adding an operator downstream must not shift the draws of the existing
// operators (the old visit-order-seeded Rng did exactly that).
TEST(PerturbStatisticsTest, DownstreamOperatorDoesNotShiftDraws) {
  PlanBuilder b1("short");
  auto s1 = b1.Scan("R", 1e6, 64, 20.0);
  auto a1 = b1.Unary(OpType::kMapUdf, "a", s1, 50.0, 5.0);
  b1.Unary(OpType::kHashAggregate, "agg", a1, 10.0, 0.5);
  const Plan shorter = std::move(b1).Build();
  PlanBuilder b2("long");
  auto s2 = b2.Scan("R", 1e6, 64, 20.0);
  auto a2 = b2.Unary(OpType::kMapUdf, "a", s2, 50.0, 5.0);
  auto g2 = b2.Unary(OpType::kHashAggregate, "agg", a2, 10.0, 0.5);
  b2.Unary(OpType::kMapUdf, "post", g2, 5.0, 1.0);
  const Plan longer = std::move(b2).Build();
  const Plan qs = PerturbStatistics(shorter, 6.0, 23);
  const Plan ql = PerturbStatistics(longer, 6.0, 23);
  for (const auto& n : shorter.nodes()) {
    EXPECT_DOUBLE_EQ(qs.node(n.id).runtime_cost,
                     ql.node(n.id).runtime_cost);
  }
}

TEST(ClusterDriftTest, RateSpaceDrift) {
  const cost::ClusterStats a = cost::MakeCluster(4, 1000.0, 1.0);
  EXPECT_DOUBLE_EQ(ClusterDrift(a, a), 0.0);
  // Halved MTBF doubles the failure rate: |2r - r| / 2r = 0.5.
  cost::ClusterStats faster = a;
  faster.mtbf_seconds = 500.0;
  EXPECT_NEAR(ClusterDrift(a, faster), 0.5, 1e-12);
  EXPECT_NEAR(ClusterDrift(faster, a), 0.5, 1e-12);  // symmetric
  // A burst process appearing out of nothing is full drift.
  cost::ClusterStats bursty = a;
  bursty.burst_mtbf_seconds = 400.0;
  EXPECT_DOUBLE_EQ(ClusterDrift(a, bursty), 1.0);
  // Identical burst processes contribute no drift.
  EXPECT_DOUBLE_EQ(ClusterDrift(bursty, bursty), 0.0);
}

TEST(ReoptimizeOnDriftTest, BelowThresholdKeepsConfig) {
  const Plan p = ChainPlan();
  const FtCostContext ctx = Ctx();
  FtPlanEnumerator e(ctx);
  auto best = e.FindBest(p);
  ASSERT_TRUE(best.ok());
  const std::vector<bool> completed(p.nodes().size(), false);
  auto r = ReoptimizeOnDrift(p, best->config, completed, ctx, ctx.cluster,
                             /*drift_threshold=*/0.5);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->reoptimized);
  EXPECT_EQ(r->decisions_changed, 0);
  EXPECT_DOUBLE_EQ(r->drift, 0.0);
  EXPECT_TRUE(r->config == best->config);
}

TEST(ReoptimizeOnDriftTest, AboveThresholdReoptimizesAndPinsCompleted) {
  const Plan p = ChainPlan();
  const FtCostContext ctx = Ctx(1000.0);
  FtPlanEnumerator e(ctx);
  auto best = e.FindBest(p);
  ASSERT_TRUE(best.ok());
  cost::ClusterStats observed = ctx.cluster;
  observed.mtbf_seconds = 50.0;  // rate x20: drift 0.95
  std::vector<bool> completed(p.nodes().size(), false);
  completed[0] = true;
  completed[1] = true;
  auto r = ReoptimizeOnDrift(p, best->config, completed, ctx, observed,
                             /*drift_threshold=*/0.5);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->reoptimized);
  EXPECT_GT(r->drift, 0.5);
  EXPECT_TRUE(r->config.Validate(p).ok());
  // Completed operators keep their decisions (outputs exist or are gone;
  // only pending operators are renegotiated).
  EXPECT_EQ(r->config.materialized(0), best->config.materialized(0));
  EXPECT_EQ(r->config.materialized(1), best->config.materialized(1));
}

TEST(ReoptimizeOnDriftTest, BurstAppearanceTriggersReoptimization) {
  const Plan p = ChainPlan();
  const FtCostContext ctx = Ctx(1000.0);
  FtPlanEnumerator e(ctx);
  auto best = e.FindBest(p);
  ASSERT_TRUE(best.ok());
  cost::ClusterStats observed = ctx.cluster;
  observed.burst_mtbf_seconds = 200.0;  // correlated failures surfaced
  const std::vector<bool> completed(p.nodes().size(), false);
  auto r = ReoptimizeOnDrift(p, best->config, completed, ctx, observed,
                             /*drift_threshold=*/0.5);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(r->drift, 1.0);
  EXPECT_TRUE(r->reoptimized);
}

}  // namespace
}  // namespace xdbft::ft
