#include "ft/pruning.h"

#include <gtest/gtest.h>

namespace xdbft::ft {
namespace {

using plan::MatConstraint;
using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

// Figure 5, left: unary parent. o: tr=2, tm=10 (t({o})=12); p: tr=2, tm=1.
// With CONST_pipe = 0.8: t({o,p}) = (2+2)*0.8 + 1 = 4.2 <= 12 -> prune o.
Plan Fig5UnaryPlan() {
  PlanBuilder b("fig5-unary");
  const OpId o = b.Scan("o", 1e6, 100, 2.0);
  b.plan().mutable_node(o).materialize_cost = 10.0;
  b.Unary(OpType::kHashAggregate, "p", o, 2.0, 1.0);
  return std::move(b).Build();
}

TEST(PruningRule1Test, Fig5UnaryExample) {
  Plan p = Fig5UnaryPlan();
  EXPECT_EQ(ApplyPruningRule1(&p, 0.8), 1);
  EXPECT_EQ(p.node(0).constraint, MatConstraint::kNeverMaterialize);
  EXPECT_TRUE(p.node(1).is_free());
}

TEST(PruningRule1Test, NotAppliedWhenMaterializationCheap) {
  // t({o}) = 2 + 0.1 = 2.1 < t({o,p}) = 4*0.8 + 1 = 4.2 -> no pruning.
  PlanBuilder b("cheap-mat");
  const OpId o = b.Scan("o", 1e6, 100, 2.0);
  b.plan().mutable_node(o).materialize_cost = 0.1;
  b.Unary(OpType::kHashAggregate, "p", o, 2.0, 1.0);
  Plan p = std::move(b).Build();
  EXPECT_EQ(ApplyPruningRule1(&p, 0.8), 0);
  EXPECT_TRUE(p.node(0).is_free());
}

// Figure 5, right: n-ary parent. o1: tr=2, tm=10 (t=12); o2: tr=4, tm=5
// (t=9); p: tr=2, tm=1. t({o1,o2,p}) = (max(2,4)+2)*0.8 + 1 = 5.8, which
// is <= 12 and <= 9 -> prune both children.
Plan Fig5NaryPlan() {
  PlanBuilder b("fig5-nary");
  const OpId o1 = b.Scan("o1", 1e6, 100, 2.0);
  b.plan().mutable_node(o1).materialize_cost = 10.0;
  const OpId o2 = b.Scan("o2", 1e6, 100, 4.0);
  b.plan().mutable_node(o2).materialize_cost = 5.0;
  b.Binary(OpType::kHashJoin, "p", o1, o2, 2.0, 1.0);
  return std::move(b).Build();
}

TEST(PruningRule1Test, Fig5NaryExample) {
  Plan p = Fig5NaryPlan();
  EXPECT_EQ(ApplyPruningRule1(&p, 0.8), 2);
  EXPECT_EQ(p.node(0).constraint, MatConstraint::kNeverMaterialize);
  EXPECT_EQ(p.node(1).constraint, MatConstraint::kNeverMaterialize);
}

TEST(PruningRule1Test, NaryRequiresAllChildrenDominated) {
  // Same as Fig5Nary but o2's materialization is cheap (t({o2}) = 4.5 <
  // 5.8): neither child may be marked.
  PlanBuilder b("nary-partial");
  const OpId o1 = b.Scan("o1", 1e6, 100, 2.0);
  b.plan().mutable_node(o1).materialize_cost = 10.0;
  const OpId o2 = b.Scan("o2", 1e6, 100, 4.0);
  b.plan().mutable_node(o2).materialize_cost = 0.5;
  b.Binary(OpType::kHashJoin, "p", o1, o2, 2.0, 1.0);
  Plan p = std::move(b).Build();
  EXPECT_EQ(ApplyPruningRule1(&p, 0.8), 0);
}

TEST(PruningRule1Test, SkipsSharedChildren) {
  // o feeds two consumers: collapsing it into one of them would not spare
  // the other consumer's dependency -> rule must not fire.
  PlanBuilder b("shared");
  const OpId o = b.Scan("o", 1e6, 100, 2.0);
  b.plan().mutable_node(o).materialize_cost = 10.0;
  b.Unary(OpType::kHashAggregate, "p1", o, 2.0, 1.0);
  b.Unary(OpType::kHashAggregate, "p2", o, 2.0, 1.0);
  Plan p = std::move(b).Build();
  EXPECT_EQ(ApplyPruningRule1(&p, 0.8), 0);
}

TEST(PruningRule1Test, IgnoresBoundChildren) {
  Plan p = Fig5UnaryPlan();
  p.mutable_node(0).constraint = MatConstraint::kAlwaysMaterialize;
  EXPECT_EQ(ApplyPruningRule1(&p, 0.8), 0);
  EXPECT_EQ(p.node(0).constraint, MatConstraint::kAlwaysMaterialize);
}

// Figure 6: rule 2. o: tr=0.5, tm=1; p: tr=0.2, tm=0.15. With
// MTBF_cost = 3600 and CONST_pipe = 1: t({o,p}) = 0.85 and
// gamma = e^{-0.85/3600} = 0.99976 >= S = 0.95 -> prune o.
Plan Fig6Plan() {
  PlanBuilder b("fig6");
  const OpId o = b.Scan("o", 1e3, 100, 0.5);
  b.plan().mutable_node(o).materialize_cost = 1.0;
  b.Unary(OpType::kHashAggregate, "p", o, 0.2, 0.15);
  return std::move(b).Build();
}

FtCostContext Fig6Context() {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(/*num_nodes=*/1, /*mtbf=*/3600.0, 0.0);
  return ctx;
}

TEST(PruningRule2Test, Fig6Example) {
  Plan p = Fig6Plan();
  EXPECT_EQ(ApplyPruningRule2(&p, Fig6Context()), 1);
  EXPECT_EQ(p.node(0).constraint, MatConstraint::kNeverMaterialize);
}

TEST(PruningRule2Test, NotAppliedForLowMtbf) {
  Plan p = Fig6Plan();
  FtCostContext ctx = Fig6Context();
  ctx.cluster.mtbf_seconds = 1.0;  // gamma({o,p}) = e^{-0.85} = 0.43 < S
  EXPECT_EQ(ApplyPruningRule2(&p, ctx), 0);
}

TEST(PruningRule2Test, OnlyAppliesToUnaryParents) {
  // Join parent: rule 2 must skip it even with gigantic MTBF.
  PlanBuilder b("binary-parent");
  const OpId o1 = b.Scan("o1", 1e3, 100, 0.5);
  const OpId o2 = b.Scan("o2", 1e3, 100, 0.5);
  b.Binary(OpType::kHashJoin, "p", o1, o2, 0.2, 0.15);
  Plan p = std::move(b).Build();
  EXPECT_EQ(ApplyPruningRule2(&p, Fig6Context()), 0);
}

TEST(PruningRule2Test, SkipsSharedChildren) {
  PlanBuilder b("shared2");
  const OpId o = b.Scan("o", 1e3, 100, 0.5);
  b.Unary(OpType::kHashAggregate, "p1", o, 0.2, 0.15);
  b.Unary(OpType::kHashAggregate, "p2", o, 0.2, 0.15);
  Plan p = std::move(b).Build();
  EXPECT_EQ(ApplyPruningRule2(&p, Fig6Context()), 0);
}

TEST(PruningRule2Test, MarksLongChainsUnderHighMtbf) {
  // "For a high MTBF this rule marks operators with even high total
  // execution costs as non-materializable" (§4.2).
  PlanBuilder b("chain");
  const OpId s = b.Scan("s", 1e6, 100, 100.0);
  b.plan().mutable_node(s).materialize_cost = 20.0;
  const OpId f = b.Unary(OpType::kFilter, "f", s, 50.0, 10.0);
  b.Unary(OpType::kHashAggregate, "agg", f, 20.0, 1.0);
  Plan p = std::move(b).Build();
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(1, 1e9, 0.0);
  EXPECT_EQ(ApplyPruningRule2(&p, ctx), 2);
}

// {1.0, 2.0} would be ambiguous between the legacy vector<double> and the
// placement-aware vector<PathOpCost> overloads; name the element type.
using Runtimes = std::vector<double>;
using PathCosts = std::vector<PathOpCost>;

// Figure 7: memoized dominant paths (Eq. 9). Ptm1 = {5,3,1} (3 collapsed
// ops), Ptm2 = {4,4} (2 ops). Pt = {4,4,1} dominates Ptm2 (after padding)
// but not Ptm1.
TEST(DominantPathMemoTest, Fig7Example) {
  DominantPathMemo memo;
  memo.Record(Runtimes{5.0, 3.0, 1.0}, /*total=*/9.5);
  EXPECT_FALSE(memo.Dominates(Runtimes{4.0, 4.0, 1.0}));  // 4 < 5 at idx 0
  memo.Record(Runtimes{4.0, 4.0}, /*total=*/8.4);
  EXPECT_TRUE(memo.Dominates(Runtimes{4.0, 4.0, 1.0}));  // pads Ptm2 w/ 0
}

TEST(DominantPathMemoTest, ExactMatchDominates) {
  DominantPathMemo memo;
  memo.Record(Runtimes{3.0, 2.0}, 5.2);
  EXPECT_TRUE(memo.Dominates(Runtimes{2.0, 3.0}));  // order-insensitive
  EXPECT_TRUE(memo.Dominates(Runtimes{3.0, 2.5}));
  EXPECT_FALSE(memo.Dominates(Runtimes{3.0, 1.9}));
}

TEST(DominantPathMemoTest, ShorterPathCannotMatchLongerMemoOnly) {
  DominantPathMemo memo;
  memo.Record(Runtimes{3.0, 2.0, 1.0}, 6.5);
  // A 2-op path is never compared against a 3-op memo.
  EXPECT_FALSE(memo.Dominates(Runtimes{100.0, 100.0}));
}

TEST(DominantPathMemoTest, RecordKeepsCheapestPerCount) {
  DominantPathMemo memo;
  memo.Record(Runtimes{10.0, 10.0}, 21.0);
  memo.Record(Runtimes{2.0, 2.0}, 4.1);  // cheaper, same count -> replaces
  EXPECT_TRUE(memo.Dominates(Runtimes{2.0, 2.0}));
}

TEST(DominantPathMemoTest, EmptyMemoDominatesNothing) {
  DominantPathMemo memo;
  EXPECT_TRUE(memo.empty());
  EXPECT_FALSE(memo.Dominates(Runtimes{1.0}));
}

TEST(DominantPathMemoTest, ClearResets) {
  DominantPathMemo memo;
  memo.Record(Runtimes{1.0}, 1.0);
  memo.Clear();
  EXPECT_TRUE(memo.empty());
}

// Placement-aware memo entries: dominance must hold componentwise over
// (runtime, per-attempt refetch), not runtime alone.
TEST(DominantPathMemoTest, PairExtraBlocksDominance) {
  DominantPathMemo memo;
  memo.Record(PathCosts{{3.0, 0.0}, {2.0, 1.0}}, 5.2);
  // Same runtimes, but the memoized path pays refetch 1.0 where the probe
  // pays 2.0 -> probe's U could be smaller only if... no: probe is worse
  // or equal on every component, so it is dominated.
  EXPECT_TRUE(memo.Dominates(PathCosts{{3.0, 0.5}, {2.0, 1.0}}));
  // Probe has *less* refetch on one op: not dominated.
  EXPECT_FALSE(memo.Dominates(PathCosts{{3.0, 0.0}, {2.0, 0.5}}));
}

TEST(DominantPathMemoTest, PairStrictNeedsRuntimeGap) {
  const DominantPathEntry entry{{{3.0, 1.0}}, 4.0};
  // Identical (t, extra): dominated non-strictly, but never strictly.
  EXPECT_TRUE(PairwiseDominates(PathCosts{{3.0, 1.0}}, entry, false));
  EXPECT_FALSE(PairwiseDominates(PathCosts{{3.0, 1.0}}, entry, true));
  // A larger extra alone cannot certify strictness (a(c) may be 0)...
  EXPECT_FALSE(PairwiseDominates(PathCosts{{3.0, 2.0}}, entry, true));
  // ...but a runtime gap does.
  EXPECT_TRUE(PairwiseDominates(PathCosts{{3.5, 1.0}}, entry, true));
}

TEST(DominantPathMemoTest, PairZeroExtraMatchesDoubleOverload) {
  DominantPathMemo a;
  DominantPathMemo b;
  a.Record(Runtimes{4.0, 2.0}, 6.3);
  b.Record(PathCosts{{4.0, 0.0}, {2.0, 0.0}}, 6.3);
  EXPECT_EQ(a.Dominates(Runtimes{4.5, 2.0}),
            b.Dominates(PathCosts{{4.5, 0.0}, {2.0, 0.0}}));
  EXPECT_EQ(a.Dominates(Runtimes{4.0, 1.0}),
            b.Dominates(PathCosts{{4.0, 0.0}, {1.0, 0.0}}));
}

}  // namespace
}  // namespace xdbft::ft
