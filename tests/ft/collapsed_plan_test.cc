#include "ft/collapsed_plan.h"

#include <gtest/gtest.h>

#include <set>

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

// The paper's Figure 3 plan (0-based ids): 0,1 -> 2 -> 3 -> 4 -> {5, 6}.
// Costs are chosen so the collapsed t(c) values match Table 2:
// t({0,1,2}) = 4, t({3,4}) = 3, t({5}) = 1, t({6}) = 2.
Plan Fig3Plan() {
  PlanBuilder b("fig3");
  const OpId s1 = b.Scan("R", 1e6, 100, 1.0);                       // op 0
  const OpId s2 = b.Scan("S", 1e6, 100, 2.0);                       // op 1
  const OpId j = b.Binary(OpType::kHashJoin, "join", s1, s2, 1.5, 0.5);
  const OpId m = b.Unary(OpType::kMapUdf, "map", j, 1.0, 1.0);      // op 3
  const OpId r = b.Unary(OpType::kRepartition, "rep", m, 1.5, 0.5); // op 4
  b.Unary(OpType::kReduceUdf, "red1", r, 0.8, 0.2);                 // op 5
  b.Unary(OpType::kReduceUdf, "red2", r, 1.6, 0.4);                 // op 6
  return std::move(b).Build();
}

MaterializationConfig Fig3Config(const Plan& p) {
  auto c = MaterializationConfig::NoMat(p);
  c.set_materialized(2, true);  // join output materialized
  c.set_materialized(4, true);  // repartition output materialized
  return c;                     // 5, 6 are sinks -> materialized already
}

TEST(CollapsedPlanTest, Fig3Structure) {
  Plan p = Fig3Plan();
  auto r = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(r.ok()) << r.status();
  const CollapsedPlan& cp = *r;
  ASSERT_EQ(cp.num_ops(), 4u);
  EXPECT_EQ(cp.op(0).members, (std::vector<OpId>{0, 1, 2}));
  EXPECT_EQ(cp.op(1).members, (std::vector<OpId>{3, 4}));
  EXPECT_EQ(cp.op(2).members, (std::vector<OpId>{5}));
  EXPECT_EQ(cp.op(3).members, (std::vector<OpId>{6}));
  EXPECT_EQ(cp.op(1).inputs, (std::vector<CollapsedId>{0}));
  EXPECT_EQ(cp.op(2).inputs, (std::vector<CollapsedId>{1}));
  EXPECT_EQ(cp.op(3).inputs, (std::vector<CollapsedId>{1}));
  EXPECT_EQ(cp.sources(), (std::vector<CollapsedId>{0}));
  EXPECT_EQ(cp.sinks(), (std::vector<CollapsedId>{2, 3}));
}

TEST(CollapsedPlanTest, Fig3CostsMatchTable2) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  EXPECT_DOUBLE_EQ(cp->op(0).total_cost(), 4.0);   // (2 + 1.5) + 0.5
  EXPECT_DOUBLE_EQ(cp->op(1).total_cost(), 3.0);   // (1 + 1.5) + 0.5
  EXPECT_DOUBLE_EQ(cp->op(2).total_cost(), 1.0);   // 0.8 + 0.2
  EXPECT_DOUBLE_EQ(cp->op(3).total_cost(), 2.0);   // 1.6 + 0.4
}

TEST(CollapsedPlanTest, DominantMemberPathPicksMaxTrBranch) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  // In {0,1,2}, scan 1 (tr=2) dominates scan 0 (tr=1).
  EXPECT_EQ(cp->op(0).dominant_members, (std::vector<OpId>{1, 2}));
}

TEST(CollapsedPlanTest, PipeConstantAppliedToMultiOpPathsOnly) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 0.8);
  ASSERT_TRUE(cp.ok());
  // Multi-operator dominant path is discounted...
  EXPECT_DOUBLE_EQ(cp->op(0).runtime_cost, (2.0 + 1.5) * 0.8);
  // ...singleton collapsed operators are not (Fig. 5's t({o}) = tr + tm).
  EXPECT_DOUBLE_EQ(cp->op(2).runtime_cost, 0.8);
}

TEST(CollapsedPlanTest, Fig3PathEnumeration) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  const auto paths = cp->AllPaths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (CollapsedPath{0, 1, 2}));
  EXPECT_EQ(paths[1], (CollapsedPath{0, 1, 3}));
}

TEST(CollapsedPlanTest, PathRuntimeNoFailureIsSumOfTotals) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  EXPECT_DOUBLE_EQ(cp->PathRuntimeNoFailure({0, 1, 2}), 8.0);
  EXPECT_DOUBLE_EQ(cp->PathRuntimeNoFailure({0, 1, 3}), 9.0);
}

TEST(CollapsedPlanTest, MakespanIsCriticalPath) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  // Sinks {5} and {6} run in parallel after {3,4}; critical path is 9.
  EXPECT_DOUBLE_EQ(cp->MakespanNoFailure(), 9.0);
}

TEST(CollapsedPlanTest, NoMatCollapsesIntoSinks) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, MaterializationConfig::NoMat(p), 1.0);
  ASSERT_TRUE(cp.ok());
  // Only the two sinks remain; each contains the full upstream sub-plan.
  ASSERT_EQ(cp->num_ops(), 2u);
  EXPECT_EQ(cp->op(0).members, (std::vector<OpId>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(cp->op(1).members, (std::vector<OpId>{0, 1, 2, 3, 4, 6}));
  EXPECT_TRUE(cp->op(0).inputs.empty());
  EXPECT_TRUE(cp->op(1).inputs.empty());
}

TEST(CollapsedPlanTest, SharedNonMaterializedWorkIsDuplicated) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, MaterializationConfig::NoMat(p), 1.0);
  ASSERT_TRUE(cp.ok());
  // Ops 0-4 appear in both collapsed sinks: their work is re-done per
  // consumer when nothing is materialized.
  std::multiset<OpId> all;
  for (const auto& c : cp->ops()) {
    all.insert(c.members.begin(), c.members.end());
  }
  EXPECT_EQ(all.count(4), 2u);
  EXPECT_EQ(all.count(0), 2u);
}

TEST(CollapsedPlanTest, AllMatGivesOneCollapsedOpPerOperator) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, MaterializationConfig::AllMat(p), 1.0);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->num_ops(), p.num_nodes());
  for (const auto& c : cp->ops()) {
    EXPECT_EQ(c.members.size(), 1u);
    EXPECT_EQ(c.dominant_members.size(), 1u);
  }
}

TEST(CollapsedPlanTest, ForEachPathEarlyStop) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  size_t calls = 0;
  const size_t visited = cp->ForEachPath([&](const CollapsedPath&) {
    ++calls;
    return false;  // stop after the first path
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(visited, 1u);
}

TEST(CollapsedPlanTest, RejectsInvalidPipeConstant) {
  Plan p = Fig3Plan();
  EXPECT_FALSE(CollapsedPlan::Create(p, Fig3Config(p), 0.0).ok());
  EXPECT_FALSE(CollapsedPlan::Create(p, Fig3Config(p), 1.5).ok());
}

TEST(CollapsedPlanTest, RejectsInvalidConfig) {
  Plan p = Fig3Plan();
  MaterializationConfig bad(p.num_nodes());  // sink not materialized
  EXPECT_FALSE(CollapsedPlan::Create(p, bad, 1.0).ok());
}

TEST(CollapsedPlanTest, ExplainListsCollapsedOps) {
  Plan p = Fig3Plan();
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  const std::string s = cp->Explain();
  EXPECT_NE(s.find("{0,1,2}"), std::string::npos);
  EXPECT_NE(s.find("{3,4}"), std::string::npos);
}

// Diamond DAG: scan -> {a, b} -> join. With only the scan materialized the
// two branches collapse into the join's collapsed operator.
TEST(CollapsedPlanTest, DiamondCollapse) {
  PlanBuilder b("diamond");
  const OpId s = b.Scan("R", 100, 8, 2.0);
  const OpId a = b.Unary(OpType::kFilter, "a", s, 3.0, 1.0);
  const OpId x = b.Unary(OpType::kFilter, "b", s, 5.0, 1.0);
  b.Binary(OpType::kHashJoin, "join", a, x, 1.0, 0.5);
  Plan p = std::move(b).Build();
  auto config = MaterializationConfig::NoMat(p);
  config.set_materialized(s, true);
  auto cp = CollapsedPlan::Create(p, config, 1.0);
  ASSERT_TRUE(cp.ok());
  ASSERT_EQ(cp->num_ops(), 2u);
  EXPECT_EQ(cp->op(1).members, (std::vector<OpId>{1, 2, 3}));
  // Dominant internal path takes the tr=5 branch: 5 + 1 = 6.
  EXPECT_DOUBLE_EQ(cp->op(1).runtime_cost, 6.0);
  // The scan is consumed by both branches but only one edge c0 -> c1.
  EXPECT_EQ(cp->op(1).inputs, (std::vector<CollapsedId>{0}));
}

}  // namespace
}  // namespace xdbft::ft
