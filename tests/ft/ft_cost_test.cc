#include "ft/ft_cost.h"

#include <gtest/gtest.h>

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

// Same structure/costs as the collapsed-plan test: reproduces the paper's
// §3.5 running example (Table 2) with MTBF_cost = 60 and MTTR = 0.
Plan Fig3Plan() {
  PlanBuilder b("fig3");
  const OpId s1 = b.Scan("R", 1e6, 100, 1.0);
  const OpId s2 = b.Scan("S", 1e6, 100, 2.0);
  const OpId j = b.Binary(OpType::kHashJoin, "join", s1, s2, 1.5, 0.5);
  const OpId m = b.Unary(OpType::kMapUdf, "map", j, 1.0, 1.0);
  const OpId r = b.Unary(OpType::kRepartition, "rep", m, 1.5, 0.5);
  b.Unary(OpType::kReduceUdf, "red1", r, 0.8, 0.2);
  b.Unary(OpType::kReduceUdf, "red2", r, 1.6, 0.4);
  return std::move(b).Build();
}

MaterializationConfig Fig3Config(const Plan& p) {
  auto c = MaterializationConfig::NoMat(p);
  c.set_materialized(2, true);
  c.set_materialized(4, true);
  return c;
}

// MTBF_cost = 60 for the whole executing group: a single node with
// MTBF = 60s gives effective_mtbf = 60.
FtCostContext Table2Context() {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(/*num_nodes=*/1, /*mtbf=*/60.0,
                                  /*mttr=*/0.0);
  ctx.model.success_target = 0.95;
  return ctx;
}

TEST(FtCostTest, PaperRunningExamplePathCosts) {
  Plan p = Fig3Plan();
  FtCostModel model(Table2Context());
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  // Exact (unrounded) values: TPt1 = 8.186, TPt2 = 9.186. The paper
  // reports 8.13/9.13 after rounding gamma to two digits.
  EXPECT_NEAR(model.PathCost(*cp, {0, 1, 2}), 8.186, 0.01);
  EXPECT_NEAR(model.PathCost(*cp, {0, 1, 3}), 9.186, 0.01);
}

TEST(FtCostTest, DominantPathIsTheLongerSink) {
  Plan p = Fig3Plan();
  FtCostModel model(Table2Context());
  auto est = model.Estimate(p, Fig3Config(p));
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_EQ(est->dominant_path, (CollapsedPath{0, 1, 3}));
  EXPECT_NEAR(est->dominant_cost, 9.186, 0.01);
  EXPECT_EQ(est->paths_evaluated, 2u);
}

TEST(FtCostTest, OperatorCostMatchesFailureMath) {
  FtCostModel model(Table2Context());
  CollapsedOp c;
  c.runtime_cost = 3.5;
  c.materialize_cost = 0.5;
  FailureParams params = Table2Context().MakeFailureParams();
  EXPECT_DOUBLE_EQ(model.OperatorCost(c),
                   OperatorTotalRuntime(4.0, params));
}

TEST(FtCostTest, CostIncreasesWithLowerMtbf) {
  Plan p = Fig3Plan();
  FtCostContext high = Table2Context();
  high.cluster.mtbf_seconds = 3600.0;
  FtCostContext low = Table2Context();
  low.cluster.mtbf_seconds = 10.0;
  auto e_high = FtCostModel(high).Estimate(p, Fig3Config(p));
  auto e_low = FtCostModel(low).Estimate(p, Fig3Config(p));
  ASSERT_TRUE(e_high.ok());
  ASSERT_TRUE(e_low.ok());
  EXPECT_GT(e_low->dominant_cost, e_high->dominant_cost);
}

TEST(FtCostTest, CostUsesPerNodeMtbf) {
  // The paper's model tracks a single machine (§3.5, footnote 6): under
  // fine-grained recovery only the failed node's sub-plan restarts, so the
  // estimate depends on the per-node MTBF, not on the cluster size.
  Plan p = Fig3Plan();
  FtCostContext small = Table2Context();
  small.cluster = cost::MakeCluster(1, 600.0, 0.0);
  FtCostContext big = Table2Context();
  big.cluster = cost::MakeCluster(100, 600.0, 0.0);
  auto e_small = FtCostModel(small).Estimate(p, Fig3Config(p));
  auto e_big = FtCostModel(big).Estimate(p, Fig3Config(p));
  ASSERT_TRUE(e_small.ok());
  ASSERT_TRUE(e_big.ok());
  EXPECT_DOUBLE_EQ(e_big->dominant_cost, e_small->dominant_cost);
}

TEST(FtCostTest, NoFailuresMeansPlainRuntime) {
  // With an astronomically high MTBF the estimate equals RPt of the
  // dominant path.
  Plan p = Fig3Plan();
  FtCostContext ctx = Table2Context();
  ctx.cluster.mtbf_seconds = 1e15;
  FtCostModel model(ctx);
  auto est = model.Estimate(p, Fig3Config(p));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->dominant_cost, 9.0, 1e-6);
}

TEST(FtCostTest, MakeFailureParamsAppliesCostConstant) {
  FtCostContext ctx = Table2Context();
  ctx.cluster = cost::MakeCluster(10, 600.0, 2.0);
  ctx.model.cost_constant = 3.0;
  const FailureParams params = ctx.MakeFailureParams();
  EXPECT_DOUBLE_EQ(params.mtbf_cost, 600.0 * 3.0);
  EXPECT_DOUBLE_EQ(params.mttr_cost, 2.0 * 3.0);
}

TEST(FtCostTest, EstimateRejectsInvalidContext) {
  Plan p = Fig3Plan();
  FtCostContext ctx = Table2Context();
  ctx.cluster.num_nodes = 0;
  FtCostModel model(ctx);
  EXPECT_FALSE(model.Estimate(p, Fig3Config(p)).ok());
}

// Property: the dominant-path estimate is monotone under adding
// materializations only in the sense of TPt composition; here we check a
// simpler invariant — every path cost is >= its no-failure runtime.
TEST(FtCostTest, PathCostAtLeastNoFailureRuntime) {
  Plan p = Fig3Plan();
  FtCostModel model(Table2Context());
  auto cp = CollapsedPlan::Create(p, Fig3Config(p), 1.0);
  ASSERT_TRUE(cp.ok());
  for (const auto& path : cp->AllPaths()) {
    EXPECT_GE(model.PathCost(*cp, path),
              cp->PathRuntimeNoFailure(path) - 1e-9);
  }
}

}  // namespace
}  // namespace xdbft::ft
