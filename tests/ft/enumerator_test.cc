#include "ft/enumerator.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace xdbft::ft {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan Fig3Plan() {
  PlanBuilder b("fig3");
  const OpId s1 = b.Scan("R", 1e6, 100, 1.0);
  const OpId s2 = b.Scan("S", 1e6, 100, 2.0);
  const OpId j = b.Binary(OpType::kHashJoin, "join", s1, s2, 1.5, 0.5);
  const OpId m = b.Unary(OpType::kMapUdf, "map", j, 1.0, 1.0);
  const OpId r = b.Unary(OpType::kRepartition, "rep", m, 1.5, 0.5);
  b.Unary(OpType::kReduceUdf, "red1", r, 0.8, 0.2);
  b.Unary(OpType::kReduceUdf, "red2", r, 1.6, 0.4);
  return std::move(b).Build();
}

FtCostContext MakeContext(double mtbf, int nodes = 1, double mttr = 0.0) {
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(nodes, mtbf, mttr);
  return ctx;
}

EnumerationOptions NoPruning() {
  EnumerationOptions opts;
  opts.pruning.rule1 = false;
  opts.pruning.rule2 = false;
  opts.pruning.rule3 = false;
  opts.pruning.memoize_dominant_paths = false;
  return opts;
}

TEST(EnumeratorTest, FindsOptimumOfExhaustiveEnumeration) {
  Plan p = Fig3Plan();
  FtPlanEnumerator enumerator(MakeContext(60.0), NoPruning());
  auto best = enumerator.FindBest(p);
  ASSERT_TRUE(best.ok()) << best.status();

  // Cross-check against EnumerateAll.
  auto all = enumerator.EnumerateAll(p);
  ASSERT_TRUE(all.ok());
  double min_cost = std::numeric_limits<double>::infinity();
  for (const auto& [config, cost] : *all) min_cost = std::min(min_cost, cost);
  EXPECT_NEAR(best->estimated_cost, min_cost, 1e-9);
}

TEST(EnumeratorTest, EnumerateAllCountsConfigs) {
  Plan p = Fig3Plan();  // 5 enumerable operators -> 32 configurations
  FtPlanEnumerator enumerator(MakeContext(60.0));
  auto all = enumerator.EnumerateAll(p);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 32u);
}

TEST(EnumeratorTest, StatsCountUnprunedSpace) {
  Plan p = Fig3Plan();
  FtPlanEnumerator enumerator(MakeContext(60.0), NoPruning());
  ASSERT_TRUE(enumerator.FindBest(p).ok());
  EXPECT_EQ(enumerator.stats().candidate_plans, 1u);
  EXPECT_EQ(enumerator.stats().total_ft_plans_unpruned, 32u);
  EXPECT_EQ(enumerator.stats().ft_plans_enumerated, 32u);
  EXPECT_GT(enumerator.stats().paths_evaluated, 0u);
}

TEST(EnumeratorTest, Rule3ReducesEvaluatedPaths) {
  Plan p = Fig3Plan();
  FtPlanEnumerator without(MakeContext(60.0), NoPruning());
  ASSERT_TRUE(without.FindBest(p).ok());

  EnumerationOptions with_rule3 = NoPruning();
  with_rule3.pruning.rule3 = true;
  with_rule3.pruning.memoize_dominant_paths = true;
  FtPlanEnumerator with(MakeContext(60.0), with_rule3);
  ASSERT_TRUE(with.FindBest(p).ok());

  EXPECT_LT(with.stats().paths_evaluated, without.stats().paths_evaluated);
  EXPECT_GT(with.stats().rule3_early_stops, 0u);
  // Path-pruning accounting: early stops leave the remaining paths of the
  // FT plan unanalyzed, and those skipped paths are counted separately
  // from the evaluated ones.
  EXPECT_GT(with.stats().rule3_paths_skipped, 0u);
  EXPECT_EQ(without.stats().rule3_paths_skipped, 0u);
  // Every memo probe is either a hit or a miss.
  EXPECT_GT(with.stats().rule3_memo_misses, 0u);
  EXPECT_EQ(without.stats().rule3_memo_hits, 0u);
  EXPECT_EQ(without.stats().rule3_memo_misses, 0u);
}

TEST(EnumeratorTest, PruningPreservesOptimumOnFig3) {
  Plan p = Fig3Plan();
  for (double mtbf : {10.0, 60.0, 600.0, 86400.0}) {
    FtPlanEnumerator unpruned(MakeContext(mtbf), NoPruning());
    auto b1 = unpruned.FindBest(p);
    FtPlanEnumerator pruned(MakeContext(mtbf));  // all rules on
    auto b2 = pruned.FindBest(p);
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    EXPECT_NEAR(b1->estimated_cost, b2->estimated_cost, 1e-9)
        << "mtbf=" << mtbf;
  }
}

Plan RandomChain(Rng& rng) {
  PlanBuilder b("rand");
  const int length = static_cast<int>(rng.NextInt(2, 7));
  OpId prev = b.Scan("src", 1e5, 64, rng.NextDouble() * 10.0);
  b.plan().mutable_node(prev).materialize_cost = rng.NextDouble() * 5.0;
  for (int i = 0; i < length; ++i) {
    prev = b.Unary(OpType::kFilter, "op" + std::to_string(i), prev,
                   rng.NextDouble() * 10.0, rng.NextDouble() * 5.0);
  }
  return std::move(b).Build();
}

// Rule 3 only skips paths whose cost provably cannot beat bestT, so it must
// preserve the optimum *exactly* on arbitrary plans.
class Rule3PreservesOptimum : public ::testing::TestWithParam<int> {};

TEST_P(Rule3PreservesOptimum, RandomChains) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    Plan p = RandomChain(rng);
    const double mtbf = 5.0 + rng.NextDouble() * 500.0;
    FtPlanEnumerator unpruned(MakeContext(mtbf), NoPruning());
    EnumerationOptions rule3_only = NoPruning();
    rule3_only.pruning.rule3 = true;
    rule3_only.pruning.memoize_dominant_paths = true;
    FtPlanEnumerator pruned(MakeContext(mtbf), rule3_only);
    auto b1 = unpruned.FindBest(p);
    auto b2 = pruned.FindBest(p);
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    EXPECT_NEAR(b1->estimated_cost, b2->estimated_cost,
                1e-9 * (1.0 + b1->estimated_cost))
        << "trial=" << trial << " mtbf=" << mtbf;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Rule3PreservesOptimum,
                         ::testing::Values(1, 2, 3, 4, 5));

// Rules 1 and 2 are heuristics derived from pairwise collapse arguments
// (§4.1/§4.2); in the full configuration space they can exclude the exact
// optimum, but the chosen plan must stay close to it (and can never beat
// it, since pruning only shrinks the searched space).
class FullPruningNearOptimal : public ::testing::TestWithParam<int> {};

TEST_P(FullPruningNearOptimal, RandomChains) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    Plan p = RandomChain(rng);
    const double mtbf = 5.0 + rng.NextDouble() * 500.0;
    FtPlanEnumerator unpruned(MakeContext(mtbf), NoPruning());
    FtPlanEnumerator pruned(MakeContext(mtbf));  // all rules on
    auto b1 = unpruned.FindBest(p);
    auto b2 = pruned.FindBest(p);
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    EXPECT_GE(b2->estimated_cost, b1->estimated_cost - 1e-9)
        << "trial=" << trial;
    EXPECT_LE(b2->estimated_cost, b1->estimated_cost * 1.25)
        << "trial=" << trial << " mtbf=" << mtbf;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullPruningNearOptimal,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(EnumeratorTest, HighMtbfPrefersNoMaterialization) {
  Plan p = Fig3Plan();
  FtPlanEnumerator enumerator(MakeContext(1e12));
  auto best = enumerator.FindBest(p);
  ASSERT_TRUE(best.ok());
  // With effectively no failures, materializing anything only adds cost.
  EXPECT_EQ(best->config.NumMaterialized(), 2u);  // the two sinks
}

TEST(EnumeratorTest, LowMtbfPrefersMoreMaterialization) {
  Plan p = Fig3Plan();
  FtPlanEnumerator enumerator(MakeContext(4.0), NoPruning());
  auto best = enumerator.FindBest(p);
  ASSERT_TRUE(best.ok());
  EXPECT_GT(best->config.NumMaterialized(), 2u);
}

TEST(EnumeratorTest, PicksCheaperCandidatePlan) {
  // Two equivalent plans; the second has smaller costs everywhere.
  PlanBuilder b1("expensive");
  OpId s = b1.Scan("R", 1e6, 100, 10.0);
  b1.Unary(OpType::kHashAggregate, "agg", s, 10.0, 1.0);
  Plan p1 = std::move(b1).Build();

  PlanBuilder b2("cheap");
  s = b2.Scan("R", 1e6, 100, 1.0);
  b2.Unary(OpType::kHashAggregate, "agg", s, 1.0, 0.1);
  Plan p2 = std::move(b2).Build();

  FtPlanEnumerator enumerator(MakeContext(60.0));
  auto best = enumerator.FindBest({p1, p2});
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->plan_index, 1u);
}

TEST(EnumeratorTest, TopKRecoversPlanBetterUnderFailures) {
  // Plan A is faster without failures, but its only intermediate is huge
  // (expensive to materialize). Plan B is slightly slower but has a cheap
  // checkpoint. Under a low MTBF the enumerator must pick B.
  PlanBuilder ba("fast-but-fragile");
  OpId s = ba.Scan("R", 1e6, 100, 9.0);
  ba.plan().mutable_node(s).materialize_cost = 100.0;
  ba.Unary(OpType::kHashAggregate, "agg", s, 9.0, 0.1);
  Plan pa = std::move(ba).Build();

  PlanBuilder bb("slower-but-checkpointable");
  s = bb.Scan("R", 1e6, 100, 10.0);
  bb.plan().mutable_node(s).materialize_cost = 0.5;
  bb.Unary(OpType::kHashAggregate, "agg", s, 10.0, 0.1);
  Plan pb = std::move(bb).Build();

  FtPlanEnumerator low_mtbf(MakeContext(8.0));
  auto best = low_mtbf.FindBest({pa, pb});
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->plan_index, 1u);

  FtPlanEnumerator high_mtbf(MakeContext(1e12));
  auto best2 = high_mtbf.FindBest({pa, pb});
  ASSERT_TRUE(best2.ok());
  EXPECT_EQ(best2->plan_index, 0u);
}

TEST(EnumeratorTest, RejectsEmptyCandidateList) {
  FtPlanEnumerator enumerator(MakeContext(60.0));
  EXPECT_FALSE(enumerator.FindBest(std::vector<Plan>{}).ok());
}

TEST(EnumeratorTest, RejectsTooManyFreeOperators) {
  PlanBuilder b("wide");
  std::vector<OpId> scans;
  for (int i = 0; i < 30; ++i) {
    scans.push_back(b.Scan("s" + std::to_string(i), 10, 8, 1.0));
  }
  b.Nary(OpType::kUnion, "u", scans, 1.0, 0.1);
  Plan p = std::move(b).Build();
  EnumerationOptions opts = NoPruning();
  opts.max_free_operators = 10;
  FtPlanEnumerator enumerator(MakeContext(60.0), opts);
  EXPECT_FALSE(enumerator.FindBest(p).ok());
}

TEST(EnumeratorTest, StatsToStringMentionsCounters) {
  Plan p = Fig3Plan();
  FtPlanEnumerator enumerator(MakeContext(60.0));
  ASSERT_TRUE(enumerator.FindBest(p).ok());
  EXPECT_NE(enumerator.stats().ToString().find("plans="),
            std::string::npos);
}

TEST(EnumeratorTest, ChosenConfigValidatesAgainstChosenPlan) {
  Plan p = Fig3Plan();
  FtPlanEnumerator enumerator(MakeContext(60.0));
  auto best = enumerator.FindBest(p);
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(best->config.Validate(best->plan).ok());
  EXPECT_FALSE(best->dominant_path.empty());
}

}  // namespace
}  // namespace xdbft::ft
