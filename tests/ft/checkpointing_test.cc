#include "ft/checkpointing.h"

#include <gtest/gtest.h>

namespace xdbft::ft {
namespace {

FailureParams Params(double mtbf, double mttr = 1.0) {
  FailureParams p;
  p.mtbf_cost = mtbf;
  p.mttr_cost = mttr;
  return p;
}

TEST(CheckpointParamsTest, Validation) {
  CheckpointParams c;
  EXPECT_TRUE(c.Validate().ok());
  c.checkpoint_cost = -1.0;
  EXPECT_FALSE(c.Validate().ok());
  c = CheckpointParams{};
  c.interval = -2.0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CheckpointingTest, SegmentCount) {
  EXPECT_EQ(NumCheckpointSegments(100.0, 0.0), 1);
  EXPECT_EQ(NumCheckpointSegments(100.0, 200.0), 1);
  EXPECT_EQ(NumCheckpointSegments(100.0, 100.0), 1);
  EXPECT_EQ(NumCheckpointSegments(100.0, 50.0), 2);
  EXPECT_EQ(NumCheckpointSegments(100.0, 30.0), 4);
}

TEST(CheckpointingTest, DisabledEqualsPlainRuntime) {
  CheckpointParams ckpt;
  ckpt.interval = 0.0;
  const FailureParams p = Params(600.0);
  EXPECT_DOUBLE_EQ(OperatorTotalRuntimeWithCheckpoints(100.0, ckpt, p),
                   OperatorTotalRuntime(100.0, p));
}

TEST(CheckpointingTest, ZeroDurationIsFree) {
  CheckpointParams ckpt;
  ckpt.interval = 10.0;
  EXPECT_DOUBLE_EQ(
      OperatorTotalRuntimeWithCheckpoints(0.0, ckpt, Params(600.0)), 0.0);
}

TEST(CheckpointingTest, NoFailuresMeansCheckpointsOnlyAddOverhead) {
  CheckpointParams ckpt;
  ckpt.interval = 25.0;
  ckpt.checkpoint_cost = 2.0;
  const FailureParams p = Params(1e15, 0.0);
  // 4 segments of 25s, 3 checkpoint writes of 2s.
  EXPECT_NEAR(OperatorTotalRuntimeWithCheckpoints(100.0, ckpt, p),
              100.0 + 3 * 2.0, 1e-6);
}

TEST(CheckpointingTest, HelpsLongOperatorsUnderFrequentFailures) {
  // The paper's §7 motivation: a long operator (t ~ MTBF) benefits from
  // splitting into segments.
  const FailureParams p = Params(600.0);
  const double t = 1200.0;
  const double plain = OperatorTotalRuntime(t, p);
  CheckpointParams ckpt;
  ckpt.checkpoint_cost = 2.0;
  ckpt.interval = 120.0;
  const double with = OperatorTotalRuntimeWithCheckpoints(t, ckpt, p);
  EXPECT_LT(with, plain * 0.5);
}

TEST(CheckpointingTest, HurtsShortOperators) {
  // A short operator under rare failures only pays the write costs.
  const FailureParams p = Params(86400.0);
  CheckpointParams ckpt;
  ckpt.checkpoint_cost = 5.0;
  ckpt.interval = 10.0;
  EXPECT_GT(OperatorTotalRuntimeWithCheckpoints(60.0, ckpt, p),
            OperatorTotalRuntime(60.0, p));
}

TEST(CheckpointingTest, OptimalIntervalBeatsNeighbors) {
  const FailureParams p = Params(600.0);
  const double t = 1800.0, c = 3.0;
  const double opt = OptimalCheckpointInterval(t, c, p);
  CheckpointParams ckpt;
  ckpt.checkpoint_cost = c;
  ckpt.interval = opt;
  const double best = OperatorTotalRuntimeWithCheckpoints(t, ckpt, p);
  for (double factor : {0.5, 0.8, 1.25, 2.0}) {
    ckpt.interval = opt * factor;
    EXPECT_GE(OperatorTotalRuntimeWithCheckpoints(t, ckpt, p),
              best - 1e-9)
        << factor;
  }
}

TEST(CheckpointingTest, OptimalIntervalNearYoungDaly) {
  // The exact discrete optimum lands in the same ballpark as the
  // first-order sqrt(2*C*MTBF) rule for t >> delta*.
  const FailureParams p = Params(1000.0, 0.0);
  const double c = 2.0;
  const double yd = YoungDalyInterval(c, p.mtbf_cost);  // ~63.2s
  const double opt = OptimalCheckpointInterval(10000.0, c, p);
  EXPECT_GT(opt, yd / 3.0);
  EXPECT_LT(opt, yd * 3.0);
}

TEST(CheckpointingTest, NoCheckpointWhenFailureFree) {
  const FailureParams p = Params(1e15, 0.0);
  EXPECT_DOUBLE_EQ(OptimalCheckpointInterval(1000.0, 5.0, p), 1000.0);
}

TEST(CheckpointingTest, YoungDalyFormula) {
  EXPECT_DOUBLE_EQ(YoungDalyInterval(2.0, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(YoungDalyInterval(0.0, 100.0), 0.0);
}

// Property sweep: with free checkpoints, more segments never hurt.
class FreeCheckpoints : public ::testing::TestWithParam<double> {};

TEST_P(FreeCheckpoints, MonotoneImprovement) {
  const FailureParams p = Params(GetParam());
  const double t = 500.0;
  CheckpointParams ckpt;
  ckpt.checkpoint_cost = 0.0;
  double prev = OperatorTotalRuntime(t, p);
  for (int k = 2; k <= 32; k *= 2) {
    ckpt.interval = t / k;
    const double cost = OperatorTotalRuntimeWithCheckpoints(t, ckpt, p);
    EXPECT_LE(cost, prev + 1e-9) << "k=" << k;
    prev = cost;
  }
}

INSTANTIATE_TEST_SUITE_P(Mtbfs, FreeCheckpoints,
                         ::testing::Values(100.0, 600.0, 3600.0));

}  // namespace
}  // namespace xdbft::ft
