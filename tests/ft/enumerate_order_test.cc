// Guards the contract that table3_robustness relies on: EnumerateAll
// returns configurations in FromFreeMask mask order, so position i in the
// returned vector IS mask i.
#include <gtest/gtest.h>

#include "ft/enumerator.h"
#include "tpch/queries.h"

namespace xdbft::ft {
namespace {

TEST(EnumerateOrderTest, PositionsAreMasks) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  ASSERT_TRUE(plan.ok());
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, 3600.0, 1.0);
  FtPlanEnumerator enumerator(ctx);
  auto all = enumerator.EnumerateAll(*plan);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 32u);
  for (uint64_t mask = 0; mask < all->size(); ++mask) {
    EXPECT_TRUE((*all)[mask].first ==
                MaterializationConfig::FromFreeMask(*plan, mask))
        << mask;
  }
}

TEST(EnumerateOrderTest, EstimatesMatchDirectEvaluation) {
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, 3600.0, 1.0);
  FtPlanEnumerator enumerator(ctx);
  auto all = enumerator.EnumerateAll(*plan);
  ASSERT_TRUE(all.ok());
  FtCostModel model(ctx);
  for (uint64_t mask = 0; mask < all->size(); mask += 5) {
    auto est = model.Estimate(*plan, (*all)[mask].first);
    ASSERT_TRUE(est.ok());
    EXPECT_DOUBLE_EQ((*all)[mask].second, est->dominant_cost) << mask;
  }
}

}  // namespace
}  // namespace xdbft::ft
