#include "api/advisor_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "api/fingerprint.h"
#include "ft/scheme.h"
#include "tpch/queries.h"

namespace xdbft::api {
namespace {

plan::Plan SmallPlan(const std::string& name, double scan_tr = 100.0) {
  plan::PlanBuilder b(name);
  auto scan = b.Scan("t", 1e8, 64, scan_tr);
  auto join = b.Unary(plan::OpType::kHashJoin, "join", scan, 80.0, 30.0);
  b.Unary(plan::OpType::kHashAggregate, "agg", join, 40.0, 1.0);
  return std::move(b).Build();
}

AdvisorRequest MakeRequest(plan::Plan plan, double mtbf = 3600.0) {
  AdvisorRequest r;
  r.candidates.push_back(std::move(plan));
  r.cluster = cost::MakeCluster(10, mtbf, 1.0);
  return r;
}

bool BitIdentical(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectSameScheme(const ft::SchemePlan& served,
                      const ft::SchemePlan& fresh) {
  EXPECT_EQ(served.plan_index, fresh.plan_index);
  EXPECT_TRUE(served.config == fresh.config);
  EXPECT_TRUE(BitIdentical(served.estimated_cost, fresh.estimated_cost))
      << served.estimated_cost << " vs " << fresh.estimated_cost;
  EXPECT_EQ(served.plan.name(), fresh.plan.name());
}

// The serving invariant on real plans: Q1/Q3/Q5 answers through the
// service — miss, then hit — are bit-identical to one-shot enumeration.
TEST(AdvisorServiceTest, CachedAnswerBitIdenticalToFreshOnTpch) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  for (const tpch::TpchQuery q : {tpch::TpchQuery::kQ1, tpch::TpchQuery::kQ3,
                                  tpch::TpchQuery::kQ5}) {
    tpch::TpchPlanConfig cfg;
    cfg.scale_factor = 10.0;
    auto plan = tpch::BuildQuery(q, cfg);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const AdvisorRequest request = MakeRequest(*plan);
    ft::FtCostContext context;
    context.cluster = request.cluster;
    context.model = request.model;
    const auto fresh = ft::ApplyCostBasedScheme(
        request.candidates, context, service.options().enumeration);
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    const auto first = service.Advise(request);
    ASSERT_TRUE(first.ok()) << first.status();
    const auto second = service.Advise(request);
    ASSERT_TRUE(second.ok()) << second.status();
    ExpectSameScheme(first.ValueOrDie(), fresh.ValueOrDie());
    ExpectSameScheme(second.ValueOrDie(), fresh.ValueOrDie());
  }
  const AdvisorServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(AdvisorServiceTest, MultiCandidateAnswerCarriesCallersPlan) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  AdvisorRequest request;
  request.candidates.push_back(SmallPlan("expensive", 500.0));
  request.candidates.push_back(SmallPlan("cheap", 10.0));
  request.cluster = cost::MakeCluster(10, 3600.0, 1.0);
  for (int round = 0; round < 2; ++round) {  // miss, then hit
    const auto chosen = service.Advise(request);
    ASSERT_TRUE(chosen.ok()) << chosen.status();
    EXPECT_EQ(chosen.ValueOrDie().plan_index, 1u);
    EXPECT_EQ(chosen.ValueOrDie().plan.name(), "cheap");
  }
}

TEST(AdvisorServiceTest, LruEvictsLeastRecentlyUsed) {
  AdvisorServiceOptions options;
  options.num_shards = 1;
  options.cache_capacity = 2;
  options.memo_cache_capacity = 0;
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0), {}, options);
  const AdvisorRequest a = MakeRequest(SmallPlan("a"), 1000.0);
  const AdvisorRequest b = MakeRequest(SmallPlan("b"), 2000.0);
  const AdvisorRequest c = MakeRequest(SmallPlan("c"), 3000.0);
  ASSERT_TRUE(service.Advise(a).ok());
  ASSERT_TRUE(service.Advise(b).ok());
  // Touch `a`: it becomes most-recently-used, so inserting `c` must evict
  // `b`, not `a`.
  ASSERT_TRUE(service.Advise(a).ok());
  ASSERT_TRUE(service.Advise(c).ok());
  AdvisorServiceStats stats = service.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  // `a` and `c` hit; `b` re-enumerates.
  ASSERT_TRUE(service.Advise(a).ok());
  ASSERT_TRUE(service.Advise(c).ok());
  ASSERT_TRUE(service.Advise(b).ok());
  stats = service.stats();
  EXPECT_EQ(stats.hits, 3u);    // a (touch), a, c
  EXPECT_EQ(stats.misses, 4u);  // a, b, c, b again
}

TEST(AdvisorServiceTest, EvictedKeyWarmStartsFromParkedMemo) {
  AdvisorServiceOptions options;
  options.num_shards = 1;
  options.cache_capacity = 1;
  options.memo_cache_capacity = 8;
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0), {}, options);
  const AdvisorRequest a = MakeRequest(SmallPlan("a"), 1000.0);
  const AdvisorRequest b = MakeRequest(SmallPlan("b"), 2000.0);
  const auto cold = service.Advise(a);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(service.Advise(b).ok());  // evicts a, parks its memo
  EXPECT_EQ(service.stats().evictions, 1u);
  const auto warm = service.Advise(a);  // re-enumerates with the memo
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(service.stats().memo_warm_starts, 1u);
  ExpectSameScheme(warm.ValueOrDie(), cold.ValueOrDie());
}

// 8 concurrent identical requests share one enumeration (run under TSan
// in CI). The starting gun makes all threads issue the request together;
// whichever thread wins becomes the single miss, and every other request
// is a coalesced waiter or (if it arrived after completion) a hit.
TEST(AdvisorServiceTest, ConcurrentIdenticalRequestsEnumerateOnce) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  const AdvisorRequest request = MakeRequest(SmallPlan("shared"));
  constexpr int kThreads = 8;
  std::mutex mu;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (++ready == kThreads) cv.notify_all();
        cv.wait(lock, [&] { return go; });
      }
      if (!service.Advise(request).ok()) failures.fetch_add(1);
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready == kThreads; });
    go = true;
  }
  cv.notify_all();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const AdvisorServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kThreads));
}

TEST(AdvisorServiceTest, MaxInflightZeroBypassesEveryRequest) {
  AdvisorServiceOptions options;
  options.max_inflight = 0;
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0), {}, options);
  const AdvisorRequest request = MakeRequest(SmallPlan("p"));
  const auto first = service.Advise(request);
  const auto second = service.Advise(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameScheme(second.ValueOrDie(), first.ValueOrDie());
  const AdvisorServiceStats stats = service.stats();
  EXPECT_EQ(stats.bypassed, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(AdvisorServiceTest, CacheDisabledStillAnswersCorrectly) {
  AdvisorServiceOptions options;
  options.cache_enabled = false;
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0), {}, options);
  const AdvisorRequest request = MakeRequest(SmallPlan("p"));
  ft::FtCostContext context;
  context.cluster = request.cluster;
  context.model = request.model;
  const auto fresh = ft::ApplyCostBasedScheme(request.candidates, context,
                                              service.options().enumeration);
  ASSERT_TRUE(fresh.ok());
  const auto served = service.Advise(request);
  ASSERT_TRUE(served.ok());
  ExpectSameScheme(served.ValueOrDie(), fresh.ValueOrDie());
  EXPECT_EQ(service.stats().bypassed, 1u);
  EXPECT_EQ(service.stats().entries, 0u);
}

TEST(AdvisorServiceTest, ErrorsAreNotCached) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  AdvisorRequest empty;  // no candidate plans -> InvalidArgument
  empty.cluster = cost::MakeCluster(10, 3600.0, 1.0);
  EXPECT_FALSE(service.Advise(empty).ok());
  EXPECT_FALSE(service.Advise(empty).ok());
  const AdvisorServiceStats stats = service.stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.misses, 2u);  // second attempt re-enumerates, no hit
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(AdvisorServiceTest, SinglePlanOverloadUsesDefaults) {
  AdvisorService service(cost::MakeCluster(10, 600.0, 1.0));
  const auto chosen = service.Advise(SmallPlan("p"));
  ASSERT_TRUE(chosen.ok()) << chosen.status();
  EXPECT_EQ(chosen.ValueOrDie().kind, ft::SchemeKind::kCostBased);
  EXPECT_GT(chosen.ValueOrDie().estimated_cost, 0.0);
}

TEST(AdvisorServiceTest, AdviseAsyncDeliversOnPoolAndInline) {
  const AdvisorRequest request = MakeRequest(SmallPlan("p"));
  for (const int server_threads : {0, 2}) {
    AdvisorServiceOptions options;
    options.server_threads = server_threads;
    AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0), {}, options);
    std::mutex mu;
    std::condition_variable cv;
    int delivered = 0;
    bool all_ok = true;
    constexpr int kRequests = 4;
    for (int i = 0; i < kRequests; ++i) {
      service.AdviseAsync(request, [&](Result<ft::SchemePlan> result) {
        std::lock_guard<std::mutex> lock(mu);
        all_ok = all_ok && result.ok();
        if (++delivered == kRequests) cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return delivered == kRequests; });
    EXPECT_TRUE(all_ok);
    if (server_threads == 0) {
      EXPECT_EQ(service.stats().async_inline, static_cast<uint64_t>(kRequests));
    }
  }
}

TEST(AdvisorServiceTest, RecordObservationAccumulates) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  ft::ObservedExecution obs;
  obs.runtime_seconds = 360.0;
  obs.failures = 10;
  service.RecordObservation(obs, /*num_nodes=*/10,
                            /*correlated_failures=*/2);
  const auto observed = service.observed_cluster();
  EXPECT_EQ(observed.observations, 1u);
  // 360 s x 10 nodes / 10 failures.
  EXPECT_DOUBLE_EQ(observed.mtbf_seconds(), 360.0);
  // 360 s wall / 2 burst events.
  EXPECT_DOUBLE_EQ(observed.burst_mtbf_seconds(), 180.0);
  EXPECT_EQ(service.stats().observations, 1u);
}

TEST(AdvisorServiceTest, NoEvidenceIsNotDrift) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  const AdvisorRequest r = MakeRequest(SmallPlan("p"));
  ASSERT_TRUE(service.Advise(r).ok());
  // A long failure-free run is consistent with any assumed MTBF — it must
  // not evict anything (observed MTBF is undefined, not zero).
  ft::ObservedExecution clean;
  clean.runtime_seconds = 500.0;
  service.RecordObservation(clean, 10);
  EXPECT_EQ(service.stats().drift_invalidations, 0u);
  EXPECT_EQ(service.InvalidateDrifted(), 0u);
  ASSERT_TRUE(service.Advise(r).ok());
  EXPECT_EQ(service.stats().hits, 1u);
}

TEST(AdvisorServiceTest, MtbfDriftEvictsCachedPlans) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  const AdvisorRequest r = MakeRequest(SmallPlan("p"));  // assumes 3600 s
  ASSERT_TRUE(service.Advise(r).ok());
  EXPECT_EQ(service.stats().entries, 1u);
  // Ten failures in a 360 s run on 10 nodes: observed per-node MTBF 360,
  // a 0.9 relative drift from the assumed 3600 — past the 0.5 default.
  ft::ObservedExecution stormy;
  stormy.runtime_seconds = 360.0;
  stormy.failures = 10;
  service.RecordObservation(stormy, 10);
  EXPECT_EQ(service.stats().drift_invalidations, 1u);
  EXPECT_EQ(service.stats().entries, 0u);
  // Re-advising re-enumerates, and the answer is still bit-identical to a
  // fresh one-shot enumeration of the same request.
  ft::FtCostContext context;
  context.cluster = r.cluster;
  context.model = r.model;
  const auto fresh = ft::ApplyCostBasedScheme(r.candidates, context,
                                              service.options().enumeration);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  const auto again = service.Advise(r);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(service.stats().misses, 2u);
  ExpectSameScheme(again.ValueOrDie(), fresh.ValueOrDie());
}

TEST(AdvisorServiceTest, ObservedBurstsEvictIndependentPlans) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  const AdvisorRequest r = MakeRequest(SmallPlan("p"));
  ASSERT_TRUE(service.Advise(r).ok());
  // Observed per-node MTBF matches the assumed 3600 exactly, but half the
  // failures arrived in bursts: the burst term alone is full drift (the
  // entry assumed no correlated process at all).
  ft::ObservedExecution bursty;
  bursty.runtime_seconds = 3600.0;
  bursty.failures = 10;
  service.RecordObservation(bursty, 10, /*correlated_failures=*/5);
  EXPECT_EQ(service.stats().drift_invalidations, 1u);
  EXPECT_EQ(service.stats().entries, 0u);
}

TEST(AdvisorServiceTest, DriftSweepDisabledByNonPositiveThreshold) {
  AdvisorServiceOptions options;
  options.drift_threshold = 0.0;
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0), {}, options);
  const AdvisorRequest r = MakeRequest(SmallPlan("p"));
  ASSERT_TRUE(service.Advise(r).ok());
  ft::ObservedExecution stormy;
  stormy.runtime_seconds = 360.0;
  stormy.failures = 10;
  service.RecordObservation(stormy, 10);
  // Observation is folded in, but no automatic sweep runs.
  EXPECT_EQ(service.stats().observations, 1u);
  EXPECT_EQ(service.stats().drift_invalidations, 0u);
  EXPECT_EQ(service.stats().entries, 1u);
}

TEST(AdvisorServiceTest, CachedAnswerBitIdenticalWithBurstsOn) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  AdvisorRequest request = MakeRequest(SmallPlan("bursty"));
  request.cluster.burst_mtbf_seconds = 600.0;
  request.cluster.burst_fanout = 0.5;
  request.cluster.num_placement_groups = 4;
  ft::FtCostContext context;
  context.cluster = request.cluster;
  context.model = request.model;
  const auto fresh = ft::ApplyCostBasedScheme(request.candidates, context,
                                              service.options().enumeration);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  const auto first = service.Advise(request);
  ASSERT_TRUE(first.ok()) << first.status();
  const auto second = service.Advise(request);
  ASSERT_TRUE(second.ok()) << second.status();
  ExpectSameScheme(first.ValueOrDie(), fresh.ValueOrDie());
  ExpectSameScheme(second.ValueOrDie(), fresh.ValueOrDie());
  EXPECT_EQ(service.stats().hits, 1u);
}

TEST(AdvisorServiceTest, EntrySnapshotReportsHotKeysFirst) {
  AdvisorService service(cost::MakeCluster(10, 3600.0, 1.0));
  const AdvisorRequest hot = MakeRequest(SmallPlan("hot"), 1000.0);
  const AdvisorRequest cold = MakeRequest(SmallPlan("cold"), 2000.0);
  ASSERT_TRUE(service.Advise(hot).ok());
  ASSERT_TRUE(service.Advise(cold).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.Advise(hot).ok());
  const auto entries = service.EntrySnapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].hits, 3u);
  ft::FtCostContext context;
  context.cluster = hot.cluster;
  context.model = hot.model;
  const auto fp = FingerprintRequest(hot.candidates, context,
                                     service.options().enumeration);
  EXPECT_EQ(entries[0].fingerprint, fp.Hex());
}

}  // namespace
}  // namespace xdbft::api
