#include "api/advisor.h"

#include <gtest/gtest.h>

#include "api/xdbft.h"  // umbrella header must compile standalone

namespace xdbft::api {
namespace {

plan::Plan SamplePlan() {
  plan::PlanBuilder b("sample");
  auto scan = b.Scan("T", 1e8, 64, 100.0);
  b.Constrain(scan, plan::MatConstraint::kNeverMaterialize);
  auto join = b.Unary(plan::OpType::kHashJoin, "join", scan, 80.0, 30.0);
  auto agg = b.Unary(plan::OpType::kHashAggregate, "agg", join, 40.0, 1.0);
  b.Unary(plan::OpType::kSort, "sort", agg, 5.0, 0.2);
  return std::move(b).Build();
}

TEST(AdvisorTest, ChooseBestPlanReturnsCostBasedScheme) {
  FaultToleranceAdvisor advisor(cost::MakeCluster(10, 600.0, 1.0));
  auto chosen = advisor.ChooseBestPlan(SamplePlan());
  ASSERT_TRUE(chosen.ok()) << chosen.status();
  EXPECT_EQ(chosen->kind, ft::SchemeKind::kCostBased);
  EXPECT_EQ(chosen->recovery, ft::RecoveryMode::kFineGrained);
  EXPECT_GT(chosen->estimated_cost, 0.0);
  EXPECT_TRUE(chosen->config.Validate(chosen->plan).ok());
}

TEST(AdvisorTest, ChooseBestOverCandidates) {
  plan::PlanBuilder cheap("cheap");
  auto s = cheap.Scan("T", 1e6, 8, 1.0);
  cheap.Unary(plan::OpType::kHashAggregate, "agg", s, 1.0, 0.1);
  plan::Plan pc = std::move(cheap).Build();
  FaultToleranceAdvisor advisor(cost::MakeCluster(10, 3600.0, 1.0));
  auto chosen = advisor.ChooseBestPlan({SamplePlan(), pc});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen->plan.name(), "cheap");
}

TEST(AdvisorTest, CompareSchemesListsAllFiveSorted) {
  FaultToleranceAdvisor advisor(cost::MakeCluster(10, 600.0, 1.0));
  auto cmp = advisor.CompareSchemes(SamplePlan());
  ASSERT_TRUE(cmp.ok()) << cmp.status();
  ASSERT_EQ(cmp->estimates.size(), 5u);
  for (size_t i = 1; i < cmp->estimates.size(); ++i) {
    EXPECT_LE(cmp->estimates[i - 1].estimated_runtime,
              cmp->estimates[i].estimated_runtime);
  }
}

TEST(AdvisorTest, RecommendationIsNeverWorseThanOthers) {
  for (double mtbf : {120.0, 3600.0, 86400.0}) {
    FaultToleranceAdvisor advisor(cost::MakeCluster(10, mtbf, 1.0));
    auto cmp = advisor.CompareSchemes(SamplePlan());
    ASSERT_TRUE(cmp.ok());
    double recommended_cost = 0.0, best = 1e300;
    for (const auto& e : cmp->estimates) {
      if (e.kind == cmp->recommended) recommended_cost = e.estimated_runtime;
      best = std::min(best, e.estimated_runtime);
    }
    EXPECT_NEAR(recommended_cost, best, best * 1e-12) << mtbf;
  }
}

TEST(AdvisorTest, TiesPreferCostBased) {
  // With effectively no failures, no-mat and cost-based tie; the
  // recommendation must be cost-based.
  FaultToleranceAdvisor advisor(cost::MakeCluster(10, 1e15, 1.0));
  auto cmp = advisor.CompareSchemes(SamplePlan());
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->recommended, ft::SchemeKind::kCostBased);
}

TEST(AdvisorTest, ExplainMentionsKeyFacts) {
  FaultToleranceAdvisor advisor(cost::MakeCluster(10, 600.0, 1.0));
  auto chosen = advisor.ChooseBestPlan(SamplePlan());
  ASSERT_TRUE(chosen.ok());
  const std::string report = advisor.Explain(*chosen);
  EXPECT_NE(report.find("cost-based"), std::string::npos);
  EXPECT_NE(report.find("fine-grained"), std::string::npos);
  EXPECT_NE(report.find("estimated runtime"), std::string::npos);
  EXPECT_NE(report.find("join"), std::string::npos);
}

TEST(AdvisorTest, RespectsEnumerationOptions) {
  ft::EnumerationOptions opts;
  opts.max_free_operators = 0;  // everything rejected
  opts.pruning.rule1 = opts.pruning.rule2 = false;
  FaultToleranceAdvisor advisor(cost::MakeCluster(10, 600.0, 1.0), {},
                                opts);
  EXPECT_FALSE(advisor.ChooseBestPlan(SamplePlan()).ok());
}

TEST(AdvisorTest, PropagatesModelParams) {
  cost::CostModelParams model;
  model.success_target = 0.5;
  FaultToleranceAdvisor advisor(cost::MakeCluster(10, 600.0, 1.0), model);
  EXPECT_DOUBLE_EQ(advisor.context().model.success_target, 0.5);
  EXPECT_DOUBLE_EQ(
      advisor.context().MakeFailureParams().success_target, 0.5);
}

TEST(AdvisorTest, RejectsInvalidInput) {
  FaultToleranceAdvisor advisor(cost::MakeCluster(10, 600.0, 1.0));
  EXPECT_FALSE(advisor.ChooseBestPlan(plan::Plan{}).ok());
  EXPECT_FALSE(advisor.CompareSchemes(plan::Plan{}).ok());
}

}  // namespace
}  // namespace xdbft::api
