#include "api/fingerprint.h"

#include <gtest/gtest.h>

#include "cost/cost_params.h"
#include "ft/ft_cost.h"
#include "plan/plan.h"

namespace xdbft::api {
namespace {

plan::Plan MakePlan(const std::string& name, const std::string& prefix,
                    double scan_tr = 100.0, double join_tr = 80.0) {
  plan::PlanBuilder b(name);
  auto scan = b.Scan(prefix + "_scan", 1e8, 64, scan_tr);
  auto join =
      b.Unary(plan::OpType::kHashJoin, prefix + "_join", scan, join_tr, 30.0);
  b.Unary(plan::OpType::kHashAggregate, prefix + "_agg", join, 40.0, 1.0);
  return std::move(b).Build();
}

ft::FtCostContext MakeContext(double mtbf = 3600.0) {
  ft::FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(10, mtbf, 1.0);
  return ctx;
}

TEST(FingerprintTest, RenamingEveryNodeYieldsSameKey) {
  // Same shape, same statistics — only the plan name and node labels
  // differ. Labels cannot influence findBestFTPlan, so the keys match.
  const auto a = FingerprintRequest({MakePlan("q", "a")}, MakeContext(), {});
  const auto b =
      FingerprintRequest({MakePlan("renamed", "zz")}, MakeContext(), {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hex(), b.Hex());
}

TEST(FingerprintTest, DifferentMtbfYieldsDifferentKey) {
  const auto a =
      FingerprintRequest({MakePlan("q", "a")}, MakeContext(3600.0), {});
  const auto b =
      FingerprintRequest({MakePlan("q", "a")}, MakeContext(3601.0), {});
  EXPECT_NE(a, b);
}

TEST(FingerprintTest, DifferentOperatorCostYieldsDifferentKey) {
  const auto a = FingerprintRequest(
      {MakePlan("q", "a", /*scan_tr=*/100.0)}, MakeContext(), {});
  const auto b = FingerprintRequest(
      {MakePlan("q", "a", /*scan_tr=*/101.0)}, MakeContext(), {});
  EXPECT_NE(a, b);
}

TEST(FingerprintTest, DifferentConstraintYieldsDifferentKey) {
  plan::PlanBuilder b1("q");
  auto s1 = b1.Scan("t", 1e8, 64, 100.0);
  b1.Unary(plan::OpType::kHashAggregate, "agg", s1, 40.0, 1.0);
  plan::PlanBuilder b2("q");
  auto s2 = b2.Scan("t", 1e8, 64, 100.0);
  b2.Constrain(s2, plan::MatConstraint::kNeverMaterialize);
  b2.Unary(plan::OpType::kHashAggregate, "agg", s2, 40.0, 1.0);
  const auto a =
      FingerprintRequest({std::move(b1).Build()}, MakeContext(), {});
  const auto b =
      FingerprintRequest({std::move(b2).Build()}, MakeContext(), {});
  EXPECT_NE(a, b);
}

TEST(FingerprintTest, PruningOptionsAreCovered) {
  ft::EnumerationOptions with, without;
  without.pruning.rule3 = false;
  const auto a = FingerprintRequest({MakePlan("q", "a")}, MakeContext(), with);
  const auto b =
      FingerprintRequest({MakePlan("q", "a")}, MakeContext(), without);
  EXPECT_NE(a, b);
}

TEST(FingerprintTest, ExecutionKnobsAreExcluded) {
  // num_threads (and shared_memo) cannot change the chosen plan, so they
  // must not fragment the cache key space.
  ft::EnumerationOptions seq, par;
  seq.num_threads = 1;
  par.num_threads = 8;
  const auto a = FingerprintRequest({MakePlan("q", "a")}, MakeContext(), seq);
  const auto b = FingerprintRequest({MakePlan("q", "a")}, MakeContext(), par);
  EXPECT_EQ(a, b);
}

TEST(FingerprintTest, CandidateOrderMatters) {
  // The enumerator breaks cost ties by candidate index, so a permuted
  // candidate list is a different request.
  const plan::Plan p1 = MakePlan("a", "a");
  const plan::Plan p2 = MakePlan("b", "b", 50.0, 20.0);
  const auto a = FingerprintRequest({p1, p2}, MakeContext(), {});
  const auto b = FingerprintRequest({p2, p1}, MakeContext(), {});
  EXPECT_NE(a, b);
}

TEST(FingerprintTest, BurstParametersAreCovered) {
  // A burst process changes what findBestFTPlan returns, so it must be
  // part of the cache key.
  ft::FtCostContext bursty = MakeContext();
  bursty.cluster.burst_mtbf_seconds = 600.0;
  const auto a = FingerprintRequest({MakePlan("q", "a")}, MakeContext(), {});
  const auto b = FingerprintRequest({MakePlan("q", "a")}, bursty, {});
  EXPECT_NE(a, b);
  ft::FtCostContext fanout = bursty;
  fanout.cluster.burst_fanout = 0.5;
  EXPECT_NE(FingerprintRequest({MakePlan("q", "a")}, bursty, {}),
            FingerprintRequest({MakePlan("q", "a")}, fanout, {}));
}

TEST(FingerprintTest, PlacementParametersAreCovered) {
  ft::FtCostContext placed = MakeContext();
  placed.cluster.num_placement_groups = 4;
  const auto a = FingerprintRequest({MakePlan("q", "a")}, MakeContext(), {});
  const auto b = FingerprintRequest({MakePlan("q", "a")}, placed, {});
  EXPECT_NE(a, b);
  ft::FtCostContext penalty = placed;
  penalty.cluster.remote_read_penalty = 0.75;
  EXPECT_NE(FingerprintRequest({MakePlan("q", "a")}, placed, {}),
            FingerprintRequest({MakePlan("q", "a")}, penalty, {}));
}

TEST(FingerprintTest, WalParametersAreCovered) {
  // Toggling write-ahead lineage (or retuning its log-write / replay
  // costs) changes what the enumerator returns, so each knob must be part
  // of the cache key.
  ft::FtCostContext wal = MakeContext();
  wal.model.wal_enabled = true;
  const auto a = FingerprintRequest({MakePlan("q", "a")}, MakeContext(), {});
  const auto b = FingerprintRequest({MakePlan("q", "a")}, wal, {});
  EXPECT_NE(a, b);
  ft::FtCostContext pricier = wal;
  pricier.model.wal_write_cost = wal.model.wal_write_cost + 0.1;
  EXPECT_NE(FingerprintRequest({MakePlan("q", "a")}, wal, {}),
            FingerprintRequest({MakePlan("q", "a")}, pricier, {}));
  ft::FtCostContext slower_replay = wal;
  slower_replay.model.wal_replay_factor = wal.model.wal_replay_factor + 0.25;
  EXPECT_NE(FingerprintRequest({MakePlan("q", "a")}, wal, {}),
            FingerprintRequest({MakePlan("q", "a")}, slower_replay, {}));
}

TEST(FingerprintTest, HexIs32Digits) {
  const auto fp = FingerprintRequest({MakePlan("q", "a")}, MakeContext(), {});
  EXPECT_EQ(fp.Hex().size(), 32u);
  EXPECT_FALSE(fp.words.empty());
}

}  // namespace
}  // namespace xdbft::api
