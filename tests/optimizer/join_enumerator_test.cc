#include "optimizer/join_enumerator.h"

#include <gtest/gtest.h>

#include <set>

#include "tpch/q5_join_graph.h"

namespace xdbft::optimizer {
namespace {

JoinGraph ChainGraph(int n) {
  JoinGraph g;
  for (int i = 0; i < n; ++i) {
    g.AddRelation({"R" + std::to_string(i),
                   100.0 * (i + 1), 1.0 * (i + 1), 10, 50});
  }
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(g.AddEdge(i, i + 1, 0.01).ok());
  }
  return g;
}

TEST(JoinTreeArenaTest, LeafAndJoin) {
  JoinTreeArena arena;
  const int a = arena.Leaf(0);
  const int b = arena.Leaf(1);
  const int j = arena.Join(a, b);
  EXPECT_TRUE(arena.node(a).is_leaf());
  EXPECT_FALSE(arena.node(j).is_leaf());
  EXPECT_EQ(arena.Relations(j), RelSet{0b11});
}

TEST(JoinTreeArenaTest, ToStringShowsStructure) {
  JoinGraph g = ChainGraph(3);
  JoinTreeArena arena;
  const int t =
      arena.Join(arena.Join(arena.Leaf(0), arena.Leaf(1)), arena.Leaf(2));
  EXPECT_EQ(arena.ToString(t, g), "((R0 R1) R2)");
}

// Ordered connected join trees over a chain of n relations:
// Catalan(n-1) * 2^(n-1).
class ChainTreeCount : public ::testing::TestWithParam<std::pair<int, size_t>> {};

TEST_P(ChainTreeCount, MatchesCatalanFormula) {
  const auto [n, expected] = GetParam();
  JoinGraph g = ChainGraph(n);
  JoinTreeArena arena;
  auto trees = EnumerateAllJoinTrees(g, &arena);
  ASSERT_TRUE(trees.ok()) << trees.status();
  EXPECT_EQ(trees->size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChainTreeCount,
    ::testing::Values(std::make_pair(2, size_t{2}),      // C1*2 = 2
                      std::make_pair(3, size_t{8}),      // C2*4 = 8
                      std::make_pair(4, size_t{40}),     // C3*8 = 40
                      std::make_pair(5, size_t{224}),    // C4*16 = 224
                      std::make_pair(6, size_t{1344}))); // C5*32 = 1344

TEST(EnumerateAllTest, Q5Yields1344JoinOrders) {
  // Paper §5.5: 1344 equivalent join orders of TPC-H Q5.
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 10.0;
  auto g = tpch::MakeQ5JoinGraph(cfg);
  ASSERT_TRUE(g.ok());
  JoinTreeArena arena;
  auto trees = EnumerateAllJoinTrees(*g, &arena);
  ASSERT_TRUE(trees.ok());
  EXPECT_EQ(trees->size(), 1344u);
}

TEST(EnumerateAllTest, EveryTreeCoversAllRelations) {
  JoinGraph g = ChainGraph(4);
  JoinTreeArena arena;
  auto trees = EnumerateAllJoinTrees(g, &arena);
  ASSERT_TRUE(trees.ok());
  for (int root : *trees) {
    EXPECT_EQ(arena.Relations(root), g.AllRels());
  }
}

TEST(EnumerateAllTest, TreesAreDistinct) {
  JoinGraph g = ChainGraph(4);
  JoinTreeArena arena;
  auto trees = EnumerateAllJoinTrees(g, &arena);
  ASSERT_TRUE(trees.ok());
  std::set<std::string> shapes;
  for (int root : *trees) shapes.insert(arena.ToString(root, g));
  EXPECT_EQ(shapes.size(), trees->size());
}

TEST(EnumerateAllTest, RejectsNullArena) {
  JoinGraph g = ChainGraph(3);
  EXPECT_FALSE(EnumerateAllJoinTrees(g, nullptr).ok());
}

TEST(TreeCostTest, LeafCostIsScanCost) {
  JoinGraph g = ChainGraph(3);
  JoinTreeArena arena;
  EXPECT_DOUBLE_EQ(TreeCost(arena, arena.Leaf(2), g, {}), 3.0);
}

TEST(TreeCostTest, JoinAddsOperatorCost) {
  JoinGraph g = ChainGraph(2);
  JoinTreeArena arena;
  const int t = arena.Join(arena.Leaf(0), arena.Leaf(1));
  const double cost = TreeCost(arena, t, g, {});
  EXPECT_GT(cost, 1.0 + 2.0);
}

TEST(TreeCostTest, OrderInsensitiveForSameShape) {
  // Build/probe side selection is by cardinality, so (A B) and (B A) cost
  // the same.
  JoinGraph g = ChainGraph(2);
  JoinTreeArena arena;
  const int t1 = arena.Join(arena.Leaf(0), arena.Leaf(1));
  const int t2 = arena.Join(arena.Leaf(1), arena.Leaf(0));
  EXPECT_DOUBLE_EQ(TreeCost(arena, t1, g, {}), TreeCost(arena, t2, g, {}));
}

TEST(TopKTest, ReturnsSortedByCost) {
  JoinGraph g = ChainGraph(5);
  JoinTreeArena arena;
  auto roots = EnumerateTopKJoinTrees(g, 5, {}, &arena);
  ASSERT_TRUE(roots.ok()) << roots.status();
  ASSERT_LE(roots->size(), 5u);
  ASSERT_GE(roots->size(), 2u);
  double prev = 0.0;
  for (int root : *roots) {
    const double cost = TreeCost(arena, root, g, {});
    EXPECT_GE(cost, prev - 1e-9);
    prev = cost;
  }
}

TEST(TopKTest, Top1IsGlobalOptimum) {
  JoinGraph g = ChainGraph(5);
  JoinTreeArena arena_all;
  auto all = EnumerateAllJoinTrees(g, &arena_all);
  ASSERT_TRUE(all.ok());
  double best = 1e300;
  for (int root : *all) {
    best = std::min(best, TreeCost(arena_all, root, g, {}));
  }
  JoinTreeArena arena_dp;
  auto top = EnumerateTopKJoinTrees(g, 1, {}, &arena_dp);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_NEAR(TreeCost(arena_dp, (*top)[0], g, {}), best, 1e-9 * best);
}

TEST(TopKTest, RejectsBadArguments) {
  JoinGraph g = ChainGraph(3);
  JoinTreeArena arena;
  EXPECT_FALSE(EnumerateTopKJoinTrees(g, 0, {}, &arena).ok());
  EXPECT_FALSE(EnumerateTopKJoinTrees(g, 3, {}, nullptr).ok());
}

TEST(EmitPlanTest, ProducesValidPlanWithBoundScans) {
  JoinGraph g = ChainGraph(4);
  JoinTreeArena arena;
  auto trees = EnumerateAllJoinTrees(g, &arena);
  ASSERT_TRUE(trees.ok());
  auto plan = EmitPlan(arena, (*trees)[0], g, {});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->Validate().ok());
  // 4 scans + 3 joins + 1 aggregation sink.
  EXPECT_EQ(plan->num_nodes(), 8u);
  int scans = 0, joins = 0;
  for (const auto& n : plan->nodes()) {
    if (n.type == plan::OpType::kTableScan) {
      ++scans;
      EXPECT_FALSE(n.is_free());
    }
    if (n.type == plan::OpType::kHashJoin) {
      ++joins;
      EXPECT_TRUE(n.is_free());
    }
  }
  EXPECT_EQ(scans, 4);
  EXPECT_EQ(joins, 3);
}

TEST(EmitPlanTest, NoAggregateSinkOption) {
  JoinGraph g = ChainGraph(3);
  JoinTreeArena arena;
  const int t = arena.Join(arena.Join(arena.Leaf(0), arena.Leaf(1)),
                           arena.Leaf(2));
  PlanEmissionOptions opts;
  opts.add_aggregate_sink = false;
  auto plan = EmitPlan(arena, t, g, {}, opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_nodes(), 5u);
  // The top join is the sink.
  EXPECT_EQ(plan->Sinks().size(), 1u);
  EXPECT_EQ(plan->node(plan->Sinks()[0]).type, plan::OpType::kHashJoin);
}

TEST(EmitPlanTest, Q5PlanMatchesHandBuiltCardinalities) {
  // Emitting the Fig. 9 chain order from the join graph must reproduce the
  // hand-built Q5 cardinalities (same catalog, same selectivities).
  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto g = tpch::MakeQ5JoinGraph(cfg);
  ASSERT_TRUE(g.ok());
  JoinTreeArena arena;
  // ((((R N) C) O) L) S — relations were added in this order (0..5).
  int t = arena.Leaf(0);
  for (int i = 1; i < 6; ++i) t = arena.Join(t, arena.Leaf(i));
  auto plan = EmitPlan(arena, t, *g, tpch::MakePhysicalCostParams(cfg));
  ASSERT_TRUE(plan.ok());
  auto q5 = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  ASSERT_TRUE(q5.ok());
  // Compare the final join cardinality: both must be ~686k at SF=100.
  double emitted_final = 0.0, built_final = 0.0;
  for (const auto& n : plan->nodes()) {
    if (n.type == plan::OpType::kHashJoin) emitted_final = n.output_rows;
  }
  for (const auto& n : q5->nodes()) {
    if (n.type == plan::OpType::kHashJoin) built_final = n.output_rows;
  }
  EXPECT_NEAR(emitted_final, built_final, built_final * 0.01);
}

}  // namespace
}  // namespace xdbft::optimizer
