#include "optimizer/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "datagen/tpch_gen.h"

namespace xdbft::optimizer {
namespace {

using exec::Table;
using exec::Value;
using exec::ValueType;

Table UniformInts(int n, int64_t lo, int64_t hi, uint64_t seed = 1) {
  Table t;
  t.schema = {{"x", ValueType::kInt64}};
  Rng rng(seed);
  for (int i = 0; i < n; ++i) t.rows.push_back({Value(rng.NextInt(lo, hi))});
  return t;
}

TEST(AnalyzeTableTest, BasicColumnStats) {
  Table t;
  t.schema = {{"a", ValueType::kInt64}, {"s", ValueType::kString}};
  t.rows = {{Value(1), Value("x")},
            {Value(5), Value("y")},
            {Value(5), Value("x")},
            {Value(), Value("z")}};
  auto stats = AnalyzeTable(t);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->row_count, 4u);
  const auto* a = *stats->Find("a");
  EXPECT_EQ(a->null_count, 1u);
  EXPECT_EQ(a->distinct_count, 2u);
  EXPECT_DOUBLE_EQ(a->min, 1.0);
  EXPECT_DOUBLE_EQ(a->max, 5.0);
  EXPECT_TRUE(a->is_numeric());
  const auto* s = *stats->Find("s");
  EXPECT_EQ(s->distinct_count, 3u);
  EXPECT_FALSE(s->is_numeric());
  EXPECT_FALSE(stats->Find("missing").ok());
}

TEST(AnalyzeTableTest, HistogramCountsSumToNonNullRows) {
  Table t = UniformInts(5000, 0, 999);
  auto stats = AnalyzeTable(t, 32);
  ASSERT_TRUE(stats.ok());
  const auto* x = *stats->Find("x");
  size_t total = 0;
  for (size_t b : x->histogram) total += b;
  EXPECT_EQ(total, 5000u);
  EXPECT_EQ(x->histogram.size(), 32u);
}

TEST(AnalyzeTableTest, RejectsBadBuckets) {
  Table t = UniformInts(10, 0, 9);
  EXPECT_FALSE(AnalyzeTable(t, 0).ok());
}

TEST(EstimateLessThanTest, UniformDataIsLinear) {
  Table t = UniformInts(20000, 0, 9999);
  auto stats = AnalyzeTable(t);
  const auto* x = *(*stats).Find("x");
  for (double frac : {0.1, 0.25, 0.5, 0.9}) {
    const double est = EstimateLessThan(*x, frac * 10000.0);
    EXPECT_NEAR(est, frac, 0.03) << frac;
  }
  EXPECT_DOUBLE_EQ(EstimateLessThan(*x, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(EstimateLessThan(*x, 20000.0), 1.0);
}

TEST(EstimateLessThanTest, SkewedDataFollowsHistogram) {
  // 90% of values in [0,10), 10% in [990,1000).
  Table t;
  t.schema = {{"x", ValueType::kInt64}};
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    t.rows.push_back({Value(i % 10 == 0 ? rng.NextInt(990, 999)
                                        : rng.NextInt(0, 9))});
  }
  auto stats = AnalyzeTable(t, 100);
  const auto* x = *(*stats).Find("x");
  EXPECT_NEAR(EstimateLessThan(*x, 500.0), 0.9, 0.02);
}

TEST(EstimateEqualsTest, MatchesActualFrequency) {
  Table t = UniformInts(50000, 0, 99);
  auto stats = AnalyzeTable(t, 100);
  const auto* x = *(*stats).Find("x");
  // Each of the 100 values holds ~1% of rows.
  EXPECT_NEAR(EstimateEquals(*x, 42.0), 0.01, 0.004);
  EXPECT_DOUBLE_EQ(EstimateEquals(*x, 1234.0), 0.0);
}

TEST(EstimateEqualsTest, StringFallsBackToNdv) {
  Table t;
  t.schema = {{"s", ValueType::kString}};
  for (int i = 0; i < 100; ++i) {
    t.rows.push_back({Value("v" + std::to_string(i % 4))});
  }
  auto stats = AnalyzeTable(t);
  const auto* s = *(*stats).Find("s");
  EXPECT_DOUBLE_EQ(EstimateEquals(*s, 0.0), 0.25);
}

TEST(EstimateRangeTest, SubtractsCdfs) {
  Table t = UniformInts(20000, 0, 9999);
  auto stats = AnalyzeTable(t);
  const auto* x = *(*stats).Find("x");
  EXPECT_NEAR(EstimateRange(*x, 2500.0, 7500.0), 0.5, 0.03);
  EXPECT_DOUBLE_EQ(EstimateRange(*x, 7500.0, 2500.0), 0.0);
}

TEST(JoinCardinalityTest, ContainmentAssumption) {
  ColumnStats l, r;
  l.distinct_count = 100;
  r.distinct_count = 1000;
  EXPECT_DOUBLE_EQ(EstimateJoinCardinality(10000, l, 50000, r),
                   10000.0 * 50000.0 / 1000.0);
}

TEST(JoinCardinalityTest, MatchesRealTpchJoin) {
  // ORDERS join LINEITEM on orderkey: every lineitem matches exactly one
  // order, so |join| = |lineitem|; the estimator must land within 5%.
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.005;
  auto db = datagen::GenerateTpch(opts);
  ASSERT_TRUE(db.ok());
  auto ostats = AnalyzeTable(db->orders);
  auto lstats = AnalyzeTable(db->lineitem);
  ASSERT_TRUE(ostats.ok());
  ASSERT_TRUE(lstats.ok());
  const auto* okey = *ostats->Find("o_orderkey");
  const auto* lkey = *lstats->Find("l_orderkey");
  const double est = EstimateJoinCardinality(
      db->orders.num_rows(), *okey, db->lineitem.num_rows(), *lkey);
  const double actual = static_cast<double>(db->lineitem.num_rows());
  EXPECT_NEAR(est, actual, actual * 0.05);
}

TEST(SelectivityTest, MatchesRealTpchPredicate) {
  // sigma(o_orderdate < D) on generated ORDERS: estimate vs exact count.
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.005;
  auto db = datagen::GenerateTpch(opts);
  ASSERT_TRUE(db.ok());
  auto stats = AnalyzeTable(db->orders);
  const auto* odate = *(*stats).Find("o_orderdate");
  const double cutoff = datagen::kDateRangeDays / 3.0;
  size_t actual = 0;
  for (const auto& row : db->orders.rows) {
    if (row[2].AsInt64() < cutoff) ++actual;
  }
  const double est = EstimateLessThan(*odate, cutoff);
  const double actual_frac =
      static_cast<double>(actual) /
      static_cast<double>(db->orders.num_rows());
  EXPECT_NEAR(est, actual_frac, 0.02);
}

}  // namespace
}  // namespace xdbft::optimizer
