#include "optimizer/join_graph.h"

#include <gtest/gtest.h>

namespace xdbft::optimizer {
namespace {

// Chain A - B - C with simple cardinalities.
JoinGraph ChainGraph() {
  JoinGraph g;
  g.AddRelation({"A", 100, 1.0, 10, 50});
  g.AddRelation({"B", 200, 2.0, 10, 50});
  g.AddRelation({"C", 400, 4.0, 10, 50});
  EXPECT_TRUE(g.AddEdge(0, 1, 0.01, "a=b").ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 0.005, "b=c").ok());
  return g;
}

TEST(JoinGraphTest, ValidatesConnectedGraph) {
  EXPECT_TRUE(ChainGraph().Validate().ok());
}

TEST(JoinGraphTest, RejectsDisconnectedGraph) {
  JoinGraph g;
  g.AddRelation({"A", 100, 1.0, 10, 50});
  g.AddRelation({"B", 200, 2.0, 10, 50});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(JoinGraphTest, RejectsBadEdges) {
  JoinGraph g = ChainGraph();
  EXPECT_FALSE(g.AddEdge(0, 0, 0.5).ok());
  EXPECT_FALSE(g.AddEdge(0, 9, 0.5).ok());
  EXPECT_FALSE(g.AddEdge(0, 2, 0.0).ok());
  EXPECT_FALSE(g.AddEdge(0, 2, 1.5).ok());
}

TEST(JoinGraphTest, RejectsNonPositiveCardinality) {
  JoinGraph g;
  g.AddRelation({"A", 0.0, 1.0, 10, 50});
  EXPECT_FALSE(g.Validate().ok());
}

TEST(JoinGraphTest, ConnectedSubsets) {
  JoinGraph g = ChainGraph();
  EXPECT_TRUE(g.Connected(0b001));
  EXPECT_TRUE(g.Connected(0b011));
  EXPECT_TRUE(g.Connected(0b111));
  EXPECT_FALSE(g.Connected(0b101));  // A and C are not adjacent
  EXPECT_FALSE(g.Connected(0));
}

TEST(JoinGraphTest, HasCrossEdge) {
  JoinGraph g = ChainGraph();
  EXPECT_TRUE(g.HasCrossEdge(0b001, 0b010));
  EXPECT_TRUE(g.HasCrossEdge(0b011, 0b100));
  EXPECT_FALSE(g.HasCrossEdge(0b001, 0b100));
}

TEST(JoinGraphTest, CardinalityUsesInternalEdgesOnly) {
  JoinGraph g = ChainGraph();
  EXPECT_DOUBLE_EQ(g.Cardinality(0b001), 100);
  EXPECT_DOUBLE_EQ(g.Cardinality(0b011), 100 * 200 * 0.01);
  EXPECT_DOUBLE_EQ(g.Cardinality(0b110), 200 * 400 * 0.005);
  EXPECT_DOUBLE_EQ(g.Cardinality(0b111), 100 * 200 * 400 * 0.01 * 0.005);
  // A,C without B: no internal edge applies.
  EXPECT_DOUBLE_EQ(g.Cardinality(0b101), 100 * 400);
}

TEST(JoinGraphTest, CrossSelectivity) {
  JoinGraph g = ChainGraph();
  EXPECT_DOUBLE_EQ(g.CrossSelectivity(0b001, 0b010), 0.01);
  EXPECT_DOUBLE_EQ(g.CrossSelectivity(0b001, 0b110), 0.01);
  EXPECT_DOUBLE_EQ(g.CrossSelectivity(0b001, 0b100), 1.0);
}

TEST(JoinGraphTest, WidthSumsContributions) {
  JoinGraph g = ChainGraph();
  EXPECT_DOUBLE_EQ(g.Width(0b111), 30);
  EXPECT_DOUBLE_EQ(g.Width(0b010), 10);
}

TEST(JoinGraphTest, AllRelsMask) {
  EXPECT_EQ(ChainGraph().AllRels(), RelSet{0b111});
}

TEST(JoinGraphTest, CardinalityCommutesWithSubsetUnion) {
  // |S1 join S2| = |S1| * |S2| * cross-selectivity(S1, S2).
  JoinGraph g = ChainGraph();
  const RelSet s1 = 0b011, s2 = 0b100;
  EXPECT_DOUBLE_EQ(g.Cardinality(s1 | s2),
                   g.Cardinality(s1) * g.Cardinality(s2) *
                       g.CrossSelectivity(s1, s2));
}

}  // namespace
}  // namespace xdbft::optimizer
