// Tests of shuffle (hash-repartition) edges in the fault-tolerant stage
// executor, including recovery when a shuffle producer's non-materialized
// output is lost.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "engine/ft_executor.h"

namespace xdbft::engine {
namespace {

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.005;
    opts.seed = 1234;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 4);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

// Reference: top-10 customers by total lineitem revenue.
std::vector<std::pair<int64_t, double>> ReferenceTopCustomers(
    const datagen::TpchDatabase& db) {
  std::map<int64_t, int64_t> order_cust;
  for (const auto& row : db.orders.rows) {
    order_cust[row[0].AsInt64()] = row[1].AsInt64();
  }
  std::map<int64_t, double> revenue;
  for (const auto& row : db.lineitem.rows) {
    revenue[order_cust[row[0].AsInt64()]] +=
        row[5].AsDouble() * (1.0 - row[6].AsDouble());
  }
  std::vector<std::pair<int64_t, double>> sorted(revenue.begin(),
                                                 revenue.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (sorted.size() > 10) sorted.resize(10);
  return sorted;
}

TEST(ShuffleTest, FailureFreeMatchesReference) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeCustomerRevenueStagePlan(f.pd);
  ASSERT_TRUE(plan.Validate().ok());
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto r = executor.Execute(
      ft::MaterializationConfig::AllMat(plan.ToPlanSkeleton()));
  ASSERT_TRUE(r.ok()) << r.status();
  const auto ref = ReferenceTopCustomers(f.db);
  ASSERT_EQ(r->result.num_rows(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(r->result.rows[i][0].AsInt64(), ref[i].first) << i;
    EXPECT_NEAR(r->result.rows[i][1].AsDouble(), ref[i].second,
                std::fabs(ref[i].second) * 1e-9)
        << i;
  }
}

TEST(ShuffleTest, ProducerLossForcesRecomputeAndStaysCorrect) {
  // Fail the shuffle consumer on partition 2: node 2 loses its
  // (non-materialized) stage-0 output, which every *other* consumer
  // already used — only partition 2's chain recomputes, and results stay
  // identical.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeCustomerRevenueStagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok());

  ScriptedInjector injector({{1, 2}});
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            &injector);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->failures_injected, 1);
  // Killed attempt + recompute of stage 0 partition 2.
  EXPECT_EQ(r->recovery_executions, 2);
  ASSERT_EQ(r->result.num_rows(), clean->result.num_rows());
  for (size_t i = 0; i < r->result.num_rows(); ++i) {
    EXPECT_TRUE(exec::RowEq{}(r->result.rows[i], clean->result.rows[i]));
  }
}

TEST(ShuffleTest, MaterializedShuffleInputSurvivesFailure) {
  // With stage 0 materialized, the same failure loses nothing upstream:
  // recovery is just the retried consumer attempt.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeCustomerRevenueStagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto config = ft::MaterializationConfig::NoMat(skeleton);
  config.set_materialized(0, true);  // materialize the shuffle input
  ScriptedInjector injector({{1, 2}});
  auto r = executor.Execute(config, &injector);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->failures_injected, 1);
  EXPECT_EQ(r->recovery_executions, 1);  // the killed attempt only
}

TEST(ShuffleTest, RandomFailuresStayCorrect) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeCustomerRevenueStagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RandomInjector injector(0.3, seed);
    auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                              &injector);
    ASSERT_TRUE(r.ok()) << seed;
    ASSERT_EQ(r->result.num_rows(), clean->result.num_rows()) << seed;
    for (size_t i = 0; i < r->result.num_rows(); ++i) {
      EXPECT_TRUE(exec::RowEq{}(r->result.rows[i], clean->result.rows[i]))
          << seed;
    }
  }
}

TEST(ShuffleTest, ShuffleDisjointAndComplete) {
  // The shuffle slices partition the producer rows: each row lands on
  // exactly one consumer.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeCustomerRevenueStagePlan(f.pd);
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto r = executor.Execute(
      ft::MaterializationConfig::AllMat(plan.ToPlanSkeleton()));
  ASSERT_TRUE(r.ok());
  // Total revenue from the result of a full aggregation equals the raw
  // total (checked through the global stage being a top-10: compare the
  // number of distinct customers instead).
  std::set<int64_t> custkeys;
  for (const auto& row : r->result.rows) {
    EXPECT_TRUE(custkeys.insert(row[0].AsInt64()).second)
        << "customer appears in two shuffle partitions";
  }
}

TEST(ShuffleTest, ValidateRejectsShuffleWithoutKey) {
  StagePlan plan("bad");
  Stage a;
  a.label = "a";
  a.run = [](int, const std::vector<const exec::Table*>&) {
    return Result<exec::Table>(exec::Table{});
  };
  const int s = plan.AddStage(std::move(a));
  Stage b;
  b.label = "b";
  b.inputs = {StageInput(s, EdgeMode::kShuffle)};  // no key
  b.run = [](int, const std::vector<const exec::Table*>&) {
    return Result<exec::Table>(exec::Table{});
  };
  plan.AddStage(std::move(b));
  EXPECT_FALSE(plan.Validate().ok());
}

}  // namespace
}  // namespace xdbft::engine
