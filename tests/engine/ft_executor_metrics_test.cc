// Integration test of the observability layer against executor ground
// truth: a ScriptedInjector injects a known number of failures into a real
// Q5 execution, and the recorded metrics/trace must match exactly — under
// an all-materialized configuration every injected failure costs exactly
// one recovery re-execution (the killed attempt's retry; no other output
// can be lost).
#include <gtest/gtest.h>

#include <vector>

#include "engine/ft_executor.h"
#include "engine/query_runner.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xdbft::engine {
namespace {

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.005;
    opts.seed = 99;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 3);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

// First two partition-parallel stages, partitions 0 and 1.
std::vector<std::pair<int, int>> PickVictims(const StagePlan& plan) {
  std::vector<std::pair<int, int>> victims;
  for (int s = 0; s < plan.num_stages() && victims.size() < 2; ++s) {
    if (!plan.stage(s).global) {
      victims.emplace_back(s, static_cast<int>(victims.size()));
    }
  }
  return victims;
}

TEST(FtExecutorMetricsTest, InjectedFailuresMatchRecordedRecoveries) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const auto config =
      ft::MaterializationConfig::AllMat(plan.ToPlanSkeleton());
  const auto victims = PickVictims(plan);
  ASSERT_EQ(victims.size(), 2u);

  ScriptedInjector injector(victims);
  FaultTolerantExecutor executor(&plan, &f.pd);
#if !defined(XDBFT_DISABLE_METRICS)
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Default().Snapshot();
#endif
  auto result = executor.Execute(config, &injector);
  ASSERT_TRUE(result.ok()) << result.status();

  // Ground truth: each victim fails once.
  EXPECT_EQ(result->failures_injected, 2);
  // All-mat: a failure can only cost the retry of the killed attempt.
  EXPECT_EQ(result->recovery_executions, result->failures_injected);
  int minimal = 0;
  for (int s = 0; s < plan.num_stages(); ++s) {
    minimal += plan.stage(s).global ? 1 : f.pd.num_nodes;
  }
  EXPECT_EQ(result->task_executions, minimal + result->recovery_executions);

  // Materialized-vs-recomputed accounting.
  EXPECT_GT(result->rows_materialized, 0u);
  EXPECT_GT(result->bytes_materialized, 0u);
  EXPECT_GT(result->rows_recomputed, 0u);
  ASSERT_EQ(result->stage_seconds.size(),
            static_cast<size_t>(plan.num_stages()));

#if !defined(XDBFT_DISABLE_METRICS)
  const obs::MetricsSnapshot after =
      obs::MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(after.counter("executor.failures_injected") -
                before.counter("executor.failures_injected"),
            static_cast<uint64_t>(result->failures_injected));
  EXPECT_EQ(after.counter("executor.recoveries") -
                before.counter("executor.recoveries"),
            static_cast<uint64_t>(result->recovery_executions));
  EXPECT_EQ(after.counter("executor.task_attempts") -
                before.counter("executor.task_attempts"),
            static_cast<uint64_t>(result->task_executions));
  EXPECT_EQ(after.counter("executor.rows_recomputed") -
                before.counter("executor.rows_recomputed"),
            static_cast<uint64_t>(result->rows_recomputed));
  EXPECT_EQ(after.counter("executor.runs") - before.counter("executor.runs"),
            1u);
#endif
}

TEST(FtExecutorMetricsTest, TraceRecordsFailuresAndRecoverySpans) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const auto config =
      ft::MaterializationConfig::AllMat(plan.ToPlanSkeleton());
  const auto victims = PickVictims(plan);

  ScriptedInjector injector(victims);
  obs::TraceRecorder trace;
  FaultTolerantExecutor executor(&plan, &f.pd);
  executor.set_trace(&trace);
  auto result = executor.Execute(config, &injector);
  ASSERT_TRUE(result.ok()) << result.status();

  auto doc = obs::ParseJson(trace.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int failures = 0, recoveries = 0, tasks = 0;
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* cat = e.Find("cat");
    if (cat == nullptr) continue;
    if (cat->string_value == "failure") ++failures;
    if (cat->string_value == "recovery") ++recoveries;
    if (cat->string_value == "task") ++tasks;
  }
  EXPECT_EQ(failures, result->failures_injected);
  EXPECT_EQ(recoveries, result->recovery_executions);
  // "task" spans are successful first attempts; a victim's first attempt
  // was killed (no span), so the victims are missing from this count.
  int minimal = 0;
  for (int s = 0; s < plan.num_stages(); ++s) {
    minimal += plan.stage(s).global ? 1 : f.pd.num_nodes;
  }
  EXPECT_EQ(tasks, minimal - result->failures_injected);
}

TEST(FtExecutorMetricsTest, FailureFreeRunHasNoRecoveryAccounting) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ1StagePlan(f.pd);
  const auto config =
      ft::MaterializationConfig::NoMat(plan.ToPlanSkeleton());
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto result = executor.Execute(config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->failures_injected, 0);
  EXPECT_EQ(result->recovery_executions, 0);
  EXPECT_EQ(result->rows_recomputed, 0u);
  EXPECT_EQ(result->bytes_recomputed, 0u);
}

}  // namespace
}  // namespace xdbft::engine
