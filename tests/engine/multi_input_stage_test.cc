// FT-executor coverage for stages with multiple input edges: a join stage
// consuming two upstream partitioned stages, with failures that wipe one
// or both inputs on a node.
#include <gtest/gtest.h>

#include "engine/ft_executor.h"

namespace xdbft::engine {
namespace {

using exec::Expr;
using exec::Table;
using exec::Value;
using exec::ValueType;

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.002;
    opts.seed = 55;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 3);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

// Stage DAG: (filterO, filterL) -> join -> global count.
StagePlan TwoInputPlan(const PartitionedDatabase& db) {
  StagePlan plan("two-input");
  const auto* orders = &db.table(catalog::TpchTable::kOrders);
  const auto* lineitem = &db.table(catalog::TpchTable::kLineitem);

  Stage fo;
  fo.label = "FilterO";
  fo.type = plan::OpType::kFilter;
  fo.run = [orders](int p, const std::vector<const Table*>&)
      -> Result<Table> {
    const Table& part = orders->partitions[static_cast<size_t>(p)];
    XDBFT_ASSIGN_OR_RETURN(auto odate,
                           Expr::Col(part.schema, "o_orderdate"));
    auto op = exec::MakeFilter(
        exec::MakeScan(&part),
        exec::Lt(odate, Expr::Lit(Value(int64_t{1200}))));
    return exec::Drain(op.get());
  };
  const int s_o = plan.AddStage(std::move(fo));

  Stage fl;
  fl.label = "FilterL";
  fl.type = plan::OpType::kFilter;
  fl.run = [lineitem](int p, const std::vector<const Table*>&)
      -> Result<Table> {
    const Table& part = lineitem->partitions[static_cast<size_t>(p)];
    XDBFT_ASSIGN_OR_RETURN(auto qty, Expr::Col(part.schema, "l_quantity"));
    auto op = exec::MakeFilter(
        exec::MakeScan(&part),
        exec::Ge(qty, Expr::Lit(Value(25.0))));
    return exec::Drain(op.get());
  };
  const int s_l = plan.AddStage(std::move(fl));

  Stage join;
  join.label = "Join(O,L)";
  join.type = plan::OpType::kHashJoin;
  join.inputs = {s_o, s_l};  // two same-partition edges
  join.run = [](int, const std::vector<const Table*>& inputs)
      -> Result<Table> {
    const Table& o = *inputs[0];
    const Table& l = *inputs[1];
    XDBFT_ASSIGN_OR_RETURN(const int okey, o.schema.Find("o_orderkey"));
    XDBFT_ASSIGN_OR_RETURN(const int lokey, l.schema.Find("l_orderkey"));
    auto op = exec::MakeHashJoin(exec::MakeScan(&o), exec::MakeScan(&l),
                                 {okey}, {lokey});
    return exec::Drain(op.get());
  };
  const int s_join = plan.AddStage(std::move(join));

  Stage count;
  count.label = "Count";
  count.type = plan::OpType::kHashAggregate;
  count.global = true;
  count.inputs = {s_join};
  count.run = [](int, const std::vector<const Table*>& inputs)
      -> Result<Table> {
    auto op = exec::MakeHashAggregate(
        exec::MakeScan(inputs[0]), {},
        {{exec::AggFunc::kCount, nullptr, "n"}});
    return exec::Drain(op.get());
  };
  plan.AddStage(std::move(count));
  return plan;
}

TEST(MultiInputStageTest, FailureFreeExecutes) {
  const Fixture& f = GetFixture();
  const StagePlan plan = TwoInputPlan(f.pd);
  ASSERT_TRUE(plan.Validate().ok());
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto r = executor.Execute(
      ft::MaterializationConfig::AllMat(plan.ToPlanSkeleton()));
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->result.num_rows(), 1u);
  EXPECT_GT(r->result.rows[0][0].AsInt64(), 0);
}

TEST(MultiInputStageTest, JoinFailureRecomputesBothLostInputs) {
  const Fixture& f = GetFixture();
  const StagePlan plan = TwoInputPlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok());

  // Fail the join on partition 1 with nothing materialized: both filter
  // outputs of partition 1 are lost and must be recomputed.
  ScriptedInjector injector({{2, 1}});
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            &injector);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->failures_injected, 1);
  EXPECT_EQ(r->recovery_executions, 3);  // killed attempt + 2 recomputes
  EXPECT_EQ(r->result.rows[0][0].AsInt64(),
            clean->result.rows[0][0].AsInt64());
}

TEST(MultiInputStageTest, MaterializingOneInputHalvesRecovery) {
  const Fixture& f = GetFixture();
  const StagePlan plan = TwoInputPlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto config = ft::MaterializationConfig::NoMat(skeleton);
  config.set_materialized(0, true);  // FilterO survives failures
  ScriptedInjector injector({{2, 1}});
  auto r = executor.Execute(config, &injector);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->recovery_executions, 2);  // killed attempt + FilterL only
}

}  // namespace
}  // namespace xdbft::engine
