// Concurrency tests for the parallel FaultTolerantExecutor: bit-identical
// results and failure accounting at every thread count (including stateful
// random injectors), concurrent failure injection under TSan, external
// pool reuse, and the recursion-depth bomb the old recursive recovery
// implementation could not survive.
#include <gtest/gtest.h>

#include <vector>

#include "common/task_pool.h"
#include "datagen/tpch_gen.h"
#include "engine/ft_executor.h"
#include "engine/query_runner.h"
#include "engine/stage_plan.h"
#include "ft/mat_config.h"

namespace xdbft::engine {
namespace {

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.005;
    opts.seed = 99;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 4);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

bool TablesEqual(const exec::Table& a, const exec::Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      if (!(a.rows[i][j] == b.rows[i][j])) return false;
    }
  }
  return true;
}

// Every deterministic field of two executions must agree; only wall-clock
// timing (wall_seconds, stage_seconds, seconds_lost) may differ.
void ExpectSameOutcome(const FtExecutionResult& a,
                       const FtExecutionResult& b) {
  EXPECT_TRUE(TablesEqual(a.result, b.result));
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.recovery_executions, b.recovery_executions);
  EXPECT_EQ(a.task_executions, b.task_executions);
  EXPECT_EQ(a.rows_materialized, b.rows_materialized);
  EXPECT_EQ(a.bytes_materialized, b.bytes_materialized);
  EXPECT_EQ(a.rows_recomputed, b.rows_recomputed);
  EXPECT_EQ(a.bytes_recomputed, b.bytes_recomputed);
  EXPECT_EQ(a.rows_lost, b.rows_lost);
  EXPECT_EQ(a.bytes_lost, b.bytes_lost);
}

TEST(ParallelExecutorTest, ScriptedInjectionDeterministicAcrossThreads) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  for (const auto& config :
       {ft::MaterializationConfig::NoMat(skeleton),
        ft::MaterializationConfig::AllMat(skeleton)}) {
    FaultTolerantExecutor baseline_exec(&plan, &f.pd);
    baseline_exec.set_num_threads(1);
    ScriptedInjector baseline_injector({{4, 1}, {5, 2}, {5, 3}},
                                       /*times=*/2);
    auto baseline = baseline_exec.Execute(config, &baseline_injector);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    EXPECT_EQ(baseline->failures_injected, 6);

    for (int threads : {2, 8}) {
      FaultTolerantExecutor executor(&plan, &f.pd);
      executor.set_num_threads(threads);
      ScriptedInjector injector({{4, 1}, {5, 2}, {5, 3}}, /*times=*/2);
      auto r = executor.Execute(config, &injector);
      ASSERT_TRUE(r.ok()) << "threads=" << threads << ": " << r.status();
      ExpectSameOutcome(*baseline, *r);
    }
  }
}

TEST(ParallelExecutorTest, StatefulRandomInjectorDeterministicAcrossThreads) {
  // RandomInjector keeps an unsynchronized RNG; determinism relies on the
  // executor making every injector call from the coordinator in the same
  // order at any thread count.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const auto config =
      ft::MaterializationConfig::NoMat(plan.ToPlanSkeleton());
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    FaultTolerantExecutor baseline_exec(&plan, &f.pd);
    baseline_exec.set_num_threads(1);
    RandomInjector baseline_injector(0.10, seed);
    auto baseline = baseline_exec.Execute(config, &baseline_injector);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    for (int threads : {2, 8}) {
      FaultTolerantExecutor executor(&plan, &f.pd);
      executor.set_num_threads(threads);
      RandomInjector injector(0.10, seed);
      auto r = executor.Execute(config, &injector);
      ASSERT_TRUE(r.ok())
          << "seed=" << seed << " threads=" << threads << ": " << r.status();
      ExpectSameOutcome(*baseline, *r);
    }
  }
}

TEST(ParallelExecutorTest, ShufflePlanDeterministicAcrossThreads) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeCustomerRevenueStagePlan(f.pd);
  const auto config =
      ft::MaterializationConfig::NoMat(plan.ToPlanSkeleton());
  FaultTolerantExecutor baseline_exec(&plan, &f.pd);
  baseline_exec.set_num_threads(1);
  ScriptedInjector baseline_injector({{1, 0}, {2, 3}});
  auto baseline = baseline_exec.Execute(config, &baseline_injector);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_GT(baseline->failures_injected, 0);

  for (int threads : {4, 8}) {
    FaultTolerantExecutor executor(&plan, &f.pd);
    executor.set_num_threads(threads);
    ScriptedInjector injector({{1, 0}, {2, 3}});
    auto r = executor.Execute(config, &injector);
    ASSERT_TRUE(r.ok()) << "threads=" << threads << ": " << r.status();
    ExpectSameOutcome(*baseline, *r);
  }
}

TEST(ParallelExecutorTest, ConcurrentFailureInjectionMatchesCleanRun) {
  // The TSan payload: partition tasks run on 4 pool workers while the
  // coordinator injects random failures and invalidates outputs between
  // waves. Every run must still produce the clean-run table.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor clean_exec(&plan, &f.pd);
  clean_exec.set_num_threads(4);
  auto clean = clean_exec.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok()) << clean.status();

  int total_failures = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    FaultTolerantExecutor executor(&plan, &f.pd);
    executor.set_num_threads(4);
    RandomInjector injector(0.15, seed);
    auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                              &injector);
    ASSERT_TRUE(r.ok()) << "seed=" << seed << ": " << r.status();
    EXPECT_TRUE(TablesEqual(r->result, clean->result)) << "seed=" << seed;
    total_failures += r->failures_injected;
  }
  EXPECT_GT(total_failures, 0);  // the injection rate actually fired
}

TEST(ParallelExecutorTest, ExternalPoolSharedAcrossExecutions) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const auto config =
      ft::MaterializationConfig::NoMat(plan.ToPlanSkeleton());
  FaultTolerantExecutor baseline_exec(&plan, &f.pd);
  baseline_exec.set_num_threads(1);
  ScriptedInjector baseline_injector({{4, 1}});
  auto baseline = baseline_exec.Execute(config, &baseline_injector);
  ASSERT_TRUE(baseline.ok());

  TaskPool pool(3);
  FaultTolerantExecutor executor(&plan, &f.pd);
  executor.set_task_pool(&pool);
  for (int run = 0; run < 2; ++run) {
    ScriptedInjector injector({{4, 1}});
    auto r = executor.Execute(config, &injector);
    ASSERT_TRUE(r.ok()) << "run=" << run << ": " << r.status();
    ExpectSameOutcome(*baseline, *r);
  }
}

TEST(ParallelExecutorTest, SurvivesRecursionDepthBomb) {
  // 20000 consecutive failures of one task: the old recursive `ensure`
  // recovery overflowed the stack well below this depth; the iterative
  // wave scheduler just burns 20000 attempts.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ1StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  executor.set_num_threads(1);
  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok());

  constexpr int kFailures = 20000;
  ScriptedInjector injector({{0, 0}}, /*times=*/kFailures);
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            &injector, /*max_attempts=*/kFailures + 10);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->failures_injected, kFailures);
  EXPECT_TRUE(TablesEqual(r->result, clean->result));
}

TEST(ParallelExecutorTest, WastedWorkChargedOnlyForDestroyedOutputs) {
  // A late-stage victim under no-mat destroys the completed upstream
  // outputs its node held: rows/bytes/seconds_lost count exactly that.
  // Under all-mat every output survives in fault-tolerant storage, so a
  // failure wastes nothing (the killed attempt itself never ran).
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  executor.set_num_threads(2);

  ScriptedInjector no_mat_injector({{5, 0}});
  auto no_mat = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                                 &no_mat_injector);
  ASSERT_TRUE(no_mat.ok()) << no_mat.status();
  EXPECT_EQ(no_mat->failures_injected, 1);
  EXPECT_GT(no_mat->rows_lost, 0u);
  EXPECT_GT(no_mat->bytes_lost, 0u);
  EXPECT_GT(no_mat->seconds_lost, 0.0);

  ScriptedInjector all_mat_injector({{5, 0}});
  auto all_mat = executor.Execute(ft::MaterializationConfig::AllMat(skeleton),
                                  &all_mat_injector);
  ASSERT_TRUE(all_mat.ok()) << all_mat.status();
  EXPECT_EQ(all_mat->failures_injected, 1);
  EXPECT_EQ(all_mat->rows_lost, 0u);
  EXPECT_EQ(all_mat->bytes_lost, 0u);
  EXPECT_DOUBLE_EQ(all_mat->seconds_lost, 0.0);
}

}  // namespace
}  // namespace xdbft::engine
