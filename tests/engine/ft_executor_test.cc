// Tests of real fault-tolerant execution: injected mid-query failures with
// actual recomputation, asserting result correctness (recovery
// transparency) under every materialization configuration.
#include <gtest/gtest.h>

#include "engine/ft_executor.h"
#include "engine/query_runner.h"

namespace xdbft::engine {
namespace {

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.005;
    opts.seed = 99;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 3);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

bool TablesEqual(const exec::Table& a, const exec::Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) return false;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      // Doubles recomputed over the same data in the same order are
      // bit-identical.
      if (!(a.rows[i][j] == b.rows[i][j])) return false;
    }
  }
  return true;
}

TEST(StagePlanTest, ValidatesAndBuildsSkeleton) {
  const Fixture& f = GetFixture();
  const StagePlan q5 = MakeQ5StagePlan(f.pd);
  EXPECT_TRUE(q5.Validate().ok());
  EXPECT_EQ(q5.num_stages(), 7);
  const plan::Plan skeleton = q5.ToPlanSkeleton();
  EXPECT_TRUE(skeleton.Validate().ok());
  // Global stages (Join1, Broadcast, Agg) are bound always-materialize.
  int bound = 0;
  for (const auto& n : skeleton.nodes()) {
    if (n.constraint == plan::MatConstraint::kAlwaysMaterialize) ++bound;
  }
  EXPECT_EQ(bound, 3);
}

TEST(FtExecutorTest, FailureFreeMatchesQueryRunnerQ1) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ1StagePlan(f.pd);
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto r = executor.Execute(
      ft::MaterializationConfig::AllMat(plan.ToPlanSkeleton()));
  ASSERT_TRUE(r.ok()) << r.status();
  QueryRunner runner(&f.pd);
  auto reference = runner.RunQ1();
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(TablesEqual(r->result, reference->result.rows.empty()
                                         ? r->result
                                         : reference->result));
  EXPECT_EQ(r->failures_injected, 0);
  EXPECT_EQ(r->recovery_executions, 0);
}

TEST(FtExecutorTest, FailureFreeMatchesQueryRunnerQ5) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto r = executor.Execute(
      ft::MaterializationConfig::AllMat(plan.ToPlanSkeleton()));
  ASSERT_TRUE(r.ok()) << r.status();
  QueryRunner runner(&f.pd);
  auto reference = runner.RunQ5();
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(TablesEqual(r->result, reference->result));
}

TEST(FtExecutorTest, RecoversFromSingleFailureAllConfigs) {
  // Inject one failure into a mid-plan stage on one partition and check
  // the result is identical for every materialization configuration.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok());

  const auto free_ops = ft::EnumerableOperators(skeleton);
  const uint64_t num_configs = uint64_t{1} << free_ops.size();
  for (uint64_t mask = 0; mask < num_configs; ++mask) {
    const auto config =
        ft::MaterializationConfig::FromFreeMask(skeleton, mask);
    ScriptedInjector injector({{4, 1}});  // Join4 on partition 1
    auto r = executor.Execute(config, &injector);
    ASSERT_TRUE(r.ok()) << "mask=" << mask << ": " << r.status();
    EXPECT_TRUE(TablesEqual(r->result, clean->result)) << "mask=" << mask;
    EXPECT_EQ(r->failures_injected, 1) << "mask=" << mask;
    EXPECT_GE(r->recovery_executions, 1) << "mask=" << mask;
  }
}

TEST(FtExecutorTest, MaterializationLimitsRecoveryWork) {
  // A failure late in the plan forces recomputation back to the last
  // materialized stage: with everything materialized, recovery re-runs
  // one task; with nothing materialized, it re-runs the partition's whole
  // chain.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);

  ScriptedInjector inj_allmat({{5, 0}});
  auto all_mat = executor.Execute(
      ft::MaterializationConfig::AllMat(skeleton), &inj_allmat);
  ASSERT_TRUE(all_mat.ok());
  ScriptedInjector inj_nomat({{5, 0}});
  auto no_mat = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                                 &inj_nomat);
  ASSERT_TRUE(no_mat.ok());
  EXPECT_EQ(all_mat->recovery_executions, 1);
  EXPECT_GT(no_mat->recovery_executions, all_mat->recovery_executions);
  EXPECT_TRUE(TablesEqual(all_mat->result, no_mat->result));
}

TEST(FtExecutorTest, RepeatedFailuresOfSameTask) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ1StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok());
  ScriptedInjector injector({{0, 2}}, /*times=*/5);
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            &injector);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->failures_injected, 5);
  EXPECT_TRUE(TablesEqual(r->result, clean->result));
}

TEST(FtExecutorTest, AbortsAfterMaxAttempts) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ1StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  ScriptedInjector injector({{0, 0}}, /*times=*/1000000);
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            &injector, /*max_attempts=*/5);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted());
}

TEST(FtExecutorTest, RandomFailuresStillCorrect) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok());
  int total_failures = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RandomInjector injector(0.25, seed);
    const auto config = ft::MaterializationConfig::FromFreeMask(
        skeleton, seed % 16);
    auto r = executor.Execute(config, &injector);
    ASSERT_TRUE(r.ok()) << seed << ": " << r.status();
    EXPECT_TRUE(TablesEqual(r->result, clean->result)) << seed;
    total_failures += r->failures_injected;
  }
  EXPECT_GT(total_failures, 0);  // 25% per attempt: failures must occur
}

TEST(FtExecutorTest, GlobalStageFailureRetriesWithoutDataLoss) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeQ5StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  ASSERT_TRUE(clean.ok());
  // Stage 6 (final aggregation) is global: partition is -1.
  ScriptedInjector injector({{6, -1}});
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            &injector);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->failures_injected, 1);
  // Coordinator retry only: one extra task.
  EXPECT_EQ(r->recovery_executions, 1);
  EXPECT_TRUE(TablesEqual(r->result, clean->result));
}

TEST(FtExecutorTest, WalReplayAvoidsChainRecomputation) {
  // A failure deep in an unmaterialized pipeline chain: without WAL the
  // whole chain below the last materialization point is recomputed; with
  // WAL the chain is replayed from the lineage log and only the killed
  // attempt re-runs.
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeFilterChainStagePlan(f.pd, /*depth=*/4);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);

  ScriptedInjector inj_recompute({{4, 0}});
  auto recompute = executor.Execute(
      ft::MaterializationConfig::NoMat(skeleton), &inj_recompute);
  ASSERT_TRUE(recompute.ok()) << recompute.status();

  executor.set_wal(true);
  ScriptedInjector inj_wal({{4, 0}});
  auto wal = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                              &inj_wal);
  ASSERT_TRUE(wal.ok()) << wal.status();

  EXPECT_TRUE(TablesEqual(wal->result, recompute->result));
  EXPECT_EQ(wal->failures_injected, 1);
  EXPECT_GT(wal->rows_logged, 0u);
  EXPECT_GT(wal->replay_executions, 0);
  EXPECT_GT(wal->rows_replayed, 0u);
  // Replay spares the ancestor chain: strictly fewer re-executions.
  EXPECT_LT(wal->recovery_executions, recompute->recovery_executions);
  EXPECT_EQ(wal->recovery_executions, 1);  // only the killed attempt
  EXPECT_EQ(wal->rows_lost, 0u);  // everything lost was in the log
}

TEST(FtExecutorTest, WalBitIdenticalAcrossThreadCounts) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeFilterChainStagePlan(f.pd, /*depth=*/4);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  std::optional<FtExecutionResult> reference;
  for (int threads : {1, 2, 4}) {
    FaultTolerantExecutor executor(&plan, &f.pd);
    executor.set_wal(true);
    executor.set_num_threads(threads);
    RandomInjector injector(0.2, /*seed=*/17);
    auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                              &injector);
    ASSERT_TRUE(r.ok()) << threads << ": " << r.status();
    if (!reference.has_value()) {
      reference = std::move(*r);
      continue;
    }
    EXPECT_TRUE(TablesEqual(r->result, reference->result)) << threads;
    EXPECT_EQ(r->failures_injected, reference->failures_injected);
    EXPECT_EQ(r->task_executions, reference->task_executions) << threads;
    EXPECT_EQ(r->replay_executions, reference->replay_executions)
        << threads;
    EXPECT_EQ(r->rows_logged, reference->rows_logged) << threads;
    EXPECT_EQ(r->rows_replayed, reference->rows_replayed) << threads;
  }
}

TEST(FtExecutorTest, WalWithoutFailuresOnlyPaysLogWrites) {
  const Fixture& f = GetFixture();
  const StagePlan plan = MakeFilterChainStagePlan(f.pd, /*depth=*/3);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  FaultTolerantExecutor executor(&plan, &f.pd);
  auto clean = executor.Execute(ft::MaterializationConfig::NoMat(skeleton));
  ASSERT_TRUE(clean.ok());
  executor.set_wal(true);
  auto wal = executor.Execute(ft::MaterializationConfig::NoMat(skeleton));
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(TablesEqual(wal->result, clean->result));
  EXPECT_GT(wal->rows_logged, 0u);  // the up-front write cost
  EXPECT_EQ(wal->replay_executions, 0);
  EXPECT_EQ(wal->recovery_executions, 0);
  EXPECT_EQ(wal->task_executions, clean->task_executions);
}

TEST(FtExecutorTest, RejectsNulls) {
  FaultTolerantExecutor executor(nullptr, nullptr);
  EXPECT_FALSE(executor.Execute(ft::MaterializationConfig{}).ok());
}

}  // namespace
}  // namespace xdbft::engine
