#include "engine/query_runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "engine/cost_calibrator.h"

namespace xdbft::engine {
namespace {

using catalog::TpchTable;
using exec::Value;

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.01;
    opts.seed = 4242;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 4);
    auto* f = new Fixture{std::move(*db), std::move(*pd)};
    return f;
  }();
  return *fixture;
}

// ---- single-node reference computations ----

// Q1 reference: group lineitem rows passing the shipdate filter by
// (returnflag, linestatus), summing qty/price and counting.
std::map<std::pair<std::string, std::string>, std::tuple<double, double, int64_t>>
ReferenceQ1(const datagen::TpchDatabase& db) {
  std::map<std::pair<std::string, std::string>,
           std::tuple<double, double, int64_t>>
      groups;
  for (const auto& row : db.lineitem.rows) {
    if (row[10].AsInt64() > params::kQ1ShipdateCutoff) continue;
    auto& [qty, price, cnt] =
        groups[{row[8].AsString(), row[9].AsString()}];
    qty += row[4].AsDouble();
    price += row[5].AsDouble();
    ++cnt;
  }
  return groups;
}

// Q5 reference: revenue per nation name.
std::map<std::string, double> ReferenceQ5(const datagen::TpchDatabase& db) {
  std::map<int64_t, int64_t> cust_nation;
  for (const auto& row : db.customer.rows) {
    cust_nation[row[0].AsInt64()] = row[2].AsInt64();
  }
  std::map<int64_t, int64_t> supp_nation;
  for (const auto& row : db.supplier.rows) {
    supp_nation[row[0].AsInt64()] = row[2].AsInt64();
  }
  std::map<int64_t, std::string> nation_name;
  std::set<int64_t> region_nations;
  for (const auto& row : db.nation.rows) {
    nation_name[row[0].AsInt64()] = row[1].AsString();
    if (row[2].AsInt64() == params::kQ5Region) {
      region_nations.insert(row[0].AsInt64());
    }
  }
  std::map<int64_t, std::pair<int64_t, bool>> order_info;  // cust, in-range
  for (const auto& row : db.orders.rows) {
    const int64_t d = row[2].AsInt64();
    order_info[row[0].AsInt64()] = {
        row[1].AsInt64(),
        d >= params::kQ5YearStart && d < params::kQ5YearEnd};
  }
  std::map<std::string, double> revenue;
  for (const auto& row : db.lineitem.rows) {
    const auto& [cust, in_range] = order_info[row[0].AsInt64()];
    if (!in_range) continue;
    const int64_t cnat = cust_nation[cust];
    if (!region_nations.count(cnat)) continue;
    if (supp_nation[row[3].AsInt64()] != cnat) continue;
    revenue[nation_name[cnat]] +=
        row[5].AsDouble() * (1.0 - row[6].AsDouble());
  }
  return revenue;
}

TEST(QueryRunnerTest, Q1MatchesReference) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ1();
  ASSERT_TRUE(result.ok()) << result.status();
  const auto ref = ReferenceQ1(f.db);
  ASSERT_EQ(result->result.num_rows(), ref.size());
  for (const auto& row : result->result.rows) {
    const auto it = ref.find({row[0].AsString(), row[1].AsString()});
    ASSERT_NE(it, ref.end());
    const auto& [qty, price, cnt] = it->second;
    EXPECT_NEAR(row[2].AsDouble(), qty, std::fabs(qty) * 1e-9);
    EXPECT_NEAR(row[3].AsDouble(), price, std::fabs(price) * 1e-9);
    // The merge phase sums partial counts with SUM, which is double-typed.
    EXPECT_DOUBLE_EQ(row[4].AsDouble(), static_cast<double>(cnt));
  }
}

TEST(QueryRunnerTest, Q1RecordsStages) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ1();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stages.size(), 2u);
  EXPECT_EQ(result->stages[0].label, "PartialAgg(L)");
  EXPECT_GT(result->stages[0].output_rows, 0u);
  EXPECT_GT(result->total_seconds, 0.0);
}

TEST(QueryRunnerTest, Q3ReturnsTopTenByRevenue) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ3();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_LE(result->result.num_rows(), 10u);
  ASSERT_GT(result->result.num_rows(), 0u);
  // Sorted descending by revenue.
  const auto rev = result->result.schema.Find("revenue");
  ASSERT_TRUE(rev.ok());
  double prev = 1e300;
  for (const auto& row : result->result.rows) {
    const double r = row[static_cast<size_t>(*rev)].AsDouble();
    EXPECT_LE(r, prev);
    prev = r;
  }
  EXPECT_EQ(result->stages.size(), 4u);
}

TEST(QueryRunnerTest, Q3TopRevenueMatchesReference) {
  // Reference: max revenue over qualifying orders.
  const Fixture& f = GetFixture();
  std::set<int64_t> segment_customers;
  for (const auto& row : f.db.customer.rows) {
    if (row[3].AsString() == params::kQ3Segment) {
      segment_customers.insert(row[0].AsInt64());
    }
  }
  std::map<int64_t, bool> order_ok;
  for (const auto& row : f.db.orders.rows) {
    order_ok[row[0].AsInt64()] =
        row[2].AsInt64() < params::kQ3Date &&
        segment_customers.count(row[1].AsInt64()) > 0;
  }
  std::map<int64_t, double> order_rev;
  for (const auto& row : f.db.lineitem.rows) {
    if (!order_ok[row[0].AsInt64()]) continue;
    if (row[10].AsInt64() <= params::kQ3Date) continue;
    order_rev[row[0].AsInt64()] +=
        row[5].AsDouble() * (1.0 - row[6].AsDouble());
  }
  double max_rev = 0.0;
  for (const auto& [k, v] : order_rev) max_rev = std::max(max_rev, v);

  QueryRunner runner(&f.pd);
  auto result = runner.RunQ3();
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->result.num_rows(), 0u);
  const auto rev = result->result.schema.Find("revenue");
  EXPECT_NEAR(result->result.rows[0][static_cast<size_t>(*rev)].AsDouble(),
              max_rev, max_rev * 1e-9);
}

TEST(QueryRunnerTest, Q5MatchesReference) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ5();
  ASSERT_TRUE(result.ok()) << result.status();
  const auto ref = ReferenceQ5(f.db);
  ASSERT_EQ(result->result.num_rows(), ref.size());
  for (const auto& row : result->result.rows) {
    const auto it = ref.find(row[0].AsString());
    ASSERT_NE(it, ref.end()) << row[0].AsString();
    EXPECT_NEAR(row[1].AsDouble(), it->second,
                std::fabs(it->second) * 1e-9);
  }
}

TEST(QueryRunnerTest, Q5HasFigureNineStages) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ5();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stages.size(), 6u);
  EXPECT_EQ(result->stages[0].label, "Join1(R,N)");
  EXPECT_EQ(result->stages[4].label, "Join5(RNCOL,S)");
  EXPECT_EQ(result->stages[5].label, "Agg(nation)");
}

TEST(QueryRunnerTest, RejectsNullDatabase) {
  QueryRunner runner(nullptr);
  EXPECT_FALSE(runner.RunQ1().ok());
  EXPECT_FALSE(runner.RunQ3().ok());
  EXPECT_FALSE(runner.RunQ5().ok());
}

TEST(QueryRunnerTest, ResultsIndependentOfPartitionCount) {
  const Fixture& f = GetFixture();
  auto pd2 = DistributeTpch(f.db, 2);
  ASSERT_TRUE(pd2.ok());
  QueryRunner r4(&f.pd);
  QueryRunner r2(&*pd2);
  auto a = r4.RunQ5();
  auto b = r2.RunQ5();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->result.num_rows(), b->result.num_rows());
  for (size_t i = 0; i < a->result.num_rows(); ++i) {
    EXPECT_EQ(a->result.rows[i][0], b->result.rows[i][0]);
    EXPECT_NEAR(a->result.rows[i][1].AsDouble(),
                b->result.rows[i][1].AsDouble(),
                std::fabs(a->result.rows[i][1].AsDouble()) * 1e-9);
  }
}

TEST(CostCalibratorTest, BuildsChainPlanFromStages) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ5();
  ASSERT_TRUE(result.ok());
  auto plan = BuildCalibratedPlan(*result, cost::ExternalIscsiStorage(),
                                  "q5-calibrated");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->num_nodes(), result->stages.size());
  EXPECT_TRUE(plan->Validate().ok());
  // Measured runtimes carried over.
  for (size_t i = 0; i < result->stages.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan->node(static_cast<plan::OpId>(i)).runtime_cost,
                     result->stages[i].seconds);
  }
  // All but the sink are free.
  const auto free_ops = plan->FreeOperators();
  EXPECT_EQ(free_ops.size(), plan->num_nodes());
}

TEST(CostCalibratorTest, ScalePlanMultipliesCosts) {
  plan::PlanBuilder b("p");
  auto s = b.Scan("R", 100, 10, 2.0);
  b.Unary(plan::OpType::kHashAggregate, "agg", s, 4.0, 1.0);
  plan::Plan p = std::move(b).Build();
  plan::Plan scaled = ScaleCalibratedPlan(p, 10.0, 3.0);
  EXPECT_DOUBLE_EQ(scaled.node(0).runtime_cost, 20.0);
  EXPECT_DOUBLE_EQ(scaled.node(1).runtime_cost, 40.0);
  EXPECT_DOUBLE_EQ(scaled.node(1).materialize_cost, 3.0);
}

TEST(CostCalibratorTest, RejectsEmptyExecution) {
  QueryExecution empty;
  EXPECT_FALSE(
      BuildCalibratedPlan(empty, cost::ExternalIscsiStorage(), "x").ok());
}

}  // namespace
}  // namespace xdbft::engine
