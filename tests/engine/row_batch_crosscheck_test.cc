// Row-engine vs vectorized-engine crosscheck at the query level: every
// benchmark query (Q1/Q3/Q5 and the complex Q1C/Q2C) must produce
// bit-identical results — same rows, same order, same floating-point
// bits — on the morsel-driven engine at 1, 2 and 8 threads, and the
// fault-tolerant stage executor must be engine-agnostic the same way.
// Bit identity (not approximate equality) is what lets the FT recovery
// path recompute a lost stage on either engine without detectable drift.
#include <gtest/gtest.h>

#include "engine/ft_executor.h"
#include "engine/query_runner.h"
#include "exec/batch.h"

namespace xdbft::engine {
namespace {

using exec::BitIdenticalTables;

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.01;
    opts.seed = 4242;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 4);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

using RunFn = Result<QueryExecution> (QueryRunner::*)() const;

void ExpectRowBatchBitIdentical(RunFn run) {
  const Fixture& f = GetFixture();
  QueryRunner row_runner(&f.pd);  // default: ExecMode::kRow
  auto row = (row_runner.*run)();
  ASSERT_TRUE(row.ok()) << row.status();
  ASSERT_GT(row->result.num_rows(), 0u);
  for (const int threads : {1, 2, 8}) {
    ExecOptions opts;
    opts.mode = ExecMode::kVectorized;
    opts.num_threads = threads;
    QueryRunner vec_runner(&f.pd, opts);
    auto vec = (vec_runner.*run)();
    ASSERT_TRUE(vec.ok()) << vec.status() << " threads=" << threads;
    EXPECT_TRUE(BitIdenticalTables(row->result, vec->result))
        << "threads=" << threads;
  }
}

TEST(RowBatchCrosscheckTest, Q1) {
  ExpectRowBatchBitIdentical(&QueryRunner::RunQ1);
}

TEST(RowBatchCrosscheckTest, Q3) {
  ExpectRowBatchBitIdentical(&QueryRunner::RunQ3);
}

TEST(RowBatchCrosscheckTest, Q5) {
  ExpectRowBatchBitIdentical(&QueryRunner::RunQ5);
}

TEST(RowBatchCrosscheckTest, Q1C) {
  ExpectRowBatchBitIdentical(&QueryRunner::RunQ1C);
}

TEST(RowBatchCrosscheckTest, Q2C) {
  ExpectRowBatchBitIdentical(&QueryRunner::RunQ2C);
}

TEST(RowBatchCrosscheckTest, SmallMorselsStayBitIdentical) {
  // Tiny morsels maximize the number of sink-ordered merge points.
  const Fixture& f = GetFixture();
  QueryRunner row_runner(&f.pd);
  auto row = row_runner.RunQ1();
  ASSERT_TRUE(row.ok()) << row.status();
  ExecOptions opts;
  opts.mode = ExecMode::kVectorized;
  opts.num_threads = 4;
  opts.morsel_rows = 33;
  QueryRunner vec_runner(&f.pd, opts);
  auto vec = vec_runner.RunQ1();
  ASSERT_TRUE(vec.ok()) << vec.status();
  EXPECT_TRUE(BitIdenticalTables(row->result, vec->result));
}

// ---- FT stage executor is engine-agnostic ----

void ExpectStagePlanBitIdentical(
    StagePlan (*make)(const PartitionedDatabase&, ExecOptions)) {
  const Fixture& f = GetFixture();
  const StagePlan row_plan = make(f.pd, ExecOptions{});
  ExecOptions vec_opts;
  vec_opts.mode = ExecMode::kVectorized;
  const StagePlan vec_plan = make(f.pd, vec_opts);

  FaultTolerantExecutor row_exec(&row_plan, &f.pd);
  auto row = row_exec.Execute(
      ft::MaterializationConfig::AllMat(row_plan.ToPlanSkeleton()));
  ASSERT_TRUE(row.ok()) << row.status();

  FaultTolerantExecutor vec_exec(&vec_plan, &f.pd);
  auto vec = vec_exec.Execute(
      ft::MaterializationConfig::AllMat(vec_plan.ToPlanSkeleton()));
  ASSERT_TRUE(vec.ok()) << vec.status();

  ASSERT_GT(row->result.num_rows(), 0u);
  EXPECT_TRUE(BitIdenticalTables(row->result, vec->result));
}

TEST(RowBatchCrosscheckTest, FtExecutorQ1StagePlan) {
  ExpectStagePlanBitIdentical(&MakeQ1StagePlan);
}

TEST(RowBatchCrosscheckTest, FtExecutorQ5StagePlan) {
  ExpectStagePlanBitIdentical(&MakeQ5StagePlan);
}

}  // namespace
}  // namespace xdbft::engine
