// EXPLAIN ANALYZE engine crosscheck: both engines fill the same profile
// tree shape, and per-operator output row counts must match exactly
// between the Volcano row engine and the morsel-driven vectorized engine
// (the operators are semantically identical; only timing may differ).
#include <gtest/gtest.h>

#include "engine/query_runner.h"

namespace xdbft::engine {
namespace {

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.01;
    opts.seed = 4242;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 4);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

using RunFn = Result<QueryExecution> (QueryRunner::*)() const;

void ExpectSameRows(const obs::OperatorProfile& row,
                    const obs::OperatorProfile& vec,
                    const std::string& where) {
  ASSERT_EQ(row.name, vec.name) << where;
  EXPECT_EQ(row.rows_out, vec.rows_out)
      << where << " -> " << row.name << ": row engine produced "
      << row.rows_out << " rows, vectorized " << vec.rows_out;
  ASSERT_EQ(row.children.size(), vec.children.size()) << where;
  for (size_t i = 0; i < row.children.size(); ++i) {
    ExpectSameRows(row.children[i], vec.children[i],
                   where + "/" + row.name);
  }
}

uint64_t TotalRows(const obs::OperatorProfile& p) {
  uint64_t total = p.rows_out;
  for (const auto& c : p.children) total += TotalRows(c);
  return total;
}

void CrosscheckQuery(RunFn run, const char* name) {
  const Fixture& f = GetFixture();
  ExecOptions row_opts;
  row_opts.mode = ExecMode::kRow;
  row_opts.profile = true;
  QueryRunner row_runner(&f.pd, row_opts);
  auto row = (row_runner.*run)();
  ASSERT_TRUE(row.ok()) << name << ": " << row.status();

  ExecOptions vec_opts;
  vec_opts.mode = ExecMode::kVectorized;
  vec_opts.num_threads = 4;
  vec_opts.profile = true;
  QueryRunner vec_runner(&f.pd, vec_opts);
  auto vec = (vec_runner.*run)();
  ASSERT_TRUE(vec.ok()) << name << ": " << vec.status();

  ASSERT_EQ(row->stage_profiles.size(), vec->stage_profiles.size()) << name;
  ASSERT_FALSE(row->stage_profiles.empty()) << name;
  [[maybe_unused]] uint64_t total_rows = 0;
  for (size_t s = 0; s < row->stage_profiles.size(); ++s) {
    const obs::QueryProfile& rp = row->stage_profiles[s];
    const obs::QueryProfile& vp = vec->stage_profiles[s];
    EXPECT_EQ(rp.label, vp.label);
    EXPECT_EQ(rp.engine, "row");
    EXPECT_EQ(vp.engine, "vectorized");
    ExpectSameRows(rp.root, vp.root,
                   std::string(name) + "/" + rp.label);
    total_rows += TotalRows(rp.root);
  }
#if !defined(XDBFT_DISABLE_METRICS)
  // The profiles must actually be populated, not two all-zero skeletons.
  EXPECT_GT(total_rows, 0u) << name;
#endif
}

TEST(ProfileCrosscheckTest, Q1RowCountsMatchAcrossEngines) {
  CrosscheckQuery(&QueryRunner::RunQ1, "Q1");
}

TEST(ProfileCrosscheckTest, Q3RowCountsMatchAcrossEngines) {
  CrosscheckQuery(&QueryRunner::RunQ3, "Q3");
}

TEST(ProfileCrosscheckTest, Q5RowCountsMatchAcrossEngines) {
  CrosscheckQuery(&QueryRunner::RunQ5, "Q5");
}

TEST(ProfileCrosscheckTest, ProfilingOffLeavesProfilesEmpty) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);  // profile defaults to false
  auto r = runner.RunQ1();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->stage_profiles.empty());
}

}  // namespace
}  // namespace xdbft::engine
