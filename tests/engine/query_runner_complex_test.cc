#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "engine/query_runner.h"

namespace xdbft::engine {
namespace {

using catalog::TpchTable;
using exec::Value;

struct Fixture {
  datagen::TpchDatabase db;
  PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.01;
    opts.seed = 777;
    auto db = datagen::GenerateTpch(opts);
    auto pd = DistributeTpch(*db, 3);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

// Q1C reference: per (returnflag, linestatus), count items above the
// group's average extended price (within the shipdate window).
std::map<std::pair<std::string, std::string>, int64_t> ReferenceQ1C(
    const datagen::TpchDatabase& db) {
  std::map<std::pair<std::string, std::string>, std::pair<double, int64_t>>
      sums;
  for (const auto& row : db.lineitem.rows) {
    if (row[10].AsInt64() > params::kQ1ShipdateCutoff) continue;
    auto& [sum, cnt] = sums[{row[8].AsString(), row[9].AsString()}];
    sum += row[5].AsDouble();
    ++cnt;
  }
  std::map<std::pair<std::string, std::string>, int64_t> counts;
  for (const auto& row : db.lineitem.rows) {
    if (row[10].AsInt64() > params::kQ1ShipdateCutoff) continue;
    const auto key = std::make_pair(row[8].AsString(), row[9].AsString());
    const auto& [sum, cnt] = sums[key];
    if (row[5].AsDouble() > sum / static_cast<double>(cnt)) ++counts[key];
  }
  return counts;
}

TEST(Q1CTest, MatchesReference) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ1C();
  ASSERT_TRUE(result.ok()) << result.status();
  const auto ref = ReferenceQ1C(f.db);
  ASSERT_EQ(result->result.num_rows(), ref.size());
  for (const auto& row : result->result.rows) {
    const auto it = ref.find({row[0].AsString(), row[1].AsString()});
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(row[2].AsInt64(), it->second);
  }
}

TEST(Q1CTest, HasAggregationInTheMiddle) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ1C();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stages.size(), 3u);
  EXPECT_EQ(result->stages[0].label, "InnerAgg(avg_price)");
  // The mid-plan aggregation output is tiny — the paper's cheap
  // checkpoint.
  EXPECT_LT(result->stages[0].output_rows, 10u);
  EXPECT_GT(result->stages[1].output_rows,
            100 * result->stages[0].output_rows);
}

// Q2C reference: min supplycost per part of the filtered type; outer i
// keeps (part, supplier) pairs achieving the min, split by retail price.
struct Q2CReference {
  std::set<std::pair<int64_t, int64_t>> outer1;  // (partkey, suppkey)
  std::set<std::pair<int64_t, int64_t>> outer2;
};

Q2CReference ReferenceQ2C(const datagen::TpchDatabase& db) {
  std::map<int64_t, std::pair<std::string, double>> part_info;
  for (const auto& row : db.part.rows) {
    part_info[row[0].AsInt64()] = {row[2].AsString(), row[3].AsDouble()};
  }
  std::map<int64_t, double> min_cost;
  for (const auto& row : db.partsupp.rows) {
    const auto& [type, price] = part_info[row[0].AsInt64()];
    if (type < "STANDARD" || type >= "STANDARE") continue;
    auto it = min_cost.find(row[0].AsInt64());
    if (it == min_cost.end() || row[2].AsDouble() < it->second) {
      min_cost[row[0].AsInt64()] = row[2].AsDouble();
    }
  }
  Q2CReference ref;
  for (const auto& row : db.partsupp.rows) {
    const auto it = min_cost.find(row[0].AsInt64());
    if (it == min_cost.end() || row[2].AsDouble() != it->second) continue;
    const double price = part_info[row[0].AsInt64()].second;
    auto& target = price < 1400.0 ? ref.outer1 : ref.outer2;
    target.insert({row[0].AsInt64(), row[1].AsInt64()});
  }
  return ref;
}

TEST(Q2CTest, ResultsAreMinCostPairs) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ2C();
  ASSERT_TRUE(result.ok()) << result.status();
  const Q2CReference ref = ReferenceQ2C(f.db);
  ASSERT_EQ(result->stages.size(), 3u);
  // Outer results are capped at 100 rows each and must be subsets of the
  // reference pair sets.
  const size_t n1 = result->stages[1].output_rows;
  const size_t n2 = result->stages[2].output_rows;
  EXPECT_EQ(n1, std::min<size_t>(100, ref.outer1.size()));
  EXPECT_EQ(n2, std::min<size_t>(100, ref.outer2.size()));
  for (size_t i = 0; i < result->result.num_rows(); ++i) {
    const auto& row = result->result.rows[i];
    const std::pair<int64_t, int64_t> pair = {row[0].AsInt64(),
                                              row[1].AsInt64()};
    if (i < n1) {
      EXPECT_TRUE(ref.outer1.count(pair)) << i;
    } else {
      EXPECT_TRUE(ref.outer2.count(pair)) << i;
    }
  }
}

TEST(Q2CTest, OuterResultsSortedBySupplycost) {
  const Fixture& f = GetFixture();
  QueryRunner runner(&f.pd);
  auto result = runner.RunQ2C();
  ASSERT_TRUE(result.ok());
  const size_t n1 = result->stages[1].output_rows;
  double prev = -1.0;
  for (size_t i = 0; i < n1; ++i) {
    const double c = result->result.rows[i][2].AsDouble();
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(ComplexQueriesTest, ResultsIndependentOfPartitionCount) {
  const Fixture& f = GetFixture();
  auto pd1 = DistributeTpch(f.db, 1);
  ASSERT_TRUE(pd1.ok());
  QueryRunner rn(&f.pd);
  QueryRunner r1(&*pd1);
  auto an = rn.RunQ1C();
  auto a1 = r1.RunQ1C();
  ASSERT_TRUE(an.ok());
  ASSERT_TRUE(a1.ok());
  ASSERT_EQ(an->result.num_rows(), a1->result.num_rows());
  for (size_t i = 0; i < an->result.num_rows(); ++i) {
    EXPECT_TRUE(exec::RowEq{}(an->result.rows[i], a1->result.rows[i]));
  }
}

TEST(ComplexQueriesTest, RejectNullDatabase) {
  QueryRunner runner(nullptr);
  EXPECT_FALSE(runner.RunQ1C().ok());
  EXPECT_FALSE(runner.RunQ2C().ok());
}

}  // namespace
}  // namespace xdbft::engine
