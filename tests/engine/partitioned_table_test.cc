#include "engine/partitioned_table.h"

#include <gtest/gtest.h>

namespace xdbft::engine {
namespace {

using catalog::Partitioning;
using catalog::TpchTable;
using exec::Table;
using exec::Value;
using exec::ValueType;

Table KeyedTable(int rows) {
  Table t;
  t.schema = {{"k", ValueType::kInt64}, {"v", ValueType::kString}};
  for (int i = 0; i < rows; ++i) {
    t.rows.push_back({Value(i), Value("row" + std::to_string(i))});
  }
  return t;
}

TEST(PartitionTest, HashPartitionCoversAllRowsDisjointly) {
  Table t = KeyedTable(1000);
  auto pt = Partition(t, Partitioning::kHash, "k", 7);
  ASSERT_TRUE(pt.ok()) << pt.status();
  EXPECT_EQ(pt->num_partitions(), 7u);
  EXPECT_EQ(pt->TotalRows(), 1000u);
  EXPECT_EQ(pt->LogicalRows(), 1000u);
  // Every row lands in the partition of its key hash.
  for (size_t p = 0; p < pt->partitions.size(); ++p) {
    for (const auto& row : pt->partitions[p].rows) {
      EXPECT_EQ(row[0].Hash() % 7, p);
    }
  }
}

TEST(PartitionTest, HashPartitionIsRoughlyBalanced) {
  Table t = KeyedTable(7000);
  auto pt = Partition(t, Partitioning::kHash, "k", 7);
  ASSERT_TRUE(pt.ok());
  for (const auto& p : pt->partitions) {
    EXPECT_GT(p.num_rows(), 700u);
    EXPECT_LT(p.num_rows(), 1300u);
  }
}

TEST(PartitionTest, ReplicatedCopiesEverywhere) {
  Table t = KeyedTable(50);
  auto pt = Partition(t, Partitioning::kReplicated, "", 4);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt->TotalRows(), 200u);
  EXPECT_EQ(pt->LogicalRows(), 50u);
  for (const auto& p : pt->partitions) {
    EXPECT_EQ(p.num_rows(), 50u);
  }
}

TEST(PartitionTest, RrefBehavesLikeReplicationHere) {
  Table t = KeyedTable(10);
  auto pt = Partition(t, Partitioning::kRref, "", 3);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt->LogicalRows(), 10u);
  EXPECT_EQ(pt->TotalRows(), 30u);
}

TEST(PartitionTest, RejectsBadArguments) {
  Table t = KeyedTable(5);
  EXPECT_FALSE(Partition(t, Partitioning::kHash, "k", 0).ok());
  EXPECT_FALSE(Partition(t, Partitioning::kHash, "missing", 2).ok());
}

TEST(DistributeTpchTest, UsesPaperLayout) {
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.002;
  auto db = datagen::GenerateTpch(opts);
  ASSERT_TRUE(db.ok());
  auto pd = DistributeTpch(*db, 4);
  ASSERT_TRUE(pd.ok()) << pd.status();
  EXPECT_EQ(pd->num_nodes, 4);
  EXPECT_EQ(pd->table(TpchTable::kLineitem).partitioning,
            Partitioning::kHash);
  EXPECT_EQ(pd->table(TpchTable::kOrders).partitioning, Partitioning::kHash);
  EXPECT_EQ(pd->table(TpchTable::kNation).partitioning,
            Partitioning::kReplicated);
  EXPECT_EQ(pd->table(TpchTable::kCustomer).partitioning,
            Partitioning::kRref);
  EXPECT_EQ(pd->table(TpchTable::kLineitem).LogicalRows(),
            db->lineitem.num_rows());
}

TEST(DistributeTpchTest, OrderkeyCoPartitioning) {
  // Every lineitem must sit on the same partition as its order: the
  // property that makes the paper's L-O join local.
  datagen::TpchGenOptions opts;
  opts.scale_factor = 0.002;
  auto db = datagen::GenerateTpch(opts);
  auto pd = DistributeTpch(*db, 4);
  ASSERT_TRUE(pd.ok());
  const auto& orders = pd->table(TpchTable::kOrders);
  const auto& lineitem = pd->table(TpchTable::kLineitem);
  for (size_t p = 0; p < 4; ++p) {
    std::set<int64_t> order_keys;
    for (const auto& row : orders.partitions[p].rows) {
      order_keys.insert(row[0].AsInt64());
    }
    for (const auto& row : lineitem.partitions[p].rows) {
      EXPECT_TRUE(order_keys.count(row[0].AsInt64()))
          << "lineitem not co-located with its order";
    }
  }
}

}  // namespace
}  // namespace xdbft::engine
