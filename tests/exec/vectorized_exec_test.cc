// Tests of the morsel-driven vectorized engine (exec/pipeline.h) against
// the row-engine baseline: batch helpers, vectorized expression
// evaluation (EvalVector / EvalSelection / FilterRows) versus per-row
// Eval, and bit-identical plan execution across every VecOp and several
// thread counts. Bit identity — not approximate equality — is the
// contract the FT executor's determinism check relies on: the ordered
// serial sink accumulates floating-point state in exact input-row order
// no matter how many workers run the morsels.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/batch.h"
#include "exec/pipeline.h"

namespace xdbft::exec {
namespace {

Table Numbers(int n, int key_mod = 5) {
  Table t;
  t.schema = {{"k", ValueType::kInt64},
              {"price", ValueType::kDouble},
              {"disc", ValueType::kDouble}};
  for (int i = 0; i < n; ++i) {
    Value disc;  // NULL every 7th row
    if (i % 7 != 0) disc = Value((i % 10) * 0.01);
    t.rows.push_back({Value(i % key_mod), Value(i * 1.25), std::move(disc)});
  }
  return t;
}

Result<Table> RunRow(const VecNodePtr& plan) {
  auto op = ToOperator(plan);
  return Drain(op.get());
}

void ExpectBitIdentical(const VecNodePtr& plan,
                        std::vector<int> thread_counts = {1, 2, 8}) {
  auto row = RunRow(plan);
  ASSERT_TRUE(row.ok()) << row.status();
  for (const int threads : thread_counts) {
    VecExecOptions opts;
    opts.num_threads = threads;
    opts.morsel_rows = 64;  // many morsels even on small inputs
    auto vec = ExecuteVectorized(plan, opts);
    ASSERT_TRUE(vec.ok()) << vec.status() << " threads=" << threads;
    EXPECT_TRUE(BitIdenticalTables(*row, *vec)) << "threads=" << threads;
  }
}

// ---- batch helpers ----

TEST(BatchTest, RoundTripThroughTable) {
  Table t = Numbers(100);
  Batch b;
  BatchFromTable(t, 10, 30, &b);
  EXPECT_EQ(b.num_rows(), 20u);
  EXPECT_EQ(b.num_columns(), 3u);
  Table out;
  out.schema = t.schema;
  AppendBatchToTable(std::move(b), &out);
  ASSERT_EQ(out.num_rows(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(out.rows[i], t.rows[10 + i]);
  }
}

TEST(BatchTest, ResetKeepsColumnsEmpty) {
  Table t = Numbers(50);
  Batch b;
  BatchFromTable(t, 0, 50, &b);
  b.Reset(2);
  EXPECT_EQ(b.num_columns(), 2u);
  EXPECT_EQ(b.num_rows(), 0u);
}

TEST(BatchTest, AppendGrowsGeometrically) {
  // Appending many small batches must stay linear (regression: reserving
  // to exactly size+n reallocated the accumulated table per batch).
  Table t = Numbers(64);
  Table out;
  out.schema = t.schema;
  for (int i = 0; i < 200; ++i) {
    Batch b;
    BatchFromTable(t, 0, 64, &b);
    AppendBatchToTable(std::move(b), &out);
  }
  EXPECT_EQ(out.num_rows(), 200u * 64u);
}

// ---- vectorized expression evaluation vs per-row Eval ----

TEST(VectorizedExprTest, EvalVectorMatchesRowEval) {
  Table t = Numbers(200);
  Batch b;
  BatchFromTable(t, 0, t.num_rows(), &b);
  std::vector<int32_t> sel;
  for (int32_t i = 0; i < 200; i += 3) sel.push_back(i);  // sparse sel

  const std::vector<Expr::Ptr> exprs = {
      Expr::Col(1) * (Expr::Lit(Value(1.0)) - Expr::Col(2)),  // nulls flow
      Expr::Col(0) + Expr::Lit(Value(int64_t{7})),
      Lt(Expr::Col(1), Expr::Lit(Value(100.0))),
      Eq(Expr::Col(0), Expr::Col(0)),
  };
  for (const auto& e : exprs) {
    std::vector<Value> out;
    e->EvalVector(b, sel, &out);
    ASSERT_EQ(out.size(), sel.size());
    for (size_t i = 0; i < sel.size(); ++i) {
      const Value expect = e->Eval(t.rows[static_cast<size_t>(sel[i])]);
      EXPECT_TRUE(BitIdenticalValue(expect, out[i]))
          << "expr=" << e->ToString() << " pos=" << sel[i];
    }
  }
}

TEST(VectorizedExprTest, EvalSelectionMatchesEvalBool) {
  Table t = Numbers(150);
  Batch b;
  BatchFromTable(t, 0, t.num_rows(), &b);
  const std::vector<Expr::Ptr> preds = {
      Lt(Expr::Col(0), Expr::Lit(Value(int64_t{3}))),
      Gt(Expr::Col(2), Expr::Lit(Value(0.05))),  // NULL disc -> dropped
      Eq(Expr::Col(0), Expr::Lit(Value(int64_t{1}))),
  };
  for (const auto& p : preds) {
    std::vector<int32_t> sel(t.num_rows());
    for (size_t i = 0; i < sel.size(); ++i) sel[i] = static_cast<int32_t>(i);
    p->EvalSelection(b, &sel);
    std::vector<int32_t> expect;
    for (size_t i = 0; i < t.num_rows(); ++i) {
      if (p->EvalBool(t.rows[i])) expect.push_back(static_cast<int32_t>(i));
    }
    EXPECT_EQ(sel, expect) << p->ToString();
  }
}

TEST(VectorizedExprTest, FilterRowsMatchesEvalBool) {
  Table t = Numbers(120);
  const std::vector<Expr::Ptr> preds = {
      // Direct-operand comparison: the in-place fast path.
      Lt(Expr::Col(0), Expr::Lit(Value(int64_t{2}))),
      // Composite operand: the EvalBool fallback.
      Gt(Expr::Col(1) * (Expr::Lit(Value(1.0)) - Expr::Col(2)),
         Expr::Lit(Value(20.0))),
  };
  for (const auto& p : preds) {
    std::vector<int32_t> sel;
    const size_t lo = 13, hi = 97;
    p->FilterRows(t.rows, lo, hi, &sel);
    std::vector<int32_t> expect;
    for (size_t i = lo; i < hi; ++i) {
      if (p->EvalBool(t.rows[i])) {
        expect.push_back(static_cast<int32_t>(i - lo));
      }
    }
    EXPECT_EQ(sel, expect) << p->ToString();
  }
}

// ---- plan execution: every VecOp, row vs vectorized, multi-threaded ----

TEST(VectorizedPlanTest, ScanFilterProject) {
  Table t = Numbers(1000);
  ExpectBitIdentical(VProject(
      VFilter(VScan(&t), Lt(Expr::Col(0), Expr::Lit(Value(int64_t{3})))),
      {Expr::Col(1) * (Expr::Lit(Value(1.0)) - Expr::Col(2))}, {"rev"}));
}

TEST(VectorizedPlanTest, FusedScanFilterCompositePredicate) {
  // A predicate whose operands are not column/literal exercises the
  // fused scan-filter's EvalBool fallback.
  Table t = Numbers(500);
  ExpectBitIdentical(VFilter(
      VScan(&t), Gt(Expr::Col(1) * (Expr::Lit(Value(1.0)) - Expr::Col(2)),
                    Expr::Lit(Value(50.0)))));
}

TEST(VectorizedPlanTest, FilterAboveProjectUsesSelectionPath) {
  // The non-fused filter (its input is a project, not a scan) runs as a
  // selection-vector step.
  Table t = Numbers(800);
  ExpectBitIdentical(VFilter(
      VProject(VScan(&t),
               {Expr::Col(0), Expr::Col(1) + Expr::Lit(Value(1.0))},
               {"k", "p1"}),
      Gt(Expr::Col(1), Expr::Lit(Value(100.0)))));
}

TEST(VectorizedPlanTest, HashAggregate) {
  Table t = Numbers(2000, 37);
  ExpectBitIdentical(VHashAggregate(
      VFilter(VScan(&t), Lt(Expr::Col(0), Expr::Lit(Value(int64_t{25})))),
      {0},
      {{AggFunc::kSum,
        Expr::Col(1) * (Expr::Lit(Value(1.0)) - Expr::Col(2)), "rev"},
       {AggFunc::kCount, Expr::Col(2), "c_disc"},
       {AggFunc::kCount, nullptr, "c"},
       {AggFunc::kMin, Expr::Col(1), "lo"},
       {AggFunc::kMax, Expr::Col(1), "hi"},
       {AggFunc::kAvg, Expr::Col(1), "avg"}}));
}

TEST(VectorizedPlanTest, GlobalAggregateOverEmptyInput) {
  Table t = Numbers(100);
  // Filter nothing through; global aggregate must still emit one row
  // (NULL sum, zero count) in both engines.
  const auto plan = VHashAggregate(
      VFilter(VScan(&t), Lt(Expr::Col(0), Expr::Lit(Value(int64_t{-1})))),
      {}, {{AggFunc::kSum, Expr::Col(1), "s"},
           {AggFunc::kCount, nullptr, "c"}});
  ExpectBitIdentical(plan);
  auto r = RunRow(plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_TRUE(r->rows[0][0].is_null());
}

TEST(VectorizedPlanTest, AggregateIntKeyDemotion) {
  // Group keys that start int64 and later produce non-int64 values make
  // the aggregate sink demote its integer key index mid-stream; grouping
  // and first-occurrence order must be unaffected.
  Table t;
  t.schema = {{"k", ValueType::kNull}, {"v", ValueType::kDouble}};
  for (int i = 0; i < 300; ++i) {
    Value key = i < 150 ? Value(i % 10)
                        : (i % 2 == 0 ? Value("g" + std::to_string(i % 3))
                                      : Value(i % 10));
    t.rows.push_back({key, Value(i * 0.5)});
  }
  ExpectBitIdentical(VHashAggregate(
      VScan(&t), {0}, {{AggFunc::kSum, Expr::Col(1), "s"}}));
}

TEST(VectorizedPlanTest, HashJoin) {
  Table build = Numbers(40, 11);
  Table probe = Numbers(900, 13);
  ExpectBitIdentical(
      VHashJoin(VScan(&build), VScan(&probe), {0}, {0}));
}

TEST(VectorizedPlanTest, NestedLoopJoin) {
  Table l = Numbers(30, 4);
  Table r = Numbers(60, 4);
  ExpectBitIdentical(VNestedLoopJoin(
      VScan(&l), VScan(&r), Eq(Expr::Col(0), Expr::Col(3))));
}

TEST(VectorizedPlanTest, MergeJoin) {
  Table l = Numbers(50, 6);
  Table r = Numbers(70, 6);
  // Merge join needs sorted inputs in both engines.
  ExpectBitIdentical(VMergeJoin(VSort(VScan(&l), {0}, {true}),
                                VSort(VScan(&r), {0}, {true}), 0, 0));
}

TEST(VectorizedPlanTest, SortLimitUnion) {
  Table a = Numbers(300, 17);
  Table b = Numbers(300, 19);
  ExpectBitIdentical(VLimit(
      VSort(VUnionAll({VScan(&a), VScan(&b)}), {1, 0}, {false, true}, -1),
      25));
}

TEST(VectorizedPlanTest, SortWithTopKLimit) {
  Table t = Numbers(500, 23);
  ExpectBitIdentical(VSort(VScan(&t), {1}, {false}, 10));
}

TEST(VectorizedPlanTest, UnionSchemaMismatchIsInvalidArgument) {
  Table a = Numbers(5);
  Table narrow;
  narrow.schema = {{"k", ValueType::kInt64}};
  narrow.rows.push_back({Value(0)});
  const auto plan = VUnionAll({VScan(&a), VScan(&narrow)});
  auto vec = ExecuteVectorized(plan);
  ASSERT_FALSE(vec.ok());
  EXPECT_TRUE(vec.status().IsInvalidArgument()) << vec.status();
  auto row = RunRow(plan);
  ASSERT_FALSE(row.ok());
  EXPECT_TRUE(row.status().IsInvalidArgument()) << row.status();
}

TEST(VectorizedPlanTest, DeepPipelineBitIdentical) {
  // Aggregate over a join over a filtered union: several pipelines with
  // breakers in the middle.
  Table a = Numbers(400, 29);
  Table b = Numbers(400, 31);
  Table dim = Numbers(29, 29);
  const auto fact = VFilter(VUnionAll({VScan(&a), VScan(&b)}),
                            Gt(Expr::Col(1), Expr::Lit(Value(10.0))));
  const auto joined = VHashJoin(VScan(&dim), fact, {0}, {0});
  ExpectBitIdentical(VHashAggregate(
      joined, {0},
      {{AggFunc::kSum, Expr::Col(1) + Expr::Col(4), "s"},
       {AggFunc::kCount, nullptr, "c"}}));
}

TEST(VectorizedPlanTest, MorselSizeDoesNotChangeResults) {
  Table t = Numbers(1111, 41);
  const auto plan = VHashAggregate(
      VFilter(VScan(&t), Lt(Expr::Col(0), Expr::Lit(Value(int64_t{30})))),
      {0}, {{AggFunc::kSum, Expr::Col(1), "s"}});
  auto row = RunRow(plan);
  ASSERT_TRUE(row.ok());
  for (const size_t morsel : {1u, 7u, 256u, 4096u}) {
    VecExecOptions opts;
    opts.morsel_rows = morsel;
    auto vec = ExecuteVectorized(plan, opts);
    ASSERT_TRUE(vec.ok()) << vec.status();
    EXPECT_TRUE(BitIdenticalTables(*row, *vec)) << "morsel=" << morsel;
  }
}

TEST(VectorizedPlanTest, NullPlanAndNullScanDiagnostics) {
  EXPECT_FALSE(ExecuteVectorized(nullptr).ok());
  auto vec = ExecuteVectorized(VScan(nullptr));
  ASSERT_FALSE(vec.ok());
  EXPECT_TRUE(vec.status().IsInvalidArgument());
}

}  // namespace
}  // namespace xdbft::exec
