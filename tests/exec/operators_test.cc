#include "exec/operators.h"

#include <gtest/gtest.h>

#include <set>

namespace xdbft::exec {
namespace {

Table NumbersTable(int n) {
  Table t;
  t.schema = {{"id", ValueType::kInt64}, {"val", ValueType::kDouble}};
  for (int i = 0; i < n; ++i) {
    t.rows.push_back({Value(i), Value(i * 1.5)});
  }
  return t;
}

TEST(ScanTest, ProducesAllRows) {
  Table t = NumbersTable(10);
  auto op = MakeScan(&t);
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_rows(), 10u);
  EXPECT_EQ(r->schema.num_columns(), 2u);
}

TEST(ScanTest, RejectsNullTable) {
  auto op = MakeScan(nullptr);
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(FilterTest, KeepsMatchingRows) {
  Table t = NumbersTable(10);
  auto op = MakeFilter(MakeScan(&t),
                       Ge(Expr::Col(0), Expr::Lit(Value(7))));
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
}

TEST(FilterTest, RejectsNullPredicate) {
  Table t = NumbersTable(3);
  auto op = MakeFilter(MakeScan(&t), nullptr);
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(ProjectTest, ComputesExpressions) {
  Table t = NumbersTable(3);
  auto op = MakeProject(MakeScan(&t),
                        {Expr::Col(0) + Expr::Lit(Value(100))}, {"plus"});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->schema.column(0).name, "plus");
  EXPECT_EQ(r->rows[2][0], Value(102));
}

TEST(ProjectTest, RejectsSizeMismatch) {
  Table t = NumbersTable(3);
  auto op = MakeProject(MakeScan(&t), {Expr::Col(0)}, {"a", "b"});
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(HashJoinTest, InnerEquiJoin) {
  Table left;
  left.schema = {{"k", ValueType::kInt64}, {"l", ValueType::kString}};
  left.rows = {{Value(1), Value("a")}, {Value(2), Value("b")}};
  Table right;
  right.schema = {{"k2", ValueType::kInt64}, {"r", ValueType::kString}};
  right.rows = {{Value(2), Value("x")},
                {Value(2), Value("y")},
                {Value(3), Value("z")}};
  auto op = MakeHashJoin(MakeScan(&left), MakeScan(&right), {0}, {0});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  // Only k=2 matches, twice (probe side is `right`).
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->schema.num_columns(), 4u);
  for (const auto& row : r->rows) {
    EXPECT_EQ(row[0], Value(2));  // probe columns first
    EXPECT_EQ(row[3], Value("b"));
  }
}

TEST(HashJoinTest, MultiColumnKeys) {
  Table left;
  left.schema = {{"a", ValueType::kInt64}, {"b", ValueType::kInt64}};
  left.rows = {{Value(1), Value(2)}, {Value(1), Value(3)}};
  Table right = left;
  auto op = MakeHashJoin(MakeScan(&left), MakeScan(&right), {0, 1}, {0, 1});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);  // exact matches only
}

TEST(HashJoinTest, DuplicateNamesGetPrefixed) {
  Table t = NumbersTable(2);
  auto op = MakeHashJoin(MakeScan(&t), MakeScan(&t), {0}, {0});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema.column(2).name, "right.id");
}

TEST(HashJoinTest, RejectsEmptyKeys) {
  Table t = NumbersTable(2);
  auto op = MakeHashJoin(MakeScan(&t), MakeScan(&t), {}, {});
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(HashAggregateTest, GroupBySums) {
  Table t;
  t.schema = {{"g", ValueType::kInt64}, {"v", ValueType::kInt64}};
  t.rows = {{Value(1), Value(10)},
            {Value(2), Value(20)},
            {Value(1), Value(5)}};
  auto op = MakeHashAggregate(
      MakeScan(&t), {0},
      {{AggFunc::kSum, Expr::Col(1), "s"},
       {AggFunc::kCount, nullptr, "c"},
       {AggFunc::kMin, Expr::Col(1), "mn"},
       {AggFunc::kMax, Expr::Col(1), "mx"},
       {AggFunc::kAvg, Expr::Col(1), "av"}});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  for (const auto& row : r->rows) {
    if (row[0] == Value(1)) {
      EXPECT_DOUBLE_EQ(row[1].AsDouble(), 15.0);
      EXPECT_EQ(row[2], Value(2));
      EXPECT_EQ(row[3], Value(5));
      EXPECT_EQ(row[4], Value(10));
      EXPECT_DOUBLE_EQ(row[5].AsDouble(), 7.5);
    } else {
      EXPECT_DOUBLE_EQ(row[1].AsDouble(), 20.0);
    }
  }
}

TEST(HashAggregateTest, GlobalAggregateOnEmptyInput) {
  Table t;
  t.schema = {{"v", ValueType::kInt64}};
  auto op = MakeHashAggregate(MakeScan(&t), {},
                              {{AggFunc::kCount, nullptr, "c"}});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->rows[0][0], Value(int64_t{0}));
}

TEST(HashAggregateTest, RejectsMissingArgument) {
  Table t = NumbersTable(2);
  auto op = MakeHashAggregate(MakeScan(&t), {},
                              {{AggFunc::kSum, nullptr, "s"}});
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(SortTest, SortsAscendingAndDescending) {
  Table t;
  t.schema = {{"v", ValueType::kInt64}};
  t.rows = {{Value(3)}, {Value(1)}, {Value(2)}};
  auto asc = MakeSort(MakeScan(&t), {0}, {true});
  auto r = Drain(asc.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Value(1));
  EXPECT_EQ(r->rows[2][0], Value(3));
  auto desc = MakeSort(MakeScan(&t), {0}, {false});
  auto r2 = Drain(desc.get());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows[0][0], Value(3));
}

TEST(SortTest, TopKLimit) {
  Table t = NumbersTable(100);
  auto op = MakeSort(MakeScan(&t), {0}, {false}, 5);
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 5u);
  EXPECT_EQ(r->rows[0][0], Value(99));
  EXPECT_EQ(r->rows[4][0], Value(95));
}

TEST(SortTest, MultiKeyWithTies) {
  Table t;
  t.schema = {{"a", ValueType::kInt64}, {"b", ValueType::kInt64}};
  t.rows = {{Value(1), Value(2)}, {Value(1), Value(1)}, {Value(0), Value(9)}};
  auto op = MakeSort(MakeScan(&t), {0, 1}, {true, true});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][1], Value(9));
  EXPECT_EQ(r->rows[1][1], Value(1));
  EXPECT_EQ(r->rows[2][1], Value(2));
}

TEST(SortTest, RejectsDirectionMismatch) {
  Table t = NumbersTable(2);
  auto op = MakeSort(MakeScan(&t), {0}, {true, false});
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(LimitTest, TruncatesInput) {
  Table t = NumbersTable(10);
  auto op = MakeLimit(MakeScan(&t), 4);
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 4u);
  auto none = MakeLimit(MakeScan(&t), 0);
  EXPECT_EQ(Drain(none.get())->num_rows(), 0u);
  auto neg = MakeLimit(MakeScan(&t), -1);
  EXPECT_FALSE(Drain(neg.get()).ok());
}

TEST(UnionAllTest, Concatenates) {
  Table a = NumbersTable(3), b = NumbersTable(2);
  std::vector<OperatorPtr> inputs;
  inputs.push_back(MakeScan(&a));
  inputs.push_back(MakeScan(&b));
  auto op = MakeUnionAll(std::move(inputs));
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 5u);
}

TEST(UnionAllTest, RejectsEmpty) {
  auto op = MakeUnionAll({});
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(PipelineTest, ComposedQuery) {
  // SELECT g, SUM(v) FROM t WHERE v >= 2 GROUP BY g ORDER BY s DESC
  Table t;
  t.schema = {{"g", ValueType::kInt64}, {"v", ValueType::kInt64}};
  for (int i = 0; i < 20; ++i) {
    t.rows.push_back({Value(i % 3), Value(i)});
  }
  auto op = MakeFilter(MakeScan(&t), Ge(Expr::Col(1), Expr::Lit(Value(2))));
  op = MakeHashAggregate(std::move(op), {0},
                         {{AggFunc::kSum, Expr::Col(1), "s"}});
  op = MakeSort(std::move(op), {1}, {false});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 3u);
  // Group 0: 3+6+..+18=63; group 1: 4+7+..+19=69; group 2: 2+5+..+17=57.
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsDouble(), 69.0);
  EXPECT_DOUBLE_EQ(r->rows[1][1].AsDouble(), 63.0);
  EXPECT_DOUBLE_EQ(r->rows[2][1].AsDouble(), 57.0);
}

TEST(DrainTimedTest, ReportsWallTime) {
  Table t = NumbersTable(1000);
  auto op = MakeSort(MakeScan(&t), {0}, {false});
  auto r = DrainTimed(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 1000u);
  EXPECT_GT(r->wall_seconds, 0.0);
}

}  // namespace
}  // namespace xdbft::exec
