#include "exec/value.h"

#include <gtest/gtest.h>

namespace xdbft::exec {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(7).type(), ValueType::kInt64);
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value(std::string("xy")).AsString(), "xy");
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
}

TEST(ValueTest, NumericComparisonCrossType) {
  EXPECT_EQ(Value(2).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(1).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(2)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(Value().Compare(Value(0)), 0);
  EXPECT_GT(Value("a").Compare(Value()), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, EqualityOperators) {
  EXPECT_TRUE(Value(5) == Value(5));
  EXPECT_TRUE(Value(5) != Value(6));
  EXPECT_TRUE(Value(1) < Value(2));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(42).Hash(), Value(42.0).Hash());
  EXPECT_EQ(Value("k").Hash(), Value(std::string("k")).Hash());
  EXPECT_NE(Value(1).Hash(), Value(2).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(7).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(1.5).ToString(), "1.5000");
}

TEST(RowKeyTest, ExtractAndHash) {
  Row row = {Value(1), Value("a"), Value(2.5)};
  const Row key = ExtractKey(row, {2, 0});
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0], Value(2.5));
  EXPECT_EQ(key[1], Value(1));
  EXPECT_EQ(HashKey(row, {2, 0}), (RowHash{}(key)));
}

TEST(RowKeyTest, RowEqAndHashAgree) {
  Row a = {Value(1), Value("x")};
  Row b = {Value(int64_t{1}), Value("x")};
  Row c = {Value(1), Value("y")};
  EXPECT_TRUE(RowEq{}(a, b));
  EXPECT_FALSE(RowEq{}(a, c));
  EXPECT_EQ(RowHash{}(a), RowHash{}(b));
}

}  // namespace
}  // namespace xdbft::exec
