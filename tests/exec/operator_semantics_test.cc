// Regression suite for operator NULL and reset semantics:
//   - SQL NULL handling in aggregates (COUNT(expr) skips NULLs, SUM/AVG
//     of zero non-NULL inputs is NULL, MIN/MAX ignore NULLs),
//   - re-Open idempotence: recovery replays call Open on an already-used
//     operator tree without an intervening Close; results must match a
//     fresh execution exactly (no duplicated hash-join build rows, no
//     stale aggregate state, no mid-stream scan positions),
//   - construction-time schema safety and InvalidArgument diagnostics
//     (null scan table, mismatched UNION ALL inputs).
#include <gtest/gtest.h>

#include "exec/operators.h"

namespace xdbft::exec {
namespace {

std::vector<OperatorPtr> Vec(OperatorPtr a, OperatorPtr b) {
  std::vector<OperatorPtr> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return v;
}

// (id, val) with val NULL on every third row.
Table TableWithNulls(int n) {
  Table t;
  t.schema = {{"id", ValueType::kInt64}, {"val", ValueType::kDouble}};
  for (int i = 0; i < n; ++i) {
    t.rows.push_back({Value(i), i % 3 == 0 ? Value() : Value(i * 1.5)});
  }
  return t;
}

Table AllNullVals(int n) {
  Table t;
  t.schema = {{"id", ValueType::kInt64}, {"val", ValueType::kDouble}};
  for (int i = 0; i < n; ++i) t.rows.push_back({Value(i % 2), Value()});
  return t;
}

// ---- NULL semantics in aggregates ----

TEST(AggNullSemanticsTest, CountExprSkipsNullArguments) {
  Table t = TableWithNulls(9);  // rows 0,3,6 have NULL val
  auto op = MakeHashAggregate(
      MakeScan(&t), {},
      {{AggFunc::kCount, Expr::Col(1), "c"},
       {AggFunc::kCount, nullptr, "star"}});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->rows[0][0], Value(int64_t{6}));  // COUNT(val): NULLs skipped
  EXPECT_EQ(r->rows[0][1], Value(int64_t{9}));  // COUNT(*): all rows
}

TEST(AggNullSemanticsTest, SumOfZeroNonNullInputsIsNull) {
  Table t = AllNullVals(4);
  auto op = MakeHashAggregate(
      MakeScan(&t), {},
      {{AggFunc::kSum, Expr::Col(1), "s"},
       {AggFunc::kAvg, Expr::Col(1), "a"},
       {AggFunc::kMin, Expr::Col(1), "lo"},
       {AggFunc::kMax, Expr::Col(1), "hi"},
       {AggFunc::kCount, Expr::Col(1), "c"}});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_TRUE(r->rows[0][0].is_null());  // SUM, not 0
  EXPECT_TRUE(r->rows[0][1].is_null());  // AVG, not NaN
  EXPECT_TRUE(r->rows[0][2].is_null());  // MIN
  EXPECT_TRUE(r->rows[0][3].is_null());  // MAX
  EXPECT_EQ(r->rows[0][4], Value(int64_t{0}));  // COUNT(expr) is 0
}

TEST(AggNullSemanticsTest, SumSkipsNullsButKeepsNonNull) {
  Table t = TableWithNulls(6);  // non-NULL vals: 1.5, 3.0, 6.0, 7.5
  auto op = MakeHashAggregate(MakeScan(&t), {},
                              {{AggFunc::kSum, Expr::Col(1), "s"}});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows[0][0], Value(18.0));
}

TEST(AggNullSemanticsTest, PerGroupNullHandlingIsIndependent) {
  // Group 0 has only NULL vals, group 1 only non-NULL.
  Table t;
  t.schema = {{"g", ValueType::kInt64}, {"val", ValueType::kDouble}};
  t.rows.push_back({Value(0), Value()});
  t.rows.push_back({Value(1), Value(2.0)});
  t.rows.push_back({Value(0), Value()});
  t.rows.push_back({Value(1), Value(3.0)});
  auto op = MakeHashAggregate(MakeScan(&t), {0},
                              {{AggFunc::kSum, Expr::Col(1), "s"}});
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_TRUE(r->rows[0][1].is_null());  // group 0 (first occurrence)
  EXPECT_EQ(r->rows[1][1], Value(5.0));  // group 1
}

// ---- re-Open idempotence ----

// Drains `op` twice via explicit Open calls with no Close in between
// (and once after a partial first read) and checks both results against
// a reference drain.
void ExpectReOpenIdempotent(Operator* op, const Table& expect) {
  // Full drain, then re-Open without Close.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(op->Open().ok()) << "round " << round;
    Table got;
    got.schema = op->schema();
    Row row;
    while (true) {
      auto more = op->Next(&row);
      ASSERT_TRUE(more.ok()) << more.status();
      if (!*more) break;
      got.rows.push_back(row);
    }
    ASSERT_EQ(got.num_rows(), expect.num_rows()) << "round " << round;
    for (size_t i = 0; i < got.rows.size(); ++i) {
      EXPECT_EQ(got.rows[i], expect.rows[i]) << "round " << round;
    }
  }
  // Abandon a partial read, re-Open, and expect a full result again.
  ASSERT_TRUE(op->Open().ok());
  Row row;
  if (expect.num_rows() > 0) {
    auto more = op->Next(&row);
    ASSERT_TRUE(more.ok() && *more);
  }
  ASSERT_TRUE(op->Open().ok());
  size_t n = 0;
  while (true) {
    auto more = op->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++n;
  }
  EXPECT_EQ(n, expect.num_rows());
  op->Close();
}

Table Numbers(int n) {
  Table t;
  t.schema = {{"id", ValueType::kInt64}, {"val", ValueType::kDouble}};
  for (int i = 0; i < n; ++i) t.rows.push_back({Value(i), Value(i * 1.5)});
  return t;
}

TEST(ReOpenTest, Scan) {
  Table t = Numbers(5);
  auto op = MakeScan(&t);
  ExpectReOpenIdempotent(op.get(), t);
}

TEST(ReOpenTest, FilterProject) {
  Table t = Numbers(10);
  auto op = MakeProject(
      MakeFilter(MakeScan(&t), Lt(Expr::Col(0), Expr::Lit(Value(5)))),
      {Expr::Col(0) + Expr::Lit(Value(100))}, {"plus"});
  auto ref = Drain(MakeProject(
                       MakeFilter(MakeScan(&t),
                                  Lt(Expr::Col(0), Expr::Lit(Value(5)))),
                       {Expr::Col(0) + Expr::Lit(Value(100))}, {"plus"})
                       .get());
  ASSERT_TRUE(ref.ok());
  ExpectReOpenIdempotent(op.get(), *ref);
}

TEST(ReOpenTest, HashJoinDoesNotDuplicateBuildRows) {
  Table build = Numbers(4);
  Table probe = Numbers(6);
  auto mk = [&]() {
    return MakeHashJoin(MakeScan(&build), MakeScan(&probe), {0}, {0});
  };
  auto ref = Drain(mk().get());
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->num_rows(), 4u);
  auto op = mk();
  ExpectReOpenIdempotent(op.get(), *ref);
}

TEST(ReOpenTest, MergeJoin) {
  Table l = Numbers(5);
  Table r = Numbers(7);
  auto mk = [&]() { return MakeMergeJoin(MakeScan(&l), MakeScan(&r), 0, 0); };
  auto ref = Drain(mk().get());
  ASSERT_TRUE(ref.ok());
  auto op = mk();
  ExpectReOpenIdempotent(op.get(), *ref);
}

TEST(ReOpenTest, NestedLoopJoin) {
  Table l = Numbers(3);
  Table r = Numbers(4);
  auto mk = [&]() {
    return MakeNestedLoopJoin(MakeScan(&l), MakeScan(&r),
                              Eq(Expr::Col(0), Expr::Col(2)));
  };
  auto ref = Drain(mk().get());
  ASSERT_TRUE(ref.ok());
  auto op = mk();
  ExpectReOpenIdempotent(op.get(), *ref);
}

TEST(ReOpenTest, HashAggregateClearsState) {
  Table t = Numbers(9);
  auto mk = [&]() {
    return MakeHashAggregate(
        MakeScan(&t), {},
        {{AggFunc::kSum, Expr::Col(1), "s"},
         {AggFunc::kCount, nullptr, "c"}});
  };
  auto ref = Drain(mk().get());
  ASSERT_TRUE(ref.ok());
  auto op = mk();
  ExpectReOpenIdempotent(op.get(), *ref);
}

TEST(ReOpenTest, SortLimitUnion) {
  Table a = Numbers(6);
  Table b = Numbers(6);
  auto mk = [&]() {
    return MakeLimit(
        MakeSort(MakeUnionAll(Vec(MakeScan(&a), MakeScan(&b))), {0},
                 {false}, -1),
        7);
  };
  auto ref = Drain(mk().get());
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->num_rows(), 7u);
  auto op = mk();
  ExpectReOpenIdempotent(op.get(), *ref);
}

// ---- construction / Open diagnostics ----

TEST(OperatorDiagnosticsTest, ScanNullTableSchemaIsSafe) {
  auto op = MakeScan(nullptr);
  // schema() must not dereference the missing table (parents call it at
  // construction time)...
  EXPECT_EQ(op->schema().num_columns(), 0u);
  // ...and Open must diagnose it.
  const Status s = op->Open();
  EXPECT_TRUE(s.IsInvalidArgument()) << s;
}

TEST(OperatorDiagnosticsTest, UnionAllRejectsColumnCountMismatch) {
  Table a = Numbers(2);
  Table narrow;
  narrow.schema = {{"id", ValueType::kInt64}};
  narrow.rows.push_back({Value(0)});
  auto op = MakeUnionAll(Vec(MakeScan(&a), MakeScan(&narrow)));
  const Status s = op->Open();
  EXPECT_TRUE(s.IsInvalidArgument()) << s;
}

TEST(OperatorDiagnosticsTest, UnionAllRejectsColumnTypeMismatch) {
  Table a = Numbers(2);
  Table other;
  other.schema = {{"id", ValueType::kInt64}, {"val", ValueType::kString}};
  other.rows.push_back({Value(0), Value("x")});
  auto op = MakeUnionAll(Vec(MakeScan(&a), MakeScan(&other)));
  const Status s = op->Open();
  EXPECT_TRUE(s.IsInvalidArgument()) << s;
}

TEST(OperatorDiagnosticsTest, UnionAllAcceptsMatchingSchemas) {
  Table a = Numbers(2);
  Table b = Numbers(3);
  auto op = MakeUnionAll(Vec(MakeScan(&a), MakeScan(&b)));
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_rows(), 5u);
}

}  // namespace
}  // namespace xdbft::exec
