#include "exec/expr.h"

#include <gtest/gtest.h>

namespace xdbft::exec {
namespace {

const Row kRow = {Value(10), Value(2.5), Value("abc")};
const Schema kSchema = {{"a", ValueType::kInt64},
                        {"b", ValueType::kDouble},
                        {"c", ValueType::kString}};

TEST(ExprTest, ColumnAndLiteral) {
  EXPECT_EQ(Expr::Col(0)->Eval(kRow), Value(10));
  EXPECT_EQ(Expr::Lit(Value(7))->Eval(kRow), Value(7));
}

TEST(ExprTest, NamedColumnResolution) {
  auto c = Expr::Col(kSchema, "b");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->Eval(kRow), Value(2.5));
  EXPECT_FALSE(Expr::Col(kSchema, "nope").ok());
}

TEST(ExprTest, IntegerArithmeticStaysIntegral) {
  auto e = Expr::Col(0) + Expr::Lit(Value(5));
  EXPECT_EQ(e->Eval(kRow).type(), ValueType::kInt64);
  EXPECT_EQ(e->Eval(kRow).AsInt64(), 15);
  auto m = Expr::Col(0) * Expr::Lit(Value(3));
  EXPECT_EQ(m->Eval(kRow).AsInt64(), 30);
}

TEST(ExprTest, DivisionIsDouble) {
  auto e = Expr::Col(0) / Expr::Lit(Value(4));
  EXPECT_EQ(e->Eval(kRow).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(e->Eval(kRow).AsDouble(), 2.5);
}

TEST(ExprTest, MixedArithmeticIsDouble) {
  auto e = Expr::Col(0) - Expr::Col(1);
  EXPECT_DOUBLE_EQ(e->Eval(kRow).AsDouble(), 7.5);
}

TEST(ExprTest, Comparisons) {
  EXPECT_EQ(Eq(Expr::Col(0), Expr::Lit(Value(10)))->Eval(kRow), Value(1));
  EXPECT_EQ(Ne(Expr::Col(0), Expr::Lit(Value(10)))->Eval(kRow), Value(0));
  EXPECT_EQ(Lt(Expr::Col(1), Expr::Lit(Value(3.0)))->Eval(kRow), Value(1));
  EXPECT_EQ(Le(Expr::Col(0), Expr::Lit(Value(9)))->Eval(kRow), Value(0));
  EXPECT_EQ(Gt(Expr::Col(2), Expr::Lit(Value("abb")))->Eval(kRow),
            Value(1));
  EXPECT_EQ(Ge(Expr::Col(0), Expr::Lit(Value(10)))->Eval(kRow), Value(1));
}

TEST(ExprTest, NullPropagation) {
  auto e = Expr::Lit(Value()) + Expr::Lit(Value(1));
  EXPECT_TRUE(e->Eval(kRow).is_null());
  auto c = Eq(Expr::Lit(Value()), Expr::Lit(Value(1)));
  EXPECT_TRUE(c->Eval(kRow).is_null());
  EXPECT_FALSE(c->EvalBool(kRow));
}

TEST(ExprTest, BooleanConnectives) {
  auto t = Expr::Lit(Value(1));
  auto f = Expr::Lit(Value(0));
  EXPECT_TRUE(And(t, t)->EvalBool(kRow));
  EXPECT_FALSE(And(t, f)->EvalBool(kRow));
  EXPECT_TRUE(Or(f, t)->EvalBool(kRow));
  EXPECT_FALSE(Or(f, f)->EvalBool(kRow));
  EXPECT_FALSE(Not(t)->EvalBool(kRow));
  EXPECT_TRUE(Not(f)->EvalBool(kRow));
}

TEST(ExprTest, AndShortCircuits) {
  // The right side would crash on a string-numeric comparison if it were
  // evaluated; short-circuiting must skip it.
  auto bad = Lt(Expr::Col(2), Expr::Lit(Value(1)));
  auto e = And(Expr::Lit(Value(0)), bad);
  EXPECT_FALSE(e->EvalBool(kRow));
  auto o = Or(Expr::Lit(Value(1)), bad);
  EXPECT_TRUE(o->EvalBool(kRow));
}

TEST(ExprTest, ToStringRendersTree) {
  auto e = And(Gt(Expr::Col(0), Expr::Lit(Value(5))),
               Lt(Expr::Col(1), Expr::Lit(Value(3.0))));
  EXPECT_EQ(e->ToString(&kSchema), "((a > 5) AND (b < 3.0000))");
  EXPECT_EQ(e->ToString(), "(($0 > 5) AND ($1 < 3.0000))");
}

}  // namespace
}  // namespace xdbft::exec
