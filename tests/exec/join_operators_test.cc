#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "exec/operators.h"

namespace xdbft::exec {
namespace {

Table KeyValueTable(std::vector<std::pair<int64_t, std::string>> rows,
                    const std::string& key_name = "k",
                    const std::string& val_name = "v") {
  Table t;
  t.schema = {{key_name, ValueType::kInt64},
              {val_name, ValueType::kString}};
  for (auto& [k, v] : rows) t.rows.push_back({Value(k), Value(v)});
  return t;
}

TEST(NestedLoopJoinTest, ThetaPredicate) {
  Table left = KeyValueTable({{1, "a"}, {5, "b"}, {9, "c"}});
  Table right = KeyValueTable({{3, "x"}, {7, "y"}}, "k2", "v2");
  // left.k < right.k2: columns are (k, v, k2, v2) after concat.
  auto op = MakeNestedLoopJoin(MakeScan(&left), MakeScan(&right),
                               Lt(Expr::Col(0), Expr::Col(2)));
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok()) << r.status();
  // Pairs: (1,3), (1,7), (5,7) -> 3 rows.
  EXPECT_EQ(r->num_rows(), 3u);
  for (const auto& row : r->rows) {
    EXPECT_LT(row[0].AsInt64(), row[2].AsInt64());
  }
}

TEST(NestedLoopJoinTest, CrossProductWithTruePredicate) {
  Table left = KeyValueTable({{1, "a"}, {2, "b"}});
  Table right = KeyValueTable({{3, "x"}, {4, "y"}, {5, "z"}}, "k2", "v2");
  auto op = MakeNestedLoopJoin(MakeScan(&left), MakeScan(&right),
                               Expr::Lit(Value(1)));
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 6u);
}

TEST(NestedLoopJoinTest, EmptySides) {
  Table empty = KeyValueTable({});
  Table right = KeyValueTable({{1, "x"}}, "k2", "v2");
  auto op = MakeNestedLoopJoin(MakeScan(&empty), MakeScan(&right),
                               Expr::Lit(Value(1)));
  EXPECT_EQ(Drain(op.get())->num_rows(), 0u);
  auto op2 = MakeNestedLoopJoin(MakeScan(&right), MakeScan(&empty),
                                Expr::Lit(Value(1)));
  EXPECT_EQ(Drain(op2.get())->num_rows(), 0u);
}

TEST(NestedLoopJoinTest, RejectsNullPredicate) {
  Table t = KeyValueTable({{1, "a"}});
  auto op = MakeNestedLoopJoin(MakeScan(&t), MakeScan(&t), nullptr);
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(NestedLoopJoinTest, SchemaIsLeftThenRight) {
  Table left = KeyValueTable({{1, "a"}});
  Table right = KeyValueTable({{1, "x"}});
  auto op = MakeNestedLoopJoin(MakeScan(&left), MakeScan(&right),
                               Expr::Lit(Value(1)));
  ASSERT_TRUE(op->Open().ok());
  EXPECT_EQ(op->schema().column(0).name, "k");
  EXPECT_EQ(op->schema().column(2).name, "right.k");
  op->Close();
}

TEST(MergeJoinTest, EquiJoinUnsortedInputs) {
  Table left = KeyValueTable({{5, "e"}, {1, "a"}, {3, "c"}});
  Table right = KeyValueTable({{3, "x"}, {5, "y"}, {7, "z"}}, "k2", "v2");
  auto op = MakeMergeJoin(MakeScan(&left), MakeScan(&right), 0, 0);
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->rows[0][0], Value(3));
  EXPECT_EQ(r->rows[1][0], Value(5));
}

TEST(MergeJoinTest, DuplicateKeysCrossProductPerGroup) {
  Table left = KeyValueTable({{2, "l1"}, {2, "l2"}, {4, "l3"}});
  Table right = KeyValueTable({{2, "r1"}, {2, "r2"}, {2, "r3"}}, "k2",
                              "v2");
  auto op = MakeMergeJoin(MakeScan(&left), MakeScan(&right), 0, 0);
  auto r = Drain(op.get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 6u);  // 2 left x 3 right for key 2
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& row : r->rows) {
    pairs.insert({row[1].AsString(), row[3].AsString()});
  }
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(MergeJoinTest, NoMatches) {
  Table left = KeyValueTable({{1, "a"}, {3, "c"}});
  Table right = KeyValueTable({{2, "x"}, {4, "y"}}, "k2", "v2");
  auto op = MakeMergeJoin(MakeScan(&left), MakeScan(&right), 0, 0);
  EXPECT_EQ(Drain(op.get())->num_rows(), 0u);
}

TEST(MergeJoinTest, RejectsBadKeys) {
  Table t = KeyValueTable({{1, "a"}});
  auto op = MakeMergeJoin(MakeScan(&t), MakeScan(&t), -1, 0);
  EXPECT_FALSE(Drain(op.get()).ok());
}

TEST(MergeJoinTest, AgreesWithHashJoinOnRandomData) {
  // Property: merge join and hash join produce the same multiset of rows.
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    Table left, right;
    left.schema = {{"k", ValueType::kInt64}, {"v", ValueType::kInt64}};
    right.schema = {{"k2", ValueType::kInt64}, {"w", ValueType::kInt64}};
    for (int i = 0; i < 200; ++i) {
      left.rows.push_back({Value(rng.NextInt(0, 30)), Value(i)});
      right.rows.push_back({Value(rng.NextInt(0, 30)), Value(i + 1000)});
    }
    auto merge = MakeMergeJoin(MakeScan(&left), MakeScan(&right), 0, 0);
    auto merge_result = Drain(merge.get());
    ASSERT_TRUE(merge_result.ok());
    // Hash join output schema is probe ++ build: probe=right. Reorder to
    // compare as multisets of (k, v, w).
    auto hash = MakeHashJoin(MakeScan(&left), MakeScan(&right), {0}, {0});
    auto hash_result = Drain(hash.get());
    ASSERT_TRUE(hash_result.ok());
    ASSERT_EQ(merge_result->num_rows(), hash_result->num_rows());
    std::multiset<std::tuple<int64_t, int64_t, int64_t>> ms, hs;
    for (const auto& row : merge_result->rows) {
      ms.insert({row[0].AsInt64(), row[1].AsInt64(), row[3].AsInt64()});
    }
    for (const auto& row : hash_result->rows) {
      // hash: (k2, w, k, v)
      hs.insert({row[2].AsInt64(), row[3].AsInt64(), row[1].AsInt64()});
    }
    EXPECT_EQ(ms, hs);
  }
}

TEST(NestedLoopJoinTest, EquiPredicateAgreesWithHashJoin) {
  Rng rng(99);
  Table left, right;
  left.schema = {{"k", ValueType::kInt64}, {"v", ValueType::kInt64}};
  right.schema = {{"k2", ValueType::kInt64}, {"w", ValueType::kInt64}};
  for (int i = 0; i < 60; ++i) {
    left.rows.push_back({Value(rng.NextInt(0, 10)), Value(i)});
    right.rows.push_back({Value(rng.NextInt(0, 10)), Value(i + 1000)});
  }
  auto nl = MakeNestedLoopJoin(MakeScan(&left), MakeScan(&right),
                               Eq(Expr::Col(0), Expr::Col(2)));
  auto hash = MakeHashJoin(MakeScan(&left), MakeScan(&right), {0}, {0});
  auto nl_result = Drain(nl.get());
  auto hash_result = Drain(hash.get());
  ASSERT_TRUE(nl_result.ok());
  ASSERT_TRUE(hash_result.ok());
  EXPECT_EQ(nl_result->num_rows(), hash_result->num_rows());
}

}  // namespace
}  // namespace xdbft::exec
