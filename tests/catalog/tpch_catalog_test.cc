#include "catalog/tpch_catalog.h"

#include <gtest/gtest.h>

namespace xdbft::catalog {
namespace {

TEST(TpchCatalogTest, BaseCardinalitiesAtSf1) {
  TpchCatalog cat(1.0);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kRegion), 5);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kNation), 25);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kSupplier), 10000);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kCustomer), 150000);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kPart), 200000);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kPartSupp), 800000);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kOrders), 1500000);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kLineitem), 6001215);
}

TEST(TpchCatalogTest, FixedTablesDoNotScale) {
  TpchCatalog cat(100.0);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kRegion), 5);
  EXPECT_DOUBLE_EQ(cat.Rows(TpchTable::kNation), 25);
}

TEST(TpchCatalogTest, ScalingIsLinear) {
  TpchCatalog sf10(10.0);
  TpchCatalog sf1(1.0);
  EXPECT_DOUBLE_EQ(sf10.Rows(TpchTable::kLineitem),
                   10.0 * sf1.Rows(TpchTable::kLineitem));
  EXPECT_DOUBLE_EQ(sf10.Rows(TpchTable::kOrders),
                   10.0 * sf1.Rows(TpchTable::kOrders));
}

TEST(TpchCatalogTest, LineitemToOrdersRatio) {
  TpchCatalog cat(1.0);
  const double ratio =
      cat.Rows(TpchTable::kLineitem) / cat.Rows(TpchTable::kOrders);
  EXPECT_GT(ratio, 3.9);
  EXPECT_LT(ratio, 4.1);
}

TEST(TpchCatalogTest, BytesUsesRowWidth) {
  TpchCatalog cat(1.0);
  EXPECT_DOUBLE_EQ(cat.Bytes(TpchTable::kNation),
                   25 * cat.info(TpchTable::kNation).row_width_bytes);
}

TEST(TpchCatalogTest, PartitioningMatchesPaperSetup) {
  TpchCatalog cat(1.0);
  EXPECT_EQ(cat.info(TpchTable::kRegion).partitioning,
            Partitioning::kReplicated);
  EXPECT_EQ(cat.info(TpchTable::kNation).partitioning,
            Partitioning::kReplicated);
  EXPECT_EQ(cat.info(TpchTable::kLineitem).partitioning, Partitioning::kHash);
  EXPECT_EQ(cat.info(TpchTable::kOrders).partitioning, Partitioning::kHash);
  EXPECT_EQ(cat.info(TpchTable::kLineitem).partition_key, "orderkey");
  EXPECT_EQ(cat.info(TpchTable::kOrders).partition_key, "orderkey");
  EXPECT_EQ(cat.info(TpchTable::kCustomer).partitioning, Partitioning::kRref);
  EXPECT_EQ(cat.info(TpchTable::kSupplier).partitioning, Partitioning::kRref);
  EXPECT_EQ(cat.info(TpchTable::kPartSupp).partitioning, Partitioning::kRref);
}

TEST(TpchCatalogTest, DistinctValuesForKeys) {
  TpchCatalog cat(2.0);
  EXPECT_DOUBLE_EQ(cat.DistinctValues(TpchTable::kNation, "nationkey"), 25);
  EXPECT_DOUBLE_EQ(cat.DistinctValues(TpchTable::kOrders, "orderkey"),
                   3000000);
  EXPECT_DOUBLE_EQ(cat.DistinctValues(TpchTable::kLineitem, "custkey"),
                   300000);
}

TEST(TpchCatalogTest, TableNames) {
  EXPECT_STREQ(TpchTableName(TpchTable::kLineitem), "LINEITEM");
  EXPECT_STREQ(TpchTableName(TpchTable::kRegion), "REGION");
  TpchCatalog cat(1.0);
  EXPECT_EQ(cat.tables().size(), static_cast<size_t>(kNumTpchTables));
  for (const auto& t : cat.tables()) {
    EXPECT_EQ(t.name, TpchTableName(t.table));
  }
}

TEST(TpchCatalogTest, SelectivityConstants) {
  EXPECT_DOUBLE_EQ(TpchCatalog::RegionSelectivity(), 0.2);
  EXPECT_NEAR(TpchCatalog::OrderDateYearSelectivity(), 1.0 / 7.0, 1e-12);
  EXPECT_GT(TpchCatalog::LineitemShipdateQ1Selectivity(), 0.9);
}

}  // namespace
}  // namespace xdbft::catalog
