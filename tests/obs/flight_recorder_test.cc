// Flight-recorder tests: ring semantics (wraparound, seq ordering, drop
// accounting, Clear) and the concurrency suite the TSan CI leg exercises:
// 8 writer threads hammering FlightRecorder and TraceRecorder while a
// reader snapshots, with no lost-or-duplicated accounting.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace xdbft::obs {
namespace {

TEST(FlightRecorderTest, RecordsInOrder) {
  FlightRecorder rec(8);
  rec.Record("test", "first", 1, 10);
  rec.Record("test", "second", 2, 20);
  const std::vector<FlightEvent> tail = rec.Tail();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 1u);
  EXPECT_EQ(tail[0].message, "first");
  EXPECT_EQ(tail[0].a, 1);
  EXPECT_EQ(tail[0].b, 10);
  EXPECT_EQ(tail[1].seq, 2u);
  EXPECT_EQ(tail[1].message, "second");
  EXPECT_GE(tail[1].t_seconds, tail[0].t_seconds);
  EXPECT_EQ(rec.recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorderTest, RingKeepsOnlyTheNewestCapacityEvents) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) rec.Record("test", "e", i, 0);
  const std::vector<FlightEvent> tail = rec.Tail();
  ASSERT_EQ(tail.size(), 4u);
  // The tail is the newest 4 events (seq 7..10), oldest first.
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, 7u + i);
    EXPECT_EQ(tail[i].a, static_cast<int64_t>(6 + i));
  }
  EXPECT_EQ(rec.recorded(), 10u);
}

TEST(FlightRecorderTest, ClearResetsRingAndCounters) {
  FlightRecorder rec(4);
  rec.Record("test", "e", 0, 0);
  rec.Clear();
  EXPECT_TRUE(rec.Tail().empty());
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.Record("test", "after", 0, 0);
  const std::vector<FlightEvent> tail = rec.Tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].seq, 1u);  // seq restarts after Clear
}

TEST(FlightRecorderTest, DefaultRecorderIsProcessWide) {
  FlightRecorder& a = FlightRecorder::Default();
  FlightRecorder& b = FlightRecorder::Default();
  EXPECT_EQ(&a, &b);
}

#if !defined(XDBFT_DISABLE_METRICS)
TEST(FlightRecorderTest, MacroWritesToDefaultRecorder) {
  FlightRecorder::Default().Clear();
  XDBFT_FLIGHT("test", "via macro", 7, 8);
  const std::vector<FlightEvent> tail = FlightRecorder::Default().Tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].category, "test");
  EXPECT_EQ(tail[0].a, 7);
  FlightRecorder::Default().Clear();
}
#endif

// 8 writers race on a small ring while a reader keeps snapshotting.
// Every write must be accounted exactly once (recorded or dropped), every
// snapshot must be seq-sorted, and TSan must stay quiet.
TEST(FlightRecorderConcurrencyTest, EightWritersOneReader) {
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 5000;
  FlightRecorder rec(64);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<FlightEvent> tail = rec.Tail();
      EXPECT_LE(tail.size(), rec.capacity());
      for (size_t i = 1; i < tail.size(); ++i) {
        EXPECT_LT(tail[i - 1].seq, tail[i].seq);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        rec.Record("stress", "event", w, i);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  // recorded + dropped covers every write; tickets were handed out for all
  // of them, so seq numbering reached the total.
  EXPECT_EQ(rec.recorded() + rec.dropped(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  const std::vector<FlightEvent> tail = rec.Tail();
  EXPECT_LE(tail.size(), rec.capacity());
  for (const FlightEvent& e : tail) {
    EXPECT_EQ(e.category, "stress");
    EXPECT_LE(e.seq, static_cast<uint64_t>(kWriters) * kPerWriter);
  }
}

// The trace recorder shares hot paths with the flight recorder in the
// executor; hammer both from the same 8 threads to catch lock-ordering or
// data races between them.
TEST(FlightRecorderConcurrencyTest, TraceAndFlightRecordersTogether) {
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 2000;
  FlightRecorder rec(128);
  TraceRecorder trace;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        rec.Record("mixed", "flight", w, i);
        trace.AddComplete("span", "test", trace.NowMicros(), 1.0, 0, w,
                          {IntArg("i", i)});
        if (i % 64 == 0) {
          (void)rec.Tail();
          (void)trace.num_events();
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(rec.recorded() + rec.dropped(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(trace.num_events(),
            static_cast<size_t>(kWriters) * kPerWriter);
}

}  // namespace
}  // namespace xdbft::obs
