#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xdbft::obs {
namespace {

TEST(JsonQuoteTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonQuote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonNumberTest, RendersIntegersWithoutExponent) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-7.0), "-7");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(HUGE_VAL), "null");
}

TEST(ParseJsonTest, ParsesNestedDocument) {
  auto doc = ParseJson(
      R"({"a": 1.5, "b": [true, false, null, "s"], "c": {"d": -2}})");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->number_value, 1.5);
  const JsonValue* b = doc->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 4u);
  EXPECT_TRUE(b->array[0].bool_value);
  EXPECT_TRUE(b->array[2].is_null());
  EXPECT_EQ(b->array[3].string_value, "s");
  const JsonValue* d = doc->FindPath("c.d");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->number_value, -2.0);
}

TEST(ParseJsonTest, QuoteRoundTrips) {
  const std::string original = "a \"quoted\" \\ line\nwith\ttabs";
  auto doc = ParseJson(JsonQuote(original));
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->is_string());
  EXPECT_EQ(doc->string_value, original);
}

TEST(ParseJsonTest, ParsesUnicodeEscapes) {
  auto doc = ParseJson(R"("\u0041\u00e9")");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->string_value, "A\xc3\xa9");
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
}

TEST(ParseJsonTest, FindReturnsNullForMissingOrWrongKind) {
  auto doc = ParseJson(R"({"a": [1, 2]})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("missing"), nullptr);
  EXPECT_EQ(doc->FindPath("a.b"), nullptr);
}

}  // namespace
}  // namespace xdbft::obs
