// Post-mortem bundle tests: the executor abort path and the crosscheck
// violation path both produce a JSON bundle that parses, carries a
// non-empty event tail (with metrics on), an attempt timeline / profile
// tree, and a seed that deterministically replays the case. Also checks
// the attempt-timeline accounting invariants on a recovering execution.
#include "obs/postmortem.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "engine/ft_executor.h"
#include "engine/query_runner.h"
#include "obs/json.h"
#include "validate/crosscheck.h"
#include "validate/reproducer.h"

namespace xdbft {
namespace {

struct Fixture {
  datagen::TpchDatabase db;
  engine::PartitionedDatabase pd;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    datagen::TpchGenOptions opts;
    opts.scale_factor = 0.005;
    opts.seed = 99;
    auto db = datagen::GenerateTpch(opts);
    auto pd = engine::DistributeTpch(*db, 3);
    return new Fixture{std::move(*db), std::move(*pd)};
  }();
  return *fixture;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Extracts the bundle path the abort message carries.
std::string PostMortemPathFromMessage(const std::string& message) {
  const std::string marker = "(post-mortem: ";
  const size_t at = message.find(marker);
  if (at == std::string::npos) return "";
  const size_t start = at + marker.size();
  const size_t end = message.find(')', start);
  if (end == std::string::npos) return "";
  return message.substr(start, end - start);
}

TEST(PostMortemTest, ExecutorAbortWritesParsableBundle) {
  const Fixture& f = GetFixture();
  const engine::StagePlan plan = engine::MakeQ1StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  engine::FaultTolerantExecutor executor(&plan, &f.pd);
  const std::string dir = ::testing::TempDir() + "xdbft_pm_exec";
  executor.set_postmortem_dir(dir);
  engine::ScriptedInjector injector({{0, 0}}, /*times=*/1000000);
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            &injector, /*max_attempts=*/4);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted());
  const std::string message = r.status().ToString();
  const std::string path = PostMortemPathFromMessage(message);
  ASSERT_FALSE(path.empty()) << "no bundle path in: " << message;

  auto doc = obs::ParseJson(ReadFile(path));
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("tool")->string_value, "ft_executor");
  EXPECT_NE(doc->Find("reason")->string_value.find("exceeded"),
            std::string::npos);
  // Every dispatched attempt (including the 4 killed ones) is on the
  // timeline; the aborting task's records are flagged killed.
  const obs::JsonValue* timeline = doc->Find("timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_TRUE(timeline->is_array());
  EXPECT_GE(timeline->array.size(), 4u);
  int killed = 0;
  for (const auto& rec : timeline->array) {
    if (rec.Find("killed")->bool_value) ++killed;
  }
  EXPECT_EQ(killed, 4);
#if !defined(XDBFT_DISABLE_METRICS)
  // With metrics on, the failure-injection flight events made it into the
  // bundle's event tail.
  const obs::JsonValue* events = doc->Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array.empty());
  bool saw_abort = false;
  for (const auto& e : events->array) {
    if (e.Find("message")->string_value.find("abort") != std::string::npos) {
      saw_abort = true;
    }
  }
  EXPECT_TRUE(saw_abort);
#endif
}

TEST(PostMortemTest, ExecutorTimelineAccountingInvariants) {
  const Fixture& f = GetFixture();
  const engine::StagePlan plan = engine::MakeQ5StagePlan(f.pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  engine::FaultTolerantExecutor executor(&plan, &f.pd);
  engine::ScriptedInjector injector({{5, 0}});
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            &injector);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->failures_injected, 0);
  // One timeline record per dispatched attempt.
  EXPECT_EQ(r->timeline.records.size(),
            static_cast<size_t>(r->task_executions));
  int killed = 0;
  uint64_t rows_lost = 0;
  uint64_t rows_out = 0;
  for (const auto& rec : r->timeline.records) {
    if (rec.killed) {
      ++killed;
      EXPECT_EQ(rec.rows_out, 0u);
    }
    EXPECT_GE(rec.finish_seconds, rec.dispatch_seconds);
    rows_lost += rec.rows_lost;
    rows_out += rec.rows_out;
  }
  EXPECT_EQ(killed, r->failures_injected);
  // rows_lost backfill lands on the records whose output was destroyed.
  EXPECT_EQ(rows_lost, static_cast<uint64_t>(r->rows_lost));
  EXPECT_GT(r->rows_lost, 0u);
  EXPECT_GT(rows_out, 0u);
  // Renderings stay well-formed.
  EXPECT_NE(r->timeline.ToText().find("stage=5"), std::string::npos);
  auto doc = obs::ParseJson(r->timeline.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->array.size(), r->timeline.records.size());
}

TEST(PostMortemTest, CrosscheckStyleBundleEmbedsReplayableReproducer) {
  // Build the bundle exactly as the crosscheck violation path does: the
  // minimized case embedded verbatim, plus a real profile tree from a
  // profiled query run.
  const uint64_t seed = 5;
  validate::ReproCase c = validate::MakeSimCase(seed, /*traces=*/4);
  c.check = "synthetic";
  obs::PostMortem pm;
  pm.tool = "crosscheck";
  pm.reason = "synthetic violation for bundle validation";
  pm.seed = seed;
  pm.replay = "xdbft_crosscheck --replay <reproducer>";
  pm.params["check"] = c.check;
  obs::CaptureProcessState(&pm);
  pm.reproducer_json = validate::ReproToJson(c);

  const Fixture& f = GetFixture();
  engine::ExecOptions eopts;
  eopts.profile = true;
  engine::QueryRunner runner(&f.pd, eopts);
  auto q1 = runner.RunQ1();
  ASSERT_TRUE(q1.ok()) << q1.status();
  ASSERT_FALSE(q1->stage_profiles.empty());
  pm.profiles = q1->stage_profiles;

  const std::string dir = ::testing::TempDir() + "xdbft_pm_crosscheck";
  auto path = obs::WritePostMortem(dir, pm);
  ASSERT_TRUE(path.ok()) << path.status();

  auto doc = obs::ParseJson(ReadFile(*path));
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("tool")->string_value, "crosscheck");
  EXPECT_DOUBLE_EQ(doc->Find("seed")->number_value,
                   static_cast<double>(seed));
  // Profile tree present and intact.
  const obs::JsonValue* profiles = doc->Find("profiles");
  ASSERT_NE(profiles, nullptr);
  ASSERT_FALSE(profiles->array.empty());
  EXPECT_NE(profiles->array[0].FindPath("root.op"), nullptr);
  // The embedded reproducer is a full JSON object whose seed replays the
  // identical case: regenerating from the bundle's seed reproduces the
  // byte-identical reproducer document.
  const obs::JsonValue* repro = doc->Find("reproducer");
  ASSERT_NE(repro, nullptr);
  ASSERT_TRUE(repro->is_object());
  validate::ReproCase regenerated = validate::MakeSimCase(
      static_cast<uint64_t>(doc->Find("seed")->number_value), /*traces=*/4);
  regenerated.check = c.check;
  EXPECT_EQ(validate::ReproToJson(regenerated), pm.reproducer_json);
  // And the embedded document round-trips through the reproducer loader.
  auto loaded = validate::ReproFromJson(pm.reproducer_json);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->seed, seed);
}

TEST(PostMortemTest, EmptyBundleStillParses) {
  obs::PostMortem pm;
  pm.tool = "unit test";
  auto doc = obs::ParseJson(pm.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(doc->Find("reproducer")->is_null());
  EXPECT_TRUE(doc->Find("events")->array.empty());
}

}  // namespace
}  // namespace xdbft
