#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/json.h"

namespace xdbft::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAccumulate) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0
  h.Observe(1.0);  // bucket 0 (inclusive upper bound)
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(5.0);  // overflow bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y"), a);
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(RegistryTest, ConcurrentIncrementsAreNotLost) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.GetCounter("shared")->Increment();
        registry.GetGauge("accum")->Add(1.0);
        registry.GetHistogram("lat", {1.0})->Observe(0.5);
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("shared"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(snap.gauge("accum"), 1.0 * kThreads * kIncrements);
  EXPECT_EQ(snap.histograms.at("lat").count,
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(RegistryTest, SnapshotJsonIsValid) {
  MetricsRegistry registry;
  registry.GetCounter("runs")->Add(3);
  registry.GetGauge("seconds")->Set(1.25);
  registry.GetHistogram("lat", {0.1, 1.0})->Observe(0.05);
  auto doc = ParseJson(registry.Snapshot().ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* runs = doc->FindPath("counters.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_DOUBLE_EQ(runs->number_value, 3.0);
  const JsonValue* seconds = doc->FindPath("gauges.seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_DOUBLE_EQ(seconds->number_value, 1.25);
  const JsonValue* lat = doc->FindPath("histograms.lat");
  ASSERT_NE(lat, nullptr);
  ASSERT_NE(lat->Find("counts"), nullptr);
  EXPECT_EQ(lat->Find("counts")->array.size(), 3u);
  ASSERT_NE(lat->Find("bounds"), nullptr);
  EXPECT_EQ(lat->Find("bounds")->array.size(), 2u);
}

TEST(RegistryTest, ResetAllZeroesButKeepsObjects) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  c->Add(7);
  registry.GetGauge("g")->Set(1.0);
  registry.ResetAll();
  EXPECT_EQ(c, registry.GetCounter("c"));
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g")->value(), 0.0);
}

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 0.0);
}

TEST(HistogramPercentileTest, SingleSampleInterpolatesWithinItsBucket) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.5);  // bucket (1, 2]
  // One sample: every percentile interpolates inside that bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 1.5);
  EXPECT_NEAR(h.Percentile(99.0), 1.99, 1e-12);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 2.0);
}

TEST(HistogramPercentileTest, BucketBoundarySamplesLandOnBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);  // bucket (0, 1] (inclusive upper bound)
  h.Observe(2.0);  // bucket (1, 2]
  // p50 exhausts the first bucket exactly -> its upper bound.
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 2.0);
  // First-bucket interpolation starts from 0, not -inf.
  EXPECT_DOUBLE_EQ(h.Percentile(25.0), 0.5);
}

TEST(HistogramPercentileTest, OverflowBucketClampsToLastBound) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(9.0);  // overflow bucket: upper edge unknown
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 4.0);
}

TEST(HistogramPercentileTest, PercentileClampedToValidRange) {
  Histogram h({1.0, 2.0});
  h.Observe(1.5);
  EXPECT_DOUBLE_EQ(h.Percentile(-5.0), h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(h.Percentile(250.0), h.Percentile(100.0));
}

TEST(HistogramPercentileTest, SnapshotDataMatchesLiveHistogram) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 2.0, 4.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(3.0);
  const MetricsSnapshot snap = registry.Snapshot();
  const auto& data = snap.histograms.at("lat");
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(data.Percentile(p), h->Percentile(p)) << "p=" << p;
  }
}

TEST(ScopedTimerTest, ObservesElapsedIntoHistogramAndGauge) {
  Histogram h({10.0});
  Gauge g;
  {
    ScopedTimer timer(&h, &g);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(g.value(), 0.0);
}

TEST(HistogramTest, MicroLatencyBoundsResolveCacheHitLatencies) {
  const std::vector<double>& bounds = MicroLatencyBoundsSeconds();
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  // A 2µs cache hit and a 100ms enumeration must land in different
  // buckets (the default bounds floor at 1ms and cannot tell them apart).
  Histogram h(bounds);
  h.Observe(2e-6);
  h.Observe(0.1);
  const auto counts = h.bucket_counts();
  size_t nonzero = 0;
  for (const uint64_t c : counts) nonzero += c > 0 ? 1 : 0;
  EXPECT_EQ(nonzero, 2u);
  EXPECT_LT(h.Percentile(25.0), 1e-5);
}

#if !defined(XDBFT_DISABLE_METRICS)
TEST(MacroTest, MacrosWriteToDefaultRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const uint64_t before = reg.Snapshot().counter("macro.test.counter");
  XDBFT_COUNTER_INC("macro.test.counter");
  XDBFT_COUNTER_ADD("macro.test.counter", 2);
  EXPECT_EQ(reg.Snapshot().counter("macro.test.counter"), before + 3);
  XDBFT_GAUGE_SET("macro.test.gauge", 4.5);
  EXPECT_DOUBLE_EQ(reg.Snapshot().gauge("macro.test.gauge"), 4.5);
}

TEST(MacroTest, MicroHistogramMacroUsesMicroBounds) {
  XDBFT_HISTOGRAM_OBSERVE_MICRO("macro.test.micro_seconds", 3e-6);
  const MetricsSnapshot snap = MetricsRegistry::Default().Snapshot();
  const auto& data = snap.histograms.at("macro.test.micro_seconds");
  EXPECT_EQ(data.bounds, MicroLatencyBoundsSeconds());
  EXPECT_GE(data.count, 1u);
}
#endif

}  // namespace
}  // namespace xdbft::obs
