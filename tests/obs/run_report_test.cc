#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace xdbft::obs {
namespace {

RunReport MakeReport() {
  MetricsRegistry registry;
  registry.GetCounter("enumerator.plans")->Add(5);
  registry.GetGauge("executor.last_run_seconds")->Set(0.25);

  RunReport report;
  report.tool = "xdbft_advisor";
  report.plan_name = "tpch-q5";
  report.config_summary = "mat={join1, agg}";
  report.params["nodes"] = "10";
  report.params["mtbf_seconds"] = "86400";
  report.metrics = registry.Snapshot();
  return report;
}

TEST(RunReportTest, ToJsonCarriesIdentityAndMetrics) {
  auto doc = ParseJson(MakeReport().ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("tool")->string_value, "xdbft_advisor");
  EXPECT_EQ(doc->Find("plan")->string_value, "tpch-q5");
  EXPECT_EQ(doc->Find("config")->string_value, "mat={join1, agg}");
  const JsonValue* nodes = doc->FindPath("params.nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->string_value, "10");
  // Metric names contain dots, so navigate to the counters object first.
  const JsonValue* counters = doc->FindPath("metrics.counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* enum_plans = counters->Find("enumerator.plans");
  ASSERT_NE(enum_plans, nullptr);
  EXPECT_DOUBLE_EQ(enum_plans->number_value, 5.0);
  const JsonValue* gauges = doc->FindPath("metrics.gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("executor.last_run_seconds")->number_value,
                   0.25);
}

TEST(RunReportTest, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/xdbft_report_test.json";
  ASSERT_TRUE(MakeReport().WriteFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = ParseJson(buf.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("tool")->string_value, "xdbft_advisor");
  std::remove(path.c_str());
}

TEST(RunReportTest, EmptyReportIsStillValidJson) {
  RunReport report;
  auto doc = ParseJson(report.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(doc->Find("params")->object.empty());
}

}  // namespace
}  // namespace xdbft::obs
