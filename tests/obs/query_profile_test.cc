// QueryProfile data-model tests: derived rows_in, shape-checked merging,
// and the EXPLAIN ANALYZE text/JSON renderings.
#include "obs/query_profile.h"

#include <gtest/gtest.h>

#include "obs/json.h"

namespace xdbft::obs {
namespace {

OperatorProfile MakeTree() {
  OperatorProfile scan;
  scan.name = "Scan";
  scan.rows_out = 100;
  scan.batches = 2;
  scan.seconds = 0.010;

  OperatorProfile filter;
  filter.name = "Filter";
  filter.rows_out = 40;
  filter.batches = 2;
  filter.seconds = 0.015;
  filter.children.push_back(scan);

  OperatorProfile agg;
  agg.name = "HashAggregate";
  agg.rows_out = 4;
  agg.batches = 1;
  agg.seconds = 0.020;
  agg.est_memory_bytes = 256;
  agg.children.push_back(filter);
  return agg;
}

TEST(OperatorProfileTest, RowsInDerivesFromChildren) {
  const OperatorProfile agg = MakeTree();
  EXPECT_EQ(agg.rows_in(), 40u);           // filter's output
  EXPECT_EQ(agg.children[0].rows_in(), 100u);
  EXPECT_EQ(agg.children[0].children[0].rows_in(), 0u);  // leaf
}

TEST(OperatorProfileTest, MergeSumsCounters) {
  OperatorProfile a = MakeTree();
  const OperatorProfile b = MakeTree();
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.rows_out, 8u);
  EXPECT_EQ(a.batches, 2u);
  EXPECT_DOUBLE_EQ(a.seconds, 0.040);
  EXPECT_EQ(a.est_memory_bytes, 512u);
  EXPECT_EQ(a.children[0].rows_out, 80u);
  EXPECT_EQ(a.children[0].children[0].rows_out, 200u);
}

TEST(OperatorProfileTest, MergeRejectsShapeMismatch) {
  OperatorProfile a = MakeTree();
  OperatorProfile renamed = MakeTree();
  renamed.name = "Sort";
  EXPECT_FALSE(a.MergeFrom(renamed).ok());
  OperatorProfile pruned = MakeTree();
  pruned.children.clear();
  EXPECT_FALSE(a.MergeFrom(pruned).ok());
}

TEST(QueryProfileTest, MergeRejectsCrossEngine) {
  QueryProfile row;
  row.engine = "row";
  row.root = MakeTree();
  QueryProfile vec;
  vec.engine = "vectorized";
  vec.root = MakeTree();
  EXPECT_FALSE(row.MergeFrom(vec).ok());
  QueryProfile row2;
  row2.engine = "row";
  row2.root = MakeTree();
  EXPECT_TRUE(row.MergeFrom(row2).ok());
}

TEST(QueryProfileTest, ToTextRendersEveryOperator) {
  QueryProfile p;
  p.label = "Stage1";
  p.engine = "row";
  p.seconds = 0.05;
  p.root = MakeTree();
  const std::string text = p.ToText();
  EXPECT_NE(text.find("Stage1"), std::string::npos);
  EXPECT_NE(text.find("HashAggregate"), std::string::npos);
  EXPECT_NE(text.find("Filter"), std::string::npos);
  EXPECT_NE(text.find("Scan"), std::string::npos);
  EXPECT_NE(text.find("rows=100"), std::string::npos);
  EXPECT_NE(text.find("rows=4"), std::string::npos);
}

TEST(QueryProfileTest, ToJsonParsesAndRoundTripsCounts) {
  QueryProfile p;
  p.label = "Stage1";
  p.engine = "vectorized";
  p.seconds = 0.05;
  p.root = MakeTree();
  auto doc = ParseJson(p.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* label = doc->Find("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->string_value, "Stage1");
  const JsonValue* root = doc->Find("root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->Find("op")->string_value, "HashAggregate");
  EXPECT_DOUBLE_EQ(root->Find("rows_out")->number_value, 4.0);
  const JsonValue* children = root->Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array.size(), 1u);
  EXPECT_EQ(children->array[0].Find("op")->string_value, "Filter");
  const JsonValue* grandchildren = children->array[0].Find("children");
  ASSERT_NE(grandchildren, nullptr);
  ASSERT_EQ(grandchildren->array.size(), 1u);
  EXPECT_EQ(grandchildren->array[0].Find("op")->string_value, "Scan");
  EXPECT_DOUBLE_EQ(grandchildren->array[0].Find("rows_out")->number_value,
                   100.0);
}

}  // namespace
}  // namespace xdbft::obs
