#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace xdbft::obs {
namespace {

// The emitted document must be loadable by chrome://tracing: an object
// with a "traceEvents" array whose entries carry name/cat/ph/ts/pid/tid.
TEST(TraceRecorderTest, EmitsChromeTraceFormat) {
  TraceRecorder rec;
  rec.SetProcessName(0, "proc");
  rec.SetThreadName(0, 1, "worker");
  rec.AddComplete("span", "cat", 100.0, 50.0, 0, 1,
                  {IntArg("stage", 3), StrArg("label", "scan")});
  rec.AddInstant("marker", "failure", 125.0, 0, 1);
  EXPECT_EQ(rec.num_events(), 4u);

  auto doc = ParseJson(rec.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 4u);

  int complete = 0, instant = 0, metadata = 0;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.Find("name"), nullptr);
    ASSERT_NE(e.Find("ph"), nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    const std::string ph = e.Find("ph")->string_value;
    if (ph == "X") {
      ++complete;
      ASSERT_NE(e.Find("dur"), nullptr);
      EXPECT_DOUBLE_EQ(e.Find("ts")->number_value, 100.0);
      EXPECT_DOUBLE_EQ(e.Find("dur")->number_value, 50.0);
      const JsonValue* stage = e.FindPath("args.stage");
      ASSERT_NE(stage, nullptr);
      EXPECT_DOUBLE_EQ(stage->number_value, 3.0);
    } else if (ph == "i") {
      ++instant;
      // Thread-scoped instant, per the trace-event format spec.
      ASSERT_NE(e.Find("s"), nullptr);
      EXPECT_EQ(e.Find("s")->string_value, "t");
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(instant, 1);
  EXPECT_EQ(metadata, 2);
}

TEST(TraceRecorderTest, ConcurrentAddsAreSafe) {
  TraceRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kEvents; ++i) {
        rec.AddComplete("e", "cat", i, 1.0, 0, t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.num_events(), static_cast<size_t>(kThreads) * kEvents);
  auto doc = ParseJson(rec.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("traceEvents")->array.size(),
            static_cast<size_t>(kThreads) * kEvents);
}

TEST(TraceRecorderTest, ScopedSpanRecordsCompleteEvent) {
  TraceRecorder rec;
  {
    ScopedTraceSpan span(&rec, "scope", "cat", 2);
  }
  EXPECT_EQ(rec.num_events(), 1u);
  // Null recorder: no crash, nothing recorded.
  {
    ScopedTraceSpan span(nullptr, "scope", "cat", 2);
  }
  EXPECT_EQ(rec.num_events(), 1u);
}

TEST(TraceRecorderTest, EscapesEventNames) {
  TraceRecorder rec;
  rec.AddComplete("weird \"name\"\n", "c\\at", 0.0, 1.0, 0, 0);
  auto doc = ParseJson(rec.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("traceEvents")->array[0].Find("name")->string_value,
            "weird \"name\"\n");
}

TEST(TraceRecorderTest, WriteFileRoundTrips) {
  TraceRecorder rec;
  rec.AddComplete("span", "cat", 0.0, 1.0, 0, 0);
  const std::string path = ::testing::TempDir() + "/xdbft_trace_test.json";
  ASSERT_TRUE(rec.WriteFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = ParseJson(buf.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->Find("traceEvents")->array.size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, ClearEmptiesTheBuffer) {
  TraceRecorder rec;
  rec.AddInstant("i", "c", 0.0, 0, 0);
  rec.Clear();
  EXPECT_EQ(rec.num_events(), 0u);
  auto doc = ParseJson(rec.ToJson());
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->Find("traceEvents")->array.empty());
}

}  // namespace
}  // namespace xdbft::obs
