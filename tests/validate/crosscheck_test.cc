// Unit tests of the crosscheck harness itself: the reproducer JSON
// round-trips, a handful of seeds run violation-free (the real sweep is
// the crosscheck_quick / crosscheck_fuzz ctest entries), the abort path
// is actually exercised, and a written reproducer replays.
#include "validate/crosscheck.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "plan/plan_text.h"

namespace xdbft::validate {
namespace {

TEST(CrosscheckTest, FewSeedsRunViolationFree) {
  CrosscheckOptions options;
  options.seeds = 4;
  options.traces = 4;
  options.quick = true;
  options.write_reproducers = false;
  auto report = RunCrosscheck(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->seeds_run, 4);
  EXPECT_EQ(report->violations, 0)
      << (report->messages.empty() ? "" : report->messages.front());
  EXPECT_GT(report->checks_run, 0);
  // The abort-cap check derives a harsh case per seed; across 4 seeds the
  // abort path must have fired (deterministic in the seeds).
  EXPECT_GT(report->aborts_observed, 0);
}

TEST(CrosscheckTest, CheckRegistryIsQueryable) {
  const std::vector<std::string> names = CheckNames();
  EXPECT_GE(names.size(), 10u);
  ReproCase c = MakeSimCase(1, 2);
  c.check = "analytic_bounds";
  auto v = RunCheck("analytic_bounds", c);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_FALSE(v->has_value());
  EXPECT_FALSE(RunCheck("no_such_check", c).ok());
  // Kind mismatch: executor checks reject sim cases and vice versa.
  EXPECT_FALSE(RunCheck("executor_differential", c).ok());
}

TEST(CrosscheckTest, SimCaseIsDeterministicPerSeed) {
  ReproCase a = MakeSimCase(17, 8);
  ReproCase b = MakeSimCase(17, 8);
  EXPECT_EQ(plan::PlanToText(a.plan), plan::PlanToText(b.plan));
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.cluster.mtbf_seconds, b.cluster.mtbf_seconds);
  EXPECT_EQ(a.trace.base_seed, b.trace.base_seed);
  ReproCase other = MakeSimCase(18, 8);
  EXPECT_NE(a.trace.base_seed, other.trace.base_seed);
}

TEST(CrosscheckTest, ReproducerJsonRoundTrips) {
  ReproCase c = MakeSimCase(23, 8);
  c.check = "runtime_lower_bound";
  c.detail = "some \"quoted\" detail";
  c.minimized = true;
  auto parsed = ReproFromJson(ReproToJson(c));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->check, c.check);
  EXPECT_EQ(parsed->detail, c.detail);
  EXPECT_EQ(parsed->seed, c.seed);
  EXPECT_TRUE(parsed->minimized);
  EXPECT_EQ(parsed->kind, "sim");
  EXPECT_EQ(plan::PlanToText(parsed->plan), plan::PlanToText(c.plan));
  EXPECT_EQ(parsed->config, c.config);
  EXPECT_EQ(parsed->cluster.num_nodes, c.cluster.num_nodes);
  EXPECT_DOUBLE_EQ(parsed->cluster.mtbf_seconds, c.cluster.mtbf_seconds);
  EXPECT_DOUBLE_EQ(parsed->sim.checkpoint_interval,
                   c.sim.checkpoint_interval);
  EXPECT_EQ(parsed->trace.kind, c.trace.kind);
  EXPECT_EQ(parsed->trace.count, c.trace.count);
  EXPECT_EQ(parsed->trace.base_seed, c.trace.base_seed);
  if (c.trace.kind == TraceKind::kBurst) {
    EXPECT_DOUBLE_EQ(parsed->trace.burst.mean_interval,
                     c.trace.burst.mean_interval);
  }
}

TEST(CrosscheckTest, BurstSpecSurvivesRoundTrip) {
  // Find a seed whose case uses burst traces (p = 0.25 per seed).
  for (uint64_t seed = 1; seed < 64; ++seed) {
    ReproCase c = MakeSimCase(seed, 4);
    if (c.trace.kind != TraceKind::kBurst) continue;
    c.check = "abort_cap";
    auto parsed = ReproFromJson(ReproToJson(c));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->trace.kind, TraceKind::kBurst);
    EXPECT_DOUBLE_EQ(parsed->trace.burst.width, c.trace.burst.width);
    EXPECT_EQ(parsed->trace.burst.max_nodes, c.trace.burst.max_nodes);
    return;
  }
  FAIL() << "no burst case in the first 64 seeds";
}

TEST(CrosscheckTest, WrittenReproducerReplaysClean) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "xdbft_crosscheck_test")
          .string();
  ReproCase c = MakeSimCase(31, 4);
  c.check = "analytic_bounds";
  c.detail = "synthetic";
  auto path = WriteReproducer(dir, c);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  auto loaded = LoadReproducer(*path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->check, "analytic_bounds");
  // The underlying code is healthy, so the recorded "violation" must not
  // reproduce.
  auto reproduced = ReplayReproducer(*path);
  ASSERT_TRUE(reproduced.ok()) << reproduced.status().ToString();
  EXPECT_FALSE(*reproduced);
  std::filesystem::remove_all(dir);
}

TEST(CrosscheckTest, MinimizerPreservesCaseValidity) {
  // On a healthy tree nothing fails, so the minimizer must return the
  // case intact (no shrink step can "succeed") and still valid.
  ReproCase c = MakeSimCase(11, 8);
  c.check = "analytic_bounds";
  auto min = MinimizeCase(c);
  ASSERT_TRUE(min.ok()) << min.status().ToString();
  EXPECT_TRUE(min->minimized);
  EXPECT_EQ(min->plan.num_nodes(), c.plan.num_nodes());
  EXPECT_TRUE(min->config.Validate(min->plan).ok());
}

}  // namespace
}  // namespace xdbft::validate
