// The random case generators must produce *valid* inputs for every seed:
// plans that pass Plan::Validate, configs that pass the materialization
// invariants, stage plans the executor can run, and trace specs that
// materialize deterministically. Determinism per seed is what makes a
// reproducer file replayable at all.
#include "validate/generator.h"

#include <gtest/gtest.h>

#include "engine/ft_executor.h"
#include "plan/plan_text.h"

namespace xdbft::validate {
namespace {

TEST(GeneratorTest, RandomPlansAreValidForManySeeds) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    uint64_t state = seed;
    Rng rng(SplitMix64(state));
    plan::Plan plan = RandomPlan(rng);
    ASSERT_TRUE(plan.Validate().ok()) << "seed " << seed;
    ASSERT_GE(plan.num_nodes(), 3u);
    ASSERT_LE(plan.num_nodes(), 10u);
    ft::MaterializationConfig config = RandomConfig(rng, plan);
    ASSERT_TRUE(config.Validate(plan).ok()) << "seed " << seed;
    cost::ClusterStats cluster = RandomCluster(rng);
    ASSERT_TRUE(cluster.Validate().ok()) << "seed " << seed;
  }
}

TEST(GeneratorTest, RandomPlanIsDeterministicPerSeed) {
  uint64_t s1 = 42, s2 = 42;
  Rng a(SplitMix64(s1)), b(SplitMix64(s2));
  EXPECT_EQ(plan::PlanToText(RandomPlan(a)), plan::PlanToText(RandomPlan(b)));
}

TEST(GeneratorTest, TraceSpecMaterializesDeterministically) {
  uint64_t state = 7;
  Rng rng(SplitMix64(state));
  cost::ClusterStats cluster = RandomCluster(rng);
  for (int i = 0; i < 20; ++i) {
    TraceSpec spec = RandomTraceSpec(rng, 4);
    if (spec.kind == TraceKind::kBurst) {
      ASSERT_TRUE(spec.burst.Validate().ok());
    }
    std::vector<cluster::ClusterTrace> t1 = spec.Materialize(cluster);
    std::vector<cluster::ClusterTrace> t2 = spec.Materialize(cluster);
    ASSERT_EQ(t1.size(), 4u);
    for (size_t k = 0; k < t1.size(); ++k) {
      for (int node = 0; node < cluster.num_nodes; ++node) {
        EXPECT_DOUBLE_EQ(t1[k].node(node).NextFailureAfter(0.0),
                         t2[k].node(node).NextFailureAfter(0.0));
      }
    }
  }
}

TEST(GeneratorTest, RandomStagePlansExecute) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    uint64_t state = seed * 977;
    Rng rng(SplitMix64(state));
    engine::StagePlan splan = RandomStagePlan(rng);
    ASSERT_GE(splan.num_stages(), 3u) << "seed " << seed;
    const engine::PartitionedDatabase db = MakeDummyDatabase(3);
    const plan::Plan skeleton = splan.ToPlanSkeleton();
    ASSERT_TRUE(skeleton.Validate().ok()) << "seed " << seed;
    engine::FaultTolerantExecutor executor(&splan, &db);
    executor.set_num_threads(2);
    auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                              nullptr, 10);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
    EXPECT_EQ(r->failures_injected, 0);
    EXPECT_EQ(r->recovery_executions, 0);
  }
}

TEST(GeneratorTest, StagePlanSourcesProduceDistinguishableRows) {
  uint64_t state = 3;
  Rng rng(SplitMix64(state));
  engine::StagePlan splan = RandomStagePlan(rng);
  const engine::PartitionedDatabase db = MakeDummyDatabase(2);
  const plan::Plan skeleton = splan.ToPlanSkeleton();
  engine::FaultTolerantExecutor executor(&splan, &db);
  auto r = executor.Execute(ft::MaterializationConfig::NoMat(skeleton),
                            nullptr, 10);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The synthetic data keys rows by partition (k = p*1000 + r), so any
  // surviving output rows must carry non-trivial keys.
  EXPECT_EQ(r->result.schema.num_columns(), 2u);
}

TEST(GeneratorTest, LogUniformStaysInRange) {
  uint64_t state = 99;
  Rng rng(SplitMix64(state));
  for (int i = 0; i < 1000; ++i) {
    const double v = LogUniform(rng, 2.0, 512.0);
    ASSERT_GE(v, 2.0 * (1.0 - 1e-12));
    ASSERT_LE(v, 512.0 * (1.0 + 1e-12));
  }
}

}  // namespace
}  // namespace xdbft::validate
