#include "cost/cost_params.h"

#include <gtest/gtest.h>

namespace xdbft::cost {
namespace {

TEST(ClusterStatsTest, EffectiveMtbfDividesByNodeCount) {
  ClusterStats s = MakeCluster(10, 3600.0);
  EXPECT_DOUBLE_EQ(s.effective_mtbf(), 360.0);
  s.num_nodes = 1;
  EXPECT_DOUBLE_EQ(s.effective_mtbf(), 3600.0);
}

TEST(ClusterStatsTest, ValidateAcceptsDefaults) {
  EXPECT_TRUE(ClusterStats{}.Validate().ok());
}

TEST(ClusterStatsTest, ValidateRejectsBadValues) {
  ClusterStats s;
  s.num_nodes = 0;
  EXPECT_FALSE(s.Validate().ok());
  s = ClusterStats{};
  s.mtbf_seconds = 0.0;
  EXPECT_FALSE(s.Validate().ok());
  s = ClusterStats{};
  s.mttr_seconds = -1.0;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(ClusterStatsTest, ToStringIsHumanReadable) {
  ClusterStats s = MakeCluster(10, kSecondsPerHour, 1.0);
  EXPECT_NE(s.ToString().find("n=10"), std::string::npos);
}

TEST(CostModelParamsTest, ValidateRanges) {
  CostModelParams p;
  EXPECT_TRUE(p.Validate().ok());
  p.pipe_constant = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = CostModelParams{};
  p.pipe_constant = 1.5;
  EXPECT_FALSE(p.Validate().ok());
  p = CostModelParams{};
  p.success_target = 1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = CostModelParams{};
  p.cost_constant = -2.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CostParamsTest, DurationConstants) {
  EXPECT_DOUBLE_EQ(kSecondsPerHour, 3600.0);
  EXPECT_DOUBLE_EQ(kSecondsPerWeek, 7.0 * 86400.0);
}

}  // namespace
}  // namespace xdbft::cost
