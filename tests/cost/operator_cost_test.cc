#include "cost/operator_cost.h"

#include <gtest/gtest.h>

namespace xdbft::cost {
namespace {

using plan::OpId;
using plan::OpType;
using plan::Plan;
using plan::PlanBuilder;

Plan CardinalityPlan() {
  PlanBuilder b("cards");
  const OpId scan = b.Scan("L", /*rows=*/6e6, /*width=*/50, /*tr=*/0.0);
  b.plan().mutable_node(scan).output_rows = 6e6;
  const OpId filt = b.Unary(OpType::kFilter, "f", scan, 0.0, 0.0,
                            /*rows=*/1e6, /*width=*/50);
  b.Unary(OpType::kHashAggregate, "agg", filt, 0.0, 0.0,
          /*rows=*/1e3, /*width=*/30);
  return std::move(b).Build();
}

TEST(OperatorCostTest, MaterializeCostScalesWithOutputBytes) {
  OperatorCostEstimator est(ExecutionRates{}, ExternalIscsiStorage(), 10);
  plan::PlanNode n;
  n.output_rows = 1e6;
  n.row_width_bytes = 100;
  const double small = est.MaterializeCost(n);
  n.output_rows = 2e6;
  const double big = est.MaterializeCost(n);
  EXPECT_GT(big, small);
  EXPECT_NEAR(big - est.medium().latency_seconds,
              2.0 * (small - est.medium().latency_seconds), 1e-9);
}

TEST(OperatorCostTest, EstimateAllFillsMissingCosts) {
  Plan p = CardinalityPlan();
  OperatorCostEstimator est(ExecutionRates{}, ExternalIscsiStorage(), 10);
  ASSERT_TRUE(est.EstimateAll(&p).ok());
  for (const auto& n : p.nodes()) {
    if (n.type != OpType::kTableScan) {
      EXPECT_GT(n.runtime_cost, 0.0) << n.label;
    }
    EXPECT_GT(n.materialize_cost, 0.0) << n.label;
  }
}

TEST(OperatorCostTest, FilterCheaperThanShuffleAtSameCardinality) {
  PlanBuilder b("cmp");
  const OpId scan = b.Scan("T", 1e7, 40, 0.0);
  b.Unary(OpType::kFilter, "f", scan, 0.0, 0.0, 1e7, 40);
  b.Unary(OpType::kRepartition, "r", scan, 0.0, 0.0, 1e7, 40);
  Plan p = std::move(b).Build();
  OperatorCostEstimator est(ExecutionRates{}, ExternalIscsiStorage(), 10);
  const double filter_cost = est.RuntimeCost(p, 1);
  const double shuffle_cost = est.RuntimeCost(p, 2);
  EXPECT_LT(filter_cost, shuffle_cost);
}

TEST(OperatorCostTest, JoinBuildsSmallerSide) {
  PlanBuilder b("join");
  const OpId small = b.Scan("S", 1e3, 40, 0.0);
  const OpId big = b.Scan("B", 1e7, 40, 0.0);
  const OpId j1 = b.Binary(OpType::kHashJoin, "j1", small, big, 0.0, 0.0,
                           1e7, 60);
  Plan p1 = std::move(b).Build();

  PlanBuilder b2("join2");
  const OpId big2 = b2.Scan("B", 1e7, 40, 0.0);
  const OpId small2 = b2.Scan("S", 1e3, 40, 0.0);
  const OpId j2 = b2.Binary(OpType::kHashJoin, "j2", big2, small2, 0.0, 0.0,
                            1e7, 60);
  Plan p2 = std::move(b2).Build();

  OperatorCostEstimator est(ExecutionRates{}, ExternalIscsiStorage(), 10);
  // The cost must not depend on input order.
  EXPECT_DOUBLE_EQ(est.RuntimeCost(p1, j1), est.RuntimeCost(p2, j2));
}

TEST(OperatorCostTest, MoreNodesReduceRuntime) {
  Plan p = CardinalityPlan();
  OperatorCostEstimator est10(ExecutionRates{}, ExternalIscsiStorage(), 10);
  OperatorCostEstimator est100(ExecutionRates{}, ExternalIscsiStorage(), 100);
  EXPECT_GT(est10.RuntimeCost(p, 1), est100.RuntimeCost(p, 1));
}

TEST(OperatorCostTest, EstimateAllRejectsNull) {
  OperatorCostEstimator est(ExecutionRates{}, ExternalIscsiStorage(), 10);
  EXPECT_FALSE(est.EstimateAll(nullptr).ok());
}

TEST(StorageModelTest, PresetsHaveSensibleProperties) {
  EXPECT_TRUE(ExternalIscsiStorage().fault_tolerant);
  EXPECT_FALSE(LocalDiskStorage().fault_tolerant);
  EXPECT_FALSE(InMemoryStorage().fault_tolerant);
  EXPECT_GT(InMemoryStorage().write_bandwidth_bps,
            LocalDiskStorage().write_bandwidth_bps);
}

TEST(StorageModelTest, WriteAndReadSeconds) {
  StorageMedium m;
  m.write_bandwidth_bps = 100.0;
  m.read_bandwidth_bps = 50.0;
  m.latency_seconds = 1.0;
  EXPECT_DOUBLE_EQ(m.WriteSeconds(10, 10), 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(m.ReadSeconds(10, 10), 1.0 + 2.0);
}

}  // namespace
}  // namespace xdbft::cost
