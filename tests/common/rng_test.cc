#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace xdbft {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedResetsSequence) {
  Rng a(77);
  const uint64_t first = a.Next();
  a.Next();
  a.Seed(77);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenZeroNeverZero) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoubleOpenZero(), 0.0);
    EXPECT_LE(rng.NextDoubleOpenZero(), 1.0);
  }
}

TEST(RngTest, NextIntRespectsBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  const double mean = 42.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(RngTest, ExponentialIsMemoryless) {
  // P(X > a+b | X > a) == P(X > b) for exponential draws.
  Rng rng(17);
  const double mean = 10.0;
  int gt5 = 0, gt10_given = 0, total_gt5 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextExponential(mean);
    if (x > 5.0) {
      ++total_gt5;
      if (x > 10.0) ++gt10_given;
    }
    if (x > 5.0) ++gt5;
  }
  const double p_b = static_cast<double>(gt10_given) / total_gt5;
  const double expected = std::exp(-5.0 / mean);
  EXPECT_NEAR(p_b, expected, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SplitMix64Deterministic) {
  uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace xdbft
