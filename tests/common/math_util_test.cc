#include "common/math_util.h"

#include <gtest/gtest.h>

namespace xdbft {
namespace {

TEST(MathUtilTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0));
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1.0, 1.001, /*rtol=*/0.01));
}

TEST(MathUtilTest, Clamp) {
  EXPECT_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(Clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(Clamp(11.0, 0.0, 10.0), 10.0);
}

TEST(MathUtilTest, MeanAndStdDev) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({2.0, 4.0}), std::sqrt(2.0));
}

TEST(MathUtilTest, PercentileBoundsAndMedian) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.0);
}

TEST(MathUtilTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 95.0), 9.5);
}

TEST(MathUtilTest, PercentileEmpty) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
}

TEST(MathUtilTest, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(MathUtilTest, PearsonDegenerate) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1, 2}, {1}), 0.0);
}

TEST(MathUtilTest, SpearmanMonotoneNonlinear) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(MathUtilTest, SpearmanHandlesTies) {
  std::vector<double> xs = {1, 2, 2, 3};
  std::vector<double> ys = {1, 2, 2, 3};
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(MathUtilTest, HarmonicNumber) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(100), std::log(100.0) + 0.5772156649, 0.01);
}

TEST(MathUtilTest, HarmonicNumberExactVsAsymptoticBoundary) {
  // The implementation switches from exact summation to the
  // Euler-Maclaurin expansion at a small-n cutoff. Sweep a window
  // straddling every plausible cutoff and require the reference sum and
  // the returned value to agree to near machine precision, so the
  // exact/approx seam is invisible to callers.
  double reference = 0.0;
  uint64_t i = 1;
  for (uint64_t n = 1; n <= 5000; ++n) {
    for (; i <= n; ++i) reference += 1.0 / static_cast<double>(i);
    EXPECT_NEAR(HarmonicNumber(n), reference, 1e-12 * reference)
        << "n=" << n;
  }
}

TEST(MathUtilTest, HarmonicNumberLargeNIsConstantTime) {
  // The asymptotic branch must serve huge n exactly as well: H_1e9 is
  // known to 12+ digits and an O(n) loop would be noticeable here.
  EXPECT_NEAR(HarmonicNumber(1000000000ULL), 21.300481502347944, 1e-9);
  EXPECT_NEAR(HarmonicNumber(1000000ULL), 14.392726722865724, 1e-10);
}

}  // namespace
}  // namespace xdbft
