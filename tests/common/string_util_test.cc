#include "common/string_util.h"

#include <gtest/gtest.h>

namespace xdbft {
namespace {

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string s = "x|y|z";
  EXPECT_EQ(Join(Split(s, '|'), "|"), s);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(1.5), "1.50s");
  EXPECT_EQ(HumanDuration(90.0), "1m 30.0s");
  EXPECT_EQ(HumanDuration(3723.0), "1h 02m 03.0s");
  EXPECT_EQ(HumanDuration(-1.5), "-1.50s");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");
}

}  // namespace
}  // namespace xdbft
