#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace xdbft {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnNotOk(int x) {
  XDBFT_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(1).ok());
  EXPECT_TRUE(UseReturnNotOk(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> Doubled(Result<int> in) {
  XDBFT_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_TRUE(Doubled(Status::Aborted("no")).status().IsAborted());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace xdbft
