#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace xdbft {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, DisabledLevelsEmitNothing) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  XDBFT_LOG(Info) << "should be swallowed";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty()) << out;
  SetLogLevel(original);
}

TEST(LoggingTest, EnabledLevelsEmitTaggedLine) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  XDBFT_LOG(Warning) << "disk almost full: " << 93 << "%";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN"), std::string::npos);
  EXPECT_NE(out.find("disk almost full: 93%"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesSilently) {
  testing::internal::CaptureStderr();
  XDBFT_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(XDBFT_CHECK(false) << "boom 42",
               "Check failed: false.*boom 42");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(XDBFT_CHECK_OK(Status::Internal("db on fire")),
               "db on fire");
}

TEST(LoggingTest, NullStreamSwallowsEverything) {
  internal::NullStream ns;
  ns << "anything" << 42 << 3.14;  // must compile and do nothing
  SUCCEED();
}

}  // namespace
}  // namespace xdbft
