#include "common/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace xdbft {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, DisabledLevelsEmitNothing) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  XDBFT_LOG(Info) << "should be swallowed";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(out.empty()) << out;
  SetLogLevel(original);
}

TEST(LoggingTest, EnabledLevelsEmitTaggedLine) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  XDBFT_LOG(Warning) << "disk almost full: " << 93 << "%";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARN"), std::string::npos);
  EXPECT_NE(out.find("disk almost full: 93%"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesSilently) {
  testing::internal::CaptureStderr();
  XDBFT_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(XDBFT_CHECK(false) << "boom 42",
               "Check failed: false.*boom 42");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(XDBFT_CHECK_OK(Status::Internal("db on fire")),
               "db on fire");
}

TEST(LoggingTest, LinesStartWithIso8601UtcTimestamp) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  XDBFT_LOG(Info) << "stamped";
  const std::string out = testing::internal::GetCapturedStderr();
  SetLogLevel(original);
  // 2015-06-04T12:34:56.789Z followed by the level tag.
  const std::regex prefix(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z \[INFO )");
  EXPECT_TRUE(std::regex_search(out, prefix)) << out;
}

TEST(LoggingTest, ConcurrentLogLinesDoNotInterleave) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        XDBFT_LOG(Info) << "thread=" << t << " payload-" << i << "-end";
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::string out = testing::internal::GetCapturedStderr();
  SetLogLevel(original);

  // Every emitted line must be exactly one complete message: timestamp
  // prefix, tag, and an intact "payload-N-end" token.
  std::istringstream lines(out);
  std::string line;
  int complete = 0;
  const std::regex shape(
      R"(^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z \[INFO )"
      R"(logging_test\.cc:\d+\] thread=\d payload-\d+-end$)");
  while (std::getline(lines, line)) {
    EXPECT_TRUE(std::regex_match(line, shape)) << "garbled line: " << line;
    ++complete;
  }
  EXPECT_EQ(complete, kThreads * kLines);
}

TEST(LoggingTest, NullStreamSwallowsEverything) {
  internal::NullStream ns;
  ns << "anything" << 42 << 3.14;  // must compile and do nothing
  SUCCEED();
}

}  // namespace
}  // namespace xdbft
