#include "common/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace xdbft {
namespace {

TEST(TaskPoolTest, ParallelForEachRunsEveryIndexExactlyOnce) {
  TaskPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelForEach(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, ZeroWorkersRunsInlineOnCaller) {
  TaskPool pool(0);
  std::atomic<int> count{0};
  pool.ParallelForEach(50, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
  EXPECT_EQ(pool.stats().tasks_inline, 50u);
  EXPECT_EQ(pool.stats().tasks_executed, 0u);
}

TEST(TaskPoolTest, ExceptionPropagatesAndRemainingTasksStillRun) {
  TaskPool pool(2);
  std::atomic<int> count{0};
  EXPECT_THROW(
      pool.ParallelForEach(100,
                           [&](size_t i) {
                             ++count;
                             if (i == 42) {
                               throw std::runtime_error("task 42 failed");
                             }
                           }),
      std::runtime_error);
  // The join is a barrier: every task ran even though one threw.
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskPoolTest, NoTaskLostOnShutdown) {
  std::atomic<int> count{0};
  constexpr int kN = 500;
  {
    TaskPool pool(3);
    for (int i = 0; i < kN; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor must drain all queued tasks before joining.
  }
  EXPECT_EQ(count.load(), kN);
}

TEST(TaskPoolTest, WorkIsStolenFromABlockedWorkersQueue) {
  TaskPool pool(4);
  std::atomic<int> remaining{64};
  // The first submitted task parks one worker; its queued siblings (the
  // round-robin puts every 4th task behind it) must be stolen by the idle
  // workers. No helping happens here because the main thread only waits.
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&remaining, i] {
      if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (remaining.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(remaining.load(), 0);
  EXPECT_GT(pool.stats().tasks_stolen, 0u);
  EXPECT_EQ(pool.stats().tasks_executed, 64u);
}

TEST(TaskPoolTest, FullQueuesFallBackToInlineExecutionNotLoss) {
  TaskPool pool(1, /*queue_capacity=*/2);
  std::atomic<bool> release{false};
  std::atomic<int> count{0};
  pool.Submit([&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Worker is parked; the 2-slot queue fills and the rest run inline.
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_GE(pool.stats().tasks_inline, 8u);
  release.store(true, std::memory_order_release);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (count.load() < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(TaskPoolTest, CurrentWorkerIdIsScopedToThePool) {
  std::atomic<int> bad_ids{0};
  {
    TaskPool pool(3);
    EXPECT_EQ(pool.CurrentWorkerId(), -1);  // not a worker of this pool
    for (int i = 0; i < 30; ++i) {
      // Submitted (not helped) tasks run on workers only, so the id must
      // be a valid worker index.
      pool.Submit([&pool, &bad_ids] {
        const int id = pool.CurrentWorkerId();
        if (id < 0 || id >= pool.num_threads()) ++bad_ids;
      });
    }
  }  // destructor drains all 30 tasks
  EXPECT_EQ(bad_ids.load(), 0);
}

TEST(TaskPoolTest, StatsAccountEveryExecutedTask) {
  TaskPool pool(2);
  pool.ParallelForEach(200, [](size_t) {});
  const TaskPoolStats s = pool.stats();
  EXPECT_EQ(s.tasks_executed + s.tasks_inline, 200u);
  EXPECT_LE(s.tasks_stolen, s.tasks_executed);
}

TEST(TaskPoolTest, TrySubmitRejectsWithNoWorkers) {
  TaskPool pool(0);
  std::atomic<int> count{0};
  EXPECT_FALSE(pool.TrySubmit([&] { count.fetch_add(1); }));
  EXPECT_EQ(count.load(), 0);  // rejected task never ran
}

TEST(TaskPoolTest, TrySubmitRejectsWhenEveryQueueIsFullThenDrains) {
  TaskPool pool(1, /*queue_capacity=*/2);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> count{0};
  pool.Submit([&] {
    started.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Wait until the worker holds the blocker (so it no longer occupies a
  // queue slot): the 2-slot queue then fills, and further TrySubmits must
  // report rejection instead of running inline.
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pool.TrySubmit([&] { count.fetch_add(1); })) ++accepted;
  }
  EXPECT_EQ(accepted, 2);
  release.store(true, std::memory_order_release);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (count.load() < accepted &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), accepted);  // accepted tasks all ran, no extras
}

}  // namespace
}  // namespace xdbft
