// Wide ETL pipeline: a 30-stage transformation DAG has 2^30 possible
// materialization configurations — far beyond exhaustive enumeration.
// This example uses the greedy hill climber to pick checkpoints, explains
// the choice with per-operator marginals, and adds intra-operator
// checkpointing (the paper's §7 extension) for the one long-running stage.
//
//   $ ./wide_etl
#include <cstdio>
#include <iostream>

#include "api/xdbft.h"

using namespace xdbft;

int main() {
  // A nightly ETL pipeline: ingest, 30 transformation stages of varying
  // cost, one long ML-scoring UDF, final load. Only some stages are cheap
  // to checkpoint (small intermediate outputs).
  plan::PlanBuilder b("nightly-etl");
  auto prev = b.Scan("raw_events", 5e9, 120, /*tr=*/400.0);
  b.Constrain(prev, plan::MatConstraint::kNeverMaterialize);
  for (int i = 0; i < 30; ++i) {
    const bool cheap = (i % 6 == 2);  // aggregations shrink the data
    prev = b.Unary(plan::OpType::kMapUdf, "stage" + std::to_string(i),
                   prev, /*tr=*/60.0 + (i % 5) * 15.0,
                   /*tm=*/cheap ? 1.5 : 90.0);
  }
  prev = b.Unary(plan::OpType::kMapUdf, "ml-scoring", prev, /*tr=*/1800.0,
                 /*tm=*/40.0);
  b.Unary(plan::OpType::kHashAggregate, "load", prev, /*tr=*/60.0,
          /*tm=*/2.0);
  plan::Plan plan = std::move(b).Build();

  ft::FtCostContext ctx;
  ctx.cluster = cost::MakeCluster(/*nodes=*/20, cost::kSecondsPerHour,
                                  /*mttr=*/5.0);
  std::printf("Pipeline: %zu operators, %zu free -> 2^%zu configurations\n",
              plan.num_nodes(), ft::EnumerableOperators(plan).size(),
              ft::EnumerableOperators(plan).size());
  std::printf("%s\n", ctx.cluster.ToString().c_str());

  // Exhaustive enumeration would refuse this plan; greedy handles it.
  auto greedy = ft::GreedyMaterialization(plan, ctx);
  if (!greedy.ok()) {
    std::fprintf(stderr, "greedy failed: %s\n",
                 greedy.status().ToString().c_str());
    return 1;
  }
  ft::FtCostModel model(ctx);
  const double no_mat_cost =
      model.Estimate(plan, ft::MaterializationConfig::NoMat(plan))
          ->dominant_cost;
  const double all_mat_cost =
      model.Estimate(plan, ft::MaterializationConfig::AllMat(plan))
          ->dominant_cost;
  std::printf(
      "\nEstimated runtime under failures:\n"
      "  no-mat   %10.1fs\n"
      "  all-mat  %10.1fs\n"
      "  greedy   %10.1fs  (%zu materialized in %d steps: %s)\n",
      no_mat_cost, all_mat_cost, greedy->estimated_cost,
      greedy->config.NumMaterialized(), greedy->steps,
      greedy->config.ToString().c_str());

  // Explain which checkpoints carry the savings.
  auto marginals = ft::AnalyzeMarginals(plan, greedy->config, ctx);
  if (marginals.ok()) {
    std::printf("\nTop checkpoints by marginal benefit:\n");
    auto ops = marginals->operators;
    std::sort(ops.begin(), ops.end(),
              [](const ft::OperatorMarginal& a,
                 const ft::OperatorMarginal& b) {
                return a.benefit() > b.benefit();
              });
    for (size_t i = 0; i < ops.size() && i < 5; ++i) {
      std::printf("  %-12s m=%d  saves %8.1fs if kept as configured\n",
                  ops[i].label.c_str(), ops[i].materialized ? 1 : 0,
                  ops[i].benefit());
    }
  }

  // The 30-minute ML stage is itself failure-prone: add operator-state
  // checkpoints at the optimal interval (§7 extension).
  const ft::FailureParams params = ctx.MakeFailureParams();
  const double t_ml = 1800.0 + 40.0;
  const double opt =
      ft::OptimalCheckpointInterval(t_ml, /*checkpoint_cost=*/5.0, params);
  ft::CheckpointParams ckpt;
  ckpt.checkpoint_cost = 5.0;
  ckpt.interval = opt;
  std::printf(
      "\nML stage (t=%.0fs) without operator checkpoints: %.1fs expected;\n"
      "with state checkpoints every %.0fs: %.1fs expected "
      "(Young/Daly suggests %.0fs)\n",
      t_ml, ft::OperatorTotalRuntime(t_ml, params), opt,
      ft::OperatorTotalRuntimeWithCheckpoints(t_ml, ckpt, params),
      ft::YoungDalyInterval(5.0, params.mtbf_cost));
  return 0;
}
