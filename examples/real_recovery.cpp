// Real fault-tolerant execution: runs TPC-H Q5 on generated data with
// randomly injected mid-query failures and actual recovery (recomputation
// from the last materialized stages), for each materialization policy.
// Demonstrates that recovery is transparent — every run returns the exact
// same result — while the recovery *work* depends on what was
// materialized.
//
//   $ ./real_recovery
#include <cstdio>

#include "api/xdbft.h"
#include "engine/ft_executor.h"

using namespace xdbft;

int main() {
  datagen::TpchGenOptions gen;
  gen.scale_factor = 0.05;
  std::printf("Generating TPC-H data (SF=%.2f) ...\n", gen.scale_factor);
  auto db = datagen::GenerateTpch(gen);
  if (!db.ok()) return 1;
  auto pd = engine::DistributeTpch(*db, 4);
  if (!pd.ok()) return 1;

  const engine::StagePlan plan = engine::MakeQ5StagePlan(*pd);
  const plan::Plan skeleton = plan.ToPlanSkeleton();
  engine::FaultTolerantExecutor executor(&plan, &*pd);

  auto clean = executor.Execute(ft::MaterializationConfig::AllMat(skeleton));
  if (!clean.ok()) {
    std::fprintf(stderr, "error: %s\n", clean.status().ToString().c_str());
    return 1;
  }
  std::printf("Failure-free Q5 result (%zu nations):\n",
              clean->result.num_rows());
  for (const auto& row : clean->result.rows) {
    std::printf("  %-12s %14.2f\n", row[0].AsString().c_str(),
                row[1].AsDouble());
  }

  struct Policy {
    const char* name;
    ft::MaterializationConfig config;
  };
  // The cost-based pick for a flaky cluster materializes the cheap
  // mid-plan stages; derive it from the skeleton with uniform stand-in
  // costs (stage runtimes are data-dependent; here the policy is what
  // matters).
  const Policy policies[] = {
      {"all-mat", ft::MaterializationConfig::AllMat(skeleton)},
      {"no-mat", ft::MaterializationConfig::NoMat(skeleton)},
      {"subset {Join3}",
       [&] {
         auto c = ft::MaterializationConfig::NoMat(skeleton);
         c.set_materialized(3, true);  // Join3(RNC,O)
         return c;
       }()},
  };

  std::printf(
      "\nInjecting random failures (12%% of task attempts), 5 runs per "
      "policy:\n");
  std::printf("%-16s %10s %10s %12s %8s\n", "policy", "failures",
              "recovery", "tasks", "correct");
  for (const auto& policy : policies) {
    int failures = 0, recovery = 0, tasks = 0;
    bool correct = true;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      engine::RandomInjector injector(0.12, seed);
      auto r = executor.Execute(policy.config, &injector);
      if (!r.ok()) {
        std::fprintf(stderr, "  %s: %s\n", policy.name,
                     r.status().ToString().c_str());
        correct = false;
        break;
      }
      failures += r->failures_injected;
      recovery += r->recovery_executions;
      tasks += r->task_executions;
      if (r->result.num_rows() != clean->result.num_rows()) {
        correct = false;
      } else {
        for (size_t i = 0; i < r->result.num_rows(); ++i) {
          if (!exec::RowEq{}(r->result.rows[i], clean->result.rows[i])) {
            correct = false;
          }
        }
      }
    }
    std::printf("%-16s %10d %10d %12d %8s\n", policy.name, failures,
                recovery, tasks, correct ? "yes" : "NO");
  }
  std::printf(
      "\nEvery policy recovers to the identical result; materialization\n"
      "only changes how much work recovery re-does (the 'recovery'\n"
      "column) — the trade-off the paper's cost model optimizes.\n");
  return 0;
}
