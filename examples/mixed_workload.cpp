// Mixed workload demo (the paper's motivating scenario, §1): a workload of
// short interactive queries and long batch queries running on clusters
// with very different failure characteristics. No fixed scheme fits all —
// the cost-based advisor picks the sweet spot per (query, cluster) pair,
// which this example demonstrates with simulated failure injection.
//
//   $ ./mixed_workload
#include <cstdio>

#include "api/xdbft.h"
#include "common/string_util.h"

using namespace xdbft;

namespace {

// A chain query with `stages` operators of `stage_seconds` runtime and
// `mat_seconds` materialization cost each.
plan::Plan ChainQuery(const std::string& name, int stages,
                      double stage_seconds, double mat_seconds) {
  plan::PlanBuilder b(name);
  auto prev = b.Scan("base", 1e8, 64, stage_seconds);
  b.Constrain(prev, plan::MatConstraint::kNeverMaterialize);
  for (int i = 1; i < stages; ++i) {
    prev = b.Unary(plan::OpType::kMapUdf, "stage" + std::to_string(i),
                   prev, stage_seconds, mat_seconds);
  }
  b.Unary(plan::OpType::kHashAggregate, "final", prev, stage_seconds / 4,
          0.1);
  return std::move(b).Build();
}

}  // namespace

int main() {
  struct Query {
    const char* label;
    plan::Plan plan;
  };
  Query queries[] = {
      {"interactive (30s)", ChainQuery("interactive", 3, 10.0, 2.0)},
      {"report (10min)", ChainQuery("report", 5, 120.0, 25.0)},
      {"batch (2h)", ChainQuery("batch", 6, 1200.0, 200.0)},
  };
  struct Cluster {
    const char* label;
    cost::ClusterStats stats;
  };
  Cluster clusters[] = {
      {"spot instances (n=100, MTBF=1h)",
       cost::MakeCluster(100, cost::kSecondsPerHour, 5.0)},
      {"commodity (n=10, MTBF=1d)",
       cost::MakeCluster(10, cost::kSecondsPerDay, 5.0)},
      {"appliance (n=10, MTBF=1wk)",
       cost::MakeCluster(10, cost::kSecondsPerWeek, 5.0)},
  };

  std::printf(
      "Simulated overhead (%% over failure-free baseline, 20 traces)\n\n");
  for (const auto& c : clusters) {
    std::printf("=== %s ===\n", c.label);
    std::printf("  %-20s %10s %12s %12s %12s %6s\n", "query", "all-mat",
                "lineage", "restart", "cost-based", "m-ops");
    for (const auto& q : queries) {
      cost::CostModelParams model;
      model.scale_success_target_with_cluster = true;  // n-aware extension
      auto result = cluster::RunSchemeComparison(q.plan, c.stats, model,
                                                 /*num_traces=*/20);
      if (!result.ok()) {
        std::fprintf(stderr, "  %s: %s\n", q.label,
                     result.status().ToString().c_str());
        continue;
      }
      auto cell = [&](ft::SchemeKind kind) {
        const auto& o = result->outcome(kind);
        if (!o.completed) return std::string("Aborted");
        return StrFormat("%.1f", o.overhead_percent);
      };
      std::printf("  %-20s %10s %12s %12s %12s %6zu\n", q.label,
                  cell(ft::SchemeKind::kAllMat).c_str(),
                  cell(ft::SchemeKind::kNoMatLineage).c_str(),
                  cell(ft::SchemeKind::kNoMatRestart).c_str(),
                  cell(ft::SchemeKind::kCostBased).c_str(),
                  result->outcome(ft::SchemeKind::kCostBased)
                      .num_materialized);
    }
    std::printf("\n");
  }
  std::printf(
      "Note how the cost-based scheme materializes aggressively on the\n"
      "spot cluster, nothing on the appliance, and only the cheap\n"
      "checkpoints in between - no fixed scheme achieves that.\n");
  return 0;
}
