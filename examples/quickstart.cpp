// Quickstart: build an execution plan with per-operator statistics, ask
// the cost-based fault-tolerance advisor which intermediates to
// materialize, and compare against the classic all-mat / no-mat schemes.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "api/xdbft.h"

using namespace xdbft;

int main() {
  // A small analytical query: two scans, a join, an aggregation, a sort.
  // Costs are in seconds for partition-parallel execution (tr = runtime,
  // tm = cost of materializing the operator's output to fault-tolerant
  // storage).
  plan::PlanBuilder b("sales-report");
  const auto sales = b.Scan("sales", /*rows=*/2e9, /*width=*/48,
                            /*runtime_cost=*/300.0);
  const auto users = b.Scan("users", /*rows=*/5e7, /*width=*/80,
                            /*runtime_cost=*/15.0);
  const auto join = b.Binary(plan::OpType::kHashJoin, "join(user_id)",
                             sales, users, /*tr=*/240.0, /*tm=*/90.0);
  const auto agg = b.Unary(plan::OpType::kHashAggregate, "agg(region)",
                           join, /*tr=*/120.0, /*tm=*/2.0);
  b.Unary(plan::OpType::kSort, "top-100", agg, /*tr=*/5.0, /*tm=*/0.5);
  // Base tables are persistent; scans restart from them on failure.
  b.Constrain(sales, plan::MatConstraint::kNeverMaterialize);
  b.Constrain(users, plan::MatConstraint::kNeverMaterialize);
  plan::Plan plan = std::move(b).Build();

  std::printf("%s\n", plan.Explain().c_str());

  // A 50-node commodity/spot cluster where a node fails every ~2 hours.
  api::FaultToleranceAdvisor advisor(
      cost::MakeCluster(/*num_nodes=*/50, 2 * cost::kSecondsPerHour,
                        /*mttr=*/5.0));

  auto chosen = advisor.ChooseBestPlan(plan);
  if (!chosen.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 chosen.status().ToString().c_str());
    return 1;
  }
  std::cout << advisor.Explain(*chosen) << "\n";

  auto comparison = advisor.CompareSchemes(plan);
  if (comparison.ok()) {
    std::printf("Scheme comparison (estimated runtime under failures):\n");
    for (const auto& est : comparison->estimates) {
      std::printf("  %-18s %10.1fs  (%zu materialized)\n",
                  ft::SchemeKindName(est.kind), est.estimated_runtime,
                  est.num_materialized);
    }
    std::printf("Recommended: %s\n",
                ft::SchemeKindName(comparison->recommended));
  }
  return 0;
}
