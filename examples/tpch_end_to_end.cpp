// End-to-end demo of the full pipeline on real data:
//   1. generate a TPC-H database (scale factor 0.05),
//   2. distribute it over a simulated 4-node cluster (paper §5.1 layout),
//   3. execute Q5 for real, partition-parallel, measuring per-stage costs,
//   4. calibrate an execution plan from the measured statistics
//      (the paper's "perfect cost estimates"),
//   5. extrapolate to deployment scale and ask the advisor for the optimal
//      materialization configuration,
//   6. validate the choice by simulating execution under injected
//      failures.
//
//   $ ./tpch_end_to_end
#include <cstdio>
#include <iostream>

#include "api/xdbft.h"
#include "engine/cost_calibrator.h"
#include "engine/query_runner.h"

using namespace xdbft;

int main() {
  // 1. Generate data.
  datagen::TpchGenOptions gen;
  gen.scale_factor = 0.05;
  std::printf("Generating TPC-H data at SF=%.2f ...\n", gen.scale_factor);
  auto db = datagen::GenerateTpch(gen);
  if (!db.ok()) {
    std::fprintf(stderr, "datagen: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("  lineitem: %zu rows, orders: %zu rows\n",
              db->lineitem.num_rows(), db->orders.num_rows());

  // 2. Distribute (LINEITEM/ORDERS co-partitioned on orderkey, dimensions
  //    replicated via RREF).
  auto pd = engine::DistributeTpch(*db, /*num_nodes=*/4);
  if (!pd.ok()) {
    std::fprintf(stderr, "distribute: %s\n",
                 pd.status().ToString().c_str());
    return 1;
  }

  // 3. Execute Q5 for real.
  engine::QueryRunner runner(&*pd);
  auto execution = runner.RunQ5();
  if (!execution.ok()) {
    std::fprintf(stderr, "Q5: %s\n",
                 execution.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQ5 executed in %.3fs; revenue per nation:\n",
              execution->total_seconds);
  for (const auto& row : execution->result.rows) {
    std::printf("  %-12s %14.2f\n", row[0].AsString().c_str(),
                row[1].AsDouble());
  }
  std::printf("\nMeasured stages:\n");
  for (const auto& s : execution->stages) {
    std::printf("  %-16s %8.4fs  %9zu rows\n", s.label.c_str(), s.seconds,
                s.output_rows);
  }

  // 4. Calibrate a plan from the measured statistics.
  auto calibrated = engine::BuildCalibratedPlan(
      *execution, cost::ExternalIscsiStorage(), "q5-measured");
  if (!calibrated.ok()) {
    std::fprintf(stderr, "calibrate: %s\n",
                 calibrated.status().ToString().c_str());
    return 1;
  }

  // 5. Extrapolate to the production deployment (SF=100 on the same
  //    number of nodes: runtimes scale linearly in SF) and choose the
  //    fault-tolerant plan for a cluster with MTBF = 1 hour.
  const double scale = 100.0 / gen.scale_factor;
  plan::Plan production =
      engine::ScaleCalibratedPlan(*calibrated, scale,
                                  /*materialization_factor=*/1.0);
  // Materialization costs derive from the scaled output cardinalities.
  engine::RecostMaterialization(&production, cost::ExternalIscsiStorage());
  const auto stats = cost::MakeCluster(4, cost::kSecondsPerHour, 2.0);
  api::FaultToleranceAdvisor advisor(stats);
  auto chosen = advisor.ChooseBestPlan(production);
  if (!chosen.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 chosen.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", advisor.Explain(*chosen).c_str());

  // 6. Validate under injected failures.
  cluster::ClusterSimulator simulator(stats);
  auto traces = cluster::GenerateTraceSet(stats, 10, /*seed=*/1);
  auto simulated = simulator.RunMany(*chosen, traces);
  auto baseline = simulator.BaselineRuntime(production);
  if (simulated.ok() && baseline.ok()) {
    std::printf(
        "Simulated under failures (10 traces): %.1fs mean "
        "(baseline %.1fs, overhead %.1f%%, %d sub-plan restarts)\n",
        simulated->runtime, *baseline,
        cluster::OverheadPercent(simulated->runtime, *baseline),
        simulated->restarts);
  }
  return 0;
}
