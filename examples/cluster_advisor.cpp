// Cluster advisor: a decision matrix showing, for each TPC-H benchmark
// query and a range of cluster setups, which fault-tolerance scheme the
// cost model recommends and how many intermediates the cost-based scheme
// would materialize. Useful for capacity planning: it makes the paper's
// "sweet spot" argument tangible.
//
//   $ ./cluster_advisor
#include <cstdio>

#include "api/xdbft.h"
#include "common/string_util.h"

using namespace xdbft;

int main() {
  struct Cluster {
    const char* label;
    cost::ClusterStats stats;
  };
  const Cluster clusters[] = {
      {"n=100 MTBF=1h", cost::MakeCluster(100, cost::kSecondsPerHour, 2.0)},
      {"n=100 MTBF=1wk",
       cost::MakeCluster(100, cost::kSecondsPerWeek, 2.0)},
      {"n=10  MTBF=1h", cost::MakeCluster(10, cost::kSecondsPerHour, 2.0)},
      {"n=10  MTBF=1d", cost::MakeCluster(10, cost::kSecondsPerDay, 2.0)},
      {"n=10  MTBF=1wk", cost::MakeCluster(10, cost::kSecondsPerWeek, 2.0)},
  };

  std::printf(
      "Recommended scheme per (query, cluster); 'cb/k' = cost-based with k"
      "\nmaterialized operators. TPC-H SF=100.\n\n");
  std::printf("%-16s", "cluster");
  for (tpch::TpchQuery q : tpch::AllQueries()) {
    std::printf(" %14s", tpch::TpchQueryName(q));
  }
  std::printf("\n%s\n", std::string(16 + 15 * 5, '-').c_str());

  for (const auto& c : clusters) {
    std::printf("%-16s", c.label);
    for (tpch::TpchQuery q : tpch::AllQueries()) {
      tpch::TpchPlanConfig cfg;
      cfg.scale_factor = 100.0;
      cfg.num_nodes = c.stats.num_nodes;
      auto plan = tpch::BuildQuery(q, cfg);
      if (!plan.ok()) {
        std::printf(" %14s", "err");
        continue;
      }
      cost::CostModelParams model;
      // Extension: make the attempts percentile cluster-size aware, so
      // the recommendation reflects n (see cost_params.h).
      model.scale_success_target_with_cluster = true;
      api::FaultToleranceAdvisor advisor(c.stats, model);
      auto cmp = advisor.CompareSchemes(*plan);
      auto best = advisor.ChooseBestPlan(*plan);
      if (!cmp.ok() || !best.ok()) {
        std::printf(" %14s", "err");
        continue;
      }
      // The cost-based pick equals one of the fixed schemes when it
      // materializes everything/nothing; report the closest label.
      const size_t m = best->config.NumMaterialized();
      const size_t total_free = ft::EnumerableOperators(*plan).size();
      std::string label;
      if (total_free == 0) {
        label = "n/a (bound)";
      } else if (m == plan->Sinks().size()) {
        label = "no-mat";
      } else if (m == total_free + plan->Sinks().size()) {
        label = "all-mat";
      } else {
        label = StrFormat("cb/%zu", m - plan->Sinks().size());
      }
      std::printf(" %14s", label.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading guide: the sweet spot depends on the runtime-to-MTBF\n"
      "ratio AND the materialization cost. On 100 nodes the queries finish\n"
      "in seconds, so even at MTBF=1h checkpointing to the shared store\n"
      "costs more than the occasional partition restart; on 10 nodes at\n"
      "MTBF=1h the same queries run ~15 minutes and the cost-based scheme\n"
      "checkpoints the cheap intermediates. Reliable clusters always\n"
      "degenerate to no-mat.\n");
  return 0;
}
