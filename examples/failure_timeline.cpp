// Failure-timeline demo: runs one query under a single failure trace with
// each recovery scheme and prints what happened — failures hit, sub-plan
// restarts, final runtime — making the schemes' behavior concrete.
//
//   $ ./failure_timeline [seed]
#include <cstdio>
#include <cstdlib>

#include "api/xdbft.h"

using namespace xdbft;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  tpch::TpchPlanConfig cfg;
  cfg.scale_factor = 100.0;
  auto plan = tpch::BuildQuery(tpch::TpchQuery::kQ5, cfg);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  const auto stats =
      cost::MakeCluster(cfg.num_nodes, cost::kSecondsPerHour, 2.0);
  ft::FtCostContext context;
  context.cluster = stats;

  // Non-zero WAL costs so the write-ahead lineage row is priced (and
  // simulated) under its own discipline rather than degenerating to
  // fine-grained recovery.
  cluster::SimulationOptions sim_opts;
  sim_opts.wal_write_cost = context.model.wal_write_cost;
  sim_opts.wal_replay_factor = context.model.wal_replay_factor;
  cluster::ClusterSimulator simulator(stats, sim_opts);
  const double baseline = *simulator.BaselineRuntime(*plan);
  std::printf("Q5 @ SF=100 on %s\n", stats.ToString().c_str());
  std::printf("Failure-free baseline: %.1fs; trace seed %llu\n\n", baseline,
              static_cast<unsigned long long>(seed));

  // Show the first few failures of the trace.
  {
    cluster::ClusterTrace trace = cluster::ClusterTrace::Generate(stats,
                                                                  seed);
    std::printf("First failures in the trace:\n");
    double t = 0.0;
    for (int i = 0; i < 6; ++i) {
      int node = -1;
      t = trace.NextFailureAfter(t, &node);
      if (t > baseline * 4) break;
      std::printf("  t=%8.1fs  node %d fails\n", t, node);
    }
    std::printf("\n");
  }

  static constexpr ft::SchemeKind kAll[] = {
      ft::SchemeKind::kAllMat, ft::SchemeKind::kNoMatLineage,
      ft::SchemeKind::kNoMatRestart, ft::SchemeKind::kCostBased,
      ft::SchemeKind::kWriteAheadLineage};
  std::printf("%-18s %12s %10s %10s %10s\n", "scheme", "runtime(s)",
              "overhead%", "restarts", "m-ops");
  for (ft::SchemeKind kind : kAll) {
    auto sp = ft::ApplyScheme(kind, *plan, context);
    if (!sp.ok()) continue;
    cluster::ClusterTrace trace = cluster::ClusterTrace::Generate(stats,
                                                                  seed);
    auto r = simulator.Run(*sp, trace);
    if (!r.ok()) continue;
    if (r->completed) {
      std::printf("%-18s %12.1f %10.1f %10d %10zu\n",
                  ft::SchemeKindName(kind), r->runtime,
                  cluster::OverheadPercent(r->runtime, baseline),
                  r->restarts, sp->config.NumMaterialized());
    } else {
      std::printf("%-18s %12s %10s %10d %10zu\n", ft::SchemeKindName(kind),
                  "ABORTED", "-", r->restarts,
                  sp->config.NumMaterialized());
    }
  }
  return 0;
}
