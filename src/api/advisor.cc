#include "api/advisor.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/string_util.h"
#include "ft/explain.h"

namespace xdbft::api {

FaultToleranceAdvisor::FaultToleranceAdvisor(cost::ClusterStats cluster,
                                             cost::CostModelParams model,
                                             ft::EnumerationOptions options)
    : options_(options) {
  context_.cluster = cluster;
  context_.model = model;
}

Result<ft::SchemePlan> FaultToleranceAdvisor::ChooseBestPlan(
    const plan::Plan& plan) const {
  return ft::ApplyCostBasedScheme({plan}, context_, options_);
}

Result<ft::SchemePlan> FaultToleranceAdvisor::ChooseBestPlan(
    const std::vector<plan::Plan>& candidates) const {
  return ft::ApplyCostBasedScheme(candidates, context_, options_);
}

Result<SchemeComparison> FaultToleranceAdvisor::CompareSchemes(
    const plan::Plan& plan) const {
  SchemeComparison out;
  static constexpr ft::SchemeKind kAll[] = {
      ft::SchemeKind::kAllMat, ft::SchemeKind::kNoMatLineage,
      ft::SchemeKind::kNoMatRestart, ft::SchemeKind::kCostBased,
      ft::SchemeKind::kWriteAheadLineage};
  double best = std::numeric_limits<double>::infinity();
  for (ft::SchemeKind kind : kAll) {
    XDBFT_ASSIGN_OR_RETURN(ft::SchemePlan sp,
                           ft::ApplyScheme(kind, plan, context_, options_));
    SchemeEstimate est;
    est.kind = kind;
    est.estimated_runtime = sp.estimated_cost;
    est.num_materialized = sp.config.NumMaterialized();
    // Strictly-better wins; on ties the cost-based scheme is preferred
    // (it is never worse than the fixed schemes under the model).
    if (sp.estimated_cost < best ||
        (kind == ft::SchemeKind::kCostBased &&
         sp.estimated_cost <= best)) {
      best = sp.estimated_cost;
      out.recommended = kind;
    }
    out.estimates.push_back(est);
  }
  std::sort(out.estimates.begin(), out.estimates.end(),
            [](const SchemeEstimate& a, const SchemeEstimate& b) {
              return a.estimated_runtime < b.estimated_runtime;
            });
  return out;
}

std::string FaultToleranceAdvisor::Explain(
    const ft::SchemePlan& chosen) const {
  std::ostringstream os;
  os << "Fault-tolerance advisor report\n";
  os << "  cluster: " << context_.cluster.ToString() << "\n";
  os << StrFormat("  model: CONST_pipe=%.2f, S=%.2f, %s wasted-time\n",
                  context_.model.pipe_constant,
                  context_.model.success_target,
                  context_.model.exact_wasted_time ? "exact" : "t/2");
  os << "  scheme: " << ft::SchemeKindName(chosen.kind) << "\n";
  os << "  recovery: "
     << (chosen.recovery == ft::RecoveryMode::kFineGrained
             ? "fine-grained (restart failed sub-plans)"
             : chosen.recovery == ft::RecoveryMode::kWalReplay
                   ? "write-ahead lineage (replay logged frontier)"
                   : "full query restart")
     << "\n";
  os << "  materialized operators: " << chosen.config.ToString() << " ("
     << chosen.config.NumMaterialized() << " of "
     << chosen.plan.num_nodes() << ")\n";
  os << StrFormat("  estimated runtime under failures: %s\n",
                  HumanDuration(chosen.estimated_cost).c_str());
  os << "  plan:\n";
  for (const auto& n : chosen.plan.nodes()) {
    os << StrFormat("    [%2d]%s %-28s tr=%-9.3f tm=%-9.3f\n", n.id,
                    chosen.config.materialized(n.id) ? "*" : " ",
                    n.label.c_str(), n.runtime_cost, n.materialize_cost);
  }
  os << "  (* = output materialized to fault-tolerant storage)\n";
  auto marginals = ft::AnalyzeMarginals(chosen.plan, chosen.config,
                                        context_);
  if (marginals.ok()) {
    os << marginals->ToString();
  }
  return os.str();
}

}  // namespace xdbft::api
