// Umbrella header: the public API of the xdb-ft library.
//
// Quickstart:
//   #include "api/xdbft.h"
//   using namespace xdbft;
//
//   plan::PlanBuilder b("my-query");
//   auto scan = b.Scan("events", 1e8, 64, /*runtime_cost=*/120.0);
//   auto agg = b.Unary(plan::OpType::kHashAggregate, "agg", scan,
//                      /*tr=*/40.0, /*tm=*/2.0);
//   api::FaultToleranceAdvisor advisor(
//       cost::MakeCluster(/*nodes=*/10, /*mtbf=*/cost::kSecondsPerDay));
//   auto chosen = advisor.ChooseBestPlan(std::move(b).Build());
//   std::cout << advisor.Explain(*chosen);
#pragma once

#include "api/advisor.h"            // IWYU pragma: export
#include "api/advisor_service.h"    // IWYU pragma: export
#include "api/fingerprint.h"        // IWYU pragma: export
#include "cluster/experiment.h"     // IWYU pragma: export
#include "cluster/failure_trace.h"  // IWYU pragma: export
#include "cluster/simulator.h"      // IWYU pragma: export
#include "common/result.h"          // IWYU pragma: export
#include "common/status.h"          // IWYU pragma: export
#include "cost/cost_params.h"       // IWYU pragma: export
#include "cost/operator_cost.h"     // IWYU pragma: export
#include "cost/storage_model.h"     // IWYU pragma: export
#include "ft/adaptive.h"            // IWYU pragma: export
#include "ft/checkpointing.h"       // IWYU pragma: export
#include "ft/collapsed_plan.h"      // IWYU pragma: export
#include "ft/enumerator.h"          // IWYU pragma: export
#include "ft/explain.h"             // IWYU pragma: export
#include "ft/greedy.h"              // IWYU pragma: export
#include "ft/failure_math.h"        // IWYU pragma: export
#include "ft/scheme.h"              // IWYU pragma: export
#include "obs/attempt_log.h"        // IWYU pragma: export
#include "obs/flight_recorder.h"    // IWYU pragma: export
#include "obs/postmortem.h"         // IWYU pragma: export
#include "obs/query_profile.h"      // IWYU pragma: export
#include "optimizer/join_enumerator.h"  // IWYU pragma: export
#include "plan/plan.h"              // IWYU pragma: export
#include "plan/plan_text.h"         // IWYU pragma: export
#include "tpch/q5_join_graph.h"     // IWYU pragma: export
#include "tpch/queries.h"           // IWYU pragma: export
