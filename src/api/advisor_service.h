// AdvisorService: the long-lived, cache-backed serving layer over
// findBestFTPlan. Where FaultToleranceAdvisor answers one request per
// construction, AdvisorService answers a sustained stream of best-FT-plan
// requests at high QPS:
//
//   * a sharded cross-request cache of enumeration results keyed on the
//     canonical request fingerprint (api/fingerprint.h) with LRU eviction
//     under a bounded capacity;
//   * request coalescing: concurrent requests with equal fingerprints
//     share one enumeration — the first becomes the owner, the rest block
//     on its completion and receive the same answer;
//   * a second-chance memo cache: evicting a result parks its rule-3
//     dominant-path memo, so re-enumerating an evicted key warm-starts
//     pruning (bit-identical answer, less work; ft/enumerator.h
//     shared_memo contract);
//   * bounded admission: at most max_inflight distinct enumerations run
//     concurrently; excess misses bypass the cache and enumerate
//     uncached, so an overload of cold keys cannot wedge the cache;
//   * optional async admission of whole requests on a work-stealing
//     TaskPool (AdviseAsync), with caller-runs fallback when the pool's
//     queues are full.
//
// Serving invariant: a cached, coalesced, warm-started or bypassed answer
// is bit-identical to a fresh one-shot enumeration of the same request —
// the cache can only change latency, never the plan (DESIGN.md §12).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/advisor.h"
#include "api/fingerprint.h"
#include "common/task_pool.h"
#include "ft/explain.h"

namespace xdbft::api {

/// \brief One best-FT-plan request: the optimizer's candidate plans plus
/// the cluster state and model constants they should be judged under.
struct AdvisorRequest {
  std::vector<plan::Plan> candidates;
  cost::ClusterStats cluster;
  cost::CostModelParams model;
};

/// \brief Serving knobs.
struct AdvisorServiceOptions {
  /// Cached results across all shards; at least one per shard is kept.
  size_t cache_capacity = 4096;
  /// Parked dominant-path memos of evicted results (second-chance warm
  /// starts); 0 disables the memo cache.
  size_t memo_cache_capacity = 1024;
  /// Cache shards; the fingerprint's high hash word selects the shard.
  int num_shards = 8;
  /// Concurrent distinct enumerations admitted into the cache; further
  /// misses enumerate uncached (counted as bypassed). 0 = never admit
  /// (every request bypasses; useful as a no-cache baseline).
  int max_inflight = 64;
  /// false = serve every request by fresh enumeration (cold baseline for
  /// the perf_advisor load generator).
  bool cache_enabled = true;
  /// Workers of the service-owned TaskPool that AdviseAsync admits
  /// requests on; 0 = AdviseAsync degenerates to a synchronous call.
  int server_threads = 0;
  /// Enumeration configuration shared by every request (pruning rules,
  /// per-enumeration worker threads). trace/shared_memo are overridden
  /// per call by the service.
  ft::EnumerationOptions enumeration;
  /// Cluster-state invalidation: when the relative drift (failure-rate
  /// space, ft::ClusterDrift) between an entry's assumed MTBF/burst-MTBF
  /// and the service's *observed* statistics exceeds this threshold, the
  /// entry is evicted on the next RecordObservation — its cached plan was
  /// optimized for a cluster that no longer exists. <= 0 disables the
  /// automatic sweep (InvalidateDrifted can still be called manually).
  double drift_threshold = 0.5;
};

/// \brief Monotonic serving counters (snapshot via AdvisorService::stats).
struct AdvisorServiceStats {
  uint64_t requests = 0;
  /// Served from a ready cache entry (no enumeration, no waiting).
  uint64_t hits = 0;
  /// Enumerated and inserted (the coalescing owners).
  uint64_t misses = 0;
  /// Waited on another request's in-flight enumeration of the same key.
  uint64_t coalesced = 0;
  /// Ready entries evicted by LRU.
  uint64_t evictions = 0;
  /// Enumerated uncached: admission bound hit, cache disabled, or a
  /// 128-bit hash collision with a different canonical key.
  uint64_t bypassed = 0;
  /// Misses whose enumeration started from a parked (evicted) memo.
  uint64_t memo_warm_starts = 0;
  /// Requests answered with a non-OK status (never cached).
  uint64_t errors = 0;
  /// AdviseAsync submissions that ran caller-inline (pool full/absent).
  uint64_t async_inline = 0;
  /// Executions folded into the observed-cluster accumulator.
  uint64_t observations = 0;
  /// Ready entries evicted because their assumed cluster statistics
  /// drifted past drift_threshold from the observed ones.
  uint64_t drift_invalidations = 0;
  /// Point-in-time: distinct enumerations currently running under the
  /// admission bound, and ready entries resident across all shards.
  uint64_t inflight = 0;
  uint64_t entries = 0;
  uint64_t memo_entries = 0;

  /// \brief Fraction of requests served from a ready entry.
  double hit_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }
};

class AdvisorService {
 public:
  using Callback = std::function<void(Result<ft::SchemePlan>)>;

  /// \brief `default_cluster`/`default_model` serve the single-plan
  /// convenience overload; explicit AdvisorRequests carry their own.
  explicit AdvisorService(cost::ClusterStats default_cluster,
                          cost::CostModelParams default_model = {},
                          AdvisorServiceOptions options = {});
  ~AdvisorService();

  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  /// \brief Answer one request, serving from the cache when possible.
  /// Thread-safe; concurrent equal requests share one enumeration.
  Result<ft::SchemePlan> Advise(const AdvisorRequest& request);

  /// \brief Convenience: one plan under the service's default cluster
  /// state and model constants.
  Result<ft::SchemePlan> Advise(const plan::Plan& plan);

  /// \brief Admit `request` on the service TaskPool and invoke `done`
  /// with the answer from a pool worker. Falls back to running inline on
  /// the calling thread when the pool is saturated or server_threads == 0
  /// (caller-runs backpressure; `done` is always invoked exactly once,
  /// before the call returns in the inline case).
  void AdviseAsync(AdvisorRequest request, Callback done);

  AdvisorServiceStats stats() const;

  /// \brief Observed failure statistics accumulated from executions the
  /// caller fed back via RecordObservation.
  struct ObservedClusterState {
    double node_seconds = 0.0;  ///< sum of runtime * num_nodes
    double wall_seconds = 0.0;  ///< sum of runtime
    uint64_t failures = 0;
    uint64_t correlated_failures = 0;  ///< burst events (multi-node)
    uint64_t observations = 0;

    /// \brief Observed per-node MTBF; 0 while no failure was seen.
    double mtbf_seconds() const {
      return failures == 0 ? 0.0
                           : node_seconds / static_cast<double>(failures);
    }
    /// \brief Observed mean seconds between burst events; 0 while none
    /// was seen.
    double burst_mtbf_seconds() const {
      return correlated_failures == 0
                 ? 0.0
                 : wall_seconds / static_cast<double>(correlated_failures);
    }
  };

  /// \brief Fold one instrumented execution (the PR-1 predicted-vs-
  /// observed accuracy signal) into the observed cluster state, then — when
  /// options().drift_threshold > 0 — evict every cached entry whose
  /// assumed MTBF/correlation drifted past the threshold. Thread-safe.
  /// `correlated_failures` counts the observed.failures that arrived in
  /// multi-node bursts.
  void RecordObservation(const ft::ObservedExecution& observed,
                         int num_nodes, int correlated_failures = 0);

  /// \brief Sweep the cache against the current observed cluster state and
  /// evict drifted entries (their memos are dropped, not parked: a memo of
  /// a stale cluster would mis-prune the re-optimized search). Returns the
  /// number of entries evicted. No-op until at least one failure (or
  /// burst) has been observed — "no evidence" is not drift.
  size_t InvalidateDrifted();

  ObservedClusterState observed_cluster() const;

  /// \brief Per-entry cache metrics, hottest first.
  struct EntryInfo {
    std::string fingerprint;  // RequestFingerprint::Hex()
    uint64_t hits = 0;
    uint64_t coalesced = 0;
  };
  std::vector<EntryInfo> EntrySnapshot() const;

  const AdvisorServiceOptions& options() const { return options_; }

 private:
  struct Entry;
  struct Shard;

  Shard& ShardFor(const RequestFingerprint& fp) const;
  /// \brief One fresh enumeration (no caching); `memo` may warm rule 3.
  Result<ft::SchemePlan> Enumerate(const AdvisorRequest& request,
                                   ft::ConcurrentDominantPathMemo* memo);
  Result<ft::SchemePlan> AdviseCached(const AdvisorRequest& request,
                                      const RequestFingerprint& fp);

  cost::ClusterStats default_cluster_;
  cost::CostModelParams default_model_;
  AdvisorServiceOptions options_;
  size_t shard_capacity_ = 0;       // ready entries per shard
  size_t memo_shard_capacity_ = 0;  // parked memos per shard

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<TaskPool> server_pool_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bypassed_{0};
  std::atomic<uint64_t> memo_warm_starts_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> async_inline_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> drift_invalidations_{0};

  mutable std::mutex observed_mu_;  // guards observed_
  ObservedClusterState observed_;
};

}  // namespace xdbft::api
