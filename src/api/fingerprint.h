// Canonical fingerprint of one advisory request: the exact inputs of
// findBestFTPlan — candidate plan shapes with their tr/tm statistics,
// cluster statistics (n, MTBF, MTTR), cost-model constants and the pruning
// configuration — folded into a canonical word stream plus a 128-bit hash.
//
// Two requests with equal fingerprints are guaranteed to receive the same
// [P, M_P] from the enumerator (it is deterministic in these inputs), so
// the AdvisorService can serve one request's answer to the other. Display
// properties that cannot influence the choice — plan names and operator
// labels — are deliberately excluded: renaming every node of a plan yields
// the same fingerprint ("same plan shape, same key").
//
// Collision safety: the AdvisorService compares the full canonical word
// stream, not just the 128-bit hash, before serving a cached answer; a
// hash collision therefore degrades to a cache bypass, never to a wrong
// plan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ft/enumerator.h"
#include "plan/plan.h"

namespace xdbft::api {

/// \brief Canonical identity of one best-FT-plan request.
struct RequestFingerprint {
  /// 128-bit hash of `words` (two independently seeded lanes); the cache's
  /// shard selector and map key.
  uint64_t hi = 0;
  uint64_t lo = 0;
  /// The canonical encoding itself, kept for exact equality checks.
  std::vector<uint64_t> words;

  bool operator==(const RequestFingerprint& other) const {
    return hi == other.hi && lo == other.lo && words == other.words;
  }
  bool operator!=(const RequestFingerprint& other) const {
    return !(*this == other);
  }

  /// \brief 32-hex-digit rendering of the hash (log/debug identity).
  std::string Hex() const;
};

/// \brief Fingerprint the inputs of one ApplyCostBasedScheme call.
///
/// Covered: per candidate, in order, every node's input edges, operator
/// type, materialization constraint, tr(o), tm(o), output cardinality and
/// row width; the cluster statistics; the cost-model constants; the
/// pruning rules and max_free_operators. Excluded: plan names, node
/// labels (renaming-invariant) and execution knobs that cannot change the
/// chosen plan (num_threads, trace sinks, shared_memo).
///
/// Candidate order matters: the enumerator's deterministic tie-break is
/// (cost, plan index, mask), so permuting candidates can change which of
/// two cost-tied plans wins.
RequestFingerprint FingerprintRequest(
    const std::vector<plan::Plan>& candidates, const ft::FtCostContext& context,
    const ft::EnumerationOptions& options);

}  // namespace xdbft::api
