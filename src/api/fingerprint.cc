#include "api/fingerprint.h"

#include <bit>

#include "common/rng.h"
#include "common/string_util.h"

namespace xdbft::api {

namespace {

/// Fold one word into a running 64-bit state with the splitmix64
/// finalizer — every input bit diffuses into the state before the next
/// word lands, so transposed or truncated streams hash differently.
uint64_t Mix(uint64_t state, uint64_t word) {
  uint64_t s = state ^ word;
  return SplitMix64(s);
}

uint64_t DoubleWord(double v) {
  // +0.0 and -0.0 compare equal but differ in bits; canonicalize so two
  // requests that the cost model cannot tell apart share a fingerprint.
  if (v == 0.0) v = 0.0;
  return std::bit_cast<uint64_t>(v);
}

class WordStream {
 public:
  explicit WordStream(std::vector<uint64_t>* out) : out_(out) {}

  void Add(uint64_t w) { out_->push_back(w); }
  void Add(double v) { Add(DoubleWord(v)); }
  void Add(int v) { Add(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void Add(bool v) { Add(static_cast<uint64_t>(v ? 1 : 0)); }

 private:
  std::vector<uint64_t>* out_;
};

}  // namespace

std::string RequestFingerprint::Hex() const {
  return StrFormat("%016llx%016llx", static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(lo));
}

RequestFingerprint FingerprintRequest(
    const std::vector<plan::Plan>& candidates,
    const ft::FtCostContext& context,
    const ft::EnumerationOptions& options) {
  RequestFingerprint fp;
  WordStream w(&fp.words);

  // Format version: bump when the encoding changes so persisted keys (if
  // any ever exist) cannot alias across releases.
  w.Add(uint64_t{0x7864626674763033ULL});  // "xdbftv03"

  // Cluster statistics, including the correlated-failure and placement
  // dimensions (two requests differing only in burst rate or group count
  // enumerate different plans).
  w.Add(context.cluster.num_nodes);
  w.Add(context.cluster.mtbf_seconds);
  w.Add(context.cluster.mttr_seconds);
  w.Add(context.cluster.burst_mtbf_seconds);
  w.Add(context.cluster.burst_fanout);
  w.Add(context.cluster.num_placement_groups);
  w.Add(context.cluster.remote_read_penalty);

  // Cost-model constants.
  w.Add(context.model.pipe_constant);
  w.Add(context.model.cost_constant);
  w.Add(context.model.success_target);
  w.Add(context.model.exact_wasted_time);
  w.Add(context.model.scale_success_target_with_cluster);
  // Write-ahead lineage knobs (v03): toggling WAL or retuning the log
  // write / replay costs changes the chosen plan, so it must change the
  // cache key too.
  w.Add(context.model.wal_enabled);
  w.Add(context.model.wal_write_cost);
  w.Add(context.model.wal_replay_factor);

  // Enumeration knobs that shape the search space. num_threads, trace and
  // shared_memo are excluded: the chosen plan is identical at any value.
  w.Add(options.pruning.rule1);
  w.Add(options.pruning.rule2);
  w.Add(options.pruning.rule3);
  w.Add(options.pruning.memoize_dominant_paths);
  w.Add(options.max_free_operators);

  // Candidate plans, in order (the (cost, plan index, mask) tie-break
  // makes the order part of the request's identity).
  w.Add(static_cast<uint64_t>(candidates.size()));
  for (const plan::Plan& plan : candidates) {
    w.Add(static_cast<uint64_t>(plan.num_nodes()));
    for (const plan::PlanNode& node : plan.nodes()) {
      // Node ids are dense and topological by construction, so encoding
      // nodes in id order with their input id lists is canonical for the
      // DAG shape; labels and the plan name are display-only and skipped.
      w.Add(static_cast<uint64_t>(node.inputs.size()));
      for (plan::OpId input : node.inputs) {
        w.Add(static_cast<uint64_t>(static_cast<int64_t>(input)));
      }
      w.Add(static_cast<int>(node.type));
      w.Add(static_cast<int>(node.constraint));
      w.Add(node.runtime_cost);
      w.Add(node.materialize_cost);
      w.Add(node.output_rows);
      w.Add(node.row_width_bytes);
    }
  }

  // Two independently seeded lanes give a 128-bit hash; both also fold in
  // the stream length to separate prefixes.
  uint64_t hi = 0x9d3f5c44a1b20e77ULL;
  uint64_t lo = 0x2cab64f19be0d583ULL;
  for (uint64_t word : fp.words) {
    hi = Mix(hi, word);
    lo = Mix(lo, ~word);
  }
  fp.hi = Mix(hi, static_cast<uint64_t>(fp.words.size()));
  fp.lo = Mix(lo, static_cast<uint64_t>(fp.words.size()));
  return fp;
}

}  // namespace xdbft::api
