// FaultToleranceAdvisor: the high-level entry point for downstream users.
// Given an execution plan (with tr/tm statistics) and cluster statistics,
// it selects the fault-tolerant plan [P, M_P] with the minimal estimated
// runtime under mid-query failures, and can compare the classic schemes
// (all-mat / no-mat) against the cost-based choice.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "ft/scheme.h"

namespace xdbft::api {

/// \brief Estimated outcome of one scheme (cost model only; use
/// cluster::ClusterSimulator to measure under injected failures).
struct SchemeEstimate {
  ft::SchemeKind kind = ft::SchemeKind::kCostBased;
  double estimated_runtime = 0.0;
  size_t num_materialized = 0;
};

/// \brief Side-by-side estimates with the recommended scheme first.
struct SchemeComparison {
  std::vector<SchemeEstimate> estimates;
  ft::SchemeKind recommended = ft::SchemeKind::kCostBased;
};

/// \brief High-level facade over the cost-based fault-tolerance scheme.
class FaultToleranceAdvisor {
 public:
  explicit FaultToleranceAdvisor(cost::ClusterStats cluster,
                                 cost::CostModelParams model = {},
                                 ft::EnumerationOptions options = {});

  /// \brief findBestFTPlan over a single plan: picks the materialization
  /// configuration minimizing the estimated runtime under failures.
  Result<ft::SchemePlan> ChooseBestPlan(const plan::Plan& plan) const;

  /// \brief findBestFTPlan over the optimizer's top-k candidate plans.
  Result<ft::SchemePlan> ChooseBestPlan(
      const std::vector<plan::Plan>& candidates) const;

  /// \brief Estimate all five schemes (§5.2's four plus write-ahead
  /// lineage) for `plan`.
  Result<SchemeComparison> CompareSchemes(const plan::Plan& plan) const;

  /// \brief Human-readable report of a chosen plan: configuration,
  /// estimated runtime, and the failure parameters it was chosen under.
  std::string Explain(const ft::SchemePlan& chosen) const;

  const ft::FtCostContext& context() const { return context_; }

 private:
  ft::FtCostContext context_;
  ft::EnumerationOptions options_;
};

}  // namespace xdbft::api
