#include "api/advisor_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "ft/adaptive.h"
#include "ft/ft_cost.h"
#include "obs/metrics.h"

namespace xdbft::api {

namespace {

// Map key: the 128-bit fingerprint hash. Entries additionally store the
// full canonical word stream; a lookup that matches the hash but not the
// words is a collision and is served by bypass, never from the entry.
using MapKey = std::pair<uint64_t, uint64_t>;

struct MapKeyHash {
  size_t operator()(const MapKey& k) const {
    return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
  }
};

[[maybe_unused]] double SecondsSince(
    std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

// One cache slot. Lifecycle: inserted into the shard map in the
// "computing" state (ready == false) by the coalescing owner; waiters
// block on cv. The owner publishes the decision (or error) under mu, then
// links the entry into the shard LRU (errors are erased instead — never
// cached). `memo` is created with the entry and shared with the
// enumeration as its rule-3 dominant-path memo; on eviction it is parked
// in the shard memo cache for second-chance warm starts.
struct AdvisorService::Entry {
  RequestFingerprint key;

  /// Cluster statistics the cached decision assumed (from the request at
  /// entry creation); compared against the service's observed state by
  /// InvalidateDrifted. Immutable after creation.
  double assumed_mtbf_seconds = 0.0;
  double assumed_burst_mtbf_seconds = 0.0;

  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;      // guarded by mu
  Status status;           // guarded by mu once ready
  size_t plan_index = 0;   // decision fields, immutable once ready
  ft::MaterializationConfig config;
  double estimated_cost = 0.0;
  std::vector<int> placement_groups;

  std::shared_ptr<ft::ConcurrentDominantPathMemo> memo;

  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> coalesced{0};

  // LRU bookkeeping, guarded by the owning shard's mutex.
  bool in_lru = false;
  std::list<std::shared_ptr<Entry>>::iterator lru_it;
};

struct AdvisorService::Shard {
  mutable std::mutex mu;
  std::unordered_map<MapKey, std::shared_ptr<Entry>, MapKeyHash> entries;
  /// Ready entries only, front = most recently used.
  std::list<std::shared_ptr<Entry>> lru;

  // Second-chance memo cache: dominant-path memos of evicted entries,
  // keyed by the full fingerprint (hash collisions are re-checked against
  // the stored key before adoption). Front = most recently parked.
  using ParkedMemo =
      std::pair<RequestFingerprint,
                std::shared_ptr<ft::ConcurrentDominantPathMemo>>;
  std::list<ParkedMemo> memo_lru;
  std::unordered_map<MapKey, std::list<ParkedMemo>::iterator, MapKeyHash>
      memos;
};

AdvisorService::AdvisorService(cost::ClusterStats default_cluster,
                               cost::CostModelParams default_model,
                               AdvisorServiceOptions options)
    : default_cluster_(default_cluster),
      default_model_(default_model),
      options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  if (options_.max_inflight < 0) options_.max_inflight = 0;
  const size_t n = static_cast<size_t>(options_.num_shards);
  shard_capacity_ = std::max<size_t>(1, (options_.cache_capacity + n - 1) / n);
  memo_shard_capacity_ =
      options_.memo_cache_capacity == 0
          ? 0
          : std::max<size_t>(1, (options_.memo_cache_capacity + n - 1) / n);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  if (options_.server_threads > 0) {
    server_pool_ = std::make_unique<TaskPool>(options_.server_threads);
  }
}

AdvisorService::~AdvisorService() = default;

AdvisorService::Shard& AdvisorService::ShardFor(
    const RequestFingerprint& fp) const {
  return *shards_[fp.hi % shards_.size()];
}

Result<ft::SchemePlan> AdvisorService::Enumerate(
    const AdvisorRequest& request, ft::ConcurrentDominantPathMemo* memo) {
  [[maybe_unused]] const auto t0 = std::chrono::steady_clock::now();
  ft::FtCostContext context;
  context.cluster = request.cluster;
  context.model = request.model;
  ft::EnumerationOptions opts = options_.enumeration;
  opts.shared_memo = memo;
  // ApplyCostBasedScheme would drop the chosen plan_index, which the cache
  // needs to rebuild answers from the caller's candidates; run the
  // enumerator directly and mirror its response shape (scheme.cc): the
  // answer carries the *caller's* plan, not the rule-marked working copy.
  ft::FtPlanEnumerator enumerator(context, opts);
  XDBFT_ASSIGN_OR_RETURN(ft::FtPlanChoice choice,
                         enumerator.FindBest(request.candidates));
  ft::SchemePlan out;
  out.kind = ft::SchemeKind::kCostBased;
  out.recovery = ft::RecoveryMode::kFineGrained;
  out.plan = request.candidates[choice.plan_index];
  out.plan_index = choice.plan_index;
  out.config = std::move(choice.config);
  out.estimated_cost = choice.estimated_cost;
  out.placement_groups = std::move(choice.placement_groups);
  XDBFT_HISTOGRAM_OBSERVE_MICRO("advisor_service.enumerate_seconds",
                                SecondsSince(t0));
  return out;
}

Result<ft::SchemePlan> AdvisorService::AdviseCached(
    const AdvisorRequest& request, const RequestFingerprint& fp) {
  Shard& shard = ShardFor(fp);
  const MapKey key{fp.hi, fp.lo};

  std::shared_ptr<Entry> entry;
  bool owner = false;
  bool bypass = false;
  bool warm = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (it->second->key == fp) {
        entry = it->second;
      } else {
        // 128-bit hash collision with a different canonical request.
        bypass = true;
      }
    } else if (inflight_.load(std::memory_order_relaxed) >=
               static_cast<uint64_t>(options_.max_inflight)) {
      // Admission bound: too many distinct enumerations already running.
      bypass = true;
    } else {
      entry = std::make_shared<Entry>();
      entry->key = fp;
      entry->assumed_mtbf_seconds = request.cluster.mtbf_seconds;
      entry->assumed_burst_mtbf_seconds = request.cluster.burst_mtbf_seconds;
      const auto mit = shard.memos.find(key);
      if (mit != shard.memos.end() && mit->second->first == fp) {
        entry->memo = std::move(mit->second->second);
        shard.memo_lru.erase(mit->second);
        shard.memos.erase(mit);
        warm = true;
      } else {
        entry->memo = std::make_shared<ft::ConcurrentDominantPathMemo>();
      }
      shard.entries.emplace(key, entry);
      inflight_.fetch_add(1, std::memory_order_relaxed);
      owner = true;
    }
  }

  if (bypass) {
    bypassed_.fetch_add(1, std::memory_order_relaxed);
    XDBFT_COUNTER_INC("advisor_service.bypassed");
    return Enumerate(request, nullptr);
  }

  if (owner) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    XDBFT_COUNTER_INC("advisor_service.misses");
    if (warm) {
      memo_warm_starts_.fetch_add(1, std::memory_order_relaxed);
      XDBFT_COUNTER_INC("advisor_service.memo_warm_starts");
    }
    Result<ft::SchemePlan> result = Enumerate(request, entry->memo.get());
    {
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      entry->ready = true;
      if (result.ok()) {
        const ft::SchemePlan& plan = result.ValueOrDie();
        entry->plan_index = plan.plan_index;
        entry->config = plan.config;
        entry->estimated_cost = plan.estimated_cost;
        entry->placement_groups = plan.placement_groups;
      } else {
        entry->status = result.status();
      }
    }
    entry->cv.notify_all();
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      if (!result.ok()) {
        // Errors are never cached: later requests retry from scratch.
        const auto it = shard.entries.find(key);
        if (it != shard.entries.end() && it->second == entry) {
          shard.entries.erase(it);
        }
      } else {
        shard.lru.push_front(entry);
        entry->lru_it = shard.lru.begin();
        entry->in_lru = true;
        while (shard.lru.size() > shard_capacity_) {
          std::shared_ptr<Entry> victim = std::move(shard.lru.back());
          shard.lru.pop_back();
          victim->in_lru = false;
          shard.entries.erase(MapKey{victim->key.hi, victim->key.lo});
          evictions_.fetch_add(1, std::memory_order_relaxed);
          XDBFT_COUNTER_INC("advisor_service.evictions");
          if (memo_shard_capacity_ > 0) {
            const MapKey vkey{victim->key.hi, victim->key.lo};
            const auto old = shard.memos.find(vkey);
            if (old != shard.memos.end()) {
              shard.memo_lru.erase(old->second);
              shard.memos.erase(old);
            }
            shard.memo_lru.emplace_front(std::move(victim->key),
                                         std::move(victim->memo));
            shard.memos[vkey] = shard.memo_lru.begin();
            while (shard.memo_lru.size() > memo_shard_capacity_) {
              const auto& back = shard.memo_lru.back();
              shard.memos.erase(MapKey{back.first.hi, back.first.lo});
              shard.memo_lru.pop_back();
            }
          }
        }
      }
    }
    return result;
  }

  // Found a live entry for this key: serve from it (hit) or wait on the
  // in-flight enumeration (coalesced).
  bool was_hit = false;
  Status status;
  size_t plan_index = 0;
  ft::MaterializationConfig config;
  double estimated_cost = 0.0;
  std::vector<int> placement_groups;
  {
    std::unique_lock<std::mutex> entry_lock(entry->mu);
    if (entry->ready) {
      was_hit = true;
    } else {
      entry->coalesced.fetch_add(1, std::memory_order_relaxed);
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      XDBFT_COUNTER_INC("advisor_service.coalesced");
      entry->cv.wait(entry_lock, [&] { return entry->ready; });
    }
    status = entry->status;
    if (status.ok()) {
      plan_index = entry->plan_index;
      config = entry->config;
      estimated_cost = entry->estimated_cost;
      placement_groups = entry->placement_groups;
    }
  }
  if (was_hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    entry->hits.fetch_add(1, std::memory_order_relaxed);
    XDBFT_COUNTER_INC("advisor_service.hits");
    std::lock_guard<std::mutex> lock(shard.mu);
    if (entry->in_lru) {
      shard.lru.splice(shard.lru.begin(), shard.lru, entry->lru_it);
      entry->lru_it = shard.lru.begin();
    }
  }
  if (!status.ok()) return status;
  if (plan_index >= request.candidates.size()) {
    return Status::Internal(
        "advisor cache entry references a candidate index out of range");
  }
  ft::SchemePlan out;
  out.kind = ft::SchemeKind::kCostBased;
  out.recovery = ft::RecoveryMode::kFineGrained;
  out.plan = request.candidates[plan_index];
  out.plan_index = plan_index;
  out.config = std::move(config);
  out.estimated_cost = estimated_cost;
  out.placement_groups = std::move(placement_groups);
  return out;
}

Result<ft::SchemePlan> AdvisorService::Advise(const AdvisorRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  XDBFT_COUNTER_INC("advisor_service.requests");
  [[maybe_unused]] const auto t0 = std::chrono::steady_clock::now();
  Result<ft::SchemePlan> out = [&]() -> Result<ft::SchemePlan> {
    if (!options_.cache_enabled) {
      bypassed_.fetch_add(1, std::memory_order_relaxed);
      XDBFT_COUNTER_INC("advisor_service.bypassed");
      return Enumerate(request, nullptr);
    }
    ft::FtCostContext context;
    context.cluster = request.cluster;
    context.model = request.model;
    const RequestFingerprint fp =
        FingerprintRequest(request.candidates, context, options_.enumeration);
    return AdviseCached(request, fp);
  }();
  XDBFT_HISTOGRAM_OBSERVE_MICRO("advisor_service.request_seconds",
                                SecondsSince(t0));
  XDBFT_GAUGE_SET("advisor_service.inflight",
                  inflight_.load(std::memory_order_relaxed));
  if (!out.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    XDBFT_COUNTER_INC("advisor_service.errors");
  }
  return out;
}

Result<ft::SchemePlan> AdvisorService::Advise(const plan::Plan& plan) {
  AdvisorRequest request;
  request.candidates.push_back(plan);
  request.cluster = default_cluster_;
  request.model = default_model_;
  return Advise(request);
}

void AdvisorService::AdviseAsync(AdvisorRequest request, Callback done) {
  auto shared_request = std::make_shared<AdvisorRequest>(std::move(request));
  auto shared_done = std::make_shared<Callback>(std::move(done));
  TaskPool::Task task = [this, shared_request, shared_done] {
    (*shared_done)(Advise(*shared_request));
  };
  if (server_pool_ != nullptr && server_pool_->TrySubmit(task)) return;
  // Pool saturated or server_threads == 0: caller-runs backpressure.
  async_inline_.fetch_add(1, std::memory_order_relaxed);
  XDBFT_COUNTER_INC("advisor_service.async_inline");
  task();
}

void AdvisorService::RecordObservation(const ft::ObservedExecution& observed,
                                       int num_nodes,
                                       int correlated_failures) {
  {
    std::lock_guard<std::mutex> lock(observed_mu_);
    observed_.wall_seconds += std::max(observed.runtime_seconds, 0.0);
    observed_.node_seconds += std::max(observed.runtime_seconds, 0.0) *
                              static_cast<double>(std::max(num_nodes, 0));
    observed_.failures += static_cast<uint64_t>(std::max(observed.failures, 0));
    observed_.correlated_failures +=
        static_cast<uint64_t>(std::max(correlated_failures, 0));
    ++observed_.observations;
  }
  XDBFT_COUNTER_INC("advisor_service.observations");
  if (options_.drift_threshold > 0.0) InvalidateDrifted();
}

AdvisorService::ObservedClusterState AdvisorService::observed_cluster() const {
  std::lock_guard<std::mutex> lock(observed_mu_);
  return observed_;
}

size_t AdvisorService::InvalidateDrifted() {
  const ObservedClusterState obs = observed_cluster();
  // No failure seen yet means no evidence about the failure process —
  // absence of data must not evict anything.
  if (obs.failures == 0 && obs.correlated_failures == 0) return 0;
  const double threshold = std::max(options_.drift_threshold, 0.0);
  size_t evicted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      Entry& entry = **it;
      // Compare in-rate-space; dimensions with no observed evidence keep
      // the assumed value (zero drift contribution).
      cost::ClusterStats assumed;
      assumed.mtbf_seconds = entry.assumed_mtbf_seconds;
      assumed.burst_mtbf_seconds = entry.assumed_burst_mtbf_seconds;
      cost::ClusterStats measured = assumed;
      if (obs.failures > 0) measured.mtbf_seconds = obs.mtbf_seconds();
      if (obs.correlated_failures > 0) {
        measured.burst_mtbf_seconds = obs.burst_mtbf_seconds();
      }
      if (!(ft::ClusterDrift(assumed, measured) > threshold)) {
        ++it;
        continue;
      }
      // Drop the entry *and* its memo (no parking): dominant paths
      // memoized under stale statistics would mis-prune the re-optimized
      // search of this key.
      entry.in_lru = false;
      shard->entries.erase(MapKey{entry.key.hi, entry.key.lo});
      it = shard->lru.erase(it);
      ++evicted;
    }
  }
  if (evicted > 0) {
    drift_invalidations_.fetch_add(evicted, std::memory_order_relaxed);
    XDBFT_COUNTER_ADD("advisor_service.drift_invalidations", evicted);
  }
  return evicted;
}

AdvisorServiceStats AdvisorService::stats() const {
  AdvisorServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bypassed = bypassed_.load(std::memory_order_relaxed);
  s.memo_warm_starts = memo_warm_starts_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.async_inline = async_inline_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.drift_invalidations =
      drift_invalidations_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(observed_mu_);
    s.observations = observed_.observations;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->lru.size();
    s.memo_entries += shard->memo_lru.size();
  }
  return s;
}

std::vector<AdvisorService::EntryInfo> AdvisorService::EntrySnapshot() const {
  std::vector<EntryInfo> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& entry : shard->lru) {
      EntryInfo info;
      info.fingerprint = entry->key.Hex();
      info.hits = entry->hits.load(std::memory_order_relaxed);
      info.coalesced = entry->coalesced.load(std::memory_order_relaxed);
      out.push_back(std::move(info));
    }
  }
  std::sort(out.begin(), out.end(), [](const EntryInfo& a, const EntryInfo& b) {
    if (a.hits != b.hits) return a.hits > b.hits;
    return a.fingerprint < b.fingerprint;
  });
  return out;
}

}  // namespace xdbft::api
