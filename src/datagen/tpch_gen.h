// Deterministic, referentially consistent TPC-H data generator (dbgen
// substitute): produces the eight benchmark tables at any scale factor
// with the official cardinality scaling rules, seeded so that repeated
// generation is identical. Value distributions follow the TPC-H spec in
// spirit (uniform keys, 1-7 lineitems per order, date ranges over the
// 7-year 1992-1998 window) without reproducing dbgen's exact text grammar.
#pragma once

#include "catalog/tpch_catalog.h"
#include "common/result.h"
#include "common/rng.h"
#include "exec/operators.h"

namespace xdbft::datagen {

/// \brief TPC-H dates are int64 days since 1992-01-01; the window spans
/// 7 years (matching the paper's "1 year of 7" ORDERS selectivity).
constexpr int64_t kDateEpochDays = 0;
constexpr int64_t kDateRangeDays = 7 * 365;

/// \brief Generator options.
struct TpchGenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 19920101;
};

/// \brief A generated TPC-H database.
struct TpchDatabase {
  exec::Table region;
  exec::Table nation;
  exec::Table supplier;
  exec::Table customer;
  exec::Table part;
  exec::Table partsupp;
  exec::Table orders;
  exec::Table lineitem;

  const exec::Table& table(catalog::TpchTable t) const;
};

/// \brief Generate all eight tables. Scale factors below ~0.001 still
/// produce consistent (small) tables.
Result<TpchDatabase> GenerateTpch(const TpchGenOptions& options);

/// \brief Schemas of the generated tables (column order used by rows).
exec::Schema RegionSchema();
exec::Schema NationSchema();
exec::Schema SupplierSchema();
exec::Schema CustomerSchema();
exec::Schema PartSchema();
exec::Schema PartSuppSchema();
exec::Schema OrdersSchema();
exec::Schema LineitemSchema();

}  // namespace xdbft::datagen
