#include "datagen/tpch_gen.h"

#include <algorithm>

#include "common/string_util.h"

namespace xdbft::datagen {

using catalog::TpchTable;
using exec::Schema;
using exec::Table;
using exec::Value;
using exec::ValueType;

namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "HOUSEHOLD", "MACHINERY"};
const char* kReturnFlags[] = {"R", "A", "N"};
const char* kPartTypes[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                            "ECONOMY", "PROMO"};
const char* kMaterials[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

int64_t Rows(double base, double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(base * sf));
}

}  // namespace

Schema RegionSchema() {
  return {{"r_regionkey", ValueType::kInt64},
          {"r_name", ValueType::kString}};
}

Schema NationSchema() {
  return {{"n_nationkey", ValueType::kInt64},
          {"n_name", ValueType::kString},
          {"n_regionkey", ValueType::kInt64}};
}

Schema SupplierSchema() {
  return {{"s_suppkey", ValueType::kInt64},
          {"s_name", ValueType::kString},
          {"s_nationkey", ValueType::kInt64},
          {"s_acctbal", ValueType::kDouble}};
}

Schema CustomerSchema() {
  return {{"c_custkey", ValueType::kInt64},
          {"c_name", ValueType::kString},
          {"c_nationkey", ValueType::kInt64},
          {"c_mktsegment", ValueType::kString},
          {"c_acctbal", ValueType::kDouble}};
}

Schema PartSchema() {
  return {{"p_partkey", ValueType::kInt64},
          {"p_name", ValueType::kString},
          {"p_type", ValueType::kString},
          {"p_retailprice", ValueType::kDouble}};
}

Schema PartSuppSchema() {
  return {{"ps_partkey", ValueType::kInt64},
          {"ps_suppkey", ValueType::kInt64},
          {"ps_supplycost", ValueType::kDouble},
          {"ps_availqty", ValueType::kInt64}};
}

Schema OrdersSchema() {
  return {{"o_orderkey", ValueType::kInt64},
          {"o_custkey", ValueType::kInt64},
          {"o_orderdate", ValueType::kInt64},
          {"o_totalprice", ValueType::kDouble},
          {"o_orderstatus", ValueType::kString}};
}

Schema LineitemSchema() {
  return {{"l_orderkey", ValueType::kInt64},
          {"l_linenumber", ValueType::kInt64},
          {"l_partkey", ValueType::kInt64},
          {"l_suppkey", ValueType::kInt64},
          {"l_quantity", ValueType::kDouble},
          {"l_extendedprice", ValueType::kDouble},
          {"l_discount", ValueType::kDouble},
          {"l_tax", ValueType::kDouble},
          {"l_returnflag", ValueType::kString},
          {"l_linestatus", ValueType::kString},
          {"l_shipdate", ValueType::kInt64}};
}

const Table& TpchDatabase::table(TpchTable t) const {
  switch (t) {
    case TpchTable::kRegion:
      return region;
    case TpchTable::kNation:
      return nation;
    case TpchTable::kSupplier:
      return supplier;
    case TpchTable::kCustomer:
      return customer;
    case TpchTable::kPart:
      return part;
    case TpchTable::kPartSupp:
      return partsupp;
    case TpchTable::kOrders:
      return orders;
    case TpchTable::kLineitem:
      return lineitem;
  }
  return region;  // unreachable
}

Result<TpchDatabase> GenerateTpch(const TpchGenOptions& options) {
  if (!(options.scale_factor > 0.0)) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  const double sf = options.scale_factor;
  Rng rng(options.seed);
  TpchDatabase db;

  // REGION: 5 fixed rows.
  db.region.schema = RegionSchema();
  for (int64_t r = 0; r < 5; ++r) {
    db.region.rows.push_back({Value(r), Value(kRegionNames[r])});
  }

  // NATION: 25 fixed rows, 5 per region.
  db.nation.schema = NationSchema();
  for (int64_t n = 0; n < 25; ++n) {
    db.nation.rows.push_back(
        {Value(n), Value(StrFormat("NATION#%02lld",
                                   static_cast<long long>(n))),
         Value(n % 5)});
  }

  // SUPPLIER: 10,000 * SF.
  const int64_t num_suppliers = Rows(10000, sf);
  db.supplier.schema = SupplierSchema();
  db.supplier.rows.reserve(static_cast<size_t>(num_suppliers));
  for (int64_t s = 1; s <= num_suppliers; ++s) {
    db.supplier.rows.push_back(
        {Value(s),
         Value(StrFormat("Supplier#%09lld", static_cast<long long>(s))),
         Value(rng.NextInt(0, 24)),
         Value(rng.NextDouble() * 11000.0 - 1000.0)});
  }

  // CUSTOMER: 150,000 * SF.
  const int64_t num_customers = Rows(150000, sf);
  db.customer.schema = CustomerSchema();
  db.customer.rows.reserve(static_cast<size_t>(num_customers));
  for (int64_t c = 1; c <= num_customers; ++c) {
    db.customer.rows.push_back(
        {Value(c),
         Value(StrFormat("Customer#%09lld", static_cast<long long>(c))),
         Value(rng.NextInt(0, 24)), Value(kSegments[rng.NextBounded(5)]),
         Value(rng.NextDouble() * 10999.99 - 999.99)});
  }

  // PART: 200,000 * SF.
  const int64_t num_parts = Rows(200000, sf);
  db.part.schema = PartSchema();
  db.part.rows.reserve(static_cast<size_t>(num_parts));
  for (int64_t p = 1; p <= num_parts; ++p) {
    const std::string type = std::string(kPartTypes[rng.NextBounded(6)]) +
                             " " + kMaterials[rng.NextBounded(5)];
    db.part.rows.push_back(
        {Value(p),
         Value(StrFormat("Part#%09lld", static_cast<long long>(p))),
         Value(type),
         Value(900.0 + static_cast<double>(p % 1000) + 0.01 *
                                                           static_cast<double>(
                                                               p % 100))});
  }

  // PARTSUPP: 4 suppliers per part.
  db.partsupp.schema = PartSuppSchema();
  db.partsupp.rows.reserve(static_cast<size_t>(num_parts * 4));
  for (int64_t p = 1; p <= num_parts; ++p) {
    for (int64_t i = 0; i < 4; ++i) {
      const int64_t s =
          1 + (p + i * (num_suppliers / 4 + 1)) % num_suppliers;
      db.partsupp.rows.push_back({Value(p), Value(s),
                                  Value(rng.NextDouble() * 1000.0 + 1.0),
                                  Value(rng.NextInt(1, 9999))});
    }
  }

  // ORDERS: 1,500,000 * SF, uniform over customers and the 7-year window.
  const int64_t num_orders = Rows(1500000, sf);
  db.orders.schema = OrdersSchema();
  db.orders.rows.reserve(static_cast<size_t>(num_orders));
  std::vector<int64_t> order_dates(static_cast<size_t>(num_orders));
  for (int64_t o = 1; o <= num_orders; ++o) {
    const int64_t date = rng.NextInt(0, kDateRangeDays - 1);
    order_dates[static_cast<size_t>(o - 1)] = date;
    db.orders.rows.push_back({Value(o),
                              Value(rng.NextInt(1, num_customers)),
                              Value(date),
                              Value(rng.NextDouble() * 400000.0 + 900.0),
                              Value(date < kDateRangeDays / 2 ? "F" : "O")});
  }

  // LINEITEM: 1-7 items per order (avg ~4, matching 6M/1.5M at SF=1).
  db.lineitem.schema = LineitemSchema();
  db.lineitem.rows.reserve(static_cast<size_t>(num_orders) * 4);
  for (int64_t o = 1; o <= num_orders; ++o) {
    const int64_t items = rng.NextInt(1, 7);
    const int64_t odate = order_dates[static_cast<size_t>(o - 1)];
    for (int64_t ln = 1; ln <= items; ++ln) {
      const int64_t part_key = rng.NextInt(1, num_parts);
      // Pick one of the part's 4 suppliers so LINEITEM joins PARTSUPP.
      const int64_t supp_index = rng.NextInt(0, 3);
      const int64_t supp_key =
          1 + (part_key + supp_index * (num_suppliers / 4 + 1)) %
                  num_suppliers;
      const double qty = static_cast<double>(rng.NextInt(1, 50));
      const double price = qty * (900.0 + static_cast<double>(
                                              part_key % 1000));
      const int64_t ship = std::min<int64_t>(kDateRangeDays - 1,
                                             odate + rng.NextInt(1, 121));
      db.lineitem.rows.push_back(
          {Value(o), Value(ln), Value(part_key), Value(supp_key),
           Value(qty), Value(price),
           Value(0.01 * static_cast<double>(rng.NextInt(0, 10))),
           Value(0.01 * static_cast<double>(rng.NextInt(0, 8))),
           Value(kReturnFlags[rng.NextBounded(3)]),
           Value(ship < kDateRangeDays / 2 ? "F" : "O"), Value(ship)});
    }
  }
  return db;
}

}  // namespace xdbft::datagen
