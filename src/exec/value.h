// Value/Row model of the in-process execution engine: a small dynamically
// typed value (int64 / double / string / null) with comparisons and
// hashing, and rows as value vectors.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace xdbft::exec {

/// \brief Column type tags.
enum class ValueType : int { kNull, kInt64, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// \brief A dynamically typed SQL-ish value. Dates are stored as kInt64
/// days since 1992-01-01 (the TPC-H epoch).
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(int64_t i) : v_(i) {}            // NOLINT(runtime/explicit)
  Value(int i) : v_(int64_t{i}) {}       // NOLINT(runtime/explicit)
  Value(double d) : v_(d) {}             // NOLINT(runtime/explicit)
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT(runtime/explicit)
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  ValueType type() const;

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// \brief Three-way comparison; nulls sort first; numeric types compare
  /// by value (int vs double allowed). Comparing string to numeric aborts.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// \brief Hash compatible with ==: numerically equal int/double hash the
  /// same.
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// \brief A row of values.
using Row = std::vector<Value>;

/// \brief Hash of a key tuple (subset of row columns).
size_t HashKey(const Row& row, const std::vector<int>& key_columns);

/// \brief Extract a key tuple from a row.
Row ExtractKey(const Row& row, const std::vector<int>& key_columns);

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : row) {
      h ^= v.Hash();
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

}  // namespace xdbft::exec
