// Shared aggregate core: AggFunc/AggSpec (the aggregate description) and
// the accumulate/finalize kernels. Both the row-engine HashAggregateOperator
// and the vectorized aggregate sink (pipeline.cc) call these, so SQL NULL
// semantics cannot diverge between the two engines:
//   - COUNT(expr) counts only non-NULL arguments; COUNT(*) is the
//     null-argument form and counts rows.
//   - SUM/AVG over zero non-NULL inputs is NULL (not 0).
//   - MIN/MAX ignore NULLs and are NULL when no input survives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/expr.h"
#include "exec/value.h"

namespace xdbft::exec {

/// \brief Aggregate functions.
enum class AggFunc : int { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  /// Argument; nullptr means COUNT(*) (only valid for kCount).
  Expr::Ptr arg;
  std::string name = "agg";
};

/// \brief Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;  // non-NULL inputs seen (rows for COUNT(*))
  double sum = 0.0;
  Value min, max;
};

/// \brief Every non-count spec needs an argument expression.
inline Status ValidateAggSpecs(const std::vector<AggSpec>& aggs) {
  for (const auto& a : aggs) {
    if (a.func != AggFunc::kCount && a.arg == nullptr) {
      return Status::InvalidArgument("aggregate '" + a.name +
                                     "' needs an argument expression");
    }
  }
  return Status::OK();
}

/// \brief Fold one evaluated argument into `state`. NULL inputs are
/// skipped for every function, including COUNT(expr).
inline void AccumulateValue(AggFunc func, const Value& v, AggState* state) {
  if (v.is_null()) return;
  ++state->count;
  switch (func) {
    case AggFunc::kSum:
    case AggFunc::kAvg:
      state->sum += v.AsDouble();
      break;
    case AggFunc::kMin:
      if (state->min.is_null() || v < state->min) state->min = v;
      break;
    case AggFunc::kMax:
      if (state->max.is_null() || state->max < v) state->max = v;
      break;
    case AggFunc::kCount:
      break;
  }
}

/// \brief COUNT(*): counts the row regardless of any value.
inline void AccumulateStar(AggState* state) { ++state->count; }

/// \brief Final value of one aggregate. SUM and AVG of zero non-NULL
/// inputs are NULL (SQL semantics), as are MIN/MAX.
inline Value FinalizeAgg(AggFunc func, const AggState& state) {
  switch (func) {
    case AggFunc::kCount:
      return Value(state.count);
    case AggFunc::kSum:
      return state.count == 0 ? Value() : Value(state.sum);
    case AggFunc::kAvg:
      return state.count == 0
                 ? Value()
                 : Value(state.sum / static_cast<double>(state.count));
    case AggFunc::kMin:
      return state.min;
    case AggFunc::kMax:
      return state.max;
  }
  return Value();
}

}  // namespace xdbft::exec
