// Schema: named, typed columns of a table or operator output.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/value.h"

namespace xdbft::exec {

struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// \brief Ordered set of columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> cols) : cols_(cols) {}
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t num_columns() const { return cols_.size(); }
  const Column& column(int i) const { return cols_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// \brief Index of the column named `name`, or error.
  Result<int> Find(const std::string& name) const;

  /// \brief Index or -1 (no error allocation) for hot paths.
  int FindOrNegative(const std::string& name) const;

  /// \brief Concatenation (join output schema); duplicate names get a
  /// "right." prefix on the right side.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> cols_;
};

}  // namespace xdbft::exec
