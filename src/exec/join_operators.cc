// Nested-loop (theta) join and sort-merge equi join.
#include <algorithm>

#include "common/logging.h"
#include "exec/operators.h"

namespace xdbft::exec {

namespace {

class NestedLoopJoinOperator final : public Operator {
 public:
  NestedLoopJoinOperator(OperatorPtr left, OperatorPtr right,
                         Expr::Ptr predicate)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicate_(std::move(predicate)) {
    schema_ = Schema::Concat(left_->schema(), right_->schema());
  }

  Status Open() override {
    if (predicate_ == nullptr) {
      return Status::InvalidArgument("null join predicate");
    }
    XDBFT_RETURN_NOT_OK(left_->Open());
    left_rows_.clear();
    Row row;
    while (true) {
      XDBFT_ASSIGN_OR_RETURN(const bool more, left_->Next(&row));
      if (!more) break;
      left_rows_.push_back(row);
    }
    left_->Close();
    XDBFT_RETURN_NOT_OK(right_->Open());
    left_pos_ = left_rows_.size();  // force fetching the first right row
    have_right_ = false;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (!have_right_ || left_pos_ >= left_rows_.size()) {
        XDBFT_ASSIGN_OR_RETURN(const bool more, right_->Next(&right_row_));
        if (!more) return false;
        have_right_ = true;
        left_pos_ = 0;
      }
      while (left_pos_ < left_rows_.size()) {
        const Row& l = left_rows_[left_pos_++];
        combined_ = l;
        combined_.insert(combined_.end(), right_row_.begin(),
                         right_row_.end());
        if (predicate_->EvalBool(combined_)) {
          *out = combined_;
          return true;
        }
      }
    }
  }

  void Close() override {
    right_->Close();
    left_rows_.clear();
  }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  Expr::Ptr predicate_;
  Schema schema_;
  std::vector<Row> left_rows_;
  size_t left_pos_ = 0;
  Row right_row_;
  Row combined_;
  bool have_right_ = false;
};

class MergeJoinOperator final : public Operator {
 public:
  MergeJoinOperator(OperatorPtr left, OperatorPtr right, int left_key,
                    int right_key)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_(left_key),
        right_key_(right_key) {
    schema_ = Schema::Concat(left_->schema(), right_->schema());
  }

  Status Open() override {
    if (left_key_ < 0 || right_key_ < 0) {
      return Status::InvalidArgument("merge join: bad key columns");
    }
    XDBFT_RETURN_NOT_OK(Buffer(left_.get(), left_key_, &lrows_));
    XDBFT_RETURN_NOT_OK(Buffer(right_.get(), right_key_, &rrows_));
    li_ = ri_ = 0;
    group_l_end_ = group_r_end_ = 0;
    gl_ = gr_ = 0;
    in_group_ = false;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (in_group_) {
        if (gr_ < group_r_end_) {
          *out = lrows_[gl_];
          out->insert(out->end(), rrows_[gr_].begin(), rrows_[gr_].end());
          ++gr_;
          return true;
        }
        // Next left row of the group.
        ++gl_;
        gr_ = ri_;
        if (gl_ >= group_l_end_) {
          in_group_ = false;
          li_ = group_l_end_;
          ri_ = group_r_end_;
        }
        continue;
      }
      if (li_ >= lrows_.size() || ri_ >= rrows_.size()) return false;
      const int c = lrows_[li_][static_cast<size_t>(left_key_)].Compare(
          rrows_[ri_][static_cast<size_t>(right_key_)]);
      if (c < 0) {
        ++li_;
      } else if (c > 0) {
        ++ri_;
      } else {
        // Key group boundaries on both sides.
        const Value& key = lrows_[li_][static_cast<size_t>(left_key_)];
        group_l_end_ = li_;
        while (group_l_end_ < lrows_.size() &&
               lrows_[group_l_end_][static_cast<size_t>(left_key_)]
                       .Compare(key) == 0) {
          ++group_l_end_;
        }
        group_r_end_ = ri_;
        while (group_r_end_ < rrows_.size() &&
               rrows_[group_r_end_][static_cast<size_t>(right_key_)]
                       .Compare(key) == 0) {
          ++group_r_end_;
        }
        gl_ = li_;
        gr_ = ri_;
        in_group_ = true;
      }
    }
  }

  void Close() override {
    lrows_.clear();
    rrows_.clear();
  }
  const Schema& schema() const override { return schema_; }

 private:
  static Status Buffer(Operator* op, int key, std::vector<Row>* rows) {
    XDBFT_RETURN_NOT_OK(op->Open());
    rows->clear();
    Row row;
    while (true) {
      XDBFT_ASSIGN_OR_RETURN(const bool more, op->Next(&row));
      if (!more) break;
      rows->push_back(row);
    }
    op->Close();
    std::stable_sort(rows->begin(), rows->end(),
                     [key](const Row& a, const Row& b) {
                       return a[static_cast<size_t>(key)].Compare(
                                  b[static_cast<size_t>(key)]) < 0;
                     });
    return Status::OK();
  }

  OperatorPtr left_;
  OperatorPtr right_;
  int left_key_;
  int right_key_;
  Schema schema_;
  std::vector<Row> lrows_, rrows_;
  size_t li_ = 0, ri_ = 0;
  size_t group_l_end_ = 0, group_r_end_ = 0;
  size_t gl_ = 0, gr_ = 0;
  bool in_group_ = false;
};

}  // namespace

OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               Expr::Ptr predicate) {
  return std::make_unique<NestedLoopJoinOperator>(
      std::move(left), std::move(right), std::move(predicate));
}

OperatorPtr MakeMergeJoin(OperatorPtr left, OperatorPtr right, int left_key,
                          int right_key) {
  return std::make_unique<MergeJoinOperator>(std::move(left),
                                             std::move(right), left_key,
                                             right_key);
}

}  // namespace xdbft::exec
