#include "exec/pipeline.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <numeric>
#include <unordered_map>
#include <utility>

namespace xdbft::exec {

namespace {

std::shared_ptr<VecNode> NewNode(VecOp op,
                                 std::vector<VecNodePtr> children) {
  auto n = std::make_shared<VecNode>();
  n->op = op;
  n->children = std::move(children);
  return n;
}

}  // namespace

VecNodePtr VScan(const Table* table) {
  auto n = NewNode(VecOp::kScan, {});
  n->table = table;
  if (table != nullptr) n->schema = table->schema;
  return n;
}

VecNodePtr VFilter(VecNodePtr input, Expr::Ptr predicate) {
  auto n = NewNode(VecOp::kFilter, {input});
  n->schema = input->schema;
  n->predicate = std::move(predicate);
  return n;
}

VecNodePtr VProject(VecNodePtr input, std::vector<Expr::Ptr> exprs,
                    std::vector<std::string> names) {
  auto n = NewNode(VecOp::kProject, {std::move(input)});
  n->exprs = std::move(exprs);
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (auto& name : names) cols.push_back({std::move(name), ValueType::kNull});
  n->schema = Schema(std::move(cols));
  return n;
}

VecNodePtr VHashJoin(VecNodePtr build, VecNodePtr probe,
                     std::vector<int> build_keys,
                     std::vector<int> probe_keys) {
  auto n = NewNode(VecOp::kHashJoin, {build, probe});
  n->schema = Schema::Concat(probe->schema, build->schema);
  n->build_keys = std::move(build_keys);
  n->probe_keys = std::move(probe_keys);
  return n;
}

VecNodePtr VNestedLoopJoin(VecNodePtr left, VecNodePtr right,
                           Expr::Ptr predicate) {
  auto n = NewNode(VecOp::kNestedLoopJoin, {left, right});
  n->schema = Schema::Concat(left->schema, right->schema);
  n->predicate = std::move(predicate);
  return n;
}

VecNodePtr VMergeJoin(VecNodePtr left, VecNodePtr right, int left_key,
                      int right_key) {
  auto n = NewNode(VecOp::kMergeJoin, {left, right});
  n->schema = Schema::Concat(left->schema, right->schema);
  n->left_key = left_key;
  n->right_key = right_key;
  return n;
}

VecNodePtr VHashAggregate(VecNodePtr input, std::vector<int> group_by,
                          std::vector<AggSpec> aggs) {
  auto n = NewNode(VecOp::kHashAggregate, {input});
  std::vector<Column> cols;
  for (int g : group_by) {
    cols.push_back(n->children[0]->schema.column(g));
  }
  for (const auto& a : aggs) cols.push_back({a.name, ValueType::kNull});
  n->schema = Schema(std::move(cols));
  n->group_by = std::move(group_by);
  n->aggs = std::move(aggs);
  return n;
}

VecNodePtr VSort(VecNodePtr input, std::vector<int> keys,
                 std::vector<bool> ascending, int64_t limit) {
  auto n = NewNode(VecOp::kSort, {input});
  n->schema = n->children[0]->schema;
  n->sort_keys = std::move(keys);
  n->ascending = std::move(ascending);
  n->limit = limit;
  return n;
}

VecNodePtr VLimit(VecNodePtr input, int64_t limit) {
  auto n = NewNode(VecOp::kLimit, {input});
  n->schema = n->children[0]->schema;
  n->limit = limit;
  return n;
}

VecNodePtr VUnionAll(std::vector<VecNodePtr> inputs) {
  auto n = NewNode(VecOp::kUnionAll, std::move(inputs));
  if (!n->children.empty()) n->schema = n->children[0]->schema;
  return n;
}

OperatorPtr ToOperator(const VecNodePtr& plan) {
  if (plan == nullptr) return nullptr;
  const VecNode& n = *plan;
  switch (n.op) {
    case VecOp::kScan:
      return MakeScan(n.table);
    case VecOp::kFilter:
      return MakeFilter(ToOperator(n.children[0]), n.predicate);
    case VecOp::kProject: {
      std::vector<std::string> names;
      names.reserve(n.schema.num_columns());
      for (const auto& c : n.schema.columns()) names.push_back(c.name);
      return MakeProject(ToOperator(n.children[0]), n.exprs,
                         std::move(names));
    }
    case VecOp::kHashJoin:
      return MakeHashJoin(ToOperator(n.children[0]),
                          ToOperator(n.children[1]), n.build_keys,
                          n.probe_keys);
    case VecOp::kNestedLoopJoin:
      return MakeNestedLoopJoin(ToOperator(n.children[0]),
                                ToOperator(n.children[1]), n.predicate);
    case VecOp::kMergeJoin:
      return MakeMergeJoin(ToOperator(n.children[0]),
                           ToOperator(n.children[1]), n.left_key,
                           n.right_key);
    case VecOp::kHashAggregate:
      return MakeHashAggregate(ToOperator(n.children[0]), n.group_by,
                               n.aggs);
    case VecOp::kSort:
      return MakeSort(ToOperator(n.children[0]), n.sort_keys, n.ascending,
                      n.limit);
    case VecOp::kLimit:
      return MakeLimit(ToOperator(n.children[0]), n.limit);
    case VecOp::kUnionAll: {
      std::vector<OperatorPtr> inputs;
      inputs.reserve(n.children.size());
      for (const auto& c : n.children) inputs.push_back(ToOperator(c));
      return MakeUnionAll(std::move(inputs));
    }
  }
  return nullptr;
}

namespace {

const char* VecOpName(VecOp op) {
  switch (op) {
    case VecOp::kScan:
      return "Scan";
    case VecOp::kFilter:
      return "Filter";
    case VecOp::kProject:
      return "Project";
    case VecOp::kHashJoin:
      return "HashJoin";
    case VecOp::kNestedLoopJoin:
      return "NestedLoopJoin";
    case VecOp::kMergeJoin:
      return "MergeJoin";
    case VecOp::kHashAggregate:
      return "HashAggregate";
    case VecOp::kSort:
      return "Sort";
    case VecOp::kLimit:
      return "Limit";
    case VecOp::kUnionAll:
      return "UnionAll";
  }
  return "?";
}

void BuildSkeletonNode(const VecNode& n, obs::OperatorProfile* out) {
  out->name = VecOpName(n.op);
  out->children.resize(n.children.size());
  for (size_t i = 0; i < n.children.size(); ++i) {
    BuildSkeletonNode(*n.children[i], &out->children[i]);
  }
}

// Memory-footprint estimates, derived after execution from the recorded
// row counts so both engines report identical numbers: materializing
// breakers are charged their output, joins their buffered build / left
// side — rows x columns x sizeof(Value), the same convention as the FT
// executor's table-size accounting.
void FinalizeMemoryEstimates(const VecNode& n, obs::OperatorProfile* p) {
  switch (n.op) {
    case VecOp::kHashAggregate:
    case VecOp::kSort:
    case VecOp::kMergeJoin:
    case VecOp::kLimit:
    case VecOp::kUnionAll:
      p->est_memory_bytes =
          p->rows_out * n.schema.num_columns() * sizeof(Value);
      break;
    case VecOp::kHashJoin:
    case VecOp::kNestedLoopJoin:
      if (!p->children.empty()) {
        p->est_memory_bytes = p->children[0].rows_out *
                              n.children[0]->schema.num_columns() *
                              sizeof(Value);
      }
      break;
    default:
      break;
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    FinalizeMemoryEstimates(*n.children[i], &p->children[i]);
  }
}

}  // namespace

void BuildProfileSkeleton(const VecNodePtr& plan,
                          obs::OperatorProfile* root) {
  if (plan == nullptr || root == nullptr) return;
  *root = obs::OperatorProfile{};
  BuildSkeletonNode(*plan, root);
}

#if !defined(XDBFT_DISABLE_METRICS)

namespace {

// Volcano-tree decorator: charges inclusive wall time of Open/Next/
// NextBatch (the operator plus everything below it) and counts produced
// rows into one skeleton node. The root decorator additionally fills the
// memory estimates at Close, when the counts are complete.
class ProfilingOperator final : public Operator {
 public:
  ProfilingOperator(OperatorPtr inner, obs::OperatorProfile* node)
      : inner_(std::move(inner)), node_(node) {}

  void set_finalize(VecNodePtr plan, obs::OperatorProfile* root) {
    finalize_plan_ = std::move(plan);
    finalize_root_ = root;
  }

  Status Open() override {
    const auto t0 = std::chrono::steady_clock::now();
    Status s = inner_->Open();
    node_->seconds += Elapsed(t0);
    return s;
  }

  Result<bool> Next(Row* out) override {
    const auto t0 = std::chrono::steady_clock::now();
    Result<bool> r = inner_->Next(out);
    node_->seconds += Elapsed(t0);
    if (r.ok() && *r) ++node_->rows_out;
    return r;
  }

  Result<bool> NextBatch(Batch* out) override {
    const auto t0 = std::chrono::steady_clock::now();
    Result<bool> r = inner_->NextBatch(out);
    node_->seconds += Elapsed(t0);
    if (r.ok() && *r) {
      ++node_->batches;
      node_->rows_out += out->num_rows();
    }
    return r;
  }

  void Close() override {
    inner_->Close();
    if (finalize_root_ != nullptr) {
      FinalizeMemoryEstimates(*finalize_plan_, finalize_root_);
    }
  }

  const Schema& schema() const override { return inner_->schema(); }

 private:
  static double Elapsed(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }

  OperatorPtr inner_;
  obs::OperatorProfile* node_;
  VecNodePtr finalize_plan_;
  obs::OperatorProfile* finalize_root_ = nullptr;
};

// Mirror of ToOperator that wraps every operator (including children) in
// a ProfilingOperator bound to the matching skeleton node.
OperatorPtr BuildProfiledTree(const VecNodePtr& plan,
                              obs::OperatorProfile* node) {
  if (plan == nullptr) return nullptr;
  const VecNode& n = *plan;
  auto child = [&](size_t i) {
    return BuildProfiledTree(n.children[i], &node->children[i]);
  };
  OperatorPtr op;
  switch (n.op) {
    case VecOp::kScan:
      op = MakeScan(n.table);
      break;
    case VecOp::kFilter:
      op = MakeFilter(child(0), n.predicate);
      break;
    case VecOp::kProject: {
      std::vector<std::string> names;
      names.reserve(n.schema.num_columns());
      for (const auto& c : n.schema.columns()) names.push_back(c.name);
      op = MakeProject(child(0), n.exprs, std::move(names));
      break;
    }
    case VecOp::kHashJoin:
      op = MakeHashJoin(child(0), child(1), n.build_keys, n.probe_keys);
      break;
    case VecOp::kNestedLoopJoin:
      op = MakeNestedLoopJoin(child(0), child(1), n.predicate);
      break;
    case VecOp::kMergeJoin:
      op = MakeMergeJoin(child(0), child(1), n.left_key, n.right_key);
      break;
    case VecOp::kHashAggregate:
      op = MakeHashAggregate(child(0), n.group_by, n.aggs);
      break;
    case VecOp::kSort:
      op = MakeSort(child(0), n.sort_keys, n.ascending, n.limit);
      break;
    case VecOp::kLimit:
      op = MakeLimit(child(0), n.limit);
      break;
    case VecOp::kUnionAll: {
      std::vector<OperatorPtr> inputs;
      inputs.reserve(n.children.size());
      for (size_t i = 0; i < n.children.size(); ++i) {
        inputs.push_back(child(i));
      }
      op = MakeUnionAll(std::move(inputs));
      break;
    }
  }
  if (op == nullptr) return nullptr;
  return std::make_unique<ProfilingOperator>(std::move(op), node);
}

}  // namespace

OperatorPtr ToOperatorProfiled(const VecNodePtr& plan,
                               obs::OperatorProfile* root) {
  if (root == nullptr) return ToOperator(plan);
  BuildProfileSkeleton(plan, root);
  OperatorPtr op = BuildProfiledTree(plan, root);
  if (op != nullptr) {
    static_cast<ProfilingOperator*>(op.get())->set_finalize(plan, root);
  }
  return op;
}

#else  // XDBFT_DISABLE_METRICS: no decorators, plain lowering.

OperatorPtr ToOperatorProfiled(const VecNodePtr& plan,
                               obs::OperatorProfile* root) {
  BuildProfileSkeleton(plan, root);
  return ToOperator(plan);
}

#endif  // XDBFT_DISABLE_METRICS

namespace {

using HashTable = std::unordered_map<Row, std::vector<Row>, RowHash, RowEq>;

void IdentitySelection(size_t n, std::vector<int32_t>* sel) {
  sel->resize(n);
  std::iota(sel->begin(), sel->end(), 0);
}

// A morsel in flight: a batch plus an optional selection vector of live
// row indices (in row order). Filters only narrow `sel`; steps and sinks
// that can consume a selection read through it, everything else calls
// Materialize() to compact the batch first. This keeps the common
// filter -> aggregate path free of row movement entirely.
struct Morsel {
  Batch batch;
  std::vector<int32_t> sel;
  bool has_sel = false;

  size_t live_rows() const {
    return has_sel ? sel.size() : batch.num_rows();
  }
  // Batch-row index of the i-th live row.
  size_t row(size_t i) const {
    return has_sel ? static_cast<size_t>(sel[i]) : i;
  }
  // Compact the batch down to the selected rows and drop the selection.
  void Materialize() {
    if (!has_sel) return;
    for (auto& col : batch.columns) {
      for (size_t i = 0; i < sel.size(); ++i) {
        col[i] = std::move(col[static_cast<size_t>(sel[i])]);
      }
      col.resize(sel.size());
    }
    has_sel = false;
  }
};

// One streaming transform, applied to a morsel in place. Steps are pure
// w.r.t. shared state (they only read build tables), so morsels can run
// them concurrently.
using StreamStep = std::function<void(Morsel*)>;

// Sort comparator shared with the row SortOperator (same key order, same
// stable_sort => identical output order including ties).
void StableSortRows(std::vector<Row>* rows, const std::vector<int>& keys,
                    const std::vector<bool>& ascending) {
  std::stable_sort(rows->begin(), rows->end(),
                   [&](const Row& a, const Row& b) {
                     for (size_t i = 0; i < keys.size(); ++i) {
                       const int c =
                           a[static_cast<size_t>(keys[i])].Compare(
                               b[static_cast<size_t>(keys[i])]);
                       if (c != 0) return ascending[i] ? c < 0 : c > 0;
                     }
                     return false;
                   });
}

/// \brief Serial consumer of one pipeline's morsel outputs. Consume is
/// called in morsel-index order (never concurrently), which pins every
/// order-sensitive effect — row append order, aggregate accumulation
/// order, group first-occurrence order — to the source row order.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Consume(Morsel&& morsel) = 0;
  virtual Result<Table> Finish() = 0;
};

class CollectSink final : public Sink {
 public:
  explicit CollectSink(const Schema& schema) { out_.schema = schema; }

  void Consume(Morsel&& morsel) override {
    morsel.Materialize();
    AppendBatchToTable(std::move(morsel.batch), &out_);
  }
  Result<Table> Finish() override { return std::move(out_); }

 private:
  Table out_;
};

class AggSink final : public Sink {
 public:
  explicit AggSink(const VecNode& node)
      : node_(node), int_keys_(node.group_by.size() == 1) {}

  void Consume(Morsel&& morsel) override {
    const Batch& batch = morsel.batch;
    const size_t n = morsel.live_rows();
    if (n == 0) return;
    // Each argument is either read directly from its batch column (bare
    // column refs, the common case; indexed by batch row) or evaluated
    // vectorized over the live rows into a scratch vector (indexed by
    // live position); null arg = COUNT(*).
    arg_vals_.resize(node_.aggs.size());
    arg_cols_.assign(node_.aggs.size(), nullptr);
    direct_.assign(node_.aggs.size(), true);
    bool need_sel = false;
    for (size_t i = 0; i < node_.aggs.size(); ++i) {
      const auto& arg = node_.aggs[i].arg;
      if (arg == nullptr) continue;
      if (arg->op() == ExprOp::kColumn) {
        arg_cols_[i] =
            &batch.columns[static_cast<size_t>(arg->column_index())];
      } else {
        need_sel = true;
      }
    }
    if (need_sel) {
      const std::vector<int32_t>* sel = &morsel.sel;
      if (!morsel.has_sel) {
        IdentitySelection(n, &sel_);
        sel = &sel_;
      }
      for (size_t i = 0; i < node_.aggs.size(); ++i) {
        if (node_.aggs[i].arg != nullptr && arg_cols_[i] == nullptr) {
          node_.aggs[i].arg->EvalVector(batch, *sel, &arg_vals_[i]);
          arg_cols_[i] = &arg_vals_[i];
          direct_[i] = false;
        }
      }
    }
    for (size_t pos = 0; pos < n; ++pos) {
      const size_t r = morsel.row(pos);
      size_t slot;
      if (int_keys_) {
        // Single int64 group key: index by the raw integer, skipping the
        // per-row variant hash of the generic Row index. Demotes to the
        // generic index (same slots, same first-occurrence order) the
        // first time a non-int64 key shows up.
        const Value& kv =
            batch.columns[static_cast<size_t>(node_.group_by[0])][r];
        if (kv.type() == ValueType::kInt64) {
          const auto [it, inserted] =
              int_index_.try_emplace(kv.AsInt64(), keys_.size());
          if (inserted) {
            keys_.push_back(Row{kv});
            states_.emplace_back(node_.aggs.size());
          }
          slot = it->second;
        } else {
          int_keys_ = false;
          for (size_t s = 0; s < keys_.size(); ++s) index_.emplace(keys_[s], s);
          slot = GenericSlot(batch, r);
        }
      } else {
        slot = GenericSlot(batch, r);
      }
      auto& states = states_[slot];
      for (size_t i = 0; i < node_.aggs.size(); ++i) {
        if (node_.aggs[i].arg == nullptr) {
          AccumulateStar(&states[i]);
        } else {
          AccumulateValue(node_.aggs[i].func,
                          (*arg_cols_[i])[direct_[i] ? r : pos],
                          &states[i]);
        }
      }
    }
  }

  Result<Table> Finish() override {
    if (keys_.empty() && node_.group_by.empty()) {
      keys_.push_back(Row{});  // empty input still yields one global row
      states_.emplace_back(node_.aggs.size());
    }
    Table out;
    out.schema = node_.schema;
    out.rows.reserve(keys_.size());
    for (size_t s = 0; s < keys_.size(); ++s) {
      Row row = std::move(keys_[s]);
      for (size_t i = 0; i < node_.aggs.size(); ++i) {
        row.push_back(FinalizeAgg(node_.aggs[i].func, states_[s][i]));
      }
      out.rows.push_back(std::move(row));
    }
    return out;
  }

 private:
  size_t GenericSlot(const Batch& batch, size_t r) {
    key_.clear();
    for (const int g : node_.group_by) {
      key_.push_back(batch.columns[static_cast<size_t>(g)][r]);
    }
    const auto it = index_.find(key_);
    if (it != index_.end()) return it->second;
    const size_t slot = keys_.size();
    index_.emplace(key_, slot);
    keys_.push_back(key_);
    states_.emplace_back(node_.aggs.size());
    return slot;
  }

  const VecNode& node_;
  std::vector<int32_t> sel_;
  std::vector<std::vector<Value>> arg_vals_;
  std::vector<const std::vector<Value>*> arg_cols_;
  std::vector<char> direct_;  // arg i indexed by batch row vs live position
  Row key_;  // scratch, reused per row
  bool int_keys_ = false;
  std::unordered_map<int64_t, size_t> int_index_;
  std::unordered_map<Row, size_t, RowHash, RowEq> index_;
  std::vector<Row> keys_;  // first-occurrence order
  std::vector<std::vector<AggState>> states_;
};

class SortSink final : public Sink {
 public:
  explicit SortSink(const VecNode& node) : node_(node) {
    out_.schema = node.schema;
  }

  void Consume(Morsel&& morsel) override {
    morsel.Materialize();
    AppendBatchToTable(std::move(morsel.batch), &out_);
  }

  Result<Table> Finish() override {
    StableSortRows(&out_.rows, node_.sort_keys, node_.ascending);
    if (node_.limit >= 0 &&
        out_.rows.size() > static_cast<size_t>(node_.limit)) {
      out_.rows.resize(static_cast<size_t>(node_.limit));
    }
    return std::move(out_);
  }

 private:
  const VecNode& node_;
  Table out_;
};

struct ExecContext {
  const VecExecOptions* opts = nullptr;
  // Materialized pipeline-breaker outputs and build hash tables; deques so
  // addresses stay stable while later pipelines reference them.
  std::deque<Table> owned_tables;
  std::deque<HashTable> hash_tables;
  int next_pipeline_id = 0;
  // Plan node -> skeleton node, filled only when profiling (and never
  // under XDBFT_DISABLE_METRICS).
  std::unordered_map<const VecNode*, obs::OperatorProfile*> profile_map;

  obs::OperatorProfile* ProfileNode(const VecNode* n) const {
    const auto it = profile_map.find(n);
    return it == profile_map.end() ? nullptr : it->second;
  }
};

// Per-task profiling accumulator for one chain slot: a worker touches only
// its own task's slots while morsels run, so the hot path takes no locks
// and shares no cache lines; RunPipeline folds the rows into the skeleton
// after the parallel region.
struct ProfAcc {
  uint64_t rows = 0;
  uint64_t batches = 0;
  double seconds = 0.0;
};

#if !defined(XDBFT_DISABLE_METRICS)
void BuildProfileMap(
    const VecNode& n, obs::OperatorProfile* p,
    std::unordered_map<const VecNode*, obs::OperatorProfile*>* map) {
  (*map)[&n] = p;
  for (size_t i = 0; i < n.children.size(); ++i) {
    BuildProfileMap(*n.children[i], &p->children[i], map);
  }
}
#endif  // !XDBFT_DISABLE_METRICS

Result<Table> ExecNode(const VecNode& node, ExecContext* ctx);

Status CheckUnionSchemas(const VecNode& node) {
  const Schema& first = node.children[0]->schema;
  for (size_t i = 1; i < node.children.size(); ++i) {
    const Schema& s = node.children[i]->schema;
    if (s.num_columns() != first.num_columns()) {
      return Status::InvalidArgument(
          "union: input " + std::to_string(i) + " has " +
          std::to_string(s.num_columns()) + " columns, expected " +
          std::to_string(first.num_columns()));
    }
    for (size_t c = 0; c < first.num_columns(); ++c) {
      const Column& a = first.column(static_cast<int>(c));
      const Column& b = s.column(static_cast<int>(c));
      const bool type_ok = a.type == b.type ||
                           a.type == ValueType::kNull ||
                           b.type == ValueType::kNull;
      if (a.name != b.name || !type_ok) {
        return Status::InvalidArgument(
            "union: column " + std::to_string(c) + " mismatch ('" +
            a.name + "' " + ValueTypeName(a.type) + " vs '" + b.name +
            "' " + ValueTypeName(b.type) + ")");
      }
    }
  }
  return Status::OK();
}

// Runs the streaming pipeline rooted at `node` (a chain of filters,
// projects and join probes over one source) and feeds `sink` in morsel
// order. Breaker children (hash-build sides, NLJ left sides, any blocking
// node used as the source) are materialized first via ExecNode.
Status RunPipeline(const VecNode& node, Sink* sink,
                   const std::string& sink_label, ExecContext* ctx) {
  std::vector<StreamStep> steps;  // collected top-down, applied bottom-up
  // Skeleton nodes of the chain, parallel to `steps` (null when not
  // profiling). The fused scan-filter keeps separate scan and filter
  // nodes so recorded row counts still match the row engine's operator
  // boundaries.
  std::vector<obs::OperatorProfile*> step_profs;
  [[maybe_unused]] obs::OperatorProfile* source_prof = nullptr;
  [[maybe_unused]] obs::OperatorProfile* fused_filter_prof = nullptr;
  const VecNode* cur = &node;
  const Table* source = nullptr;
  Expr::Ptr scan_filter;  // filter fused into the table scan, if any
  while (source == nullptr) {
    switch (cur->op) {
      case VecOp::kScan:
        if (cur->table == nullptr) {
          return Status::InvalidArgument("null table");
        }
        source = cur->table;
        source_prof = ctx->ProfileNode(cur);
        break;
      case VecOp::kFilter: {
        if (cur->predicate == nullptr) {
          return Status::InvalidArgument("null predicate");
        }
        Expr::Ptr pred = cur->predicate;
        if (cur->children[0]->op == VecOp::kScan &&
            cur->children[0]->table != nullptr) {
          // Filter directly over a table scan: fuse it into batch
          // formation so dropped rows are never copied. EvalSelection is
          // defined as "positions where EvalBool would return true", so
          // evaluating per source row preserves the selection contract
          // (and the row order) exactly.
          scan_filter = pred;
          fused_filter_prof = ctx->ProfileNode(cur);
        } else {
          steps.push_back([pred](Morsel* m) {
            if (!m->has_sel) {
              IdentitySelection(m->batch.num_rows(), &m->sel);
              m->has_sel = true;
            }
            pred->EvalSelection(m->batch, &m->sel);
          });
          step_profs.push_back(ctx->ProfileNode(cur));
        }
        cur = cur->children[0].get();
        break;
      }
      case VecOp::kProject: {
        if (cur->exprs.size() != cur->schema.num_columns()) {
          return Status::InvalidArgument(
              "project: exprs/names size mismatch");
        }
        const std::vector<Expr::Ptr> exprs = cur->exprs;
        steps.push_back([exprs](Morsel* m) {
          // EvalVector reads through the selection, so projection
          // compacts as a side effect.
          if (!m->has_sel) IdentitySelection(m->batch.num_rows(), &m->sel);
          Batch out;
          out.columns.resize(exprs.size());
          for (size_t i = 0; i < exprs.size(); ++i) {
            exprs[i]->EvalVector(m->batch, m->sel, &out.columns[i]);
          }
          m->batch = std::move(out);
          m->has_sel = false;
        });
        step_profs.push_back(ctx->ProfileNode(cur));
        cur = cur->children[0].get();
        break;
      }
      case VecOp::kHashJoin: {
        if (cur->build_keys.size() != cur->probe_keys.size() ||
            cur->build_keys.empty()) {
          return Status::InvalidArgument("join: bad key columns");
        }
        XDBFT_ASSIGN_OR_RETURN(Table built,
                               ExecNode(*cur->children[0], ctx));
        ctx->owned_tables.push_back(std::move(built));
        const Table& bt = ctx->owned_tables.back();
        ctx->hash_tables.emplace_back();
        HashTable& ht = ctx->hash_tables.back();
        for (const Row& row : bt.rows) {
          ht[ExtractKey(row, cur->build_keys)].push_back(row);
        }
        const HashTable* htp = &ht;
        const std::vector<int> pkeys = cur->probe_keys;
        const size_t build_width = bt.schema.num_columns();
        steps.push_back([htp, pkeys, build_width](Morsel* m) {
          const size_t n = m->live_rows();
          const size_t pw = m->batch.num_columns();
          Batch out;
          out.columns.resize(pw + build_width);
          Row key;
          for (size_t i = 0; i < n; ++i) {
            const size_t r = m->row(i);
            key.clear();
            for (const int k : pkeys) {
              key.push_back(m->batch.columns[static_cast<size_t>(k)][r]);
            }
            const auto it = htp->find(key);
            if (it == htp->end()) continue;
            // Matches in build-insertion order: probe columns first, then
            // build columns — the row operator's output layout and order.
            for (const Row& brow : it->second) {
              for (size_t c = 0; c < pw; ++c) {
                out.columns[c].push_back(m->batch.columns[c][r]);
              }
              for (size_t c = 0; c < build_width; ++c) {
                out.columns[pw + c].push_back(brow[c]);
              }
            }
          }
          m->batch = std::move(out);
          m->has_sel = false;
        });
        step_profs.push_back(ctx->ProfileNode(cur));
        cur = cur->children[1].get();
        break;
      }
      case VecOp::kNestedLoopJoin: {
        if (cur->predicate == nullptr) {
          return Status::InvalidArgument("null join predicate");
        }
        XDBFT_ASSIGN_OR_RETURN(Table lt, ExecNode(*cur->children[0], ctx));
        ctx->owned_tables.push_back(std::move(lt));
        const Table* left = &ctx->owned_tables.back();
        Expr::Ptr pred = cur->predicate;
        steps.push_back([left, pred](Morsel* m) {
          // The row operator buffers the left side and streams the right:
          // for each right row, every left row in order.
          const size_t n = m->live_rows();
          const size_t rw = m->batch.num_columns();
          const size_t lw = left->schema.num_columns();
          Batch out;
          out.columns.resize(lw + rw);
          Row combined;
          for (size_t i = 0; i < n; ++i) {
            const size_t r = m->row(i);
            for (const Row& l : left->rows) {
              combined = l;
              for (size_t c = 0; c < rw; ++c) {
                combined.push_back(m->batch.columns[c][r]);
              }
              if (pred->EvalBool(combined)) {
                for (size_t c = 0; c < combined.size(); ++c) {
                  out.columns[c].push_back(std::move(combined[c]));
                }
              }
            }
          }
          m->batch = std::move(out);
          m->has_sel = false;
        });
        step_profs.push_back(ctx->ProfileNode(cur));
        cur = cur->children[1].get();
        break;
      }
      default: {
        // Pipeline breaker used as a source: materialize it.
        XDBFT_ASSIGN_OR_RETURN(Table t, ExecNode(*cur, ctx));
        ctx->owned_tables.push_back(std::move(t));
        source = &ctx->owned_tables.back();
        break;
      }
    }
  }
  std::reverse(steps.begin(), steps.end());
  std::reverse(step_profs.begin(), step_profs.end());

  const VecExecOptions& opts = *ctx->opts;
  const size_t morsel = std::max<size_t>(1, opts.morsel_rows);
  const size_t nrows = source->num_rows();
  const size_t nmorsels = nrows == 0 ? 0 : (nrows + morsel - 1) / morsel;

  const int pipeline_id = ctx->next_pipeline_id++;
  const int lane = opts.trace_lane_base + pipeline_id;
  if (opts.trace != nullptr) {
    opts.trace->SetThreadName(/*pid=*/0, lane,
                              "pipeline " + std::to_string(pipeline_id) +
                                  " (" + sink_label + ")");
  }
  obs::ScopedTraceSpan span(
      opts.trace, "pipeline " + std::to_string(pipeline_id), "vec_exec",
      lane,
      {obs::IntArg("rows", static_cast<int64_t>(nrows)),
       obs::IntArg("morsels", static_cast<int64_t>(nmorsels)),
       obs::IntArg("steps", static_cast<int64_t>(steps.size())),
       obs::StrArg("sink", sink_label)});

  // Profiling slot layout per task: [0] source batch formation, [1] the
  // fused filter when present, then one slot per streaming step. The
  // morsel loop writes only its own task's accumulator row; the fold
  // below is the single synchronization point.
  const bool profiling = !ctx->profile_map.empty();
  const size_t nslots = 1 + (scan_filter != nullptr ? 1 : 0) + steps.size();
  std::vector<std::vector<ProfAcc>> accs;

  const auto run_morsel = [&](size_t m, Morsel* out,
                              [[maybe_unused]] ProfAcc* acc) {
    const size_t lo = m * morsel;
    const size_t hi = std::min(nrows, lo + morsel);
#if !defined(XDBFT_DISABLE_METRICS)
    std::chrono::steady_clock::time_point t0;
    if (acc != nullptr) t0 = std::chrono::steady_clock::now();
#endif
    if (scan_filter != nullptr) {
      // Fused scan-filter: evaluate the predicate on the source rows in
      // place, then copy only the survivors into the batch.
      Batch* b = &out->batch;
      const size_t ncols = source->schema.num_columns();
      b->Reset(ncols);
      scan_filter->FilterRows(source->rows, lo, hi, &out->sel);
      for (const int32_t i : out->sel) {
        const Row& row = source->rows[lo + static_cast<size_t>(i)];
        for (size_t c = 0; c < ncols; ++c) b->columns[c].push_back(row[c]);
      }
    } else {
      BatchFromTable(*source, lo, hi, &out->batch);
    }
    out->has_sel = false;
#if !defined(XDBFT_DISABLE_METRICS)
    if (acc != nullptr) {
      // The scan reports the rows it read (hi - lo); the fused filter
      // reports the survivors — the same counts the row operators yield.
      acc[0].seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      acc[0].batches += 1;
      acc[0].rows += hi - lo;
      if (scan_filter != nullptr) {
        acc[1].batches += 1;
        acc[1].rows += out->sel.size();
      }
      size_t slot = scan_filter != nullptr ? 2 : 1;
      for (const auto& step : steps) {
        const auto ts = std::chrono::steady_clock::now();
        step(out);
        ProfAcc& a = acc[slot++];
        a.seconds += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - ts)
                         .count();
        a.batches += 1;
        a.rows += out->live_rows();
      }
      return;
    }
#endif
    for (const auto& step : steps) step(out);
  };

  TaskPool* pool = opts.pool;
  if (pool != nullptr && pool->num_threads() > 0 && nmorsels > 1) {
    // Morsels run in parallel; the sink still consumes their outputs in
    // morsel-index order below, which keeps results bit-identical to the
    // serial (and row-engine) execution. Morsels are grouped into a few
    // contiguous range tasks per worker so the per-task pool overhead is
    // amortized over many morsels.
    std::vector<Morsel> outs(nmorsels);
    const size_t lanes = static_cast<size_t>(pool->num_threads()) + 1;
    const size_t ntasks = std::min(nmorsels, lanes * 4);
    if (profiling) accs.assign(ntasks, std::vector<ProfAcc>(nslots));
    pool->ParallelForEach(ntasks, [&](size_t task) {
      const size_t lo = task * nmorsels / ntasks;
      const size_t hi = (task + 1) * nmorsels / ntasks;
      ProfAcc* acc = profiling ? accs[task].data() : nullptr;
      for (size_t m = lo; m < hi; ++m) run_morsel(m, &outs[m], acc);
    });
    for (auto& m : outs) sink->Consume(std::move(m));
  } else {
    // The sinks read or move individual values out of the morsel but
    // never steal its buffers, so one morsel's capacity (batch columns
    // and selection vector) is reused for the whole loop (BatchFromTable
    // resets the batch).
    if (profiling) accs.assign(1, std::vector<ProfAcc>(nslots));
    ProfAcc* acc = profiling ? accs[0].data() : nullptr;
    Morsel m;
    for (size_t i = 0; i < nmorsels; ++i) {
      run_morsel(i, &m, acc);
      sink->Consume(std::move(m));
    }
  }

#if !defined(XDBFT_DISABLE_METRICS)
  if (profiling) {
    // Fold the per-task accumulators into the skeleton. Chain times are
    // made inclusive (each operator is charged its own busy seconds plus
    // everything upstream in the pipeline) so they compare with the row
    // engine's inclusive wall times.
    std::vector<obs::OperatorProfile*> slot_profs;
    slot_profs.reserve(nslots);
    slot_profs.push_back(source_prof);
    if (scan_filter != nullptr) slot_profs.push_back(fused_filter_prof);
    for (obs::OperatorProfile* p : step_profs) slot_profs.push_back(p);
    std::vector<ProfAcc> total(nslots);
    for (const auto& task_accs : accs) {
      for (size_t k = 0; k < nslots; ++k) {
        total[k].rows += task_accs[k].rows;
        total[k].batches += task_accs[k].batches;
        total[k].seconds += task_accs[k].seconds;
      }
    }
    double inclusive = 0.0;
    for (size_t k = 0; k < nslots; ++k) {
      inclusive += total[k].seconds;
      obs::OperatorProfile* p = slot_profs[k];
      if (p == nullptr) continue;
      p->rows_out += total[k].rows;
      p->batches += total[k].batches;
      p->seconds += inclusive;
      p->pipeline_id = pipeline_id;
    }
  }
#endif
  return Status::OK();
}

Result<Table> ExecNodeImpl(const VecNode& node, ExecContext* ctx) {
  switch (node.op) {
    case VecOp::kHashAggregate: {
      XDBFT_RETURN_NOT_OK(ValidateAggSpecs(node.aggs));
      AggSink sink(node);
      XDBFT_RETURN_NOT_OK(
          RunPipeline(*node.children[0], &sink, "aggregate", ctx));
      return sink.Finish();
    }
    case VecOp::kSort: {
      if (node.sort_keys.size() != node.ascending.size()) {
        return Status::InvalidArgument("sort: keys/direction size mismatch");
      }
      SortSink sink(node);
      XDBFT_RETURN_NOT_OK(RunPipeline(*node.children[0], &sink, "sort",
                                      ctx));
      return sink.Finish();
    }
    case VecOp::kLimit: {
      // Materialize-and-truncate (the row operator stops pulling early
      // instead; the resulting prefix is identical).
      if (node.limit < 0) return Status::InvalidArgument("negative limit");
      XDBFT_ASSIGN_OR_RETURN(Table t, ExecNode(*node.children[0], ctx));
      if (t.rows.size() > static_cast<size_t>(node.limit)) {
        t.rows.resize(static_cast<size_t>(node.limit));
      }
      return t;
    }
    case VecOp::kUnionAll: {
      if (node.children.empty()) {
        return Status::InvalidArgument("empty union");
      }
      XDBFT_RETURN_NOT_OK(CheckUnionSchemas(node));
      Table out;
      out.schema = node.schema;
      for (const auto& child : node.children) {
        XDBFT_ASSIGN_OR_RETURN(Table t, ExecNode(*child, ctx));
        for (auto& row : t.rows) out.rows.push_back(std::move(row));
      }
      return out;
    }
    case VecOp::kMergeJoin: {
      if (node.left_key < 0 || node.right_key < 0) {
        return Status::InvalidArgument("merge join: bad key columns");
      }
      XDBFT_ASSIGN_OR_RETURN(Table lt, ExecNode(*node.children[0], ctx));
      XDBFT_ASSIGN_OR_RETURN(Table rt, ExecNode(*node.children[1], ctx));
      StableSortRows(&lt.rows, {node.left_key}, {true});
      StableSortRows(&rt.rows, {node.right_key}, {true});
      Table out;
      out.schema = node.schema;
      const size_t lk = static_cast<size_t>(node.left_key);
      const size_t rk = static_cast<size_t>(node.right_key);
      size_t li = 0, ri = 0;
      while (li < lt.rows.size() && ri < rt.rows.size()) {
        const int c = lt.rows[li][lk].Compare(rt.rows[ri][rk]);
        if (c < 0) {
          ++li;
        } else if (c > 0) {
          ++ri;
        } else {
          // Cross product of the key group, left-major — the row
          // operator's emission order.
          const Value& key = lt.rows[li][lk];
          size_t lend = li, rend = ri;
          while (lend < lt.rows.size() &&
                 lt.rows[lend][lk].Compare(key) == 0) {
            ++lend;
          }
          while (rend < rt.rows.size() &&
                 rt.rows[rend][rk].Compare(key) == 0) {
            ++rend;
          }
          for (size_t l = li; l < lend; ++l) {
            for (size_t r = ri; r < rend; ++r) {
              Row row = lt.rows[l];
              row.insert(row.end(), rt.rows[r].begin(), rt.rows[r].end());
              out.rows.push_back(std::move(row));
            }
          }
          li = lend;
          ri = rend;
        }
      }
      return out;
    }
    default: {
      // Streaming root (scan / filter / project / join probes): collect.
      CollectSink sink(node.schema);
      XDBFT_RETURN_NOT_OK(RunPipeline(node, &sink, "collect", ctx));
      return sink.Finish();
    }
  }
}

Result<Table> ExecNode(const VecNode& node, ExecContext* ctx) {
#if !defined(XDBFT_DISABLE_METRICS)
  // Breaker nodes (everything ExecNodeImpl materializes itself) are
  // charged the inclusive wall time of their whole pipeline plus finish;
  // streaming chains are recorded inside RunPipeline instead.
  const bool breaker = node.op == VecOp::kHashAggregate ||
                       node.op == VecOp::kSort || node.op == VecOp::kLimit ||
                       node.op == VecOp::kUnionAll ||
                       node.op == VecOp::kMergeJoin;
  obs::OperatorProfile* prof =
      breaker ? ctx->ProfileNode(&node) : nullptr;
  if (prof != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    Result<Table> r = ExecNodeImpl(node, ctx);
    prof->seconds += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (r.ok()) {
      prof->rows_out += r->num_rows();
      prof->batches += 1;
    }
    return r;
  }
#endif
  return ExecNodeImpl(node, ctx);
}

}  // namespace

Result<Table> ExecuteVectorized(const VecNodePtr& plan,
                                const VecExecOptions& opts) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  VecExecOptions local = opts;
  std::unique_ptr<TaskPool> owned_pool;
  if (local.pool == nullptr && local.num_threads > 1) {
    // num_threads - 1 workers: the calling thread helps in
    // ParallelForEach, so total concurrency is num_threads.
    owned_pool = std::make_unique<TaskPool>(local.num_threads - 1);
    local.pool = owned_pool.get();
  }
  ExecContext ctx;
  ctx.opts = &local;
  if (local.profile != nullptr) {
    BuildProfileSkeleton(plan, local.profile);
#if !defined(XDBFT_DISABLE_METRICS)
    BuildProfileMap(*plan, local.profile, &ctx.profile_map);
#endif
  }
  Result<Table> result = ExecNode(*plan, &ctx);
#if !defined(XDBFT_DISABLE_METRICS)
  if (local.profile != nullptr && result.ok()) {
    FinalizeMemoryEstimates(*plan, local.profile);
  }
#endif
  return result;
}

Result<Table> RunPlan(const VecNodePtr& plan, bool vectorized,
                      const VecExecOptions& opts) {
  if (!vectorized) {
    const OperatorPtr op = ToOperator(plan);
    return Drain(op.get());
  }
  return ExecuteVectorized(plan, opts);
}

}  // namespace xdbft::exec
