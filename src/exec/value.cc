#include "exec/value.h"

#include <cmath>
#include <functional>

#include "common/logging.h"

namespace xdbft::exec {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

ValueType Value::type() const {
  if (std::holds_alternative<std::monostate>(v_)) return ValueType::kNull;
  if (std::holds_alternative<int64_t>(v_)) return ValueType::kInt64;
  if (std::holds_alternative<double>(v_)) return ValueType::kDouble;
  return ValueType::kString;
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(v_)) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  return std::get<double>(v_);
}

int Value::Compare(const Value& other) const {
  const bool n1 = is_null(), n2 = other.is_null();
  if (n1 || n2) return static_cast<int>(n2) - static_cast<int>(n1);
  const bool s1 = type() == ValueType::kString;
  const bool s2 = other.type() == ValueType::kString;
  XDBFT_CHECK(s1 == s2) << "comparing string with numeric value";
  if (s1) {
    const int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  const double a = AsDouble(), b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Numerically equal int64/double must hash identically; integral
      // doubles hash as their integer value.
      const double d = AsDouble();
      const double r = std::nearbyint(d);
      if (r == d && std::fabs(d) < 9.2e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(r));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t HashKey(const Row& row, const std::vector<int>& key_columns) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int c : key_columns) {
    h ^= row[static_cast<size_t>(c)].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

Row ExtractKey(const Row& row, const std::vector<int>& key_columns) {
  Row key;
  key.reserve(key_columns.size());
  for (int c : key_columns) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

}  // namespace xdbft::exec
