#include "exec/schema.h"

#include "common/string_util.h"

namespace xdbft::exec {

Result<int> Schema::Find(const std::string& name) const {
  const int i = FindOrNegative(name);
  if (i < 0) {
    return Status::NotFound("no column named '" + name + "' in schema " +
                            ToString());
  }
  return i;
}

int Schema::FindOrNegative(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.cols_;
  for (const auto& c : right.cols_) {
    Column copy = c;
    if (left.FindOrNegative(c.name) >= 0) copy.name = "right." + c.name;
    cols.push_back(std::move(copy));
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(cols_.size());
  for (const auto& c : cols_) {
    parts.push_back(c.name + ":" + ValueTypeName(c.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace xdbft::exec
