// Minimal expression tree evaluated against rows: column references,
// literals, arithmetic, comparisons and boolean connectives. Used by the
// filter/project operators of the execution engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"
#include "exec/schema.h"
#include "exec/value.h"

namespace xdbft::exec {

enum class ExprOp : int {
  kColumn,   // column reference by index
  kLiteral,  // constant
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
};

/// \brief Immutable expression node; build with the factory functions
/// below. Booleans are int64 0/1.
class Expr {
 public:
  using Ptr = std::shared_ptr<const Expr>;

  ExprOp op() const { return op_; }
  int column_index() const { return column_; }
  const Value& literal() const { return literal_; }
  const std::vector<Ptr>& children() const { return children_; }

  /// \brief Evaluate against a row.
  Value Eval(const Row& row) const;

  /// \brief Evaluate as a predicate (null/0 -> false).
  bool EvalBool(const Row& row) const;

  /// \brief Vectorized evaluation over the batch positions listed in
  /// `sel`: out[i] = Eval(row sel[i]). Value-identical to the row path
  /// (same arithmetic, comparison and short-circuit semantics — AND/OR
  /// only evaluate their right child at positions the left child does not
  /// decide, exactly like Eval).
  void EvalVector(const Batch& batch, const std::vector<int32_t>& sel,
                  std::vector<Value>* out) const;

  /// \brief Vectorized predicate: filters `sel` in place, keeping the
  /// positions where EvalBool would return true (order preserved).
  void EvalSelection(const Batch& batch, std::vector<int32_t>* sel) const;

  /// \brief Row-storage counterpart of EvalSelection: clears `sel` and
  /// fills it with the offsets i (0-based from `begin`) in [begin, end)
  /// where EvalBool(rows[begin + i]) would return true, in row order.
  /// Comparisons over column/literal operands are evaluated in place.
  void FilterRows(const std::vector<Row>& rows, size_t begin, size_t end,
                  std::vector<int32_t>* sel) const;

  std::string ToString(const Schema* schema = nullptr) const;

  // Factory functions.
  static Ptr Col(int index);
  /// \brief Resolve a named column against `schema`.
  static Result<Ptr> Col(const Schema& schema, const std::string& name);
  static Ptr Lit(Value v);
  static Ptr Make(ExprOp op, std::vector<Ptr> children);

 private:
  Expr(ExprOp op, int column, Value literal, std::vector<Ptr> children)
      : op_(op),
        column_(column),
        literal_(std::move(literal)),
        children_(std::move(children)) {}

  ExprOp op_;
  int column_ = -1;
  Value literal_;
  std::vector<Ptr> children_;
};

// Convenience builders.
inline Expr::Ptr operator+(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kAdd, {std::move(a), std::move(b)});
}
inline Expr::Ptr operator-(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kSub, {std::move(a), std::move(b)});
}
inline Expr::Ptr operator*(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kMul, {std::move(a), std::move(b)});
}
inline Expr::Ptr operator/(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kDiv, {std::move(a), std::move(b)});
}
Expr::Ptr Eq(Expr::Ptr a, Expr::Ptr b);
Expr::Ptr Ne(Expr::Ptr a, Expr::Ptr b);
Expr::Ptr Lt(Expr::Ptr a, Expr::Ptr b);
Expr::Ptr Le(Expr::Ptr a, Expr::Ptr b);
Expr::Ptr Gt(Expr::Ptr a, Expr::Ptr b);
Expr::Ptr Ge(Expr::Ptr a, Expr::Ptr b);
Expr::Ptr And(Expr::Ptr a, Expr::Ptr b);
Expr::Ptr Or(Expr::Ptr a, Expr::Ptr b);
Expr::Ptr Not(Expr::Ptr a);

}  // namespace xdbft::exec
