// Pull-based (Volcano-style open/next/close) physical operators of the
// in-process execution engine: scan, filter, project, hash join, hash
// aggregate, sort, limit and union-all.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/agg.h"
#include "exec/batch.h"
#include "exec/expr.h"
#include "exec/schema.h"
#include "exec/value.h"

namespace xdbft::exec {

/// \brief Base iterator. Usage: Open() once, Next() (or NextBatch()) until
/// it yields false, Close(). Operators own their children. Re-Open without
/// an intervening Close must reset all state (recovery replays re-open
/// operator trees).
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  /// \brief Produce the next row into *out; yields false when exhausted.
  virtual Result<bool> Next(Row* out) = 0;
  /// \brief Produce up to kDefaultBatchRows rows into *out (columns reset
  /// to schema width); yields false when no rows remain. The default
  /// implementation adapts Next(); ScanOperator overrides it with a
  /// columnar transpose. Do not interleave Next() and NextBatch() calls.
  virtual Result<bool> NextBatch(Batch* out);
  virtual void Close() = 0;
  virtual const Schema& schema() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// \brief In-memory table: schema + rows (the storage substrate of the
/// engine; partitioned tables in engine/ hold one per partition).
struct Table {
  Schema schema;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }
};

/// \brief Full scan over an in-memory table (not owned).
OperatorPtr MakeScan(const Table* table);

/// \brief Rows of `input` satisfying `predicate`.
OperatorPtr MakeFilter(OperatorPtr input, Expr::Ptr predicate);

/// \brief Computed columns. `names` labels the output schema; types are
/// inferred from the first row (defaults to the expression literal type).
OperatorPtr MakeProject(OperatorPtr input, std::vector<Expr::Ptr> exprs,
                        std::vector<std::string> names);

/// \brief Equi hash join: builds a hash table on `build` (left child) keyed
/// by build_keys, probes with `probe` rows keyed by probe_keys. Output
/// schema = probe schema ++ build schema (probe row first).
OperatorPtr MakeHashJoin(OperatorPtr build, OperatorPtr probe,
                         std::vector<int> build_keys,
                         std::vector<int> probe_keys);

/// \brief Nested-loop join with an arbitrary theta predicate evaluated
/// over the concatenated row (left columns first, then right columns with
/// duplicate names prefixed "right."). The left input is buffered; the
/// right input streams. Output schema = left ++ right.
OperatorPtr MakeNestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               Expr::Ptr predicate);

/// \brief Sort-merge equi join on single key columns (inputs need not be
/// pre-sorted; both sides are buffered and sorted). Handles duplicate
/// keys on both sides (cross product per key group). Output schema =
/// left ++ right.
OperatorPtr MakeMergeJoin(OperatorPtr left, OperatorPtr right,
                          int left_key, int right_key);

// AggFunc/AggSpec live in exec/agg.h (shared with the vectorized engine).

/// \brief Group-by hash aggregation. Output schema: group columns followed
/// by one column per AggSpec. An empty `group_by` yields one global row.
/// Groups are emitted in first-occurrence order of their key in the input
/// (deterministic, engine-independent).
OperatorPtr MakeHashAggregate(OperatorPtr input, std::vector<int> group_by,
                              std::vector<AggSpec> aggs);

/// \brief Full sort by the given key columns (true = ascending); optional
/// limit after sorting (top-k).
OperatorPtr MakeSort(OperatorPtr input, std::vector<int> keys,
                     std::vector<bool> ascending,
                     int64_t limit = -1);

/// \brief First `limit` rows of the input.
OperatorPtr MakeLimit(OperatorPtr input, int64_t limit);

/// \brief Concatenation of same-schema inputs. Open fails with
/// InvalidArgument when input schemas disagree in column count, name, or
/// type (a kNull column type is a wildcard: project outputs carry it).
OperatorPtr MakeUnionAll(std::vector<OperatorPtr> inputs);

/// \brief Drain an operator tree into a materialized table.
Result<Table> Drain(Operator* op);

/// \brief Drain + wall-clock timing (used by the cost calibrator).
struct DrainStats {
  Table table;
  double wall_seconds = 0.0;
};
Result<DrainStats> DrainTimed(Operator* op);

}  // namespace xdbft::exec
