#include "exec/expr.h"

#include "common/logging.h"

namespace xdbft::exec {

Expr::Ptr Expr::Col(int index) {
  XDBFT_CHECK(index >= 0);
  return Ptr(new Expr(ExprOp::kColumn, index, Value(), {}));
}

Result<Expr::Ptr> Expr::Col(const Schema& schema, const std::string& name) {
  XDBFT_ASSIGN_OR_RETURN(const int idx, schema.Find(name));
  return Col(idx);
}

Expr::Ptr Expr::Lit(Value v) {
  return Ptr(new Expr(ExprOp::kLiteral, -1, std::move(v), {}));
}

Expr::Ptr Expr::Make(ExprOp op, std::vector<Ptr> children) {
  return Ptr(new Expr(op, -1, Value(), std::move(children)));
}

namespace {

Value Arith(ExprOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value();
  // Integer arithmetic stays integral (except division).
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64 &&
      op != ExprOp::kDiv) {
    const int64_t x = a.AsInt64(), y = b.AsInt64();
    switch (op) {
      case ExprOp::kAdd:
        return Value(x + y);
      case ExprOp::kSub:
        return Value(x - y);
      case ExprOp::kMul:
        return Value(x * y);
      default:
        break;
    }
  }
  const double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case ExprOp::kAdd:
      return Value(x + y);
    case ExprOp::kSub:
      return Value(x - y);
    case ExprOp::kMul:
      return Value(x * y);
    case ExprOp::kDiv:
      return Value(x / y);
    default:
      break;
  }
  XDBFT_CHECK(false) << "not an arithmetic op";
  return Value();
}

}  // namespace

Value Expr::Eval(const Row& row) const {
  switch (op_) {
    case ExprOp::kColumn:
      return row[static_cast<size_t>(column_)];
    case ExprOp::kLiteral:
      return literal_;
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv:
      return Arith(op_, children_[0]->Eval(row), children_[1]->Eval(row));
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      const Value a = children_[0]->Eval(row);
      const Value b = children_[1]->Eval(row);
      if (a.is_null() || b.is_null()) return Value();
      const int c = a.Compare(b);
      bool r = false;
      switch (op_) {
        case ExprOp::kEq:
          r = c == 0;
          break;
        case ExprOp::kNe:
          r = c != 0;
          break;
        case ExprOp::kLt:
          r = c < 0;
          break;
        case ExprOp::kLe:
          r = c <= 0;
          break;
        case ExprOp::kGt:
          r = c > 0;
          break;
        case ExprOp::kGe:
          r = c >= 0;
          break;
        default:
          break;
      }
      return Value(int64_t{r});
    }
    case ExprOp::kAnd: {
      // Short-circuit.
      if (!children_[0]->EvalBool(row)) return Value(int64_t{0});
      return Value(int64_t{children_[1]->EvalBool(row)});
    }
    case ExprOp::kOr: {
      if (children_[0]->EvalBool(row)) return Value(int64_t{1});
      return Value(int64_t{children_[1]->EvalBool(row)});
    }
    case ExprOp::kNot:
      return Value(int64_t{!children_[0]->EvalBool(row)});
  }
  return Value();
}

bool Expr::EvalBool(const Row& row) const {
  const Value v = Eval(row);
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt64) return v.AsInt64() != 0;
  if (v.type() == ValueType::kDouble) return v.AsDouble() != 0.0;
  return true;
}

namespace {
const char* OpSymbol(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd:
      return "+";
    case ExprOp::kSub:
      return "-";
    case ExprOp::kMul:
      return "*";
    case ExprOp::kDiv:
      return "/";
    case ExprOp::kEq:
      return "=";
    case ExprOp::kNe:
      return "<>";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    case ExprOp::kGe:
      return ">=";
    case ExprOp::kAnd:
      return "AND";
    case ExprOp::kOr:
      return "OR";
    default:
      return "?";
  }
}
}  // namespace

std::string Expr::ToString(const Schema* schema) const {
  switch (op_) {
    case ExprOp::kColumn:
      if (schema != nullptr &&
          column_ < static_cast<int>(schema->num_columns())) {
        return schema->column(column_).name;
      }
      return "$" + std::to_string(column_);
    case ExprOp::kLiteral:
      return literal_.ToString();
    case ExprOp::kNot:
      return "NOT (" + children_[0]->ToString(schema) + ")";
    default:
      return "(" + children_[0]->ToString(schema) + " " + OpSymbol(op_) +
             " " + children_[1]->ToString(schema) + ")";
  }
}

Expr::Ptr Eq(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kEq, {std::move(a), std::move(b)});
}
Expr::Ptr Ne(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kNe, {std::move(a), std::move(b)});
}
Expr::Ptr Lt(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kLt, {std::move(a), std::move(b)});
}
Expr::Ptr Le(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kLe, {std::move(a), std::move(b)});
}
Expr::Ptr Gt(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kGt, {std::move(a), std::move(b)});
}
Expr::Ptr Ge(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kGe, {std::move(a), std::move(b)});
}
Expr::Ptr And(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kAnd, {std::move(a), std::move(b)});
}
Expr::Ptr Or(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kOr, {std::move(a), std::move(b)});
}
Expr::Ptr Not(Expr::Ptr a) {
  return Expr::Make(ExprOp::kNot, {std::move(a)});
}

}  // namespace xdbft::exec
