#include "exec/expr.h"

#include "common/logging.h"

namespace xdbft::exec {

Expr::Ptr Expr::Col(int index) {
  XDBFT_CHECK(index >= 0);
  return Ptr(new Expr(ExprOp::kColumn, index, Value(), {}));
}

Result<Expr::Ptr> Expr::Col(const Schema& schema, const std::string& name) {
  XDBFT_ASSIGN_OR_RETURN(const int idx, schema.Find(name));
  return Col(idx);
}

Expr::Ptr Expr::Lit(Value v) {
  return Ptr(new Expr(ExprOp::kLiteral, -1, std::move(v), {}));
}

Expr::Ptr Expr::Make(ExprOp op, std::vector<Ptr> children) {
  return Ptr(new Expr(op, -1, Value(), std::move(children)));
}

namespace {

Value Arith(ExprOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value();
  // Integer arithmetic stays integral (except division).
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64 &&
      op != ExprOp::kDiv) {
    const int64_t x = a.AsInt64(), y = b.AsInt64();
    switch (op) {
      case ExprOp::kAdd:
        return Value(x + y);
      case ExprOp::kSub:
        return Value(x - y);
      case ExprOp::kMul:
        return Value(x * y);
      default:
        break;
    }
  }
  const double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case ExprOp::kAdd:
      return Value(x + y);
    case ExprOp::kSub:
      return Value(x - y);
    case ExprOp::kMul:
      return Value(x * y);
    case ExprOp::kDiv:
      return Value(x / y);
    default:
      break;
  }
  XDBFT_CHECK(false) << "not an arithmetic op";
  return Value();
}

}  // namespace

Value Expr::Eval(const Row& row) const {
  switch (op_) {
    case ExprOp::kColumn:
      return row[static_cast<size_t>(column_)];
    case ExprOp::kLiteral:
      return literal_;
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv:
      return Arith(op_, children_[0]->Eval(row), children_[1]->Eval(row));
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      const Value a = children_[0]->Eval(row);
      const Value b = children_[1]->Eval(row);
      if (a.is_null() || b.is_null()) return Value();
      const int c = a.Compare(b);
      bool r = false;
      switch (op_) {
        case ExprOp::kEq:
          r = c == 0;
          break;
        case ExprOp::kNe:
          r = c != 0;
          break;
        case ExprOp::kLt:
          r = c < 0;
          break;
        case ExprOp::kLe:
          r = c <= 0;
          break;
        case ExprOp::kGt:
          r = c > 0;
          break;
        case ExprOp::kGe:
          r = c >= 0;
          break;
        default:
          break;
      }
      return Value(int64_t{r});
    }
    case ExprOp::kAnd: {
      // Short-circuit.
      if (!children_[0]->EvalBool(row)) return Value(int64_t{0});
      return Value(int64_t{children_[1]->EvalBool(row)});
    }
    case ExprOp::kOr: {
      if (children_[0]->EvalBool(row)) return Value(int64_t{1});
      return Value(int64_t{children_[1]->EvalBool(row)});
    }
    case ExprOp::kNot:
      return Value(int64_t{!children_[0]->EvalBool(row)});
  }
  return Value();
}

namespace {

// The truthiness rule of EvalBool, applied to an already-computed value.
bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt64) return v.AsInt64() != 0;
  if (v.type() == ValueType::kDouble) return v.AsDouble() != 0.0;
  return true;
}

bool CompareHolds(ExprOp op, const Value& a, const Value& b) {
  const int c = a.Compare(b);
  switch (op) {
    case ExprOp::kEq:
      return c == 0;
    case ExprOp::kNe:
      return c != 0;
    case ExprOp::kLt:
      return c < 0;
    case ExprOp::kLe:
      return c <= 0;
    case ExprOp::kGt:
      return c > 0;
    case ExprOp::kGe:
      return c >= 0;
    default:
      XDBFT_CHECK(false) << "not a comparison op";
      return false;
  }
}

}  // namespace

bool Expr::EvalBool(const Row& row) const {
  return Truthy(Eval(row));
}

void Expr::EvalVector(const Batch& batch, const std::vector<int32_t>& sel,
                      std::vector<Value>* out) const {
  const size_t n = sel.size();
  out->clear();
  out->reserve(n);
  switch (op_) {
    case ExprOp::kColumn: {
      const auto& col = batch.columns[static_cast<size_t>(column_)];
      for (const int32_t r : sel) {
        out->push_back(col[static_cast<size_t>(r)]);
      }
      return;
    }
    case ExprOp::kLiteral:
      out->assign(n, literal_);
      return;
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv:
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      // Column and literal operands are read in place; only composite
      // children are materialized. Avoids one temp vector (and a Value
      // copy per position) per trivial operand.
      const Expr& l = *children_[0];
      const Expr& r = *children_[1];
      const bool l_direct =
          l.op_ == ExprOp::kColumn || l.op_ == ExprOp::kLiteral;
      const bool r_direct =
          r.op_ == ExprOp::kColumn || r.op_ == ExprOp::kLiteral;
      std::vector<Value> la, ra;
      if (!l_direct) l.EvalVector(batch, sel, &la);
      if (!r_direct) r.EvalVector(batch, sel, &ra);
      const auto operand = [&batch, &sel](const Expr& e,
                                          const std::vector<Value>& mat,
                                          bool direct,
                                          size_t i) -> const Value& {
        if (!direct) return mat[i];
        return e.op_ == ExprOp::kColumn
                   ? batch.columns[static_cast<size_t>(e.column_)]
                                  [static_cast<size_t>(sel[i])]
                   : e.literal_;
      };
      const bool is_arith = op_ == ExprOp::kAdd || op_ == ExprOp::kSub ||
                            op_ == ExprOp::kMul || op_ == ExprOp::kDiv;
      for (size_t i = 0; i < n; ++i) {
        const Value& a = operand(l, la, l_direct, i);
        const Value& b = operand(r, ra, r_direct, i);
        if (is_arith) {
          if (a.type() == ValueType::kDouble &&
              b.type() == ValueType::kDouble) {
            // Double-typed operands skip Arith's null checks and numeric
            // promotion dispatch (identical result: Arith computes
            // double op double for this type combination).
            const double x = a.AsDouble(), y = b.AsDouble();
            double v = 0.0;
            switch (op_) {
              case ExprOp::kAdd: v = x + y; break;
              case ExprOp::kSub: v = x - y; break;
              case ExprOp::kMul: v = x * y; break;
              default: v = x / y; break;
            }
            out->push_back(Value(v));
          } else {
            out->push_back(Arith(op_, a, b));
          }
        } else if (a.is_null() || b.is_null()) {
          out->push_back(Value());
        } else {
          out->push_back(Value(int64_t{CompareHolds(op_, a, b)}));
        }
      }
      return;
    }
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      // Short-circuit like the row path: the right child is only
      // evaluated at positions the left child does not decide.
      std::vector<Value> left;
      children_[0]->EvalVector(batch, sel, &left);
      const bool is_and = op_ == ExprOp::kAnd;
      std::vector<int32_t> rest;       // positions needing the right child
      std::vector<size_t> rest_slot;   // their index in `out`
      for (size_t i = 0; i < n; ++i) {
        const bool l = Truthy(left[i]);
        if (l == is_and) {
          out->push_back(Value());  // placeholder, filled below
          rest.push_back(sel[i]);
          rest_slot.push_back(i);
        } else {
          out->push_back(Value(int64_t{!is_and}));
        }
      }
      if (!rest.empty()) {
        std::vector<Value> right;
        children_[1]->EvalVector(batch, rest, &right);
        for (size_t j = 0; j < rest.size(); ++j) {
          (*out)[rest_slot[j]] = Value(int64_t{Truthy(right[j])});
        }
      }
      return;
    }
    case ExprOp::kNot: {
      std::vector<Value> child;
      children_[0]->EvalVector(batch, sel, &child);
      for (size_t i = 0; i < n; ++i) {
        out->push_back(Value(int64_t{!Truthy(child[i])}));
      }
      return;
    }
  }
}

void Expr::FilterRows(const std::vector<Row>& rows, size_t begin,
                      size_t end, std::vector<int32_t>* sel) const {
  sel->clear();
  const bool is_cmp = op_ == ExprOp::kEq || op_ == ExprOp::kNe ||
                      op_ == ExprOp::kLt || op_ == ExprOp::kLe ||
                      op_ == ExprOp::kGt || op_ == ExprOp::kGe;
  if (is_cmp) {
    const Expr& l = *children_[0];
    const Expr& r = *children_[1];
    const bool l_direct =
        l.op_ == ExprOp::kColumn || l.op_ == ExprOp::kLiteral;
    const bool r_direct =
        r.op_ == ExprOp::kColumn || r.op_ == ExprOp::kLiteral;
    if (l_direct && r_direct) {
      const auto operand = [](const Expr& e, const Row& row) -> const Value& {
        return e.op_ == ExprOp::kColumn
                   ? row[static_cast<size_t>(e.column_)]
                   : e.literal_;
      };
      for (size_t i = begin; i < end; ++i) {
        const Value& a = operand(l, rows[i]);
        const Value& b = operand(r, rows[i]);
        if (!a.is_null() && !b.is_null() && CompareHolds(op_, a, b)) {
          sel->push_back(static_cast<int32_t>(i - begin));
        }
      }
      return;
    }
  }
  for (size_t i = begin; i < end; ++i) {
    if (EvalBool(rows[i])) sel->push_back(static_cast<int32_t>(i - begin));
  }
}

void Expr::EvalSelection(const Batch& batch,
                         std::vector<int32_t>* sel) const {
  switch (op_) {
    case ExprOp::kAnd:
      // Successive refinement — right child sees only left survivors,
      // exactly the row path's short-circuit.
      children_[0]->EvalSelection(batch, sel);
      children_[1]->EvalSelection(batch, sel);
      return;
    case ExprOp::kOr: {
      std::vector<Value> left;
      children_[0]->EvalVector(batch, *sel, &left);
      std::vector<int32_t> rest;
      for (size_t i = 0; i < sel->size(); ++i) {
        if (!Truthy(left[i])) rest.push_back((*sel)[i]);
      }
      children_[1]->EvalSelection(batch, &rest);
      // Order-preserving union of left survivors and right survivors
      // (both are ordered subsequences of the incoming selection).
      std::vector<int32_t> merged;
      merged.reserve(sel->size());
      size_t ri = 0;
      for (size_t i = 0; i < sel->size(); ++i) {
        if (Truthy(left[i])) {
          merged.push_back((*sel)[i]);
        } else if (ri < rest.size() && rest[ri] == (*sel)[i]) {
          merged.push_back((*sel)[i]);
          ++ri;
        }
      }
      *sel = std::move(merged);
      return;
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      // Column/literal operands are read in place (no per-position
      // materialization) — the dominant predicate shape in the engine.
      const Expr& l = *children_[0];
      const Expr& r = *children_[1];
      const auto operand = [&batch](const Expr& e,
                                    int32_t pos) -> const Value& {
        return e.op_ == ExprOp::kColumn
                   ? batch.columns[static_cast<size_t>(e.column_)]
                                  [static_cast<size_t>(pos)]
                   : e.literal_;
      };
      const bool fast =
          (l.op_ == ExprOp::kColumn || l.op_ == ExprOp::kLiteral) &&
          (r.op_ == ExprOp::kColumn || r.op_ == ExprOp::kLiteral);
      size_t kept = 0;
      if (fast) {
        for (size_t i = 0; i < sel->size(); ++i) {
          const Value& a = operand(l, (*sel)[i]);
          const Value& b = operand(r, (*sel)[i]);
          if (!a.is_null() && !b.is_null() && CompareHolds(op_, a, b)) {
            (*sel)[kept++] = (*sel)[i];
          }
        }
      } else {
        std::vector<Value> a, b;
        children_[0]->EvalVector(batch, *sel, &a);
        children_[1]->EvalVector(batch, *sel, &b);
        for (size_t i = 0; i < sel->size(); ++i) {
          if (!a[i].is_null() && !b[i].is_null() &&
              CompareHolds(op_, a[i], b[i])) {
            (*sel)[kept++] = (*sel)[i];
          }
        }
      }
      sel->resize(kept);
      return;
    }
    default: {
      std::vector<Value> vals;
      EvalVector(batch, *sel, &vals);
      size_t kept = 0;
      for (size_t i = 0; i < sel->size(); ++i) {
        if (Truthy(vals[i])) (*sel)[kept++] = (*sel)[i];
      }
      sel->resize(kept);
      return;
    }
  }
}

namespace {
const char* OpSymbol(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd:
      return "+";
    case ExprOp::kSub:
      return "-";
    case ExprOp::kMul:
      return "*";
    case ExprOp::kDiv:
      return "/";
    case ExprOp::kEq:
      return "=";
    case ExprOp::kNe:
      return "<>";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    case ExprOp::kGe:
      return ">=";
    case ExprOp::kAnd:
      return "AND";
    case ExprOp::kOr:
      return "OR";
    default:
      return "?";
  }
}
}  // namespace

std::string Expr::ToString(const Schema* schema) const {
  switch (op_) {
    case ExprOp::kColumn:
      if (schema != nullptr &&
          column_ < static_cast<int>(schema->num_columns())) {
        return schema->column(column_).name;
      }
      return "$" + std::to_string(column_);
    case ExprOp::kLiteral:
      return literal_.ToString();
    case ExprOp::kNot:
      return "NOT (" + children_[0]->ToString(schema) + ")";
    default:
      return "(" + children_[0]->ToString(schema) + " " + OpSymbol(op_) +
             " " + children_[1]->ToString(schema) + ")";
  }
}

Expr::Ptr Eq(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kEq, {std::move(a), std::move(b)});
}
Expr::Ptr Ne(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kNe, {std::move(a), std::move(b)});
}
Expr::Ptr Lt(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kLt, {std::move(a), std::move(b)});
}
Expr::Ptr Le(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kLe, {std::move(a), std::move(b)});
}
Expr::Ptr Gt(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kGt, {std::move(a), std::move(b)});
}
Expr::Ptr Ge(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kGe, {std::move(a), std::move(b)});
}
Expr::Ptr And(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kAnd, {std::move(a), std::move(b)});
}
Expr::Ptr Or(Expr::Ptr a, Expr::Ptr b) {
  return Expr::Make(ExprOp::kOr, {std::move(a), std::move(b)});
}
Expr::Ptr Not(Expr::Ptr a) {
  return Expr::Make(ExprOp::kNot, {std::move(a)});
}

}  // namespace xdbft::exec
