// Batch: the column-chunk unit of the vectorized execution engine. A
// batch holds up to kDefaultBatchRows rows of aligned column vectors;
// operators exchange batches instead of single rows so per-row virtual
// dispatch, row allocation and expression-tree recursion are amortized
// over ~1024 values at a time (the morsel-driven design of pipeline.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/schema.h"
#include "exec/value.h"

namespace xdbft::exec {

struct Table;  // operators.h

/// \brief Target rows per batch / per morsel (DuckDB-style vector size).
inline constexpr size_t kDefaultBatchRows = 1024;

/// \brief A chunk of rows in columnar layout: `columns[c][r]` is the value
/// of column c in row r; every column vector has exactly `num_rows()`
/// entries. Batches do not carry a schema — producers and consumers agree
/// on column order the same way row operators agree on Row layout.
struct Batch {
  std::vector<std::vector<Value>> columns;

  size_t num_rows() const {
    return columns.empty() ? 0 : columns[0].size();
  }
  size_t num_columns() const { return columns.size(); }
  bool empty() const { return num_rows() == 0; }

  /// \brief Reset to `ncols` empty columns, keeping capacity.
  void Reset(size_t ncols) {
    columns.resize(ncols);
    for (auto& c : columns) c.clear();
  }

  /// \brief Reserve room for `nrows` in every column.
  void Reserve(size_t nrows) {
    for (auto& c : columns) c.reserve(nrows);
  }

  /// \brief Append row `r` of this batch to `row` (column order).
  void AppendRowTo(size_t r, Row* row) const {
    for (const auto& c : columns) row->push_back(c[r]);
  }
};

/// \brief Transpose rows [begin, end) of `table` into `out` (columns
/// reset). The canonical morsel loader of the scan source.
void BatchFromTable(const Table& table, size_t begin, size_t end,
                    Batch* out);

/// \brief Append every row of `batch` to `table->rows`, consuming the
/// batch's values (strings are moved, not copied).
void AppendBatchToTable(Batch&& batch, Table* table);

/// \brief Exact row equality: same row count, same per-cell type tag and
/// value bits (int64 5 and double 5.0 are *different* here, unlike
/// Value::operator==). The bit-identity predicate of the row-vs-batch
/// crosscheck and the thread-count determinism checks.
bool BitIdenticalValue(const Value& a, const Value& b);
bool BitIdenticalTables(const Table& a, const Table& b);

}  // namespace xdbft::exec
