#include "exec/batch.h"

#include <algorithm>
#include <cstring>

#include "exec/operators.h"

namespace xdbft::exec {

void BatchFromTable(const Table& table, size_t begin, size_t end,
                    Batch* out) {
  const size_t ncols = table.schema.num_columns();
  out->Reset(ncols);
  if (begin >= end) return;
  out->Reserve(end - begin);
  // Row-outer so each (heap-scattered) source row is walked exactly once;
  // the destination columns are contiguous either way.
  for (size_t r = begin; r < end; ++r) {
    const Row& row = table.rows[r];
    for (size_t c = 0; c < ncols; ++c) {
      out->columns[c].push_back(row[c]);
    }
  }
}

void AppendBatchToTable(Batch&& batch, Table* table) {
  const size_t n = batch.num_rows();
  const size_t ncols = batch.num_columns();
  // Grow geometrically: reserving to exactly size+n would reallocate (and
  // move every accumulated row) once per appended batch.
  if (table->rows.size() + n > table->rows.capacity()) {
    table->rows.reserve(
        std::max(table->rows.size() + n, table->rows.capacity() * 2));
  }
  for (size_t r = 0; r < n; ++r) {
    Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      row.push_back(std::move(batch.columns[c][r]));
    }
    table->rows.push_back(std::move(row));
  }
}

bool BitIdenticalValue(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble: {
      // Compare representations: distinguishes -0.0 from 0.0 and treats
      // identical NaNs as equal (a double copied bit-for-bit must match).
      const double da = a.AsDouble(), db = b.AsDouble();
      uint64_t ba = 0, bb = 0;
      std::memcpy(&ba, &da, sizeof(da));
      std::memcpy(&bb, &db, sizeof(db));
      return ba == bb;
    }
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

bool BitIdenticalTables(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.schema.num_columns() != b.schema.num_columns()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) return false;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!BitIdenticalValue(a.rows[r][c], b.rows[r][c])) return false;
    }
  }
  return true;
}

}  // namespace xdbft::exec
