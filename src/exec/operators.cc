#include "exec/operators.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace xdbft::exec {

Result<bool> Operator::NextBatch(Batch* out) {
  const size_t ncols = schema().num_columns();
  out->Reset(ncols);
  if (ncols == 0) return false;
  size_t produced = 0;
  Row row;
  while (produced < kDefaultBatchRows) {
    XDBFT_ASSIGN_OR_RETURN(const bool more, Next(&row));
    if (!more) break;
    for (size_t c = 0; c < ncols; ++c) {
      out->columns[c].push_back(std::move(row[c]));
    }
    row.clear();
    ++produced;
  }
  return produced > 0;
}

namespace {

class ScanOperator final : public Operator {
 public:
  explicit ScanOperator(const Table* table) : table_(table) {}

  Status Open() override {
    if (table_ == nullptr) return Status::InvalidArgument("null table");
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= table_->rows.size()) return false;
    *out = table_->rows[pos_++];
    return true;
  }

  Result<bool> NextBatch(Batch* out) override {
    const size_t n = table_->rows.size();
    if (pos_ >= n) {
      out->Reset(table_->schema.num_columns());
      return false;
    }
    const size_t end = std::min(n, pos_ + kDefaultBatchRows);
    BatchFromTable(*table_, pos_, end, out);
    pos_ = end;
    return true;
  }

  void Close() override {}
  const Schema& schema() const override {
    // The table is only validated in Open; a null scan must still answer
    // schema queries (parents concatenate schemas at construction time).
    static const Schema kEmpty;
    return table_ == nullptr ? kEmpty : table_->schema;
  }

 private:
  const Table* table_;
  size_t pos_ = 0;
};

class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr input, Expr::Ptr predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}

  Status Open() override {
    if (predicate_ == nullptr) {
      return Status::InvalidArgument("null predicate");
    }
    return input_->Open();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      XDBFT_ASSIGN_OR_RETURN(const bool more, input_->Next(out));
      if (!more) return false;
      if (predicate_->EvalBool(*out)) return true;
    }
  }

  void Close() override { input_->Close(); }
  const Schema& schema() const override { return input_->schema(); }

 private:
  OperatorPtr input_;
  Expr::Ptr predicate_;
};

class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr input, std::vector<Expr::Ptr> exprs,
                  std::vector<std::string> names)
      : input_(std::move(input)), exprs_(std::move(exprs)) {
    std::vector<Column> cols;
    cols.reserve(names.size());
    for (auto& n : names) cols.push_back({std::move(n), ValueType::kNull});
    schema_ = Schema(std::move(cols));
  }

  Status Open() override {
    if (exprs_.size() != schema_.num_columns()) {
      return Status::InvalidArgument("project: exprs/names size mismatch");
    }
    return input_->Open();
  }

  Result<bool> Next(Row* out) override {
    Row in;
    XDBFT_ASSIGN_OR_RETURN(const bool more, input_->Next(&in));
    if (!more) return false;
    out->clear();
    out->reserve(exprs_.size());
    for (const auto& e : exprs_) out->push_back(e->Eval(in));
    return true;
  }

  void Close() override { input_->Close(); }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr input_;
  std::vector<Expr::Ptr> exprs_;
  Schema schema_;
};

class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                   std::vector<int> build_keys, std::vector<int> probe_keys)
      : build_(std::move(build)),
        probe_(std::move(probe)),
        build_keys_(std::move(build_keys)),
        probe_keys_(std::move(probe_keys)) {
    schema_ = Schema::Concat(probe_->schema(), build_->schema());
  }

  Status Open() override {
    if (build_keys_.size() != probe_keys_.size() || build_keys_.empty()) {
      return Status::InvalidArgument("join: bad key columns");
    }
    // Re-Open without Close must not duplicate build rows (recovery
    // replays re-open operator trees).
    table_.clear();
    XDBFT_RETURN_NOT_OK(build_->Open());
    Row row;
    while (true) {
      XDBFT_ASSIGN_OR_RETURN(const bool more, build_->Next(&row));
      if (!more) break;
      table_[ExtractKey(row, build_keys_)].push_back(row);
    }
    build_->Close();
    XDBFT_RETURN_NOT_OK(probe_->Open());
    matches_ = nullptr;
    match_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        *out = probe_row_;
        const Row& b = (*matches_)[match_pos_++];
        out->insert(out->end(), b.begin(), b.end());
        return true;
      }
      XDBFT_ASSIGN_OR_RETURN(const bool more, probe_->Next(&probe_row_));
      if (!more) return false;
      const auto it = table_.find(ExtractKey(probe_row_, probe_keys_));
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_pos_ = 0;
    }
  }

  void Close() override {
    probe_->Close();
    table_.clear();
  }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr build_;
  OperatorPtr probe_;
  std::vector<int> build_keys_;
  std::vector<int> probe_keys_;
  Schema schema_;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> table_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

class HashAggregateOperator final : public Operator {
 public:
  HashAggregateOperator(OperatorPtr input, std::vector<int> group_by,
                        std::vector<AggSpec> aggs)
      : input_(std::move(input)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {
    std::vector<Column> cols;
    for (int g : group_by_) cols.push_back(input_->schema().column(g));
    for (const auto& a : aggs_) cols.push_back({a.name, ValueType::kNull});
    schema_ = Schema(std::move(cols));
  }

  Status Open() override {
    XDBFT_RETURN_NOT_OK(ValidateAggSpecs(aggs_));
    XDBFT_RETURN_NOT_OK(input_->Open());
    index_.clear();
    keys_.clear();
    states_.clear();
    Row row;
    while (true) {
      XDBFT_ASSIGN_OR_RETURN(const bool more, input_->Next(&row));
      if (!more) break;
      Row key = ExtractKey(row, group_by_);
      const auto [it, inserted] = index_.try_emplace(std::move(key),
                                                     keys_.size());
      if (inserted) {
        keys_.push_back(it->first);
        states_.emplace_back(aggs_.size());
      }
      auto& states = states_[it->second];
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (aggs_[i].arg == nullptr) {
          AccumulateStar(&states[i]);  // COUNT(*)
        } else {
          AccumulateValue(aggs_[i].func, aggs_[i].arg->Eval(row),
                          &states[i]);
        }
      }
    }
    // An empty input with no group columns still yields one global row.
    if (keys_.empty() && group_by_.empty()) {
      keys_.push_back(Row{});
      states_.emplace_back(aggs_.size());
    }
    input_->Close();
    emit_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (emit_pos_ >= keys_.size()) return false;
    const Row& key = keys_[emit_pos_];
    out->clear();
    out->insert(out->end(), key.begin(), key.end());
    for (size_t i = 0; i < aggs_.size(); ++i) {
      out->push_back(FinalizeAgg(aggs_[i].func, states_[emit_pos_][i]));
    }
    ++emit_pos_;
    return true;
  }

  void Close() override {
    index_.clear();
    keys_.clear();
    states_.clear();
  }
  const Schema& schema() const override { return schema_; }

 private:
  OperatorPtr input_;
  std::vector<int> group_by_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  // Groups are emitted in first-occurrence order: index_ maps a key to its
  // slot in keys_/states_ (the unordered_map's own order is never used, so
  // output order is deterministic and matches the vectorized sink).
  std::unordered_map<Row, size_t, RowHash, RowEq> index_;
  std::vector<Row> keys_;
  std::vector<std::vector<AggState>> states_;
  size_t emit_pos_ = 0;
};

class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr input, std::vector<int> keys,
               std::vector<bool> ascending, int64_t limit)
      : input_(std::move(input)),
        keys_(std::move(keys)),
        ascending_(std::move(ascending)),
        limit_(limit) {}

  Status Open() override {
    if (keys_.size() != ascending_.size()) {
      return Status::InvalidArgument("sort: keys/direction size mismatch");
    }
    XDBFT_RETURN_NOT_OK(input_->Open());
    rows_.clear();
    Row row;
    while (true) {
      XDBFT_ASSIGN_OR_RETURN(const bool more, input_->Next(&row));
      if (!more) break;
      rows_.push_back(row);
    }
    input_->Close();
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       for (size_t i = 0; i < keys_.size(); ++i) {
                         const int c = a[static_cast<size_t>(keys_[i])]
                                           .Compare(
                                               b[static_cast<size_t>(
                                                   keys_[i])]);
                         if (c != 0) return ascending_[i] ? c < 0 : c > 0;
                       }
                       return false;
                     });
    if (limit_ >= 0 && rows_.size() > static_cast<size_t>(limit_)) {
      rows_.resize(static_cast<size_t>(limit_));
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

  void Close() override { rows_.clear(); }
  const Schema& schema() const override { return input_->schema(); }

 private:
  OperatorPtr input_;
  std::vector<int> keys_;
  std::vector<bool> ascending_;
  int64_t limit_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr input, int64_t limit)
      : input_(std::move(input)), limit_(limit) {}

  Status Open() override {
    if (limit_ < 0) return Status::InvalidArgument("negative limit");
    produced_ = 0;
    return input_->Open();
  }

  Result<bool> Next(Row* out) override {
    if (produced_ >= limit_) return false;
    XDBFT_ASSIGN_OR_RETURN(const bool more, input_->Next(out));
    if (!more) return false;
    ++produced_;
    return true;
  }

  void Close() override { input_->Close(); }
  const Schema& schema() const override { return input_->schema(); }

 private:
  OperatorPtr input_;
  int64_t limit_;
  int64_t produced_ = 0;
};

class UnionAllOperator final : public Operator {
 public:
  explicit UnionAllOperator(std::vector<OperatorPtr> inputs)
      : inputs_(std::move(inputs)) {}

  Status Open() override {
    if (inputs_.empty()) return Status::InvalidArgument("empty union");
    XDBFT_RETURN_NOT_OK(CheckSchemasCompatible());
    for (auto& in : inputs_) XDBFT_RETURN_NOT_OK(in->Open());
    current_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (current_ < inputs_.size()) {
      XDBFT_ASSIGN_OR_RETURN(const bool more, inputs_[current_]->Next(out));
      if (more) return true;
      ++current_;
    }
    return false;
  }

  void Close() override {
    for (auto& in : inputs_) in->Close();
  }
  const Schema& schema() const override { return inputs_[0]->schema(); }

 private:
  Status CheckSchemasCompatible() const {
    const Schema& first = inputs_[0]->schema();
    for (size_t i = 1; i < inputs_.size(); ++i) {
      const Schema& s = inputs_[i]->schema();
      if (s.num_columns() != first.num_columns()) {
        return Status::InvalidArgument(
            "union: input " + std::to_string(i) + " has " +
            std::to_string(s.num_columns()) + " columns, expected " +
            std::to_string(first.num_columns()));
      }
      for (size_t c = 0; c < first.num_columns(); ++c) {
        const Column& a = first.column(static_cast<int>(c));
        const Column& b = s.column(static_cast<int>(c));
        // kNull is a wildcard: project/aggregate outputs carry it.
        const bool type_ok = a.type == b.type ||
                             a.type == ValueType::kNull ||
                             b.type == ValueType::kNull;
        if (a.name != b.name || !type_ok) {
          return Status::InvalidArgument(
              "union: column " + std::to_string(c) + " mismatch ('" +
              a.name + "' " + ValueTypeName(a.type) + " vs '" + b.name +
              "' " + ValueTypeName(b.type) + ")");
        }
      }
    }
    return Status::OK();
  }

  std::vector<OperatorPtr> inputs_;
  size_t current_ = 0;
};

}  // namespace

OperatorPtr MakeScan(const Table* table) {
  return std::make_unique<ScanOperator>(table);
}

OperatorPtr MakeFilter(OperatorPtr input, Expr::Ptr predicate) {
  return std::make_unique<FilterOperator>(std::move(input),
                                          std::move(predicate));
}

OperatorPtr MakeProject(OperatorPtr input, std::vector<Expr::Ptr> exprs,
                        std::vector<std::string> names) {
  return std::make_unique<ProjectOperator>(std::move(input),
                                           std::move(exprs),
                                           std::move(names));
}

OperatorPtr MakeHashJoin(OperatorPtr build, OperatorPtr probe,
                         std::vector<int> build_keys,
                         std::vector<int> probe_keys) {
  return std::make_unique<HashJoinOperator>(std::move(build),
                                            std::move(probe),
                                            std::move(build_keys),
                                            std::move(probe_keys));
}

OperatorPtr MakeHashAggregate(OperatorPtr input, std::vector<int> group_by,
                              std::vector<AggSpec> aggs) {
  return std::make_unique<HashAggregateOperator>(std::move(input),
                                                 std::move(group_by),
                                                 std::move(aggs));
}

OperatorPtr MakeSort(OperatorPtr input, std::vector<int> keys,
                     std::vector<bool> ascending, int64_t limit) {
  return std::make_unique<SortOperator>(std::move(input), std::move(keys),
                                        std::move(ascending), limit);
}

OperatorPtr MakeLimit(OperatorPtr input, int64_t limit) {
  return std::make_unique<LimitOperator>(std::move(input), limit);
}

OperatorPtr MakeUnionAll(std::vector<OperatorPtr> inputs) {
  return std::make_unique<UnionAllOperator>(std::move(inputs));
}

Result<Table> Drain(Operator* op) {
  if (op == nullptr) return Status::InvalidArgument("null operator");
  XDBFT_RETURN_NOT_OK(op->Open());
  Table out;
  out.schema = op->schema();
  Row row;
  while (true) {
    XDBFT_ASSIGN_OR_RETURN(const bool more, op->Next(&row));
    if (!more) break;
    out.rows.push_back(row);
  }
  op->Close();
  return out;
}

Result<DrainStats> DrainTimed(Operator* op) {
  const auto start = std::chrono::steady_clock::now();
  XDBFT_ASSIGN_OR_RETURN(Table table, Drain(op));
  const auto end = std::chrono::steady_clock::now();
  DrainStats stats;
  stats.table = std::move(table);
  stats.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  return stats;
}

}  // namespace xdbft::exec
