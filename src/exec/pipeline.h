// Morsel-driven vectorized execution engine. A query is described as a
// VecNode plan tree (the V* factories mirror the Make* operator factories
// one-to-one); the same plan runs on either engine:
//
//   - ToOperator(plan)  -> the row-at-a-time Volcano tree (the baseline),
//   - ExecuteVectorized(plan, opts) -> pipeline execution over Batches.
//
// ExecuteVectorized decomposes the plan at pipeline breakers (hash-build
// sides, aggregates, sorts, merge joins, limits, unions). Each pipeline
// reads its source table in morsels of `morsel_rows` rows, pushes every
// morsel through the streaming steps (filter / project / hash-join probe /
// nested-loop probe), and feeds a serial sink. Morsels of one pipeline run
// concurrently on the work-stealing TaskPool, but the sink always consumes
// their outputs in morsel-index order, so results are bit-identical to the
// row engine at any thread count: floating-point accumulation (aggregate
// sums) happens in exactly the input-row order, never in a merge order
// that depends on scheduling. This is the determinism contract the FT
// executor and the crosscheck harness rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/task_pool.h"
#include "exec/batch.h"
#include "exec/operators.h"
#include "obs/query_profile.h"
#include "obs/trace.h"

namespace xdbft::exec {

enum class VecOp : int {
  kScan,
  kFilter,
  kProject,
  kHashJoin,
  kNestedLoopJoin,
  kMergeJoin,
  kHashAggregate,
  kSort,
  kLimit,
  kUnionAll,
};

/// \brief One node of an engine-independent plan tree. Build with the V*
/// factories below; the output schema is computed eagerly so parents can
/// resolve column names at plan-construction time (exactly like calling
/// schema() on a freshly built operator).
struct VecNode {
  VecOp op = VecOp::kScan;
  std::vector<std::shared_ptr<const VecNode>> children;
  Schema schema;

  const Table* table = nullptr;            // kScan
  Expr::Ptr predicate;                     // kFilter, kNestedLoopJoin
  std::vector<Expr::Ptr> exprs;            // kProject
  std::vector<int> build_keys;             // kHashJoin
  std::vector<int> probe_keys;             // kHashJoin
  int left_key = -1;                       // kMergeJoin
  int right_key = -1;                      // kMergeJoin
  std::vector<int> group_by;               // kHashAggregate
  std::vector<AggSpec> aggs;               // kHashAggregate
  std::vector<int> sort_keys;              // kSort
  std::vector<bool> ascending;             // kSort
  int64_t limit = -1;                      // kSort (top-k), kLimit
};

using VecNodePtr = std::shared_ptr<const VecNode>;

// Plan factories, mirroring the Make* operator factories (same argument
// order, same output schemas). Invalid plans (bad keys, null predicate,
// mismatched sizes) are diagnosed at execution time with the same
// InvalidArgument errors the row operators produce at Open.
VecNodePtr VScan(const Table* table);
VecNodePtr VFilter(VecNodePtr input, Expr::Ptr predicate);
VecNodePtr VProject(VecNodePtr input, std::vector<Expr::Ptr> exprs,
                    std::vector<std::string> names);
VecNodePtr VHashJoin(VecNodePtr build, VecNodePtr probe,
                     std::vector<int> build_keys,
                     std::vector<int> probe_keys);
VecNodePtr VNestedLoopJoin(VecNodePtr left, VecNodePtr right,
                           Expr::Ptr predicate);
VecNodePtr VMergeJoin(VecNodePtr left, VecNodePtr right, int left_key,
                      int right_key);
VecNodePtr VHashAggregate(VecNodePtr input, std::vector<int> group_by,
                          std::vector<AggSpec> aggs);
VecNodePtr VSort(VecNodePtr input, std::vector<int> keys,
                 std::vector<bool> ascending, int64_t limit = -1);
VecNodePtr VLimit(VecNodePtr input, int64_t limit);
VecNodePtr VUnionAll(std::vector<VecNodePtr> inputs);

/// \brief Lower a plan to the row-engine operator tree (the Volcano
/// baseline). Returns nullptr for a null plan.
OperatorPtr ToOperator(const VecNodePtr& plan);

/// \brief Reset `root` to the EXPLAIN ANALYZE skeleton of `plan`: same
/// tree shape, operator names filled in, all counters zero. Both engines
/// fill this identical shape, so per-operator row counts are directly
/// comparable between them.
void BuildProfileSkeleton(const VecNodePtr& plan, obs::OperatorProfile* root);

/// \brief ToOperator plus profiling: rebuilds `root` as the plan skeleton
/// and returns a decorated operator tree that records rows, batches and
/// inclusive wall seconds per operator into it (memory estimates are
/// filled at Close). `root` must outlive the returned tree. Under
/// XDBFT_DISABLE_METRICS only the skeleton is built and the plain
/// ToOperator tree is returned.
OperatorPtr ToOperatorProfiled(const VecNodePtr& plan,
                               obs::OperatorProfile* root);

/// \brief Options of one vectorized execution.
struct VecExecOptions {
  /// Total worker threads per pipeline (1 = serial morsel loop; the
  /// calling thread always participates).
  int num_threads = 1;
  /// Rows per morsel/batch.
  size_t morsel_rows = kDefaultBatchRows;
  /// Pool to schedule morsels on. Null with num_threads > 1 makes
  /// ExecuteVectorized create a private pool for the call. Pass an
  /// existing pool to share workers across plans; never pass a pool from
  /// inside one of its own tasks (ParallelForEach is not reentrant) —
  /// leave num_threads at 1 there instead.
  TaskPool* pool = nullptr;
  /// Optional per-pipeline trace lanes (pid 0, one tid per pipeline
  /// starting at trace_lane_base).
  obs::TraceRecorder* trace = nullptr;
  int trace_lane_base = 0;
  /// When non-null, rebuilt as the plan's profile skeleton and filled with
  /// per-operator/per-pipeline statistics: rows and batches accumulated in
  /// worker-local slots per morsel task (no locks or shared counters on
  /// the hot path) and folded into the tree once at pipeline finish.
  /// Chain operators record summed worker-busy seconds; breaker nodes
  /// record the inclusive wall time of their pipeline. Under
  /// XDBFT_DISABLE_METRICS only the zeroed skeleton is produced.
  obs::OperatorProfile* profile = nullptr;
};

/// \brief Execute a plan on the vectorized engine. The result is
/// bit-identical to Drain(ToOperator(plan).get()) at any thread count.
Result<Table> ExecuteVectorized(const VecNodePtr& plan,
                                const VecExecOptions& opts = {});

/// \brief Engine dispatch helper: row engine when `vectorized` is false,
/// otherwise ExecuteVectorized with `opts`.
Result<Table> RunPlan(const VecNodePtr& plan, bool vectorized,
                      const VecExecOptions& opts = {});

}  // namespace xdbft::exec
