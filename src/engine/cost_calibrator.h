// Cost calibration: turns measured stage timings of a real query execution
// into a DAG plan with per-operator tr(o)/tm(o) statistics — the paper's
// getCostStats pipeline ("we executed all queries in XDB without injecting
// failures and measured tr(o) and tm(o) for each operator", §5.1). The
// calibrated plan feeds directly into the cost-based fault-tolerance
// scheme.
#pragma once

#include <string>

#include "common/result.h"
#include "cost/storage_model.h"
#include "engine/query_runner.h"
#include "plan/plan.h"

namespace xdbft::engine {

/// \brief Build a chain-shaped execution plan from the measured stages of
/// `execution`: tr(o) is the slowest partition's wall time of the stage,
/// tm(o) the cost of writing its output to `medium`. Every stage except
/// the last is a free operator; the last is the sink.
Result<plan::Plan> BuildCalibratedPlan(const QueryExecution& execution,
                                       const cost::StorageMedium& medium,
                                       const std::string& name);

/// \brief Scale a calibrated plan's runtime and materialization costs by
/// `runtime_factor` (e.g. to extrapolate from a locally-run small scale
/// factor to the target deployment scale, as runtimes scale linearly in
/// SF for these queries).
plan::Plan ScaleCalibratedPlan(const plan::Plan& plan,
                               double runtime_factor,
                               double materialization_factor);

/// \brief Recompute every operator's tm(o) from its (possibly scaled)
/// output cardinality and row width against `medium`. Use after
/// ScaleCalibratedPlan so the storage latency term is not multiplied.
void RecostMaterialization(plan::Plan* plan,
                           const cost::StorageMedium& medium);

}  // namespace xdbft::engine
