// Shared stage-execution helpers of the engine layer (previously
// duplicated file-local in query_runner.cc / query_runner_complex.cc /
// stage_plan.cc): partition fan-out, stage timing bookkeeping, and the
// table plumbing used between stages.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/exec_mode.h"
#include "engine/query_runner.h"

namespace xdbft::engine {

/// \brief Run `work(p)` for every partition, filling outputs[p]; returns
/// the slowest task's wall time. Row mode runs partitions concurrently on
/// a work-stealing pool bounded by the hardware. Vectorized mode runs
/// partitions sequentially — parallelism lives inside each plan's morsel
/// pipelines instead, and nesting the two would double-subscribe cores.
Result<double> RunStagePartitions(
    const ExecOptions& opts, int num_partitions,
    const std::function<Result<exec::Table>(int)>& work,
    std::vector<exec::Table>* outputs);

/// \brief Rough bytes/row of a table (for materialization costing).
double EstimateRowWidth(const exec::Table& t);

/// \brief Append a StageTiming for `outputs` to the execution.
void RecordStage(QueryExecution* exec_result, const std::string& label,
                 double seconds, const std::vector<exec::Table>& outputs);

/// \brief Row-wise concatenation (schema of the first input).
exec::Table ConcatTables(const std::vector<exec::Table>& tables);

/// \brief Hash-slice of a replicated table so each partition processes a
/// disjoint share (emulating RREF partial replication).
exec::Table SliceReplica(const exec::Table& replica, int key_column,
                         int partition, int num_partitions);

}  // namespace xdbft::engine
