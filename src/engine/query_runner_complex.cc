// Q1C and Q2C — the paper's complex benchmark queries (§5.2), executed
// partition-parallel like the rest of QueryRunner. Q1C exercises an
// aggregation in the middle of the plan; Q2C a DAG plan whose CTE feeds
// two outer queries.
#include <chrono>
#include <functional>
#include <string>
#include <utility>

#include "datagen/tpch_gen.h"
#include "engine/query_runner.h"
#include "engine/stage_exec.h"

namespace xdbft::engine {

using catalog::TpchTable;
using exec::AggFunc;
using exec::Expr;
using exec::Table;
using exec::Value;
using exec::VFilter;
using exec::VHashAggregate;
using exec::VHashJoin;
using exec::VProject;
using exec::VScan;
using exec::VSort;

namespace {

// Q2C part-type prefix filter via a lexicographic range (the generated
// p_type values start with one of six type words).
constexpr const char* kQ2TypePrefixLo = "STANDARD";
constexpr const char* kQ2TypePrefixHi = "STANDARE";  // prefix upper bound
// The two outer queries split parts by retail price.
constexpr double kQ2PriceSplit = 1400.0;

}  // namespace

Result<QueryExecution> QueryRunner::RunQ1C() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const int n = db_->num_nodes;
  const auto& lineitem = db_->table(TpchTable::kLineitem);
  QueryExecution out;

  // Stage 1: inner aggregation — average price per (returnflag,
  // linestatus), computed as distributed partials + a tiny merge.
  std::vector<Table> partials;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& part = lineitem.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto shipdate,
                                   Expr::Col(part.schema, "l_shipdate"));
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(part.schema,
                                             "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(const int rf,
                                   part.schema.Find("l_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(const int ls,
                                   part.schema.Find("l_linestatus"));
            auto plan = VFilter(
                VScan(&part),
                exec::Le(shipdate,
                         Expr::Lit(Value(params::kQ1ShipdateCutoff))));
            plan = VHashAggregate(std::move(plan), {rf, ls},
                                  {{AggFunc::kSum, price, "sum_price"},
                                   {AggFunc::kCount, nullptr, "cnt"}});
            return Run(plan);
          },
          &partials));
  Table avg_table;
  {
    Table merged = ConcatTables(partials);
    XDBFT_ASSIGN_OR_RETURN(auto sum_price,
                           Expr::Col(merged.schema, "sum_price"));
    XDBFT_ASSIGN_OR_RETURN(auto cnt, Expr::Col(merged.schema, "cnt"));
    auto agg = VHashAggregate(VScan(&merged), {0, 1},
                              {{AggFunc::kSum, sum_price, "sum_price"},
                               {AggFunc::kSum, cnt, "cnt"}});
    XDBFT_ASSIGN_OR_RETURN(auto sp2, Expr::Col(agg->schema, "sum_price"));
    XDBFT_ASSIGN_OR_RETURN(auto cnt2, Expr::Col(agg->schema, "cnt"));
    auto proj = VProject(
        std::move(agg),
        {Expr::Col(0), Expr::Col(1), sp2 / cnt2},
        {"g_returnflag", "g_linestatus", "avg_price"});
    XDBFT_ASSIGN_OR_RETURN(avg_table, Run(proj));
  }
  RecordStage(&out, "InnerAgg(avg_price)", secs, {avg_table});
  FlushStageProfiles("InnerAgg(avg_price)", &out);

  // Stage 2: re-join LINEITEM against the tiny average table and keep
  // items priced above their group's average.
  std::vector<Table> above;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& part = lineitem.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto shipdate,
                                   Expr::Col(part.schema, "l_shipdate"));
            XDBFT_ASSIGN_OR_RETURN(const int rf,
                                   part.schema.Find("l_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(const int ls,
                                   part.schema.Find("l_linestatus"));
            XDBFT_ASSIGN_OR_RETURN(const int grf,
                                   avg_table.schema.Find("g_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(const int gls,
                                   avg_table.schema.Find("g_linestatus"));
            auto probe = VFilter(
                VScan(&part),
                exec::Le(shipdate,
                         Expr::Lit(Value(params::kQ1ShipdateCutoff))));
            auto join = VHashJoin(VScan(&avg_table), std::move(probe),
                                  {grf, gls}, {rf, ls});
            const auto& js = join->schema;
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(js, "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(auto avg, Expr::Col(js, "avg_price"));
            auto filt = VFilter(std::move(join), exec::Gt(price, avg));
            const auto& fs = filt->schema;
            XDBFT_ASSIGN_OR_RETURN(auto rf2, Expr::Col(fs, "l_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(auto ls2, Expr::Col(fs, "l_linestatus"));
            auto proj = VProject(std::move(filt), {rf2, ls2},
                                 {"l_returnflag", "l_linestatus"});
            return Run(proj);
          },
          &above));
  RecordStage(&out, "Join(L,avg)", secs, above);
  FlushStageProfiles("Join(L,avg)", &out);

  // Stage 3: count the above-average items per group.
  const auto start = std::chrono::steady_clock::now();
  Table merged = ConcatTables(above);
  {
    auto plan = VHashAggregate(VScan(&merged), {0, 1},
                               {{AggFunc::kCount, nullptr, "items"}});
    plan = VSort(std::move(plan), {0, 1}, {true, true});
    XDBFT_ASSIGN_OR_RETURN(out.result, Run(plan));
  }
  const auto end = std::chrono::steady_clock::now();
  RecordStage(&out, "Agg(count_by_status)",
              std::chrono::duration<double>(end - start).count(),
              {out.result});
  FlushStageProfiles("Agg(count_by_status)", &out);
  return out;
}

Result<QueryExecution> QueryRunner::RunQ2C() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const int n = db_->num_nodes;
  const auto& part = db_->table(TpchTable::kPart);
  const auto& partsupp = db_->table(TpchTable::kPartSupp);
  QueryExecution out;

  // Stage 1: the CTE — min supplycost per filtered part. PART and
  // PARTSUPP are RREF-replicated; each partition handles its partkey
  // slice, so the min-groups are complete per partition.
  std::vector<Table> cte;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      RunStagePartitions(
          opts_, n,
          [&](int p) -> Result<Table> {
            const Table& prep = part.partitions[static_cast<size_t>(p)];
            const Table& psrep =
                partsupp.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int pkey_col,
                                   prep.schema.Find("p_partkey"));
            const Table pslice = SliceReplica(prep, pkey_col, p, n);
            XDBFT_ASSIGN_OR_RETURN(const int pskey_col,
                                   psrep.schema.Find("ps_partkey"));
            const Table psslice = SliceReplica(psrep, pskey_col, p, n);
            XDBFT_ASSIGN_OR_RETURN(auto ptype,
                                   Expr::Col(pslice.schema, "p_type"));
            auto build = VFilter(
                VScan(&pslice),
                exec::And(
                    exec::Ge(ptype, Expr::Lit(Value(kQ2TypePrefixLo))),
                    exec::Lt(ptype, Expr::Lit(Value(kQ2TypePrefixHi)))));
            auto join = VHashJoin(std::move(build), VScan(&psslice),
                                  {pkey_col}, {pskey_col});
            const auto& js = join->schema;
            XDBFT_ASSIGN_OR_RETURN(const int jpk,
                                   js.Find("ps_partkey"));
            XDBFT_ASSIGN_OR_RETURN(auto cost,
                                   Expr::Col(js, "ps_supplycost"));
            auto agg = VHashAggregate(
                std::move(join), {jpk},
                {{AggFunc::kMin, cost, "min_cost"}});
            return Run(agg);
          },
          &cte));
  RecordStage(&out, "CTE(min_supplycost)", secs, cte);
  FlushStageProfiles("CTE(min_supplycost)", &out);

  // Stages 2-3: two outer queries with different price filters; each
  // re-joins the CTE with PARTSUPP (to find the min-cost supplier) and
  // PART (for the price filter), then keeps the top-100 cheapest.
  std::vector<Table> outer_results;
  for (int outer = 1; outer <= 2; ++outer) {
    std::vector<Table> matches;
    XDBFT_ASSIGN_OR_RETURN(
        secs,
        RunStagePartitions(
            opts_, n,
            [&](int p) -> Result<Table> {
              const Table& cte_part = cte[static_cast<size_t>(p)];
              const Table& psrep =
                  partsupp.partitions[static_cast<size_t>(p)];
              const Table& prep = part.partitions[static_cast<size_t>(p)];
              XDBFT_ASSIGN_OR_RETURN(const int pskey_col,
                                     psrep.schema.Find("ps_partkey"));
              const Table psslice = SliceReplica(psrep, pskey_col, p, n);
              XDBFT_ASSIGN_OR_RETURN(const int pkey_col,
                                     prep.schema.Find("p_partkey"));
              const Table pslice = SliceReplica(prep, pkey_col, p, n);
              // (partkey, min_cost) = (ps_partkey, ps_supplycost).
              XDBFT_ASSIGN_OR_RETURN(const int ckey,
                                     cte_part.schema.Find("ps_partkey"));
              XDBFT_ASSIGN_OR_RETURN(const int cmin,
                                     cte_part.schema.Find("min_cost"));
              XDBFT_ASSIGN_OR_RETURN(const int pscost,
                                     psslice.schema.Find("ps_supplycost"));
              auto join = VHashJoin(VScan(&cte_part),
                                    VScan(&psslice), {ckey, cmin},
                                    {pskey_col, pscost});
              const auto& js = join->schema;
              XDBFT_ASSIGN_OR_RETURN(const int jpk, js.Find("ps_partkey"));
              auto pjoin = VHashJoin(std::move(join), VScan(&pslice),
                                     {jpk}, {pkey_col});
              const auto& ps = pjoin->schema;
              XDBFT_ASSIGN_OR_RETURN(auto price,
                                     Expr::Col(ps, "p_retailprice"));
              auto pred =
                  outer == 1
                      ? exec::Lt(price, Expr::Lit(Value(kQ2PriceSplit)))
                      : exec::Ge(price, Expr::Lit(Value(kQ2PriceSplit)));
              auto filt = VFilter(std::move(pjoin), pred);
              const auto& fs = filt->schema;
              XDBFT_ASSIGN_OR_RETURN(auto pk2, Expr::Col(fs, "p_partkey"));
              XDBFT_ASSIGN_OR_RETURN(auto sk, Expr::Col(fs, "ps_suppkey"));
              XDBFT_ASSIGN_OR_RETURN(auto mc, Expr::Col(fs, "min_cost"));
              auto proj = VProject(
                  std::move(filt), {pk2, sk, mc},
                  {"p_partkey", "ps_suppkey", "min_cost"});
              return Run(proj);
            },
            &matches));
    Table merged = ConcatTables(matches);
    XDBFT_ASSIGN_OR_RETURN(const int mc, merged.schema.Find("min_cost"));
    auto sorted = VSort(VScan(&merged), {mc}, {true}, 100);
    XDBFT_ASSIGN_OR_RETURN(Table top, Run(sorted));
    RecordStage(&out, "Outer" + std::to_string(outer) + "Join+TopK", secs,
                {top});
    FlushStageProfiles("Outer" + std::to_string(outer) + "Join+TopK", &out);
    outer_results.push_back(std::move(top));
  }

  // The query's combined result: both outer results concatenated (tagged
  // by position: the first 100 rows belong to outer 1).
  out.result = ConcatTables(outer_results);
  return out;
}

}  // namespace xdbft::engine
