// Q1C and Q2C — the paper's complex benchmark queries (§5.2), executed
// partition-parallel like the rest of QueryRunner. Q1C exercises an
// aggregation in the middle of the plan; Q2C a DAG plan whose CTE feeds
// two outer queries.
#include <chrono>
#include <functional>
#include <thread>

#include "datagen/tpch_gen.h"
#include "engine/query_runner.h"

namespace xdbft::engine {

using catalog::TpchTable;
using exec::AggFunc;
using exec::Expr;
using exec::MakeFilter;
using exec::MakeHashAggregate;
using exec::MakeHashJoin;
using exec::MakeProject;
using exec::MakeScan;
using exec::MakeSort;
using exec::Table;
using exec::Value;

namespace {

// Local copies of the stage helpers (kept file-local to avoid widening the
// engine's public surface).
Result<double> ParallelStage(int num_partitions,
                             const std::function<Result<Table>(int)>& work,
                             std::vector<Table>* outputs) {
  outputs->assign(static_cast<size_t>(num_partitions), Table{});
  std::vector<Status> statuses(static_cast<size_t>(num_partitions));
  std::vector<double> times(static_cast<size_t>(num_partitions), 0.0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_partitions));
  for (int p = 0; p < num_partitions; ++p) {
    threads.emplace_back([&, p]() {
      const auto start = std::chrono::steady_clock::now();
      Result<Table> r = work(p);
      const auto end = std::chrono::steady_clock::now();
      times[static_cast<size_t>(p)] =
          std::chrono::duration<double>(end - start).count();
      if (r.ok()) {
        (*outputs)[static_cast<size_t>(p)] = std::move(*r);
      } else {
        statuses[static_cast<size_t>(p)] = r.status();
      }
    });
  }
  for (auto& t : threads) t.join();
  double slowest = 0.0;
  for (int p = 0; p < num_partitions; ++p) {
    XDBFT_RETURN_NOT_OK(statuses[static_cast<size_t>(p)]);
    slowest = std::max(slowest, times[static_cast<size_t>(p)]);
  }
  return slowest;
}

double EstimateWidth(const Table& t) {
  if (t.rows.empty()) {
    return 16.0 * static_cast<double>(t.schema.num_columns());
  }
  double bytes = 0.0;
  for (const auto& v : t.rows[0]) {
    bytes += v.type() == exec::ValueType::kString
                 ? 16.0 + static_cast<double>(v.AsString().size())
                 : 8.0;
  }
  return bytes;
}

void Record(QueryExecution* out, const std::string& label, double seconds,
            const std::vector<Table>& outputs) {
  StageTiming st;
  st.label = label;
  st.seconds = seconds;
  for (const auto& t : outputs) st.output_rows += t.num_rows();
  st.row_width_bytes = outputs.empty() ? 0.0 : EstimateWidth(outputs[0]);
  out->stages.push_back(std::move(st));
  out->total_seconds += seconds;
}

Table Concat(const std::vector<Table>& tables) {
  Table out;
  if (!tables.empty()) out.schema = tables[0].schema;
  for (const auto& t : tables) {
    out.rows.insert(out.rows.end(), t.rows.begin(), t.rows.end());
  }
  return out;
}

Table Slice(const Table& replica, int key_column, int partition, int n) {
  Table out;
  out.schema = replica.schema;
  for (const auto& row : replica.rows) {
    if (row[static_cast<size_t>(key_column)].Hash() %
            static_cast<size_t>(n) ==
        static_cast<size_t>(partition)) {
      out.rows.push_back(row);
    }
  }
  return out;
}

// Q2C part-type prefix filter via a lexicographic range (the generated
// p_type values start with one of six type words).
constexpr const char* kQ2TypePrefixLo = "STANDARD";
constexpr const char* kQ2TypePrefixHi = "STANDARE";  // prefix upper bound
// The two outer queries split parts by retail price.
constexpr double kQ2PriceSplit = 1400.0;

}  // namespace

Result<QueryExecution> QueryRunner::RunQ1C() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const int n = db_->num_nodes;
  const auto& lineitem = db_->table(TpchTable::kLineitem);
  QueryExecution out;

  // Stage 1: inner aggregation — average price per (returnflag,
  // linestatus), computed as distributed partials + a tiny merge.
  std::vector<Table> partials;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      ParallelStage(
          n,
          [&](int p) -> Result<Table> {
            const Table& part = lineitem.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto shipdate,
                                   Expr::Col(part.schema, "l_shipdate"));
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(part.schema,
                                             "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(const int rf,
                                   part.schema.Find("l_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(const int ls,
                                   part.schema.Find("l_linestatus"));
            auto op = MakeFilter(
                MakeScan(&part),
                exec::Le(shipdate,
                         Expr::Lit(Value(params::kQ1ShipdateCutoff))));
            op = MakeHashAggregate(std::move(op), {rf, ls},
                                   {{AggFunc::kSum, price, "sum_price"},
                                    {AggFunc::kCount, nullptr, "cnt"}});
            return exec::Drain(op.get());
          },
          &partials));
  Table avg_table;
  {
    Table merged = Concat(partials);
    XDBFT_ASSIGN_OR_RETURN(auto sum_price,
                           Expr::Col(merged.schema, "sum_price"));
    XDBFT_ASSIGN_OR_RETURN(auto cnt, Expr::Col(merged.schema, "cnt"));
    auto op = MakeHashAggregate(MakeScan(&merged), {0, 1},
                                {{AggFunc::kSum, sum_price, "sum_price"},
                                 {AggFunc::kSum, cnt, "cnt"}});
    XDBFT_ASSIGN_OR_RETURN(auto sp2, Expr::Col(op->schema(), "sum_price"));
    XDBFT_ASSIGN_OR_RETURN(auto cnt2, Expr::Col(op->schema(), "cnt"));
    auto proj = MakeProject(
        std::move(op),
        {Expr::Col(0), Expr::Col(1), sp2 / cnt2},
        {"g_returnflag", "g_linestatus", "avg_price"});
    XDBFT_ASSIGN_OR_RETURN(avg_table, exec::Drain(proj.get()));
  }
  Record(&out, "InnerAgg(avg_price)", secs, {avg_table});

  // Stage 2: re-join LINEITEM against the tiny average table and keep
  // items priced above their group's average.
  std::vector<Table> above;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      ParallelStage(
          n,
          [&](int p) -> Result<Table> {
            const Table& part = lineitem.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto shipdate,
                                   Expr::Col(part.schema, "l_shipdate"));
            XDBFT_ASSIGN_OR_RETURN(const int rf,
                                   part.schema.Find("l_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(const int ls,
                                   part.schema.Find("l_linestatus"));
            XDBFT_ASSIGN_OR_RETURN(const int grf,
                                   avg_table.schema.Find("g_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(const int gls,
                                   avg_table.schema.Find("g_linestatus"));
            auto probe = MakeFilter(
                MakeScan(&part),
                exec::Le(shipdate,
                         Expr::Lit(Value(params::kQ1ShipdateCutoff))));
            auto join = MakeHashJoin(MakeScan(&avg_table), std::move(probe),
                                     {grf, gls}, {rf, ls});
            const auto& js = join->schema();
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(js, "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(auto avg, Expr::Col(js, "avg_price"));
            auto filt = MakeFilter(std::move(join), exec::Gt(price, avg));
            const auto& fs = filt->schema();
            XDBFT_ASSIGN_OR_RETURN(auto rf2, Expr::Col(fs, "l_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(auto ls2, Expr::Col(fs, "l_linestatus"));
            auto proj = MakeProject(std::move(filt), {rf2, ls2},
                                    {"l_returnflag", "l_linestatus"});
            return exec::Drain(proj.get());
          },
          &above));
  Record(&out, "Join(L,avg)", secs, above);

  // Stage 3: count the above-average items per group.
  const auto start = std::chrono::steady_clock::now();
  Table merged = Concat(above);
  {
    auto op = MakeHashAggregate(MakeScan(&merged), {0, 1},
                                {{AggFunc::kCount, nullptr, "items"}});
    auto sorted = MakeSort(std::move(op), {0, 1}, {true, true});
    XDBFT_ASSIGN_OR_RETURN(out.result, exec::Drain(sorted.get()));
  }
  const auto end = std::chrono::steady_clock::now();
  Record(&out, "Agg(count_by_status)",
         std::chrono::duration<double>(end - start).count(), {out.result});
  return out;
}

Result<QueryExecution> QueryRunner::RunQ2C() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const int n = db_->num_nodes;
  const auto& part = db_->table(TpchTable::kPart);
  const auto& partsupp = db_->table(TpchTable::kPartSupp);
  QueryExecution out;

  // Stage 1: the CTE — min supplycost per filtered part. PART and
  // PARTSUPP are RREF-replicated; each partition handles its partkey
  // slice, so the min-groups are complete per partition.
  std::vector<Table> cte;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      ParallelStage(
          n,
          [&](int p) -> Result<Table> {
            const Table& prep = part.partitions[static_cast<size_t>(p)];
            const Table& psrep =
                partsupp.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int pkey_col,
                                   prep.schema.Find("p_partkey"));
            const Table pslice = Slice(prep, pkey_col, p, n);
            XDBFT_ASSIGN_OR_RETURN(const int pskey_col,
                                   psrep.schema.Find("ps_partkey"));
            const Table psslice = Slice(psrep, pskey_col, p, n);
            XDBFT_ASSIGN_OR_RETURN(auto ptype,
                                   Expr::Col(pslice.schema, "p_type"));
            auto build = MakeFilter(
                MakeScan(&pslice),
                exec::And(
                    exec::Ge(ptype, Expr::Lit(Value(kQ2TypePrefixLo))),
                    exec::Lt(ptype, Expr::Lit(Value(kQ2TypePrefixHi)))));
            auto join = MakeHashJoin(std::move(build), MakeScan(&psslice),
                                     {pkey_col}, {pskey_col});
            const auto& js = join->schema();
            XDBFT_ASSIGN_OR_RETURN(const int jpk,
                                   js.Find("ps_partkey"));
            XDBFT_ASSIGN_OR_RETURN(auto cost,
                                   Expr::Col(js, "ps_supplycost"));
            auto agg = MakeHashAggregate(
                std::move(join), {jpk},
                {{AggFunc::kMin, cost, "min_cost"}});
            return exec::Drain(agg.get());
          },
          &cte));
  Record(&out, "CTE(min_supplycost)", secs, cte);

  // Stages 2-3: two outer queries with different price filters; each
  // re-joins the CTE with PARTSUPP (to find the min-cost supplier) and
  // PART (for the price filter), then keeps the top-100 cheapest.
  std::vector<Table> outer_results;
  for (int outer = 1; outer <= 2; ++outer) {
    std::vector<Table> matches;
    XDBFT_ASSIGN_OR_RETURN(
        secs,
        ParallelStage(
            n,
            [&](int p) -> Result<Table> {
              const Table& cte_part = cte[static_cast<size_t>(p)];
              const Table& psrep =
                  partsupp.partitions[static_cast<size_t>(p)];
              const Table& prep = part.partitions[static_cast<size_t>(p)];
              XDBFT_ASSIGN_OR_RETURN(const int pskey_col,
                                     psrep.schema.Find("ps_partkey"));
              const Table psslice = Slice(psrep, pskey_col, p, n);
              XDBFT_ASSIGN_OR_RETURN(const int pkey_col,
                                     prep.schema.Find("p_partkey"));
              const Table pslice = Slice(prep, pkey_col, p, n);
              // (partkey, min_cost) = (ps_partkey, ps_supplycost).
              XDBFT_ASSIGN_OR_RETURN(const int ckey,
                                     cte_part.schema.Find("ps_partkey"));
              XDBFT_ASSIGN_OR_RETURN(const int cmin,
                                     cte_part.schema.Find("min_cost"));
              XDBFT_ASSIGN_OR_RETURN(const int pscost,
                                     psslice.schema.Find("ps_supplycost"));
              auto join = MakeHashJoin(MakeScan(&cte_part),
                                       MakeScan(&psslice), {ckey, cmin},
                                       {pskey_col, pscost});
              const auto& js = join->schema();
              XDBFT_ASSIGN_OR_RETURN(const int jpk, js.Find("ps_partkey"));
              auto pjoin = MakeHashJoin(std::move(join), MakeScan(&pslice),
                                        {jpk}, {pkey_col});
              const auto& ps = pjoin->schema();
              XDBFT_ASSIGN_OR_RETURN(auto price,
                                     Expr::Col(ps, "p_retailprice"));
              auto pred =
                  outer == 1
                      ? exec::Lt(price, Expr::Lit(Value(kQ2PriceSplit)))
                      : exec::Ge(price, Expr::Lit(Value(kQ2PriceSplit)));
              auto filt = MakeFilter(std::move(pjoin), pred);
              const auto& fs = filt->schema();
              XDBFT_ASSIGN_OR_RETURN(auto pk2, Expr::Col(fs, "p_partkey"));
              XDBFT_ASSIGN_OR_RETURN(auto sk, Expr::Col(fs, "ps_suppkey"));
              XDBFT_ASSIGN_OR_RETURN(auto mc, Expr::Col(fs, "min_cost"));
              auto proj = MakeProject(
                  std::move(filt), {pk2, sk, mc},
                  {"p_partkey", "ps_suppkey", "min_cost"});
              return exec::Drain(proj.get());
            },
            &matches));
    Table merged = Concat(matches);
    XDBFT_ASSIGN_OR_RETURN(const int mc, merged.schema.Find("min_cost"));
    auto sorted = MakeSort(MakeScan(&merged), {mc}, {true}, 100);
    XDBFT_ASSIGN_OR_RETURN(Table top, exec::Drain(sorted.get()));
    Record(&out, "Outer" + std::to_string(outer) + "Join+TopK", secs,
           {top});
    outer_results.push_back(std::move(top));
  }

  // The query's combined result: both outer results concatenated (tagged
  // by position: the first 100 rows belong to outer 1).
  out.result = Concat(outer_results);
  return out;
}

}  // namespace xdbft::engine
