#include "engine/partitioned_table.h"

namespace xdbft::engine {

using catalog::Partitioning;
using catalog::TpchTable;
using exec::Table;

size_t PartitionedTable::TotalRows() const {
  size_t total = 0;
  for (const auto& p : partitions) total += p.num_rows();
  return total;
}

size_t PartitionedTable::LogicalRows() const {
  if (partitioning == Partitioning::kHash) return TotalRows();
  return partitions.empty() ? 0 : partitions[0].num_rows();
}

Result<PartitionedTable> Partition(const Table& table,
                                   Partitioning partitioning,
                                   const std::string& key_column,
                                   int num_partitions) {
  if (num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  PartitionedTable out;
  out.partitioning = partitioning;
  out.partitions.resize(static_cast<size_t>(num_partitions));
  for (auto& p : out.partitions) p.schema = table.schema;

  if (partitioning == Partitioning::kHash) {
    XDBFT_ASSIGN_OR_RETURN(out.key_column, table.schema.Find(key_column));
    for (const auto& row : table.rows) {
      const size_t h =
          row[static_cast<size_t>(out.key_column)].Hash();
      out.partitions[h % static_cast<size_t>(num_partitions)].rows
          .push_back(row);
    }
  } else {
    // Replicated and RREF tables: full copy per node (RREF's partial
    // replication is simulated conservatively; the co-location property
    // is what matters for the execution plans).
    for (auto& p : out.partitions) p.rows = table.rows;
  }
  return out;
}

Result<PartitionedDatabase> DistributeTpch(const datagen::TpchDatabase& db,
                                           int num_nodes) {
  PartitionedDatabase out;
  out.num_nodes = num_nodes;
  struct Layout {
    TpchTable table;
    Partitioning partitioning;
    const char* key;
  };
  const Layout layouts[] = {
      {TpchTable::kRegion, Partitioning::kReplicated, ""},
      {TpchTable::kNation, Partitioning::kReplicated, ""},
      {TpchTable::kSupplier, Partitioning::kRref, ""},
      {TpchTable::kCustomer, Partitioning::kRref, ""},
      {TpchTable::kPart, Partitioning::kRref, ""},
      {TpchTable::kPartSupp, Partitioning::kRref, ""},
      {TpchTable::kOrders, Partitioning::kHash, "o_orderkey"},
      {TpchTable::kLineitem, Partitioning::kHash, "l_orderkey"},
  };
  for (const auto& layout : layouts) {
    XDBFT_ASSIGN_OR_RETURN(
        PartitionedTable pt,
        Partition(db.table(layout.table), layout.partitioning, layout.key,
                  num_nodes));
    out.tables.emplace(layout.table, std::move(pt));
  }
  return out;
}

}  // namespace xdbft::engine
