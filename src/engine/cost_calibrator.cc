#include "engine/cost_calibrator.h"

namespace xdbft::engine {

namespace {

plan::OpType StageType(const std::string& label) {
  if (label.find("Join") != std::string::npos) {
    return plan::OpType::kHashJoin;
  }
  if (label.find("Agg") != std::string::npos) {
    return plan::OpType::kHashAggregate;
  }
  if (label.find("TopK") != std::string::npos ||
      label.find("Sort") != std::string::npos) {
    return plan::OpType::kSort;
  }
  if (label.find("Scan") != std::string::npos) {
    return plan::OpType::kTableScan;
  }
  return plan::OpType::kMapUdf;
}

}  // namespace

Result<plan::Plan> BuildCalibratedPlan(const QueryExecution& execution,
                                       const cost::StorageMedium& medium,
                                       const std::string& name) {
  if (execution.stages.empty()) {
    return Status::InvalidArgument("execution has no stages");
  }
  plan::Plan plan(name);
  plan::OpId prev = plan::kInvalidOpId;
  for (const auto& stage : execution.stages) {
    plan::PlanNode node;
    node.type = StageType(stage.label);
    node.label = stage.label;
    if (prev != plan::kInvalidOpId) node.inputs = {prev};
    node.runtime_cost = stage.seconds;
    node.materialize_cost = medium.WriteSeconds(
        static_cast<double>(stage.output_rows), stage.row_width_bytes);
    node.output_rows = static_cast<double>(stage.output_rows);
    node.row_width_bytes = stage.row_width_bytes;
    prev = plan.AddNode(std::move(node));
  }
  XDBFT_RETURN_NOT_OK(plan.Validate());
  return plan;
}

void RecostMaterialization(plan::Plan* plan,
                           const cost::StorageMedium& medium) {
  if (plan == nullptr) return;
  for (const auto& n : plan->nodes()) {
    auto& node = plan->mutable_node(n.id);
    node.materialize_cost =
        medium.WriteSeconds(node.output_rows, node.row_width_bytes);
  }
}

plan::Plan ScaleCalibratedPlan(const plan::Plan& plan,
                               double runtime_factor,
                               double materialization_factor) {
  plan::Plan out = plan;
  for (const auto& n : out.nodes()) {
    auto& node = out.mutable_node(n.id);
    node.runtime_cost *= runtime_factor;
    node.materialize_cost *= materialization_factor;
    node.output_rows *= runtime_factor;
  }
  return out;
}

}  // namespace xdbft::engine
