// Engine selection for query/stage execution: the same VecNode plans run
// on the row-at-a-time Volcano engine or the morsel-driven vectorized
// engine (exec/pipeline.h), with bit-identical results.
#pragma once

#include <cstddef>

#include "exec/pipeline.h"

namespace xdbft::engine {

enum class ExecMode : int { kRow, kVectorized };

/// \brief How QueryRunner / stage-plan builders execute their plans.
struct ExecOptions {
  ExecMode mode = ExecMode::kRow;
  /// Worker threads per vectorized pipeline (row mode ignores it). Keep
  /// at 1 when stage callbacks run inside another pool's tasks (the FT
  /// executor's partition tasks): ParallelForEach is not reentrant.
  int num_threads = 1;
  /// Rows per morsel/batch in vectorized mode.
  size_t morsel_rows = exec::kDefaultBatchRows;
  /// Optional per-pipeline trace lanes.
  obs::TraceRecorder* trace = nullptr;
  int trace_lane_base = 0;
  /// Collect per-operator query profiles (EXPLAIN ANALYZE): QueryRunner
  /// fills QueryExecution::stage_profiles with one merged profile tree
  /// per stage. Off by default (zero overhead when false).
  bool profile = false;
};

}  // namespace xdbft::engine
