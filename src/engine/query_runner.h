// Partition-parallel execution of the benchmark queries over a
// PartitionedDatabase, organized in *stages* (sub-plans): each stage runs
// on every partition in parallel and materializes its output, exactly the
// granularity at which the paper's XDB middleware splits plans for
// fault-tolerant execution. Per-stage wall-clock timings feed the cost
// calibrator (the paper's "perfect cost estimates", §5.1).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/task_pool.h"
#include "engine/exec_mode.h"
#include "engine/partitioned_table.h"
#include "obs/query_profile.h"

namespace xdbft::engine {

/// \brief Fixed query parameters (exported so tests and examples can
/// compute reference results against the same predicates).
namespace params {
inline constexpr int64_t kQ1ShipdateCutoff =
    datagen::kDateRangeDays - 52;  // ~98% of the window
inline constexpr int64_t kQ3Date = datagen::kDateRangeDays / 2;
inline constexpr const char* kQ3Segment = "BUILDING";
inline constexpr int64_t kQ5Region = 3;  // EUROPE
inline constexpr int64_t kQ5YearStart = 3 * 365;
inline constexpr int64_t kQ5YearEnd = 4 * 365;
}  // namespace params

/// \brief Measured statistics of one executed stage.
struct StageTiming {
  std::string label;
  /// Wall-clock seconds for the slowest partition of this stage.
  double seconds = 0.0;
  /// Rows produced across all partitions.
  size_t output_rows = 0;
  /// Estimated bytes per output row (for materialization costing).
  double row_width_bytes = 0.0;
};

/// \brief Result of running one query.
struct QueryExecution {
  exec::Table result;
  std::vector<StageTiming> stages;
  double total_seconds = 0.0;
  /// One merged EXPLAIN ANALYZE tree per stage, labeled with the stage
  /// label. Filled only with ExecOptions::profile set.
  std::vector<obs::QueryProfile> stage_profiles;
};

/// \brief Runs TPC-H Q1/Q3/Q5 partition-parallel over the distributed
/// database. Row mode executes partitions concurrently within each stage;
/// vectorized mode runs each partition's plan on the morsel-driven
/// pipeline engine instead (bit-identical results, any thread count).
class QueryRunner {
 public:
  explicit QueryRunner(const PartitionedDatabase* db, ExecOptions opts = {});

  /// \brief Q1: scan+filter LINEITEM, aggregate by (returnflag,
  /// linestatus).
  Result<QueryExecution> RunQ1() const;

  /// \brief Q3: customer-segment orders joined with lineitems; top-10
  /// revenue per order.
  Result<QueryExecution> RunQ3() const;

  /// \brief Q5: revenue per nation for one region and one order year
  /// (Fig. 9's plan shape).
  Result<QueryExecution> RunQ5() const;

  /// \brief Q1C (paper §5.2): nested Q1 — the inner aggregation computes
  /// per-group average prices, the outer query re-joins LINEITEM and
  /// counts the items priced above their group's average. The plan has an
  /// aggregation in the middle (the natural cheap checkpoint).
  Result<QueryExecution> RunQ1C() const;

  /// \brief Q2C (paper §5.2): DAG-structured variant of Q2 — the inner
  /// min-supplycost-per-part aggregation is a CTE consumed by two outer
  /// queries with different part filters.
  Result<QueryExecution> RunQ2C() const;

 private:
  /// \brief Execute one plan on the engine selected by the options (row:
  /// ToOperator + Drain; vectorized: morsel pipelines on pool_). With
  /// profiling on, appends the plan's profile to pending_profiles_.
  Result<exec::Table> Run(const exec::VecNodePtr& plan) const;

  /// \brief Merge every pending per-partition profile of the stage that
  /// just finished into one labeled QueryProfile on `out`. No-op unless
  /// profiling is on.
  void FlushStageProfiles(const std::string& label,
                          QueryExecution* out) const;

  const PartitionedDatabase* db_;
  ExecOptions opts_;
  /// Morsel pool shared by every vectorized pipeline of this runner
  /// (created only for mode == kVectorized with num_threads > 1).
  std::unique_ptr<TaskPool> pool_;
  /// Profiles of plans run since the last flush. Row mode runs partitions
  /// concurrently, so pushes are mutex-protected (cold path: once per
  /// partition per stage).
  mutable std::mutex profile_mu_;
  mutable std::vector<obs::QueryProfile> pending_profiles_;
};

}  // namespace xdbft::engine
