// FaultTolerantExecutor: executes a StagePlan under a materialization
// configuration with *injected mid-query failures and real recovery* — the
// in-process counterpart of the paper's XDB execution layer (§5.1: "a
// query coordinator monitors the execution of individual sub-plans and
// restarts them once a failure is detected").
//
// Semantics:
//  - Each (stage, partition) task produces a table. Tasks of materialized
//    stages write to fault-tolerant storage: their outputs survive any
//    failure (the §2.2 assumption). Outputs of non-materialized stages
//    live in the producing node's memory.
//  - An injected failure of node p destroys every non-materialized output
//    that node holds; the coordinator then recovers by recomputing p's
//    lost chain from the last materialized ancestors — exactly the
//    fine-grained scheme.
//  - Under write-ahead lineage (set_wal(true)), every completed
//    non-materialized output is additionally appended to a durable
//    lineage log (charged to rows_logged/bytes_logged up front). A node
//    failure then no longer forces recomputation: the dead node's
//    outputs are replayed from the log at the wave barrier
//    (replay_executions / rows_replayed), and only the killed attempt
//    itself re-runs.
//  - Global stages run on the coordinator and are treated as materialized.
//
// Execution model (see DESIGN.md "Execution concurrency"): an iterative,
// dependency-driven scheduler runs in *waves*. Each wave the coordinator
// computes the demand closure of missing outputs from the final stage,
// dispatches every runnable partition task onto a work-stealing TaskPool
// (global stages run on the coordinator itself), and applies failures at
// the wave barrier. All injector calls happen on the coordinator in
// ascending (stage, partition) order, so the injected failure schedule,
// every attempt count, and the final table are bit-identical at any
// thread count; only wall-clock timings vary.
//
// Failure accounting contract: an injected failure strikes *at dispatch*,
// before the attempt's operator starts — a killed attempt therefore
// consumes an attempt slot (task_executions) but contributes zero
// stage_seconds and produces no rows. The real work a failure wastes is
// the completed outputs it destroys (§3.5); that is measured exactly and
// charged to rows_lost / bytes_lost / seconds_lost when the failed node's
// non-materialized outputs are invalidated.
//
// The injected failures are logical (no real machines die); what is real
// is the recovery path: recomputation re-runs the actual operators over
// the actual data, and tests assert the final result is identical to a
// failure-free run under every configuration and thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/task_pool.h"
#include "engine/query_runner.h"
#include "engine/stage_plan.h"
#include "ft/mat_config.h"
#include "obs/attempt_log.h"
#include "obs/trace.h"

namespace xdbft::engine {

/// \brief Decides which task attempts fail. The executor makes every call
/// from the coordinator thread in a deterministic order (ascending
/// (stage, partition) per scheduling wave), so implementations may keep
/// unsynchronized internal state (e.g. an RNG) and still produce the same
/// failure schedule at any executor thread count.
class StageFailureInjector {
 public:
  virtual ~StageFailureInjector() = default;
  /// \brief Called before attempt `attempt` (0-based) of `stage` on
  /// `partition` (-1 = coordinator). Returning true kills the attempt and
  /// the node's non-materialized state.
  virtual bool InjectFailure(int stage, int partition, int attempt) = 0;
};

/// \brief Fails a fixed set of (stage, partition) first attempts.
class ScriptedInjector final : public StageFailureInjector {
 public:
  /// \brief Each listed task fails `times` times before succeeding.
  explicit ScriptedInjector(std::vector<std::pair<int, int>> victims,
                            int times = 1)
      : victims_(std::move(victims)), times_(times) {}

  bool InjectFailure(int stage, int partition, int attempt) override {
    if (attempt >= times_) return false;
    for (const auto& [s, p] : victims_) {
      if (s == stage && p == partition) return true;
    }
    return false;
  }

 private:
  std::vector<std::pair<int, int>> victims_;
  int times_;
};

/// \brief Fails each attempt independently with probability `p` (seeded).
class RandomInjector final : public StageFailureInjector {
 public:
  RandomInjector(double probability, uint64_t seed)
      : probability_(probability), rng_(seed) {}

  bool InjectFailure(int, int, int) override {
    return rng_.NextDouble() < probability_;
  }

 private:
  double probability_;
  Rng rng_;
};

/// \brief Outcome of a fault-tolerant execution.
struct FtExecutionResult {
  /// Output of the plan's last stage (partitions concatenated in stable
  /// partition order — bit-identical at any thread count).
  exec::Table result;
  /// Failures injected (task attempts killed at dispatch).
  int failures_injected = 0;
  /// Task attempts beyond the failure-free minimum: killed attempts plus
  /// recomputations of lost outputs (the recovery work).
  int recovery_executions = 0;
  /// Total task attempts. Killed attempts are included (each consumed a
  /// dispatch) but, per the accounting contract above, they add no stage
  /// seconds — the failure struck before the operator ran.
  int task_executions = 0;
  /// Wall-clock seconds of the whole execution.
  double wall_seconds = 0.0;
  /// Rows/bytes written to fault-tolerant storage (outputs of materialized
  /// and global stages, recomputations included). Bytes are the in-memory
  /// cell estimate, not a serialized size.
  size_t rows_materialized = 0;
  uint64_t bytes_materialized = 0;
  /// Rows/bytes produced by recovery re-executions (attempts after the
  /// first of a task — work that a failure-free run would not have done).
  size_t rows_recomputed = 0;
  uint64_t bytes_recomputed = 0;
  /// Completed work destroyed by failures (the paper's §3.5 wasted work):
  /// rows/bytes of non-materialized outputs a dying node held, and the
  /// task seconds originally spent producing them. Deterministic for a
  /// fixed injector schedule; disjoint from the killed attempts, which
  /// never produced anything.
  size_t rows_lost = 0;
  uint64_t bytes_lost = 0;
  double seconds_lost = 0.0;
  /// Write-ahead lineage accounting (all zero unless set_wal(true)).
  /// Rows/bytes appended to the durable lineage log — the up-front write
  /// cost every completed non-materialized output pays, failures or not.
  size_t rows_logged = 0;
  uint64_t bytes_logged = 0;
  /// Outputs restored from the log after a node failure instead of being
  /// recomputed (one replay per restored (stage, partition) output).
  int replay_executions = 0;
  size_t rows_replayed = 0;
  uint64_t bytes_replayed = 0;
  /// Wall-clock seconds spent in each stage's successful task attempts
  /// (indexed by stage). Killed attempts contribute nothing here; work
  /// later destroyed by a failure stays charged (it really ran) and is
  /// additionally reported in seconds_lost.
  std::vector<double> stage_seconds;
  /// Per-attempt ledger: one record per dispatched task attempt (killed
  /// attempts included), timestamps relative to Execute start. Records
  /// for completed outputs later destroyed by a failure carry the rows
  /// lost in `rows_lost`. Recorded coordinator-side only.
  obs::AttemptTimeline timeline;
};

/// \brief Executes stage plans with failures and recovery, partition tasks
/// running concurrently on a work-stealing TaskPool.
class FaultTolerantExecutor {
 public:
  FaultTolerantExecutor(const StagePlan* plan,
                        const PartitionedDatabase* db)
      : plan_(plan), db_(db) {}

  /// \brief Record per-attempt spans and failure markers into `trace`
  /// (wall-clock timeline; lane = executing pool worker, coordinator
  /// last). Null disables tracing. The recorder must outlive Execute.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// \brief Worker threads for partition tasks (0 = one per hardware
  /// thread, 1 = everything on the calling thread). The query result and
  /// all deterministic counters are identical at any value. Ignored when
  /// an external pool is set.
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }

  /// \brief Run partition tasks on an externally owned pool (shared with
  /// other executors/the enumerator) instead of a per-Execute pool. The
  /// pool must outlive Execute calls; null reverts to set_num_threads.
  void set_task_pool(TaskPool* pool) { external_pool_ = pool; }

  /// \brief `num_threads` resolved as for set_num_threads (0 -> hardware
  /// concurrency, never less than 1).
  static int ResolveThreads(int num_threads);

  /// \brief Enable write-ahead lineage: completed non-materialized
  /// outputs are logged durably and replayed (not recomputed) after a
  /// node failure. The final table is bit-identical to a run without WAL
  /// at any thread count; only the recovery path and its accounting
  /// change.
  void set_wal(bool wal) { wal_ = wal; }

  /// \brief Directory for abort post-mortems. When a task exceeds
  /// max_attempts, Execute writes a bundle (flight-recorder tail, metrics
  /// snapshot, attempt timeline) there and appends the bundle path to the
  /// Aborted status message. Empty (the default) disables the dump.
  void set_postmortem_dir(std::string dir) {
    postmortem_dir_ = std::move(dir);
  }

  /// \brief Execute under `config` (indexed by stage, as produced from
  /// StagePlan::ToPlanSkeleton()). `injector` may be null (no failures).
  /// A task is aborted after `max_attempts` injected failures.
  Result<FtExecutionResult> Execute(const ft::MaterializationConfig& config,
                                    StageFailureInjector* injector = nullptr,
                                    int max_attempts = 100) const;

 private:
  const StagePlan* plan_;
  const PartitionedDatabase* db_;
  obs::TraceRecorder* trace_ = nullptr;
  TaskPool* external_pool_ = nullptr;
  int num_threads_ = 1;
  bool wal_ = false;
  std::string postmortem_dir_;
};

}  // namespace xdbft::engine
