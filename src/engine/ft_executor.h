// FaultTolerantExecutor: executes a StagePlan under a materialization
// configuration with *injected mid-query failures and real recovery* — the
// in-process counterpart of the paper's XDB execution layer (§5.1: "a
// query coordinator monitors the execution of individual sub-plans and
// restarts them once a failure is detected").
//
// Semantics:
//  - Each (stage, partition) task produces a table. Tasks of materialized
//    stages write to fault-tolerant storage: their outputs survive any
//    failure (the §2.2 assumption). Outputs of non-materialized stages
//    live in the producing node's memory.
//  - An injected failure of node p while it executes a task destroys the
//    in-flight work AND every non-materialized output that node holds; the
//    coordinator then recovers by recomputing p's lost chain from the last
//    materialized ancestors — exactly the fine-grained scheme.
//  - Global stages run on the coordinator and are treated as materialized.
//
// The injected failures are logical (no real machines die); what is real
// is the recovery path: recomputation re-runs the actual operators over
// the actual data, and tests assert the final result is identical to a
// failure-free run under every configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "engine/query_runner.h"
#include "engine/stage_plan.h"
#include "ft/mat_config.h"
#include "obs/trace.h"

namespace xdbft::engine {

/// \brief Decides which task attempts fail. Implementations must be
/// thread-compatible (the executor calls it from one thread at a time).
class StageFailureInjector {
 public:
  virtual ~StageFailureInjector() = default;
  /// \brief Called before attempt `attempt` (0-based) of `stage` on
  /// `partition` (-1 = coordinator). Returning true kills the attempt and
  /// the node's non-materialized state.
  virtual bool InjectFailure(int stage, int partition, int attempt) = 0;
};

/// \brief Fails a fixed set of (stage, partition) first attempts.
class ScriptedInjector final : public StageFailureInjector {
 public:
  /// \brief Each listed task fails `times` times before succeeding.
  explicit ScriptedInjector(std::vector<std::pair<int, int>> victims,
                            int times = 1)
      : victims_(std::move(victims)), times_(times) {}

  bool InjectFailure(int stage, int partition, int attempt) override {
    if (attempt >= times_) return false;
    for (const auto& [s, p] : victims_) {
      if (s == stage && p == partition) return true;
    }
    return false;
  }

 private:
  std::vector<std::pair<int, int>> victims_;
  int times_;
};

/// \brief Fails each attempt independently with probability `p` (seeded).
class RandomInjector final : public StageFailureInjector {
 public:
  RandomInjector(double probability, uint64_t seed)
      : probability_(probability), rng_(seed) {}

  bool InjectFailure(int, int, int) override {
    return rng_.NextDouble() < probability_;
  }

 private:
  double probability_;
  Rng rng_;
};

/// \brief Outcome of a fault-tolerant execution.
struct FtExecutionResult {
  /// Output of the plan's last stage.
  exec::Table result;
  /// Failures injected (task attempts killed).
  int failures_injected = 0;
  /// Task attempts beyond the failure-free minimum: killed attempts plus
  /// recomputations of lost outputs (the recovery work).
  int recovery_executions = 0;
  /// Total task attempts (killed attempts included — their in-flight work
  /// was consumed).
  int task_executions = 0;
  /// Wall-clock seconds of the whole execution.
  double wall_seconds = 0.0;
  /// Rows/bytes written to fault-tolerant storage (outputs of materialized
  /// and global stages, recomputations included). Bytes are the in-memory
  /// cell estimate, not a serialized size.
  size_t rows_materialized = 0;
  uint64_t bytes_materialized = 0;
  /// Rows/bytes produced by recovery re-executions (attempts after the
  /// first of a task — work that a failure-free run would not have done).
  size_t rows_recomputed = 0;
  uint64_t bytes_recomputed = 0;
  /// Wall-clock seconds spent in each stage's tasks (indexed by stage;
  /// killed attempts contribute their aborted time).
  std::vector<double> stage_seconds;
};

/// \brief Executes stage plans with failures and recovery.
class FaultTolerantExecutor {
 public:
  FaultTolerantExecutor(const StagePlan* plan,
                        const PartitionedDatabase* db)
      : plan_(plan), db_(db) {}

  /// \brief Record per-attempt spans and failure markers into `trace`
  /// (wall-clock timeline; lane = partition, coordinator last). Null
  /// disables tracing. The recorder must outlive Execute calls.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// \brief Execute under `config` (indexed by stage, as produced from
  /// StagePlan::ToPlanSkeleton()). `injector` may be null (no failures).
  /// A task is aborted after `max_attempts` injected failures.
  Result<FtExecutionResult> Execute(const ft::MaterializationConfig& config,
                                    StageFailureInjector* injector = nullptr,
                                    int max_attempts = 100) const;

 private:
  const StagePlan* plan_;
  const PartitionedDatabase* db_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace xdbft::engine
