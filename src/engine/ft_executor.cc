#include "engine/ft_executor.h"

#include <chrono>

#include "common/string_util.h"

namespace xdbft::engine {

using exec::Table;

namespace {

Table Concatenate(const std::vector<std::optional<Table>>& parts) {
  Table out;
  for (const auto& p : parts) {
    if (!p.has_value()) continue;
    if (out.schema.num_columns() == 0) out.schema = p->schema;
    out.rows.insert(out.rows.end(), p->rows.begin(), p->rows.end());
  }
  return out;
}

// Rows (from every producer partition) whose shuffle-key column hashes to
// the consumer partition.
Table ShuffleSlice(const std::vector<std::optional<Table>>& parts, int key,
                   int partition, int n) {
  Table out;
  for (const auto& part : parts) {
    if (!part.has_value()) continue;
    if (out.schema.num_columns() == 0) out.schema = part->schema;
    for (const auto& row : part->rows) {
      if (row[static_cast<size_t>(key)].Hash() % static_cast<size_t>(n) ==
          static_cast<size_t>(partition)) {
        out.rows.push_back(row);
      }
    }
  }
  return out;
}

}  // namespace

Result<FtExecutionResult> FaultTolerantExecutor::Execute(
    const ft::MaterializationConfig& config, StageFailureInjector* injector,
    int max_attempts) const {
  if (plan_ == nullptr || db_ == nullptr) {
    return Status::InvalidArgument("null plan or database");
  }
  XDBFT_RETURN_NOT_OK(plan_->Validate());
  XDBFT_RETURN_NOT_OK(config.Validate(plan_->ToPlanSkeleton()));
  const int n = db_->num_nodes;
  const int num_stages = plan_->num_stages();

  // outputs[s] has one slot per partition (one slot for global stages).
  std::vector<std::vector<std::optional<Table>>> outputs(
      static_cast<size_t>(num_stages));
  std::vector<std::vector<int>> attempts(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    const size_t slots = plan_->stage(s).global ? 1 : static_cast<size_t>(n);
    outputs[static_cast<size_t>(s)].resize(slots);
    attempts[static_cast<size_t>(s)].assign(slots, 0);
  }

  FtExecutionResult result;

  // Ensures the output of (stage, slot) exists, recovering lost inputs
  // recursively. slot is the partition index, or 0 for global stages.
  std::function<Status(int, int)> ensure = [&](int s, int slot) -> Status {
    auto& out_slot = outputs[static_cast<size_t>(s)][static_cast<size_t>(
        slot)];
    if (out_slot.has_value()) return Status::OK();
    const Stage& stage = plan_->stage(s);

    // Make sure all inputs exist (they may have been lost to a failure).
    // Broadcast and shuffle consumers need every producer partition.
    for (const StageInput& in : stage.inputs) {
      const Stage& producer = plan_->stage(in.stage);
      if (producer.global) {
        XDBFT_RETURN_NOT_OK(ensure(in.stage, 0));
      } else if (stage.global || in.mode != EdgeMode::kSamePartition) {
        for (int q = 0; q < n; ++q) XDBFT_RETURN_NOT_OK(ensure(in.stage, q));
      } else {
        XDBFT_RETURN_NOT_OK(ensure(in.stage, slot));
      }
    }

    const int attempt =
        attempts[static_cast<size_t>(s)][static_cast<size_t>(slot)]++;
    if (attempt >= max_attempts) {
      return Status::Aborted(StrFormat(
          "stage %d partition %d exceeded %d attempts", s, slot,
          max_attempts));
    }
    const int injector_partition = stage.global ? -1 : slot;
    // Every attempt consumes work, including attempts killed mid-flight.
    ++result.task_executions;
    if (injector != nullptr &&
        injector->InjectFailure(s, injector_partition, attempt)) {
      ++result.failures_injected;
      if (!stage.global) {
        // Node `slot` dies: every non-materialized output it holds is
        // lost; materialized outputs live on fault-tolerant storage and
        // survive (§2.2).
        for (int s2 = 0; s2 < num_stages; ++s2) {
          if (plan_->stage(s2).global) continue;
          if (config.materialized(static_cast<plan::OpId>(s2))) continue;
          outputs[static_cast<size_t>(s2)][static_cast<size_t>(slot)]
              .reset();
        }
      }
      // The coordinator detects the failure and re-drives this task; the
      // recursive call recomputes whatever the node lost.
      return ensure(s, slot);
    }

    // Resolve input tables per edge mode.
    std::vector<Table> edge_storage;
    std::vector<const Table*> input_ptrs;
    edge_storage.reserve(stage.inputs.size());
    for (const StageInput& in : stage.inputs) {
      const Stage& producer = plan_->stage(in.stage);
      if (producer.global) {
        input_ptrs.push_back(&*outputs[static_cast<size_t>(in.stage)][0]);
      } else if (stage.global || in.mode == EdgeMode::kBroadcast) {
        edge_storage.push_back(
            Concatenate(outputs[static_cast<size_t>(in.stage)]));
        input_ptrs.push_back(&edge_storage.back());
      } else if (in.mode == EdgeMode::kShuffle) {
        edge_storage.push_back(ShuffleSlice(
            outputs[static_cast<size_t>(in.stage)], in.shuffle_key, slot,
            n));
        input_ptrs.push_back(&edge_storage.back());
      } else {
        input_ptrs.push_back(&*outputs[static_cast<size_t>(in.stage)]
                                  [static_cast<size_t>(slot)]);
      }
    }

    XDBFT_ASSIGN_OR_RETURN(Table out,
                           stage.run(injector_partition == -1 ? -1 : slot,
                                     input_ptrs));
    out_slot = std::move(out);
    return Status::OK();
  };

  const auto start = std::chrono::steady_clock::now();
  const int last = num_stages - 1;
  if (plan_->stage(last).global) {
    XDBFT_RETURN_NOT_OK(ensure(last, 0));
    result.result = *outputs[static_cast<size_t>(last)][0];
  } else {
    for (int p = 0; p < n; ++p) XDBFT_RETURN_NOT_OK(ensure(last, p));
    result.result = Concatenate(outputs[static_cast<size_t>(last)]);
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();

  int minimal = 0;
  for (int s = 0; s < num_stages; ++s) {
    minimal += plan_->stage(s).global ? 1 : n;
  }
  result.recovery_executions = result.task_executions - minimal;
  return result;
}

}  // namespace xdbft::engine
