#include "engine/ft_executor.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"

namespace xdbft::engine {

using exec::Table;

namespace {

// In-memory size estimate of a table (cells are variant values; string
// payloads are not walked — this feeds relative materialized-vs-recomputed
// accounting, not an allocator budget).
uint64_t ApproxTableBytes(const Table& t) {
  return static_cast<uint64_t>(t.num_rows()) *
         static_cast<uint64_t>(t.schema.num_columns()) * sizeof(exec::Value);
}

// Completed output of one (stage, slot) task, with the accounting the
// coordinator needs when a failure later destroys it.
struct SlotState {
  std::optional<Table> output;
  // Durable lineage-log copy of `output` (write-ahead lineage only).
  // Survives node failures; a failure restores `output` from here
  // instead of recomputing it.
  std::optional<Table> logged;
  double seconds = 0.0;  // wall time of the attempt that produced `output`
  size_t rows = 0;
  uint64_t bytes = 0;
  int attempts = 0;
};

Table Concatenate(const std::vector<SlotState>& parts) {
  Table out;
  for (const auto& p : parts) {
    if (!p.output.has_value()) continue;
    if (out.schema.num_columns() == 0) out.schema = p.output->schema;
    out.rows.insert(out.rows.end(), p.output->rows.begin(),
                    p.output->rows.end());
  }
  return out;
}

// Rows (from every producer partition) whose shuffle-key column hashes to
// the consumer partition.
Table ShuffleSlice(const std::vector<SlotState>& parts, int key,
                   int partition, int n) {
  Table out;
  for (const auto& part : parts) {
    if (!part.output.has_value()) continue;
    if (out.schema.num_columns() == 0) out.schema = part.output->schema;
    for (const auto& row : part.output->rows) {
      if (row[static_cast<size_t>(key)].Hash() % static_cast<size_t>(n) ==
          static_cast<size_t>(partition)) {
        out.rows.push_back(row);
      }
    }
  }
  return out;
}

// One task attempt of the current wave. Built by the coordinator in
// ascending (stage, slot) order; filled in by the executing thread.
struct WaveTask {
  int stage = 0;
  int slot = 0;
  int attempt = 0;
  bool killed = false;
  Status status;
  std::optional<Table> table;
  double seconds = 0.0;
  // Index of this attempt's record in FtExecutionResult::timeline.
  int record_idx = -1;
};

}  // namespace

int FaultTolerantExecutor::ResolveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

Result<FtExecutionResult> FaultTolerantExecutor::Execute(
    const ft::MaterializationConfig& config, StageFailureInjector* injector,
    int max_attempts) const {
  if (plan_ == nullptr || db_ == nullptr) {
    return Status::InvalidArgument("null plan or database");
  }
  XDBFT_RETURN_NOT_OK(plan_->Validate());
  XDBFT_RETURN_NOT_OK(config.Validate(plan_->ToPlanSkeleton()));
  const int n = db_->num_nodes;
  const int num_stages = plan_->num_stages();

  TaskPool* pool = external_pool_;
  std::unique_ptr<TaskPool> local_pool;
  if (pool == nullptr) {
    const int threads = ResolveThreads(num_threads_);
    // One worker is pointless (the coordinator would idle); run inline.
    local_pool = std::make_unique<TaskPool>(threads <= 1 ? 0 : threads);
    pool = local_pool.get();
  }

  // state[s] has one slot per partition (one slot for global stages).
  std::vector<std::vector<SlotState>> state(static_cast<size_t>(num_stages));
  auto slots_of = [&](int s) {
    return plan_->stage(s).global ? size_t{1} : static_cast<size_t>(n);
  };
  for (int s = 0; s < num_stages; ++s) {
    state[static_cast<size_t>(s)].resize(slots_of(s));
  }

  FtExecutionResult result;
  result.stage_seconds.assign(static_cast<size_t>(num_stages), 0.0);
  // Trace lanes: tid = pool worker executing the task; the coordinator
  // (global stages, inline helping, killed-attempt markers) on the lane
  // after the workers.
  const int coordinator_tid = pool->num_threads();
  if (trace_ != nullptr) {
    trace_->SetProcessName(0, "ft_executor: " + plan_->name());
    obs::NameWorkerLanes(trace_, 0, pool->num_threads());
  }

  const auto start = std::chrono::steady_clock::now();
  const int last = num_stages - 1;
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  // last_record[s][slot]: timeline index of the attempt that produced the
  // currently held output of (s, slot), for rows_lost backfill when a
  // failure later invalidates it. -1 = none.
  std::vector<std::vector<int>> last_record(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    last_record[static_cast<size_t>(s)].assign(slots_of(s), -1);
  }

  // Runs one attempt: resolves inputs per edge mode from the current
  // state (read-only during a wave), executes the stage, records the
  // span on the executing worker's lane. Accounting is applied later by
  // the coordinator, in deterministic order, at the wave barrier.
  auto run_attempt = [&](WaveTask& t) {
    const Stage& stage = plan_->stage(t.stage);
    std::vector<Table> edge_storage;
    std::vector<const Table*> input_ptrs;
    edge_storage.reserve(stage.inputs.size());
    for (const StageInput& in : stage.inputs) {
      const auto& producer_state = state[static_cast<size_t>(in.stage)];
      const Stage& producer = plan_->stage(in.stage);
      if (producer.global) {
        input_ptrs.push_back(&*producer_state[0].output);
      } else if (stage.global || in.mode == EdgeMode::kBroadcast) {
        edge_storage.push_back(Concatenate(producer_state));
        input_ptrs.push_back(&edge_storage.back());
      } else if (in.mode == EdgeMode::kShuffle) {
        edge_storage.push_back(
            ShuffleSlice(producer_state, in.shuffle_key, t.slot, n));
        input_ptrs.push_back(&edge_storage.back());
      } else {
        input_ptrs.push_back(
            &*producer_state[static_cast<size_t>(t.slot)].output);
      }
    }

    const double span_start_us =
        trace_ != nullptr ? trace_->NowMicros() : 0.0;
    const auto task_start = std::chrono::steady_clock::now();
    Result<Table> out =
        stage.run(stage.global ? -1 : t.slot, input_ptrs);
    t.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - task_start)
                    .count();
    if (!out.ok()) {
      t.status = out.status();
      return;
    }
    if (trace_ != nullptr) {
      const int worker = pool->CurrentWorkerId();
      trace_->AddComplete(
          stage.label, t.attempt > 0 ? "recovery" : "task", span_start_us,
          trace_->NowMicros() - span_start_us, 0,
          worker >= 0 ? worker : coordinator_tid,
          {obs::IntArg("stage", t.stage),
           obs::IntArg("partition", stage.global ? -1 : t.slot),
           obs::IntArg("attempt", t.attempt),
           obs::IntArg("rows", static_cast<int64_t>(out->num_rows()))});
    }
    t.table = std::move(*out);
  };

  // Wave loop. Each iteration: (1) demand closure of missing outputs from
  // the final stage, (2) the ready frontier (missing output, all inputs
  // present) in ascending (stage, slot) order, (3) coordinator-side
  // injection decisions, (4) parallel execution of surviving partition
  // tasks + coordinator execution of global tasks, (5) deterministic
  // completion accounting, then (6) failure invalidation at the barrier.
  // Iterative by construction: recovery depth never touches the C++
  // stack, however adversarial the injector.
  while (true) {
    // (1) Demand closure: a task is required iff its output is missing
    // and it is the final stage or feeds a required task.
    std::vector<std::vector<char>> required(
        static_cast<size_t>(num_stages));
    for (int s = 0; s < num_stages; ++s) {
      required[static_cast<size_t>(s)].assign(slots_of(s), 0);
    }
    std::vector<std::pair<int, int>> frontier;
    auto demand = [&](int s, int slot) {
      if (state[static_cast<size_t>(s)][static_cast<size_t>(slot)]
              .output.has_value()) {
        return;
      }
      char& mark =
          required[static_cast<size_t>(s)][static_cast<size_t>(slot)];
      if (mark) return;
      mark = 1;
      frontier.emplace_back(s, slot);
    };
    for (size_t slot = 0; slot < slots_of(last); ++slot) {
      demand(last, static_cast<int>(slot));
    }
    size_t scan = 0;
    while (scan < frontier.size()) {
      const auto [s, slot] = frontier[scan++];
      for (const auto& [ps, pslot] : plan_->TaskInputs(s, slot, n)) {
        demand(ps, pslot);
      }
    }
    if (frontier.empty()) break;  // every final output present

    // (2) Ready frontier in ascending (stage, slot) order.
    std::vector<WaveTask> wave;
    for (int s = 0; s < num_stages; ++s) {
      for (size_t slot = 0; slot < slots_of(s); ++slot) {
        if (!required[static_cast<size_t>(s)][slot]) continue;
        bool runnable = true;
        for (const auto& [ps, pslot] :
             plan_->TaskInputs(s, static_cast<int>(slot), n)) {
          if (!state[static_cast<size_t>(ps)][static_cast<size_t>(pslot)]
                   .output.has_value()) {
            runnable = false;
            break;
          }
        }
        if (!runnable) continue;
        WaveTask t;
        t.stage = s;
        t.slot = static_cast<int>(slot);
        wave.push_back(t);
      }
    }
    // A DAG always has a minimal missing element with all inputs present.
    if (wave.empty()) {
      return Status::Internal("executor wave deadlock: no runnable task");
    }

    // (3) Attempt charging + injection, coordinator-side, in order.
    for (WaveTask& t : wave) {
      SlotState& slot_state =
          state[static_cast<size_t>(t.stage)][static_cast<size_t>(t.slot)];
      if (slot_state.attempts >= max_attempts) {
        const std::string reason =
            StrFormat("stage %d partition %d exceeded %d attempts", t.stage,
                      t.slot, max_attempts);
        XDBFT_FLIGHT("executor", "abort: attempts exhausted", t.stage,
                     t.slot);
        std::string suffix;
        if (!postmortem_dir_.empty()) {
          obs::PostMortem pm;
          pm.tool = "ft_executor";
          pm.reason = reason;
          pm.params["plan"] = plan_->name();
          pm.params["stage"] = StrFormat("%d", t.stage);
          pm.params["partition"] = StrFormat("%d", t.slot);
          pm.params["max_attempts"] = StrFormat("%d", max_attempts);
          obs::CaptureProcessState(&pm);
          pm.timeline = result.timeline;
          Result<std::string> path =
              obs::WritePostMortem(postmortem_dir_, pm);
          if (path.ok()) suffix = " (post-mortem: " + *path + ")";
        }
        return Status::Aborted(reason + suffix);
      }
      t.attempt = slot_state.attempts++;
      const Stage& stage = plan_->stage(t.stage);
      const int injector_partition = stage.global ? -1 : t.slot;
      // A killed attempt is charged as a dispatch but does no work: the
      // failure strikes before the operator starts (see the accounting
      // contract in ft_executor.h). The work failures waste is what
      // invalidation destroys, charged to *_lost in step (6).
      ++result.task_executions;
      XDBFT_COUNTER_INC("executor.task_attempts");
      if (injector != nullptr &&
          injector->InjectFailure(t.stage, injector_partition, t.attempt)) {
        t.killed = true;
        ++result.failures_injected;
        XDBFT_COUNTER_INC("executor.failures_injected");
        XDBFT_FLIGHT("executor", "failure injected", t.stage,
                     injector_partition);
      }
      obs::AttemptRecord rec;
      rec.label = stage.label;
      rec.stage = t.stage;
      rec.node = injector_partition;
      rec.attempt = t.attempt;
      rec.dispatch_seconds = elapsed();
      rec.killed = t.killed;
      // A killed attempt dies at dispatch; successes get their real finish
      // time in step (5).
      rec.finish_seconds = rec.dispatch_seconds;
      t.record_idx = static_cast<int>(result.timeline.records.size());
      result.timeline.records.push_back(std::move(rec));
    }

    // (4) Execute survivors: partition tasks fan out onto the pool (the
    // coordinator helps drain while it waits); global tasks then run on
    // the coordinator lane.
    std::vector<size_t> parallel_idx;
    std::vector<size_t> global_idx;
    for (size_t i = 0; i < wave.size(); ++i) {
      if (wave[i].killed) continue;
      (plan_->stage(wave[i].stage).global ? global_idx : parallel_idx)
          .push_back(i);
    }
    pool->ParallelForEach(parallel_idx.size(), [&](size_t k) {
      run_attempt(wave[parallel_idx[k]]);
    });
    for (size_t i : global_idx) run_attempt(wave[i]);

    // (5) Completion accounting in ascending (stage, slot) order, so
    // float accumulation and counters are reproducible.
    for (WaveTask& t : wave) {
      if (t.killed) continue;
      XDBFT_RETURN_NOT_OK(t.status);
      const Stage& stage = plan_->stage(t.stage);
      result.stage_seconds[static_cast<size_t>(t.stage)] += t.seconds;
      XDBFT_HISTOGRAM_OBSERVE("executor.task_seconds", t.seconds);
      const size_t rows = t.table->num_rows();
      const uint64_t bytes = ApproxTableBytes(*t.table);
      // An attempt beyond a task's first is recovery work a failure-free
      // run would not have done.
      if (stage.global ||
          config.materialized(static_cast<plan::OpId>(t.stage))) {
        result.rows_materialized += rows;
        result.bytes_materialized += bytes;
        XDBFT_COUNTER_ADD("executor.rows_materialized", rows);
        XDBFT_COUNTER_ADD("executor.bytes_materialized", bytes);
      }
      if (t.attempt > 0) {
        result.rows_recomputed += rows;
        result.bytes_recomputed += bytes;
        XDBFT_COUNTER_ADD("executor.rows_recomputed", rows);
        XDBFT_COUNTER_ADD("executor.bytes_recomputed", bytes);
      }
      SlotState& slot_state =
          state[static_cast<size_t>(t.stage)][static_cast<size_t>(t.slot)];
      slot_state.output = std::move(t.table);
      slot_state.seconds = t.seconds;
      slot_state.rows = rows;
      slot_state.bytes = bytes;
      // Write-ahead lineage: append the completed output to the durable
      // log before failures can strike it. The write cost is charged
      // unconditionally — that is the scheme's up-front overhead.
      if (wal_ && !stage.global &&
          !config.materialized(static_cast<plan::OpId>(t.stage))) {
        slot_state.logged = *slot_state.output;
        result.rows_logged += rows;
        result.bytes_logged += bytes;
        XDBFT_COUNTER_ADD("executor.rows_logged", rows);
        XDBFT_COUNTER_ADD("executor.bytes_logged", bytes);
      }
      obs::AttemptRecord& rec =
          result.timeline.records[static_cast<size_t>(t.record_idx)];
      rec.finish_seconds = elapsed();
      rec.rows_out = rows;
      last_record[static_cast<size_t>(t.stage)][static_cast<size_t>(t.slot)] =
          t.record_idx;
    }

    // (6) Failures take effect at the wave barrier: node `slot` died, so
    // every non-materialized output it holds — including any produced in
    // this wave — is lost; materialized outputs live on fault-tolerant
    // storage and survive (§2.2). Global (coordinator) failures lose
    // nothing. Processed in (stage, slot) order for determinism; the
    // demand closure of the next wave re-schedules whatever is still
    // needed.
    for (const WaveTask& t : wave) {
      if (!t.killed) continue;
      const Stage& stage = plan_->stage(t.stage);
      if (trace_ != nullptr) {
        trace_->AddInstant(
            "failure", "failure", trace_->NowMicros(), 0, coordinator_tid,
            {obs::IntArg("stage", t.stage),
             obs::IntArg("partition", stage.global ? -1 : t.slot),
             obs::IntArg("attempt", t.attempt)});
      }
      if (stage.global) continue;
      for (int s2 = 0; s2 < num_stages; ++s2) {
        if (plan_->stage(s2).global) continue;
        if (config.materialized(static_cast<plan::OpId>(s2))) continue;
        SlotState& lost =
            state[static_cast<size_t>(s2)][static_cast<size_t>(t.slot)];
        if (!lost.output.has_value()) continue;
        if (wal_ && lost.logged.has_value()) {
          // The node's memory died, but the lineage log is on durable
          // storage (§2.2 applied to the log): replay it into the
          // replacement node instead of recomputing from ancestors.
          lost.output = *lost.logged;
          ++result.replay_executions;
          result.rows_replayed += lost.rows;
          result.bytes_replayed += lost.bytes;
          XDBFT_COUNTER_INC("executor.replays");
          XDBFT_COUNTER_ADD("executor.rows_replayed", lost.rows);
          if (trace_ != nullptr) {
            trace_->AddInstant(
                "replay", "recovery", trace_->NowMicros(), 0,
                coordinator_tid,
                {obs::IntArg("stage", s2), obs::IntArg("partition", t.slot),
                 obs::IntArg("rows",
                             static_cast<int64_t>(lost.rows))});
          }
          continue;
        }
        result.rows_lost += lost.rows;
        result.bytes_lost += lost.bytes;
        result.seconds_lost += lost.seconds;
        XDBFT_COUNTER_ADD("executor.rows_lost", lost.rows);
        XDBFT_COUNTER_ADD("executor.bytes_lost", lost.bytes);
        const int rec_idx =
            last_record[static_cast<size_t>(s2)][static_cast<size_t>(t.slot)];
        if (rec_idx >= 0) {
          result.timeline.records[static_cast<size_t>(rec_idx)].rows_lost +=
              lost.rows;
        }
        lost.output.reset();
      }
    }
  }

  if (plan_->stage(last).global) {
    result.result = *state[static_cast<size_t>(last)][0].output;
  } else {
    result.result = Concatenate(state[static_cast<size_t>(last)]);
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();

  // Failure-free minimum: the demand closure over an empty state — a task
  // counts iff it is a final-stage task or transitively feeds one. Stages
  // the final stage never consumes are not executed (step 1), so counting
  // them here would deflate (even negate) the recovery tally.
  int minimal = 0;
  {
    std::vector<std::vector<char>> needed(static_cast<size_t>(num_stages));
    for (int s = 0; s < num_stages; ++s) {
      needed[static_cast<size_t>(s)].assign(slots_of(s), 0);
    }
    std::vector<std::pair<int, int>> work;
    auto need = [&](int s, int slot) {
      char& mark = needed[static_cast<size_t>(s)][static_cast<size_t>(slot)];
      if (mark) return;
      mark = 1;
      work.emplace_back(s, slot);
    };
    for (size_t slot = 0; slot < slots_of(last); ++slot) {
      need(last, static_cast<int>(slot));
    }
    size_t scan = 0;
    while (scan < work.size()) {
      const auto [s, slot] = work[scan++];
      for (const auto& [ps, pslot] : plan_->TaskInputs(s, slot, n)) {
        need(ps, pslot);
      }
    }
    minimal = static_cast<int>(work.size());
  }
  result.recovery_executions = result.task_executions - minimal;
  XDBFT_COUNTER_ADD("executor.recoveries", result.recovery_executions);
  XDBFT_COUNTER_INC("executor.runs");
  XDBFT_GAUGE_SET("executor.last_run_seconds", result.wall_seconds);
  return result;
}

}  // namespace xdbft::engine
