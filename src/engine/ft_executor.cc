#include "engine/ft_executor.h"

#include <chrono>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace xdbft::engine {

using exec::Table;

namespace {

// In-memory size estimate of a table (cells are variant values; string
// payloads are not walked — this feeds relative materialized-vs-recomputed
// accounting, not an allocator budget).
uint64_t ApproxTableBytes(const Table& t) {
  return static_cast<uint64_t>(t.num_rows()) *
         static_cast<uint64_t>(t.schema.num_columns()) * sizeof(exec::Value);
}

Table Concatenate(const std::vector<std::optional<Table>>& parts) {
  Table out;
  for (const auto& p : parts) {
    if (!p.has_value()) continue;
    if (out.schema.num_columns() == 0) out.schema = p->schema;
    out.rows.insert(out.rows.end(), p->rows.begin(), p->rows.end());
  }
  return out;
}

// Rows (from every producer partition) whose shuffle-key column hashes to
// the consumer partition.
Table ShuffleSlice(const std::vector<std::optional<Table>>& parts, int key,
                   int partition, int n) {
  Table out;
  for (const auto& part : parts) {
    if (!part.has_value()) continue;
    if (out.schema.num_columns() == 0) out.schema = part->schema;
    for (const auto& row : part->rows) {
      if (row[static_cast<size_t>(key)].Hash() % static_cast<size_t>(n) ==
          static_cast<size_t>(partition)) {
        out.rows.push_back(row);
      }
    }
  }
  return out;
}

}  // namespace

Result<FtExecutionResult> FaultTolerantExecutor::Execute(
    const ft::MaterializationConfig& config, StageFailureInjector* injector,
    int max_attempts) const {
  if (plan_ == nullptr || db_ == nullptr) {
    return Status::InvalidArgument("null plan or database");
  }
  XDBFT_RETURN_NOT_OK(plan_->Validate());
  XDBFT_RETURN_NOT_OK(config.Validate(plan_->ToPlanSkeleton()));
  const int n = db_->num_nodes;
  const int num_stages = plan_->num_stages();

  // outputs[s] has one slot per partition (one slot for global stages).
  std::vector<std::vector<std::optional<Table>>> outputs(
      static_cast<size_t>(num_stages));
  std::vector<std::vector<int>> attempts(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    const size_t slots = plan_->stage(s).global ? 1 : static_cast<size_t>(n);
    outputs[static_cast<size_t>(s)].resize(slots);
    attempts[static_cast<size_t>(s)].assign(slots, 0);
  }

  FtExecutionResult result;
  result.stage_seconds.assign(static_cast<size_t>(num_stages), 0.0);
  // Trace lanes: tid = partition index, coordinator on its own lane after
  // the partitions.
  const int coordinator_tid = n;
  if (trace_ != nullptr) {
    trace_->SetProcessName(0, "ft_executor: " + plan_->name());
    for (int k = 0; k < n; ++k) {
      trace_->SetThreadName(0, k, StrFormat("node %d", k));
    }
    trace_->SetThreadName(0, coordinator_tid, "coordinator");
  }

  // Ensures the output of (stage, slot) exists, recovering lost inputs
  // recursively. slot is the partition index, or 0 for global stages.
  std::function<Status(int, int)> ensure = [&](int s, int slot) -> Status {
    auto& out_slot = outputs[static_cast<size_t>(s)][static_cast<size_t>(
        slot)];
    if (out_slot.has_value()) return Status::OK();
    const Stage& stage = plan_->stage(s);

    // Make sure all inputs exist (they may have been lost to a failure).
    // Broadcast and shuffle consumers need every producer partition.
    for (const StageInput& in : stage.inputs) {
      const Stage& producer = plan_->stage(in.stage);
      if (producer.global) {
        XDBFT_RETURN_NOT_OK(ensure(in.stage, 0));
      } else if (stage.global || in.mode != EdgeMode::kSamePartition) {
        for (int q = 0; q < n; ++q) XDBFT_RETURN_NOT_OK(ensure(in.stage, q));
      } else {
        XDBFT_RETURN_NOT_OK(ensure(in.stage, slot));
      }
    }

    const int attempt =
        attempts[static_cast<size_t>(s)][static_cast<size_t>(slot)]++;
    if (attempt >= max_attempts) {
      return Status::Aborted(StrFormat(
          "stage %d partition %d exceeded %d attempts", s, slot,
          max_attempts));
    }
    const int injector_partition = stage.global ? -1 : slot;
    const int tid = stage.global ? coordinator_tid : slot;
    // Every attempt consumes work, including attempts killed mid-flight.
    ++result.task_executions;
    XDBFT_COUNTER_INC("executor.task_attempts");
    if (injector != nullptr &&
        injector->InjectFailure(s, injector_partition, attempt)) {
      ++result.failures_injected;
      XDBFT_COUNTER_INC("executor.failures_injected");
      if (trace_ != nullptr) {
        trace_->AddInstant(
            "failure", "failure", trace_->NowMicros(), 0, tid,
            {obs::IntArg("stage", s),
             obs::IntArg("partition", injector_partition),
             obs::IntArg("attempt", attempt)});
      }
      if (!stage.global) {
        // Node `slot` dies: every non-materialized output it holds is
        // lost; materialized outputs live on fault-tolerant storage and
        // survive (§2.2).
        for (int s2 = 0; s2 < num_stages; ++s2) {
          if (plan_->stage(s2).global) continue;
          if (config.materialized(static_cast<plan::OpId>(s2))) continue;
          outputs[static_cast<size_t>(s2)][static_cast<size_t>(slot)]
              .reset();
        }
      }
      // The coordinator detects the failure and re-drives this task; the
      // recursive call recomputes whatever the node lost.
      return ensure(s, slot);
    }

    // Resolve input tables per edge mode.
    std::vector<Table> edge_storage;
    std::vector<const Table*> input_ptrs;
    edge_storage.reserve(stage.inputs.size());
    for (const StageInput& in : stage.inputs) {
      const Stage& producer = plan_->stage(in.stage);
      if (producer.global) {
        input_ptrs.push_back(&*outputs[static_cast<size_t>(in.stage)][0]);
      } else if (stage.global || in.mode == EdgeMode::kBroadcast) {
        edge_storage.push_back(
            Concatenate(outputs[static_cast<size_t>(in.stage)]));
        input_ptrs.push_back(&edge_storage.back());
      } else if (in.mode == EdgeMode::kShuffle) {
        edge_storage.push_back(ShuffleSlice(
            outputs[static_cast<size_t>(in.stage)], in.shuffle_key, slot,
            n));
        input_ptrs.push_back(&edge_storage.back());
      } else {
        input_ptrs.push_back(&*outputs[static_cast<size_t>(in.stage)]
                                  [static_cast<size_t>(slot)]);
      }
    }

    const double span_start_us = trace_ != nullptr ? trace_->NowMicros() : 0.0;
    const auto task_start = std::chrono::steady_clock::now();
    XDBFT_ASSIGN_OR_RETURN(Table out,
                           stage.run(injector_partition == -1 ? -1 : slot,
                                     input_ptrs));
    const double task_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      task_start)
            .count();
    result.stage_seconds[static_cast<size_t>(s)] += task_seconds;
    XDBFT_HISTOGRAM_OBSERVE("executor.task_seconds", task_seconds);

    // Materialized-vs-recomputed accounting: an attempt beyond a task's
    // first is recovery work a failure-free run would not have done.
    const bool is_recovery = attempt > 0;
    const size_t rows = out.num_rows();
    const uint64_t bytes = ApproxTableBytes(out);
    if (stage.global || config.materialized(static_cast<plan::OpId>(s))) {
      result.rows_materialized += rows;
      result.bytes_materialized += bytes;
      XDBFT_COUNTER_ADD("executor.rows_materialized", rows);
      XDBFT_COUNTER_ADD("executor.bytes_materialized", bytes);
    }
    if (is_recovery) {
      result.rows_recomputed += rows;
      result.bytes_recomputed += bytes;
      XDBFT_COUNTER_ADD("executor.rows_recomputed", rows);
      XDBFT_COUNTER_ADD("executor.bytes_recomputed", bytes);
    }
    if (trace_ != nullptr) {
      trace_->AddComplete(
          stage.label, is_recovery ? "recovery" : "task", span_start_us,
          trace_->NowMicros() - span_start_us, 0, tid,
          {obs::IntArg("stage", s),
           obs::IntArg("partition", injector_partition),
           obs::IntArg("attempt", attempt),
           obs::IntArg("rows", static_cast<int64_t>(rows))});
    }
    out_slot = std::move(out);
    return Status::OK();
  };

  const auto start = std::chrono::steady_clock::now();
  const int last = num_stages - 1;
  if (plan_->stage(last).global) {
    XDBFT_RETURN_NOT_OK(ensure(last, 0));
    result.result = *outputs[static_cast<size_t>(last)][0];
  } else {
    for (int p = 0; p < n; ++p) XDBFT_RETURN_NOT_OK(ensure(last, p));
    result.result = Concatenate(outputs[static_cast<size_t>(last)]);
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();

  int minimal = 0;
  for (int s = 0; s < num_stages; ++s) {
    minimal += plan_->stage(s).global ? 1 : n;
  }
  result.recovery_executions = result.task_executions - minimal;
  XDBFT_COUNTER_ADD("executor.recoveries", result.recovery_executions);
  XDBFT_COUNTER_INC("executor.runs");
  XDBFT_GAUGE_SET("executor.last_run_seconds", result.wall_seconds);
  return result;
}

}  // namespace xdbft::engine
