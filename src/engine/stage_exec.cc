#include "engine/stage_exec.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/task_pool.h"

namespace xdbft::engine {

using exec::Table;

Result<double> RunStagePartitions(
    const ExecOptions& opts, int num_partitions,
    const std::function<Result<Table>(int)>& work,
    std::vector<Table>* outputs) {
  outputs->assign(static_cast<size_t>(num_partitions), Table{});
  std::vector<Status> statuses(static_cast<size_t>(num_partitions));
  std::vector<double> times(static_cast<size_t>(num_partitions), 0.0);

  const auto run_one = [&](int p) {
    const auto start = std::chrono::steady_clock::now();
    Result<Table> r = work(p);
    const auto end = std::chrono::steady_clock::now();
    times[static_cast<size_t>(p)] =
        std::chrono::duration<double>(end - start).count();
    if (r.ok()) {
      (*outputs)[static_cast<size_t>(p)] = std::move(*r);
    } else {
      statuses[static_cast<size_t>(p)] = r.status();
    }
  };

  if (opts.mode == ExecMode::kVectorized) {
    // Sequential partitions; each plan parallelizes its own morsels.
    for (int p = 0; p < num_partitions; ++p) run_one(p);
  } else {
    const unsigned hc = std::thread::hardware_concurrency();
    const int workers =
        std::min(num_partitions, hc == 0 ? 1 : static_cast<int>(hc));
    // The calling thread helps drain the queue, so one pool worker fewer.
    TaskPool pool(workers > 1 ? workers - 1 : 0);
    pool.ParallelForEach(
        static_cast<size_t>(num_partitions),
        [&](size_t i) { run_one(static_cast<int>(i)); });
  }

  double slowest = 0.0;
  for (int p = 0; p < num_partitions; ++p) {
    XDBFT_RETURN_NOT_OK(statuses[static_cast<size_t>(p)]);
    slowest = std::max(slowest, times[static_cast<size_t>(p)]);
  }
  return slowest;
}

double EstimateRowWidth(const Table& t) {
  if (t.rows.empty()) {
    return 16.0 * static_cast<double>(t.schema.num_columns());
  }
  double bytes = 0.0;
  for (const auto& v : t.rows[0]) {
    bytes += v.type() == exec::ValueType::kString
                 ? 16.0 + static_cast<double>(v.AsString().size())
                 : 8.0;
  }
  return bytes;
}

void RecordStage(QueryExecution* exec_result, const std::string& label,
                 double seconds, const std::vector<Table>& outputs) {
  StageTiming st;
  st.label = label;
  st.seconds = seconds;
  for (const auto& t : outputs) st.output_rows += t.num_rows();
  st.row_width_bytes = outputs.empty() ? 0.0 : EstimateRowWidth(outputs[0]);
  exec_result->stages.push_back(std::move(st));
  exec_result->total_seconds += seconds;
}

Table ConcatTables(const std::vector<Table>& tables) {
  Table out;
  if (!tables.empty()) out.schema = tables[0].schema;
  for (const auto& t : tables) {
    out.rows.insert(out.rows.end(), t.rows.begin(), t.rows.end());
  }
  return out;
}

Table SliceReplica(const Table& replica, int key_column, int partition,
                   int num_partitions) {
  Table out;
  out.schema = replica.schema;
  for (const auto& row : replica.rows) {
    if (row[static_cast<size_t>(key_column)].Hash() %
            static_cast<size_t>(num_partitions) ==
        static_cast<size_t>(partition)) {
      out.rows.push_back(row);
    }
  }
  return out;
}

}  // namespace xdbft::engine
