#include "engine/query_runner.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "common/task_pool.h"
#include "datagen/tpch_gen.h"

namespace xdbft::engine {

using catalog::TpchTable;
using exec::AggFunc;
using exec::AggSpec;
using exec::Expr;
using exec::MakeFilter;
using exec::MakeHashAggregate;
using exec::MakeHashJoin;
using exec::MakeProject;
using exec::MakeScan;
using exec::MakeSort;
using exec::OperatorPtr;
using exec::Table;
using exec::Value;

namespace {

// Runs `work(p)` for every partition concurrently on a work-stealing
// TaskPool bounded by the hardware (no thread-per-partition blowup when
// partitions outnumber cores); each callback fills outputs[p]. Returns
// the slowest partition's wall time.
Result<double> RunPartitionsParallel(
    int num_partitions,
    const std::function<Result<Table>(int)>& work,
    std::vector<Table>* outputs) {
  outputs->assign(static_cast<size_t>(num_partitions), Table{});
  std::vector<Status> statuses(static_cast<size_t>(num_partitions));
  std::vector<double> times(static_cast<size_t>(num_partitions), 0.0);
  const unsigned hc = std::thread::hardware_concurrency();
  const int workers =
      std::min(num_partitions, hc == 0 ? 1 : static_cast<int>(hc));
  // The calling thread helps drain the queue, so one pool worker fewer.
  TaskPool pool(workers > 1 ? workers - 1 : 0);
  pool.ParallelForEach(
      static_cast<size_t>(num_partitions), [&](size_t i) {
        const int p = static_cast<int>(i);
        const auto start = std::chrono::steady_clock::now();
        Result<Table> r = work(p);
        const auto end = std::chrono::steady_clock::now();
        times[static_cast<size_t>(p)] =
            std::chrono::duration<double>(end - start).count();
        if (r.ok()) {
          (*outputs)[static_cast<size_t>(p)] = std::move(*r);
        } else {
          statuses[static_cast<size_t>(p)] = r.status();
        }
      });
  double slowest = 0.0;
  for (int p = 0; p < num_partitions; ++p) {
    XDBFT_RETURN_NOT_OK(statuses[static_cast<size_t>(p)]);
    slowest = std::max(slowest, times[static_cast<size_t>(p)]);
  }
  return slowest;
}

// Rough bytes/row of a table (for materialization costing).
double EstimateRowWidth(const Table& t) {
  if (t.rows.empty()) return 16.0 * static_cast<double>(t.schema.num_columns());
  double bytes = 0.0;
  const auto& row = t.rows[0];
  for (const auto& v : row) {
    bytes += v.type() == exec::ValueType::kString
                 ? 16.0 + static_cast<double>(v.AsString().size())
                 : 8.0;
  }
  return bytes;
}

// Records a stage into the execution.
void RecordStage(QueryExecution* exec_result, const std::string& label,
                 double seconds, const std::vector<Table>& outputs) {
  StageTiming st;
  st.label = label;
  st.seconds = seconds;
  for (const auto& t : outputs) st.output_rows += t.num_rows();
  st.row_width_bytes =
      outputs.empty() ? 0.0 : EstimateRowWidth(outputs[0]);
  exec_result->stages.push_back(std::move(st));
  exec_result->total_seconds += seconds;
}

Table ConcatTables(const std::vector<Table>& tables) {
  Table out;
  if (!tables.empty()) out.schema = tables[0].schema;
  for (const auto& t : tables) {
    out.rows.insert(out.rows.end(), t.rows.begin(), t.rows.end());
  }
  return out;
}

// Hash-slice of a replicated table so each partition processes a disjoint
// share (emulating RREF partial replication).
Table SliceReplica(const Table& replica, int key_column, int partition,
                   int num_partitions) {
  Table out;
  out.schema = replica.schema;
  for (const auto& row : replica.rows) {
    if (row[static_cast<size_t>(key_column)].Hash() %
            static_cast<size_t>(num_partitions) ==
        static_cast<size_t>(partition)) {
      out.rows.push_back(row);
    }
  }
  return out;
}

using params::kQ1ShipdateCutoff;
using params::kQ3Date;
using params::kQ3Segment;
using params::kQ5Region;
using params::kQ5YearEnd;
using params::kQ5YearStart;

}  // namespace

Result<QueryExecution> QueryRunner::RunQ1() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const auto& lineitem = db_->table(TpchTable::kLineitem);
  const int n = db_->num_nodes;
  QueryExecution out;

  // Stage 1: partial aggregation per partition (scan+filter pipelined).
  std::vector<Table> partials;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      RunPartitionsParallel(
          n,
          [&](int p) -> Result<Table> {
            const Table& part = lineitem.partitions[static_cast<size_t>(p)];
            const auto& schema = part.schema;
            XDBFT_ASSIGN_OR_RETURN(auto shipdate,
                                   Expr::Col(schema, "l_shipdate"));
            XDBFT_ASSIGN_OR_RETURN(auto qty,
                                   Expr::Col(schema, "l_quantity"));
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(schema, "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(const int rf,
                                   schema.Find("l_returnflag"));
            XDBFT_ASSIGN_OR_RETURN(const int ls,
                                   schema.Find("l_linestatus"));
            auto op = MakeFilter(
                MakeScan(&part),
                exec::Le(shipdate, Expr::Lit(Value(kQ1ShipdateCutoff))));
            op = MakeHashAggregate(
                std::move(op), {rf, ls},
                {{AggFunc::kSum, qty, "sum_qty"},
                 {AggFunc::kSum, price, "sum_price"},
                 {AggFunc::kCount, nullptr, "count_order"}});
            return exec::Drain(op.get());
          },
          &partials));
  RecordStage(&out, "PartialAgg(L)", secs, partials);

  // Stage 2: merge partials globally.
  const auto start = std::chrono::steady_clock::now();
  Table merged = ConcatTables(partials);
  {
    const auto& schema = merged.schema;
    XDBFT_ASSIGN_OR_RETURN(auto sum_qty, Expr::Col(schema, "sum_qty"));
    XDBFT_ASSIGN_OR_RETURN(auto sum_price, Expr::Col(schema, "sum_price"));
    XDBFT_ASSIGN_OR_RETURN(auto cnt, Expr::Col(schema, "count_order"));
    auto op = MakeHashAggregate(
        MakeScan(&merged), {0, 1},
        {{AggFunc::kSum, sum_qty, "sum_qty"},
         {AggFunc::kSum, sum_price, "sum_price"},
         {AggFunc::kSum, cnt, "count_order"}});
    auto sorted = MakeSort(std::move(op), {0, 1}, {true, true});
    XDBFT_ASSIGN_OR_RETURN(out.result, exec::Drain(sorted.get()));
  }
  const auto end = std::chrono::steady_clock::now();
  RecordStage(&out, "FinalAgg",
              std::chrono::duration<double>(end - start).count(),
              {out.result});
  return out;
}

Result<QueryExecution> QueryRunner::RunQ3() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const int n = db_->num_nodes;
  const auto& customer = db_->table(TpchTable::kCustomer);
  const auto& orders = db_->table(TpchTable::kOrders);
  const auto& lineitem = db_->table(TpchTable::kLineitem);
  QueryExecution out;

  // Stage 1: sigma(C) join sigma(O) on custkey per partition. CUSTOMER is
  // replicated (RREF), ORDERS is the partitioned probe side.
  std::vector<Table> co;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      RunPartitionsParallel(
          n,
          [&](int p) -> Result<Table> {
            const Table& creplica =
                customer.partitions[static_cast<size_t>(p)];
            const Table& opart = orders.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto seg,
                                   Expr::Col(creplica.schema,
                                             "c_mktsegment"));
            XDBFT_ASSIGN_OR_RETURN(const int ckey,
                                   creplica.schema.Find("c_custkey"));
            auto build = MakeFilter(
                MakeScan(&creplica),
                exec::Eq(seg, Expr::Lit(Value(kQ3Segment))));
            XDBFT_ASSIGN_OR_RETURN(auto odate,
                                   Expr::Col(opart.schema, "o_orderdate"));
            XDBFT_ASSIGN_OR_RETURN(const int okey_cust,
                                   opart.schema.Find("o_custkey"));
            auto probe = MakeFilter(
                MakeScan(&opart),
                exec::Lt(odate, Expr::Lit(Value(kQ3Date))));
            auto join = MakeHashJoin(std::move(build), std::move(probe),
                                     {ckey}, {okey_cust});
            // Keep (o_orderkey, o_orderdate).
            const auto& js = join->schema();
            XDBFT_ASSIGN_OR_RETURN(auto okey, Expr::Col(js, "o_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(auto odate2,
                                   Expr::Col(js, "o_orderdate"));
            auto proj = MakeProject(std::move(join), {okey, odate2},
                                    {"o_orderkey", "o_orderdate"});
            return exec::Drain(proj.get());
          },
          &co));
  RecordStage(&out, "Join(C,O)", secs, co);

  // Stage 2: join LINEITEM on orderkey (co-partitioned: local join).
  std::vector<Table> col;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunPartitionsParallel(
          n,
          [&](int p) -> Result<Table> {
            const Table& build_t = co[static_cast<size_t>(p)];
            const Table& lpart =
                lineitem.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int bokey,
                                   build_t.schema.Find("o_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(auto sdate,
                                   Expr::Col(lpart.schema, "l_shipdate"));
            XDBFT_ASSIGN_OR_RETURN(const int lokey,
                                   lpart.schema.Find("l_orderkey"));
            auto probe = MakeFilter(
                MakeScan(&lpart),
                exec::Gt(sdate, Expr::Lit(Value(kQ3Date))));
            auto join = MakeHashJoin(MakeScan(&build_t), std::move(probe),
                                     {bokey}, {lokey});
            const auto& js = join->schema();
            XDBFT_ASSIGN_OR_RETURN(auto okey, Expr::Col(js, "l_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(auto odate,
                                   Expr::Col(js, "o_orderdate"));
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(js, "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(auto disc,
                                   Expr::Col(js, "l_discount"));
            auto revenue = price * (Expr::Lit(Value(1.0)) - disc);
            auto proj = MakeProject(
                std::move(join), {okey, odate, revenue},
                {"o_orderkey", "o_orderdate", "revenue"});
            return exec::Drain(proj.get());
          },
          &col));
  RecordStage(&out, "Join(CO,L)", secs, col);

  // Stage 3: aggregate per orderkey (groups are partition-local thanks to
  // orderkey co-partitioning).
  std::vector<Table> aggs;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunPartitionsParallel(
          n,
          [&](int p) -> Result<Table> {
            const Table& in = col[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto rev,
                                   Expr::Col(in.schema, "revenue"));
            auto op = MakeHashAggregate(
                MakeScan(&in), {0, 1},
                {{AggFunc::kSum, rev, "revenue"}});
            return exec::Drain(op.get());
          },
          &aggs));
  RecordStage(&out, "Agg(orderkey)", secs, aggs);

  // Stage 4: global top-10 by revenue.
  const auto start = std::chrono::steady_clock::now();
  Table merged = ConcatTables(aggs);
  {
    XDBFT_ASSIGN_OR_RETURN(const int rev, merged.schema.Find("revenue"));
    auto op = MakeSort(MakeScan(&merged), {rev}, {false}, 10);
    XDBFT_ASSIGN_OR_RETURN(out.result, exec::Drain(op.get()));
  }
  const auto end = std::chrono::steady_clock::now();
  RecordStage(&out, "TopK(revenue)",
              std::chrono::duration<double>(end - start).count(),
              {out.result});
  return out;
}

Result<QueryExecution> QueryRunner::RunQ5() const {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  const int n = db_->num_nodes;
  const auto& region = db_->table(TpchTable::kRegion);
  const auto& nation = db_->table(TpchTable::kNation);
  const auto& customer = db_->table(TpchTable::kCustomer);
  const auto& orders = db_->table(TpchTable::kOrders);
  const auto& lineitem = db_->table(TpchTable::kLineitem);
  const auto& supplier = db_->table(TpchTable::kSupplier);
  QueryExecution out;

  // Stage 1: sigma(R) join N — tiny, runs once.
  Table rn;
  {
    const auto start = std::chrono::steady_clock::now();
    const Table& rrep = region.partitions[0];
    const Table& nrep = nation.partitions[0];
    XDBFT_ASSIGN_OR_RETURN(auto rkey,
                           Expr::Col(rrep.schema, "r_regionkey"));
    auto build = MakeFilter(MakeScan(&rrep),
                            exec::Eq(rkey, Expr::Lit(Value(kQ5Region))));
    XDBFT_ASSIGN_OR_RETURN(const int rk, rrep.schema.Find("r_regionkey"));
    XDBFT_ASSIGN_OR_RETURN(const int nrk,
                           nrep.schema.Find("n_regionkey"));
    auto join = MakeHashJoin(std::move(build), MakeScan(&nrep), {rk},
                             {nrk});
    const auto& js = join->schema();
    XDBFT_ASSIGN_OR_RETURN(auto nkey, Expr::Col(js, "n_nationkey"));
    XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
    auto proj = MakeProject(std::move(join), {nkey, nname},
                            {"n_nationkey", "n_name"});
    XDBFT_ASSIGN_OR_RETURN(rn, exec::Drain(proj.get()));
    const auto end = std::chrono::steady_clock::now();
    RecordStage(&out, "Join1(R,N)",
                std::chrono::duration<double>(end - start).count(), {rn});
  }

  // Stage 2: join CUSTOMER (RREF slice per partition) on nationkey.
  std::vector<Table> rnc;
  XDBFT_ASSIGN_OR_RETURN(
      double secs,
      RunPartitionsParallel(
          n,
          [&](int p) -> Result<Table> {
            const Table& crep = customer.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int ckey_col,
                                   crep.schema.Find("c_custkey"));
            const Table cslice = SliceReplica(crep, ckey_col, p, n);
            XDBFT_ASSIGN_OR_RETURN(const int nk,
                                   rn.schema.Find("n_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(const int cnk,
                                   cslice.schema.Find("c_nationkey"));
            auto join = MakeHashJoin(MakeScan(&rn), MakeScan(&cslice),
                                     {nk}, {cnk});
            const auto& js = join->schema();
            XDBFT_ASSIGN_OR_RETURN(auto ckey, Expr::Col(js, "c_custkey"));
            XDBFT_ASSIGN_OR_RETURN(auto cnat,
                                   Expr::Col(js, "c_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
            auto proj = MakeProject(std::move(join), {ckey, cnat, nname},
                                    {"c_custkey", "c_nationkey", "n_name"});
            return exec::Drain(proj.get());
          },
          &rnc));
  RecordStage(&out, "Join2(RN,C)", secs, rnc);

  // Stage 3: broadcast RNC (shuffle emulation) and join sigma(ORDERS) on
  // custkey per partition.
  Table rnc_all = ConcatTables(rnc);
  std::vector<Table> rnco;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunPartitionsParallel(
          n,
          [&](int p) -> Result<Table> {
            const Table& opart = orders.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(auto odate,
                                   Expr::Col(opart.schema, "o_orderdate"));
            auto probe = MakeFilter(
                MakeScan(&opart),
                exec::And(exec::Ge(odate, Expr::Lit(Value(kQ5YearStart))),
                          exec::Lt(odate, Expr::Lit(Value(kQ5YearEnd)))));
            XDBFT_ASSIGN_OR_RETURN(const int bkey,
                                   rnc_all.schema.Find("c_custkey"));
            XDBFT_ASSIGN_OR_RETURN(const int pkey,
                                   opart.schema.Find("o_custkey"));
            auto join = MakeHashJoin(MakeScan(&rnc_all), std::move(probe),
                                     {bkey}, {pkey});
            const auto& js = join->schema();
            XDBFT_ASSIGN_OR_RETURN(auto okey, Expr::Col(js, "o_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(auto cnat,
                                   Expr::Col(js, "c_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
            auto proj = MakeProject(std::move(join), {okey, cnat, nname},
                                    {"o_orderkey", "c_nationkey", "n_name"});
            return exec::Drain(proj.get());
          },
          &rnco));
  RecordStage(&out, "Join3(RNC,O)", secs, rnco);

  // Stage 4: join LINEITEM on orderkey (co-partitioned).
  std::vector<Table> rncol;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunPartitionsParallel(
          n,
          [&](int p) -> Result<Table> {
            const Table& build_t = rnco[static_cast<size_t>(p)];
            const Table& lpart =
                lineitem.partitions[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int bokey,
                                   build_t.schema.Find("o_orderkey"));
            XDBFT_ASSIGN_OR_RETURN(const int lokey,
                                   lpart.schema.Find("l_orderkey"));
            auto join = MakeHashJoin(MakeScan(&build_t), MakeScan(&lpart),
                                     {bokey}, {lokey});
            const auto& js = join->schema();
            XDBFT_ASSIGN_OR_RETURN(auto skey, Expr::Col(js, "l_suppkey"));
            XDBFT_ASSIGN_OR_RETURN(auto price,
                                   Expr::Col(js, "l_extendedprice"));
            XDBFT_ASSIGN_OR_RETURN(auto disc, Expr::Col(js, "l_discount"));
            XDBFT_ASSIGN_OR_RETURN(auto cnat,
                                   Expr::Col(js, "c_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(js, "n_name"));
            auto revenue = price * (Expr::Lit(Value(1.0)) - disc);
            auto proj = MakeProject(
                std::move(join), {skey, cnat, nname, revenue},
                {"l_suppkey", "c_nationkey", "n_name", "revenue"});
            return exec::Drain(proj.get());
          },
          &rncol));
  RecordStage(&out, "Join4(RNCO,L)", secs, rncol);

  // Stage 5: join SUPPLIER on suppkey + supplier-nation filter.
  std::vector<Table> rncols;
  XDBFT_ASSIGN_OR_RETURN(
      secs,
      RunPartitionsParallel(
          n,
          [&](int p) -> Result<Table> {
            const Table& srep = supplier.partitions[static_cast<size_t>(p)];
            const Table& probe_t = rncol[static_cast<size_t>(p)];
            XDBFT_ASSIGN_OR_RETURN(const int skey,
                                   srep.schema.Find("s_suppkey"));
            XDBFT_ASSIGN_OR_RETURN(const int pkey,
                                   probe_t.schema.Find("l_suppkey"));
            auto join = MakeHashJoin(MakeScan(&srep), MakeScan(&probe_t),
                                     {skey}, {pkey});
            const auto& js = join->schema();
            XDBFT_ASSIGN_OR_RETURN(auto snat,
                                   Expr::Col(js, "s_nationkey"));
            XDBFT_ASSIGN_OR_RETURN(auto cnat,
                                   Expr::Col(js, "c_nationkey"));
            auto filt = MakeFilter(std::move(join), exec::Eq(snat, cnat));
            const auto& fs = filt->schema();
            XDBFT_ASSIGN_OR_RETURN(auto nname, Expr::Col(fs, "n_name"));
            XDBFT_ASSIGN_OR_RETURN(auto rev, Expr::Col(fs, "revenue"));
            auto proj = MakeProject(std::move(filt), {nname, rev},
                                    {"n_name", "revenue"});
            return exec::Drain(proj.get());
          },
          &rncols));
  RecordStage(&out, "Join5(RNCOL,S)", secs, rncols);

  // Stage 6: aggregate revenue per nation (partial + merge).
  const auto start = std::chrono::steady_clock::now();
  Table merged = ConcatTables(rncols);
  {
    XDBFT_ASSIGN_OR_RETURN(auto rev, Expr::Col(merged.schema, "revenue"));
    auto op = MakeHashAggregate(MakeScan(&merged), {0},
                                {{AggFunc::kSum, rev, "revenue"}});
    XDBFT_ASSIGN_OR_RETURN(const int revc, op->schema().Find("revenue"));
    auto sorted = MakeSort(std::move(op), {revc}, {false});
    XDBFT_ASSIGN_OR_RETURN(out.result, exec::Drain(sorted.get()));
  }
  const auto end = std::chrono::steady_clock::now();
  RecordStage(&out, "Agg(nation)",
              std::chrono::duration<double>(end - start).count(),
              {out.result});
  return out;
}

}  // namespace xdbft::engine
